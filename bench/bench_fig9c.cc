// Figure 9(c): regular XPath with the Kleene star inside a filter (the
// ancestor-had-heart-disease pattern of the paper's running example).

#include "bench_common.h"

int main(int argc, char** argv) {
  smoqe::bench::RegisterFigure(
      "Fig9c_star_in_filter",
      "department/patient[(parent/patient)*/visit/treatment/medication/"
      "diagnosis/text() = 'heart disease']/pname",
      {smoqe::bench::kHype, smoqe::bench::kOptHype, smoqe::bench::kOptHypeC});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
