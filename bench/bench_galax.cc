// Section 7, GALAX comparison: evaluating regular XPath through the
// XQuery-translation route (GALAX substitute) versus HyPE. The paper dropped
// GALAX from its plots because "even for a simple regular XPath query on the
// smallest used document tree, GALAX needed more time than HyPE for the same
// query on the largest tree" -- this bench reproduces exactly that check.

#include "bench_common.h"

namespace {

const char* const kQueries[] = {
    "department/patient/(parent/patient)*",
    "department/patient[(parent/patient)*/visit/treatment/medication/"
    "diagnosis/text() = 'heart disease']/pname",
};

}  // namespace

int main(int argc, char** argv) {
  using smoqe::bench::Engine;
  int small = smoqe::bench::BasePatients();
  int large = 10 * small;
  int qi = 0;
  for (const char* query : kQueries) {
    std::string base = "Galax_vs_HyPE/Q" + std::to_string(++qi);
    for (auto [engine, patients] :
         {std::pair<Engine, int>{Engine::kGalax, small},
          {Engine::kGalax, large},
          {Engine::kHype, small},
          {Engine::kHype, large}}) {
      std::string name = base + "/" + smoqe::bench::EngineName(engine);
      std::string q(query);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [q, engine](benchmark::State& state) {
            const smoqe::xml::Tree& tree =
                smoqe::bench::HospitalDoc(static_cast<int>(state.range(0)));
            for (auto _ : state) {
              benchmark::DoNotOptimize(
                  smoqe::bench::RunEngineOnce(engine, q, tree));
            }
            state.counters["MB"] =
                static_cast<double>(tree.ApproxByteSize()) / 1e6;
          })
          ->Arg(patients)
          ->ArgName("patients")
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
