// Shared infrastructure for the SMOQE benchmark suite (Section 7 of the
// paper). Each bench binary regenerates one figure/table; see EXPERIMENTS.md
// for the mapping and for paper-vs-measured results.
//
// Documents are hospital datasets (ToXGene substitute) in ten size
// increments, mirroring the paper's 7MB..70MB series. The base increment is
// SMOQE_BENCH_PATIENTS patients (default 200; the paper's increment was
// ~10,000 -- export SMOQE_BENCH_PATIENTS=10000 to run at paper scale).

#ifndef SMOQE_BENCH_BENCH_COMMON_H_
#define SMOQE_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <functional>
#include <initializer_list>
#include <string>

#include "hype/hype.h"
#include "hype/index.h"
#include "xml/doc_plane.h"
#include "xml/tree.h"

namespace smoqe::bench {

enum Engine {
  kJaxp = 0,      // eval::XPathBaseline (JAXP/Xalan substitute)
  kHype = 1,      // hype::HypeEvaluator, no index
  kOptHype = 2,   // + full subtree-label index
  kOptHypeC = 3,  // + compressed index
  kGalax = 4,     // eval::GalaxSubstitute (XQuery-translation substitute)
  kConceptual = 5 // automata::ConceptualEvaluator (multi-pass, Section 4)
};

const char* EngineName(Engine e);

/// Patients per size increment (env SMOQE_BENCH_PATIENTS, default 200).
int BasePatients();

/// Cached hospital document with the given patient count (fixed seed).
const xml::Tree& HospitalDoc(int patients);

/// Cached index for a cached document.
const hype::SubtreeLabelIndex& IndexFor(const xml::Tree& tree,
                                        hype::SubtreeLabelIndex::Mode mode);

/// Cached columnar plane for a cached document (evaluators constructed per
/// run share it instead of rebuilding O(N) arrays each).
const xml::DocPlane& PlaneFor(const xml::Tree& tree);

/// One evaluation of `query` with `engine`; returns the answer count and,
/// when `stats` is non-null and the engine is HyPE-based, the run statistics.
int64_t RunEngineOnce(Engine engine, const std::string& query,
                      const xml::Tree& tree, hype::EvalStats* stats = nullptr);

/// Registers `figure/engine` benchmarks over the ten-increment size series.
void RegisterFigure(const std::string& figure, const std::string& query,
                    std::initializer_list<Engine> engines);

/// Wall-clock seconds of one call to `fn` (the self-timed smoke modes).
double Seconds(const std::function<void()>& fn);

/// Best-of-5 timing of `fn`, each sample batched into enough rounds to run
/// ~`sample_seconds` (single rounds are a few ms and too noisy to compare).
/// One shared sampling policy for every --smoqe_json smoke bench.
double BestSecondsPerRound(const std::function<void()>& fn,
                           double sample_seconds = 0.1);

}  // namespace smoqe::bench

#endif  // SMOQE_BENCH_BENCH_COMMON_H_
