// Section 7 pruning statistics: fraction of element nodes HyPE never visits,
// per example query and on average. The paper reports 78.2% for HyPE and 88%
// for OptHyPE on its example queries.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

const char* const kQueries[] = {
    // the six figure queries
    "department/patient[visit/treatment/medication]",
    "department/patient[visit/treatment/medication/diagnosis/text() = "
    "'heart disease' and visit/treatment/test and "
    "address/city/text() = 'Edinburgh']",
    "department/patient[visit/treatment/medication/diagnosis/text() = "
    "'heart disease' or visit/treatment/medication/diagnosis/text() = "
    "'diabetes' or address/city/text() = 'Istanbul']",
    "department/patient/(parent/patient)*/visit/treatment/medication/"
    "diagnosis[text() = 'heart disease']",
    "department/patient/(parent/patient[visit/treatment/medication])*/pname",
    "department/patient[(parent/patient)*/visit/treatment/medication/"
    "diagnosis/text() = 'heart disease']/pname",
};

}  // namespace

int main() {
  using smoqe::bench::Engine;
  const smoqe::xml::Tree& tree =
      smoqe::bench::HospitalDoc(5 * smoqe::bench::BasePatients());
  std::printf("Pruning statistics (Section 7), %d elements, %.1f MB\n",
              tree.CountElements(),
              static_cast<double>(tree.ApproxByteSize()) / 1e6);
  std::printf("%-6s  %-9s  %-9s  %-9s  query\n", "#", "HyPE%", "OptHyPE%",
              "OptC%");
  double sums[3] = {0, 0, 0};
  int i = 0;
  for (const char* query : kQueries) {
    double pct[3];
    Engine engines[3] = {Engine::kHype, Engine::kOptHype, Engine::kOptHypeC};
    for (int e = 0; e < 3; ++e) {
      smoqe::hype::EvalStats stats;
      smoqe::bench::RunEngineOnce(engines[e], query, tree, &stats);
      pct[e] = 100.0 * stats.PrunedFraction();
      sums[e] += pct[e];
    }
    std::printf("Q%-5d  %-9.1f  %-9.1f  %-9.1f  %.60s...\n", ++i, pct[0],
                pct[1], pct[2], query);
  }
  int n = static_cast<int>(std::size(kQueries));
  std::printf("%-6s  %-9.1f  %-9.1f  %-9.1f  (paper: HyPE 78.2%%, OptHyPE "
              "88%%)\n",
              "avg", sums[0] / n, sums[1] / n, sums[2] / n);
  return 0;
}
