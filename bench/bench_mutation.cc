// Mutable documents: sustained query throughput while the document churns.
//
// One EpochPublisher owns a hospital document; reader threads continuously
// pin snapshots and evaluate a fixed query workload on them (warm
// per-reader transition-plane stores), while a writer publishes bounded
// deltas at an open-loop 90/10 read/write pacing. The numbers that matter:
//
//  * read_only_qps   -- the same readers with the writer idle (baseline);
//  * mixed_qps       -- reader throughput under concurrent writes. The
//                       acceptance bar: >= 0.7x the read-only baseline
//                       (copy-on-write epochs must not stall readers);
//  * writes_per_sec  -- deltas actually published during the mixed phase;
//  * advances_per_sec -- standing-query delta re-evaluation rate
//                       (publisher Apply + StandingQueryEvaluator::Advance
//                       per round, warm after the first two).
//
// Two PRE-TIMING gates abort the run (exit 1) before any number is
// reported:
//  1. bit-identity -- snapshots taken DURING concurrent writes must answer
//     every workload query exactly like a from-scratch rebuild
//     (DocPlane::Build of a copy of the snapshot's tree), the incremental
//     plane must be SameAs the rebuilt one, and a standing evaluator
//     advanced through the published delta stream must end bit-identical
//     to a cold evaluation of the final epoch;
//  2. warm advance -- re-advancing over an already-seen document shape must
//     intern ZERO configurations. The count is also exported as the
//     mutation/configs_interned_warm_advance counter, which
//     ci/check_bench_regression.py gates at zero growth vs main.
//
// Modes: default = google-benchmark families (Mutation/*);
// --smoqe_json=FILE = the self-timed smoke run above (BENCH_mutation.json
// in CI). Document size scales with SMOQE_BENCH_PATIENTS.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "automata/compiler.h"
#include "bench_common.h"
#include "common/thread_pool.h"
#include "exec/standing_query.h"
#include "hype/batch_hype.h"
#include "hype/transition_plane.h"
#include "xml/doc_plane.h"
#include "xml/plane_epoch.h"
#include "xml/tree_delta.h"
#include "xpath/parser.h"

namespace smoqe::bench {
namespace {

std::vector<std::string> MutationWorkload() {
  return {
      "department/patient/pname",
      "//diagnosis",
      "department/patient[visit/treatment/medication]",
      "//treatment[medication and not(test)]",
      "department/patient[not(visit/treatment/test)]",
      "department/patient/(parent/patient)*"
      "[visit/treatment/medication/diagnosis/text() = 'heart disease']",
      "//doctor/specialty",
      "department/*/visit",
  };
}

std::vector<automata::Mfa> CompileWorkload(const std::vector<std::string>& qs) {
  std::vector<automata::Mfa> mfas;
  mfas.reserve(qs.size());
  for (const std::string& q : qs) {
    auto parsed = xpath::ParseQuery(q);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad workload query %s: %s\n", q.c_str(),
                   parsed.status().ToString().c_str());
      std::exit(1);
    }
    mfas.push_back(automata::CompileQuery(parsed.value()));
  }
  return mfas;
}

std::vector<const automata::Mfa*> Pointers(
    const std::vector<automata::Mfa>& mfas) {
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& m : mfas) ptrs.push_back(&m);
  return ptrs;
}

std::vector<xml::NodeId> ReachableElements(const xml::Tree& tree) {
  std::vector<xml::NodeId> out;
  std::vector<xml::NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    xml::NodeId n = stack.back();
    stack.pop_back();
    if (tree.is_element(n)) out.push_back(n);
    for (xml::NodeId c = tree.first_child(n); c != xml::kNullNode;
         c = tree.next_sibling(c)) {
      stack.push_back(c);
    }
  }
  return out;
}

// The writer's delta source: bounded edits confined to the document's
// existing label universe (relabels rotate hospital labels, inserts graft a
// small captured fragment, deletes remove a previously inserted graft), so
// the document size stays near its original and no delta ever grows the
// label set (which would force standing-query rebinds mid-measurement).
class DeltaSource {
 public:
  explicit DeltaSource(const xml::Tree& initial) : rng_(20260807) {
    // Original element ids are stable targets forever: the writer only
    // deletes its own grafts, never original content.
    targets_ = ReachableElements(initial);
    xml::NodeId donor = targets_[targets_.size() / 2];
    while (initial.CountSubtreeElements(donor) > 12) {
      donor = initial.first_child(donor) != xml::kNullNode &&
                      initial.is_element(initial.first_child(donor))
                  ? initial.first_child(donor)
                  : targets_[rng_() % targets_.size()];
    }
    graft_ = xml::Fragment::Capture(initial, donor);
  }

  xml::TreeDelta Next(const xml::PlaneEpoch& current) {
    static const char* const kLabels[] = {"patient", "visit", "treatment",
                                          "test", "medication"};
    xml::TreeDelta delta(current.version);
    const uint64_t roll = rng_() % 10;
    if (roll < 6 || (roll < 8 && grafted_.empty())) {
      delta.AddRelabel(targets_[1 + rng_() % (targets_.size() - 1)],
                       kLabels[rng_() % 5]);
    } else if (roll < 8) {
      delta.AddDelete(grafted_.back());
      grafted_.pop_back();
    } else {
      // The graft root's id is deterministic: instantiation allocates from
      // the arena end of the pre-apply tree.
      grafted_.push_back(current.tree->size());
      delta.AddInsert(targets_[rng_() % targets_.size()], 0, graft_);
    }
    return delta;
  }

 private:
  std::mt19937_64 rng_;
  std::vector<xml::NodeId> targets_;
  std::vector<xml::NodeId> grafted_;  // roots of our inserts, newest last
  xml::Fragment graft_;
};

using Answers = std::vector<std::vector<xml::NodeId>>;

Answers EvalOn(const xml::Tree& tree, const xml::DocPlane& plane,
               const std::vector<const automata::Mfa*>& ptrs,
               hype::TransitionPlaneStore* store) {
  hype::BatchHypeOptions options;
  options.plane = &plane;
  options.plane_store = store;
  hype::BatchHypeEvaluator eval(tree, ptrs, options);
  return eval.EvalAll(tree.root());
}

// Gate 1: snapshots taken while a writer publishes must be bit-identical
// to full rebuilds, and delta re-evaluation must track cold evaluation.
bool BitIdentityGate(const xml::Tree& initial,
                     const std::vector<const automata::Mfa*>& ptrs) {
  xml::EpochPublisher publisher{xml::Tree(initial)};
  exec::StandingQueryEvaluator standing(publisher.Snapshot(), ptrs);

  constexpr int kWrites = 48;
  std::vector<xml::TreeDelta> published;
  std::mutex published_mu;
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    DeltaSource source(*publisher.Snapshot().tree);
    for (int i = 0; i < kWrites; ++i) {
      xml::TreeDelta delta = source.Next(publisher.Snapshot());
      if (!publisher.Apply(delta).ok()) {
        std::fprintf(stderr, "gate: writer delta %d rejected\n", i);
        break;
      }
      {
        std::lock_guard<std::mutex> lock(published_mu);
        published.push_back(std::move(delta));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    writer_done.store(true, std::memory_order_release);
  });

  // Concurrent checker: every snapshot must read like a frozen document.
  bool ok = true;
  int checks = 0;
  while (!writer_done.load(std::memory_order_acquire) || checks == 0) {
    xml::PlaneEpoch snap = publisher.Snapshot();
    xml::Tree copy = *snap.tree;
    xml::DocPlane rebuilt = xml::DocPlane::Build(copy);
    if (!snap.plane->SameAs(rebuilt)) {
      std::fprintf(stderr,
                   "gate: snapshot v%llu plane != full rebuild (SameAs)\n",
                   static_cast<unsigned long long>(snap.version));
      ok = false;
      break;
    }
    hype::TransitionPlaneStore snap_store(*snap.tree, nullptr);
    hype::TransitionPlaneStore copy_store(copy, nullptr);
    if (EvalOn(*snap.tree, *snap.plane, ptrs, &snap_store) !=
        EvalOn(copy, rebuilt, ptrs, &copy_store)) {
      std::fprintf(stderr,
                   "gate: snapshot v%llu answers != full-rebuild answers\n",
                   static_cast<unsigned long long>(snap.version));
      ok = false;
      break;
    }
    ++checks;
  }
  writer.join();
  if (!ok) return false;

  // Replay the published stream through the standing evaluator; the final
  // answer sets must be bit-identical to a cold pass on the final epoch.
  xml::PlaneEpoch prev = standing.epoch();
  for (const xml::TreeDelta& delta : published) {
    // Reconstruct each intermediate epoch from the previous one (the
    // publisher only exposes the latest).
    xml::Tree next_tree = *prev.tree;
    xml::DocPlane::Maintainer maintainer(*prev.plane);
    if (!delta.ApplyTo(&next_tree, &maintainer).ok()) {
      std::fprintf(stderr, "gate: replay apply failed\n");
      return false;
    }
    xml::PlaneEpoch next;
    xml::DocPlane next_plane = maintainer.Take(next_tree);
    next.tree = std::make_shared<const xml::Tree>(std::move(next_tree));
    next.plane = std::make_shared<const xml::DocPlane>(std::move(next_plane));
    next.version = delta.to_version();
    if (!standing.Advance(next, delta).ok()) {
      std::fprintf(stderr, "gate: standing advance failed\n");
      return false;
    }
    prev = next;
  }
  hype::TransitionPlaneStore cold_store(*prev.tree, nullptr);
  Answers cold = EvalOn(*prev.tree, *prev.plane, ptrs, &cold_store);
  for (size_t q = 0; q < ptrs.size(); ++q) {
    if (standing.answers(q) != cold[q]) {
      std::fprintf(stderr,
                   "gate: standing answers != cold eval on query %zu after "
                   "%zu advances\n",
                   q, published.size());
      return false;
    }
  }
  std::printf("bit-identity gate: %d concurrent snapshots and %zu standing "
              "advances all matched full rebuilds\n",
              checks, published.size());
  return true;
}

// Gate 2: the third advance over a flip-flopped shape interns nothing.
bool WarmAdvanceGate(const xml::Tree& initial,
                     const std::vector<const automata::Mfa*>& ptrs,
                     int64_t* warm_interned) {
  xml::EpochPublisher publisher{xml::Tree(initial)};
  exec::StandingQueryEvaluator standing(publisher.Snapshot(), ptrs);
  xml::NodeId target = xml::kNullNode;
  {
    const xml::Tree& tree = *publisher.Snapshot().tree;
    for (xml::NodeId n : ReachableElements(tree)) {
      if (tree.label_name(n) == "test") {
        target = n;
        break;
      }
    }
  }
  if (target == xml::kNullNode) {
    std::fprintf(stderr, "warm gate: no relabel target found\n");
    return false;
  }
  const char* const labels[] = {"medication", "test", "medication"};
  exec::AdvanceStats stats;
  for (int round = 0; round < 3; ++round) {
    xml::TreeDelta delta(publisher.version());
    delta.AddRelabel(target, labels[round]);
    if (!publisher.Apply(delta).ok() ||
        !standing.Advance(publisher.Snapshot(), delta, &stats).ok()) {
      std::fprintf(stderr, "warm gate: advance %d failed\n", round);
      return false;
    }
  }
  *warm_interned = stats.configs_interned;
  if (stats.configs_interned != 0) {
    std::fprintf(stderr,
                 "FAIL: warm advance interned %lld configs (must be 0)\n",
                 static_cast<long long>(stats.configs_interned));
    return false;
  }
  std::printf("warm-advance gate: third advance over a seen shape interned "
              "0 configs\n");
  return true;
}

int ReaderThreads() {
  return std::max(1, std::min(3, common::ThreadPool::HardwareThreads() - 1));
}

// Readers pin snapshots and evaluate the workload until `stop`; returns
// queries answered. Per-reader warm store pinned to a base epoch (valid
// while the label universe is fixed -- DeltaSource guarantees that).
double TimedReaderPhase(xml::EpochPublisher& publisher,
                        const std::vector<const automata::Mfa*>& ptrs,
                        double seconds, std::atomic<bool>& stop,
                        int64_t* queries_answered) {
  const int num_readers = ReaderThreads();
  std::atomic<int64_t> answered{0};
  std::vector<std::thread> readers;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < num_readers; ++r) {
    readers.emplace_back([&] {
      xml::PlaneEpoch base = publisher.Snapshot();
      hype::TransitionPlaneStore store(*base.tree, nullptr);
      while (!stop.load(std::memory_order_relaxed)) {
        xml::PlaneEpoch snap = publisher.Snapshot();
        benchmark::DoNotOptimize(EvalOn(*snap.tree, *snap.plane, ptrs, &store));
        answered.fetch_add(static_cast<int64_t>(ptrs.size()),
                           std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  *queries_answered = answered.load();
  return elapsed;
}

int WriteJsonSmoke(const std::string& path) {
  const xml::Tree& doc = HospitalDoc(BasePatients());
  std::vector<automata::Mfa> mfas = CompileWorkload(MutationWorkload());
  std::vector<const automata::Mfa*> ptrs = Pointers(mfas);

  // ---- pre-timing gates ----
  int64_t warm_interned = -1;
  if (!BitIdentityGate(doc, ptrs) ||
      !WarmAdvanceGate(doc, ptrs, &warm_interned)) {
    return 1;
  }

  // ---- read-only baseline ----
  const double phase_seconds = 0.4;
  double read_only_qps = 0;
  {
    xml::EpochPublisher publisher{xml::Tree(doc)};
    std::atomic<bool> stop{false};
    int64_t answered = 0;
    const double elapsed =
        TimedReaderPhase(publisher, ptrs, phase_seconds, stop, &answered);
    read_only_qps = static_cast<double>(answered) / elapsed;
  }

  // ---- mixed 90/10 open-loop phase ----
  // A read OP is one reader round-trip (pin a snapshot, evaluate the whole
  // workload batch); a write OP is one published delta. The writer paces
  // itself off the read-only baseline so writes are 10% of the op stream --
  // one write per nine round-trips' worth of wall time -- issued on the
  // clock regardless of reader progress (open loop).
  double mixed_qps = 0;
  double writes_per_sec = 0;
  {
    xml::EpochPublisher publisher{xml::Tree(doc)};
    std::atomic<bool> stop{false};
    std::atomic<int64_t> writes{0};
    const double rounds_per_sec =
        read_only_qps / static_cast<double>(ptrs.size());
    const double write_interval_s =
        rounds_per_sec > 0 ? 9.0 / rounds_per_sec : 1e-3;
    std::thread writer([&] {
      DeltaSource source(*publisher.Snapshot().tree);
      auto next_due = std::chrono::steady_clock::now();
      while (!stop.load(std::memory_order_relaxed)) {
        next_due += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(write_interval_s));
        std::this_thread::sleep_until(next_due);
        if (stop.load(std::memory_order_relaxed)) break;
        if (publisher.Apply(source.Next(publisher.Snapshot())).ok()) {
          writes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    int64_t answered = 0;
    const double elapsed =
        TimedReaderPhase(publisher, ptrs, phase_seconds, stop, &answered);
    writer.join();
    mixed_qps = static_cast<double>(answered) / elapsed;
    writes_per_sec = static_cast<double>(writes.load()) / elapsed;
  }

  // ---- standing-query advance rate ----
  double advances_per_sec = 0;
  {
    xml::EpochPublisher publisher{xml::Tree(doc)};
    exec::StandingQueryEvaluator standing(publisher.Snapshot(), ptrs);
    DeltaSource source(*publisher.Snapshot().tree);
    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + std::chrono::milliseconds(300);
    int64_t advances = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      xml::TreeDelta delta = source.Next(publisher.Snapshot());
      if (!publisher.Apply(delta).ok() ||
          !standing.Advance(publisher.Snapshot(), delta).ok()) {
        std::fprintf(stderr, "advance loop failed\n");
        return 1;
      }
      ++advances;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    advances_per_sec = static_cast<double>(advances) / elapsed;
  }

  const double ratio = read_only_qps > 0 ? mixed_qps / read_only_qps : 0.0;
  std::printf(
      "readers=%d  read-only %.0f qps, mixed %.0f qps (%.2fx of baseline), "
      "%.0f writes/s, %.0f advances/s\n",
      ReaderThreads(), read_only_qps, mixed_qps, ratio, writes_per_sec,
      advances_per_sec);

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"elements\": %d,\n  \"reader_threads\": %d,\n"
               "  \"mutation\": {\n"
               "    \"read_only_qps\": %.1f,\n"
               "    \"mixed_qps\": %.1f,\n"
               "    \"writes_per_sec\": %.1f,\n"
               "    \"advances_per_sec\": %.1f,\n"
               "    \"mixed_over_read_only\": %.3f,\n"
               "    \"counters\": {\n"
               "      \"configs_interned_warm_advance\": %lld\n"
               "    }\n  }\n}\n",
               doc.CountElements(), ReaderThreads(), read_only_qps, mixed_qps,
               writes_per_sec, advances_per_sec, ratio,
               static_cast<long long>(warm_interned));
  std::fclose(out);

  // The acceptance bar: concurrent writes may cost readers at most 30%.
  if (ratio < 0.7) {
    std::fprintf(stderr,
                 "FAIL: mixed qps is %.2fx of the read-only baseline "
                 "(bar: >= 0.7x)\n",
                 ratio);
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

// ---- google-benchmark families ----

void BM_WarmAdvance(benchmark::State& state) {
  const xml::Tree& doc = HospitalDoc(BasePatients());
  std::vector<automata::Mfa> mfas = CompileWorkload(MutationWorkload());
  std::vector<const automata::Mfa*> ptrs = Pointers(mfas);
  xml::EpochPublisher publisher{xml::Tree(doc)};
  exec::StandingQueryEvaluator standing(publisher.Snapshot(), ptrs);
  DeltaSource source(*publisher.Snapshot().tree);
  for (auto _ : state) {
    xml::TreeDelta delta = source.Next(publisher.Snapshot());
    if (!publisher.Apply(delta).ok() ||
        !standing.Advance(publisher.Snapshot(), delta).ok()) {
      state.SkipWithError("apply/advance failed");
      return;
    }
  }
  state.counters["advances_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_PublishOnly(benchmark::State& state) {
  const xml::Tree& doc = HospitalDoc(BasePatients());
  xml::EpochPublisher publisher{xml::Tree(doc)};
  DeltaSource source(*publisher.Snapshot().tree);
  for (auto _ : state) {
    if (!publisher.Apply(source.Next(publisher.Snapshot())).ok()) {
      state.SkipWithError("apply failed");
      return;
    }
  }
  state.counters["writes_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void RegisterAll() {
  benchmark::RegisterBenchmark("Mutation/WarmAdvance", BM_WarmAdvance)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Mutation/PublishOnly", BM_PublishOnly)
      ->Unit(benchmark::kMicrosecond);
}

}  // namespace
}  // namespace smoqe::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    constexpr std::string_view kJsonFlag = "--smoqe_json=";
    if (arg.substr(0, kJsonFlag.size()) == kJsonFlag) {
      return smoqe::bench::WriteJsonSmoke(
          std::string(arg.substr(kJsonFlag.size())));
    }
  }
  smoqe::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
