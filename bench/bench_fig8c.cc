// Figure 8(c): XPath query with filter disjunctions, evaluation time vs
// document size.

#include "bench_common.h"

int main(int argc, char** argv) {
  smoqe::bench::RegisterFigure(
      "Fig8c_filter_disjunctions",
      "department/patient[visit/treatment/medication/diagnosis/text() = "
      "'heart disease' or visit/treatment/medication/diagnosis/text() = "
      "'diabetes' or address/city/text() = 'Istanbul']",
      {smoqe::bench::kJaxp, smoqe::bench::kHype, smoqe::bench::kOptHype,
       smoqe::bench::kOptHypeC});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
