// Durable epochs: what crash safety costs, and what recovery buys.
//
// Three figures (PR 9):
//
//  * recoveries_per_sec vs reparses_per_sec -- a cold storage::Recover
//    (newest checksummed snapshot + WAL replay + DocPlane rebuild) against
//    the non-durable alternative of re-parsing the serialized document and
//    rebuilding its plane from scratch. Both are higher-is-better rates so
//    the regression gate can watch them drift independently.
//  * inmemory_mixed_qps vs durable_mixed_qps -- a 90/10 query/write op
//    stream served by the in-memory pair (QueryService reads + raw
//    EpochPublisher writes) against the durable QueryService (same reads;
//    every write WAL-appended, fsynced, and published through the
//    DurableEpochStore). The acceptance bar, enforced here after the gate:
//    durable throughput >= 0.5x in-memory (crash safety may cost at most
//    half).
//
// One PRE-TIMING gate aborts the run (exit 1) before any number is
// reported: a store that applied a randomized delta stream is re-opened
// cold, and the recovered epoch must be bit-identical to the last published
// one -- WriteXml byte-for-byte (NodeId-exact arena recovery implies
// answer-identity for every query), the recovered DocPlane SameAs a
// from-scratch Build, and the recovered version equal to the published
// version. The gate also re-checks the store's own failure counters: a
// healthy run must finish with zero rollbacks and zero failed compactions
// (exported as counters; ci/check_bench_regression.py gates them at zero
// growth vs main).
//
// Modes: default = google-benchmark families (Recovery/*);
// --smoqe_json=FILE = the self-timed smoke run above (BENCH_recovery.json
// in CI). Document size scales with SMOQE_BENCH_PATIENTS.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "exec/query_service.h"
#include "storage/durable_epoch.h"
#include "storage/fs.h"
#include "xml/doc_plane.h"
#include "xml/parser.h"
#include "xml/plane_epoch.h"
#include "xml/tree.h"
#include "xml/tree_delta.h"
#include "xml/writer.h"

namespace smoqe::bench {
namespace {

std::vector<std::string> RecoveryWorkload() {
  return {
      "department/patient/pname",
      "//diagnosis",
      "department/patient[visit/treatment/medication]",
      "//treatment[medication and not(test)]",
      "//doctor/specialty",
      "department/*/visit",
  };
}

std::vector<xml::NodeId> ReachableElements(const xml::Tree& tree) {
  std::vector<xml::NodeId> out;
  std::vector<xml::NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    xml::NodeId n = stack.back();
    stack.pop_back();
    if (tree.is_element(n)) out.push_back(n);
    for (xml::NodeId c = tree.first_child(n); c != xml::kNullNode;
         c = tree.next_sibling(c)) {
      stack.push_back(c);
    }
  }
  return out;
}

// Relabel-only delta source: original element ids are valid targets at
// every version and the document never changes size, so the same source
// can drive a store, a publisher, and a durable service interchangeably.
class RelabelSource {
 public:
  explicit RelabelSource(const xml::Tree& initial, uint64_t seed)
      : rng_(seed), targets_(ReachableElements(initial)) {}

  xml::TreeDelta Next(uint64_t from_version) {
    static const char* const kLabels[] = {"patient", "visit", "treatment",
                                          "test", "medication"};
    xml::TreeDelta delta(from_version);
    delta.AddRelabel(targets_[1 + rng_() % (targets_.size() - 1)],
                     kLabels[rng_() % 5]);
    return delta;
  }

 private:
  std::mt19937_64 rng_;
  std::vector<xml::NodeId> targets_;
};

std::string FreshDir(const std::string& name) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/smoqe_bench_recovery_" + name;
  if (!storage::EnsureDir(dir).ok()) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    std::exit(1);
  }
  auto names = storage::ListDir(dir);
  if (names.ok()) {
    for (const std::string& f : names.value()) {
      (void)storage::RemoveFile(dir + "/" + f);
    }
  }
  return dir;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The gate: a cold reopen of a store that lived through a delta stream
// (with compactions) must reproduce the published epoch exactly. Leaves a
// populated storage directory behind for the timing phases.
bool RecoveryBitIdentityGate(const xml::Tree& doc, const std::string& dir,
                             int64_t* bytes_truncated) {
  storage::StorageOptions options;
  options.snapshot_every = 24;  // several compactions + a live WAL suffix
  constexpr int kWrites = 64;

  std::string published_xml;
  uint64_t published_version = 0;
  int64_t snapshots_written = 0;
  {
    auto store = storage::DurableEpochStore::Open(dir, options, xml::Tree(doc));
    if (!store.ok()) {
      std::fprintf(stderr, "gate: open failed: %s\n",
                   store.status().ToString().c_str());
      return false;
    }
    RelabelSource source(doc, 20260807);
    for (int i = 0; i < kWrites; ++i) {
      if (!store.value()->Apply(source.Next(store.value()->version())).ok()) {
        std::fprintf(stderr, "gate: apply %d rejected\n", i);
        return false;
      }
    }
    auto stats = store.value()->stats();
    if (stats.wal_rollbacks != 0 || stats.compactions_failed != 0) {
      std::fprintf(stderr, "gate: healthy run had %lld rollbacks / %lld "
                   "failed compactions\n",
                   static_cast<long long>(stats.wal_rollbacks),
                   static_cast<long long>(stats.compactions_failed));
      return false;
    }
    snapshots_written = stats.snapshots_written;
    xml::PlaneEpoch epoch = store.value()->Snapshot();
    published_xml = xml::WriteXml(*epoch.tree);
    published_version = epoch.version;
  }  // store dropped: only the files survive, as after a crash

  auto reopened = storage::DurableEpochStore::Open(dir, options, xml::Tree());
  if (!reopened.ok()) {
    std::fprintf(stderr, "gate: cold reopen failed: %s\n",
                 reopened.status().ToString().c_str());
    return false;
  }
  xml::PlaneEpoch recovered = reopened.value()->Snapshot();
  *bytes_truncated = reopened.value()->recovery_report().bytes_truncated;
  if (recovered.version != published_version) {
    std::fprintf(stderr, "gate: recovered v%llu != published v%llu\n",
                 static_cast<unsigned long long>(recovered.version),
                 static_cast<unsigned long long>(published_version));
    return false;
  }
  if (xml::WriteXml(*recovered.tree) != published_xml) {
    std::fprintf(stderr, "gate: recovered document differs byte-for-byte\n");
    return false;
  }
  if (!recovered.plane->SameAs(xml::DocPlane::Build(*recovered.tree))) {
    std::fprintf(stderr, "gate: recovered plane != from-scratch Build\n");
    return false;
  }
  std::printf("recovery bit-identity gate: cold reopen reproduced v%llu "
              "byte-for-byte (%d writes, %lld snapshots)\n",
              static_cast<unsigned long long>(published_version), kWrites,
              static_cast<long long>(snapshots_written));
  return true;
}

// Phase 1: cold recovery rate vs parse-and-rebuild rate over the SAME
// final document.
void TimeColdStart(const std::string& dir, double* recoveries_per_sec,
                   double* reparses_per_sec) {
  constexpr double kPhaseSeconds = 0.3;
  std::string xml_text;
  {
    storage::RecoveryReport report;
    auto epoch = storage::Recover(dir, &report);
    if (!epoch.ok()) {
      std::fprintf(stderr, "cold start: recover failed\n");
      std::exit(1);
    }
    xml_text = xml::WriteXml(*epoch.value().tree);
  }

  int64_t recoveries = 0;
  auto start = std::chrono::steady_clock::now();
  while (Seconds(start) < kPhaseSeconds) {
    auto epoch = storage::Recover(dir, nullptr);
    if (!epoch.ok()) std::exit(1);
    benchmark::DoNotOptimize(epoch.value().version);
    ++recoveries;
  }
  *recoveries_per_sec = static_cast<double>(recoveries) / Seconds(start);

  int64_t reparses = 0;
  start = std::chrono::steady_clock::now();
  while (Seconds(start) < kPhaseSeconds) {
    auto parsed = xml::ParseXml(xml_text);
    if (!parsed.ok()) std::exit(1);
    xml::DocPlane plane = xml::DocPlane::Build(parsed.value());
    benchmark::DoNotOptimize(plane.size());
    ++reparses;
  }
  *reparses_per_sec = static_cast<double>(reparses) / Seconds(start);
}

// Phase 2: the 90/10 mixed op stream. Reads go through a QueryService in
// both configurations; writes go through a raw EpochPublisher (in-memory)
// or QueryService::Apply (durable: WAL append + fsync + publish + epoch
// swap). Returns ops/sec.
double MixedPhaseInMemory(const xml::Tree& doc,
                          const std::vector<std::string>& workload) {
  constexpr double kPhaseSeconds = 0.4;
  exec::QueryServiceOptions options;
  options.num_threads = 2;
  exec::QueryService service(doc, options);
  xml::EpochPublisher publisher{xml::Tree(doc)};
  RelabelSource source(doc, 7);
  int64_t ops = 0;
  auto start = std::chrono::steady_clock::now();
  while (Seconds(start) < kPhaseSeconds) {
    if (ops % 10 == 9) {
      if (!publisher.Apply(source.Next(publisher.version())).ok()) {
        std::fprintf(stderr, "in-memory publish failed\n");
        std::exit(1);
      }
    } else {
      auto answer = service.Query(workload[ops % workload.size()]);
      if (!answer.ok()) std::exit(1);
      benchmark::DoNotOptimize(answer.value().size());
    }
    ++ops;
  }
  return static_cast<double>(ops) / Seconds(start);
}

double MixedPhaseDurable(const xml::Tree& doc,
                         const std::vector<std::string>& workload,
                         const std::string& dir,
                         storage::DurableEpochStore::Stats* stats_out) {
  constexpr double kPhaseSeconds = 0.4;
  exec::QueryServiceOptions options;
  options.num_threads = 2;
  options.storage_dir = dir;
  options.snapshot_every = 64;
  auto service = exec::QueryService::Open(xml::Tree(doc), options);
  if (!service.ok()) {
    std::fprintf(stderr, "durable open failed: %s\n",
                 service.status().ToString().c_str());
    std::exit(1);
  }
  RelabelSource source(doc, 7);
  int64_t ops = 0;
  auto start = std::chrono::steady_clock::now();
  while (Seconds(start) < kPhaseSeconds) {
    if (ops % 10 == 9) {
      if (!service.value()
               ->Apply(source.Next(service.value()->document_version()))
               .ok()) {
        std::fprintf(stderr, "durable apply failed\n");
        std::exit(1);
      }
    } else {
      auto answer = service.value()->Query(workload[ops % workload.size()]);
      if (!answer.ok()) std::exit(1);
      benchmark::DoNotOptimize(answer.value().size());
    }
    ++ops;
  }
  *stats_out = service.value()->storage()->stats();
  return static_cast<double>(ops) / Seconds(start);
}

int WriteJsonSmoke(const std::string& path) {
  const xml::Tree& doc = HospitalDoc(BasePatients());
  const std::vector<std::string> workload = RecoveryWorkload();

  // ---- pre-timing gate ----
  const std::string gate_dir = FreshDir("gate");
  int64_t bytes_truncated = -1;
  if (!RecoveryBitIdentityGate(doc, gate_dir, &bytes_truncated)) return 1;

  // ---- cold start: recover vs reparse ----
  double recoveries_per_sec = 0;
  double reparses_per_sec = 0;
  TimeColdStart(gate_dir, &recoveries_per_sec, &reparses_per_sec);

  // ---- mixed 90/10: in-memory vs durable ----
  const double inmemory_qps = MixedPhaseInMemory(doc, workload);
  storage::DurableEpochStore::Stats durable_stats;
  const double durable_qps =
      MixedPhaseDurable(doc, workload, FreshDir("mixed"), &durable_stats);
  const double ratio = inmemory_qps > 0 ? durable_qps / inmemory_qps : 0.0;

  std::printf(
      "cold start: %.1f recoveries/s vs %.1f reparses/s; mixed 90/10: "
      "in-memory %.0f ops/s, durable %.0f ops/s (%.2fx)\n",
      recoveries_per_sec, reparses_per_sec, inmemory_qps, durable_qps, ratio);

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"elements\": %d,\n"
               "  \"recovery\": {\n"
               "    \"recoveries_per_sec\": %.1f,\n"
               "    \"reparses_per_sec\": %.1f,\n"
               "    \"inmemory_mixed_qps\": %.1f,\n"
               "    \"durable_mixed_qps\": %.1f,\n"
               "    \"durable_over_inmemory\": %.3f,\n"
               "    \"counters\": {\n"
               "      \"wal_rollbacks\": %lld,\n"
               "      \"compactions_failed\": %lld,\n"
               "      \"recovery_bytes_truncated\": %lld\n"
               "    }\n  }\n}\n",
               doc.CountElements(), recoveries_per_sec, reparses_per_sec,
               inmemory_qps, durable_qps, ratio,
               static_cast<long long>(durable_stats.wal_rollbacks),
               static_cast<long long>(durable_stats.compactions_failed),
               static_cast<long long>(bytes_truncated));
  std::fclose(out);

  // The acceptance bar: full crash safety (a WAL append + fsync on every
  // write, epoch swap on publish) may cost at most half the mixed
  // throughput of the non-durable configuration.
  if (ratio < 0.5) {
    std::fprintf(stderr,
                 "FAIL: durable mixed throughput is %.2fx of in-memory "
                 "(bar: >= 0.5x)\n",
                 ratio);
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

// ---- google-benchmark families ----

void BM_ColdRecover(benchmark::State& state) {
  const xml::Tree& doc = HospitalDoc(BasePatients());
  const std::string dir = FreshDir("bm_recover");
  storage::StorageOptions options;
  options.snapshot_every = 24;
  {
    auto store = storage::DurableEpochStore::Open(dir, options, xml::Tree(doc));
    if (!store.ok()) {
      state.SkipWithError("open failed");
      return;
    }
    RelabelSource source(doc, 42);
    for (int i = 0; i < 64; ++i) {
      if (!store.value()->Apply(source.Next(store.value()->version())).ok()) {
        state.SkipWithError("apply failed");
        return;
      }
    }
  }
  for (auto _ : state) {
    auto epoch = storage::Recover(dir, nullptr);
    if (!epoch.ok()) {
      state.SkipWithError("recover failed");
      return;
    }
    benchmark::DoNotOptimize(epoch.value().version);
  }
  state.counters["recoveries_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_DurableApply(benchmark::State& state) {
  const xml::Tree& doc = HospitalDoc(BasePatients());
  const std::string dir = FreshDir("bm_apply");
  storage::StorageOptions options;
  options.snapshot_every = 1 << 20;  // time the WAL path, not compaction
  auto store = storage::DurableEpochStore::Open(dir, options, xml::Tree(doc));
  if (!store.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  RelabelSource source(doc, 42);
  for (auto _ : state) {
    if (!store.value()->Apply(source.Next(store.value()->version())).ok()) {
      state.SkipWithError("apply failed");
      return;
    }
  }
  state.counters["writes_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void RegisterAll() {
  benchmark::RegisterBenchmark("Recovery/ColdRecover", BM_ColdRecover)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Recovery/DurableApply", BM_DurableApply)
      ->Unit(benchmark::kMicrosecond);
}

}  // namespace
}  // namespace smoqe::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    constexpr std::string_view kJsonFlag = "--smoqe_json=";
    if (arg.substr(0, kJsonFlag.size()) == kJsonFlag) {
      return smoqe::bench::WriteJsonSmoke(
          std::string(arg.substr(kJsonFlag.size())));
    }
  }
  smoqe::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
