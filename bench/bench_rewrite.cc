// Theorem 5.1: Algorithm rewrite runs in O(|Q|^2 |sigma| |D_V|^2) time and
// produces an MFA of size O(|Q| |sigma| |D_V|). We grow |Q| along three query
// families over the hospital view and report rewriting time plus MFA size.
//
// --smoqe_json=FILE additionally runs the query-compilation smoke bench
// (BENCH_rewrite.json in CI, gated by ci/check_bench_regression.py): full
// compile pipeline on a cold RewriteCache vs a warm cache hit, and cold vs
// plane-warm engine starts (first evaluation through a fresh
// hype::TransitionPlane vs a fresh engine on an already-warm shared plane).
// Counters record the plane insertions of each phase; warm starts must
// intern exactly zero configurations -- asserted here and gated against
// growth by the CI regression check.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "gen/fixtures.h"
#include "gen/hospital_generator.h"
#include "hype/hype.h"
#include "hype/transition_plane.h"
#include "rewrite/rewrite_cache.h"
#include "rewrite/rewriter.h"
#include "view/view_def.h"
#include "xpath/ast.h"
#include "xpath/parser.h"

namespace {

const smoqe::view::ViewDef& Hospital() {
  static const smoqe::view::ViewDef* def =
      new smoqe::view::ViewDef(smoqe::gen::HospitalView());
  return *def;
}

std::string ChainQuery(int n) {
  std::string q = "patient";
  for (int i = 1; i < n; ++i) q += i % 2 == 1 ? "/parent" : "/patient";
  return q;
}

std::string FilterQuery(int n) {
  std::string q = "patient";
  for (int i = 0; i < n; ++i) q += "[record/diagnosis]";
  return q;
}

std::string StarQuery(int n) {
  std::string q = "(patient/parent)*";
  for (int i = 1; i < n; ++i) q += "/patient/(parent/patient)*";
  return q;
}

void RunRewrite(benchmark::State& state, const std::string& query) {
  auto q = smoqe::xpath::ParseQuery(query);
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  int64_t mfa_size = 0;
  for (auto _ : state) {
    auto mfa = smoqe::rewrite::RewriteToMfa(q.value(), Hospital());
    if (!mfa.ok()) {
      state.SkipWithError(mfa.status().ToString().c_str());
      return;
    }
    mfa_size = mfa.value().SizeMeasure();
    benchmark::DoNotOptimize(mfa);
  }
  state.counters["Q_size"] =
      static_cast<double>(smoqe::xpath::ExpandedSize(q.value()));
  state.counters["mfa_size"] = static_cast<double>(mfa_size);
  state.counters["mfa_per_Q"] =
      static_cast<double>(mfa_size) /
      static_cast<double>(smoqe::xpath::ExpandedSize(q.value()));
}

void BM_RewriteChain(benchmark::State& state) {
  RunRewrite(state, ChainQuery(static_cast<int>(state.range(0))));
}
void BM_RewriteFilters(benchmark::State& state) {
  RunRewrite(state, FilterQuery(static_cast<int>(state.range(0))));
}
void BM_RewriteStars(benchmark::State& state) {
  RunRewrite(state, StarQuery(static_cast<int>(state.range(0))));
}

BENCHMARK(BM_RewriteChain)->DenseRange(2, 20, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RewriteFilters)->DenseRange(1, 16, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RewriteStars)->DenseRange(1, 10, 3)->Unit(benchmark::kMicrosecond);

// ---- --smoqe_json smoke mode (query compilation & the transition plane) ----

// Shared sampling policy (bench_common), samples batched to ~50ms: the
// compile/hit rounds here are microseconds, so shorter batches keep the
// smoke quick without losing stability.
double BestSecondsPerRound(const std::function<void()>& fn) {
  return smoqe::bench::BestSecondsPerRound(fn, 0.05);
}

std::vector<std::string> SmokeWorkload() {
  std::vector<std::string> queries = {
      smoqe::gen::kQueryExample11,
      "patient[record/diagnosis/text() = 'heart disease']",
      "//diagnosis",
      "patient/record",
      "patient[not(parent)]",
  };
  queries.push_back(ChainQuery(6));
  queries.push_back(FilterQuery(3));
  queries.push_back(StarQuery(2));
  return queries;
}

int WriteJsonSmoke(const std::string& path) {
  using smoqe::rewrite::RewriteCache;
  const smoqe::view::ViewDef& view = Hospital();
  const std::vector<std::string> queries = SmokeWorkload();
  const int num_queries = static_cast<int>(queries.size());

  // Compile pipeline: cold cache (parse + rewrite + CSR flattening) vs a
  // warm cache hit (parse + normalized lookup).
  const double compile_cold_s = BestSecondsPerRound([&] {
    RewriteCache cache(&view);
    for (const std::string& q : queries) {
      auto compiled = cache.Get(q);
      if (!compiled.ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     compiled.status().ToString().c_str());
        std::exit(1);
      }
      benchmark::DoNotOptimize(compiled.value().mfa);
    }
  }) / num_queries;
  RewriteCache warm_cache(&view);
  std::vector<smoqe::rewrite::CompiledQuery> compiled;
  for (const std::string& q : queries) {
    compiled.push_back(warm_cache.Get(q).value());
  }
  const double cache_hit_s = BestSecondsPerRound([&] {
    for (const std::string& q : queries) {
      benchmark::DoNotOptimize(warm_cache.Get(q).value().mfa);
    }
  }) / num_queries;

  // Engine starts over the source document: a COLD start builds a fresh
  // TransitionPlane and pays all interning during its first pass; a
  // PLANE-WARM start is a fresh engine on the shared, fully warmed plane --
  // the shape every shard worker and repeated service batch sees.
  const smoqe::xml::Tree& doc =
      smoqe::bench::HospitalDoc(smoqe::bench::BasePatients());
  const smoqe::xml::DocPlane& doc_plane = smoqe::bench::PlaneFor(doc);
  int64_t cold_interned = 0;
  const double cold_start_s = BestSecondsPerRound([&] {
    cold_interned = 0;
    for (const auto& cq : compiled) {
      smoqe::hype::HypeOptions options;
      options.plane = &doc_plane;
      options.transition_plane =
          std::make_shared<smoqe::hype::TransitionPlane>(
              doc, *cq.mfa, cq.compiled, nullptr);
      smoqe::hype::HypeEvaluator eval(doc, *cq.mfa, options);
      benchmark::DoNotOptimize(eval.Eval(doc.root()));
      cold_interned += eval.stats().configs_interned;
    }
  }) / num_queries;

  smoqe::hype::TransitionPlaneStore store(doc, nullptr);
  for (const auto& cq : compiled) {
    smoqe::hype::HypeOptions options;
    options.plane = &doc_plane;
    options.transition_plane = store.For(cq.mfa.get(), cq.compiled);
    smoqe::hype::HypeEvaluator warmer(doc, *cq.mfa, options);
    benchmark::DoNotOptimize(warmer.Eval(doc.root()));  // warm the plane
  }
  int64_t warm_interned = 0;
  const double warm_start_s = BestSecondsPerRound([&] {
    warm_interned = 0;
    for (const auto& cq : compiled) {
      smoqe::hype::HypeOptions options;
      options.plane = &doc_plane;
      options.transition_plane = store.For(cq.mfa.get());
      smoqe::hype::HypeEvaluator eval(doc, *cq.mfa, options);
      benchmark::DoNotOptimize(eval.Eval(doc.root()));
      warm_interned += eval.stats().configs_interned;
    }
  }) / num_queries;

  if (warm_interned != 0) {
    std::fprintf(stderr,
                 "FAIL: plane-warm engine starts interned %lld "
                 "configurations (want 0)\n",
                 static_cast<long long>(warm_interned));
    return 1;
  }

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(
      out,
      "{\n  \"queries\": %d,\n  \"doc_elements\": %d,\n"
      "  \"compiles_per_sec\": %.1f,\n  \"cache_hits_per_sec\": %.1f,\n"
      "  \"cold_starts_per_sec\": %.1f,\n  \"warm_starts_per_sec\": %.1f,\n"
      "  \"hit_speedup\": %.2f,\n  \"warm_start_speedup\": %.2f,\n"
      "  \"counters\": {\n"
      "    \"cold_configs_interned\": %lld,\n"
      "    \"warm_configs_interned\": %lld\n  }\n}\n",
      num_queries, doc.CountElements(), 1.0 / compile_cold_s,
      1.0 / cache_hit_s, 1.0 / cold_start_s, 1.0 / warm_start_s,
      compile_cold_s / cache_hit_s, cold_start_s / warm_start_s,
      static_cast<long long>(cold_interned),
      static_cast<long long>(warm_interned));
  std::fclose(out);
  std::printf(
      "compile %.1f/s -> cache hit %.1f/s (x%.1f); engine start cold %.1f/s "
      "-> plane-warm %.1f/s (x%.2f, %lld -> %lld configs interned)\n",
      1.0 / compile_cold_s, 1.0 / cache_hit_s, compile_cold_s / cache_hit_s,
      1.0 / cold_start_s, 1.0 / warm_start_s, cold_start_s / warm_start_s,
      static_cast<long long>(cold_interned),
      static_cast<long long>(warm_interned));
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    constexpr std::string_view kJsonFlag = "--smoqe_json=";
    if (arg.substr(0, kJsonFlag.size()) == kJsonFlag) {
      return WriteJsonSmoke(std::string(arg.substr(kJsonFlag.size())));
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
