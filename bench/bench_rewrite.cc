// Theorem 5.1: Algorithm rewrite runs in O(|Q|^2 |sigma| |D_V|^2) time and
// produces an MFA of size O(|Q| |sigma| |D_V|). We grow |Q| along three query
// families over the hospital view and report rewriting time plus MFA size.

#include <benchmark/benchmark.h>

#include <string>

#include "gen/fixtures.h"
#include "rewrite/rewriter.h"
#include "view/view_def.h"
#include "xpath/ast.h"
#include "xpath/parser.h"

namespace {

const smoqe::view::ViewDef& Hospital() {
  static const smoqe::view::ViewDef* def =
      new smoqe::view::ViewDef(smoqe::gen::HospitalView());
  return *def;
}

std::string ChainQuery(int n) {
  std::string q = "patient";
  for (int i = 1; i < n; ++i) q += i % 2 == 1 ? "/parent" : "/patient";
  return q;
}

std::string FilterQuery(int n) {
  std::string q = "patient";
  for (int i = 0; i < n; ++i) q += "[record/diagnosis]";
  return q;
}

std::string StarQuery(int n) {
  std::string q = "(patient/parent)*";
  for (int i = 1; i < n; ++i) q += "/patient/(parent/patient)*";
  return q;
}

void RunRewrite(benchmark::State& state, const std::string& query) {
  auto q = smoqe::xpath::ParseQuery(query);
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  int64_t mfa_size = 0;
  for (auto _ : state) {
    auto mfa = smoqe::rewrite::RewriteToMfa(q.value(), Hospital());
    if (!mfa.ok()) {
      state.SkipWithError(mfa.status().ToString().c_str());
      return;
    }
    mfa_size = mfa.value().SizeMeasure();
    benchmark::DoNotOptimize(mfa);
  }
  state.counters["Q_size"] =
      static_cast<double>(smoqe::xpath::ExpandedSize(q.value()));
  state.counters["mfa_size"] = static_cast<double>(mfa_size);
  state.counters["mfa_per_Q"] =
      static_cast<double>(mfa_size) /
      static_cast<double>(smoqe::xpath::ExpandedSize(q.value()));
}

void BM_RewriteChain(benchmark::State& state) {
  RunRewrite(state, ChainQuery(static_cast<int>(state.range(0))));
}
void BM_RewriteFilters(benchmark::State& state) {
  RunRewrite(state, FilterQuery(static_cast<int>(state.range(0))));
}
void BM_RewriteStars(benchmark::State& state) {
  RunRewrite(state, StarQuery(static_cast<int>(state.range(0))));
}

BENCHMARK(BM_RewriteChain)->DenseRange(2, 20, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RewriteFilters)->DenseRange(1, 16, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RewriteStars)->DenseRange(1, 10, 3)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
