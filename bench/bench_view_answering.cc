// Section 1 motivation / Theorem 6.2: answering a query on a *virtual* view
// by rewrite+HyPE versus materializing the view and evaluating on it. The
// rewrite approach avoids the materialization cost entirely, which is the
// reason SMOQE exists; with many user groups the gap multiplies.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "eval/naive_evaluator.h"
#include "gen/fixtures.h"
#include "hype/hype.h"
#include "rewrite/rewriter.h"
#include "view/materializer.h"
#include "xpath/parser.h"

namespace {

const char* kQuery =
    "(patient/parent)*/patient[(parent/patient)*/record/diagnosis[text() = "
    "'heart disease']]";

const smoqe::view::ViewDef& Hospital() {
  static const smoqe::view::ViewDef* def =
      new smoqe::view::ViewDef(smoqe::gen::HospitalView());
  return *def;
}

void BM_RewriteThenHype(benchmark::State& state) {
  const smoqe::xml::Tree& source =
      smoqe::bench::HospitalDoc(static_cast<int>(state.range(0)));
  auto q = smoqe::xpath::ParseQuery(kQuery);
  for (auto _ : state) {
    // Rewriting is part of the per-query cost in this scenario.
    auto mfa = smoqe::rewrite::RewriteToMfa(q.value(), Hospital());
    smoqe::hype::HypeEvaluator eval(source, mfa.value());
    benchmark::DoNotOptimize(eval.Eval(source.root()));
  }
}

void BM_RewriteOnceThenHype(benchmark::State& state) {
  // The deployment pattern: the MFA is rewritten once per (view, query) and
  // reused across requests; per-request cost is evaluation only.
  const smoqe::xml::Tree& source =
      smoqe::bench::HospitalDoc(static_cast<int>(state.range(0)));
  auto q = smoqe::xpath::ParseQuery(kQuery);
  auto mfa = smoqe::rewrite::RewriteToMfa(q.value(), Hospital());
  if (!mfa.ok()) {
    state.SkipWithError(mfa.status().ToString().c_str());
    return;
  }
  smoqe::hype::HypeEvaluator eval(source, mfa.value());
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Eval(source.root()));
  }
}

void BM_MaterializeThenEvaluate(benchmark::State& state) {
  const smoqe::xml::Tree& source =
      smoqe::bench::HospitalDoc(static_cast<int>(state.range(0)));
  auto q = smoqe::xpath::ParseQuery(kQuery);
  for (auto _ : state) {
    auto mat = smoqe::view::Materialize(Hospital(), source);
    if (!mat.ok()) {
      state.SkipWithError(mat.status().ToString().c_str());
      return;
    }
    smoqe::eval::NaiveEvaluator eval(mat.value().tree);
    auto on_view = eval.Eval(q.value(), mat.value().tree.root());
    benchmark::DoNotOptimize(smoqe::view::MapToSource(mat.value(), on_view));
  }
}

void RegisterAll() {
  for (auto* bench :
       {benchmark::RegisterBenchmark("ViewAnswering/rewrite+HyPE",
                                     BM_RewriteThenHype),
        benchmark::RegisterBenchmark("ViewAnswering/rewrite-once+HyPE",
                                     BM_RewriteOnceThenHype),
        benchmark::RegisterBenchmark("ViewAnswering/materialize+eval",
                                     BM_MaterializeThenEvaluate)}) {
    bench->ArgName("patients")->Unit(benchmark::kMillisecond);
    for (int i = 1; i <= 5; ++i) {
      bench->Arg(static_cast<int64_t>(smoqe::bench::BasePatients()) * 2 * i);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
