// Figure 8(b): XPath query with filter conjunctions (hundreds of answers),
// evaluation time vs document size.

#include "bench_common.h"

int main(int argc, char** argv) {
  smoqe::bench::RegisterFigure(
      "Fig8b_filter_conjunctions",
      "department/patient[visit/treatment/medication/diagnosis/text() = "
      "'heart disease' and visit/treatment/test and "
      "address/city/text() = 'Edinburgh']",
      {smoqe::bench::kJaxp, smoqe::bench::kHype, smoqe::bench::kOptHype,
       smoqe::bench::kOptHypeC});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
