// Figure 8(a): XPath query with a filter returning a large set of nodes
// (thousands of answers), evaluation time vs document size, for the JAXP
// substitute, HyPE, OptHyPE and OptHyPE-C.

#include "bench_common.h"

int main(int argc, char** argv) {
  smoqe::bench::RegisterFigure(
      "Fig8a_filter_large_result",
      "department/patient[visit/treatment/medication]",
      {smoqe::bench::kJaxp, smoqe::bench::kHype, smoqe::bench::kOptHype,
       smoqe::bench::kOptHypeC});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
