// Parallel serving throughput: queries/sec of the sharded shared pass
// (exec::ShardedBatchEvaluator) versus pool width 1/2/4/8, and of the full
// QueryService front-end versus concurrent client count 1..64 -- the
// serving-scenario companion to bench_throughput's single-threaded batching
// figures.
//
// Two modes:
//  * default: google-benchmark binary (Sharded/* and Service/* families);
//  * --smoqe_json=FILE: a short self-timed smoke run writing queries/sec per
//    thread count and per client count to FILE (BENCH_parallel.json in CI,
//    consumed by the bench regression gate). Every sharded timing is
//    preceded by a bit-identity check against the solo BatchHypeEvaluator;
//    a mismatch aborts the run. Combine with SMOQE_BENCH_PATIENTS to shrink
//    the document.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "automata/compiler.h"
#include "bench_common.h"
#include "common/thread_pool.h"
#include "exec/query_service.h"
#include "exec/sharded_eval.h"
#include "hype/batch_hype.h"
#include "xpath/parser.h"

namespace smoqe::bench {
namespace {

// The bench_throughput workload shapes, reduced to a fixed 64-query server
// mix (filters, recursion, navigation, unions) -- distinct queries, so
// neither batching nor sharding gets sharing the baseline would not have.
std::vector<std::string> MakeWorkload(int n) {
  static const char* const kCities[] = {"Edinburgh", "Istanbul", "Antwerp",
                                        "Madison"};
  static const char* const kSpecialties[] = {"cardiology", "neurology",
                                             "oncology", "pediatrics"};
  static const char* const kTemplates[] = {
      "department/patient/pname",
      "department/patient/visit/date",
      "//diagnosis",
      "//pname",
      "department/patient/visit/treatment/medication/type",
      "department/patient/(parent | sibling)/patient/visit/date",
      "department/*/pname",
      "department/patient/visit/(date | doctor/dname)",
  };
  std::vector<std::string> queries;
  int i = 0;
  while (static_cast<int>(queries.size()) < n) {
    const int round = i / 8;
    const std::string city = kCities[(i + round) % 4];
    const std::string spec = kSpecialties[(i + round) % 4];
    const std::string med = "med-" + std::to_string(1 + i % 50);
    switch (i % 8) {
      case 0:
        queries.push_back("department/patient[address/city/text() = '" + city +
                          "']" + (round % 2 == 0 ? "/pname" : "/visit/date"));
        break;
      case 1:
        queries.push_back(
            "department/patient/visit/treatment/medication[type/text() = '" +
            med + "']");
        break;
      case 2:
        queries.push_back("//doctor[specialty/text() = '" + spec + "']" +
                          std::string(round % 2 == 0 ? "" : "/dname"));
        break;
      case 3:
        queries.push_back("department/patient/(parent/patient)*"
                          "[address/city/text() = '" +
                          city + "']/pname");
        break;
      default:
        queries.push_back(kTemplates[(i + round) % 8]);
        break;
    }
    ++i;
  }
  return queries;
}

std::vector<automata::Mfa> CompileWorkload(const std::vector<std::string>& qs) {
  std::vector<automata::Mfa> mfas;
  mfas.reserve(qs.size());
  for (const std::string& q : qs) {
    auto parsed = xpath::ParseQuery(q);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad workload query %s: %s\n", q.c_str(),
                   parsed.status().ToString().c_str());
      std::exit(1);
    }
    mfas.push_back(automata::CompileQuery(parsed.value()));
  }
  return mfas;
}

// Fans `clients` threads out against `service`, each submitting
// `per_client` workload queries and collecting its futures. Returns the
// number of failed answers. Shared by the gbench family and the JSON smoke
// so both measure identical client behavior.
int RunClients(exec::QueryService& service,
               const std::vector<std::string>& workload, int clients,
               int per_client) {
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<std::future<exec::QueryService::Answer>> inflight;
      inflight.reserve(per_client);
      for (int q = 0; q < per_client; ++q) {
        inflight.push_back(service.Submit(
            workload[(c * per_client + q) % workload.size()]));
      }
      for (auto& f : inflight) {
        if (!f.get().ok()) errors.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return errors.load();
}

// ---- google-benchmark families ----

void BM_ShardedEval(benchmark::State& state) {
  const xml::Tree& tree = HospitalDoc(BasePatients());
  const int threads = static_cast<int>(state.range(0));
  const int batch = static_cast<int>(state.range(1));
  std::vector<automata::Mfa> mfas = CompileWorkload(MakeWorkload(batch));
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& mfa : mfas) ptrs.push_back(&mfa);

  common::ThreadPool pool(threads);
  exec::ShardedOptions options;
  options.plane = &PlaneFor(tree);
  options.pool = &pool;
  exec::ShardedBatchEvaluator eval(tree, ptrs, options);
  int64_t answers = 0;
  for (auto _ : state) {
    answers = 0;
    for (const auto& result : eval.EvalAll(tree.root())) {
      answers += static_cast<int64_t>(result.size());
    }
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["units"] = static_cast<double>(eval.stats().num_units);
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * batch,
      benchmark::Counter::kIsRate);
}

void BM_SoloBaseline(benchmark::State& state) {
  const xml::Tree& tree = HospitalDoc(BasePatients());
  const int batch = static_cast<int>(state.range(0));
  std::vector<automata::Mfa> mfas = CompileWorkload(MakeWorkload(batch));
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& mfa : mfas) ptrs.push_back(&mfa);
  hype::BatchHypeOptions options;
  options.plane = &PlaneFor(tree);
  hype::BatchHypeEvaluator eval(tree, ptrs, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.EvalAll(tree.root()));
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * batch,
      benchmark::Counter::kIsRate);
}

void BM_Service(benchmark::State& state) {
  const xml::Tree& tree = HospitalDoc(BasePatients());
  const int clients = static_cast<int>(state.range(0));
  const std::vector<std::string> workload = MakeWorkload(64);
  exec::QueryServiceOptions options;
  options.plane = &PlaneFor(tree);
  options.max_batch = 16;
  options.max_delay = std::chrono::microseconds(200);
  exec::QueryService service(tree, options);
  constexpr int kQueriesPerClient = 16;

  for (auto _ : state) {
    if (RunClients(service, workload, clients, kQueriesPerClient) != 0) {
      state.SkipWithError("service returned errors");
      break;
    }
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * clients * kQueriesPerClient,
      benchmark::Counter::kIsRate);
}

void RegisterAll() {
  auto* sharded =
      benchmark::RegisterBenchmark("Sharded/Eval", BM_ShardedEval);
  sharded->ArgNames({"threads", "batch"})->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  for (int threads : {1, 2, 4, 8}) sharded->Args({threads, 64});

  auto* solo = benchmark::RegisterBenchmark("Sharded/SoloBaseline",
                                            BM_SoloBaseline);
  solo->ArgNames({"batch"})->Unit(benchmark::kMillisecond);
  solo->Args({64});

  auto* service = benchmark::RegisterBenchmark("Service/Clients", BM_Service);
  service->ArgNames({"clients"})->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  for (int clients : {1, 4, 16, 64}) service->Args({clients});
}

// ---- --smoqe_json smoke mode ----

int WriteJsonSmoke(const std::string& path) {
  const xml::Tree& tree = HospitalDoc(BasePatients());
  constexpr int kBatch = 64;
  const std::vector<std::string> workload = MakeWorkload(kBatch);
  std::vector<automata::Mfa> mfas = CompileWorkload(workload);
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& mfa : mfas) ptrs.push_back(&mfa);

  // Solo baseline: the single-threaded batched pass.
  hype::BatchHypeOptions solo_options;
  solo_options.plane = &PlaneFor(tree);
  hype::BatchHypeEvaluator solo(tree, ptrs, solo_options);
  std::vector<std::vector<xml::NodeId>> expected = solo.EvalAll(tree.root());
  double solo_qps = kBatch / BestSecondsPerRound([&] {
    benchmark::DoNotOptimize(solo.EvalAll(tree.root()));
  });

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"patients\": %d,\n  \"elements\": %d,\n"
               "  \"hardware_threads\": %d,\n  \"batch\": %d,\n"
               "  \"solo_qps\": %.1f,\n  \"sharded\": [\n",
               BasePatients(), tree.CountElements(),
               common::ThreadPool::HardwareThreads(), kBatch, solo_qps);

  bool first = true;
  for (int threads : {1, 2, 4, 8}) {
    common::ThreadPool pool(threads);
    exec::ShardedOptions options;
    options.plane = &PlaneFor(tree);
    options.pool = &pool;
    exec::ShardedBatchEvaluator eval(tree, ptrs, options);
    // Bit-identity gate before timing: the sharded pass must reproduce the
    // solo answers exactly.
    if (eval.EvalAll(tree.root()) != expected) {
      std::fprintf(stderr, "sharded/solo mismatch at %d threads\n", threads);
      std::fclose(out);
      return 1;
    }
    double qps = kBatch / BestSecondsPerRound([&] {
      benchmark::DoNotOptimize(eval.EvalAll(tree.root()));
    });
    std::fprintf(out,
                 "%s    {\"threads\": %d, \"units\": %d, \"groups\": %d, "
                 "\"qps\": %.1f, \"speedup_vs_solo\": %.2f}",
                 first ? "" : ",\n", threads, eval.stats().num_units,
                 eval.stats().num_groups, qps, qps / solo_qps);
    first = false;
  }
  std::fprintf(out, "\n  ],\n  \"service\": [\n");

  first = true;
  for (int clients : {1, 8, 32, 64}) {
    exec::QueryServiceOptions options;
    options.plane = &PlaneFor(tree);
    options.max_batch = 16;
    options.max_delay = std::chrono::microseconds(200);
    exec::QueryService service(tree, options);
    constexpr int kQueriesPerClient = 8;
    std::atomic<int> errors{0};
    double secs = BestSecondsPerRound([&] {
      errors += RunClients(service, workload, clients, kQueriesPerClient);
    });
    if (errors.load() != 0) {
      std::fprintf(stderr, "service errors at %d clients\n", clients);
      std::fclose(out);
      return 1;
    }
    // Snapshot the admission/cache counters of everything this
    // configuration served: how batches closed, compile-cache efficiency,
    // same-MFA coalescing, and warm-evaluator reuse.
    const exec::QueryServiceStats st = service.stats();
    std::fprintf(out,
                 "%s    {\"clients\": %d, \"qps\": %.1f, "
                 "\"batches\": %lld, \"batches_full\": %lld, "
                 "\"batches_aged\": %lld, \"cache_hits\": %lld, "
                 "\"cache_misses\": %lld, \"coalesced\": %lld, "
                 "\"evaluator_reuses\": %lld, "
                 "\"queries_timed_out\": %lld, \"queries_shed\": %lld, "
                 "\"queries_cancelled\": %lld, \"queries_retried\": %lld}",
                 first ? "" : ",\n", clients,
                 clients * kQueriesPerClient / secs,
                 static_cast<long long>(st.batches),
                 static_cast<long long>(st.batches_full),
                 static_cast<long long>(st.batches_aged),
                 static_cast<long long>(st.cache.hits),
                 static_cast<long long>(st.cache.misses),
                 static_cast<long long>(st.coalesced_duplicates),
                 static_cast<long long>(st.evaluator_reuses),
                 static_cast<long long>(st.queries_timed_out),
                 static_cast<long long>(st.queries_shed),
                 static_cast<long long>(st.queries_cancelled),
                 static_cast<long long>(st.queries_retried));
    std::printf(
        "service clients=%d: %lld batches (%lld full, %lld aged), "
        "rewrite cache %lld hits / %lld misses, %lld coalesced, "
        "%lld evaluator reuses, %lld timed out / %lld shed / "
        "%lld cancelled / %lld retried\n",
        clients, static_cast<long long>(st.batches),
        static_cast<long long>(st.batches_full),
        static_cast<long long>(st.batches_aged),
        static_cast<long long>(st.cache.hits),
        static_cast<long long>(st.cache.misses),
        static_cast<long long>(st.coalesced_duplicates),
        static_cast<long long>(st.evaluator_reuses),
        static_cast<long long>(st.queries_timed_out),
        static_cast<long long>(st.queries_shed),
        static_cast<long long>(st.queries_cancelled),
        static_cast<long long>(st.queries_retried));
    first = false;
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace smoqe::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    constexpr std::string_view kJsonFlag = "--smoqe_json=";
    if (arg.substr(0, kJsonFlag.size()) == kJsonFlag) {
      return smoqe::bench::WriteJsonSmoke(
          std::string(arg.substr(kJsonFlag.size())));
    }
  }
  smoqe::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
