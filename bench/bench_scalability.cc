// Theorem 6.2: linear data complexity. HyPE's time per element node must stay
// flat as |T| grows (items_per_second reports elements/s; a linear algorithm
// keeps it roughly constant across the size series).

#include "bench_common.h"

namespace {

const char* const kQuery =
    "department/patient[(parent/patient)*/visit/treatment/medication/"
    "diagnosis/text() = 'heart disease']/pname";

void BM_HypeScaling(benchmark::State& state) {
  const smoqe::xml::Tree& tree =
      smoqe::bench::HospitalDoc(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        smoqe::bench::RunEngineOnce(smoqe::bench::kHype, kQuery, tree));
  }
  state.SetItemsProcessed(state.iterations() * tree.CountElements());
  state.counters["MB"] = static_cast<double>(tree.ApproxByteSize()) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  auto* b = benchmark::RegisterBenchmark("Thm62_linear_data_complexity",
                                         BM_HypeScaling);
  b->ArgName("patients")->Unit(benchmark::kMillisecond);
  for (int i = 1; i <= 10; ++i) {
    b->Arg(static_cast<int64_t>(smoqe::bench::BasePatients()) * i);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
