// Figure 9(b): regular XPath with a filter inside the Kleene star body.

#include "bench_common.h"

int main(int argc, char** argv) {
  smoqe::bench::RegisterFigure(
      "Fig9b_filter_inside_star",
      "department/patient/(parent/patient[visit/treatment/medication])*/"
      "pname",
      {smoqe::bench::kHype, smoqe::bench::kOptHype, smoqe::bench::kOptHypeC});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
