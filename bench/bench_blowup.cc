// Corollary 3.3 / Figure 2: the explicit Xreg rewriting is exponential in
// |Q| and |D_V| (even for non-recursive views), while the MFA of Theorem 5.1
// stays O(|Q| |sigma| |D_V|). This bench prints both sizes side by side for
// (a) wildcard chains over a non-recursive "ladder" view and (b) queries over
// the recursive hospital view.

#include <cstdio>
#include <string>
#include <vector>

#include "gen/fixtures.h"
#include "rewrite/direct_rewriter.h"
#include "rewrite/rewriter.h"
#include "view/view_parser.h"
#include "xpath/ast.h"
#include "xpath/parser.h"

namespace {

// Non-recursive view whose DTD graph is a width-2 ladder of depth `levels`;
// a wildcard chain can sit at 2^levels type combinations.
smoqe::view::ViewDef LadderView(int levels) {
  std::string view_dtd = "dtd v0 { ";
  std::string sigma;
  for (int i = 0; i < levels; ++i) {
    std::string l = "l" + std::to_string(i), r = "r" + std::to_string(i);
    std::string nl = "l" + std::to_string(i + 1),
                nr = "r" + std::to_string(i + 1);
    if (i == 0) {
      view_dtd += "v0 -> l0*, r0* ; ";
      sigma += "v0.l0 = \"x\" ; v0.r0 = \"x\" ; ";
    }
    if (i + 1 < levels) {
      view_dtd += l + " -> " + nl + "*, " + nr + "* ; ";
      view_dtd += r + " -> " + nl + "*, " + nr + "* ; ";
      sigma += l + "." + nl + " = \"x\" ; " + l + "." + nr + " = \"x\" ; ";
      sigma += r + "." + nl + " = \"x\" ; " + r + "." + nr + " = \"x\" ; ";
    } else {
      view_dtd += l + " -> #empty ; " + r + " -> #empty ; ";
    }
  }
  view_dtd += "}";
  std::string spec = "view ladder {\n  source dtd s { s -> x* ; x -> x* ; }\n"
                     "  view " + view_dtd + "\n  sigma { " + sigma + " }\n}";
  auto v = smoqe::view::ParseView(spec);
  if (!v.ok()) {
    std::fprintf(stderr, "ladder spec: %s\n", v.status().ToString().c_str());
    std::abort();
  }
  return v.take();
}

void Row(const smoqe::view::ViewDef& def, const std::string& query) {
  auto q = smoqe::xpath::ParseQuery(query);
  if (!q.ok()) std::abort();
  auto direct = smoqe::rewrite::DirectRewrite(q.value(), def);
  auto mfa = smoqe::rewrite::RewriteToMfa(q.value(), def);
  if (!direct.ok() || !mfa.ok()) std::abort();
  std::printf("%-34.34s  |Q|=%-4llu  explicit=%-12llu  MFA=%lld\n",
              query.c_str(),
              static_cast<unsigned long long>(
                  smoqe::xpath::ExpandedSize(q.value())),
              static_cast<unsigned long long>(
                  smoqe::xpath::ExpandedSize(direct.value())),
              static_cast<long long>(mfa.value().SizeMeasure()));
}

}  // namespace

int main() {
  std::printf("== Corollary 3.3: non-recursive ladder views, wildcard chains "
              "==\n");
  for (int levels = 2; levels <= 7; ++levels) {
    smoqe::view::ViewDef def = LadderView(levels);
    std::string query = "*";
    for (int i = 1; i < levels; ++i) query += "/*";
    std::printf("levels=%d  ", levels);
    Row(def, query);
  }
  std::printf("\n== Recursive hospital view (sigma_0) ==\n");
  smoqe::view::ViewDef hospital = smoqe::gen::HospitalView();
  for (const char* query :
       {"patient", "//record", "patient[*//record/diagnosis/text() = "
        "'heart disease']",
        "(patient/parent)*/patient[(parent/patient)*/record/diagnosis["
        "text() = 'heart disease']]"}) {
    Row(hospital, query);
  }
  std::printf("\nexplicit = expanded size of the Xreg rewriting (Corollary "
              "3.3: exponential);\nMFA = SizeMeasure of the rewritten "
              "automaton (Theorem 5.1: linear).\n");
  return 0;
}
