// Ablation (Section 4 vs Section 6): the "conceptual" MFA evaluation performs
// one subtree pass per filter occurrence; HyPE folds everything into a single
// pass. Filter-heavy queries make the difference explicit.

#include "bench_common.h"

namespace {

const char* const kQueries[] = {
    // one filter per step
    "department[name]/patient[pname]/visit[date]/treatment[medication]",
    // filter re-triggered along a recursive descent
    "department/patient/(parent/patient[visit/treatment/medication/"
    "diagnosis/text() = 'heart disease'])*",
    // the running example
    "department/patient[(parent/patient)*/visit/treatment/medication/"
    "diagnosis/text() = 'heart disease']/pname",
};

}  // namespace

int main(int argc, char** argv) {
  using smoqe::bench::Engine;
  int qi = 0;
  for (const char* query : kQueries) {
    std::string base = "AblationPasses/Q" + std::to_string(++qi);
    for (Engine engine : {Engine::kConceptual, Engine::kHype}) {
      std::string name = base + "/" + smoqe::bench::EngineName(engine);
      std::string q(query);
      auto* b = benchmark::RegisterBenchmark(
          name.c_str(),
          [q, engine](benchmark::State& state) {
            const smoqe::xml::Tree& tree =
                smoqe::bench::HospitalDoc(static_cast<int>(state.range(0)));
            for (auto _ : state) {
              benchmark::DoNotOptimize(
                  smoqe::bench::RunEngineOnce(engine, q, tree));
            }
          });
      b->ArgName("patients")->Unit(benchmark::kMillisecond);
      // Conceptual evaluation is quadratic-ish; keep sizes moderate.
      for (int i = 1; i <= 4; ++i) {
        b->Arg(static_cast<int64_t>(smoqe::bench::BasePatients()) * i);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
