// Figure 9(a): regular XPath with the Kleene star outside any filter
// (ancestor-chain navigation), HyPE variants only -- conventional XPath
// engines cannot evaluate general Kleene stars, which is the paper's point.

#include "bench_common.h"

int main(int argc, char** argv) {
  smoqe::bench::RegisterFigure(
      "Fig9a_star_outside_filter",
      "department/patient/(parent/patient)*/visit/treatment/medication/"
      "diagnosis[text() = 'heart disease']",
      {smoqe::bench::kHype, smoqe::bench::kOptHype, smoqe::bench::kOptHypeC});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
