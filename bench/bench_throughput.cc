// Multi-query throughput: queries/sec for per-query HyPE passes vs the
// batched shared-pass evaluator (BatchHypeEvaluator), at batch sizes
// 1/4/16/64, with and without the subtree-label index, plus the compilation
// amortization of the RewriteCache (cold parse+rewrite vs cache hit).
//
// Two modes:
//  * default: google-benchmark binary (Throughput/* and Rewrite/* families);
//  * --smoqe_json=FILE: a short self-timed smoke run that writes
//    machine-readable queries/sec per batch size to FILE (used by the CI
//    benchmark smoke job to seed the perf trajectory). Combine with
//    SMOQE_BENCH_PATIENTS to shrink the document.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "automata/compiler.h"
#include "bench_common.h"
#include "gen/fixtures.h"
#include "hype/batch_hype.h"
#include "rewrite/rewrite_cache.h"
#include "rewrite/rewriter.h"
#include "xpath/parser.h"

namespace smoqe::bench {
namespace {

// A server-like workload: n DISTINCT queries over the hospital document —
// filtered queries (text predicates, descendant filters, Kleene stars) mixed
// with plain navigation/extraction paths (the same mix as the paper's own
// Section 7 query set), cycling through shape templates with varying text
// constants (4 filtered : 4 navigation per 8 slots).
std::vector<std::string> MakeWorkload(int n) {
  static const char* const kCities[] = {"Edinburgh", "Istanbul", "Antwerp",
                                        "Madison"};
  static const char* const kSpecialties[] = {"cardiology", "neurology",
                                             "oncology", "pediatrics"};
  // Filter-free extraction paths, rotated so repeated template slots still
  // draw distinct queries.
  static const char* const kExactPaths[] = {
      "department/patient/pname",
      "department/patient/visit/date",
      "department/patient/address/street",
      "department/patient/visit/doctor/dname",
      "department/patient/visit/treatment/medication/type",
      "department/patient/address/zip",
      "department/patient/visit/treatment/test/type",
      "department/patient/sibling/patient/pname",
  };
  static const char* const kDescendantPaths[] = {
      "//diagnosis", "//pname",      "//doctor", "//medication",
      "//test",      "//specialty", "//date",   "//sibling",
  };
  static const char* const kWildcardPaths[] = {
      "department/name",
      "department/patient/visit/treatment/*",
      "department/*/pname",
      "department/patient/parent/patient/pname",
      "department/patient/visit/*/medication/diagnosis",
      "department/patient/(parent | sibling)/patient/visit/date",
      "department/*/visit/doctor/*",
      "department/patient/*/patient/address/city",
  };
  static const char* const kUnionPaths[] = {
      "department/patient/(pname | address/city)",
      "department/patient/visit/(date | doctor/dname)",
      "department/patient/visit/treatment/(medication | test)/type",
      "department/(name | patient/pname)",
      "department/patient/(address/(street | zip) | visit/date)",
      "department/patient/(parent/patient)*/pname",
      "department/patient/(sibling/patient/pname | parent/patient/pname)",
      "department/patient/visit/(doctor/specialty | treatment/test/type)",
  };
  // Projections rotated through the repeated template slots so a constant
  // drawn from a small pool (4 cities, 4 specialties) still yields a
  // distinct query per slot occurrence.
  static const char* const kHeavyProjections[] = {"", "/pname", "/visit/date",
                                                  "/address/city"};
  std::vector<std::string> queries;
  int i = 0;
  while (static_cast<int>(queries.size()) < n) {
    const int round = i / 8;
    // Decorrelate the constants from the template selector (i % 8 fixes
    // i % 4, so `i % 4` alone would repeat the same constant every round).
    const std::string city = kCities[(i + round) % 4];
    const std::string spec = kSpecialties[(i + round) % 4];
    const std::string med = "med-" + std::to_string(1 + i % 50);
    switch (i % 8) {
      case 0:
        queries.push_back("department/patient[address/city/text() = '" + city +
                          "']" + (round % 8 < 4 ? "/pname" : "/visit/date"));
        break;
      case 1:
        queries.push_back(
            "department/patient/visit/treatment/medication[type/text() = '" +
            med + "']");
        break;
      case 2:
        queries.push_back("//doctor[specialty/text() = '" + spec + "']" +
                          std::string(round % 8 < 4 ? "" : "/dname"));
        break;
      case 3:
        queries.push_back(
            round % 2 == 0
                ? "//patient[visit/treatment/medication/diagnosis/text() = "
                  "'heart disease']" + std::string(kHeavyProjections[
                      (round / 2) % 4])
                : "department/patient/(parent/patient)*"
                  "[address/city/text() = '" + city + "']" +
                      (round % 8 < 4 ? "/pname" : "/visit/date"));
        break;
      case 4:
        queries.push_back(kExactPaths[round % 8]);
        break;
      case 5:
        queries.push_back(kDescendantPaths[round % 8]);
        break;
      case 6:
        queries.push_back(kWildcardPaths[round % 8]);
        break;
      default:
        queries.push_back(kUnionPaths[round % 8]);
        break;
    }
    ++i;
  }
  // The workload models distinct server queries; duplicates would hand the
  // batched mode perfect sharing the baseline cannot have. (Holds for
  // n <= 64; larger batches intentionally start repeating like real traffic.)
  if (n <= 64) {
    std::vector<std::string> sorted = queries;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      std::fprintf(stderr, "MakeWorkload produced duplicate queries\n");
      std::exit(1);
    }
  }
  return queries;
}

std::vector<automata::Mfa> CompileWorkload(const std::vector<std::string>& qs) {
  std::vector<automata::Mfa> mfas;
  mfas.reserve(qs.size());
  for (const std::string& q : qs) {
    auto parsed = xpath::ParseQuery(q);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad workload query %s: %s\n", q.c_str(),
                   parsed.status().ToString().c_str());
      std::exit(1);
    }
    mfas.push_back(automata::CompileQuery(parsed.value()));
  }
  return mfas;
}

const hype::SubtreeLabelIndex* MaybeIndex(const xml::Tree& tree, bool indexed) {
  if (!indexed) return nullptr;
  return &IndexFor(tree, hype::SubtreeLabelIndex::Mode::kFull);
}

// ---- google-benchmark families ----

void BM_PerQuery(benchmark::State& state) {
  const xml::Tree& tree = HospitalDoc(BasePatients());
  const int batch = static_cast<int>(state.range(0));
  const bool indexed = state.range(1) != 0;
  std::vector<automata::Mfa> mfas = CompileWorkload(MakeWorkload(batch));

  hype::HypeOptions options;
  options.index = MaybeIndex(tree, indexed);
  options.plane = &PlaneFor(tree);
  // Persistent evaluators (warm transition tables), answered one pass each.
  std::vector<std::unique_ptr<hype::HypeEvaluator>> evals;
  for (const automata::Mfa& mfa : mfas) {
    evals.push_back(std::make_unique<hype::HypeEvaluator>(tree, mfa, options));
  }
  int64_t answers = 0;
  for (auto _ : state) {
    answers = 0;
    for (auto& eval : evals) {
      answers += static_cast<int64_t>(eval->Eval(tree.root()).size());
    }
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * batch,
      benchmark::Counter::kIsRate);
}

void BM_Batched(benchmark::State& state) {
  const xml::Tree& tree = HospitalDoc(BasePatients());
  const int batch = static_cast<int>(state.range(0));
  const bool indexed = state.range(1) != 0;
  std::vector<automata::Mfa> mfas = CompileWorkload(MakeWorkload(batch));
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& mfa : mfas) ptrs.push_back(&mfa);

  hype::BatchHypeOptions options;
  options.index = MaybeIndex(tree, indexed);
  options.plane = &PlaneFor(tree);
  hype::BatchHypeEvaluator eval(tree, ptrs, options);
  int64_t answers = 0;
  for (auto _ : state) {
    answers = 0;
    for (const auto& result : eval.EvalAll(tree.root())) {
      answers += static_cast<int64_t>(result.size());
    }
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["nodes_walked"] =
      static_cast<double>(eval.pass_stats().nodes_walked);
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * batch,
      benchmark::Counter::kIsRate);
}

void BM_RewriteCold(benchmark::State& state) {
  view::ViewDef def = gen::HospitalView();
  const std::string query =
      "patient[(parent/patient)*/record/diagnosis/text() = 'heart disease']";
  for (auto _ : state) {
    auto parsed = xpath::ParseQuery(query);
    auto mfa = rewrite::RewriteToMfa(parsed.value(), def);
    benchmark::DoNotOptimize(mfa.value().nfa.size());
  }
}

void BM_RewriteCached(benchmark::State& state) {
  view::ViewDef def = gen::HospitalView();
  rewrite::RewriteCache cache(&def);
  const std::string query =
      "patient[(parent/patient)*/record/diagnosis/text() = 'heart disease']";
  (void)cache.Get(query);  // warm the single entry
  for (auto _ : state) {
    auto mfa = cache.Get(query);
    benchmark::DoNotOptimize(mfa.value().mfa->nfa.size());
  }
}

void RegisterAll() {
  for (bool batched : {false, true}) {
    auto* b = benchmark::RegisterBenchmark(
        batched ? "Throughput/Batched" : "Throughput/PerQuery",
        batched ? BM_Batched : BM_PerQuery);
    b->ArgNames({"batch", "index"})->Unit(benchmark::kMillisecond);
    for (int indexed : {0, 1}) {
      for (int batch : {1, 4, 16, 64}) b->Args({batch, indexed});
    }
  }
  benchmark::RegisterBenchmark("Rewrite/Cold", BM_RewriteCold);
  benchmark::RegisterBenchmark("Rewrite/Cached", BM_RewriteCached);
}

// ---- --smoqe_json smoke mode ----

int WriteJsonSmoke(const std::string& path) {
  const xml::Tree& tree = HospitalDoc(BasePatients());
  std::vector<std::string> workload = MakeWorkload(64);
  std::vector<automata::Mfa> mfas = CompileWorkload(workload);

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"patients\": %d,\n  \"elements\": %d,\n"
               "  \"results\": [\n", BasePatients(), tree.CountElements());

  bool first = true;
  for (bool indexed : {false, true}) {
    for (int batch : {1, 4, 16, 64}) {
      hype::HypeOptions solo_options;
      solo_options.index = MaybeIndex(tree, indexed);
      solo_options.plane = &PlaneFor(tree);
      std::vector<std::unique_ptr<hype::HypeEvaluator>> evals;
      std::vector<const automata::Mfa*> ptrs;
      for (int i = 0; i < batch; ++i) {
        evals.push_back(std::make_unique<hype::HypeEvaluator>(tree, mfas[i],
                                                              solo_options));
        ptrs.push_back(&mfas[i]);
      }
      hype::BatchHypeOptions batch_options;
      batch_options.index = solo_options.index;
      batch_options.plane = solo_options.plane;
      hype::BatchHypeEvaluator batch_eval(tree, ptrs, batch_options);

      auto run_per_query = [&] {
        for (auto& eval : evals) benchmark::DoNotOptimize(eval->Eval(tree.root()));
      };
      auto run_batched = [&] {
        benchmark::DoNotOptimize(batch_eval.EvalAll(tree.root()));
      };
      // Warm the transition tables and check the modes agree before timing.
      std::vector<std::vector<xml::NodeId>> batched_answers =
          batch_eval.EvalAll(tree.root());
      for (int i = 0; i < batch; ++i) {
        if (evals[i]->Eval(tree.root()) != batched_answers[i]) {
          std::fprintf(stderr, "batched/per-query mismatch on %s\n",
                       workload[i].c_str());
          std::fclose(out);
          return 1;
        }
      }
      double per_query = BestSecondsPerRound(run_per_query);
      double batched = BestSecondsPerRound(run_batched);
      double pq_qps = batch / per_query;
      double b_qps = batch / batched;

      std::fprintf(out,
                   "%s    {\"batch\": %d, \"indexed\": %s, "
                   "\"per_query_qps\": %.1f, \"batched_qps\": %.1f, "
                   "\"speedup\": %.2f}",
                   first ? "" : ",\n", batch, indexed ? "true" : "false",
                   pq_qps, b_qps, b_qps / pq_qps);
      first = false;
    }
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace smoqe::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    constexpr std::string_view kJsonFlag = "--smoqe_json=";
    if (arg.substr(0, kJsonFlag.size()) == kJsonFlag) {
      return smoqe::bench::WriteJsonSmoke(std::string(arg.substr(kJsonFlag.size())));
    }
  }
  smoqe::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
