// Columnar document plane: full-DFS vs jump-mode traversal vs the PR 3
// sharded baseline, on label-sparse and label-dense workloads.
//
// The jump driver (hype/batch_hype.h) skips positions whose label is in no
// live engine's relevant set by leaping across the plane's posting lists;
// its win is proportional to label sparsity. This bench pins that win:
//  * label-sparse navigation (the target workload: rare labels, simple
//    configurations) -- jump must beat the PR 3 sharded baseline >= 1.5x;
//  * label-sparse mixed (adds filters below rare labels: framed engines in
//    rare subtrees, jump elsewhere);
//  * label-dense navigation (candidates everywhere: measures jump overhead,
//    expected ~parity with full DFS).
//
// Two modes:
//  * default: google-benchmark binary (DocPlane/* families, sparse_nav);
//  * --smoqe_json=FILE: a short self-timed smoke run writing queries/sec per
//    workload x mode to FILE (BENCH_docplane.json in CI, consumed by
//    ci/check_bench_regression.py). Every timing is preceded by a
//    bit-identity gate: answers AND traversal statistics (elements visited,
//    cans sizes, AFA requests) of every mode must equal the solo no-jump
//    HypeEvaluator's, for every query in every mix; a mismatch aborts the
//    run. Document size scales with SMOQE_BENCH_PATIENTS (elements ~= 2000x
//    patients), so CI smoke stays small.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "automata/compiler.h"
#include "bench_common.h"
#include "common/thread_pool.h"
#include "exec/sharded_eval.h"
#include "hype/batch_hype.h"
#include "hype/hype.h"
#include "xml/doc_plane.h"
#include "xpath/parser.h"

namespace smoqe::bench {
namespace {

// A synthetic document with six common "filler" labels and four rare
// "needle" labels (~0.5% of elements), built by random-parent attachment
// (expected depth O(log n), bushy like real data). Deterministic for a
// fixed element count.
xml::Tree SparseDoc(int num_elements) {
  std::mt19937_64 rng(20260730);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  xml::Tree tree;
  std::vector<xml::NodeId> elements;
  elements.push_back(tree.AddRoot("filler0"));
  for (int i = 1; i < num_elements; ++i) {
    xml::NodeId parent = elements[rng() % elements.size()];
    std::string label;
    if (coin(rng) < 0.005) {
      label = "needle" + std::to_string(rng() % 4);
    } else {
      label = "filler" + std::to_string(rng() % 6);
    }
    elements.push_back(tree.AddElement(parent, label));
    if (coin(rng) < 0.1) {
      tree.AddText(elements.back(), coin(rng) < 0.5 ? "alpha" : "beta");
    }
  }
  return tree;
}

std::vector<std::string> SparseNavWorkload() {
  return {
      "//needle0", "//needle1", "//needle2", "//needle3",
      "//needle0/needle1", "//needle1/needle2", "//needle2/needle3",
      "//needle3/needle0",
      "//needle0/(*)*/needle2", "//needle1/(*)*/needle3",
      "//needle2/(*)*/needle0", "//needle3/(*)*/needle1",
      "//needle0 | //needle2", "//needle1 | //needle3",
      "//needle0/filler0", "//needle1/filler1",
  };
}

std::vector<std::string> SparseMixedWorkload() {
  std::vector<std::string> queries = SparseNavWorkload();
  queries.resize(12);
  queries.push_back("//needle0[needle1]");
  queries.push_back("//needle1[not(needle2)]");
  queries.push_back("//needle2[filler0]");
  queries.push_back("//needle3[filler1 or needle0]");
  return queries;
}

std::vector<std::string> DenseNavWorkload() {
  return {
      "//filler0", "//filler1", "//filler2", "//filler3",
      "//filler0/filler1", "//filler1/filler2", "//filler2/filler3",
      "//filler3/filler4",
      "//filler4/(*)*/filler5", "//filler5/(*)*/filler0",
      "//filler0 | //filler5", "//filler1/filler1",
  };
}

std::vector<automata::Mfa> CompileWorkload(const std::vector<std::string>& qs) {
  std::vector<automata::Mfa> mfas;
  mfas.reserve(qs.size());
  for (const std::string& q : qs) {
    auto parsed = xpath::ParseQuery(q);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad workload query %s: %s\n", q.c_str(),
                   parsed.status().ToString().c_str());
      std::exit(1);
    }
    mfas.push_back(automata::CompileQuery(parsed.value()));
  }
  return mfas;
}

// Solo no-jump reference: answers and per-query traversal statistics, the
// oracle every benchmarked mode must reproduce bit-identically.
struct Reference {
  std::vector<std::vector<xml::NodeId>> answers;
  std::vector<hype::EvalStats> stats;
};

Reference SoloReference(const xml::Tree& tree, const xml::DocPlane& plane,
                        const std::vector<automata::Mfa>& mfas) {
  Reference ref;
  for (const automata::Mfa& mfa : mfas) {
    hype::HypeOptions options;
    options.plane = &plane;
    options.enable_jump = false;
    hype::HypeEvaluator solo(tree, mfa, options);
    ref.answers.push_back(solo.Eval(tree.root()));
    ref.stats.push_back(solo.stats());
  }
  return ref;
}

bool StatsMatch(const hype::EvalStats& a, const hype::EvalStats& b) {
  return a.elements_visited == b.elements_visited &&
         a.cans_vertices == b.cans_vertices && a.cans_edges == b.cans_edges &&
         a.afa_state_requests == b.afa_state_requests;
}

// Answers + traversal-statistics gate for one benchmarked evaluator run.
template <typename StatsFn>
bool GateAgainstReference(const Reference& ref,
                          const std::vector<std::vector<xml::NodeId>>& answers,
                          StatsFn stats_of, const char* what) {
  for (size_t i = 0; i < ref.answers.size(); ++i) {
    if (answers[i] != ref.answers[i]) {
      std::fprintf(stderr, "%s: answer mismatch vs solo on query %zu\n", what,
                   i);
      return false;
    }
    if (!StatsMatch(stats_of(i), ref.stats[i])) {
      std::fprintf(stderr, "%s: traversal-stats mismatch vs solo on query %zu\n",
                   what, i);
      return false;
    }
  }
  return true;
}

int BenchElements() { return 2000 * BasePatients(); }

int ShardedPoolWidth() {
  return std::max(1, std::min(4, common::ThreadPool::HardwareThreads()));
}

// ---- google-benchmark families ----

void BM_BatchTraversal(benchmark::State& state, bool jump) {
  static const xml::Tree tree = SparseDoc(BenchElements());
  static const xml::DocPlane plane = xml::DocPlane::Build(tree);
  std::vector<automata::Mfa> mfas = CompileWorkload(SparseNavWorkload());
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& m : mfas) ptrs.push_back(&m);
  hype::BatchHypeOptions options;
  options.plane = &plane;
  options.enable_jump = jump;
  hype::BatchHypeEvaluator eval(tree, ptrs, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.EvalAll(tree.root()));
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations() * ptrs.size()),
      benchmark::Counter::kIsRate);
  state.counters["jumped"] =
      static_cast<double>(eval.pass_stats().positions_jumped);
}

void BM_ShardedTraversal(benchmark::State& state, bool jump) {
  static const xml::Tree tree = SparseDoc(BenchElements());
  static const xml::DocPlane plane = xml::DocPlane::Build(tree);
  std::vector<automata::Mfa> mfas = CompileWorkload(SparseNavWorkload());
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& m : mfas) ptrs.push_back(&m);
  common::ThreadPool pool(ShardedPoolWidth());
  exec::ShardedOptions options;
  options.plane = &plane;
  options.pool = &pool;
  options.enable_jump = jump;
  exec::ShardedBatchEvaluator eval(tree, ptrs, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.EvalAll(tree.root()));
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations() * ptrs.size()),
      benchmark::Counter::kIsRate);
}

void RegisterAll() {
  benchmark::RegisterBenchmark("DocPlane/BatchFullDfs",
                               [](benchmark::State& s) {
                                 BM_BatchTraversal(s, false);
                               })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("DocPlane/BatchJump",
                               [](benchmark::State& s) {
                                 BM_BatchTraversal(s, true);
                               })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("DocPlane/ShardedBaseline",
                               [](benchmark::State& s) {
                                 BM_ShardedTraversal(s, false);
                               })
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark("DocPlane/ShardedJump",
                               [](benchmark::State& s) {
                                 BM_ShardedTraversal(s, true);
                               })
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
}

// ---- --smoqe_json smoke mode ----

struct WorkloadResult {
  std::string name;
  double batch_full_qps = 0;
  double batch_jump_qps = 0;
  double sharded_baseline_qps = 0;
  double sharded_jump_qps = 0;
  double jumped_fraction = 0;  // positions jumped / positions of a full walk
  // TransitionPlane interning (PR 5): the batch evaluator here runs with
  // per-engine private planes (the PR 4 shape, one interning universe per
  // engine), the sharded evaluator with one shared plane per query across
  // all its shards/probes/fallback. configs_batch is therefore the
  // single-store total; pre-plane sharding paid ~num_groups times it, the
  // shared plane pays it once (configs_sharded_cold) and a warm start pays
  // nothing (configs_sharded_warm_delta == 0, asserted).
  int64_t configs_batch = 0;
  int64_t configs_sharded_cold = 0;
  int64_t configs_sharded_warm_delta = 0;
  int num_groups = 0;
};

bool RunWorkload(const xml::Tree& tree, const xml::DocPlane& plane,
                 common::ThreadPool& pool, const std::string& name,
                 const std::vector<std::string>& queries,
                 WorkloadResult* out) {
  out->name = name;
  const int batch = static_cast<int>(queries.size());
  std::vector<automata::Mfa> mfas = CompileWorkload(queries);
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& m : mfas) ptrs.push_back(&m);

  const Reference ref = SoloReference(tree, plane, mfas);

  // Batched, full columnar DFS vs jump -- bit-identity gate before timing.
  double* batch_slots[2] = {&out->batch_full_qps, &out->batch_jump_qps};
  for (bool jump : {false, true}) {
    hype::BatchHypeOptions options;
    options.plane = &plane;
    options.enable_jump = jump;
    hype::BatchHypeEvaluator eval(tree, ptrs, options);
    if (!GateAgainstReference(
            ref, eval.EvalAll(tree.root()),
            [&](size_t i) { return eval.stats(i); },
            jump ? (name + "/batch_jump").c_str()
                 : (name + "/batch_full").c_str())) {
      return false;
    }
    if (jump) {
      out->configs_batch = 0;
      for (size_t i = 0; i < mfas.size(); ++i) {
        out->configs_batch += eval.stats(i).configs_interned;
      }
    }
    *batch_slots[jump ? 1 : 0] = batch / BestSecondsPerRound([&] {
      benchmark::DoNotOptimize(eval.EvalAll(tree.root()));
    });
    if (jump) {
      int64_t walk = eval.pass_stats().nodes_walked +
                     eval.pass_stats().positions_jumped;
      out->jumped_fraction =
          walk > 0 ? static_cast<double>(eval.pass_stats().positions_jumped) /
                         static_cast<double>(walk)
                   : 0.0;
    }
  }

  // Sharded over the pool: jump off reproduces the PR 3 baseline, jump on
  // is the new default.
  double* sharded_slots[2] = {&out->sharded_baseline_qps,
                              &out->sharded_jump_qps};
  for (bool jump : {false, true}) {
    exec::ShardedOptions options;
    options.plane = &plane;
    options.pool = &pool;
    options.enable_jump = jump;
    exec::ShardedBatchEvaluator eval(tree, ptrs, options);
    if (!GateAgainstReference(
            ref, eval.EvalAll(tree.root()),
            [&](size_t i) { return eval.merged_stats(i); },
            jump ? (name + "/sharded_jump").c_str()
                 : (name + "/sharded_baseline").c_str())) {
      return false;
    }
    if (jump) {
      // Cold total across worker engines (attribution of the shared
      // planes), then the warm-start delta of a second pass: engine
      // counters are cumulative, so any growth is a fresh insertion.
      out->num_groups = eval.stats().num_groups;
      out->configs_sharded_cold = 0;
      for (size_t i = 0; i < mfas.size(); ++i) {
        out->configs_sharded_cold += eval.merged_stats(i).configs_interned;
      }
      benchmark::DoNotOptimize(eval.EvalAll(tree.root()));
      int64_t warm_total = 0;
      for (size_t i = 0; i < mfas.size(); ++i) {
        warm_total += eval.merged_stats(i).configs_interned;
      }
      out->configs_sharded_warm_delta = warm_total - out->configs_sharded_cold;
    }
    *sharded_slots[jump ? 1 : 0] = batch / BestSecondsPerRound([&] {
      benchmark::DoNotOptimize(eval.EvalAll(tree.root()));
    });
  }

  // Interning bars (see WorkloadResult): warm sharded starts must insert
  // nothing, and the cold sharded pass must stay at ~one interning universe
  // per query -- pre-plane it was ~num_groups of them.
  if (out->configs_sharded_warm_delta != 0) {
    std::fprintf(stderr,
                 "%s: FAIL: warm sharded pass interned %lld new configs\n",
                 name.c_str(),
                 static_cast<long long>(out->configs_sharded_warm_delta));
    return false;
  }
  if (out->num_groups >= 2 &&
      out->configs_sharded_cold * 2 > out->configs_batch * 3) {
    std::fprintf(
        stderr,
        "%s: FAIL: cold sharded interning %lld exceeds 1.5x the single-store "
        "total %lld (plane sharing regressed toward per-shard stores)\n",
        name.c_str(), static_cast<long long>(out->configs_sharded_cold),
        static_cast<long long>(out->configs_batch));
    return false;
  }
  return true;
}

int WriteJsonSmoke(const std::string& path) {
  const xml::Tree tree = SparseDoc(BenchElements());
  const xml::DocPlane plane = xml::DocPlane::Build(tree);
  common::ThreadPool pool(ShardedPoolWidth());

  std::vector<WorkloadResult> results(3);
  if (!RunWorkload(tree, plane, pool, "sparse_nav", SparseNavWorkload(),
                   &results[0]) ||
      !RunWorkload(tree, plane, pool, "sparse_mixed", SparseMixedWorkload(),
                   &results[1]) ||
      !RunWorkload(tree, plane, pool, "dense_nav", DenseNavWorkload(),
                   &results[2])) {
    return 1;  // bit-identity gate failed
  }

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"elements\": %d,\n  \"pool_threads\": %d,\n"
               "  \"plane_bytes\": %zu,\n  \"workloads\": [\n",
               tree.CountElements(), pool.num_threads(), plane.MemoryBytes());
  for (size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    const double speedup = r.sharded_baseline_qps > 0
                               ? r.sharded_jump_qps / r.sharded_baseline_qps
                               : 0.0;
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"batch_full_qps\": %.1f, "
                 "\"batch_jump_qps\": %.1f, \"sharded_baseline_qps\": %.1f, "
                 "\"sharded_jump_qps\": %.1f, "
                 "\"speedup_jump_vs_sharded_baseline\": %.2f, "
                 "\"jumped_fraction\": %.4f, "
                 "\"configs_interned_batch\": %lld, "
                 "\"configs_interned_sharded_cold\": %lld, "
                 "\"configs_interned_sharded_warm_delta\": %lld, "
                 "\"shard_groups\": %d}%s\n",
                 r.name.c_str(), r.batch_full_qps, r.batch_jump_qps,
                 r.sharded_baseline_qps, r.sharded_jump_qps, speedup,
                 r.jumped_fraction,
                 static_cast<long long>(r.configs_batch),
                 static_cast<long long>(r.configs_sharded_cold),
                 static_cast<long long>(r.configs_sharded_warm_delta),
                 r.num_groups, i + 1 < results.size() ? "," : "");
    std::printf(
        "%-13s batch %.0f -> %.0f qps, sharded %.0f -> %.0f qps "
        "(jump x%.2f vs PR3 baseline, %.1f%% positions jumped; "
        "%d groups intern %lld configs once, warm delta %lld)\n",
        r.name.c_str(), r.batch_full_qps, r.batch_jump_qps,
        r.sharded_baseline_qps, r.sharded_jump_qps, speedup,
        100.0 * r.jumped_fraction, r.num_groups,
        static_cast<long long>(r.configs_sharded_cold),
        static_cast<long long>(r.configs_sharded_warm_delta));
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  // The acceptance bar: jump mode must carry label-sparse workloads at
  // least 1.5x past the PR 3 sharded baseline.
  const double sparse_speedup =
      results[0].sharded_baseline_qps > 0
          ? results[0].sharded_jump_qps / results[0].sharded_baseline_qps
          : 0.0;
  if (sparse_speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: sparse_nav jump speedup %.2fx < 1.5x over the "
                 "sharded baseline\n",
                 sparse_speedup);
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace smoqe::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    constexpr std::string_view kJsonFlag = "--smoqe_json=";
    if (arg.substr(0, kJsonFlag.size()) == kJsonFlag) {
      return smoqe::bench::WriteJsonSmoke(
          std::string(arg.substr(kJsonFlag.size())));
    }
  }
  smoqe::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
