// Multi-tenant security-view serving: per-role compiled rewritings vs the
// naive materialize-then-evaluate baseline (ISSUE 8 / the paper's security
// application, Section 2).
//
// One hospital document, N roles (N swept 100 -> SMOQE_BENCH_ROLES, default
// 1000; nightly runs 10000) with randomized deny/cond/allow annotations over
// the hospital DTD. Per sweep point:
//
//  * compile_ms_per_role -- cold RoleCatalog::Acquire over ALL N roles
//    (annotation resolution + view derivation + per-role cache/plane
//    partition construction), amortized;
//  * warm_qps            -- role-scoped queries through a QueryService whose
//    catalog partitions are warm: the (role, query) rewriting is cached and
//    the role's transition planes are populated, so a query is one shared
//    evaluation over the SOURCE document;
//  * materialize_qps     -- the same (role, query) pairs answered the naive
//    way: view::Materialize(sigma_R(T)) then NaiveEvaluator on the copy,
//    mapped back through the binding. This is what a system without query
//    rewriting must do (or pay N materialized copies of resident memory);
//  * plane_bytes / resident_roles -- catalog plane-store memory after the
//    warm phase (the price of keeping a role hot).
//
// Two PRE-TIMING gates abort the run (exit 1) before any number is reported:
//  1. bit-identity -- every sampled (role, query) served answer must equal
//     the materialize-then-evaluate oracle exactly;
//  2. warm-role interning -- re-submitting an already-served (role, query)
//     workload must intern ZERO configurations in the role partitions. The
//     count is exported as authz/configs_interned_warm_role, which
//     ci/check_bench_regression.py gates at zero growth vs main; a
//     deterministic small-capacity eviction pass likewise exports
//     authz/planes_evicted.
//
// The acceptance bar (enforced here when the sweep reaches 1000 roles, i.e.
// always in CI smoke and nightly): warm_qps >= 5x materialize_qps.
//
// Modes: default = google-benchmark families (Authz/*); --smoqe_json=FILE =
// the self-timed smoke run above (BENCH_authz.json in CI). Document size
// scales with SMOQE_BENCH_PATIENTS, role count with SMOQE_BENCH_ROLES.

#include <cstdio>
#include <cstdlib>
#include <future>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "eval/naive_evaluator.h"
#include "exec/query_service.h"
#include "gen/fixtures.h"
#include "policy/policy.h"
#include "policy/role_catalog.h"
#include "policy/role_compiler.h"
#include "view/materializer.h"
#include "xpath/parser.h"

namespace smoqe::bench {
namespace {

using policy::Annotation;
using policy::Policy;
using policy::RoleId;

/// Role count ceiling for the sweep (env SMOQE_BENCH_ROLES, default 1000 so
/// the 5x acceptance gate at 1000 roles is live in every smoke run; nightly
/// exports 10000).
int MaxRoles() {
  const char* env = std::getenv("SMOQE_BENCH_ROLES");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 1000;
}

// Queries posed against the role views. Every label is a hospital label;
// roles that hide a label simply answer empty for it (part of the property:
// a denied region is indistinguishable from an absent one).
std::vector<std::string> AuthzWorkload() {
  return {
      "department/patient/pname",
      "//diagnosis",
      "department/patient[visit/treatment/medication]",
      "//doctor/specialty",
      "department/*/visit",
      "department/patient/(parent/patient)*[pname]",
  };
}

// N roles over the hospital DTD, deterministic per role id: a sparse deny
// mask (1/16 of edges), conditional exposure (2/16), explicit allow (1/16),
// the rest inherited/open; every fourth role extends an earlier one so
// annotation resolution exercises the inheritance path. No role hides the
// root (hidden roots answer empty and would inflate warm qps for free).
Policy BuildPolicy(int num_roles) {
  Policy p(gen::HospitalDtd());
  const dtd::Dtd& d = p.source_dtd();
  const std::vector<const char*> conds = {
      "pname", "not(test)", "type", "diagnosis[text() = 'heart disease']"};
  for (int r = 0; r < num_roles; ++r) {
    std::mt19937_64 rng(0x5ec0 + static_cast<uint64_t>(r));
    std::vector<std::string> parents;
    if (r > 0 && rng() % 4 == 0) {
      parents.push_back("role" + std::to_string(rng() % r));
    }
    auto role = p.AddRole("role" + std::to_string(r), parents);
    if (!role.ok()) {
      std::fprintf(stderr, "AddRole: %s\n", role.status().ToString().c_str());
      std::exit(1);
    }
    for (dtd::TypeId a = 0; a < d.num_types(); ++a) {
      for (dtd::TypeId b : d.ChildTypes(a)) {
        Annotation ann;
        switch (rng() % 16) {
          case 0:
            ann = Annotation::Deny();
            break;
          case 1:
          case 2: {
            auto cond = Annotation::If(conds[rng() % conds.size()]);
            if (!cond.ok()) {
              std::fprintf(stderr, "If: %s\n",
                           cond.status().ToString().c_str());
              std::exit(1);
            }
            ann = cond.take();
            break;
          }
          case 3:
            ann = Annotation::Allow();
            break;
          default:
            continue;  // unannotated: resolves through inheritance
        }
        Status st = p.Annotate(role.value(), d.type_name(a), d.type_name(b),
                               std::move(ann));
        if (!st.ok()) {
          std::fprintf(stderr, "Annotate: %s\n", st.ToString().c_str());
          std::exit(1);
        }
      }
    }
  }
  return p;
}

// The naive baseline for one (role, query): materialize sigma_R(T), evaluate
// on the copy, map back through the binding. Also the oracle for the
// bit-identity gate.
std::vector<xml::NodeId> MaterializeThenEvaluate(const view::ViewDef& view,
                                                 const xml::Tree& source,
                                                 const xpath::PathPtr& query) {
  auto mat = view::Materialize(view, source);
  if (!mat.ok()) {
    std::fprintf(stderr, "Materialize: %s\n", mat.status().ToString().c_str());
    std::exit(1);
  }
  eval::NaiveEvaluator on_view(mat.value().tree);
  return view::MapToSource(mat.value(),
                           on_view.Eval(query, mat.value().tree.root()));
}

// Evenly spread sample of `k` role ids out of `n`.
std::vector<RoleId> SampleRoles(int n, int k) {
  std::vector<RoleId> roles;
  const int step = n / k > 0 ? n / k : 1;
  for (int r = 0; r < n && static_cast<int>(roles.size()) < k; r += step) {
    roles.push_back(static_cast<RoleId>(r));
  }
  return roles;
}

// Submits the full (sample-role x workload) block and drains it; returns
// queries answered. Exits on any non-OK answer (role queries never error on
// this workload; an error here is a serving bug, not a measurement).
int64_t ServeBlock(exec::QueryService& service,
                   const std::vector<RoleId>& roles,
                   const std::vector<std::string>& workload) {
  std::vector<std::future<exec::QueryService::Answer>> futures;
  futures.reserve(roles.size() * workload.size());
  for (RoleId r : roles) {
    for (const std::string& q : workload) {
      exec::SubmitOptions submit;
      submit.role = r;
      futures.push_back(service.Submit(q, submit));
    }
  }
  for (auto& f : futures) {
    auto answer = f.get();
    if (!answer.ok()) {
      std::fprintf(stderr, "serve: %s\n", answer.status().ToString().c_str());
      std::exit(1);
    }
  }
  return static_cast<int64_t>(futures.size());
}

struct SweepPoint {
  int roles = 0;
  double compile_ms_per_role = 0;
  double warm_qps = 0;
  double materialize_qps = 0;
  int64_t plane_bytes = 0;
  int64_t resident_roles = 0;
};

// One sweep point: build the catalog cold, warm the sampled partitions
// through the service, then time both sides. `warm_interned` (non-null on
// the first point only) receives the gate-2 interning delta.
SweepPoint RunPoint(int num_roles, const xml::Tree& doc,
                    int64_t* warm_interned) {
  const std::vector<std::string> workload = AuthzWorkload();
  Policy p = BuildPolicy(num_roles);
  policy::RoleCatalog catalog(p, doc, nullptr);

  SweepPoint point;
  point.roles = num_roles;

  // Cold compile latency: every role, once, through the catalog.
  const double compile_secs = Seconds([&] {
    for (int r = 0; r < num_roles; ++r) {
      auto entry = catalog.Acquire(static_cast<RoleId>(r));
      if (!entry.ok()) {
        std::fprintf(stderr, "Acquire(role%d): %s\n", r,
                     entry.status().ToString().c_str());
        std::exit(1);
      }
    }
  });
  point.compile_ms_per_role = compile_secs * 1000.0 / num_roles;

  exec::QueryServiceOptions service_options;
  service_options.catalog = &catalog;
  exec::QueryService service(doc, service_options);

  const std::vector<RoleId> samples = SampleRoles(num_roles, 16);
  const std::vector<RoleId> gate_roles = SampleRoles(num_roles, 4);

  // Warm the sampled partitions (compiles the (role, query) rewritings and
  // populates the role planes) before any gate or timing.
  ServeBlock(service, samples, workload);

  // ---- gate 1: bit-identity against materialize-then-evaluate ----
  int checked = 0;
  for (RoleId r : gate_roles) {
    auto compiled = policy::CompileRole(p, r);
    if (!compiled.ok() || compiled.value().root_hidden) {
      std::fprintf(stderr, "gate: role%d did not compile to a visible view\n",
                   r);
      std::exit(1);
    }
    for (const std::string& q : workload) {
      exec::SubmitOptions submit;
      submit.role = r;
      auto served = service.Submit(q, submit).get();
      if (!served.ok()) {
        std::fprintf(stderr, "gate: role%d '%s': %s\n", r, q.c_str(),
                     served.status().ToString().c_str());
        std::exit(1);
      }
      auto parsed = xpath::ParseQuery(q);
      if (!parsed.ok()) {
        std::fprintf(stderr, "gate: bad workload query %s\n", q.c_str());
        std::exit(1);
      }
      if (served.value() != MaterializeThenEvaluate(*compiled.value().view,
                                                    doc, parsed.value())) {
        std::fprintf(stderr,
                     "FAIL: role%d '%s' served answer != "
                     "materialize-then-evaluate oracle\n",
                     r, q.c_str());
        std::exit(1);
      }
      ++checked;
    }
  }

  // ---- gate 2 (first point only): warm re-serve interns nothing ----
  if (warm_interned != nullptr) {
    const int64_t before = catalog.plane_stats().configs_interned;
    ServeBlock(service, samples, workload);
    *warm_interned = catalog.plane_stats().configs_interned - before;
    if (*warm_interned != 0) {
      std::fprintf(stderr,
                   "FAIL: warm re-serve interned %lld configs (must be 0 -- "
                   "role partitions stopped reusing their planes)\n",
                   static_cast<long long>(*warm_interned));
      std::exit(1);
    }
  }

  // ---- timing: warm serving vs materialize-then-evaluate ----
  const int64_t block = static_cast<int64_t>(samples.size() * workload.size());
  point.warm_qps = static_cast<double>(block) /
                   BestSecondsPerRound(
                       [&] { ServeBlock(service, samples, workload); });

  std::vector<const view::ViewDef*> gate_views;
  std::vector<std::shared_ptr<const view::ViewDef>> gate_view_owners;
  for (RoleId r : gate_roles) {
    auto compiled = policy::CompileRole(p, r);
    gate_view_owners.push_back(compiled.value().view);
    gate_views.push_back(gate_view_owners.back().get());
  }
  std::vector<xpath::PathPtr> parsed_workload;
  for (const std::string& q : workload) {
    parsed_workload.push_back(xpath::ParseQuery(q).take());
  }
  const int64_t mat_block =
      static_cast<int64_t>(gate_views.size() * parsed_workload.size());
  point.materialize_qps =
      static_cast<double>(mat_block) /
      BestSecondsPerRound([&] {
        for (const view::ViewDef* view : gate_views) {
          for (const xpath::PathPtr& q : parsed_workload) {
            benchmark::DoNotOptimize(MaterializeThenEvaluate(*view, doc, q));
          }
        }
      });

  point.plane_bytes = catalog.plane_stats().approx_bytes;
  point.resident_roles = catalog.stats().resident;
  std::printf(
      "roles=%-6d compile %.3f ms/role, warm %.0f qps, materialize %.0f qps "
      "(%.1fx), %lld plane bytes, %d identity checks\n",
      num_roles, point.compile_ms_per_role, point.warm_qps,
      point.materialize_qps, point.warm_qps / point.materialize_qps,
      static_cast<long long>(point.plane_bytes), checked);
  return point;
}

// Deterministic eviction counter: a 4-partition catalog touched by 12 roles
// in sequence (nothing pinned) must evict exactly 8 -- gated at zero growth
// vs main by check_bench_regression.py.
int64_t DeterministicEvictions(const xml::Tree& doc) {
  Policy p = BuildPolicy(12);
  policy::RoleCatalogOptions options;
  options.role_capacity = 4;
  policy::RoleCatalog catalog(p, doc, nullptr, options);
  for (int r = 0; r < 12; ++r) {
    auto entry = catalog.Acquire(static_cast<RoleId>(r));
    if (!entry.ok()) {
      std::fprintf(stderr, "eviction pass: %s\n",
                   entry.status().ToString().c_str());
      std::exit(1);
    }
  }
  const int64_t evicted = catalog.stats().planes_evicted;
  if (evicted != 8) {
    std::fprintf(stderr,
                 "FAIL: 12 roles through a 4-partition catalog evicted %lld "
                 "(expected exactly 8)\n",
                 static_cast<long long>(evicted));
    std::exit(1);
  }
  return evicted;
}

int WriteJsonSmoke(const std::string& path) {
  const xml::Tree& doc = HospitalDoc(BasePatients());
  const int max_roles = MaxRoles();
  std::vector<int> sweep_sizes;
  for (int n : {100, 1000, 10000}) {
    if (n < max_roles) sweep_sizes.push_back(n);
  }
  sweep_sizes.push_back(max_roles);

  std::vector<SweepPoint> sweep;
  int64_t warm_interned = -1;
  for (int n : sweep_sizes) {
    sweep.push_back(
        RunPoint(n, doc, sweep.empty() ? &warm_interned : nullptr));
  }
  const int64_t planes_evicted = DeterministicEvictions(doc);

  // The acceptance bar: at >= 1000 roles, warm serving must beat
  // materialize-then-evaluate by 5x.
  for (const SweepPoint& point : sweep) {
    if (point.roles < 1000 || point.materialize_qps <= 0) continue;
    const double ratio = point.warm_qps / point.materialize_qps;
    if (ratio < 5.0) {
      std::fprintf(stderr,
                   "FAIL: at %d roles warm serving is only %.1fx "
                   "materialize-then-evaluate (bar: >= 5x)\n",
                   point.roles, ratio);
      return 1;
    }
  }

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"elements\": %d,\n  \"authz\": {\n    \"sweep\": [",
               doc.CountElements());
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& s = sweep[i];
    std::fprintf(out,
                 "%s\n      {\"roles\": %d, \"warm_qps\": %.1f, "
                 "\"materialize_qps\": %.1f, \"warm_over_materialize\": %.2f, "
                 "\"compile_ms_per_role\": %.4f, \"plane_bytes\": %lld, "
                 "\"resident_roles\": %lld}",
                 i == 0 ? "" : ",", s.roles, s.warm_qps, s.materialize_qps,
                 s.warm_qps / s.materialize_qps, s.compile_ms_per_role,
                 static_cast<long long>(s.plane_bytes),
                 static_cast<long long>(s.resident_roles));
  }
  std::fprintf(out,
               "\n    ],\n    \"counters\": {\n"
               "      \"configs_interned_warm_role\": %lld,\n"
               "      \"planes_evicted\": %lld\n    }\n  }\n}\n",
               static_cast<long long>(warm_interned),
               static_cast<long long>(planes_evicted));
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

// ---- google-benchmark families ----

void BM_ColdRoleCompile(benchmark::State& state) {
  Policy p = BuildPolicy(256);
  int r = 0;
  for (auto _ : state) {
    auto compiled = policy::CompileRole(p, static_cast<RoleId>(r));
    if (!compiled.ok()) {
      state.SkipWithError("CompileRole failed");
      return;
    }
    benchmark::DoNotOptimize(compiled.value().view);
    r = (r + 1) % 256;
  }
}

void BM_WarmRoleServe(benchmark::State& state) {
  const xml::Tree& doc = HospitalDoc(BasePatients());
  Policy p = BuildPolicy(16);
  policy::RoleCatalog catalog(p, doc, nullptr);
  exec::QueryServiceOptions options;
  options.catalog = &catalog;
  exec::QueryService service(doc, options);
  const std::vector<std::string> workload = AuthzWorkload();
  const std::vector<RoleId> roles = SampleRoles(16, 16);
  ServeBlock(service, roles, workload);  // warm every partition
  int i = 0;
  for (auto _ : state) {
    exec::SubmitOptions submit;
    submit.role = roles[i % roles.size()];
    auto answer = service.Submit(workload[i % workload.size()], submit).get();
    if (!answer.ok()) {
      state.SkipWithError("serve failed");
      return;
    }
    ++i;
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void RegisterAll() {
  benchmark::RegisterBenchmark("Authz/ColdRoleCompile", BM_ColdRoleCompile)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("Authz/WarmRoleServe", BM_WarmRoleServe)
      ->Unit(benchmark::kMicrosecond);
}

}  // namespace
}  // namespace smoqe::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    constexpr std::string_view kJsonFlag = "--smoqe_json=";
    if (arg.substr(0, kJsonFlag.size()) == kJsonFlag) {
      return smoqe::bench::WriteJsonSmoke(
          std::string(arg.substr(kJsonFlag.size())));
    }
  }
  smoqe::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
