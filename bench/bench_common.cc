#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>

#include "automata/compiler.h"
#include "automata/conceptual_eval.h"
#include "eval/galax_substitute.h"
#include "eval/xpath_baseline.h"
#include "gen/hospital_generator.h"
#include "xpath/parser.h"

namespace smoqe::bench {

const char* EngineName(Engine e) {
  switch (e) {
    case kJaxp: return "JAXP";
    case kHype: return "HyPE";
    case kOptHype: return "OptHyPE";
    case kOptHypeC: return "OptHyPE-C";
    case kGalax: return "GALAX";
    case kConceptual: return "Conceptual";
  }
  return "?";
}

double Seconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

double BestSecondsPerRound(const std::function<void()>& fn,
                           double sample_seconds) {
  double once = Seconds(fn);
  int rounds =
      std::max(1, static_cast<int>(sample_seconds / std::max(once, 1e-9)));
  double best = 1e100;
  for (int r = 0; r < 5; ++r) {
    double t = Seconds([&] {
      for (int k = 0; k < rounds; ++k) fn();
    });
    best = std::min(best, t / rounds);
  }
  return best;
}

int BasePatients() {
  static int base = [] {
    const char* env = std::getenv("SMOQE_BENCH_PATIENTS");
    int v = env != nullptr ? std::atoi(env) : 0;
    return v > 0 ? v : 200;
  }();
  return base;
}

const xml::Tree& HospitalDoc(int patients) {
  static auto* cache = new std::map<int, std::unique_ptr<xml::Tree>>();
  auto it = cache->find(patients);
  if (it == cache->end()) {
    gen::HospitalParams params;
    params.patients = patients;
    params.seed = 4242;
    params.heart_disease_prob = 0.1;
    it = cache
             ->emplace(patients,
                       std::make_unique<xml::Tree>(GenerateHospital(params)))
             .first;
  }
  return *it->second;
}

const hype::SubtreeLabelIndex& IndexFor(const xml::Tree& tree,
                                        hype::SubtreeLabelIndex::Mode mode) {
  static auto* cache = new std::map<std::pair<const xml::Tree*, int>,
                                    std::unique_ptr<hype::SubtreeLabelIndex>>();
  auto key = std::make_pair(&tree, static_cast<int>(mode));
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache
             ->emplace(key, std::make_unique<hype::SubtreeLabelIndex>(
                                hype::SubtreeLabelIndex::Build(tree, mode)))
             .first;
  }
  return *it->second;
}

const xml::DocPlane& PlaneFor(const xml::Tree& tree) {
  static auto* cache =
      new std::map<const xml::Tree*, std::unique_ptr<xml::DocPlane>>();
  auto it = cache->find(&tree);
  if (it == cache->end()) {
    it = cache
             ->emplace(&tree,
                       std::make_unique<xml::DocPlane>(xml::DocPlane::Build(tree)))
             .first;
  }
  return *it->second;
}

namespace {

const automata::Mfa& CompiledQuery(const std::string& query) {
  static auto* cache = new std::map<std::string, std::unique_ptr<automata::Mfa>>();
  auto it = cache->find(query);
  if (it == cache->end()) {
    auto q = xpath::ParseQuery(query);
    if (!q.ok()) throw std::runtime_error("bad bench query: " + query);
    it = cache
             ->emplace(query, std::make_unique<automata::Mfa>(
                                  automata::CompileQuery(q.value())))
             .first;
  }
  return *it->second;
}

const xpath::PathPtr& ParsedQuery(const std::string& query) {
  static auto* cache = new std::map<std::string, xpath::PathPtr>();
  auto it = cache->find(query);
  if (it == cache->end()) {
    auto q = xpath::ParseQuery(query);
    if (!q.ok()) throw std::runtime_error("bad bench query: " + query);
    it = cache->emplace(query, q.value()).first;
  }
  return it->second;
}

}  // namespace

int64_t RunEngineOnce(Engine engine, const std::string& query,
                      const xml::Tree& tree, hype::EvalStats* stats) {
  switch (engine) {
    case kJaxp: {
      eval::XPathBaseline baseline(tree);
      auto result = baseline.Eval(ParsedQuery(query), tree.root());
      if (!result.ok()) throw std::runtime_error(result.status().ToString());
      return static_cast<int64_t>(result.value().size());
    }
    case kGalax: {
      eval::GalaxSubstitute galax(tree);
      return static_cast<int64_t>(galax.Eval(ParsedQuery(query), tree.root()).size());
    }
    case kConceptual: {
      automata::ConceptualEvaluator eval(tree, CompiledQuery(query));
      return static_cast<int64_t>(eval.Eval(tree.root()).size());
    }
    case kHype:
    case kOptHype:
    case kOptHypeC: {
      hype::HypeOptions options;
      options.plane = &PlaneFor(tree);  // shared; evaluators are per-call
      if (engine == kOptHype) {
        options.index = &IndexFor(tree, hype::SubtreeLabelIndex::Mode::kFull);
      } else if (engine == kOptHypeC) {
        options.index =
            &IndexFor(tree, hype::SubtreeLabelIndex::Mode::kCompressed);
      }
      hype::HypeEvaluator eval(tree, CompiledQuery(query), options);
      int64_t n = static_cast<int64_t>(eval.Eval(tree.root()).size());
      if (stats != nullptr) *stats = eval.stats();
      return n;
    }
  }
  return 0;
}

void RegisterFigure(const std::string& figure, const std::string& query,
                    std::initializer_list<Engine> engines) {
  for (Engine engine : engines) {
    std::string name = figure + "/" + EngineName(engine);
    auto* b = benchmark::RegisterBenchmark(
        name.c_str(),
        [query, engine](benchmark::State& state) {
          const xml::Tree& tree = HospitalDoc(static_cast<int>(state.range(0)));
          // Warm the per-document caches (index construction is a one-time
          // cost, reported separately in EXPERIMENTS.md).
          hype::EvalStats stats;
          int64_t answers = RunEngineOnce(engine, query, tree, &stats);
          for (auto _ : state) {
            benchmark::DoNotOptimize(RunEngineOnce(engine, query, tree));
          }
          state.counters["answers"] = static_cast<double>(answers);
          state.counters["elem"] = static_cast<double>(tree.CountElements());
          state.counters["MB"] =
              static_cast<double>(tree.ApproxByteSize()) / 1e6;
          if (engine == kHype || engine == kOptHype || engine == kOptHypeC) {
            state.counters["pruned_pct"] = 100.0 * stats.PrunedFraction();
          }
        });
    b->ArgName("patients")->Unit(benchmark::kMillisecond);
    for (int i = 1; i <= 10; ++i) b->Arg(static_cast<int64_t>(BasePatients()) * i);
  }
}

}  // namespace smoqe::bench
