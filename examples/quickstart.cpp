// Quickstart: parse an XML document, run a regular XPath query with HyPE.
//
//   $ ./quickstart
//
// Shows the three-line happy path of the library: ParseXml -> ParseQuery ->
// CompileQuery + HypeEvaluator.

#include <cstdio>

#include "automata/compiler.h"
#include "hype/hype.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xpath/parser.h"

int main() {
  // 1. An XML document (the paper's Fig. 4 family tree, abridged).
  const char* xml = R"(
    <hospital>
      <patient>
        <parent><patient>
          <record><diagnosis>lung disease</diagnosis></record>
        </patient></parent>
        <record><diagnosis>brain disease</diagnosis></record>
      </patient>
      <patient>
        <parent><patient>
          <record><diagnosis>heart disease</diagnosis></record>
        </patient></parent>
        <record><diagnosis>lung disease</diagnosis></record>
      </patient>
    </hospital>
  )";
  auto tree = smoqe::xml::ParseXml(xml);
  if (!tree.ok()) {
    std::fprintf(stderr, "parse error: %s\n", tree.status().ToString().c_str());
    return 1;
  }

  // 2. A regular XPath query: patients with an ancestor diagnosed with heart
  //    disease (Kleene star -- not expressible in plain XPath).
  auto query = smoqe::xpath::ParseQuery(
      "(patient/parent)*/patient"
      "[(parent/patient)*/record/diagnosis/text() = 'heart disease']");
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  // 3. Compile to an MFA and evaluate with HyPE (one pass over the tree).
  smoqe::automata::Mfa mfa = smoqe::automata::CompileQuery(query.value());
  smoqe::hype::HypeEvaluator eval(tree.value(), mfa);
  std::vector<smoqe::xml::NodeId> answers = eval.Eval(tree.value().root());

  std::printf("%zu answer(s):\n", answers.size());
  for (smoqe::xml::NodeId n : answers) {
    std::printf("--- node %d ---\n%s\n", n,
                smoqe::xml::WriteXml(tree.value(), n).c_str());
  }
  std::printf("visited %lld of %lld elements (%.1f%% pruned)\n",
              static_cast<long long>(eval.stats().elements_visited),
              static_cast<long long>(eval.stats().elements_total),
              100.0 * eval.stats().PrunedFraction());
  return 0;
}
