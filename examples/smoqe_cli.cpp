// smoqe_cli: command-line front end for the library.
//
//   smoqe_cli --doc FILE --query 'Xreg'                  evaluate directly
//   smoqe_cli --doc FILE --view SPEC --query 'Xreg'      rewrite through a view
//   options: --engine hype|opthype|opthype-c|naive   (default hype)
//            --show-rewritten                         print the explicit Xreg
//            --stats                                  print evaluation stats
//            --dot                                    dump the MFA as graphviz
//
// Answers are printed as XML, one subtree per line group, in document order.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "automata/compiler.h"
#include "automata/optimizer.h"
#include "eval/naive_evaluator.h"
#include "hype/hype.h"
#include "hype/index.h"
#include "rewrite/direct_rewriter.h"
#include "rewrite/rewriter.h"
#include "view/view_parser.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --doc FILE --query XREG [--view SPECFILE]\n"
               "          [--engine hype|opthype|opthype-c|naive]\n"
               "          [--show-rewritten] [--stats] [--dot]\n",
               argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string doc_path, query_text, view_path, engine = "hype";
  bool show_rewritten = false, show_stats = false, show_dot = false;
  for (int i = 1; i < argc; ++i) {
    auto arg_value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (const char* v = arg_value("--doc")) doc_path = v;
    else if (const char* v = arg_value("--query")) query_text = v;
    else if (const char* v = arg_value("--view")) view_path = v;
    else if (const char* v = arg_value("--engine")) engine = v;
    else if (std::strcmp(argv[i], "--show-rewritten") == 0) show_rewritten = true;
    else if (std::strcmp(argv[i], "--stats") == 0) show_stats = true;
    else if (std::strcmp(argv[i], "--dot") == 0) show_dot = true;
    else return Usage(argv[0]);
  }
  if (doc_path.empty() || query_text.empty()) return Usage(argv[0]);

  std::string doc_text;
  if (!ReadFile(doc_path, &doc_text)) {
    std::fprintf(stderr, "cannot read %s\n", doc_path.c_str());
    return 1;
  }
  auto tree = smoqe::xml::ParseXml(doc_text);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  auto query = smoqe::xpath::ParseQuery(query_text);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  smoqe::automata::Mfa mfa;
  if (!view_path.empty()) {
    std::string view_text;
    if (!ReadFile(view_path, &view_text)) {
      std::fprintf(stderr, "cannot read %s\n", view_path.c_str());
      return 1;
    }
    auto view = smoqe::view::ParseView(view_text);
    if (!view.ok()) {
      std::fprintf(stderr, "%s\n", view.status().ToString().c_str());
      return 1;
    }
    auto rewritten = smoqe::rewrite::RewriteToMfa(query.value(), view.value());
    if (!rewritten.ok()) {
      std::fprintf(stderr, "%s\n", rewritten.status().ToString().c_str());
      return 1;
    }
    mfa = smoqe::automata::TrimMfa(rewritten.value());
    if (show_rewritten) {
      auto direct = smoqe::rewrite::DirectRewrite(query.value(), view.value());
      if (direct.ok()) {
        std::printf("rewritten query: %s\n",
                    smoqe::xpath::ToString(direct.value()).c_str());
      }
    }
  } else {
    mfa = smoqe::automata::CompileQuery(query.value());
  }
  if (show_dot) std::printf("%s", mfa.ToDot().c_str());

  std::vector<smoqe::xml::NodeId> answers;
  smoqe::hype::EvalStats stats;
  if (engine == "naive") {
    if (!view_path.empty()) {
      std::fprintf(stderr, "--engine naive does not support --view\n");
      return 1;
    }
    answers = smoqe::eval::NaiveEvaluator(tree.value())
                  .Eval(query.value(), tree.value().root());
  } else {
    smoqe::hype::SubtreeLabelIndex index;
    smoqe::hype::HypeOptions options;
    bool built = false;
    if (engine == "opthype") {
      index = smoqe::hype::SubtreeLabelIndex::Build(
          tree.value(), smoqe::hype::SubtreeLabelIndex::Mode::kFull);
      built = true;
    } else if (engine == "opthype-c") {
      index = smoqe::hype::SubtreeLabelIndex::Build(
          tree.value(), smoqe::hype::SubtreeLabelIndex::Mode::kCompressed);
      built = true;
    } else if (engine != "hype") {
      return Usage(argv[0]);
    }
    if (built) options.index = &index;
    smoqe::hype::HypeEvaluator eval(tree.value(), mfa, options);
    answers = eval.Eval(tree.value().root());
    stats = eval.stats();
  }

  std::printf("%zu answer(s)\n", answers.size());
  for (smoqe::xml::NodeId n : answers) {
    std::printf("%s\n", smoqe::xml::WriteXml(tree.value(), n).c_str());
  }
  if (show_stats) {
    std::printf("visited %lld/%lld elements (%.1f%% pruned), cans %lld "
                "vertices / %lld edges\n",
                static_cast<long long>(stats.elements_visited),
                static_cast<long long>(stats.elements_total),
                100.0 * stats.PrunedFraction(),
                static_cast<long long>(stats.cans_vertices),
                static_cast<long long>(stats.cans_edges));
  }
  return 0;
}
