// The paper's running example, end to end: the hospital source document, the
// research-institute security view sigma_0 (Fig. 1), a regular XPath query on
// the *virtual* view, rewritten into an MFA over the source (Section 5) and
// evaluated with HyPE (Section 6) -- then cross-checked against materializing
// the view.

#include <cstdio>

#include "eval/naive_evaluator.h"
#include "gen/fixtures.h"
#include "gen/hospital_generator.h"
#include "hype/hype.h"
#include "rewrite/rewriter.h"
#include "view/materializer.h"
#include "xml/writer.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

int main() {
  // A synthetic hospital document (ToXGene substitute).
  smoqe::gen::HospitalParams params;
  params.patients = 100;
  params.heart_disease_prob = 0.25;
  params.seed = 2007;
  smoqe::xml::Tree source = smoqe::gen::GenerateHospital(params);
  std::printf("source: %d elements, %.2f MB\n", source.CountElements(),
              static_cast<double>(source.ApproxByteSize()) / 1e6);

  // sigma_0: the view for the research institute (Fig. 1(c)).
  smoqe::view::ViewDef view = smoqe::gen::HospitalView();
  std::printf("view DTD recursive: %s\n", view.IsRecursive() ? "yes" : "no");

  // The query of Example 1.1, posed on the view: patients whose ancestors
  // also had heart disease.
  auto query = smoqe::xpath::ParseQuery(smoqe::gen::kQueryExample11);
  if (!query.ok()) return 1;
  std::printf("query on view: %s\n",
              smoqe::xpath::ToString(query.value()).c_str());

  // Rewrite to an MFA over the source (no materialization).
  auto mfa = smoqe::rewrite::RewriteToMfa(query.value(), view);
  if (!mfa.ok()) {
    std::fprintf(stderr, "rewrite: %s\n", mfa.status().ToString().c_str());
    return 1;
  }
  std::printf("rewritten MFA: %d NFA states, %d AFA states (size %lld)\n",
              mfa.value().num_nfa_states(), mfa.value().num_afa_states(),
              static_cast<long long>(mfa.value().SizeMeasure()));

  smoqe::hype::HypeEvaluator eval(source, mfa.value());
  auto answers = eval.Eval(source.root());
  std::printf("answers on the virtual view: %zu patients\n", answers.size());
  for (size_t i = 0; i < answers.size() && i < 3; ++i) {
    smoqe::xml::NodeId pname = smoqe::xml::kNullNode;
    for (smoqe::xml::NodeId c = source.first_child(answers[i]);
         c != smoqe::xml::kNullNode; c = source.next_sibling(c)) {
      if (source.is_element(c) && source.label_name(c) == "pname") pname = c;
    }
    std::printf("  answer %zu: patient %s\n", i + 1,
                pname == smoqe::xml::kNullNode
                    ? "?"
                    : source.TextOf(pname).c_str());
  }

  // Cross-check: materialize sigma_0(T) and evaluate Q on it.
  auto mat = smoqe::view::Materialize(view, source);
  if (!mat.ok()) return 1;
  std::printf("materialized view: %d nodes (vs %d source nodes)\n",
              mat.value().tree.size(), source.size());
  smoqe::eval::NaiveEvaluator on_view(mat.value().tree);
  auto view_nodes = on_view.Eval(query.value(), mat.value().tree.root());
  auto mapped = smoqe::view::MapToSource(mat.value(), view_nodes);
  std::printf("materialize-then-evaluate agrees: %s\n",
              mapped == answers ? "yes" : "NO (bug!)");
  return mapped == answers ? 0 : 1;
}
