// Access control with security views (the paper's Section 1 scenario, grown
// into the multi-tenant policy plane of src/policy/): ONE source document,
// several roles, each confined to its own virtual view derived from
// allow/deny/conditional annotations on the hospital DTD. Queries are
// rewritten per role -- never evaluated on materialized data -- and served
// through a role-scoped QueryService whose catalog keeps each role's
// compiled rewritings and transition planes private.
//
// The demo shows the pieces the policy plane adds over a hand-written view:
//   * conditional exposure  (research sees heart-disease patients only),
//   * deny-overrides across a diamond (intern inherits research's
//     conditional patients AND auditor's medication ban -- the ban wins),
//   * hidden roots answer empty, not an error (the terminated role),
//   * the security property itself: descendant queries cannot escape into
//     denied regions, while a naive '//'-preserving translation leaks.

#include <cstdio>
#include <string>

#include "eval/naive_evaluator.h"
#include "exec/query_service.h"
#include "gen/fixtures.h"
#include "gen/hospital_generator.h"
#include "policy/policy_parser.h"
#include "policy/role_catalog.h"
#include "policy/role_compiler.h"
#include "view/materializer.h"
#include "xpath/parser.h"

namespace {

bool UnderSibling(const smoqe::xml::Tree& t, smoqe::xml::NodeId n) {
  for (smoqe::xml::NodeId a = n; a != smoqe::xml::kNullNode; a = t.parent(a)) {
    if (t.is_element(a) && t.label_name(a) == "sibling") return true;
  }
  return false;
}

int CountLeaks(const smoqe::xml::Tree& t,
               const std::vector<smoqe::xml::NodeId>& nodes) {
  int leaks = 0;
  for (smoqe::xml::NodeId n : nodes) leaks += UnderSibling(t, n) ? 1 : 0;
  return leaks;
}

}  // namespace

int main() {
  smoqe::gen::HospitalParams params;
  params.patients = 150;
  params.sibling_prob = 0.6;
  params.heart_disease_prob = 0.3;
  params.seed = 7;
  smoqe::xml::Tree source = smoqe::gen::GenerateHospital(params);

  // The whole access-control surface is ONE policy file: the source DTD
  // plus per-role annotations. Everything else (view derivation, query
  // rewriting, plane partitioning) is compiled from it on demand.
  const std::string spec =
      std::string("policy hospital_acl {\n  source ") +
      smoqe::gen::kHospitalDtdText + R"(
  role staff { }

  // Research: heart-disease patients only, and never their names, their
  // doctors, or their sibling records.
  role research extends staff {
    allow department.patient
      when "visit/treatment/medication/diagnosis/text() = 'heart disease'" ;
    deny patient.pname ;
    deny patient.sibling ;
    deny visit.doctor ;
  }

  // Audit: full patient roster, but nothing about medications.
  role auditor extends staff {
    deny treatment.medication ;
  }

  // Interns inherit through a diamond; deny-overrides means the auditor's
  // medication ban beats research's (conditional) exposure of the subtree.
  role intern extends research, auditor { }

  // Offboarded accounts keep a role; it just sees nothing.
  role terminated extends staff {
    root deny ;
  }
}
)";
  auto policy = smoqe::policy::ParsePolicy(spec);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 1;
  }

  // The serving stack: a catalog of per-role compiled views over the source,
  // and a QueryService that evaluates each submission inside its role's
  // partition.
  smoqe::policy::RoleCatalog catalog(policy.value(), source, nullptr);
  smoqe::exec::QueryServiceOptions options;
  options.catalog = &catalog;
  smoqe::exec::QueryService service(source, options);

  for (const char* role :
       {"staff", "research", "auditor", "intern", "terminated"}) {
    smoqe::exec::SubmitOptions submit;
    submit.role = policy.value().FindRole(role);
    auto answer = service.Submit("//diagnosis", submit).get();
    if (!answer.ok()) {
      std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s //diagnosis: %4zu nodes, %d under <sibling>\n", role,
                answer.value().size(), CountLeaks(source, answer.value()));
  }

  // The paper's equivalence, through the policy plane: the served answer for
  // research is bit-identical to evaluating on its materialized view
  // sigma_research(T) and mapping back through the binding.
  auto compiled = smoqe::policy::CompileRole(
      policy.value(), policy.value().FindRole("research"));
  if (!compiled.ok()) return 1;
  auto mat = smoqe::view::Materialize(*compiled.value().view, source);
  if (!mat.ok()) return 1;
  auto query = smoqe::xpath::ParseQuery("//diagnosis");
  auto oracle = smoqe::view::MapToSource(
      mat.value(), smoqe::eval::NaiveEvaluator(mat.value().tree)
                       .Eval(query.value(), mat.value().tree.root()));
  smoqe::exec::SubmitOptions research_submit;
  research_submit.role = policy.value().FindRole("research");
  auto served = service.Submit("//diagnosis", research_submit).get();
  std::printf("research served == materialize-then-evaluate oracle: %s\n",
              served.ok() && served.value() == oracle ? "yes" : "NO (BUG)");

  // The INSECURE translation an ad-hoc implementation might produce for the
  // research role: keep '//' on the source. It returns sibling diagnoses --
  // a privacy breach (Example 1.1). The rewritten automaton above cannot.
  auto insecure = smoqe::xpath::ParseQuery(
      "department/patient[visit/treatment/medication/diagnosis/text() = "
      "'heart disease']//diagnosis");
  auto leaked = smoqe::eval::NaiveEvaluator(source).Eval(insecure.value(),
                                                         source.root());
  std::printf("naive '//'-preserving translation: %zu nodes, %d under "
              "<sibling>  <-- the leak (Example 1.1)\n",
              leaked.size(), CountLeaks(source, leaked));
  return 0;
}
