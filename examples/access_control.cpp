// Access control with security views (the paper's Section 1 scenario): one
// source document, several user groups, each confined to its own virtual
// view. Queries are rewritten -- never evaluated on materialized data -- and
// the example demonstrates the security property: the research group cannot
// reach sibling records even with descendant queries, while a naive
// '//'-preserving translation would leak them.

#include <cstdio>

#include "eval/naive_evaluator.h"
#include "gen/fixtures.h"
#include "gen/hospital_generator.h"
#include "hype/hype.h"
#include "rewrite/rewriter.h"
#include "view/view_parser.h"
#include "xpath/parser.h"

namespace {

bool UnderSibling(const smoqe::xml::Tree& t, smoqe::xml::NodeId n) {
  for (smoqe::xml::NodeId a = n; a != smoqe::xml::kNullNode; a = t.parent(a)) {
    if (t.is_element(a) && t.label_name(a) == "sibling") return true;
  }
  return false;
}

int CountLeaks(const smoqe::xml::Tree& t,
               const std::vector<smoqe::xml::NodeId>& nodes) {
  int leaks = 0;
  for (smoqe::xml::NodeId n : nodes) leaks += UnderSibling(t, n) ? 1 : 0;
  return leaks;
}

}  // namespace

int main() {
  smoqe::gen::HospitalParams params;
  params.patients = 150;
  params.sibling_prob = 0.6;
  params.heart_disease_prob = 0.3;
  params.seed = 7;
  smoqe::xml::Tree source = smoqe::gen::GenerateHospital(params);

  // Group 1: the research institute (sigma_0) -- may see heart-disease
  // patients and their ancestor records, NOT siblings, names or doctors.
  smoqe::view::ViewDef research = smoqe::gen::HospitalView();

  // The user asks for every diagnosis reachable in their view.
  auto query = smoqe::xpath::ParseQuery("//diagnosis");
  auto mfa = smoqe::rewrite::RewriteToMfa(query.value(), research);
  if (!mfa.ok()) return 1;
  smoqe::hype::HypeEvaluator eval(source, mfa.value());
  auto answers = eval.Eval(source.root());
  std::printf("research group, //diagnosis: %zu nodes, %d under <sibling>\n",
              answers.size(), CountLeaks(source, answers));

  // The INSECURE translation an ad-hoc implementation might produce: keep
  // '//' on the source. It returns sibling diagnoses -- a privacy breach.
  auto insecure = smoqe::xpath::ParseQuery(
      "department/patient[visit/treatment/medication/diagnosis/text() = "
      "'heart disease']//diagnosis");
  auto leaked =
      smoqe::eval::NaiveEvaluator(source).Eval(insecure.value(), source.root());
  std::printf("naive '//'-preserving translation: %zu nodes, %d under "
              "<sibling>  <-- the leak (Example 1.1)\n",
              leaked.size(), CountLeaks(source, leaked));

  // Group 2: billing -- sees only account names and visit dates.
  auto billing = smoqe::view::ParseView(R"(
view billing {
  source dtd hospital {
    hospital   -> department* ;
    department -> name, address, patient* ;
    name       -> #text ;
    address    -> street, city, zip ;
    street     -> #text ;
    city       -> #text ;
    zip        -> #text ;
    patient    -> pname, address, visit*, parent*, sibling* ;
    pname      -> #text ;
    visit      -> date, treatment, doctor ;
    date       -> #text ;
    treatment  -> test + medication ;
    test       -> type ;
    medication -> type, diagnosis ;
    type       -> #text ;
    diagnosis  -> #text ;
    doctor     -> dname, specialty ;
    dname      -> #text ;
    specialty  -> #text ;
    parent     -> patient ;
    sibling    -> patient ;
  }
  view dtd bills {
    bills   -> account* ;
    account -> pname, charge* ;
    pname   -> #text ;
    charge  -> date ;
    date    -> #text ;
  }
  sigma {
    bills.account  = "department/patient" ;
    account.pname  = "pname" ;
    account.charge = "visit" ;
    charge.date    = "date" ;
  }
}
)");
  if (!billing.ok()) {
    std::fprintf(stderr, "%s\n", billing.status().ToString().c_str());
    return 1;
  }
  auto bq = smoqe::xpath::ParseQuery("account[charge]/pname");
  auto bmfa = smoqe::rewrite::RewriteToMfa(bq.value(), billing.value());
  if (!bmfa.ok()) return 1;
  smoqe::hype::HypeEvaluator beval(source, bmfa.value());
  std::printf("billing group, account[charge]/pname: %zu accounts\n",
              beval.Eval(source.root()).size());

  // A query about diagnoses is meaningless in the billing view: it rewrites
  // to an automaton that selects nothing, rather than leaking data.
  auto forbidden = smoqe::xpath::ParseQuery("//diagnosis");
  auto fmfa = smoqe::rewrite::RewriteToMfa(forbidden.value(), billing.value());
  if (!fmfa.ok()) return 1;
  smoqe::hype::HypeEvaluator feval(source, fmfa.value());
  std::printf("billing group, //diagnosis: %zu nodes (view hides them)\n",
              feval.Eval(source.root()).size());
  return 0;
}
