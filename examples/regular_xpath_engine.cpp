// SMOQE as a stand-alone regular XPath engine (the paper's other headline:
// "HyPE is the first practical algorithm for evaluating regular XPath").
//
// Runs the query of Example 2.1 -- heart disease recurring in every *other*
// generation, inexpressible in plain XPath -- over growing documents with all
// three HyPE variants and reports timings and pruning, a miniature Fig. 9.

#include <chrono>
#include <cstdio>

#include "automata/compiler.h"
#include "gen/fixtures.h"
#include "gen/hospital_generator.h"
#include "hype/hype.h"
#include "hype/index.h"
#include "xpath/parser.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  auto query = smoqe::xpath::ParseQuery(smoqe::gen::kQueryExample21);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("query (Example 2.1): heart disease skipping a generation\n\n");
  smoqe::automata::Mfa mfa = smoqe::automata::CompileQuery(query.value());
  std::printf("MFA: %d NFA states, %d AFA states\n\n", mfa.num_nfa_states(),
              mfa.num_afa_states());
  std::printf("%-10s %-10s %-12s %-12s %-12s %-10s\n", "patients", "elements",
              "HyPE(ms)", "OptHyPE(ms)", "OptC(ms)", "answers");

  for (int patients : {500, 1000, 2000, 4000}) {
    smoqe::gen::HospitalParams params;
    params.patients = patients;
    params.max_ancestor_depth = 6;
    params.heart_disease_prob = 0.3;
    params.seed = 11;
    smoqe::xml::Tree tree = smoqe::gen::GenerateHospital(params);

    auto t0 = std::chrono::steady_clock::now();
    smoqe::hype::HypeEvaluator plain(tree, mfa);
    auto answers = plain.Eval(tree.root());
    double hype_ms = MillisSince(t0);

    smoqe::hype::SubtreeLabelIndex full = smoqe::hype::SubtreeLabelIndex::Build(
        tree, smoqe::hype::SubtreeLabelIndex::Mode::kFull);
    smoqe::hype::HypeOptions opt;
    opt.index = &full;
    t0 = std::chrono::steady_clock::now();
    smoqe::hype::HypeEvaluator opt_eval(tree, mfa, opt);
    auto opt_answers = opt_eval.Eval(tree.root());
    double opt_ms = MillisSince(t0);

    smoqe::hype::SubtreeLabelIndex compressed =
        smoqe::hype::SubtreeLabelIndex::Build(
            tree, smoqe::hype::SubtreeLabelIndex::Mode::kCompressed);
    smoqe::hype::HypeOptions optc;
    optc.index = &compressed;
    t0 = std::chrono::steady_clock::now();
    smoqe::hype::HypeEvaluator optc_eval(tree, mfa, optc);
    auto optc_answers = optc_eval.Eval(tree.root());
    double optc_ms = MillisSince(t0);

    if (opt_answers != answers || optc_answers != answers) {
      std::fprintf(stderr, "variant disagreement -- bug!\n");
      return 1;
    }
    std::printf("%-10d %-10d %-12.2f %-12.2f %-12.2f %-10zu\n", patients,
                tree.CountElements(), hype_ms, opt_ms, optc_ms,
                answers.size());
    std::printf("%-10s pruned: HyPE %.1f%%, OptHyPE %.1f%% "
                "(index: %.0f KB full, %.0f KB compressed)\n",
                "", 100.0 * plain.stats().PrunedFraction(),
                100.0 * opt_eval.stats().PrunedFraction(),
                static_cast<double>(full.MemoryBytes()) / 1024.0,
                static_cast<double>(compressed.MemoryBytes()) / 1024.0);
  }
  return 0;
}
