// smoqe_fsck: non-mutating verifier for a DurableEpochStore directory.
//
//   smoqe_fsck <storage-dir>
//
// Runs the same walk storage::Recover would -- newest verifying snapshot,
// WAL replay, tail validation -- WITHOUT repairing anything, and prints what
// a recovery would find. Exit status: 0 when the directory is recoverable
// (even if that recovery would truncate a torn tail or skip a corrupt
// snapshot -- those are survivable and reported), 1 when no snapshot
// verifies at all, 2 for usage errors.

#include <cstdio>

#include "storage/durable_epoch.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <storage-dir>\n", argv[0]);
    return 2;
  }
  const smoqe::storage::FsckReport fsck = smoqe::storage::Fsck(argv[1]);

  std::printf("%s: %s\n", argv[1], fsck.ok ? "recoverable" : "UNRECOVERABLE");
  if (fsck.ok) {
    std::printf("  recovered version:  %llu\n",
                static_cast<unsigned long long>(fsck.report.recovered_version));
    std::printf("  snapshot version:   %llu\n",
                static_cast<unsigned long long>(fsck.report.snapshot_version));
    std::printf("  wal records replay: %lld\n",
                static_cast<long long>(fsck.report.records_replayed));
    std::printf("  torn tail bytes:    %lld\n",
                static_cast<long long>(fsck.report.bytes_truncated));
    std::printf("  snapshots skipped:  %lld\n",
                static_cast<long long>(fsck.report.snapshots_skipped));
  }
  for (const std::string& note : fsck.notes) {
    std::printf("  note: %s\n", note.c_str());
  }
  return fsck.ok ? 0 : 1;
}
