#include <gtest/gtest.h>

#include <random>
#include <string>

#include "xml/parser.h"
#include "xml/tree.h"
#include "xml/writer.h"

namespace smoqe::xml {
namespace {

TEST(TreeTest, BuildAndNavigate) {
  Tree t;
  NodeId root = t.AddRoot("a");
  NodeId b = t.AddElement(root, "b");
  NodeId c = t.AddElement(root, "c");
  NodeId d = t.AddElement(b, "d");
  EXPECT_EQ(t.root(), root);
  EXPECT_EQ(t.parent(b), root);
  EXPECT_EQ(t.first_child(root), b);
  EXPECT_EQ(t.next_sibling(b), c);
  EXPECT_EQ(t.next_sibling(c), kNullNode);
  EXPECT_EQ(t.first_child(b), d);
  EXPECT_EQ(t.label_name(d), "d");
  EXPECT_EQ(t.size(), 4);
}

TEST(TreeTest, ChildIndexIsOneBased) {
  Tree t;
  NodeId root = t.AddRoot("a");
  NodeId b1 = t.AddElement(root, "b");
  NodeId b2 = t.AddElement(root, "b");
  NodeId b3 = t.AddElement(root, "b");
  EXPECT_EQ(t.child_index(root), 1);
  EXPECT_EQ(t.child_index(b1), 1);
  EXPECT_EQ(t.child_index(b2), 2);
  EXPECT_EQ(t.child_index(b3), 3);
}

TEST(TreeTest, TextHandling) {
  Tree t;
  NodeId root = t.AddRoot("a");
  t.AddText(root, "hello ");
  t.AddText(root, "world");
  EXPECT_EQ(t.TextOf(root), "hello world");
  EXPECT_TRUE(t.HasText(root, "hello world"));  // concatenation
  EXPECT_TRUE(t.HasText(root, "hello "));       // single text child
  EXPECT_FALSE(t.HasText(root, "goodbye"));
  EXPECT_EQ(t.CountElements(), 1);
  EXPECT_EQ(t.CountTexts(), 2);
}

TEST(TreeTest, DepthOfChain) {
  Tree t;
  NodeId n = t.AddRoot("a");
  for (int i = 0; i < 9; ++i) n = t.AddElement(n, "a");
  EXPECT_EQ(t.Depth(), 10);
}

TEST(TreeTest, EmptyTree) {
  Tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.Depth(), 0);
}

TEST(ParserTest, MinimalDocument) {
  auto t = ParseXml("<a/>");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t.value().label_name(t.value().root()), "a");
  EXPECT_EQ(t.value().size(), 1);
}

TEST(ParserTest, NestedElementsAndText) {
  auto t = ParseXml("<a><b>x</b><c><d>y</d></c></a>");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  const Tree& tree = t.value();
  EXPECT_EQ(tree.CountElements(), 4);
  EXPECT_EQ(tree.CountTexts(), 2);
  NodeId b = tree.first_child(tree.root());
  EXPECT_EQ(tree.TextOf(b), "x");
}

TEST(ParserTest, WhitespaceOnlyTextIsDropped) {
  auto t = ParseXml("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().CountTexts(), 0);
  EXPECT_EQ(t.value().CountElements(), 3);
}

TEST(ParserTest, EntitiesDecoded) {
  auto t = ParseXml("<a>&lt;x&gt; &amp; &quot;y&apos; &#65;</a>");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t.value().TextOf(t.value().root()), "<x> & \"y' A");
}

TEST(ParserTest, CommentsAndPIsSkipped) {
  auto t = ParseXml(
      "<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b/></a>");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t.value().CountElements(), 2);
}

TEST(ParserTest, MismatchedTagIsError) {
  auto t = ParseXml("<a><b></a></b>");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
  EXPECT_NE(t.status().message().find("mismatched"), std::string::npos);
}

TEST(ParserTest, AttributesRejected) {
  auto t = ParseXml("<a id=\"1\"/>");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("attributes"), std::string::npos);
}

TEST(ParserTest, TruncatedInputIsError) {
  EXPECT_FALSE(ParseXml("<a><b>").ok());
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a></a><b/>").ok());
  EXPECT_FALSE(ParseXml("plain text").ok());
}

TEST(ParserTest, UnknownEntityIsError) {
  EXPECT_FALSE(ParseXml("<a>&nbsp;</a>").ok());
}

TEST(ParserTest, ErrorsReportLineAndColumn) {
  auto t = ParseXml("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("line 3"), std::string::npos);
}

TEST(WriterTest, RoundTrip) {
  const char* doc = "<a><b>hello</b><c/><d>x &amp; y</d></a>";
  auto t = ParseXml(doc);
  ASSERT_TRUE(t.ok());
  std::string out = WriteXml(t.value());
  EXPECT_EQ(out, doc);
  // Parse the output again: identical structure.
  auto t2 = ParseXml(out);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(WriteXml(t2.value()), out);
}

TEST(WriterTest, IndentedOutputReparses) {
  auto t = ParseXml("<a><b>hello</b><c/></a>");
  ASSERT_TRUE(t.ok());
  WriteOptions opts;
  opts.indent = true;
  std::string pretty = WriteXml(t.value(), opts);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto t2 = ParseXml(pretty);
  ASSERT_TRUE(t2.ok()) << t2.status().ToString();
  EXPECT_EQ(t2.value().CountElements(), 3);
}

TEST(WriterTest, SubtreeSerialization) {
  auto t = ParseXml("<a><b><c/></b><d/></a>");
  ASSERT_TRUE(t.ok());
  NodeId b = t.value().first_child(t.value().root());
  EXPECT_EQ(WriteXml(t.value(), b), "<b><c/></b>");
}

// ------------------------------------------------- parser hardening --
// The robustness contract (parser.h): any input yields a Tree or a
// ParseError, never a crash.

TEST(ParserTest, AdversariallyDeepDocumentDoesNotOverflowTheStack) {
  // 200k nested elements: the old recursive-descent parser overflowed the
  // thread stack here; the explicit-stack parse is bounded by heap only.
  constexpr int kDepth = 200000;
  std::string doc;
  doc.reserve(kDepth * 7 + 8);
  for (int i = 0; i < kDepth; ++i) doc += "<a>";
  doc += "<leaf/>";
  for (int i = 0; i < kDepth; ++i) doc += "</a>";
  auto t = ParseXml(doc);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t.value().Depth(), kDepth + 1);
  EXPECT_EQ(t.value().CountElements(), kDepth + 1);
}

TEST(ParserTest, DeepTruncatedDocumentIsAnErrorNotACrash) {
  std::string doc;
  for (int i = 0; i < 100000; ++i) doc += "<a>";
  auto t = ParseXml(doc);  // never closed
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, CharacterReferenceEdgeCases) {
  // Hex form.
  auto hex = ParseXml("<a>&#x41;&#x61;</a>");
  ASSERT_TRUE(hex.ok()) << hex.status().ToString();
  EXPECT_EQ(hex.value().TextOf(hex.value().root()), "Aa");
  // Out-of-range magnitudes were undefined behavior under atoi; all of
  // these must be clean parse errors now.
  EXPECT_FALSE(ParseXml("<a>&#99999999999999999999999;</a>").ok());
  EXPECT_FALSE(ParseXml("<a>&#x8000000000000000;</a>").ok());
  EXPECT_FALSE(ParseXml("<a>&#-65;</a>").ok());
  EXPECT_FALSE(ParseXml("<a>&#;</a>").ok());
  EXPECT_FALSE(ParseXml("<a>&#12abc;</a>").ok());
  EXPECT_FALSE(ParseXml("<a>&#1000;</a>").ok());  // > 127: unsupported
  EXPECT_FALSE(ParseXml("<a>&#0;</a>").ok());
}

TEST(ParserTest, RunawayEntityReferenceIsBounded) {
  // A stray '&' with no terminating ';' must not scan-and-echo the rest of
  // the document into the error message.
  std::string doc = "<a>&" + std::string(5000, 'x') + "</a>";
  auto t = ParseXml(doc);
  ASSERT_FALSE(t.ok());
  EXPECT_LT(t.status().message().size(), 256u);
}

TEST(ParserTest, RandomizedCorruptionNeverCrashes) {
  // Build a non-trivial well-formed document, then fuzz it: random
  // truncations, byte flips, and metacharacter injections. Every variant
  // must parse to a tree or a ParseError; whenever it parses, the writer
  // round-trip must reparse to an identical document.
  Tree base;
  NodeId root = base.AddRoot("hospital");
  std::mt19937_64 gen(0xFACADE);
  for (int d = 0; d < 6; ++d) {
    NodeId dept = base.AddElement(root, "department");
    for (int p = 0; p < 4; ++p) {
      NodeId patient = base.AddElement(dept, "patient");
      base.AddText(base.AddElement(patient, "pname"),
                   "P" + std::to_string(gen() % 100));
      NodeId visit = base.AddElement(patient, "visit");
      base.AddText(base.AddElement(visit, "diagnosis"), "x & <y> \"z\"");
    }
  }
  const std::string doc = WriteXml(base);
  ASSERT_TRUE(ParseXml(doc).ok());

  static const char kMeta[] = {'<', '>', '&', '/', ';', '!', '?', '-', '\0'};
  std::mt19937_64 rng(20260807);
  int reparsed_ok = 0;
  for (int i = 0; i < 3000; ++i) {
    std::string fuzzed = doc;
    const int mutations = 1 + static_cast<int>(rng() % 4);
    for (int m = 0; m < mutations; ++m) {
      const size_t at = rng() % fuzzed.size();
      switch (rng() % 4) {
        case 0:
          fuzzed.resize(at);  // truncate
          break;
        case 1:
          fuzzed[at] = static_cast<char>(rng() % 256);  // flip a byte
          break;
        case 2:
          fuzzed.insert(at, 1, kMeta[rng() % sizeof(kMeta)]);  // inject
          break;
        case 3:
          if (!fuzzed.empty()) fuzzed.erase(at, 1 + rng() % 8);  // delete
          break;
      }
      if (fuzzed.empty()) break;
    }
    auto t = ParseXml(fuzzed);  // must return, never crash
    if (t.ok()) {
      auto again = ParseXml(WriteXml(t.value()));
      ASSERT_TRUE(again.ok()) << "round-trip of an accepted fuzz variant";
      EXPECT_EQ(WriteXml(again.value()), WriteXml(t.value()));
      ++reparsed_ok;
    } else {
      EXPECT_EQ(t.status().code(), StatusCode::kParseError);
    }
  }
  // Some mutations (e.g. flips inside text) must still be accepted -- the
  // fuzz loop is exercising both outcomes.
  EXPECT_GT(reparsed_ok, 0);
}

TEST(TreeTest, ApproxByteSizeGrowsWithContent) {
  Tree t1;
  t1.AddRoot("a");
  Tree t2;
  NodeId r = t2.AddRoot("a");
  for (int i = 0; i < 100; ++i) t2.AddText(t2.AddElement(r, "child"), "text");
  EXPECT_GT(t2.ApproxByteSize(), t1.ApproxByteSize());
}

}  // namespace
}  // namespace smoqe::xml
