// BatchHypeEvaluator correctness: a batch evaluated in one shared pass must
// answer exactly like per-query HypeEvaluator runs, which in turn must match
// the NaiveEvaluator oracle -- across batch sizes, with and without the
// subtree-label index, on fixed and randomized query workloads. Also the
// explicit-stack regression: documents ≥ 100k deep must evaluate without
// stack overflow (the recursive Visit of the old evaluator could not).

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "automata/compiler.h"
#include "eval/naive_evaluator.h"
#include "gen/hospital_generator.h"
#include "gen/query_generator.h"
#include "hype/batch_hype.h"
#include "hype/hype.h"
#include "hype/index.h"
#include "xml/parser.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace smoqe::hype {
namespace {

using NodeVec = std::vector<xml::NodeId>;

xml::Tree Hospital(int patients, uint64_t seed) {
  gen::HospitalParams params;
  params.patients = patients;
  params.seed = seed;
  params.heart_disease_prob = 0.3;
  return gen::GenerateHospital(params);
}

std::vector<automata::Mfa> CompileAll(const std::vector<std::string>& queries) {
  std::vector<automata::Mfa> mfas;
  mfas.reserve(queries.size());
  for (const std::string& q : queries) {
    auto parsed = xpath::ParseQuery(q);
    EXPECT_TRUE(parsed.ok()) << q << ": " << parsed.status().ToString();
    mfas.push_back(automata::CompileQuery(parsed.value()));
  }
  return mfas;
}

// Runs every (batch size x index mode) combination over `queries` and checks
// batched == per-query HyPE == naive for every query.
void CheckEquivalence(const xml::Tree& tree,
                      const std::vector<std::string>& queries,
                      const std::vector<int>& batch_sizes) {
  std::vector<automata::Mfa> mfas = CompileAll(queries);

  // Oracles, computed once per query.
  eval::NaiveEvaluator naive(tree);
  std::vector<NodeVec> expected;
  for (const std::string& q : queries) {
    auto parsed = xpath::ParseQuery(q);
    ASSERT_TRUE(parsed.ok());
    expected.push_back(naive.Eval(parsed.value(), tree.root()));
  }

  SubtreeLabelIndex full =
      SubtreeLabelIndex::Build(tree, SubtreeLabelIndex::Mode::kFull);
  SubtreeLabelIndex compressed =
      SubtreeLabelIndex::Build(tree, SubtreeLabelIndex::Mode::kCompressed, 8);
  const SubtreeLabelIndex* indexes[] = {nullptr, &full, &compressed};

  for (const SubtreeLabelIndex* index : indexes) {
    // Per-query HyPE must agree with naive.
    HypeOptions solo_options;
    solo_options.index = index;
    std::vector<NodeVec> solo;
    for (size_t i = 0; i < mfas.size(); ++i) {
      HypeEvaluator eval(tree, mfas[i], solo_options);
      solo.push_back(eval.Eval(tree.root()));
      ASSERT_EQ(solo.back(), expected[i])
          << "solo HyPE vs naive, query " << queries[i]
          << " index=" << (index != nullptr);
    }

    // Batched must agree with per-query, for every partition into batches.
    for (int batch_size : batch_sizes) {
      for (size_t begin = 0; begin < mfas.size();
           begin += static_cast<size_t>(batch_size)) {
        size_t end = std::min(mfas.size(), begin + batch_size);
        std::vector<const automata::Mfa*> slice;
        for (size_t i = begin; i < end; ++i) slice.push_back(&mfas[i]);

        BatchHypeOptions options;
        options.index = index;
        BatchHypeEvaluator batch(tree, slice, options);
        std::vector<NodeVec> answers = batch.EvalAll(tree.root());
        ASSERT_EQ(answers.size(), slice.size());
        for (size_t i = begin; i < end; ++i) {
          EXPECT_EQ(answers[i - begin], solo[i])
              << "batched vs solo, query " << queries[i] << " batch_size "
              << batch_size << " index=" << (index != nullptr);
        }
      }
    }
  }
}

TEST(BatchHypeTest, FixedHospitalWorkloadAllBatchSizes) {
  xml::Tree tree = Hospital(20, 7);
  std::vector<std::string> queries = {
      "department/patient/pname",
      "department/patient[visit]/pname",
      "//diagnosis",
      "//patient[visit/treatment/medication]",
      "department/patient[visit/treatment/test]/pname",
      "department/patient/(parent/patient)*"
      "[visit/treatment/medication/diagnosis/text() = 'heart disease']",
      "department/patient[not(visit/treatment/test)]",
      "//doctor/specialty",
      "department/*/visit",
      "department/patient[visit/treatment/medication/diagnosis/"
      "text() = 'heart disease' or visit/treatment/test]",
      "missing_label",
      ".",
      "department/patient/visit/treatment/(medication | test)/type",
      "//treatment[medication and not(test)]",
      "(department)*/patient/sibling",
      "department/patient[address/city/text() = 'Edinburgh']/pname",
  };
  CheckEquivalence(tree, queries, {1, 4, 16});
}

TEST(BatchHypeTest, RandomizedEquivalenceSuite) {
  xml::Tree tree = Hospital(10, 23);
  gen::QueryGenParams qparams;
  qparams.labels = {"department", "patient", "pname",     "visit",
                    "treatment",  "medication", "test",   "diagnosis",
                    "doctor",     "parent",     "sibling", "address",
                    "city",       "name"};
  qparams.text_values = {"heart disease", "diabetes", "Edinburgh"};
  qparams.max_depth = 3;

  std::mt19937_64 rng(20260730);
  std::vector<std::string> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(xpath::ToString(gen::RandomQuery(qparams, &rng)));
  }
  CheckEquivalence(tree, queries, {1, 4, 16, 64});
}

TEST(BatchHypeTest, DeadQueryDoesNotDisturbTheBatch) {
  xml::Tree tree = Hospital(5, 3);
  // The middle query matches nothing (label absent from the document): its
  // engine never starts, the others must be unaffected.
  CheckEquivalence(tree,
                   {"//diagnosis", "nonexistent/label", "department/patient"},
                   {3});
}

TEST(BatchHypeTest, EvalAllIsRepeatable) {
  xml::Tree tree = Hospital(8, 5);
  std::vector<std::string> queries = {"//diagnosis",
                                      "department/patient[visit]/pname"};
  std::vector<automata::Mfa> mfas = CompileAll(queries);
  BatchHypeEvaluator batch(tree, {&mfas[0], &mfas[1]});
  auto first = batch.EvalAll(tree.root());
  auto second = batch.EvalAll(tree.root());
  EXPECT_EQ(first, second);
}

TEST(BatchHypeTest, PerEngineStatsMatchSoloRuns) {
  xml::Tree tree = Hospital(12, 9);
  std::vector<std::string> queries = {
      "department/patient/pname",
      "department/patient[visit/treatment/test]/pname",
      "//diagnosis",
  };
  std::vector<automata::Mfa> mfas = CompileAll(queries);
  std::vector<const automata::Mfa*> ptrs = {&mfas[0], &mfas[1], &mfas[2]};
  BatchHypeEvaluator batch(tree, ptrs);
  batch.EvalAll(tree.root());

  int64_t visited_sum = 0;
  for (size_t i = 0; i < mfas.size(); ++i) {
    HypeEvaluator solo(tree, mfas[i]);
    solo.Eval(tree.root());
    EXPECT_EQ(batch.stats(i).elements_visited, solo.stats().elements_visited)
        << queries[i];
    EXPECT_EQ(batch.stats(i).cans_vertices, solo.stats().cans_vertices)
        << queries[i];
    visited_sum += solo.stats().elements_visited;
  }
  // The shared walk enters each needed node once; the solo passes re-enter
  // shared nodes per query.
  EXPECT_LE(batch.pass_stats().nodes_walked, visited_sum);
  EXPECT_GT(batch.pass_stats().nodes_walked, 0);
}

// Satellite regression for the explicit-stack traversal: the old recursive
// Visit overflowed the stack near depth ~100k; the iterative driver must
// handle arbitrarily deep documents, solo and batched, with and without cans
// regions (filters) active along the whole spine.
TEST(BatchHypeTest, DeepDocumentExplicitStackRegression) {
  constexpr int kDepth = 120000;
  xml::Tree tree;
  xml::NodeId n = tree.AddRoot("a");
  for (int i = 0; i < kDepth; ++i) n = tree.AddElement(n, "a");
  tree.AddElement(n, "b");

  // ".[a]/a*/b" opens a cans region at the root and then runs a 120k-deep
  // barren chain through it (exercises edge-mapping composition).
  std::vector<std::string> queries = {"a*/b", "//b", "a*[b]", "//a[b]/b",
                                      ".[a]/a*/b"};
  std::vector<automata::Mfa> mfas = CompileAll(queries);

  for (size_t i = 0; i < mfas.size(); ++i) {
    HypeEvaluator solo(tree, mfas[i]);
    EXPECT_EQ(solo.Eval(tree.root()).size(), 1u) << queries[i];
  }

  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& m : mfas) ptrs.push_back(&m);
  BatchHypeEvaluator batch(tree, ptrs);
  std::vector<NodeVec> answers = batch.EvalAll(tree.root());
  for (size_t i = 0; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i].size(), 1u) << queries[i];
  }
}

}  // namespace
}  // namespace smoqe::hype
