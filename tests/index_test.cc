// OptHyPE / OptHyPE-C: the subtree-label index must preserve answers exactly
// while pruning at least as much as plain HyPE.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "automata/compiler.h"
#include "eval/naive_evaluator.h"
#include "gen/fixtures.h"
#include "gen/hospital_generator.h"
#include "hype/hype.h"
#include "hype/index.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace smoqe::hype {
namespace {

xml::Tree Doc(const char* text) {
  auto t = xml::ParseXml(text);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return t.take();
}

TEST(IndexTest, BuildFullMode) {
  xml::Tree t = Doc("<r><a><b/></a><c/></r>");
  SubtreeLabelIndex idx =
      SubtreeLabelIndex::Build(t, SubtreeLabelIndex::Mode::kFull);
  int32_t root_set = idx.SetForContext(t, t.root());
  LabelId a = t.labels().Lookup("a");
  LabelId b = t.labels().Lookup("b");
  LabelId r = t.labels().Lookup("r");
  EXPECT_TRUE(idx.Contains(root_set, a));
  EXPECT_TRUE(idx.Contains(root_set, b));
  EXPECT_FALSE(idx.Contains(root_set, r));  // r is not *below* the root

  // The 'a' subtree contains only b below it.
  xml::NodeId node_a = t.first_child(t.root());
  int32_t a_set = idx.EffectiveSet(node_a, root_set);
  EXPECT_TRUE(idx.Contains(a_set, b));
  EXPECT_FALSE(idx.Contains(a_set, a));
  // Leaf subtrees have empty sets.
  xml::NodeId node_b = t.first_child(node_a);
  EXPECT_TRUE(idx.IsEmpty(idx.EffectiveSet(node_b, a_set)));
}

TEST(IndexTest, CompressedModeInheritsFromAncestors) {
  gen::HospitalParams params;
  params.patients = 30;
  params.seed = 12;
  xml::Tree t = gen::GenerateHospital(params);
  SubtreeLabelIndex full =
      SubtreeLabelIndex::Build(t, SubtreeLabelIndex::Mode::kFull);
  SubtreeLabelIndex compressed = SubtreeLabelIndex::Build(
      t, SubtreeLabelIndex::Mode::kCompressed, /*threshold=*/16);
  // Compressed index must be substantially smaller.
  EXPECT_LT(compressed.MemoryBytes(), full.MemoryBytes() / 2);

  // Compressed sets over-approximate full sets (soundness).
  int32_t full_eff = full.SetForContext(t, t.root());
  int32_t comp_eff = compressed.SetForContext(t, t.root());
  std::vector<std::pair<xml::NodeId, std::pair<int32_t, int32_t>>> stack = {
      {t.root(), {full_eff, comp_eff}}};
  while (!stack.empty()) {
    auto [node, effs] = stack.back();
    stack.pop_back();
    auto [feff, ceff] = effs;
    for (LabelId l = 0; l < t.labels().size(); ++l) {
      if (full.Contains(feff, l)) {
        EXPECT_TRUE(compressed.Contains(ceff, l))
            << "compressed set lost label " << t.labels().name(l);
      }
    }
    for (xml::NodeId c = t.first_child(node); c != xml::kNullNode;
         c = t.next_sibling(c)) {
      if (!t.is_element(c)) continue;
      stack.push_back(
          {c, {full.EffectiveSet(c, feff), compressed.EffectiveSet(c, ceff)}});
    }
  }
}

std::vector<xml::NodeId> RunWith(const xml::Tree& t, std::string_view q,
                                 const SubtreeLabelIndex* idx,
                                 EvalStats* stats = nullptr) {
  auto query = xpath::ParseQuery(q);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  automata::Mfa mfa = automata::CompileQuery(query.value());
  HypeOptions options;
  options.index = idx;
  HypeEvaluator eval(t, mfa, options);
  auto out = eval.Eval(t.root());
  if (stats != nullptr) *stats = eval.stats();
  return out;
}

class IndexEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(IndexEquivalenceTest, OptHypeVariantsMatchPlainHype) {
  gen::HospitalParams params;
  params.patients = 40;
  params.seed = 14;
  params.heart_disease_prob = 0.2;
  xml::Tree t = gen::GenerateHospital(params);
  SubtreeLabelIndex full =
      SubtreeLabelIndex::Build(t, SubtreeLabelIndex::Mode::kFull);
  SubtreeLabelIndex compressed =
      SubtreeLabelIndex::Build(t, SubtreeLabelIndex::Mode::kCompressed, 16);

  EvalStats plain_stats, full_stats, comp_stats;
  auto plain = RunWith(t, GetParam(), nullptr, &plain_stats);
  auto opt = RunWith(t, GetParam(), &full, &full_stats);
  auto opt_c = RunWith(t, GetParam(), &compressed, &comp_stats);
  EXPECT_EQ(plain, opt) << GetParam();
  EXPECT_EQ(plain, opt_c) << GetParam();

  // The indexed variants never visit more nodes than plain HyPE, and the
  // compressed variant never prunes more than the full one.
  EXPECT_LE(full_stats.elements_visited, plain_stats.elements_visited);
  EXPECT_LE(comp_stats.elements_visited, plain_stats.elements_visited);
  EXPECT_GE(comp_stats.elements_visited, full_stats.elements_visited);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, IndexEquivalenceTest,
    ::testing::Values(
        "department/patient[visit/treatment/medication/diagnosis/"
        "text() = 'heart disease']/pname",
        "//medication[diagnosis]",
        "//patient[visit/treatment/test]",
        "department/patient/(parent/patient)*",
        "department/patient[not(visit/treatment/test)]",
        "//sibling//diagnosis",
        "department/patient[(parent/patient)*/visit/treatment/medication/"
        "diagnosis/text() = 'heart disease']",
        "//doctor[specialty/text() = 'cardiology']"));

TEST(IndexTest, IndexPrunesMoreOnSelectiveQueries) {
  gen::HospitalParams params;
  params.patients = 120;
  params.seed = 15;
  params.medication_prob = 0.3;  // most visits are tests -> no diagnosis
  xml::Tree t = gen::GenerateHospital(params);
  SubtreeLabelIndex full =
      SubtreeLabelIndex::Build(t, SubtreeLabelIndex::Mode::kFull);
  EvalStats plain_stats, opt_stats;
  const char* q = "department/patient[visit/treatment/medication/diagnosis/"
                  "text() = 'heart disease']/pname";
  auto a = RunWith(t, q, nullptr, &plain_stats);
  auto b = RunWith(t, q, &full, &opt_stats);
  EXPECT_EQ(a, b);
  EXPECT_LT(opt_stats.elements_visited, plain_stats.elements_visited);
}

TEST(IndexTest, NegationStaysCorrectUnderPruning) {
  // A NOT whose operand can never be true below a pruned subtree must still
  // evaluate to true: dropping the request treats it as false, and the NOT
  // is computed at the ancestor. Regression guard for the pruning rule.
  xml::Tree t = Doc(
      "<r><a><deep><x/></deep></a><a><deep><y/></deep></a></r>");
  SubtreeLabelIndex idx =
      SubtreeLabelIndex::Build(t, SubtreeLabelIndex::Mode::kFull);
  const char* q = "a[not(deep/x)]";
  auto plain = RunWith(t, q, nullptr);
  auto opt = RunWith(t, q, &idx);
  EXPECT_EQ(plain, opt);
  ASSERT_EQ(opt.size(), 1u);
}

TEST(IndexTest, Fig4WithIndexMatchesGolden) {
  gen::Fig4Tree fig = gen::MakeFig4Tree();
  SubtreeLabelIndex idx =
      SubtreeLabelIndex::Build(fig.tree, SubtreeLabelIndex::Mode::kFull);
  auto answers = RunWith(fig.tree, gen::kQueryExample41, &idx);
  std::vector<xml::NodeId> expected = {fig.ids[9], fig.ids[11]};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(answers, expected);
}

TEST(IndexTest, EvalFromMidTreeContext) {
  gen::Fig4Tree fig = gen::MakeFig4Tree();
  SubtreeLabelIndex full =
      SubtreeLabelIndex::Build(fig.tree, SubtreeLabelIndex::Mode::kFull);
  SubtreeLabelIndex compressed = SubtreeLabelIndex::Build(
      fig.tree, SubtreeLabelIndex::Mode::kCompressed, 4);
  auto query = xpath::ParseQuery("(parent/patient)*/record/diagnosis");
  ASSERT_TRUE(query.ok());
  automata::Mfa mfa = automata::CompileQuery(query.value());
  for (const SubtreeLabelIndex* idx : {&full, &compressed}) {
    HypeOptions options;
    options.index = idx;
    HypeEvaluator with_idx(fig.tree, mfa, options);
    HypeEvaluator without(fig.tree, mfa);
    EXPECT_EQ(with_idx.Eval(fig.ids[9]), without.Eval(fig.ids[9]));
    EXPECT_EQ(with_idx.Eval(fig.ids[2]), without.Eval(fig.ids[2]));
  }
}

// Compressed-mode SetForContext memoizes lazily behind a shared_mutex;
// shard workers resolve the same contexts concurrently. Hammer one index
// from many threads over shuffled contexts and compare every result
// against a sequentially-warmed twin. Under TSan (the `concurrency` CI
// job) this also catches the rehash race the hit path used to have --
// returning a reference into the map across the shared-lock release while
// a racing miss inserted.
TEST(IndexTest, ConcurrentSetForContextMatchesSequential) {
  gen::HospitalParams params;
  params.patients = 40;
  params.seed = 91;
  xml::Tree t = gen::GenerateHospital(params);

  SubtreeLabelIndex oracle = SubtreeLabelIndex::Build(
      t, SubtreeLabelIndex::Mode::kCompressed, /*threshold=*/16);
  std::vector<int32_t> expected(t.size(), -1);
  for (xml::NodeId id = 0; id < t.size(); ++id) {
    if (t.is_element(id)) expected[id] = oracle.SetForContext(t, id);
  }

  SubtreeLabelIndex shared = SubtreeLabelIndex::Build(
      t, SubtreeLabelIndex::Mode::kCompressed, /*threshold=*/16);
  std::vector<xml::NodeId> contexts;
  for (xml::NodeId id = 0; id < t.size(); ++id) {
    if (t.is_element(id)) contexts.push_back(id);
  }

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      // Per-thread shuffle: every thread resolves every context, in a
      // different order, so cold misses collide on the same nodes.
      std::vector<xml::NodeId> mine = contexts;
      std::mt19937_64 rng(1000 + w);
      std::shuffle(mine.begin(), mine.end(), rng);
      for (int round = 0; round < 3; ++round) {
        for (xml::NodeId id : mine) {
          if (shared.SetForContext(t, id) != expected[id]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace smoqe::hype
