// xml::TreeDelta and the incremental DocPlane maintainer.
//
// Three property families:
//  * Edit primitives and Fragment round-trips: detach/insert/relabel keep
//    the tree's reachable-node accounting and sibling numbering exact, and
//    Capture -> Instantiate reproduces a subtree structurally.
//  * Delta algebra: ApplyTo's inverse restores the original tree
//    (StructurallyEqual -- ids legitimately differ), Compose(a, b) applied
//    once equals a then b, and version admission rejects mismatches.
//  * Maintainer ≡ Build: across randomized delta streams (and a 120k-deep
//    spine), the plane patched through DocPlane::Maintainer is
//    BIT-IDENTICAL (DocPlane::SameAs -- labels, parents, depths, extents,
//    text bits, NodeId maps, postings) to a from-scratch DocPlane::Build of
//    the edited tree. This is the property the epoch publisher and the
//    mutation bench stand on.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "xml/doc_plane.h"
#include "xml/tree.h"
#include "xml/tree_delta.h"

namespace smoqe::xml {
namespace {

const char* const kLabels[] = {"a", "b", "c", "d", "e"};

// Reachable elements in document order (iterative; excludes tombstones).
std::vector<NodeId> ReachableElements(const Tree& tree) {
  std::vector<NodeId> out;
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    if (tree.is_element(n)) out.push_back(n);
    for (NodeId c = tree.first_child(n); c != kNullNode;
         c = tree.next_sibling(c)) {
      stack.push_back(c);
    }
  }
  return out;
}

Tree RandomTree(int num_elements, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Tree tree;
  std::vector<NodeId> elements = {tree.AddRoot("a")};
  for (int i = 1; i < num_elements; ++i) {
    NodeId parent = elements[rng() % elements.size()];
    elements.push_back(tree.AddElement(parent, kLabels[rng() % 5]));
    if (coin(rng) < 0.2) {
      tree.AddText(elements.back(), coin(rng) < 0.5 ? "alpha" : "beta");
    }
  }
  return tree;
}

Fragment RandomFragment(std::mt19937_64& rng, int max_elements) {
  // Built on a scratch tree so Capture's preorder discipline is exercised.
  Tree scratch;
  std::vector<NodeId> elements = {scratch.AddRoot(kLabels[rng() % 5])};
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  const int n = 1 + static_cast<int>(rng() % max_elements);
  for (int i = 1; i < n; ++i) {
    NodeId parent = elements[rng() % elements.size()];
    elements.push_back(scratch.AddElement(parent, kLabels[rng() % 5]));
    if (coin(rng) < 0.3) scratch.AddText(elements.back(), "gamma");
  }
  return Fragment::Capture(scratch, scratch.root());
}

// A delta of `num_ops` random edits, generated against a scratch copy so
// each op targets a node that is live at its point in the sequence.
TreeDelta RandomDelta(const Tree& tree, uint64_t version, int num_ops,
                      std::mt19937_64& rng) {
  Tree scratch = tree;
  TreeDelta delta(version);
  for (int i = 0; i < num_ops; ++i) {
    std::vector<NodeId> elements = ReachableElements(scratch);
    const int kind = static_cast<int>(rng() % 3);
    if (kind == 0 && elements.size() > 1) {  // delete a non-root subtree
      NodeId victim = elements[1 + rng() % (elements.size() - 1)];
      delta.AddDelete(victim);
      TreeDelta step(0);
      step.AddDelete(victim);
      EXPECT_TRUE(step.ApplyTo(&scratch).ok()) << "scratch delete";
    } else if (kind == 1) {  // insert a fragment at a random slot
      NodeId parent = elements[rng() % elements.size()];
      const int32_t slot = static_cast<int32_t>(rng() % 4);  // 0 = append
      Fragment fragment = RandomFragment(rng, 6);
      delta.AddInsert(parent, slot, fragment);
      TreeDelta step(0);
      step.AddInsert(parent, slot, std::move(fragment));
      EXPECT_TRUE(step.ApplyTo(&scratch).ok()) << "scratch insert";
    } else {  // relabel
      NodeId node = elements[rng() % elements.size()];
      const char* label = kLabels[rng() % 5];
      delta.AddRelabel(node, label);
      TreeDelta step(0);
      step.AddRelabel(node, label);
      EXPECT_TRUE(step.ApplyTo(&scratch).ok()) << "scratch relabel";
    }
  }
  return delta;
}

TEST(TreeMutationTest, DetachKeepsAccountingAndSiblingOrder) {
  Tree tree;
  NodeId root = tree.AddRoot("a");
  NodeId c1 = tree.AddElement(root, "b");
  NodeId c2 = tree.AddElement(root, "c");
  NodeId c3 = tree.AddElement(root, "d");
  tree.AddText(c2, "t");
  tree.AddElement(c2, "e");
  const int32_t elements_before = tree.CountElements();
  const int32_t texts_before = tree.CountTexts();

  tree.DetachSubtree(c2);
  EXPECT_EQ(tree.CountElements(), elements_before - 2);
  EXPECT_EQ(tree.CountTexts(), texts_before - 1);
  EXPECT_EQ(tree.CountDetached(), 3);
  EXPECT_EQ(tree.first_child(root), c1);
  EXPECT_EQ(tree.next_sibling(c1), c3);
  EXPECT_EQ(tree.child_index(c3), 2);  // renumbered after the detach
  EXPECT_EQ(tree.parent(c2), kNullNode);
}

TEST(TreeMutationTest, InsertBeforeRenumbersAndCounts) {
  Tree tree;
  NodeId root = tree.AddRoot("a");
  NodeId c1 = tree.AddElement(root, "b");
  NodeId c2 = tree.AddElement(root, "c");
  NodeId mid = tree.InsertElementBefore(root, c2, "d");
  EXPECT_EQ(tree.next_sibling(c1), mid);
  EXPECT_EQ(tree.next_sibling(mid), c2);
  EXPECT_EQ(tree.child_index(mid), 2);
  EXPECT_EQ(tree.child_index(c2), 3);
  EXPECT_EQ(tree.CountElements(), 4);
  NodeId tail = tree.InsertElementBefore(root, kNullNode, "e");
  EXPECT_EQ(tree.next_sibling(c2), tail);
  EXPECT_EQ(tree.child_index(tail), 4);
  tree.Relabel(mid, "z");
  EXPECT_EQ(tree.label_name(mid), "z");
  EXPECT_EQ(tree.CountSubtreeElements(root), 5);
}

TEST(TreeDeltaTest, FragmentRoundTrip) {
  Tree source = RandomTree(40, 11);
  std::vector<NodeId> elements = ReachableElements(source);
  for (NodeId n : elements) {
    Fragment fragment = Fragment::Capture(source, n);
    EXPECT_EQ(fragment.CountElements(), source.CountSubtreeElements(n));
    Tree target;
    target.AddRoot("host");
    NodeId copy = fragment.Instantiate(&target, target.root(), 0);
    // The copy must mirror the source subtree; compare via re-capture.
    Fragment again = Fragment::Capture(target, copy);
    ASSERT_EQ(again.items.size(), fragment.items.size());
    for (size_t i = 0; i < fragment.items.size(); ++i) {
      EXPECT_EQ(again.items[i].is_text, fragment.items[i].is_text);
      EXPECT_EQ(again.items[i].parent, fragment.items[i].parent);
      EXPECT_EQ(again.items[i].value, fragment.items[i].value);
    }
  }
}

TEST(TreeDeltaTest, InverseRestoresStructure) {
  std::mt19937_64 rng(5);
  for (int round = 0; round < 20; ++round) {
    Tree tree = RandomTree(60, 100 + round);
    const Tree original = tree;
    TreeDelta delta = RandomDelta(tree, 0, 1 + round % 5, rng);
    TreeDelta inverse;
    ASSERT_TRUE(delta.ApplyTo(&tree, nullptr, &inverse).ok());
    EXPECT_EQ(inverse.from_version(), delta.to_version());
    EXPECT_EQ(inverse.to_version(), delta.from_version());
    ASSERT_TRUE(inverse.ApplyTo(&tree).ok());
    EXPECT_TRUE(StructurallyEqual(tree, original)) << "round " << round;
  }
}

TEST(TreeDeltaTest, InverseRemapsTargetsInsideDeletedSubtrees) {
  // Edit inside a subtree, then delete that subtree: the undo of the inner
  // edit must follow the re-instantiated (fresh-id) copy, not the
  // tombstoned original. Exercises the dry-run remap in ApplyTo,
  // including a nested delete-inside-delete.
  Tree tree;
  NodeId root = tree.AddRoot("a");
  NodeId outer = tree.AddElement(root, "b");
  NodeId mid = tree.AddElement(outer, "c");
  NodeId inner = tree.AddElement(mid, "d");
  tree.AddText(inner, "t");
  tree.AddElement(outer, "e");
  const Tree original = tree;

  TreeDelta delta(0);
  delta.AddRelabel(inner, "z");   // inside mid, inside outer
  delta.AddDelete(mid);           // deletes inner's subtree
  {
    Tree scratch;
    scratch.AddRoot("f");
    delta.AddInsert(outer, 1, Fragment::Capture(scratch, scratch.root()));
  }
  delta.AddDelete(outer);         // deletes the re-... everything above
  TreeDelta inverse;
  ASSERT_TRUE(delta.ApplyTo(&tree, nullptr, &inverse).ok());
  ASSERT_TRUE(inverse.ApplyTo(&tree).ok());
  EXPECT_TRUE(StructurallyEqual(tree, original));
}

TEST(TreeDeltaTest, ComposeEqualsSequentialApplication) {
  std::mt19937_64 rng(17);
  for (int round = 0; round < 10; ++round) {
    Tree tree = RandomTree(50, 200 + round);
    Tree sequential = tree;
    TreeDelta first = RandomDelta(sequential, 0, 3, rng);
    ASSERT_TRUE(first.ApplyTo(&sequential).ok());
    TreeDelta second = RandomDelta(sequential, 1, 3, rng);
    ASSERT_TRUE(second.ApplyTo(&sequential).ok());

    auto composed = TreeDelta::Compose(first, second);
    ASSERT_TRUE(composed.ok());
    EXPECT_EQ(composed.value().from_version(), 0u);
    EXPECT_EQ(composed.value().to_version(), 2u);
    Tree once = tree;
    ASSERT_TRUE(composed.value().ApplyTo(&once).ok());
    EXPECT_TRUE(StructurallyEqual(once, sequential)) << "round " << round;
  }
}

TEST(TreeDeltaTest, ComposeRejectsVersionMismatch) {
  TreeDelta first(0);
  TreeDelta second(5);
  auto composed = TreeDelta::Compose(first, second);
  ASSERT_FALSE(composed.ok());
  EXPECT_EQ(composed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TreeDeltaTest, ApplyRejectsBadTargets) {
  Tree tree = RandomTree(10, 3);
  {
    TreeDelta delta(0);
    delta.AddDelete(tree.root());
    EXPECT_FALSE(delta.ApplyTo(&tree).ok());
  }
  {
    TreeDelta delta(0);
    delta.AddRelabel(tree.size() + 5, "z");
    EXPECT_FALSE(delta.ApplyTo(&tree).ok());
  }
  {
    // A detached node is not a valid target.
    Tree t2 = RandomTree(10, 4);
    std::vector<NodeId> elements = ReachableElements(t2);
    NodeId victim = elements.back();
    t2.DetachSubtree(victim);
    TreeDelta delta(0);
    delta.AddRelabel(victim, "z");
    EXPECT_FALSE(delta.ApplyTo(&t2).ok());
  }
}

TEST(TreeDeltaTest, MaintainerMatchesBuildOnRandomStreams) {
  std::mt19937_64 rng(23);
  for (int round = 0; round < 15; ++round) {
    Tree tree = RandomTree(80, 300 + round);
    DocPlane plane = DocPlane::Build(tree);
    uint64_t version = 0;
    for (int step = 0; step < 8; ++step) {
      TreeDelta delta = RandomDelta(tree, version, 1 + step % 3, rng);
      DocPlane::Maintainer maintainer(plane);
      ASSERT_TRUE(delta.ApplyTo(&tree, &maintainer).ok())
          << "round " << round << " step " << step;
      plane = maintainer.Take(tree);
      DocPlane fresh = DocPlane::Build(tree);
      ASSERT_TRUE(plane.SameAs(fresh))
          << "maintained plane diverged from Build, round " << round
          << " step " << step;
      version = delta.to_version();
    }
  }
}

TEST(TreeDeltaTest, MaintainerMatchesBuildOnDeepSpine) {
  // A 120k-deep spine: every walk in the delta/maintainer path must be
  // iterative, and ancestor-extent patching touches the whole chain.
  constexpr int kDepth = 120000;
  Tree tree;
  NodeId n = tree.AddRoot("a");
  for (int i = 1; i < kDepth; ++i) {
    n = tree.AddElement(n, kLabels[i % 3]);
  }
  const NodeId bottom = n;
  tree.AddText(bottom, "leaf");
  DocPlane plane = DocPlane::Build(tree);

  // Insert near the bottom, relabel mid-spine, then delete the insert.
  TreeDelta grow(0);
  {
    Tree scratch;
    scratch.AddRoot("d");
    scratch.AddElement(scratch.root(), "e");
    grow.AddInsert(bottom, 0, Fragment::Capture(scratch, scratch.root()));
  }
  grow.AddRelabel(kDepth / 2, "b");
  TreeDelta inverse;
  DocPlane::Maintainer maintainer(plane);
  ASSERT_TRUE(grow.ApplyTo(&tree, &maintainer, &inverse).ok());
  plane = maintainer.Take(tree);
  ASSERT_TRUE(plane.SameAs(DocPlane::Build(tree)));

  DocPlane::Maintainer undo(plane);
  ASSERT_TRUE(inverse.ApplyTo(&tree, &undo).ok());
  plane = undo.Take(tree);
  ASSERT_TRUE(plane.SameAs(DocPlane::Build(tree)));
  EXPECT_EQ(plane.size(), kDepth);
}

}  // namespace
}  // namespace smoqe::xml
