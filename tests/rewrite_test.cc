// Algorithm rewrite (Section 5): the rewritten MFA on the source must agree
// with the query on the materialized view, including the paper's Examples
// 1.1/3.1 and the security property that motivated the whole construction.

#include <gtest/gtest.h>

#include "automata/conceptual_eval.h"
#include "automata/mfa.h"
#include "eval/naive_evaluator.h"
#include "gen/fixtures.h"
#include "gen/hospital_generator.h"
#include "hype/hype.h"
#include "rewrite/rewriter.h"
#include "view/materializer.h"
#include "view/view_parser.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace smoqe::rewrite {
namespace {

using NodeVec = std::vector<xml::NodeId>;

// Oracle: evaluate on the materialized view, map through provenance.
NodeVec ViewAnswer(const view::ViewDef& def, const xml::Tree& source,
                   std::string_view query) {
  auto mat = view::Materialize(def, source);
  EXPECT_TRUE(mat.ok()) << mat.status().ToString();
  auto q = xpath::ParseQuery(query);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  eval::NodeSet on_view =
      eval::NaiveEvaluator(mat.value().tree).Eval(q.value(), mat.value().tree.root());
  return view::MapToSource(mat.value(), on_view);
}

// System under test: rewrite to MFA, evaluate on the source with HyPE.
NodeVec RewrittenAnswer(const view::ViewDef& def, const xml::Tree& source,
                        std::string_view query) {
  auto q = xpath::ParseQuery(query);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto mfa = RewriteToMfa(q.value(), def);
  EXPECT_TRUE(mfa.ok()) << mfa.status().ToString();
  EXPECT_TRUE(automata::CheckWellFormed(mfa.value()).empty());
  hype::HypeEvaluator eval(source, mfa.value());
  return eval.Eval(source.root());
}

xml::Tree Hospital(int patients, uint64_t seed, double heart = 0.3) {
  gen::HospitalParams params;
  params.patients = patients;
  params.seed = seed;
  params.heart_disease_prob = heart;
  return gen::GenerateHospital(params);
}

class HospitalRewriteTest : public ::testing::TestWithParam<const char*> {};

TEST_P(HospitalRewriteTest, AgreesWithMaterializedView) {
  view::ViewDef def = gen::HospitalView();
  xml::Tree source = Hospital(25, 17);
  EXPECT_EQ(RewrittenAnswer(def, source, GetParam()),
            ViewAnswer(def, source, GetParam()))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    ViewQueries, HospitalRewriteTest,
    ::testing::Values(
        // plain navigation
        "patient", "patient/record", "patient/parent/patient",
        "patient/record/diagnosis", ".", "*", "*/*",
        // wildcards and unions
        "patient/(parent | record)", "patient/*",
        "patient/parent/patient/record | patient/record",
        // descendant axis over the recursive view
        "//record", "//diagnosis", "//patient", "patient//record",
        // Kleene stars following the view recursion
        "(patient/parent)*/patient",
        "patient/(parent/patient)*/record",
        "(patient | parent)*",
        // filters
        "patient[record]", "patient[parent]",
        "patient[record/diagnosis/text() = 'heart disease']",
        "patient[not(parent)]",
        "patient[parent/patient/record/empty]",
        "patient[record/diagnosis/text() = 'heart disease' and parent]",
        "patient[record/diagnosis/text() = 'heart disease' or parent]",
        // filters with stars inside
        "patient[(parent/patient)*/record/diagnosis/text() = 'heart disease']",
        // nested filters
        "patient[parent/patient[record/diagnosis]]",
        // text test on a non-str type never matches
        "patient[record/text() = 'x']",
        // the paper's Examples 1.1 and 4.1
        "patient[*//record/diagnosis/text() = 'heart disease']",
        "(patient/parent)*/patient[(parent/patient)*/record/diagnosis["
        "text() = 'heart disease']]"));

TEST(RewriteTest, SeedsAndSizesSweep) {
  view::ViewDef def = gen::HospitalView();
  const char* query = gen::kQueryExample11;
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    for (int patients : {5, 20, 60}) {
      xml::Tree source = Hospital(patients, seed);
      EXPECT_EQ(RewrittenAnswer(def, source, query),
                ViewAnswer(def, source, query))
          << "seed " << seed << " patients " << patients;
    }
  }
}

TEST(RewriteTest, Example31HandRewritingAgrees) {
  // The paper's hand-computed Q' (Example 3.1) evaluated directly on the
  // source must match our automaton rewriting of Q (Example 1.1).
  view::ViewDef def = gen::HospitalView();
  xml::Tree source = Hospital(40, 23);
  auto hand = xpath::ParseQuery(gen::kQueryExample31Rewritten);
  ASSERT_TRUE(hand.ok());
  eval::NodeSet by_hand =
      eval::NaiveEvaluator(source).Eval(hand.value(), source.root());
  EXPECT_EQ(RewrittenAnswer(def, source, gen::kQueryExample11), by_hand);
}

TEST(RewriteTest, SecurityNoSiblingLeak) {
  // Example 1.1's concern: a naive '//'-preserving translation would reach
  // sibling data. The MFA rewriting must never return nodes under <sibling>.
  view::ViewDef def = gen::HospitalView();
  gen::HospitalParams params;
  params.patients = 40;
  params.sibling_prob = 0.9;  // lots of siblings to leak
  params.heart_disease_prob = 0.5;
  params.seed = 99;
  xml::Tree source = gen::GenerateHospital(params);
  NodeVec answers =
      RewrittenAnswer(def, source, "patient[*//record/diagnosis]//diagnosis");
  for (xml::NodeId n : answers) {
    for (xml::NodeId a = n; a != xml::kNullNode; a = source.parent(a)) {
      ASSERT_NE(source.label_name(a), "sibling") << "sibling data leaked";
    }
  }
  // And the incorrect translation (keep '//' on the source) DOES leak,
  // demonstrating Theorem 3.1's point.
  auto naive_translation = xpath::ParseQuery(
      "department/patient[visit/treatment/medication/diagnosis/text() = "
      "'heart disease']//diagnosis");
  ASSERT_TRUE(naive_translation.ok());
  eval::NodeSet leaked = eval::NaiveEvaluator(source).Eval(
      naive_translation.value(), source.root());
  bool touches_sibling = false;
  for (xml::NodeId n : leaked) {
    for (xml::NodeId a = n; a != xml::kNullNode; a = source.parent(a)) {
      if (source.label_name(a) == "sibling") touches_sibling = true;
    }
  }
  EXPECT_TRUE(touches_sibling)
      << "expected the naive translation to leak (seed-dependent; grow the "
         "document if this fires)";
}

TEST(RewriteTest, RewrittenMfaKeepsSplitProperty) {
  view::ViewDef def = gen::HospitalView();
  for (const char* q :
       {gen::kQueryExample11, gen::kQueryExample41, "//record",
        "patient[not((parent/patient)*/record)]"}) {
    auto query = xpath::ParseQuery(q);
    ASSERT_TRUE(query.ok());
    auto mfa = RewriteToMfa(query.value(), def);
    ASSERT_TRUE(mfa.ok()) << mfa.status().ToString();
    EXPECT_TRUE(automata::HasSplitProperty(mfa.value())) << q;
  }
}

TEST(RewriteTest, Theorem51SizeBound) {
  // MFA size grows linearly in |Q| (times |σ||D_V|, constants here).
  view::ViewDef def = gen::HospitalView();
  int64_t budget = def.SizeMeasure() * def.view_dtd().SizeMeasure();
  std::string q = "patient";
  auto base = RewriteToMfa(xpath::ParseQuery(q).value(), def);
  ASSERT_TRUE(base.ok());
  int64_t prev = base.value().SizeMeasure();
  for (int i = 0; i < 6; ++i) {
    q = "patient/parent/" + q;
    auto mfa = RewriteToMfa(xpath::ParseQuery(q).value(), def);
    ASSERT_TRUE(mfa.ok());
    int64_t size = mfa.value().SizeMeasure();
    EXPECT_LE(size - prev, 4 * budget) << "growth per step must stay bounded";
    prev = size;
  }
}

TEST(RewriteTest, PositionInViewQueryRejected) {
  view::ViewDef def = gen::HospitalView();
  auto q = xpath::ParseQuery("patient[position() = 1]");
  ASSERT_TRUE(q.ok());
  auto mfa = RewriteToMfa(q.value(), def);
  ASSERT_FALSE(mfa.ok());
  EXPECT_EQ(mfa.status().code(), StatusCode::kUnimplemented);
}

TEST(RewriteTest, LabelAbsentFromViewSelectsNothing) {
  view::ViewDef def = gen::HospitalView();
  xml::Tree source = Hospital(10, 7);
  EXPECT_TRUE(RewrittenAnswer(def, source, "department").empty());
  EXPECT_TRUE(RewrittenAnswer(def, source, "patient/sibling").empty());
}

TEST(RewriteTest, NonRecursiveViewToo) {
  // A flat projection view over a non-recursive source.
  const char* spec = R"(
view flat {
  source dtd lib { lib -> book* ; book -> title, year ; title -> #text ;
                   year -> #text ; }
  view dtd catalog { catalog -> entry* ; entry -> title ; title -> #text ; }
  sigma { catalog.entry = "book[year/text() = '2007']" ;
          entry.title = "title" ; }
}
)";
  auto def = view::ParseView(spec);
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  auto source = xml::ParseXml(
      "<lib><book><title>a</title><year>2007</year></book>"
      "<book><title>b</title><year>2004</year></book>"
      "<book><title>c</title><year>2007</year></book></lib>");
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(RewrittenAnswer(def.value(), source.value(), "entry").size(), 2u);
  EXPECT_EQ(RewrittenAnswer(def.value(), source.value(),
                            "entry/title[text() = 'a']")
                .size(),
            1u);
  EXPECT_EQ(RewrittenAnswer(def.value(), source.value(), "entry/title"),
            ViewAnswer(def.value(), source.value(), "entry/title"));
}

TEST(RewriteTest, ConceptualEvaluatorAgreesOnRewrittenMfa) {
  view::ViewDef def = gen::HospitalView();
  xml::Tree source = Hospital(15, 31);
  auto q = xpath::ParseQuery(gen::kQueryExample41);
  ASSERT_TRUE(q.ok());
  auto mfa = RewriteToMfa(q.value(), def);
  ASSERT_TRUE(mfa.ok());
  automata::ConceptualEvaluator conceptual(source, mfa.value());
  hype::HypeEvaluator hype(source, mfa.value());
  EXPECT_EQ(conceptual.Eval(source.root()), hype.Eval(source.root()));
}

}  // namespace
}  // namespace smoqe::rewrite
