// Authorization-conformance suite (the `authz` CTest label): the paper's
// Q(sigma(T)) = Q'(T) property, quantified over ROLES.
//
// For randomized (tree, policy, query) draws -- random role DAGs with
// allow/deny/conditional annotations over a recursive DTD, random documents
// conforming to it, random Xreg queries -- every answer produced for a role
// R through the serving path (QueryService with a RoleCatalog, i.e. the
// (role, query)-keyed MFA rewriting evaluated over the SOURCE) must be
//
//   * bit-identical to the naive evaluate-on-materialized-view oracle:
//     NaiveEvaluator(Q) on view::Materialize(sigma_R(T)), mapped to source
//     node ids through the materialization binding; and
//   * contained in sigma_R(T): every answered node is one the role's
//     materialized view exposes.
//
// A role whose root is denied answers the empty node set for every
// well-formed query (and a parse error for garbage) -- never an error.
//
// The suite ends with a concurrent registration/eviction stress (the TSan
// target of the `authz` label): many client threads submitting role-scoped
// queries against a catalog whose capacity forces continuous partition
// eviction underneath warm evaluators.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "dtd/dtd_parser.h"
#include "eval/naive_evaluator.h"
#include "exec/query_service.h"
#include "gen/generic_generator.h"
#include "gen/query_generator.h"
#include "policy/policy.h"
#include "policy/role_catalog.h"
#include "policy/role_compiler.h"
#include "view/materializer.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace smoqe {
namespace {

using policy::AccessKind;
using policy::Annotation;
using policy::Policy;
using policy::RoleId;

dtd::Dtd TestDtd() {
  auto d = dtd::ParseDtd(
      "dtd r { r -> a*, b* ; a -> t, a*, b* ; b -> t, c* ; c -> a* ; "
      "t -> #text ; }");
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  return d.take();
}

// A random policy over the DTD: 4-6 roles, each extending a random subset of
// the earlier ones, each annotating a random subset of the DTD's edges with
// deny / conditional-allow / explicit allow. Deterministic per seed. All
// model operations are infallible by construction (edges come from
// ChildTypes, each visited once); EXPECTs catch regressions anyway.
Policy RandomPolicy(uint64_t seed) {
  Policy p(TestDtd());
  std::mt19937_64 rng(seed);
  const dtd::Dtd& d = p.source_dtd();
  const std::vector<const char*> conds = {"t", "not(c)", "a", "b",
                                          "t[text() = 'alpha']"};
  auto annotate = [&](RoleId role, dtd::TypeId a, dtd::TypeId b,
                      Annotation ann) {
    Status st =
        p.Annotate(role, d.type_name(a), d.type_name(b), std::move(ann));
    EXPECT_TRUE(st.ok()) << st.ToString();
  };
  const int num_roles = 4 + static_cast<int>(rng() % 3);
  for (int r = 0; r < num_roles; ++r) {
    std::vector<std::string> parents;
    for (int q = 0; q < r; ++q) {
      if (rng() % 3 == 0) parents.push_back("role" + std::to_string(q));
    }
    RoleId role = p.AddRole("role" + std::to_string(r), parents).take();
    for (dtd::TypeId a = 0; a < d.num_types(); ++a) {
      for (dtd::TypeId b : d.ChildTypes(a)) {
        switch (rng() % 8) {
          case 0:
            annotate(role, a, b, Annotation::Deny());
            break;
          case 1:
          case 2:
            annotate(role, a, b,
                     Annotation::If(conds[rng() % conds.size()]).take());
            break;
          case 3:
            annotate(role, a, b, Annotation::Allow());
            break;
          default:
            break;  // unannotated: resolves through inheritance
        }
      }
    }
    // An occasional hidden-root role keeps the empty-view serving path hot.
    if (rng() % 8 == 0) {
      EXPECT_TRUE(p.AnnotateRoot(role, Annotation::Deny()).ok());
    }
  }
  return p;
}

class AuthzConformanceTest : public ::testing::TestWithParam<int> {};

// The headline property. Each round draws one policy and one document and
// submits 12 random queries per role through a role-scoped QueryService --
// >= 200 (tree, policy, query) draws across the 6 rounds at 4+ roles each.
// All roles' queries go through ONE service (futures first, answers after),
// so admission batches mix roles and the per-role group isolation in
// ProcessBatch is what is actually under test.
TEST_P(AuthzConformanceTest, ServedAnswersMatchMaterializedViewOracle) {
  const int round = GetParam();
  Policy p = RandomPolicy(11000 + round);

  gen::GenericParams tree_params;
  tree_params.seed = 21000 + round;
  tree_params.star_max = 3;
  tree_params.soft_depth = 6;
  auto tree = gen::GenerateFromDtd(p.source_dtd(), tree_params);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const xml::Tree& source = tree.value();

  // Per-role ground truth: the materialized security view and the set of
  // source nodes it exposes (for the containment check).
  struct RoleTruth {
    bool hidden = false;
    view::MaterializedView mat;
    std::vector<char> exposed;  // by source node id
  };
  std::vector<RoleTruth> truth(p.num_roles());
  for (RoleId r = 0; r < p.num_roles(); ++r) {
    auto compiled = policy::CompileRole(p, r);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    truth[r].hidden = compiled.value().root_hidden;
    if (truth[r].hidden) continue;
    auto mat = view::Materialize(*compiled.value().view, source);
    ASSERT_TRUE(mat.ok()) << "role " << p.role_name(r) << ": "
                          << mat.status().ToString();
    truth[r].mat = mat.take();
    truth[r].exposed.assign(source.size(), 0);
    for (xml::NodeId bound : truth[r].mat.binding) {
      if (bound != xml::kNullNode) truth[r].exposed[bound] = 1;
    }
  }

  policy::RoleCatalog catalog(p, source, nullptr);
  exec::QueryServiceOptions service_options;
  service_options.catalog = &catalog;
  service_options.max_batch = 8;  // force multi-role admission batches
  exec::QueryService service(source, service_options);

  gen::QueryGenParams qparams;
  qparams.labels = {"r", "a", "b", "c", "t"};
  qparams.text_values = {"alpha", "beta"};
  qparams.allow_position = false;  // untranslatable through views
  qparams.max_depth = 3;
  std::mt19937_64 rng(31000 + round);

  struct Submitted {
    RoleId role;
    std::string text;
    std::future<exec::QueryService::Answer> answer;
  };
  std::vector<Submitted> submitted;
  for (RoleId r = 0; r < p.num_roles(); ++r) {
    for (int q = 0; q < 12; ++q) {
      xpath::PathPtr query = gen::RandomQuery(qparams, &rng);
      Submitted s;
      s.role = r;
      s.text = xpath::ToString(query);
      exec::SubmitOptions submit;
      submit.role = r;
      s.answer = service.Submit(s.text, submit);
      submitted.push_back(std::move(s));
    }
  }

  for (Submitted& s : submitted) {
    SCOPED_TRACE("role " + p.role_name(s.role) + " query " + s.text);
    exec::QueryService::Answer answer = s.answer.get();
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    RoleTruth& rt = truth[s.role];
    if (rt.hidden) {
      EXPECT_TRUE(answer.value().empty());
      continue;
    }
    // Oracle: evaluate on the role's materialized view, map to source ids.
    auto query = xpath::ParseQuery(s.text);
    ASSERT_TRUE(query.ok());
    eval::NaiveEvaluator on_view(rt.mat.tree);
    std::vector<xml::NodeId> oracle = view::MapToSource(
        rt.mat, on_view.Eval(query.value(), rt.mat.tree.root()));
    EXPECT_EQ(answer.value(), oracle);
    // Containment: nothing outside sigma_R(T) is ever answered.
    for (xml::NodeId n : answer.value()) {
      ASSERT_GE(n, 0);
      ASSERT_LT(n, source.size());
      EXPECT_TRUE(rt.exposed[n]) << "node " << n << " leaked past the view";
    }
  }

  exec::QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.role_queries, static_cast<int64_t>(submitted.size()));
  EXPECT_GT(stats.role_groups + stats.role_denied_empty, 0);
}

INSTANTIATE_TEST_SUITE_P(Rounds, AuthzConformanceTest, ::testing::Range(0, 6));

TEST(AuthzHiddenRootTest, EmptyAnswersNotErrors) {
  Policy p(TestDtd());
  RoleId shut = p.AddRole("shut").take();
  ASSERT_TRUE(p.AnnotateRoot(shut, Annotation::Deny()).ok());

  gen::GenericParams params;
  params.seed = 5;
  auto tree = gen::GenerateFromDtd(p.source_dtd(), params);
  ASSERT_TRUE(tree.ok());

  policy::RoleCatalog catalog(p, tree.value(), nullptr);
  exec::QueryServiceOptions options;
  options.catalog = &catalog;
  exec::QueryService service(tree.value(), options);

  exec::SubmitOptions submit;
  submit.role = shut;
  auto ok = service.Submit("a//b[t]", submit).get();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();  // empty view, not an error
  EXPECT_TRUE(ok.value().empty());
  // Garbage is still a parse error, even behind a hidden root.
  EXPECT_FALSE(service.Submit("a[[", submit).get().ok());
  EXPECT_EQ(service.stats().role_denied_empty, 1);

  // A role-scoped Submit on a catalog-less service is rejected cleanly.
  exec::QueryService plain(tree.value());
  EXPECT_FALSE(plain.Submit("a", submit).get().ok());
}

// Concurrent role registration + eviction stress: 10 roles, a catalog that
// holds at most 3 partitions, and 8 client threads hammering role-scoped
// queries. Every answer must still match the per-role oracle computed up
// front -- eviction may cost recompiles, never answers -- and the catalog's
// counters must show the capacity actually forced evictions.
TEST(AuthzStressTest, ConcurrentAcquireEvictionKeepsAnswersRight) {
  Policy p(TestDtd());
  std::mt19937_64 rng(77);
  for (int r = 0; r < 10; ++r) {
    ASSERT_TRUE(p.AddRole("role" + std::to_string(r)).ok());
    RoleId role = static_cast<RoleId>(r);
    const dtd::Dtd& d = p.source_dtd();
    for (dtd::TypeId a = 0; a < d.num_types(); ++a) {
      for (dtd::TypeId b : d.ChildTypes(a)) {
        if (rng() % 4 == 0) {
          ASSERT_TRUE(p.Annotate(role, d.type_name(a), d.type_name(b),
                                 Annotation::Deny())
                          .ok());
        }
      }
    }
  }

  gen::GenericParams params;
  params.seed = 99;
  params.star_max = 3;
  auto tree = gen::GenerateFromDtd(p.source_dtd(), params);
  ASSERT_TRUE(tree.ok());
  const xml::Tree& source = tree.value();

  const std::vector<std::string> queries = {"a//b", "r/a[t]/b", "(a)*/t",
                                            "b/c//a"};
  // Oracle per (role, query), computed single-threaded up front.
  std::vector<std::vector<std::vector<xml::NodeId>>> oracle(p.num_roles());
  for (RoleId r = 0; r < p.num_roles(); ++r) {
    auto compiled = policy::CompileRole(p, r);
    ASSERT_TRUE(compiled.ok());
    ASSERT_FALSE(compiled.value().root_hidden);
    auto mat = view::Materialize(*compiled.value().view, source);
    ASSERT_TRUE(mat.ok()) << mat.status().ToString();
    eval::NaiveEvaluator on_view(mat.value().tree);
    for (const std::string& q : queries) {
      auto query = xpath::ParseQuery(q);
      ASSERT_TRUE(query.ok());
      oracle[r].push_back(view::MapToSource(
          mat.value(), on_view.Eval(query.value(), mat.value().tree.root())));
    }
  }

  policy::RoleCatalogOptions catalog_options;
  catalog_options.role_capacity = 3;  // force churn
  policy::RoleCatalog catalog(p, source, nullptr, catalog_options);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 40;
  {
    exec::QueryServiceOptions service_options;
    service_options.catalog = &catalog;
    service_options.max_batch = 8;
    exec::QueryService service(source, service_options);

    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        std::mt19937_64 trng(1000 + t);
        for (int i = 0; i < kPerThread; ++i) {
          RoleId role = static_cast<RoleId>(trng() % 10);
          size_t q = trng() % queries.size();
          exec::SubmitOptions submit;
          submit.role = role;
          auto answer = service.Submit(queries[q], submit).get();
          if (!answer.ok() || answer.value() != oracle[role][q]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& c : clients) c.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(service.stats().role_queries, kThreads * kPerThread);

    // While the service lives, its cached evaluators PIN role partitions, so
    // residency may exceed the capacity -- in-use entries are never dropped.
    EXPECT_GT(catalog.stats().planes_evicted, 0);  // churn really happened
    EXPECT_GT(catalog.stats().compiles, 10);       // evictees recompiled
  }

  // With the service (and its evaluator pins) gone, the next acquisition's
  // eviction sweep can reclaim everything beyond the cap.
  ASSERT_TRUE(catalog.Acquire(RoleId{0}).ok());
  EXPECT_LE(catalog.stats().resident, 3);
}

}  // namespace
}  // namespace smoqe
