#include <gtest/gtest.h>

#include "dtd/dtd.h"
#include "dtd/dtd_parser.h"
#include "dtd/validator.h"
#include "gen/fixtures.h"
#include "xml/parser.h"

namespace smoqe::dtd {
namespace {

TEST(DtdParserTest, ParsesHospitalDtd) {
  auto dtd = ParseDtd(gen::kHospitalDtdText);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  const Dtd& d = dtd.value();
  EXPECT_EQ(d.type_name(d.root()), "hospital");
  EXPECT_EQ(d.num_types(), 21);
  EXPECT_TRUE(d.IsRecursive());

  TypeId patient = d.FindType("patient");
  ASSERT_NE(patient, kNoType);
  const Production& p = d.production(patient);
  EXPECT_EQ(p.kind, ContentKind::kSequence);
  ASSERT_EQ(p.children.size(), 5u);
  EXPECT_FALSE(p.children[0].starred);  // pname
  EXPECT_TRUE(p.children[2].starred);   // visit*

  TypeId treatment = d.FindType("treatment");
  EXPECT_EQ(d.production(treatment).kind, ContentKind::kChoice);
}

TEST(DtdParserTest, ViewDtdIsRecursive) {
  auto dtd = ParseDtd(gen::kHospitalViewDtdText);
  ASSERT_TRUE(dtd.ok());
  EXPECT_TRUE(dtd.value().IsRecursive());
  EXPECT_EQ(dtd.value().num_types(), 6);
}

TEST(DtdParserTest, NonRecursiveDtd) {
  auto dtd = ParseDtd("dtd a { a -> b* ; b -> #text ; }");
  ASSERT_TRUE(dtd.ok());
  EXPECT_FALSE(dtd.value().IsRecursive());
}

TEST(DtdParserTest, TextEmptyAndChoice) {
  auto dtd = ParseDtd(
      "dtd r { r -> x, y ; x -> a + b* ; a -> #text ; b -> #empty ; "
      "y -> #empty ; }");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  const Dtd& d = dtd.value();
  EXPECT_EQ(d.production(d.FindType("a")).kind, ContentKind::kText);
  EXPECT_EQ(d.production(d.FindType("b")).kind, ContentKind::kEmpty);
  EXPECT_TRUE(d.production(d.FindType("x")).children[1].starred);
}

TEST(DtdParserTest, MissingProductionIsError) {
  auto dtd = ParseDtd("dtd a { a -> b ; }");
  ASSERT_FALSE(dtd.ok());
  EXPECT_NE(dtd.status().message().find("no production"), std::string::npos);
}

TEST(DtdParserTest, DuplicateProductionIsError) {
  auto dtd = ParseDtd("dtd a { a -> #text ; a -> #empty ; }");
  ASSERT_FALSE(dtd.ok());
}

TEST(DtdParserTest, MixedOperatorsAreError) {
  auto dtd = ParseDtd("dtd a { a -> b, c + d ; b -> #text ; c -> #text ; d -> #text ; }");
  ASSERT_FALSE(dtd.ok());
}

TEST(DtdParserTest, SingleBranchChoiceIsSequence) {
  // "a -> b" parses as a one-element sequence, not a disjunction.
  auto dtd = ParseDtd("dtd a { a -> b ; b -> #text ; }");
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd.value().production(dtd.value().root()).kind,
            ContentKind::kSequence);
}

TEST(DtdParserTest, CommentsAllowed) {
  auto dtd = ParseDtd("dtd a { // root\n a -> #text ; // done\n }");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
}

TEST(DtdGraphTest, ChildTypesAndEdges) {
  Dtd d = gen::HospitalDtd();
  TypeId patient = d.FindType("patient");
  TypeId parent = d.FindType("parent");
  EXPECT_TRUE(d.HasEdge(patient, parent));
  EXPECT_TRUE(d.HasEdge(parent, patient));  // the recursion
  EXPECT_FALSE(d.HasEdge(d.FindType("doctor"), patient));
  EXPECT_EQ(d.ChildTypes(patient).size(), 5u);
}

TEST(DtdGraphTest, DescendantTypes) {
  Dtd d = gen::HospitalDtd();
  auto reach = d.DescendantTypes();
  TypeId hospital = d.root();
  TypeId diagnosis = d.FindType("diagnosis");
  TypeId patient = d.FindType("patient");
  EXPECT_TRUE(reach[hospital][diagnosis]);
  EXPECT_TRUE(reach[patient][patient]);  // recursive type reaches itself
  EXPECT_FALSE(reach[diagnosis][hospital]);
}

TEST(DtdGraphTest, SizeMeasurePositive) {
  Dtd d = gen::HospitalDtd();
  EXPECT_GT(d.SizeMeasure(), d.num_types());
}

TEST(ValidatorTest, AcceptsConformingDocument) {
  Dtd d = gen::HospitalDtd();
  auto t = xml::ParseXml(
      "<hospital><department><name>cardio</name>"
      "<address><street>1 Way</street><city>E</city><zip>1</zip></address>"
      "<patient><pname>p</pname>"
      "<address><street>2 Way</street><city>E</city><zip>2</zip></address>"
      "<visit><date>2006-01-01</date><treatment><medication><type>m</type>"
      "<diagnosis>heart disease</diagnosis></medication></treatment>"
      "<doctor><dname>d</dname><specialty>cardiology</specialty></doctor>"
      "</visit></patient></department></hospital>");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_TRUE(ValidateDocument(d, t.value()).ok())
      << ValidateDocument(d, t.value()).ToString();
}

TEST(ValidatorTest, WrongRootRejected) {
  Dtd d = gen::HospitalDtd();
  auto t = xml::ParseXml("<patient/>");
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(ValidateDocument(d, t.value()).ok());
}

TEST(ValidatorTest, MissingRequiredChildRejected) {
  Dtd d = gen::HospitalDtd();
  // department lacks name and address.
  auto t = xml::ParseXml("<hospital><department/></hospital>");
  ASSERT_TRUE(t.ok());
  Status s = ValidateDocument(d, t.value());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("expected child"), std::string::npos);
}

TEST(ValidatorTest, SequenceOrderEnforced) {
  auto dtd = ParseDtd("dtd r { r -> a, b ; a -> #empty ; b -> #empty ; }");
  ASSERT_TRUE(dtd.ok());
  auto good = xml::ParseXml("<r><a/><b/></r>");
  auto bad = xml::ParseXml("<r><b/><a/></r>");
  EXPECT_TRUE(ValidateDocument(dtd.value(), good.value()).ok());
  EXPECT_FALSE(ValidateDocument(dtd.value(), bad.value()).ok());
}

TEST(ValidatorTest, ChoiceExactlyOneBranch) {
  auto dtd = ParseDtd("dtd r { r -> a + b ; a -> #empty ; b -> #empty ; }");
  ASSERT_TRUE(dtd.ok());
  EXPECT_TRUE(ValidateDocument(dtd.value(),
                               xml::ParseXml("<r><a/></r>").value()).ok());
  EXPECT_TRUE(ValidateDocument(dtd.value(),
                               xml::ParseXml("<r><b/></r>").value()).ok());
  EXPECT_FALSE(ValidateDocument(dtd.value(),
                                xml::ParseXml("<r><a/><b/></r>").value()).ok());
  EXPECT_FALSE(ValidateDocument(dtd.value(),
                                xml::ParseXml("<r/>").value()).ok());
}

TEST(ValidatorTest, StarredChoiceAllowsEmpty) {
  auto dtd = ParseDtd("dtd r { r -> a* + b ; a -> #empty ; b -> #empty ; }");
  ASSERT_TRUE(dtd.ok());
  EXPECT_TRUE(ValidateDocument(dtd.value(),
                               xml::ParseXml("<r/>").value()).ok());
  EXPECT_TRUE(ValidateDocument(dtd.value(),
                               xml::ParseXml("<r><a/><a/></r>").value()).ok());
}

TEST(ValidatorTest, TextElementRejectsElementChildren) {
  auto dtd = ParseDtd("dtd r { r -> a ; a -> #text ; }");
  ASSERT_TRUE(dtd.ok());
  EXPECT_FALSE(
      ValidateDocument(dtd.value(), xml::ParseXml("<r><a><r/></a></r>").value())
          .ok());
}

TEST(ValidatorTest, EmptyElementRejectsAnyContent) {
  auto dtd = ParseDtd("dtd r { r -> a ; a -> #empty ; }");
  ASSERT_TRUE(dtd.ok());
  EXPECT_FALSE(
      ValidateDocument(dtd.value(), xml::ParseXml("<r><a>x</a></r>").value())
          .ok());
}

TEST(ValidatorTest, UndeclaredLabelRejected) {
  auto dtd = ParseDtd("dtd r { r -> a* ; a -> #empty ; }");
  ASSERT_TRUE(dtd.ok());
  EXPECT_FALSE(
      ValidateDocument(dtd.value(), xml::ParseXml("<r><z/></r>").value()).ok());
}

TEST(ValidatorTest, Fig4TreeConformsToViewDtd) {
  gen::Fig4Tree fig = gen::MakeFig4Tree();
  Status s = ValidateDocument(gen::HospitalViewDtd(), fig.tree);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

}  // namespace
}  // namespace smoqe::dtd
