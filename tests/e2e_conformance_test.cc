// End-to-end conformance suite driven by on-disk fixtures (tests/testdata/):
// the hospital DTD, the research-institute view spec, a handcrafted source
// document, and query/golden-answer cases.
//
// For every case the suite checks the paper's central property
//     Q(sigma(T)) = Q'(T)
// three ways, plus a golden pin:
//   oracle  = NaiveEvaluator(Q) on the materialized view, mapped to source
//   hype    = HypeEvaluator on the source with the MFA rewriting Q'
//   direct  = NaiveEvaluator on the source with the explicit Xreg rewriting
//   golden  = canonical source-node paths recorded in conformance_cases.txt
//
// Set SMOQE_REGEN_GOLDEN=1 to print the cases file with regenerated `expect`
// lines (from the oracle) instead of asserting.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dtd/dtd_parser.h"
#include "dtd/validator.h"
#include "eval/naive_evaluator.h"
#include "hype/hype.h"
#include "rewrite/direct_rewriter.h"
#include "rewrite/rewriter.h"
#include "view/materializer.h"
#include "view/view_parser.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace smoqe {
namespace {

std::string ReadFile(const std::string& name) {
  std::ifstream in(std::string(SMOQE_TESTDATA_DIR) + "/" + name);
  EXPECT_TRUE(in.is_open()) << "missing testdata file: " << name;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// `/label[k]` per step, k = 1-based position among same-label element
// siblings; text nodes end in `/text()`. Stable under fixture edits that do
// not reorder siblings, and human-checkable against hospital.xml.
std::string CanonicalPath(const xml::Tree& t, xml::NodeId node) {
  std::string path;
  while (node != xml::kNullNode) {
    if (!t.is_element(node)) {
      path.insert(0, "/text()");
      node = t.parent(node);
      continue;
    }
    int ordinal = 1;
    if (t.parent(node) != xml::kNullNode) {
      for (xml::NodeId s = t.first_child(t.parent(node)); s != node;
           s = t.next_sibling(s)) {
        if (t.is_element(s) && t.label(s) == t.label(node)) ++ordinal;
      }
    }
    path.insert(0, "/" + t.label_name(node) + "[" + std::to_string(ordinal) + "]");
    node = t.parent(node);
  }
  return path;
}

std::vector<std::string> CanonicalPaths(const xml::Tree& t,
                                        const std::vector<xml::NodeId>& nodes) {
  std::vector<std::string> out;
  out.reserve(nodes.size());
  for (xml::NodeId n : nodes) out.push_back(CanonicalPath(t, n));
  return out;
}

struct Case {
  std::string name;
  std::string query;
  std::vector<std::string> expect;  // canonical source paths, document order
};

// Cases file: `case <name>` / `query <text>` / `expect <path>`* / `end`,
// with `#` comments and blank lines in between.
std::vector<Case> ParseCases(const std::string& text) {
  std::vector<Case> cases;
  std::istringstream in(text);
  std::string line;
  Case current;
  bool open = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto word_end = line.find(' ');
    std::string word = line.substr(0, word_end);
    std::string rest =
        word_end == std::string::npos ? "" : line.substr(word_end + 1);
    if (word == "case") {
      EXPECT_FALSE(open) << "unterminated case before " << rest;
      current = Case{};
      current.name = rest;
      open = true;
    } else if (word == "query") {
      EXPECT_TRUE(open) << "query outside a case block";
      current.query = rest;
    } else if (word == "expect") {
      EXPECT_TRUE(open) << "expect outside a case block: " << rest;
      current.expect.push_back(rest);
    } else if (word == "end") {
      EXPECT_TRUE(open && !current.query.empty()) << "bad case block";
      cases.push_back(current);
      open = false;
    } else {
      ADD_FAILURE() << "unknown cases-file directive: " << word;
    }
  }
  EXPECT_FALSE(open) << "unterminated final case";
  return cases;
}

// Everything the suite needs, loaded once from testdata.
class ConformanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new Fixture();
    auto doc = xml::ParseXml(ReadFile("hospital.xml"));
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    fixture_->source = doc.take();
    auto dtd = dtd::ParseDtd(ReadFile("hospital.dtd"));
    ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
    fixture_->dtd = dtd.take();
    auto def = view::ParseView(ReadFile("research_view.spec"));
    ASSERT_TRUE(def.ok()) << def.status().ToString();
    fixture_->view = new view::ViewDef(def.take());
    auto mat = view::Materialize(*fixture_->view, fixture_->source);
    ASSERT_TRUE(mat.ok()) << mat.status().ToString();
    fixture_->mat = mat.take();
    fixture_->cases = ParseCases(ReadFile("conformance_cases.txt"));
  }
  void SetUp() override {
    // A fatal failure in SetUpTestSuite leaves the fixture half-built; fail
    // each test cleanly instead of dereferencing nullptr.
    ASSERT_NE(fixture_, nullptr) << "testdata fixtures failed to load";
    ASSERT_NE(fixture_->view, nullptr) << "testdata fixtures failed to load";
  }

  static void TearDownTestSuite() {
    delete fixture_->view;
    delete fixture_;
    fixture_ = nullptr;
  }

  struct Fixture {
    xml::Tree source;
    dtd::Dtd dtd;
    view::ViewDef* view = nullptr;  // ViewDef has no default constructor
    view::MaterializedView mat;
    std::vector<Case> cases;
  };
  static Fixture* fixture_;
};

ConformanceTest::Fixture* ConformanceTest::fixture_ = nullptr;

TEST_F(ConformanceTest, SourceDocumentValidatesAgainstDtd) {
  Status st = dtd::ValidateDocument(fixture_->dtd, fixture_->source);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(ConformanceTest, ViewSpecEmbedsTheSameSourceDtd) {
  // The spec embeds its own copy of the source DTD; both must accept the
  // fixture document, so the two files cannot drift apart silently.
  Status st =
      dtd::ValidateDocument(fixture_->view->source_dtd(), fixture_->source);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(fixture_->view->Validate().ok());
}

TEST_F(ConformanceTest, MaterializedViewValidatesAgainstViewDtd) {
  Status st =
      dtd::ValidateDocument(fixture_->view->view_dtd(), fixture_->mat.tree);
  EXPECT_TRUE(st.ok()) << st.ToString();
  // Provenance: every element of the view is a copy of a source element.
  const xml::Tree& vt = fixture_->mat.tree;
  ASSERT_EQ(static_cast<int32_t>(fixture_->mat.binding.size()), vt.size());
  for (xml::NodeId n = 0; n < vt.size(); ++n) {
    if (!vt.is_element(n)) continue;
    xml::NodeId s = fixture_->mat.binding[n];
    ASSERT_NE(s, xml::kNullNode) << CanonicalPath(vt, n);
    EXPECT_TRUE(fixture_->source.is_element(s));
  }
}

TEST_F(ConformanceTest, ViewRoundTripsThroughWriter) {
  // The materialized view (which contains #empty elements) survives
  // serialize -> re-parse, `record/empty` text-less elements included.
  auto reparsed = xml::ParseXml(xml::WriteXml(fixture_->mat.tree));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().size(), fixture_->mat.tree.size());
  EXPECT_EQ(xml::WriteXml(reparsed.value()), xml::WriteXml(fixture_->mat.tree));
}

TEST_F(ConformanceTest, PositionQueriesAreRejectedByRewriting) {
  // position() on the view has no source-stable meaning (view positions do
  // not correspond to source positions); the rewriter must say so cleanly
  // rather than produce wrong answers.
  auto query = xpath::ParseQuery("patient[position() = 1]");
  ASSERT_TRUE(query.ok());
  auto mfa = rewrite::RewriteToMfa(query.value(), *fixture_->view);
  EXPECT_FALSE(mfa.ok());
  auto direct = rewrite::DirectRewrite(query.value(), *fixture_->view);
  EXPECT_FALSE(direct.ok());
}

TEST_F(ConformanceTest, RewrittenAnswersMatchViewAnswersAndGoldens) {
  ASSERT_FALSE(fixture_->cases.empty());
  const bool regen = std::getenv("SMOQE_REGEN_GOLDEN") != nullptr;
  const xml::Tree& source = fixture_->source;
  eval::NaiveEvaluator on_view(fixture_->mat.tree);
  eval::NaiveEvaluator on_source(source);
  for (const Case& c : fixture_->cases) {
    SCOPED_TRACE(c.name);
    auto query = xpath::ParseQuery(c.query);
    ASSERT_TRUE(query.ok()) << query.status().ToString();

    // Oracle: evaluate on the materialized view, map through provenance.
    std::vector<xml::NodeId> oracle = view::MapToSource(
        fixture_->mat, on_view.Eval(query.value(), fixture_->mat.tree.root()));

    if (regen) {
      printf("case %s\nquery %s\n", c.name.c_str(), c.query.c_str());
      for (const std::string& p : CanonicalPaths(source, oracle))
        printf("expect %s\n", p.c_str());
      printf("end\n\n");
      continue;
    }

    // The paper's property, via the MFA rewriting evaluated by HyPE.
    auto mfa = rewrite::RewriteToMfa(query.value(), *fixture_->view);
    ASSERT_TRUE(mfa.ok()) << mfa.status().ToString();
    hype::HypeEvaluator hype_eval(source, mfa.value());
    EXPECT_EQ(hype_eval.Eval(source.root()), oracle);

    // Same property via the explicit Xreg rewriting (Theorem 3.2).
    auto direct = rewrite::DirectRewrite(query.value(), *fixture_->view);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    EXPECT_EQ(on_source.Eval(direct.value(), source.root()), oracle)
        << "direct rewriting: " << xpath::ToString(direct.value());

    // Golden pin: canonical source paths recorded in the cases file.
    EXPECT_EQ(CanonicalPaths(source, oracle), c.expect);
  }
}

}  // namespace
}  // namespace smoqe
