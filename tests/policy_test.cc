// Unit suite for the policy plane (src/policy/): annotation resolution under
// role inheritance (local wins, deny-overrides, condition conjunction, the
// open default), root visibility, the policy parser, and the role compiler's
// derived views -- including the satellite edge cases: diamond inheritance
// with conflicting allow/deny, deny-overrides through diamonds, and policies
// hiding the root.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dtd/dtd_parser.h"
#include "dtd/validator.h"
#include "eval/naive_evaluator.h"
#include "gen/generic_generator.h"
#include "policy/policy.h"
#include "policy/policy_parser.h"
#include "policy/role_catalog.h"
#include "policy/role_compiler.h"
#include "view/materializer.h"
#include "xml/tree.h"
#include "xpath/printer.h"

namespace smoqe {
namespace {

using policy::AccessKind;
using policy::Annotation;
using policy::CompileRole;
using policy::ParsePolicy;
using policy::Policy;
using policy::RoleId;

dtd::Dtd TestDtd() {
  auto d = dtd::ParseDtd(
      "dtd r { r -> a*, b* ; a -> t, a*, b* ; b -> t, c* ; c -> a* ; "
      "t -> #text ; }");
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  return d.take();
}

dtd::TypeId T(const Policy& p, const char* name) {
  dtd::TypeId t = p.source_dtd().FindType(name);
  EXPECT_NE(t, dtd::kNoType) << name;
  return t;
}

// ---------------------------------------------------------------------------
// Annotation / resolution

TEST(PolicyAnnotationTest, IfParsesAndNormalizes) {
  auto ann = Annotation::If("t [ text() = 'alpha' ]");
  ASSERT_TRUE(ann.ok()) << ann.status().ToString();
  EXPECT_EQ(ann.value().kind, AccessKind::kCond);
  ASSERT_NE(ann.value().cond, nullptr);
  // Normalized spelling: whitespace canonicalized by the printer.
  EXPECT_EQ(ann.value().cond_text, "t[text() = 'alpha']");
}

TEST(PolicyAnnotationTest, IfRejectsPositionAndGarbage) {
  EXPECT_FALSE(Annotation::If("position() = 1").ok());
  EXPECT_FALSE(Annotation::If("t[").ok());
}

TEST(PolicyResolutionTest, LocalAnnotationWinsOverParents) {
  Policy p(TestDtd());
  RoleId base = p.AddRole("base").take();
  ASSERT_TRUE(p.Annotate(base, "a", "b", Annotation::Deny()).ok());
  RoleId child = p.AddRole("child", {"base"}).take();
  ASSERT_TRUE(p.Annotate(child, "a", "b", Annotation::Allow()).ok());

  EXPECT_EQ(p.Effective(base, T(p, "a"), T(p, "b")).kind, AccessKind::kDeny);
  // The child's local allow shadows the inherited deny on that edge...
  EXPECT_EQ(p.Effective(child, T(p, "a"), T(p, "b")).kind, AccessKind::kAllow);
  // ...and an unannotated edge stays at the open default.
  EXPECT_EQ(p.Effective(child, T(p, "b"), T(p, "c")).kind, AccessKind::kAllow);
}

TEST(PolicyResolutionTest, DiamondWithConflictingAllowDenyDenies) {
  // The satellite edge case: top -> {lenient, strict} -> bottom, where
  // lenient allows (a, b) and strict denies it. Deny-overrides: bottom
  // must deny, regardless of parent declaration order.
  Policy p(TestDtd());
  ASSERT_TRUE(p.AddRole("top").ok());
  RoleId lenient = p.AddRole("lenient", {"top"}).take();
  RoleId strict = p.AddRole("strict", {"top"}).take();
  ASSERT_TRUE(p.Annotate(lenient, "a", "b", Annotation::Allow()).ok());
  ASSERT_TRUE(p.Annotate(strict, "a", "b", Annotation::Deny()).ok());

  RoleId b1 = p.AddRole("bottom1", {"lenient", "strict"}).take();
  RoleId b2 = p.AddRole("bottom2", {"strict", "lenient"}).take();
  EXPECT_EQ(p.Effective(b1, T(p, "a"), T(p, "b")).kind, AccessKind::kDeny);
  EXPECT_EQ(p.Effective(b2, T(p, "a"), T(p, "b")).kind, AccessKind::kDeny);
}

TEST(PolicyResolutionTest, InheritedConditionsConjoinAndDedup) {
  Policy p(TestDtd());
  RoleId p1 = p.AddRole("p1").take();
  RoleId p2 = p.AddRole("p2").take();
  ASSERT_TRUE(p.Annotate(p1, "a", "b", Annotation::If("t").take()).ok());
  ASSERT_TRUE(p.Annotate(p2, "a", "b", Annotation::If("not(c)").take()).ok());

  RoleId both = p.AddRole("both", {"p1", "p2"}).take();
  Annotation eff = p.Effective(both, T(p, "a"), T(p, "b"));
  EXPECT_EQ(eff.kind, AccessKind::kCond);
  EXPECT_EQ(eff.cond_text, "t and not(c)");

  // A diamond inheriting the SAME condition through two paths must not
  // square it: dedup is by normalized text.
  RoleId q1 = p.AddRole("q1", {"p1"}).take();
  RoleId q2 = p.AddRole("q2", {"p1"}).take();
  (void)q1;
  (void)q2;
  RoleId diamond = p.AddRole("diamond", {"q1", "q2"}).take();
  EXPECT_EQ(p.Effective(diamond, T(p, "a"), T(p, "b")).cond_text, "t");

  // Deny still overrides any conditions.
  RoleId p3 = p.AddRole("p3").take();
  ASSERT_TRUE(p.Annotate(p3, "a", "b", Annotation::Deny()).ok());
  RoleId mixed = p.AddRole("mixed", {"p1", "p3", "p2"}).take();
  EXPECT_EQ(p.Effective(mixed, T(p, "a"), T(p, "b")).kind, AccessKind::kDeny);
}

TEST(PolicyResolutionTest, RootVisibilityInheritsWithDenyOverrides) {
  Policy p(TestDtd());
  RoleId open = p.AddRole("open").take();
  RoleId shut = p.AddRole("shut").take();
  ASSERT_TRUE(p.AnnotateRoot(shut, Annotation::Deny()).ok());
  EXPECT_TRUE(p.RootVisible(open));
  EXPECT_FALSE(p.RootVisible(shut));

  // Any hidden parent hides the child...
  RoleId child = p.AddRole("child", {"open", "shut"}).take();
  EXPECT_FALSE(p.RootVisible(child));
  // ...unless the child pins the root locally.
  RoleId rebel = p.AddRole("rebel", {"shut"}).take();
  ASSERT_TRUE(p.AnnotateRoot(rebel, Annotation::Allow()).ok());
  EXPECT_TRUE(p.RootVisible(rebel));
}

TEST(PolicyModelTest, RejectsBadEdgesDuplicatesAndUnknownParents) {
  Policy p(TestDtd());
  RoleId r = p.AddRole("r").take();
  // (r, c) is not an edge of the source DTD.
  EXPECT_FALSE(p.Annotate(r, "r", "c", Annotation::Allow()).ok());
  EXPECT_FALSE(p.Annotate(r, "r", "nosuch", Annotation::Allow()).ok());
  ASSERT_TRUE(p.Annotate(r, "a", "b", Annotation::Allow()).ok());
  EXPECT_FALSE(p.Annotate(r, "a", "b", Annotation::Deny()).ok());
  EXPECT_FALSE(p.AddRole("r").ok());            // duplicate name
  EXPECT_FALSE(p.AddRole("s", {"ghost"}).ok());  // undeclared parent
  EXPECT_FALSE(p.AnnotateRoot(r, Annotation::If("t").take()).ok());
  EXPECT_TRUE(p.Validate().ok());
}

// ---------------------------------------------------------------------------
// Parser

constexpr char kSpec[] = R"(
  // A policy over the property-test DTD.
  policy acl {
    source dtd r { r -> a*, b* ; a -> t, a*, b* ; b -> t, c* ;
                   c -> a* ; t -> #text ; }
    role staff { }
    role research extends staff {
      deny  b.c ;
      allow a.b when "t[text() = 'alpha']" ;
    }
    role intern extends research {
      root deny ;
    }
  }
)";

TEST(PolicyParserTest, ParsesRolesInheritanceAndConditions) {
  auto parsed = ParsePolicy(kSpec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Policy& p = parsed.value();
  ASSERT_EQ(p.num_roles(), 3);

  RoleId research = p.FindRole("research");
  ASSERT_NE(research, policy::kNoRole);
  EXPECT_EQ(p.parents(research).size(), 1u);
  EXPECT_EQ(p.Effective(research, T(p, "b"), T(p, "c")).kind,
            AccessKind::kDeny);
  Annotation cond = p.Effective(research, T(p, "a"), T(p, "b"));
  EXPECT_EQ(cond.kind, AccessKind::kCond);
  EXPECT_EQ(cond.cond_text, "t[text() = 'alpha']");

  EXPECT_TRUE(p.RootVisible(p.FindRole("staff")));
  EXPECT_FALSE(p.RootVisible(p.FindRole("intern")));
}

TEST(PolicyParserTest, RejectsMalformedSpecs) {
  // deny+when is contradictory by design.
  EXPECT_FALSE(ParsePolicy("policy x { source dtd r { r -> t* ; t -> #text ; }"
                           " role r { deny r.t when \"t\" ; } }")
                   .ok());
  // Unknown edge, trailing garbage, unterminated block.
  EXPECT_FALSE(ParsePolicy("policy x { source dtd r { r -> t* ; t -> #text ; }"
                           " role r { allow t.r ; } }")
                   .ok());
  EXPECT_FALSE(ParsePolicy("policy x { source dtd r { r -> t* ; t -> #text ; }"
                           " role r { } } trailing")
                   .ok());
  EXPECT_FALSE(ParsePolicy("policy x { source dtd r { r -> t* ; t -> #text ; }"
                           " role r { ")
                   .ok());
  // No roles at all fails Validate.
  EXPECT_FALSE(
      ParsePolicy("policy x { source dtd r { r -> t* ; t -> #text ; } }").ok());
}

// ---------------------------------------------------------------------------
// Role compiler

TEST(RoleCompilerTest, HiddenRootCompilesToEmptyView) {
  auto parsed = ParsePolicy(kSpec);
  ASSERT_TRUE(parsed.ok());
  auto compiled =
      CompileRole(parsed.value(), parsed.value().FindRole("intern"));
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_TRUE(compiled.value().root_hidden);
  EXPECT_EQ(compiled.value().view, nullptr);
  EXPECT_EQ(compiled.value().visible_types, 0);
}

TEST(RoleCompilerTest, DenyPrunesTheUnreachableRegion) {
  Policy p(TestDtd());
  RoleId r = p.AddRole("r").take();
  // Denying (b, c) removes c entirely: its only in-edge is from b.
  ASSERT_TRUE(p.Annotate(r, "b", "c", Annotation::Deny()).ok());
  auto compiled = CompileRole(p, r);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const view::ViewDef& view = *compiled.value().view;
  EXPECT_EQ(compiled.value().visible_types, 4);  // r a b t
  EXPECT_EQ(view.view_dtd().FindType("c"), dtd::kNoType);
  EXPECT_NE(view.view_dtd().FindType("b"), dtd::kNoType);
  EXPECT_TRUE(view.IsRecursive());  // a -> a* survives
}

TEST(RoleCompilerTest, ChoiceLosingABranchBecomesStarredSequence) {
  auto d = dtd::ParseDtd(
      "dtd r { r -> a + b ; a -> #text ; b -> #text ; }");
  ASSERT_TRUE(d.ok());
  Policy p(d.take());
  RoleId r = p.AddRole("r").take();
  ASSERT_TRUE(p.Annotate(r, "r", "b", Annotation::Deny()).ok());
  auto compiled = CompileRole(p, r);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const dtd::Dtd& vd = compiled.value().view->view_dtd();
  const dtd::Production& prod = vd.production(vd.FindType("r"));
  // One surviving branch of a disjunction: a sequence, starred (the source
  // instance may have chosen the hidden branch, so zero `a`s must be legal).
  ASSERT_EQ(prod.kind, dtd::ContentKind::kSequence);
  ASSERT_EQ(prod.children.size(), 1u);
  EXPECT_TRUE(prod.children[0].starred);
}

TEST(RoleCompilerTest, ConditionalChildIsStarredAndAnnotated) {
  // b -> t, c* with a condition on (b, t): t is UNSTARRED in the source, but
  // the view must star it -- a b-element whose t fails the condition has
  // zero visible t-children, and that must be a legal view instance.
  Policy p(TestDtd());
  RoleId r = p.AddRole("r").take();
  ASSERT_TRUE(p.Annotate(r, "b", "t", Annotation::If("not(c)").take()).ok());
  auto compiled = CompileRole(p, r);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const view::ViewDef& view = *compiled.value().view;
  dtd::TypeId b = view.view_dtd().FindType("b");
  dtd::TypeId t = view.view_dtd().FindType("t");
  bool saw_t = false;
  for (const dtd::ChildSpec& spec : view.view_dtd().production(b).children) {
    if (spec.type == t) {
      saw_t = true;
      EXPECT_TRUE(spec.starred);
    }
  }
  EXPECT_TRUE(saw_t);
  // An unconditioned unstarred child stays unstarred: (a, t) under the same
  // role keeps the source's exactly-one shape.
  dtd::TypeId a = view.view_dtd().FindType("a");
  for (const dtd::ChildSpec& spec : view.view_dtd().production(a).children) {
    if (spec.type == t) EXPECT_FALSE(spec.starred);
  }
  // sigma(b, t) = t[not(c)]: the child step filtered by the policy
  // qualifier.
  ASSERT_NE(view.annotation(b, t), nullptr);
  EXPECT_EQ(xpath::ToString(*view.annotation(b, t)), "t[not(c)]");
}

// Materializer conformance of compiled views: for random role-restricted
// views over random documents, Materialize must succeed, the result must
// validate against the derived view DTD, and every materialized element must
// bind to a source element whose label the view knows. This is the
// satellite's Materialize-under-inheritance coverage (the full answer-level
// conformance lives in authz_test.cc).
TEST(RoleCompilerTest, CompiledViewsMaterializeAndValidate) {
  auto parsed = ParsePolicy(kSpec);
  ASSERT_TRUE(parsed.ok());
  const Policy& p = parsed.value();
  for (int round = 0; round < 10; ++round) {
    gen::GenericParams params;
    params.seed = 900 + round;
    params.star_max = 3;
    params.soft_depth = 6;
    auto tree = gen::GenerateFromDtd(p.source_dtd(), params);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    for (RoleId r = 0; r < p.num_roles(); ++r) {
      auto compiled = CompileRole(p, r);
      ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      if (compiled.value().root_hidden) continue;
      auto mat = view::Materialize(*compiled.value().view, tree.value());
      ASSERT_TRUE(mat.ok()) << "role " << p.role_name(r) << " round " << round
                            << ": " << mat.status().ToString();
      Status valid = dtd::ValidateDocument(compiled.value().view->view_dtd(),
                                           mat.value().tree);
      EXPECT_TRUE(valid.ok()) << "role " << p.role_name(r) << " round "
                              << round << ": " << valid.ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// RoleCatalog

TEST(RoleCatalogTest, CompilesOncePerRoleAndServesWarmQueries) {
  auto parsed = ParsePolicy(kSpec);
  ASSERT_TRUE(parsed.ok());
  const Policy& p = parsed.value();
  gen::GenericParams params;
  params.seed = 42;
  auto tree = gen::GenerateFromDtd(p.source_dtd(), params);
  ASSERT_TRUE(tree.ok());

  policy::RoleCatalog catalog(p, tree.value(), nullptr);
  auto staff = catalog.Acquire(std::string_view("staff"));
  ASSERT_TRUE(staff.ok()) << staff.status().ToString();
  auto again = catalog.Acquire(p.FindRole("staff"));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(staff.value().get(), again.value().get());
  EXPECT_EQ(catalog.stats().compiles, 1);
  EXPECT_EQ(catalog.stats().hits, 1);

  auto q1 = staff.value()->Compile("a//b");
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  auto q2 = staff.value()->Compile("a // b");  // same normalized text
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q1.value().mfa.get(), q2.value().mfa.get());
  EXPECT_EQ(staff.value()->cache_stats().hits, 1);

  // Distinct roles get distinct compiled queries (the (role, query) key).
  auto research = catalog.Acquire(std::string_view("research"));
  ASSERT_TRUE(research.ok());
  auto q3 = research.value()->Compile("a//b");
  ASSERT_TRUE(q3.ok());
  EXPECT_NE(q1.value().mfa.get(), q3.value().mfa.get());

  EXPECT_FALSE(catalog.Acquire(std::string_view("ghost")).ok());
  EXPECT_FALSE(catalog.Acquire(RoleId{99}).ok());
}

TEST(RoleCatalogTest, EvictsColdUnreferencedRolesBeyondCapacity) {
  Policy p(TestDtd());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(p.AddRole("role" + std::to_string(i)).ok());
  }
  gen::GenericParams params;
  params.seed = 7;
  auto tree = gen::GenerateFromDtd(p.source_dtd(), params);
  ASSERT_TRUE(tree.ok());

  policy::RoleCatalogOptions options;
  options.role_capacity = 2;
  policy::RoleCatalog catalog(p, tree.value(), nullptr, options);

  // Hold role0's partition: it must survive every eviction sweep.
  auto held = catalog.Acquire(RoleId{0});
  ASSERT_TRUE(held.ok());
  for (RoleId r = 1; r < 8; ++r) {
    ASSERT_TRUE(catalog.Acquire(r).ok());
  }
  policy::RoleCatalogStats stats = catalog.stats();
  EXPECT_EQ(stats.compiles, 8);
  EXPECT_EQ(stats.resident, 2);  // capacity holds
  EXPECT_EQ(stats.planes_evicted, 6);

  // Re-acquiring the held role is a hit (it was pinned, never evicted);
  // re-acquiring an evicted role recompiles.
  EXPECT_EQ(catalog.Acquire(RoleId{0}).value().get(), held.value().get());
  ASSERT_TRUE(catalog.Acquire(RoleId{1}).ok());
  EXPECT_EQ(catalog.stats().compiles, 9);
}

}  // namespace
}  // namespace smoqe
