// HyPE correctness: equivalence with the reference evaluator on targeted
// scenarios (filters resolved after descent, cans deletions, deep recursion),
// plus the paper's Fig. 4/7 walkthrough and pruning statistics.

#include <gtest/gtest.h>

#include "automata/compiler.h"
#include "eval/naive_evaluator.h"
#include "gen/fixtures.h"
#include "gen/hospital_generator.h"
#include "hype/hype.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace smoqe::hype {
namespace {

xml::Tree Doc(const char* text) {
  auto t = xml::ParseXml(text);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return t.take();
}

std::vector<xml::NodeId> RunHype(const xml::Tree& t, std::string_view q,
                                 xml::NodeId context = -2) {
  auto query = xpath::ParseQuery(q);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  automata::Mfa mfa = automata::CompileQuery(query.value());
  HypeEvaluator eval(t, mfa);
  return eval.Eval(context == -2 ? t.root() : context);
}

std::vector<xml::NodeId> RunNaive(const xml::Tree& t, std::string_view q,
                                  xml::NodeId context = -2) {
  auto query = xpath::ParseQuery(q);
  EXPECT_TRUE(query.ok());
  return eval::NaiveEvaluator(t).Eval(query.value(),
                                      context == -2 ? t.root() : context);
}

TEST(HypeTest, BasicSteps) {
  xml::Tree t = Doc("<r><a><x/></a><a/><b><x/></b></r>");
  for (const char* q : {".", "a", "*", "a/x", "a | b", "b/x", "missing"}) {
    EXPECT_EQ(RunHype(t, q), RunNaive(t, q)) << q;
  }
}

TEST(HypeTest, FiltersBasic) {
  xml::Tree t = Doc("<r><a><x/></a><a><y/></a><a/></r>");
  for (const char* q :
       {"a[x]", "a[y]", "a[x | y]", "a[not(x)]", "a[x or y]",
        "a[not(x) and not(y)]", "a[.]", "a[not(.)]"}) {
    EXPECT_EQ(RunHype(t, q), RunNaive(t, q)) << q;
  }
}

TEST(HypeTest, TextAndPositionPredicates) {
  xml::Tree t = Doc("<r><d>x</d><d>y</d><a><d>x</d></a></r>");
  for (const char* q :
       {"d[text() = 'x']", "d[text() = 'z']", "a[d/text() = 'x']",
        "d[position() = 2]", "*[position() = 3]", "a[position() = 3]"}) {
    EXPECT_EQ(RunHype(t, q), RunNaive(t, q)) << q;
  }
}

TEST(HypeTest, DescendantAxis) {
  xml::Tree t = Doc("<r><a><b><a><b/></a></b></a></r>");
  for (const char* q : {"//a", "//b", "//a[b]", "a//b", ".//.", "//*"}) {
    EXPECT_EQ(RunHype(t, q), RunNaive(t, q)) << q;
  }
}

TEST(HypeTest, KleeneStars) {
  xml::Tree t = Doc("<p><q><p><q><p><z/></p></q></p></q></p>");
  for (const char* q :
       {"(q/p)*", "q*", "(p | q)*", "(q/p)*/z", "((q/p)*)*", "(q/p)*[z]"}) {
    EXPECT_EQ(RunHype(t, q), RunNaive(t, q)) << q;
  }
}

TEST(HypeTest, FilterInsideStarBody) {
  xml::Tree t = Doc("<r><a><m/><a><m/><a><b/></a></a></a></r>");
  for (const char* q : {"(a[m])*", "(a[m])*/a[b]", "(a[not(m)])*"}) {
    EXPECT_EQ(RunHype(t, q), RunNaive(t, q)) << q;
  }
}

TEST(HypeTest, StarInsideFilter) {
  gen::Fig4Tree fig = gen::MakeFig4Tree();
  const char* q = "patient[(parent/patient)*/record]";
  EXPECT_EQ(RunHype(fig.tree, q), RunNaive(fig.tree, q));
}

TEST(HypeTest, FilterOnIntermediateStepResolvedLate) {
  // The filter at 'a' depends on a subtree ('deep/x') explored after the
  // candidate answers below 'b' -- exercises cans deletion.
  xml::Tree t = Doc(
      "<r>"
      "<a><b><c/></b><deep><x/></deep></a>"
      "<a><b><c/></b><deep></deep></a>"
      "</r>");
  const char* q = "a[deep/x]/b/c";
  EXPECT_EQ(RunHype(t, q), RunNaive(t, q));
  EXPECT_EQ(RunHype(t, q).size(), 1u);
}

TEST(HypeTest, NegatedLateFilter) {
  xml::Tree t = Doc(
      "<r>"
      "<a><b><c/></b><deep><x/></deep></a>"
      "<a><b><c/></b><deep></deep></a>"
      "</r>");
  const char* q = "a[not(deep/x)]/b/c";
  EXPECT_EQ(RunHype(t, q), RunNaive(t, q));
}

TEST(HypeTest, MultipleFiltersOnPath) {
  xml::Tree t = Doc(
      "<r><a><p/><b><q/><c><s/></c></b></a>"
      "<a><b><q/><c><s/></c></b></a>"
      "<a><p/><b><c><s/></c></b></a></r>");
  const char* q = "a[p]/b[q]/c[s]";
  EXPECT_EQ(RunHype(t, q), RunNaive(t, q));
  EXPECT_EQ(RunHype(t, q).size(), 1u);
}

TEST(HypeTest, Fig4GoldenAnswer) {
  gen::Fig4Tree fig = gen::MakeFig4Tree();
  auto answers = RunHype(fig.tree, gen::kQueryExample41);
  std::vector<xml::NodeId> expected = {fig.ids[9], fig.ids[11]};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(answers, expected);
}

TEST(HypeTest, ContextNodeCanBeAnswer) {
  xml::Tree t = Doc("<r><a/></r>");
  auto ids = RunHype(t, ".");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], t.root());
  // Zero star iterations select the context itself; one selects the child.
  EXPECT_EQ(RunHype(t, "a*").size(), 2u);
  EXPECT_EQ(RunHype(t, "a*"), RunNaive(t, "a*"));
  // A guard on the context node (via eps) controls reachability of answers.
  EXPECT_EQ(RunHype(t, ".[a]/a"), RunNaive(t, ".[a]/a"));
  EXPECT_EQ(RunHype(t, ".[b]/a").size(), 0u);
}

TEST(HypeTest, EvalAtNonRootContext) {
  xml::Tree t = Doc("<r><a><b/></a><b/></r>");
  xml::NodeId a = t.first_child(t.root());
  EXPECT_EQ(RunHype(t, "b", a), RunNaive(t, "b", a));
}

TEST(HypeTest, EvalIsRepeatable) {
  gen::Fig4Tree fig = gen::MakeFig4Tree();
  auto q = xpath::ParseQuery(gen::kQueryExample41);
  ASSERT_TRUE(q.ok());
  automata::Mfa mfa = automata::CompileQuery(q.value());
  HypeEvaluator eval(fig.tree, mfa);
  auto first = eval.Eval(fig.tree.root());
  auto second = eval.Eval(fig.tree.root());
  EXPECT_EQ(first, second);
}

TEST(HypeTest, DeepChainNoStackIssuesAtModerateDepth) {
  xml::Tree t;
  xml::NodeId n = t.AddRoot("a");
  for (int i = 0; i < 200; ++i) n = t.AddElement(n, "a");
  t.AddElement(n, "b");
  EXPECT_EQ(RunHype(t, "a*/b").size(), 1u);
  EXPECT_EQ(RunHype(t, "//b").size(), 1u);
}

TEST(HypeStatsTest, PruningSkipsIrrelevantSubtrees) {
  gen::HospitalParams params;
  params.patients = 50;
  params.seed = 11;
  xml::Tree t = gen::GenerateHospital(params);
  auto q = xpath::ParseQuery("department/patient/pname");
  ASSERT_TRUE(q.ok());
  automata::Mfa mfa = automata::CompileQuery(q.value());
  HypeEvaluator eval(t, mfa);
  auto answers = eval.Eval(t.root());
  EXPECT_FALSE(answers.empty());
  const EvalStats& stats = eval.stats();
  EXPECT_EQ(stats.elements_total, t.CountElements());
  EXPECT_LT(stats.elements_visited, stats.elements_total);
  EXPECT_GT(stats.PrunedFraction(), 0.3);
  // Filter-free query: no cans region ever opens (answers emit directly).
  EXPECT_EQ(stats.cans_vertices, 0);
}

TEST(HypeStatsTest, CansRegionOpensOnlyUnderFilters) {
  gen::HospitalParams params;
  params.patients = 50;
  params.seed = 11;
  xml::Tree t = gen::GenerateHospital(params);
  auto q = xpath::ParseQuery("department/patient[visit]/pname");
  ASSERT_TRUE(q.ok());
  automata::Mfa mfa = automata::CompileQuery(q.value());
  HypeEvaluator eval(t, mfa);
  auto answers = eval.Eval(t.root());
  EXPECT_FALSE(answers.empty());
  // Filters exist, so cans is used -- but stays far smaller than the tree.
  EXPECT_GT(eval.stats().cans_vertices, 0);
  EXPECT_LT(eval.stats().cans_vertices, t.CountElements());
}

TEST(HypeStatsTest, UnselectiveQueryVisitsEverything) {
  xml::Tree t = Doc("<r><a><b/></a><c><d/></c></r>");
  auto q = xpath::ParseQuery(".//.");
  ASSERT_TRUE(q.ok());
  automata::Mfa mfa = automata::CompileQuery(q.value());
  HypeEvaluator eval(t, mfa);
  EXPECT_EQ(eval.Eval(t.root()).size(), 5u);
  EXPECT_EQ(eval.stats().elements_visited, 5);
  EXPECT_DOUBLE_EQ(eval.stats().PrunedFraction(), 0.0);
}

TEST(HypeTest, HospitalQueriesMatchNaive) {
  gen::HospitalParams params;
  params.patients = 30;
  params.seed = 3;
  params.heart_disease_prob = 0.3;
  xml::Tree t = gen::GenerateHospital(params);
  for (const char* q : {
           "department/patient[visit/treatment/medication/diagnosis/"
           "text() = 'heart disease']",
           "department/patient[visit/treatment/test]/pname",
           "//patient[visit/treatment/medication]",
           "department/patient/(parent/patient)*[visit/treatment/"
           "medication/diagnosis/text() = 'heart disease']",
           "//diagnosis",
           gen::kQueryExample21,
       }) {
    EXPECT_EQ(RunHype(t, q), RunNaive(t, q)) << q;
  }
}

}  // namespace
}  // namespace smoqe::hype
