// Direct (explicit Xreg) rewriting: Theorem 3.2 closure, agreement with the
// MFA rewriting, and the Corollary 3.3 size blow-up.

#include <gtest/gtest.h>

#include "eval/naive_evaluator.h"
#include "gen/fixtures.h"
#include "gen/hospital_generator.h"
#include "rewrite/direct_rewriter.h"
#include "rewrite/rewriter.h"
#include "hype/hype.h"
#include "view/materializer.h"
#include "view/view_parser.h"
#include "xml/parser.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace smoqe::rewrite {
namespace {

using NodeVec = std::vector<xml::NodeId>;

NodeVec ViewAnswer(const view::ViewDef& def, const xml::Tree& source,
                   std::string_view query) {
  auto mat = view::Materialize(def, source);
  EXPECT_TRUE(mat.ok()) << mat.status().ToString();
  auto q = xpath::ParseQuery(query);
  EXPECT_TRUE(q.ok());
  eval::NodeSet on_view = eval::NaiveEvaluator(mat.value().tree)
                              .Eval(q.value(), mat.value().tree.root());
  return view::MapToSource(mat.value(), on_view);
}

NodeVec DirectAnswer(const view::ViewDef& def, const xml::Tree& source,
                     std::string_view query) {
  auto q = xpath::ParseQuery(query);
  EXPECT_TRUE(q.ok());
  auto rewritten = DirectRewrite(q.value(), def);
  EXPECT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  return eval::NaiveEvaluator(source).Eval(rewritten.value(), source.root());
}

TEST(DirectRewriteTest, EmptyQuerySelectsNothing) {
  auto t = xml::ParseXml("<a><b/></a>");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(eval::NaiveEvaluator(t.value())
                  .Eval(EmptyQuery(), t.value().root())
                  .empty());
}

class DirectHospitalTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DirectHospitalTest, ClosureUnderRewriting) {
  view::ViewDef def = gen::HospitalView();
  gen::HospitalParams params;
  params.patients = 20;
  params.seed = 77;
  params.heart_disease_prob = 0.35;
  xml::Tree source = gen::GenerateHospital(params);
  EXPECT_EQ(DirectAnswer(def, source, GetParam()),
            ViewAnswer(def, source, GetParam()))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    ViewQueries, DirectHospitalTest,
    ::testing::Values("patient", "patient/record", "patient/parent/patient",
                      "//diagnosis", "(patient/parent)*/patient",
                      "patient[record]",
                      "patient[record/diagnosis/text() = 'heart disease']",
                      "patient[not(parent)]",
                      "patient[*//record/diagnosis/text() = 'heart disease']",
                      "patient/(parent | record)",
                      "(patient/parent)*/patient[(parent/patient)*/record/"
                      "diagnosis[text() = 'heart disease']]"));

TEST(DirectRewriteTest, AgreesWithMfaRewriting) {
  view::ViewDef def = gen::HospitalView();
  gen::HospitalParams params;
  params.patients = 15;
  params.seed = 5;
  xml::Tree source = gen::GenerateHospital(params);
  for (const char* query : {"//record", gen::kQueryExample11}) {
    auto q = xpath::ParseQuery(query);
    ASSERT_TRUE(q.ok());
    auto direct = DirectRewrite(q.value(), def);
    ASSERT_TRUE(direct.ok());
    auto mfa = RewriteToMfa(q.value(), def);
    ASSERT_TRUE(mfa.ok());
    hype::HypeEvaluator hype_eval(source, mfa.value());
    EXPECT_EQ(
        eval::NaiveEvaluator(source).Eval(direct.value(), source.root()),
        hype_eval.Eval(source.root()))
        << query;
  }
}

TEST(DirectRewriteTest, OutputIsValidXreg) {
  // The rewritten query must round-trip through the parser.
  view::ViewDef def = gen::HospitalView();
  auto q = xpath::ParseQuery("patient[record/diagnosis]");
  ASSERT_TRUE(q.ok());
  auto direct = DirectRewrite(q.value(), def);
  ASSERT_TRUE(direct.ok());
  std::string printed = xpath::ToString(direct.value());
  auto reparsed = xpath::ParseQuery(printed);
  ASSERT_TRUE(reparsed.ok()) << printed;
  EXPECT_TRUE(xpath::Equals(direct.value(), reparsed.value()));
}

TEST(DirectRewriteTest, PositionRejected) {
  view::ViewDef def = gen::HospitalView();
  auto q = xpath::ParseQuery("patient[position() = 2]");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(DirectRewrite(q.value(), def).ok());
}

// A view DTD shaped like a ladder makes explicit rewritings blow up: at each
// of k levels a wildcard may sit at either of two types (paper, Corollary
// 3.3: exponential even for non-recursive views).
view::ViewDef LadderView(int levels) {
  std::string source_dtd = "dtd s { s -> x* ; x -> x* ; }";
  std::string view_dtd = "dtd v0 { ";
  std::string sigma;
  for (int i = 0; i < levels; ++i) {
    std::string l = "l" + std::to_string(i), r = "r" + std::to_string(i);
    std::string next_l = "l" + std::to_string(i + 1),
                next_r = "r" + std::to_string(i + 1);
    std::string parent_types =
        i == 0 ? std::string("v0") : ("l" + std::to_string(i - 1) + "~r" +
                                      std::to_string(i - 1));
    (void)parent_types;
    if (i == 0) {
      view_dtd += "v0 -> l0*, r0* ; ";
      sigma += "v0.l0 = \"x\" ; v0.r0 = \"x\" ; ";
    }
    if (i + 1 < levels) {
      view_dtd += l + " -> " + next_l + "*, " + next_r + "* ; ";
      view_dtd += r + " -> " + next_l + "*, " + next_r + "* ; ";
      sigma += l + "." + next_l + " = \"x\" ; " + l + "." + next_r +
               " = \"x\" ; ";
      sigma += r + "." + next_l + " = \"x\" ; " + r + "." + next_r +
               " = \"x\" ; ";
    } else {
      view_dtd += l + " -> #empty ; " + r + " -> #empty ; ";
    }
  }
  view_dtd += "}";
  std::string spec = "view ladder {\n  source " + source_dtd + "\n  view " +
                     view_dtd + "\n  sigma { " + sigma + " }\n}";
  auto v = view::ParseView(spec);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return v.take();
}

TEST(DirectRewriteTest, Corollary33ExplicitSizeGrows) {
  // Wildcard chains over the ladder: the explicit rewriting at least doubles
  // per level while the MFA stays linear (Theorem 5.1).
  std::vector<uint64_t> direct_sizes;
  std::vector<int64_t> mfa_sizes;
  for (int levels = 2; levels <= 5; ++levels) {
    view::ViewDef def = LadderView(levels);
    std::string query = "*";
    for (int i = 1; i < levels; ++i) query += "/*";
    auto q = xpath::ParseQuery(query);
    ASSERT_TRUE(q.ok());
    auto direct = DirectRewrite(q.value(), def);
    ASSERT_TRUE(direct.ok());
    direct_sizes.push_back(xpath::ExpandedSize(direct.value()));
    auto mfa = RewriteToMfa(q.value(), def);
    ASSERT_TRUE(mfa.ok());
    mfa_sizes.push_back(mfa.value().SizeMeasure());
  }
  // Explicit representation at least doubles with each level...
  for (size_t i = 1; i < direct_sizes.size(); ++i) {
    EXPECT_GE(direct_sizes[i], 2 * direct_sizes[i - 1])
        << "level " << i + 2 << ": explicit size should blow up";
  }
  // ...while the MFA grows by a bounded additive amount.
  for (size_t i = 1; i < mfa_sizes.size(); ++i) {
    EXPECT_LE(mfa_sizes[i] - mfa_sizes[i - 1], 400)
        << "MFA growth must stay linear";
  }
}

TEST(DirectRewriteTest, RecursiveViewStarCorrect) {
  // The ancestor chain query needs Arden-style elimination on the recursive
  // view; verify on the hospital fixture.
  view::ViewDef def = gen::HospitalView();
  gen::HospitalParams params;
  params.patients = 10;
  params.seed = 13;
  params.heart_disease_prob = 0.5;
  params.max_ancestor_depth = 4;
  xml::Tree source = gen::GenerateHospital(params);
  const char* query = "//patient";
  EXPECT_EQ(DirectAnswer(def, source, query), ViewAnswer(def, source, query));
}

}  // namespace
}  // namespace smoqe::rewrite
