#include <gtest/gtest.h>

#include "gen/fixtures.h"
#include "xpath/ast.h"
#include "xpath/parser.h"
#include "xpath/printer.h"
#include "xpath/x_fragment.h"

namespace smoqe::xpath {
namespace {

PathPtr MustParse(std::string_view q) {
  auto p = ParseQuery(q);
  EXPECT_TRUE(p.ok()) << "query: " << q << " -> " << p.status().ToString();
  return p.ok() ? p.value() : nullptr;
}

TEST(ParserTest, SimpleSteps) {
  PathPtr p = MustParse("a/b/c");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, PathKind::kSeq);
  EXPECT_EQ(ToString(p), "a/b/c");
}

TEST(ParserTest, SelfStep) {
  EXPECT_EQ(MustParse(".")->kind, PathKind::kEmpty);
  EXPECT_TRUE(Equals(MustParse("./a"), MustParse("a")));
}

TEST(ParserTest, Wildcard) {
  PathPtr p = MustParse("a/*");
  EXPECT_EQ(p->right->kind, PathKind::kWildcard);
}

TEST(ParserTest, UnionPrecedence) {
  // '|' binds loosest: a/b | c = (a/b) | c.
  PathPtr p = MustParse("a/b | c");
  ASSERT_EQ(p->kind, PathKind::kUnion);
  EXPECT_EQ(p->left->kind, PathKind::kSeq);
}

TEST(ParserTest, DescendantOrSelfDesugars) {
  PathPtr p = MustParse("a//b");
  // a/(*)*/b
  ASSERT_EQ(p->kind, PathKind::kSeq);
  EXPECT_TRUE(IsInXFragment(p));
  EXPECT_TRUE(UsesStar(p));

  PathPtr lead = MustParse("//a");
  EXPECT_TRUE(IsInXFragment(lead));
  ASSERT_EQ(lead->kind, PathKind::kSeq);
  EXPECT_EQ(lead->left->kind, PathKind::kStar);
  EXPECT_EQ(lead->left->left->kind, PathKind::kWildcard);
}

TEST(ParserTest, KleeneStarOnGroup) {
  PathPtr p = MustParse("(parent/patient)*");
  ASSERT_EQ(p->kind, PathKind::kStar);
  EXPECT_EQ(p->left->kind, PathKind::kSeq);
  EXPECT_FALSE(IsInXFragment(p));
}

TEST(ParserTest, StarOnLabel) {
  PathPtr p = MustParse("a*");
  ASSERT_EQ(p->kind, PathKind::kStar);
  EXPECT_EQ(p->left->kind, PathKind::kLabel);
}

TEST(ParserTest, FilterExistence) {
  PathPtr p = MustParse("patient[visit]");
  ASSERT_EQ(p->kind, PathKind::kFilter);
  EXPECT_EQ(p->filter->kind, FilterKind::kPath);
}

TEST(ParserTest, FilterTextEquals) {
  PathPtr p = MustParse("d[x/text() = 'c']");
  ASSERT_EQ(p->filter->kind, FilterKind::kTextEquals);
  EXPECT_EQ(p->filter->text, "c");
  EXPECT_EQ(p->filter->path->kind, PathKind::kLabel);
}

TEST(ParserTest, FilterBareTextEquals) {
  PathPtr p = MustParse("d[text() = \"heart disease\"]");
  ASSERT_EQ(p->filter->kind, FilterKind::kTextEquals);
  EXPECT_EQ(p->filter->path->kind, PathKind::kEmpty);
  EXPECT_EQ(p->filter->text, "heart disease");
}

TEST(ParserTest, FilterPosition) {
  PathPtr p = MustParse("a[position() = 2]");
  ASSERT_EQ(p->filter->kind, FilterKind::kPositionEquals);
  EXPECT_EQ(p->filter->position, 2);
  EXPECT_TRUE(UsesPosition(p));
  EXPECT_FALSE(UsesPosition(MustParse("a[b]")));
}

TEST(ParserTest, FilterBooleans) {
  PathPtr p = MustParse("a[b and not(c) or d]");
  // or binds loosest: (b and not(c)) or d.
  ASSERT_EQ(p->filter->kind, FilterKind::kOr);
  EXPECT_EQ(p->filter->left->kind, FilterKind::kAnd);
  EXPECT_EQ(p->filter->left->right->kind, FilterKind::kNot);
}

TEST(ParserTest, FilterBooleanGrouping) {
  PathPtr p = MustParse("a[(b or c) and d]");
  ASSERT_EQ(p->filter->kind, FilterKind::kAnd);
  EXPECT_EQ(p->filter->left->kind, FilterKind::kOr);
}

TEST(ParserTest, FilterPathGroupNotConfusedWithBooleanGroup) {
  PathPtr p = MustParse("a[(b/c)*/d]");
  ASSERT_EQ(p->filter->kind, FilterKind::kPath);
  EXPECT_EQ(p->filter->path->kind, PathKind::kSeq);
  EXPECT_EQ(p->filter->path->left->kind, PathKind::kStar);
}

TEST(ParserTest, NestedFilters) {
  PathPtr p = MustParse("a[b[c[d]]]");
  ASSERT_EQ(p->kind, PathKind::kFilter);
  const FilterPtr& f = p->filter;
  ASSERT_EQ(f->kind, FilterKind::kPath);
  EXPECT_EQ(f->path->kind, PathKind::kFilter);
}

TEST(ParserTest, MultipleFiltersOnOneStep) {
  PathPtr p = MustParse("a[b][c]");
  ASSERT_EQ(p->kind, PathKind::kFilter);
  EXPECT_EQ(p->left->kind, PathKind::kFilter);
}

TEST(ParserTest, PaperExampleQueriesParse) {
  EXPECT_NE(MustParse(gen::kQueryExample11), nullptr);
  EXPECT_NE(MustParse(gen::kQueryExample21), nullptr);
  EXPECT_NE(MustParse(gen::kQueryExample41), nullptr);
  EXPECT_NE(MustParse(gen::kQueryExample31Rewritten), nullptr);
}

TEST(ParserTest, Example41Shape) {
  PathPtr p = MustParse(gen::kQueryExample41);
  // (patient/parent)*/patient[q0]
  ASSERT_EQ(p->kind, PathKind::kSeq);
  EXPECT_EQ(p->left->kind, PathKind::kStar);
  EXPECT_EQ(p->right->kind, PathKind::kFilter);
  EXPECT_FALSE(IsInXFragment(p));
}

TEST(ParserTest, Example11IsInX) {
  EXPECT_TRUE(IsInXFragment(MustParse(gen::kQueryExample11)));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("a/").ok());
  EXPECT_FALSE(ParseQuery("a[b").ok());
  EXPECT_FALSE(ParseQuery("(a").ok());
  EXPECT_FALSE(ParseQuery("a]").ok());
  EXPECT_FALSE(ParseQuery("a[]").ok());
  EXPECT_FALSE(ParseQuery("a[text() = ]").ok());
  EXPECT_FALSE(ParseQuery("a[position() = 'x']").ok());
  EXPECT_FALSE(ParseQuery("a b").ok());
  EXPECT_FALSE(ParseQuery("not(a)").ok());  // filters are not paths
  EXPECT_FALSE(ParseQuery("a[not b]").ok());
  EXPECT_FALSE(ParseQuery("a['str']").ok());
}

TEST(ParserTest, ReservedWordsAreNotLabels) {
  EXPECT_FALSE(ParseQuery("and").ok());
  EXPECT_FALSE(ParseQuery("or").ok());
  EXPECT_FALSE(ParseQuery("a/not").ok());
}

TEST(ParserTest, FilterExprEntryPoint) {
  auto f = ParseFilterExpr("a and not(b/text() = 'x')");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(f.value()->kind, FilterKind::kAnd);
}

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintThenParseIsIdentity) {
  PathPtr p1 = MustParse(GetParam());
  ASSERT_NE(p1, nullptr);
  std::string printed = ToString(p1);
  auto p2 = ParseQuery(printed);
  ASSERT_TRUE(p2.ok()) << "printed: " << printed << " -> "
                       << p2.status().ToString();
  EXPECT_TRUE(Equals(p1, p2.value()))
      << "original: " << GetParam() << "\nprinted:  " << printed
      << "\nreprint:  " << ToString(p2.value());
}

INSTANTIATE_TEST_SUITE_P(
    Queries, RoundTripTest,
    ::testing::Values(
        "a", ".", "*", "a/b/c", "a | b | c", "a/b | c/d", "(a | b)/c",
        "a//b", "//a", "a*", "(a/b)*", "(a | b)*", "a**",
        "a[b]", "a[b/c]", "a[not(b)]", "a[b and c]", "a[b or c and d]",
        "a[(b or c) and d]", "a[text() = 'x']", "a[b/text() = 'x']",
        "a[(a | b)/text() = 'x']", "a[position() = 3]",
        "a[b[c]]", "a[b][c]", "a[(b/c)*/d]", "(a[b]/c)*",
        "department/patient[visit/treatment/medication/diagnosis/text() = "
        "'heart disease']",
        "(patient/parent)*/patient[(parent/patient)*/record/diagnosis/"
        "text() = 'heart disease']",
        "patient[*//record/diagnosis/text() = 'heart disease']",
        "a[not(b) and not(c/d | e)]", "a[.//b]", "a[b | c]"));

TEST(AstTest, ExpandedSizeCountsSharedSubtreesRepeatedly) {
  PathPtr shared = MustParse("a/b/c");
  PathPtr twice = Seq(shared, shared);
  EXPECT_EQ(ExpandedSize(twice), 1 + 2 * ExpandedSize(shared));
}

TEST(AstTest, EqualsDistinguishesStructure) {
  EXPECT_TRUE(Equals(MustParse("a/b"), MustParse("a/b")));
  EXPECT_FALSE(Equals(MustParse("a/b"), MustParse("a/c")));
  EXPECT_FALSE(Equals(MustParse("a/b"), MustParse("a|b")));
  EXPECT_FALSE(Equals(MustParse("a[b]"), MustParse("a[c]")));
  EXPECT_FALSE(Equals(MustParse("a[text() = 'x']"),
                      MustParse("a[text() = 'y']")));
}

TEST(AstTest, CollectLabels) {
  auto labels = CollectLabels(MustParse("a/b[c/text() = 'x' and not(d)]"));
  EXPECT_EQ(labels.size(), 4u);
}

TEST(AstTest, SeqFoldsEps) {
  EXPECT_TRUE(Equals(Seq(Eps(), Label("a")), Label("a")));
  EXPECT_TRUE(Equals(Seq(Label("a"), Eps()), Label("a")));
}

}  // namespace
}  // namespace smoqe::xpath
