// xml::EpochPublisher: copy-on-write snapshots under a mutating document.
//
// Covers the publisher's contract from both sides of the fence:
//  * correctness -- every published epoch's plane is bit-identical
//    (DocPlane::SameAs) to a from-scratch Build of its tree; admission
//    rejects deltas whose base version is stale; a failing delta leaves
//    the published epoch untouched.
//  * isolation -- a snapshot pinned before a write still reads the old
//    tree/plane afterwards, unchanged.
//  * recycling economics -- with no snapshots held, retired replicas are
//    recycled by log replay; with snapshots pinned across writes the
//    publisher falls back to cloning.
//  * a TSan-facing stress: one writer publishing random deltas while
//    reader threads continuously pin snapshots and check internal
//    consistency. Registered under the `concurrency` label so the
//    sanitizer CI job replays it.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "xml/doc_plane.h"
#include "xml/plane_epoch.h"
#include "xml/tree.h"
#include "xml/tree_delta.h"

namespace smoqe::xml {
namespace {

const char* const kLabels[] = {"a", "b", "c", "d"};

Tree RandomTree(int num_elements, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Tree tree;
  std::vector<NodeId> elements = {tree.AddRoot("a")};
  for (int i = 1; i < num_elements; ++i) {
    NodeId parent = elements[rng() % elements.size()];
    elements.push_back(tree.AddElement(parent, kLabels[rng() % 4]));
    if (rng() % 5 == 0) tree.AddText(elements.back(), "t");
  }
  return tree;
}

std::vector<NodeId> ReachableElements(const Tree& tree) {
  std::vector<NodeId> out;
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    if (tree.is_element(n)) out.push_back(n);
    for (NodeId c = tree.first_child(n); c != kNullNode;
         c = tree.next_sibling(c)) {
      stack.push_back(c);
    }
  }
  return out;
}

// One random single-op delta valid against `tree` at `version`.
TreeDelta RandomStep(const Tree& tree, uint64_t version, std::mt19937_64& rng) {
  std::vector<NodeId> elements = ReachableElements(tree);
  TreeDelta delta(version);
  const int kind = static_cast<int>(rng() % 3);
  if (kind == 0 && elements.size() > 4) {
    delta.AddDelete(elements[1 + rng() % (elements.size() - 1)]);
  } else if (kind == 1) {
    Tree scratch;
    scratch.AddRoot(kLabels[rng() % 4]);
    if (rng() % 2) scratch.AddElement(scratch.root(), kLabels[rng() % 4]);
    delta.AddInsert(elements[rng() % elements.size()],
                    static_cast<int32_t>(rng() % 3),
                    Fragment::Capture(scratch, scratch.root()));
  } else {
    delta.AddRelabel(elements[rng() % elements.size()], kLabels[rng() % 4]);
  }
  return delta;
}

TEST(PlaneEpochTest, PublishedPlaneMatchesBuild) {
  EpochPublisher publisher(RandomTree(60, 7));
  std::mt19937_64 rng(7);
  for (int step = 0; step < 30; ++step) {
    PlaneEpoch before = publisher.Snapshot();
    TreeDelta delta = RandomStep(*before.tree, before.version, rng);
    ASSERT_TRUE(publisher.Apply(delta).ok()) << "step " << step;
    PlaneEpoch after = publisher.Snapshot();
    EXPECT_EQ(after.version, before.version + 1);
    ASSERT_TRUE(after.plane->SameAs(DocPlane::Build(*after.tree)))
        << "published plane diverged from Build at step " << step;
  }
  const EpochPublisher::Stats stats = publisher.stats();
  EXPECT_EQ(stats.epochs_published, 30);
  // Single-op deltas on a 60-element tree usually qualify for patching.
  EXPECT_GT(stats.planes_patched, 0);
}

TEST(PlaneEpochTest, SnapshotIsolation) {
  EpochPublisher publisher(RandomTree(40, 11));
  PlaneEpoch pinned = publisher.Snapshot();
  const Tree old_copy = *pinned.tree;  // value copy for later comparison

  std::mt19937_64 rng(11);
  for (int step = 0; step < 5; ++step) {
    TreeDelta delta =
        RandomStep(*publisher.Snapshot().tree, publisher.version(), rng);
    ASSERT_TRUE(publisher.Apply(delta).ok());
  }
  // The pinned epoch still reads exactly what it read before the writes.
  EXPECT_EQ(pinned.version, 0u);
  EXPECT_TRUE(StructurallyEqual(*pinned.tree, old_copy));
  EXPECT_TRUE(pinned.plane->SameAs(DocPlane::Build(old_copy)));
  EXPECT_EQ(publisher.version(), 5u);
}

TEST(PlaneEpochTest, RejectsStaleDelta) {
  EpochPublisher publisher(RandomTree(20, 3));
  std::mt19937_64 rng(3);
  TreeDelta first = RandomStep(*publisher.Snapshot().tree, 0, rng);
  ASSERT_TRUE(publisher.Apply(first).ok());
  // Re-applying the same delta (base version 0) against version 1 must be
  // rejected and must not publish.
  Status status = publisher.Apply(first);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(publisher.version(), 1u);
}

TEST(PlaneEpochTest, FailedDeltaDoesNotPublish) {
  EpochPublisher publisher(RandomTree(20, 9));
  PlaneEpoch before = publisher.Snapshot();
  TreeDelta bad(before.version);
  bad.AddRelabel(before.tree->size() + 100, "z");  // unreachable target
  EXPECT_FALSE(publisher.Apply(bad).ok());
  PlaneEpoch after = publisher.Snapshot();
  EXPECT_EQ(after.version, before.version);
  EXPECT_EQ(after.tree.get(), before.tree.get());  // same published epoch
}

TEST(PlaneEpochTest, RecyclesWhenSnapshotsDrop) {
  EpochPublisher publisher(RandomTree(50, 21));
  std::mt19937_64 rng(21);
  // No snapshots held across writes: after the pool warms up, every write
  // should find a recyclable replica.
  for (int step = 0; step < 12; ++step) {
    TreeDelta delta =
        RandomStep(*publisher.Snapshot().tree, publisher.version(), rng);
    ASSERT_TRUE(publisher.Apply(delta).ok());
  }
  EXPECT_GT(publisher.stats().replicas_recycled, 0);
}

TEST(PlaneEpochTest, ClonesWhenSnapshotsPinned) {
  EpochPublisher publisher(RandomTree(50, 22));
  std::mt19937_64 rng(22);
  std::vector<PlaneEpoch> pinned;  // keep every epoch alive
  for (int step = 0; step < 8; ++step) {
    pinned.push_back(publisher.Snapshot());
    TreeDelta delta =
        RandomStep(*pinned.back().tree, publisher.version(), rng);
    ASSERT_TRUE(publisher.Apply(delta).ok());
  }
  // Every retired replica stayed referenced, so the writer had to clone.
  EXPECT_GT(publisher.stats().replicas_cloned, 0);
  EXPECT_EQ(publisher.stats().replicas_recycled, 0);
}

TEST(PlaneEpochTest, ConcurrentReadersDuringWrites) {
  EpochPublisher publisher(RandomTree(120, 31));
  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};

  auto reader = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      PlaneEpoch epoch = publisher.Snapshot();
      // Internal consistency of the pinned pair: the plane indexes the
      // tree it was published with, regardless of concurrent writes.
      const Tree& tree = *epoch.tree;
      const DocPlane& plane = *epoch.plane;
      ASSERT_EQ(plane.size(), tree.CountElements());
      const int32_t root_pos = plane.pos_of(tree.root());
      ASSERT_EQ(root_pos, 0);
      ASSERT_EQ(plane.end_of(root_pos), plane.size());
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) readers.emplace_back(reader);

  // Write until the fixed step count AND every reader has demonstrably
  // overlapped the writes (otherwise a fast writer could finish before the
  // reader threads are even scheduled).
  std::mt19937_64 rng(31);
  int step = 0;
  while (step < 200 || reads.load(std::memory_order_relaxed) < 64) {
    TreeDelta delta =
        RandomStep(*publisher.Snapshot().tree, publisher.version(), rng);
    ASSERT_TRUE(publisher.Apply(delta).ok()) << "step " << step;
    ++step;
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(publisher.version(), static_cast<uint64_t>(step));
  EXPECT_GE(reads.load(), 64);
}

}  // namespace
}  // namespace smoqe::xml
