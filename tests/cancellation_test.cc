// common/cancellation.h and its plumbing through every evaluation driver:
// CancelToken/Deadline/EvalGate unit behavior, abort propagation in
// HypeEvaluator, BatchHypeEvaluator, ShardedBatchEvaluator and
// StandingQueryEvaluator::Advance, engine reusability after an abort, and
// the documented cancellation-latency bound (at most one checkpoint
// interval of extra node entries before the traversal stops).

#include "common/cancellation.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "automata/compiler.h"
#include "automata/mfa.h"
#include "common/thread_pool.h"
#include "exec/sharded_eval.h"
#include "exec/standing_query.h"
#include "gen/hospital_generator.h"
#include "hype/batch_hype.h"
#include "hype/hype.h"
#include "xml/plane_epoch.h"
#include "xml/tree.h"
#include "xml/tree_delta.h"
#include "xpath/parser.h"

namespace smoqe {
namespace {

using NodeVec = std::vector<xml::NodeId>;

xml::Tree Hospital(int patients, uint64_t seed) {
  gen::HospitalParams params;
  params.patients = patients;
  params.seed = seed;
  params.heart_disease_prob = 0.3;
  return gen::GenerateHospital(params);
}

automata::Mfa Compile(const std::string& query) {
  auto parsed = xpath::ParseQuery(query);
  EXPECT_TRUE(parsed.ok()) << query;
  return automata::CompileQuery(parsed.value());
}

std::vector<std::string> Workload() {
  return {
      "department/patient/pname",
      "//diagnosis",
      "department/patient[visit/treatment/medication]",
      "department/patient[not(visit/treatment/test)]",
  };
}

// ---------------------------------------------------------------- units --

TEST(CancelTokenTest, FirstCancelWins) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), StatusCode::kOk);
  EXPECT_TRUE(token.Cancel(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), StatusCode::kDeadlineExceeded);
  // A later Cancel with a different code is a no-op.
  EXPECT_FALSE(token.Cancel(StatusCode::kCancelled));
  EXPECT_EQ(token.reason(), StatusCode::kDeadlineExceeded);
  token.Reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Cancel());
  EXPECT_EQ(token.reason(), StatusCode::kCancelled);
}

TEST(DeadlineTest, NeverAndAfter) {
  Deadline never;
  EXPECT_FALSE(never.has_deadline());
  EXPECT_FALSE(never.expired());
  Deadline past = Deadline::After(std::chrono::microseconds(0));
  EXPECT_TRUE(past.has_deadline());
  EXPECT_TRUE(past.expired());
  Deadline future = Deadline::After(std::chrono::hours(1));
  EXPECT_TRUE(future.has_deadline());
  EXPECT_FALSE(future.expired());
}

TEST(EvalControlTest, EnabledOnlyWhenSomethingToWatch) {
  EvalControl control;
  EXPECT_FALSE(control.enabled());
  CancelToken token;
  control.token = &token;
  EXPECT_TRUE(control.enabled());
  control.token = nullptr;
  control.deadline = Deadline::After(std::chrono::hours(1));
  EXPECT_TRUE(control.enabled());
  control.deadline = Deadline::Never();
  control.extra_poll = [] { return StatusCode::kOk; };
  EXPECT_TRUE(control.enabled());
}

TEST(EvalGateTest, DisarmedGateNeverTrips) {
  EvalGate gate(nullptr);
  for (int i = 0; i < 1 << 20; ++i) ASSERT_TRUE(gate.Poll());
  EXPECT_FALSE(gate.tripped());
  EXPECT_TRUE(gate.status().ok());
}

TEST(EvalGateTest, ObservesCancellationAtCheckpointBoundary) {
  CancelToken token;
  EvalControl control;
  control.token = &token;
  control.checkpoint_interval = 4;
  EvalGate gate(&control);
  token.Cancel();
  // The countdown covers the first interval; the refresh at its end
  // observes the token.
  EXPECT_TRUE(gate.Poll());
  EXPECT_TRUE(gate.Poll());
  EXPECT_TRUE(gate.Poll());
  EXPECT_FALSE(gate.Poll());
  EXPECT_TRUE(gate.tripped());
  EXPECT_EQ(gate.status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(gate.Poll());  // latched
}

TEST(EvalGateTest, TripCancelsTheSharedTokenForSiblings) {
  CancelToken token;
  EvalControl control;
  control.token = &token;
  EvalGate first(&control);
  EvalGate sibling(&control);
  first.Trip(Status::Unavailable("injected shard fault"));
  EXPECT_TRUE(first.tripped());
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), StatusCode::kUnavailable);
  // The sibling observes the failure at its next refresh, with the code the
  // first failure carried.
  EXPECT_FALSE(sibling.Refresh());
  EXPECT_EQ(sibling.status().code(), StatusCode::kUnavailable);
}

TEST(EvalGateTest, DeadlineTripsWithDeadlineExceeded) {
  EvalControl control;
  control.deadline = Deadline::After(std::chrono::microseconds(0));
  EvalGate gate(&control);
  EXPECT_FALSE(gate.Refresh());
  EXPECT_EQ(gate.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(EvalGateTest, ExtraPollAborts) {
  int calls = 0;
  EvalControl control;
  control.checkpoint_interval = 2;
  control.extra_poll = [&calls] {
    return ++calls < 3 ? StatusCode::kOk : StatusCode::kResourceExhausted;
  };
  EvalGate gate(&control);
  int polls = 0;
  while (gate.Poll()) ++polls;
  EXPECT_EQ(gate.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(polls, 2 * 3 - 1);  // three refreshes, two intervals survived
}

// -------------------------------------------------------------- drivers --

TEST(CancellationTest, SoloEvalCancelledBeforeStart) {
  xml::Tree tree = Hospital(20, 7);
  automata::Mfa mfa = Compile("//diagnosis");
  hype::HypeEvaluator eval(tree, mfa);
  const NodeVec expected = eval.Eval(tree.root());
  ASSERT_FALSE(expected.empty());

  CancelToken token;
  token.Cancel();
  EvalControl control;
  control.token = &token;
  auto aborted = eval.Eval(tree.root(), control);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kCancelled);

  // The evaluator is reusable after an abort: clear the token and both the
  // controlled and the plain path produce the full answer again.
  token.Reset();
  auto retried = eval.Eval(tree.root(), control);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.value(), expected);
  EXPECT_EQ(eval.Eval(tree.root()), expected);
}

TEST(CancellationTest, SoloEvalDeadlineExceeded) {
  xml::Tree tree = Hospital(20, 11);
  automata::Mfa mfa = Compile("//diagnosis");
  hype::HypeEvaluator eval(tree, mfa);
  EvalControl control;
  control.deadline = Deadline::After(std::chrono::microseconds(0));
  auto aborted = eval.Eval(tree.root(), control);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancellationTest, DisabledControlMatchesPlainEval) {
  xml::Tree tree = Hospital(15, 13);
  automata::Mfa mfa = Compile("department/patient[visit]/pname");
  hype::HypeEvaluator eval(tree, mfa);
  auto controlled = eval.Eval(tree.root(), EvalControl{});
  ASSERT_TRUE(controlled.ok());
  EXPECT_EQ(controlled.value(), eval.Eval(tree.root()));
}

// The latency contract: a traversal observes cancellation after at most
// `checkpoint_interval` additional node entries. The extra poll passes the
// entry refresh once and demands cancellation from then on, so the pass is
// cut off at the FIRST in-loop checkpoint -- elements_visited must stay
// within one interval (the driver may also spend polls on pops, which only
// tightens the bound).
TEST(CancellationTest, CancellationLatencyBoundedByCheckpointInterval) {
  xml::Tree tree = Hospital(200, 17);
  automata::Mfa mfa = Compile("//diagnosis");
  hype::HypeOptions options;
  options.enable_jump = false;  // one poll per element entry, worst case
  hype::HypeEvaluator eval(tree, mfa, options);
  const int64_t total = tree.CountElements();
  ASSERT_GT(total, 1000);

  constexpr int32_t kInterval = 64;
  int calls = 0;
  EvalControl control;
  control.checkpoint_interval = kInterval;
  control.extra_poll = [&calls] {
    return ++calls <= 1 ? StatusCode::kOk : StatusCode::kCancelled;
  };
  auto aborted = eval.Eval(tree.root(), control);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kCancelled);
  EXPECT_LE(eval.stats().elements_visited, kInterval);
  EXPECT_LT(eval.stats().elements_visited, total / 4);
}

TEST(CancellationTest, BatchEvalAbortsAndStaysReusable) {
  xml::Tree tree = Hospital(20, 19);
  std::vector<automata::Mfa> mfas;
  for (const std::string& q : Workload()) mfas.push_back(Compile(q));
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& m : mfas) ptrs.push_back(&m);

  hype::BatchHypeEvaluator eval(tree, ptrs);
  const std::vector<NodeVec> expected = eval.EvalAll(tree.root());

  CancelToken token;
  token.Cancel();
  EvalControl control;
  control.token = &token;
  EvalGate gate(&control);
  std::vector<NodeVec> aborted = eval.EvalAll(tree.root(), &gate);
  EXPECT_TRUE(gate.tripped());
  EXPECT_EQ(gate.status().code(), StatusCode::kCancelled);
  ASSERT_EQ(aborted.size(), ptrs.size());
  for (const NodeVec& a : aborted) EXPECT_TRUE(a.empty());

  EXPECT_EQ(eval.EvalAll(tree.root()), expected);
}

TEST(CancellationTest, ShardedEvalCancelsAndStaysReusable) {
  xml::Tree tree = Hospital(30, 23);
  std::vector<automata::Mfa> mfas;
  for (const std::string& q : Workload()) mfas.push_back(Compile(q));
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& m : mfas) ptrs.push_back(&m);

  common::ThreadPool pool(4);
  exec::ShardedOptions options;
  options.pool = &pool;
  exec::ShardedBatchEvaluator eval(tree, ptrs, options);
  const std::vector<NodeVec> expected = eval.EvalAll(tree.root());
  EXPECT_TRUE(eval.last_status().ok());

  CancelToken token;
  token.Cancel();
  EvalControl control;
  control.token = &token;
  std::vector<NodeVec> aborted = eval.EvalAll(tree.root(), control);
  EXPECT_EQ(eval.last_status().code(), StatusCode::kCancelled);
  ASSERT_EQ(aborted.size(), ptrs.size());
  for (const NodeVec& a : aborted) EXPECT_TRUE(a.empty());

  // Reusable and warm after the abort -- both the controlled path (token
  // cleared) and the plain path reproduce the full answers.
  token.Reset();
  EXPECT_EQ(eval.EvalAll(tree.root(), control), expected);
  EXPECT_TRUE(eval.last_status().ok());
  EXPECT_EQ(eval.EvalAll(tree.root()), expected);
  EXPECT_TRUE(eval.last_status().ok());
}

TEST(CancellationTest, ShardedEvalDeadlineReportsDeadlineExceeded) {
  xml::Tree tree = Hospital(30, 29);
  std::vector<automata::Mfa> mfas;
  for (const std::string& q : Workload()) mfas.push_back(Compile(q));
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& m : mfas) ptrs.push_back(&m);

  common::ThreadPool pool(4);
  exec::ShardedOptions options;
  options.pool = &pool;
  exec::ShardedBatchEvaluator eval(tree, ptrs, options);
  EvalControl control;
  control.deadline = Deadline::After(std::chrono::microseconds(0));
  control.checkpoint_interval = 16;
  std::vector<NodeVec> aborted = eval.EvalAll(tree.root(), control);
  EXPECT_EQ(eval.last_status().code(), StatusCode::kDeadlineExceeded);
  for (const NodeVec& a : aborted) EXPECT_TRUE(a.empty());
}

TEST(CancellationTest, StandingQueryAdvanceAbortsAtPreviousEpochAndRetries) {
  xml::Tree tree = Hospital(15, 31);
  std::vector<automata::Mfa> mfas;
  for (const std::string& q : Workload()) mfas.push_back(Compile(q));
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& m : mfas) ptrs.push_back(&m);

  xml::EpochPublisher publisher(tree);
  exec::StandingQueryEvaluator standing(publisher.Snapshot(), ptrs);
  std::vector<NodeVec> base_answers;
  for (size_t q = 0; q < ptrs.size(); ++q) {
    base_answers.push_back(standing.answers(q));
  }

  // One relabel inside the document: forces a (spliced or full) re-eval.
  xml::TreeDelta delta(publisher.version());
  delta.AddRelabel(tree.first_child(tree.root()), "patient");
  ASSERT_TRUE(publisher.Apply(delta).ok());
  const xml::PlaneEpoch next = publisher.Snapshot();

  CancelToken token;
  token.Cancel();
  EvalControl control;
  control.token = &token;
  Status aborted = standing.Advance(next, delta, nullptr, control);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.code(), StatusCode::kCancelled);
  // Still at the previous epoch with the previous answers: staged commit.
  EXPECT_EQ(standing.version(), 0u);
  for (size_t q = 0; q < ptrs.size(); ++q) {
    EXPECT_EQ(standing.answers(q), base_answers[q]);
  }

  // The retry (no control) succeeds and matches a cold evaluation on the
  // new epoch.
  ASSERT_TRUE(standing.Advance(next, delta).ok());
  EXPECT_EQ(standing.version(), next.version);
  hype::BatchHypeEvaluator cold(*next.tree, ptrs);
  std::vector<NodeVec> expected = cold.EvalAll(next.tree->root());
  for (size_t q = 0; q < ptrs.size(); ++q) {
    EXPECT_EQ(standing.answers(q), expected[q]);
  }
}

// A deadline that expires mid-run (not before the entry refresh) on a
// threaded sharded pass: siblings observe the first failure through the
// shared token and the whole call lands within the terminal-status set.
TEST(CancellationTest, MidRunDeadlineOnThreadedPass) {
  xml::Tree tree = Hospital(120, 37);
  std::vector<automata::Mfa> mfas;
  for (const std::string& q : Workload()) mfas.push_back(Compile(q));
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& m : mfas) ptrs.push_back(&m);

  common::ThreadPool pool(4);
  exec::ShardedOptions options;
  options.pool = &pool;
  exec::ShardedBatchEvaluator eval(tree, ptrs, options);
  const std::vector<NodeVec> expected = eval.EvalAll(tree.root());

  EvalControl control;
  control.deadline = Deadline::After(std::chrono::microseconds(200));
  control.checkpoint_interval = 32;
  std::vector<NodeVec> results = eval.EvalAll(tree.root(), control);
  if (eval.last_status().ok()) {
    EXPECT_EQ(results, expected);  // fast machine: finished under deadline
  } else {
    EXPECT_EQ(eval.last_status().code(), StatusCode::kDeadlineExceeded);
    for (const NodeVec& a : results) EXPECT_TRUE(a.empty());
  }
}

}  // namespace
}  // namespace smoqe
