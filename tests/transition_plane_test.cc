// TransitionPlane / TransitionPlaneStore: shared compiled query state.
//
// Pins the contracts the engine/plane split relies on:
//  * engines sharing one plane answer bit-identically to solo engines with
//    private planes (answers AND per-run traversal statistics);
//  * configs_interned attributes plane insertions to the engine that caused
//    them: the sum across sharers equals the plane total, and a warm start
//    interns exactly zero;
//  * the sharded evaluator interns each configuration once per query (not
//    once per shard) through its plane store;
//  * concurrent cold-start interning from many threads is safe and still
//    bit-identical (run under TSan via the `concurrency` ctest label);
//  * the store pins MFA lifetimes (keep_alive) and soft-evicts only unused
//    planes.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "automata/compiled_mfa.h"
#include "automata/compiler.h"
#include "dtd/dtd_parser.h"
#include "exec/sharded_eval.h"
#include "gen/generic_generator.h"
#include "gen/query_generator.h"
#include "hype/hype.h"
#include "hype/transition_plane.h"
#include "xml/parser.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace smoqe::hype {
namespace {

xml::Tree TestTree(int seed) {
  auto d = dtd::ParseDtd(
      "dtd r { r -> a*, b* ; a -> t, a*, b* ; b -> t, c* ; c -> a* ; "
      "t -> #text ; }");
  EXPECT_TRUE(d.ok());
  gen::GenericParams tp;
  tp.seed = 7100 + seed;
  auto tree = gen::GenerateFromDtd(d.value(), tp);
  EXPECT_TRUE(tree.ok());
  return std::move(tree.value());
}

std::vector<automata::Mfa> TestQueries(int seed, int count) {
  gen::QueryGenParams qp;
  qp.labels = {"a", "b", "c", "t"};
  qp.text_values = {"alpha"};
  std::mt19937_64 rng(8100 + seed);
  std::vector<automata::Mfa> mfas;
  for (int i = 0; i < count; ++i) {
    mfas.push_back(automata::CompileQuery(gen::RandomQuery(qp, &rng)));
  }
  return mfas;
}

void ExpectRunStatsEqual(const EvalStats& a, const EvalStats& b) {
  EXPECT_EQ(a.elements_visited, b.elements_visited);
  EXPECT_EQ(a.cans_vertices, b.cans_vertices);
  EXPECT_EQ(a.cans_edges, b.cans_edges);
  EXPECT_EQ(a.afa_state_requests, b.afa_state_requests);
}

TEST(ChunkedStoreTest, StableAddressesAcrossGrowth) {
  internal::ChunkedStore<int> store;
  std::vector<int*> addrs;
  for (int i = 0; i < 5000; ++i) {
    int32_t id = store.Append();
    store[id] = i;
    addrs.push_back(&store[id]);
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(&store[i], addrs[i]);  // never relocated
    EXPECT_EQ(store[i], i);
  }
  EXPECT_EQ(store.size(), 5000);
}

TEST(TransitionPlaneTest, SharedPlaneMatchesSoloBitIdentically) {
  for (int round = 0; round < 3; ++round) {
    xml::Tree tree = TestTree(round);
    std::vector<automata::Mfa> mfas = TestQueries(round, 8);
    TransitionPlaneStore store(tree, nullptr);
    for (const automata::Mfa& mfa : mfas) {
      HypeOptions solo_options;
      HypeEvaluator solo(tree, mfa, solo_options);
      std::vector<xml::NodeId> want = solo.Eval(tree.root());

      std::shared_ptr<TransitionPlane> plane = store.For(&mfa);
      HypeOptions shared_options;
      shared_options.transition_plane = plane;
      HypeEvaluator first(tree, mfa, shared_options);
      HypeEvaluator second(tree, mfa, shared_options);
      EXPECT_EQ(first.Eval(tree.root()), want);
      EXPECT_EQ(second.Eval(tree.root()), want);
      ExpectRunStatsEqual(first.stats(), solo.stats());
      ExpectRunStatsEqual(second.stats(), solo.stats());

      // Attribution: sharers split the plane total between them, and the
      // second evaluator found everything warm.
      EXPECT_EQ(first.stats().configs_interned +
                    second.stats().configs_interned,
                plane->configs_interned());
      EXPECT_EQ(second.stats().configs_interned, 0);
    }
  }
}

TEST(TransitionPlaneTest, WarmStartInternsNothing) {
  xml::Tree tree = TestTree(11);
  std::vector<automata::Mfa> mfas = TestQueries(11, 4);
  TransitionPlaneStore store(tree, nullptr);
  for (const automata::Mfa& mfa : mfas) {
    std::shared_ptr<TransitionPlane> plane = store.For(&mfa);
    HypeOptions options;
    options.transition_plane = plane;
    HypeEvaluator eval(tree, mfa, options);
    std::vector<xml::NodeId> first = eval.Eval(tree.root());
    int64_t cold = eval.stats().configs_interned;
    EXPECT_EQ(eval.Eval(tree.root()), first);
    EXPECT_EQ(eval.stats().configs_interned, cold)
        << "a repeated evaluation must intern nothing";
  }
}

TEST(TransitionPlaneTest, IndexedModesShareThePlaneToo) {
  xml::Tree tree = TestTree(21);
  std::vector<automata::Mfa> mfas = TestQueries(21, 6);
  for (SubtreeLabelIndex::Mode mode :
       {SubtreeLabelIndex::Mode::kFull, SubtreeLabelIndex::Mode::kCompressed}) {
    SubtreeLabelIndex index = SubtreeLabelIndex::Build(tree, mode, 4);
    TransitionPlaneStore store(tree, &index);
    for (const automata::Mfa& mfa : mfas) {
      HypeOptions solo_options;
      solo_options.index = &index;
      HypeEvaluator solo(tree, mfa, solo_options);
      std::vector<xml::NodeId> want = solo.Eval(tree.root());

      HypeOptions shared_options;
      shared_options.index = &index;
      shared_options.transition_plane = store.For(&mfa);
      HypeEvaluator a(tree, mfa, shared_options);
      HypeEvaluator b(tree, mfa, shared_options);
      EXPECT_EQ(a.Eval(tree.root()), want);
      EXPECT_EQ(b.Eval(tree.root()), want);
      ExpectRunStatsEqual(a.stats(), solo.stats());
      ExpectRunStatsEqual(b.stats(), solo.stats());
      EXPECT_EQ(b.stats().configs_interned, 0);
    }
  }
}

TEST(TransitionPlaneTest, ShardedEvaluatorInternsOncePerQuery) {
  xml::Tree tree = TestTree(31);
  std::vector<automata::Mfa> mfas = TestQueries(31, 6);
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& m : mfas) ptrs.push_back(&m);

  // Solo references with private planes: the per-query intern totals the
  // sharded pass must not exceed (PR 4 paid them once PER SHARD).
  std::vector<std::vector<xml::NodeId>> want;
  std::vector<int64_t> solo_interned;
  for (const automata::Mfa& mfa : mfas) {
    HypeOptions options;
    options.enable_jump = false;
    HypeEvaluator solo(tree, mfa, options);
    want.push_back(solo.Eval(tree.root()));
    solo_interned.push_back(solo.stats().configs_interned);
  }

  TransitionPlaneStore store(tree, nullptr);
  exec::ShardedOptions options;
  options.plane_store = &store;
  options.num_shards = 4;
  options.enable_jump = false;
  exec::ShardedBatchEvaluator eval(tree, ptrs, options);
  std::vector<std::vector<xml::NodeId>> got = eval.EvalAll(tree.root());
  for (size_t q = 0; q < mfas.size(); ++q) {
    EXPECT_EQ(got[q], want[q]) << "query " << q;
    // One shared plane per query: the shard engines TOGETHER intern at most
    // what one solo engine does (the probe may have paid for part of it).
    EXPECT_LE(eval.merged_stats(q).configs_interned, solo_interned[q])
        << "query " << q;
    EXPECT_EQ(store.For(&mfas[q])->configs_interned(), solo_interned[q])
        << "query " << q;
  }

  // Warm start: the whole sharded pass re-runs without a single plane
  // insertion (engine counters are cumulative, so the per-query attribution
  // repeats unchanged while the plane totals stay flat).
  std::vector<int64_t> cold_merged;
  for (size_t q = 0; q < mfas.size(); ++q) {
    cold_merged.push_back(eval.merged_stats(q).configs_interned);
  }
  std::vector<std::vector<xml::NodeId>> again = eval.EvalAll(tree.root());
  for (size_t q = 0; q < mfas.size(); ++q) {
    EXPECT_EQ(again[q], want[q]);
    EXPECT_EQ(eval.merged_stats(q).configs_interned, cold_merged[q])
        << "query " << q;
    EXPECT_EQ(store.For(&mfas[q])->configs_interned(), solo_interned[q])
        << "query " << q;
  }
}

// Cold-start interning from many threads at once: every thread drives its
// own engine over the SAME shared planes. Answers must match the solo
// reference on every thread; runs TSan-clean (ctest -L concurrency).
TEST(TransitionPlaneConcurrencyTest, ConcurrentColdStartIsBitIdentical) {
  for (int round = 0; round < 2; ++round) {
    xml::Tree tree = TestTree(41 + round);
    std::vector<automata::Mfa> mfas = TestQueries(41 + round, 4);
    std::vector<std::vector<xml::NodeId>> want;
    for (const automata::Mfa& mfa : mfas) {
      HypeEvaluator solo(tree, mfa);
      want.push_back(solo.Eval(tree.root()));
    }
    TransitionPlaneStore store(tree, nullptr);
    std::vector<std::shared_ptr<TransitionPlane>> planes;
    for (const automata::Mfa& mfa : mfas) planes.push_back(store.For(&mfa));

    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    std::vector<int> failures(kThreads, 0);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (size_t q = 0; q < mfas.size(); ++q) {
          HypeOptions options;
          options.transition_plane = planes[q];
          HypeEvaluator eval(tree, mfas[q], options);
          for (int rep = 0; rep < 3; ++rep) {
            if (eval.Eval(tree.root()) != want[q]) ++failures[t];
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(failures[t], 0) << "thread " << t;
    }
    // Every insertion is attributed somewhere: plane totals stay the solo
    // totals no matter how many threads raced the cold start.
    for (size_t q = 0; q < mfas.size(); ++q) {
      HypeEvaluator solo(tree, mfas[q]);
      solo.Eval(tree.root());
      EXPECT_EQ(planes[q]->configs_interned(),
                solo.stats().configs_interned + 0)
          << "query " << q;
    }
  }
}

TEST(TransitionPlaneStoreTest, KeepAlivePinsAndEvictionSparesInUsePlanes) {
  auto t = xml::ParseXml("<a><b/><c/></a>");
  ASSERT_TRUE(t.ok());
  const xml::Tree& tree = t.value();

  TransitionPlaneStore::Options options;
  options.capacity = 1;
  TransitionPlaneStore store(tree, nullptr, options);

  auto mfa_of = [](const char* q) {
    auto parsed = xpath::ParseQuery(q);
    EXPECT_TRUE(parsed.ok());
    return std::make_shared<const automata::Mfa>(
        automata::CompileQuery(parsed.value()));
  };
  std::shared_ptr<const automata::Mfa> m1 = mfa_of("a/b");
  std::shared_ptr<const automata::Mfa> m2 = mfa_of("a/c");
  std::shared_ptr<const automata::Mfa> m3 = mfa_of("//b");

  // Hold the first plane (an engine would); drop the second immediately.
  std::shared_ptr<TransitionPlane> held = store.For(m1.get(), nullptr, m1);
  store.For(m2.get(), nullptr, m2);
  EXPECT_EQ(store.size(), 2u);  // m1 in use, m2 unused but within... capacity 1
  store.For(m3.get(), nullptr, m3);
  // m2 (unused) was evicted to make room; m1 survives because `held` pins it.
  EXPECT_LE(store.size(), 2u);
  std::shared_ptr<TransitionPlane> held_again = store.For(m1.get());
  EXPECT_EQ(held_again.get(), held.get());
}

TEST(TransitionPlaneTest, PlaneSeededFromPrebuiltCompiledMfa) {
  xml::Tree tree = TestTree(51);
  std::vector<automata::Mfa> mfas = TestQueries(51, 3);
  for (const automata::Mfa& mfa : mfas) {
    auto compiled = std::make_shared<const automata::CompiledMfa>(
        automata::CompiledMfa::Build(mfa));
    TransitionPlaneStore store(tree, nullptr);
    std::shared_ptr<TransitionPlane> plane = store.For(&mfa, compiled);
    EXPECT_EQ(&plane->compiled(), compiled.get());  // no re-flattening
    HypeOptions options;
    options.transition_plane = plane;
    HypeEvaluator eval(tree, mfa, options);
    HypeEvaluator solo(tree, mfa);
    EXPECT_EQ(eval.Eval(tree.root()), solo.Eval(tree.root()));
  }
}

}  // namespace
}  // namespace smoqe::hype
