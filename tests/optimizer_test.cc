// TrimMfa: semantics-preserving dead-state elimination.

#include <gtest/gtest.h>

#include "automata/compiler.h"
#include "automata/optimizer.h"
#include "eval/naive_evaluator.h"
#include "gen/fixtures.h"
#include "gen/generic_generator.h"
#include "gen/hospital_generator.h"
#include "gen/query_generator.h"
#include "dtd/dtd_parser.h"
#include "hype/hype.h"
#include "rewrite/rewriter.h"
#include "xml/parser.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace smoqe::automata {
namespace {

TEST(TrimTest, WellFormedAndSplitPreserved) {
  auto q = xpath::ParseQuery(gen::kQueryExample41);
  ASSERT_TRUE(q.ok());
  Mfa mfa = CompileQuery(q.value());
  TrimStats stats;
  Mfa trimmed = TrimMfa(mfa, &stats);
  EXPECT_TRUE(CheckWellFormed(trimmed).empty());
  EXPECT_TRUE(HasSplitProperty(trimmed));
  EXPECT_LE(stats.nfa_after, stats.nfa_before);
  EXPECT_LE(stats.afa_after, stats.afa_before);
}

TEST(TrimTest, RewrittenMfaShrinks) {
  // A union branch stepping to a label absent from the view leaves a product
  // state that cannot reach acceptance; the trimmer must remove it.
  view::ViewDef def = gen::HospitalView();
  auto q = xpath::ParseQuery("patient/(sibling/diagnosis | record/diagnosis)");
  ASSERT_TRUE(q.ok());
  auto mfa = rewrite::RewriteToMfa(q.value(), def);
  ASSERT_TRUE(mfa.ok());
  TrimStats stats;
  Mfa trimmed = TrimMfa(mfa.value(), &stats);
  EXPECT_LT(stats.nfa_after, stats.nfa_before);
  EXPECT_LT(trimmed.SizeMeasure(), mfa.value().SizeMeasure());
  EXPECT_TRUE(CheckWellFormed(trimmed).empty());

  // The running-example rewriting is already fully live -- the worklist
  // product only creates reachable states -- so trimming is the identity.
  auto q2 = xpath::ParseQuery(gen::kQueryExample11);
  ASSERT_TRUE(q2.ok());
  auto mfa2 = rewrite::RewriteToMfa(q2.value(), def);
  ASSERT_TRUE(mfa2.ok());
  EXPECT_LE(TrimMfa(mfa2.value()).SizeMeasure(), mfa2.value().SizeMeasure());
}

TEST(TrimTest, EmptyLanguageStillWellFormed) {
  auto q = xpath::ParseQuery(".[not(.)]");
  ASSERT_TRUE(q.ok());
  Mfa trimmed = TrimMfa(CompileQuery(q.value()));
  EXPECT_TRUE(CheckWellFormed(trimmed).empty());
  auto t = xml::ParseXml("<a><b/></a>");
  ASSERT_TRUE(t.ok());
  hype::HypeEvaluator eval(t.value(), trimmed);
  EXPECT_TRUE(eval.Eval(t.value().root()).empty());
}

TEST(TrimTest, PreservesAnswersOnPaperExamples) {
  gen::Fig4Tree fig = gen::MakeFig4Tree();
  for (const char* qs :
       {gen::kQueryExample41, "patient[record]", "//diagnosis",
        "(patient/parent)*/patient"}) {
    auto q = xpath::ParseQuery(qs);
    ASSERT_TRUE(q.ok());
    Mfa original = CompileQuery(q.value());
    Mfa trimmed = TrimMfa(original);
    hype::HypeEvaluator before(fig.tree, original);
    hype::HypeEvaluator after(fig.tree, trimmed);
    EXPECT_EQ(before.Eval(fig.tree.root()), after.Eval(fig.tree.root())) << qs;
  }
}

class TrimPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TrimPropertyTest, RandomQueriesUnchangedSemantics) {
  auto d = dtd::ParseDtd(
      "dtd r { r -> a*, b* ; a -> t, a*, b* ; b -> t, c* ; c -> a* ; "
      "t -> #text ; }");
  ASSERT_TRUE(d.ok());
  gen::GenericParams tp;
  tp.seed = 2100 + GetParam();
  auto tree = gen::GenerateFromDtd(d.value(), tp);
  ASSERT_TRUE(tree.ok());
  gen::QueryGenParams qp;
  qp.labels = {"a", "b", "c", "t"};
  qp.text_values = {"alpha"};
  std::mt19937_64 rng(3100 + GetParam());
  eval::NaiveEvaluator naive(tree.value());
  for (int i = 0; i < 20; ++i) {
    xpath::PathPtr q = gen::RandomQuery(qp, &rng);
    Mfa trimmed = TrimMfa(CompileQuery(q));
    ASSERT_TRUE(CheckWellFormed(trimmed).empty()) << xpath::ToString(q);
    hype::HypeEvaluator eval(tree.value(), trimmed);
    EXPECT_EQ(eval.Eval(tree.value().root()),
              naive.Eval(q, tree.value().root()))
        << xpath::ToString(q);
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, TrimPropertyTest, ::testing::Range(0, 4));

// Randomized optimized ≡ unoptimized property suite: the trimmed MFA must
// answer EXACTLY like the automaton it came from on every generator tree --
// compared directly against the unoptimized evaluation (not just against a
// reference evaluator), in plain and both indexed modes -- and every trim
// must preserve well-formedness and the split property (Theorem 4.1), which
// all evaluators rely on for the stratified operator fixpoint.
class TrimEquivalencePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TrimEquivalencePropertyTest, OptimizedEqualsUnoptimizedEverywhere) {
  auto d = dtd::ParseDtd(
      "dtd r { r -> a*, b* ; a -> t, a*, b* ; b -> t, c* ; c -> a* ; "
      "t -> #text ; }");
  ASSERT_TRUE(d.ok());
  gen::GenericParams tp;
  tp.seed = 5200 + GetParam();
  auto tree = gen::GenerateFromDtd(d.value(), tp);
  ASSERT_TRUE(tree.ok());
  const xml::Tree& t = tree.value();
  hype::SubtreeLabelIndex full =
      hype::SubtreeLabelIndex::Build(t, hype::SubtreeLabelIndex::Mode::kFull);
  hype::SubtreeLabelIndex compressed = hype::SubtreeLabelIndex::Build(
      t, hype::SubtreeLabelIndex::Mode::kCompressed, 4);

  gen::QueryGenParams qp;
  qp.labels = {"a", "b", "c", "t"};
  qp.text_values = {"alpha", "beta"};
  std::mt19937_64 rng(6200 + GetParam());
  for (int i = 0; i < 15; ++i) {
    xpath::PathPtr q = gen::RandomQuery(qp, &rng);
    Mfa original = CompileQuery(q);
    ASSERT_TRUE(HasSplitProperty(original)) << xpath::ToString(q);
    Mfa trimmed = TrimMfa(original);
    EXPECT_TRUE(CheckWellFormed(trimmed).empty()) << xpath::ToString(q);
    EXPECT_TRUE(HasSplitProperty(trimmed)) << xpath::ToString(q);
    EXPECT_LE(trimmed.SizeMeasure(), original.SizeMeasure());

    const hype::SubtreeLabelIndex* modes[] = {nullptr, &full, &compressed};
    for (const hype::SubtreeLabelIndex* index : modes) {
      hype::HypeOptions options;
      options.index = index;
      hype::HypeEvaluator before(t, original, options);
      hype::HypeEvaluator after(t, trimmed, options);
      EXPECT_EQ(before.Eval(t.root()), after.Eval(t.root()))
          << xpath::ToString(q) << " (index mode "
          << (index == nullptr ? "none" : (index == &full ? "full" : "compressed"))
          << ")";
    }
  }
}

TEST_P(TrimEquivalencePropertyTest, RewrittenMfasStayEquivalentAfterTrim) {
  view::ViewDef def = gen::HospitalView();
  gen::HospitalParams hp;
  hp.patients = 12;
  hp.seed = 7300 + GetParam();
  hp.heart_disease_prob = 0.4;
  xml::Tree source = gen::GenerateHospital(hp);

  gen::QueryGenParams qp;
  qp.labels = {"patient", "parent", "record", "diagnosis", "visit"};
  qp.text_values = {"heart disease"};
  std::mt19937_64 rng(8300 + GetParam());
  int compared = 0;
  for (int i = 0; i < 20; ++i) {
    xpath::PathPtr q = gen::RandomQuery(qp, &rng);
    auto mfa = rewrite::RewriteToMfa(q, def);
    if (!mfa.ok()) continue;  // e.g. not rewritable over this view
    Mfa trimmed = TrimMfa(mfa.value());
    EXPECT_TRUE(CheckWellFormed(trimmed).empty()) << xpath::ToString(q);
    EXPECT_TRUE(HasSplitProperty(trimmed)) << xpath::ToString(q);
    hype::HypeEvaluator before(source, mfa.value());
    hype::HypeEvaluator after(source, trimmed);
    EXPECT_EQ(before.Eval(source.root()), after.Eval(source.root()))
        << xpath::ToString(q);
    ++compared;
  }
  EXPECT_GT(compared, 0) << "no rewritable query in 20 draws";
}

INSTANTIATE_TEST_SUITE_P(Rounds, TrimEquivalencePropertyTest,
                         ::testing::Range(0, 4));

TEST(TrimTest, RewrittenAndTrimmedAgreeOnHospital) {
  view::ViewDef def = gen::HospitalView();
  gen::HospitalParams hp;
  hp.patients = 20;
  hp.seed = 91;
  hp.heart_disease_prob = 0.3;
  xml::Tree source = gen::GenerateHospital(hp);
  for (const char* qs :
       {gen::kQueryExample11, "//record", "patient[not(parent)]"}) {
    auto q = xpath::ParseQuery(qs);
    ASSERT_TRUE(q.ok());
    auto mfa = rewrite::RewriteToMfa(q.value(), def);
    ASSERT_TRUE(mfa.ok());
    Mfa trimmed = TrimMfa(mfa.value());
    hype::HypeEvaluator before(source, mfa.value());
    hype::HypeEvaluator after(source, trimmed);
    EXPECT_EQ(before.Eval(source.root()), after.Eval(source.root())) << qs;
  }
}

}  // namespace
}  // namespace smoqe::automata
