// exec::StandingQueryEvaluator: delta re-evaluation must be answer-for-answer
// identical to a cold full evaluation on every epoch it advances through.
//
// The randomized suite drives a hospital document through streams of mixed
// deltas (inserts of captured fragments, subtree deletes, relabels within
// the existing label universe) and checks every standing answer set against
// the NaiveEvaluator oracle on the post-edit tree after every advance --
// including filter and Kleene-star queries that exercise the non-simple
// full-reeval fallback. Dedicated cases pin the rest of the contract: the
// warm advance interns ZERO configurations (the CI counter gate), chains
// that die classify as skips, label growth forces a rebind, stale deltas
// are rejected, and a 120k-deep spine advances without recursion.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "automata/compiler.h"
#include "automata/mfa.h"
#include "eval/naive_evaluator.h"
#include "gen/hospital_generator.h"
#include "hype/hype.h"
#include "xml/plane_epoch.h"
#include "xml/tree.h"
#include "xml/tree_delta.h"
#include "xpath/parser.h"
#include "exec/standing_query.h"

namespace smoqe::exec {
namespace {

using NodeVec = std::vector<xml::NodeId>;

xml::Tree Hospital(int patients, uint64_t seed) {
  gen::HospitalParams params;
  params.patients = patients;
  params.seed = seed;
  params.heart_disease_prob = 0.3;
  return gen::GenerateHospital(params);
}

std::vector<automata::Mfa> CompileAll(const std::vector<std::string>& queries) {
  std::vector<automata::Mfa> mfas;
  mfas.reserve(queries.size());
  for (const std::string& q : queries) {
    auto parsed = xpath::ParseQuery(q);
    EXPECT_TRUE(parsed.ok()) << q << ": " << parsed.status().ToString();
    mfas.push_back(automata::CompileQuery(parsed.value()));
  }
  return mfas;
}

std::vector<const automata::Mfa*> Pointers(
    const std::vector<automata::Mfa>& mfas) {
  std::vector<const automata::Mfa*> out;
  for (const automata::Mfa& m : mfas) out.push_back(&m);
  return out;
}

NodeVec NaiveAnswers(const xml::Tree& tree, const std::string& query) {
  auto parsed = xpath::ParseQuery(query);
  EXPECT_TRUE(parsed.ok());
  eval::NaiveEvaluator naive(tree);
  return naive.Eval(parsed.value(), tree.root());
}

std::vector<xml::NodeId> ReachableElements(const xml::Tree& tree) {
  std::vector<xml::NodeId> out;
  std::vector<xml::NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    xml::NodeId n = stack.back();
    stack.pop_back();
    if (tree.is_element(n)) out.push_back(n);
    for (xml::NodeId c = tree.first_child(n); c != xml::kNullNode;
         c = tree.next_sibling(c)) {
      stack.push_back(c);
    }
  }
  return out;
}

xml::NodeId FindByLabel(const xml::Tree& tree, const std::string& label) {
  for (xml::NodeId n : ReachableElements(tree)) {
    if (tree.label_name(n) == label) return n;
  }
  return xml::kNullNode;
}

// Random ops confined to the document's existing label universe (relabels
// reuse hospital labels; inserted fragments are captured from the tree
// itself), so no advance in the stream triggers a rebind.
xml::TreeDelta RandomDelta(const xml::Tree& tree, uint64_t version,
                           int num_ops, std::mt19937_64& rng) {
  static const char* const kRelabels[] = {"patient", "visit", "treatment",
                                          "test", "medication"};
  xml::Tree scratch = tree;
  xml::TreeDelta delta(version);
  for (int i = 0; i < num_ops; ++i) {
    std::vector<xml::NodeId> elements = ReachableElements(scratch);
    const int kind = static_cast<int>(rng() % 3);
    xml::TreeDelta step(0);
    if (kind == 0 && elements.size() > 10) {
      xml::NodeId victim = elements[1 + rng() % (elements.size() - 1)];
      delta.AddDelete(victim);
      step.AddDelete(victim);
    } else if (kind == 1) {
      // Move a copy of a small existing subtree somewhere else.
      xml::NodeId source = xml::kNullNode;
      for (int attempt = 0; attempt < 20; ++attempt) {
        xml::NodeId candidate = elements[rng() % elements.size()];
        if (scratch.CountSubtreeElements(candidate) <= 20) {
          source = candidate;
          break;
        }
      }
      if (source == xml::kNullNode) source = elements.back();
      xml::Fragment fragment = xml::Fragment::Capture(scratch, source);
      xml::NodeId parent = elements[rng() % elements.size()];
      const int32_t slot = static_cast<int32_t>(rng() % 4);
      delta.AddInsert(parent, slot, fragment);
      step.AddInsert(parent, slot, std::move(fragment));
    } else {
      xml::NodeId node = elements[rng() % elements.size()];
      const char* label = kRelabels[rng() % 5];
      delta.AddRelabel(node, label);
      step.AddRelabel(node, label);
    }
    EXPECT_TRUE(step.ApplyTo(&scratch).ok());
  }
  return delta;
}

const std::vector<std::string>& Workload() {
  static const std::vector<std::string> queries = {
      "department/patient/pname",
      "//diagnosis",
      "department/patient[visit/treatment/medication]",
      "department/patient/(parent/patient)*"
      "[visit/treatment/medication/diagnosis/text() = 'heart disease']",
      "//treatment[medication and not(test)]",
      "department/patient[not(visit/treatment/test)]",
      "(department)*/patient/sibling",
      "visit",  // dead below the root: exercises the skip classification
  };
  return queries;
}

TEST(StandingQueryTest, RandomizedAdvanceMatchesColdEval) {
  const std::vector<std::string>& queries = Workload();
  std::vector<automata::Mfa> mfas = CompileAll(queries);
  xml::EpochPublisher publisher(Hospital(8, 13));
  StandingQueryEvaluator standing(publisher.Snapshot(), Pointers(mfas));

  std::mt19937_64 rng(13);
  for (int step = 0; step < 25; ++step) {
    xml::PlaneEpoch before = publisher.Snapshot();
    xml::TreeDelta delta =
        RandomDelta(*before.tree, before.version, 1 + step % 3, rng);
    ASSERT_TRUE(publisher.Apply(delta).ok()) << "step " << step;
    xml::PlaneEpoch after = publisher.Snapshot();

    AdvanceStats stats;
    ASSERT_TRUE(standing.Advance(after, delta, &stats).ok()) << "step " << step;
    EXPECT_FALSE(stats.rebound) << "step " << step
                                << ": in-universe edits must not rebind";
    EXPECT_EQ(standing.version(), after.version);
    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_EQ(standing.answers(q), NaiveAnswers(*after.tree, queries[q]))
          << "step " << step << " query " << queries[q];
    }
  }
}

TEST(StandingQueryTest, WarmAdvanceInternsZeroConfigs) {
  // Relabel the same node back and forth: after one round trip every
  // configuration either shape needs is interned, so the third advance --
  // a shape already seen -- must hit the shared planes exclusively. This is
  // the property the bench_mutation counter gate enforces in CI.
  const std::vector<std::string>& queries = Workload();
  std::vector<automata::Mfa> mfas = CompileAll(queries);
  xml::EpochPublisher publisher(Hospital(6, 29));
  StandingQueryEvaluator standing(publisher.Snapshot(), Pointers(mfas));

  const xml::NodeId target = FindByLabel(*publisher.Snapshot().tree, "test");
  ASSERT_NE(target, xml::kNullNode);
  const char* const labels[] = {"medication", "test", "medication"};
  AdvanceStats stats;
  for (int round = 0; round < 3; ++round) {
    xml::TreeDelta delta(publisher.version());
    delta.AddRelabel(target, labels[round]);
    ASSERT_TRUE(publisher.Apply(delta).ok());
    xml::PlaneEpoch after = publisher.Snapshot();
    ASSERT_TRUE(standing.Advance(after, delta, &stats).ok());
    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_EQ(standing.answers(q), NaiveAnswers(*after.tree, queries[q]))
          << "round " << round << " query " << queries[q];
    }
  }
  EXPECT_EQ(stats.configs_interned, 0)
      << "an advance over a previously-seen document shape interned "
         "configurations; the warm-path contract is broken";
}

TEST(StandingQueryTest, DeadChainClassifiesAsSkip) {
  std::vector<std::string> queries = {"visit", "department/patient/pname"};
  std::vector<automata::Mfa> mfas = CompileAll(queries);
  xml::EpochPublisher publisher(Hospital(4, 17));
  StandingQueryEvaluator standing(publisher.Snapshot(), Pointers(mfas));
  EXPECT_TRUE(standing.answers(0).empty());

  // Edit deep inside a department: the chain to the region passes through
  // a `department` edge the `visit` query cannot take.
  const xml::NodeId pname = FindByLabel(*publisher.Snapshot().tree, "pname");
  ASSERT_NE(pname, xml::kNullNode);
  xml::TreeDelta delta(0);
  delta.AddRelabel(pname, "test");
  ASSERT_TRUE(publisher.Apply(delta).ok());
  AdvanceStats stats;
  ASSERT_TRUE(standing.Advance(publisher.Snapshot(), delta, &stats).ok());
  EXPECT_GE(stats.queries_skipped, 1);
  EXPECT_TRUE(standing.answers(0).empty());
  EXPECT_EQ(standing.answers(1),
            NaiveAnswers(*publisher.Snapshot().tree, queries[1]));
}

TEST(StandingQueryTest, LabelGrowthRebindsAndStaysCorrect) {
  std::vector<std::string> queries = {"department/patient/pname",
                                      "//audit_marker"};
  std::vector<automata::Mfa> mfas = CompileAll(queries);
  xml::EpochPublisher publisher(Hospital(4, 19));
  StandingQueryEvaluator standing(publisher.Snapshot(), Pointers(mfas));
  EXPECT_TRUE(standing.answers(1).empty());

  const xml::NodeId pname = FindByLabel(*publisher.Snapshot().tree, "pname");
  ASSERT_NE(pname, xml::kNullNode);
  xml::TreeDelta delta(0);
  delta.AddRelabel(pname, "audit_marker");  // brand-new label
  ASSERT_TRUE(publisher.Apply(delta).ok());
  AdvanceStats stats;
  ASSERT_TRUE(standing.Advance(publisher.Snapshot(), delta, &stats).ok());
  EXPECT_TRUE(stats.rebound);
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(standing.answers(q),
              NaiveAnswers(*publisher.Snapshot().tree, queries[q]));
  }
  EXPECT_EQ(standing.answers(1).size(), 1u);
}

TEST(StandingQueryTest, RejectsDisconnectedDelta) {
  std::vector<std::string> queries = {"department"};
  std::vector<automata::Mfa> mfas = CompileAll(queries);
  xml::EpochPublisher publisher(Hospital(2, 23));
  StandingQueryEvaluator standing(publisher.Snapshot(), Pointers(mfas));

  xml::TreeDelta wrong(7);  // does not connect version 0 to anything current
  Status status = standing.Advance(publisher.Snapshot(), wrong);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(standing.version(), 0u);
}

TEST(StandingQueryTest, DeepSpineAdvance) {
  // 120k-deep spine: LCA/anchor/chain walks and the subtree splice must all
  // be iterative. The oracle is a cold (iterative) HypeEvaluator, not the
  // recursive naive evaluator.
  constexpr int kDepth = 120000;
  const char* const spine[] = {"a", "b", "c"};
  xml::Tree tree;
  xml::NodeId n = tree.AddRoot("a");
  for (int i = 1; i < kDepth; ++i) n = tree.AddElement(n, spine[i % 3]);
  const xml::NodeId bottom = n;

  std::vector<std::string> queries = {"//b", "//b[c]", "(a/b/c)*/a"};
  std::vector<automata::Mfa> mfas = CompileAll(queries);
  xml::EpochPublisher publisher(std::move(tree));
  StandingQueryEvaluator standing(publisher.Snapshot(), Pointers(mfas));

  // Relabel near the bottom, then graft a small fragment there.
  xml::TreeDelta delta(0);
  delta.AddRelabel(bottom, "a");
  {
    xml::Tree scratch;
    scratch.AddRoot("b");
    scratch.AddElement(scratch.root(), "c");
    delta.AddInsert(bottom, 0, xml::Fragment::Capture(scratch, scratch.root()));
  }
  ASSERT_TRUE(publisher.Apply(delta).ok());
  xml::PlaneEpoch after = publisher.Snapshot();
  ASSERT_TRUE(standing.Advance(after, delta).ok());

  for (size_t q = 0; q < queries.size(); ++q) {
    hype::HypeEvaluator cold(*after.tree, mfas[q]);
    ASSERT_EQ(standing.answers(q), cold.Eval(after.tree->root()))
        << "query " << queries[q];
  }
}

}  // namespace
}  // namespace smoqe::exec
