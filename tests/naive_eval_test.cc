// Semantics tests for the reference evaluator, including the paper's worked
// examples. Every other engine is later tested against this one.

#include <gtest/gtest.h>

#include "eval/naive_evaluator.h"
#include "gen/fixtures.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace smoqe::eval {
namespace {

xml::Tree Doc(const char* text) {
  auto t = xml::ParseXml(text);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return t.take();
}

NodeSet EvalQ(const xml::Tree& tree, std::string_view query) {
  auto q = xpath::ParseQuery(query);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return NaiveEvaluator(tree).Eval(q.value(), tree.root());
}

std::vector<std::string> Labels(const xml::Tree& tree, const NodeSet& nodes) {
  std::vector<std::string> out;
  for (xml::NodeId n : nodes) out.push_back(tree.label_name(n));
  return out;
}

TEST(NaiveEvalTest, SelfAndChild) {
  xml::Tree t = Doc("<a><b/><b/><c/></a>");
  EXPECT_EQ(EvalQ(t, ".").size(), 1u);
  EXPECT_EQ(EvalQ(t, ".")[0], t.root());
  EXPECT_EQ(EvalQ(t, "b").size(), 2u);
  EXPECT_EQ(EvalQ(t, "c").size(), 1u);
  EXPECT_EQ(EvalQ(t, "d").size(), 0u);
}

TEST(NaiveEvalTest, WildcardSelectsAllElementChildren) {
  xml::Tree t = Doc("<a><b/>text<c/></a>");
  EXPECT_EQ(EvalQ(t, "*").size(), 2u);
}

TEST(NaiveEvalTest, SeqComposition) {
  xml::Tree t = Doc("<a><b><c/></b><b><d/></b></a>");
  EXPECT_EQ(Labels(t, EvalQ(t, "b/c")), std::vector<std::string>{"c"});
  EXPECT_EQ(EvalQ(t, "b/*").size(), 2u);
}

TEST(NaiveEvalTest, UnionDeduplicates) {
  xml::Tree t = Doc("<a><b/><c/></a>");
  EXPECT_EQ(EvalQ(t, "b | c | b").size(), 2u);
  EXPECT_EQ(EvalQ(t, "* | b").size(), 2u);
}

TEST(NaiveEvalTest, DescendantOrSelf) {
  xml::Tree t = Doc("<a><b><c><b/></c></b></a>");
  // //b finds both b's.
  EXPECT_EQ(EvalQ(t, "//b").size(), 2u);
  // a itself is not a child of the context (context = root 'a').
  EXPECT_EQ(EvalQ(t, "//a").size(), 0u);
  // .// includes self.
  NodeSet all = EvalQ(t, ".//.");
  EXPECT_EQ(all.size(), 4u);
}

TEST(NaiveEvalTest, KleeneStarClosure) {
  xml::Tree t = Doc("<a><a><a><b/></a></a></a>");
  // a* from root: root (0 steps), child, grandchild.
  EXPECT_EQ(EvalQ(t, "a*").size(), 3u);
  EXPECT_EQ(EvalQ(t, "a*/b").size(), 1u);
  // (a/a)* : even-length chains only: root and grandchild.
  EXPECT_EQ(EvalQ(t, "(a/a)*").size(), 2u);
}

TEST(NaiveEvalTest, StarOfUnion) {
  xml::Tree t = Doc("<r><a><b><a/></b></a></r>");
  EXPECT_EQ(EvalQ(t, "(a | b)*").size(), 4u);  // r, a, b, inner a
}

TEST(NaiveEvalTest, FilterExistence) {
  xml::Tree t = Doc("<r><a><x/></a><a/><a><y/></a></r>");
  EXPECT_EQ(EvalQ(t, "a[x]").size(), 1u);
  EXPECT_EQ(EvalQ(t, "a[x | y]").size(), 2u);
  EXPECT_EQ(EvalQ(t, "a[z]").size(), 0u);
  EXPECT_EQ(EvalQ(t, "a[.]").size(), 3u);  // self always exists
}

TEST(NaiveEvalTest, FilterTextEquals) {
  xml::Tree t = Doc("<r><a><d>x</d></a><a><d>y</d></a></r>");
  EXPECT_EQ(EvalQ(t, "a[d/text() = 'x']").size(), 1u);
  EXPECT_EQ(EvalQ(t, "a[d/text() = 'z']").size(), 0u);
  EXPECT_EQ(EvalQ(t, "a/d[text() = 'y']").size(), 1u);
}

TEST(NaiveEvalTest, FilterBooleans) {
  xml::Tree t = Doc("<r><a><x/><y/></a><a><x/></a><a><y/></a><a/></r>");
  EXPECT_EQ(EvalQ(t, "a[x and y]").size(), 1u);
  EXPECT_EQ(EvalQ(t, "a[x or y]").size(), 3u);
  EXPECT_EQ(EvalQ(t, "a[not(x)]").size(), 2u);
  EXPECT_EQ(EvalQ(t, "a[not(x) and not(y)]").size(), 1u);
  EXPECT_EQ(EvalQ(t, "a[x and not(y)]").size(), 1u);
}

TEST(NaiveEvalTest, FilterPosition) {
  xml::Tree t = Doc("<r><a/><a/><a/></r>");
  NodeSet second = EvalQ(t, "a[position() = 2]");
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(t.child_index(second[0]), 2);
}

TEST(NaiveEvalTest, NestedFilters) {
  xml::Tree t = Doc("<r><a><b><c/></b></a><a><b/></a></r>");
  EXPECT_EQ(EvalQ(t, "a[b[c]]").size(), 1u);
  EXPECT_EQ(EvalQ(t, "a[b[not(c)]]").size(), 1u);
}

TEST(NaiveEvalTest, FilterInsideStar) {
  // Chain of a's where only some have a marker; (a[m])* walks only marked.
  xml::Tree t = Doc("<r><a><m/><a><m/><a><b/></a></a></a></r>");
  // (a[m])* from r: r, first a (has m), second a (has m); third a lacks m.
  EXPECT_EQ(EvalQ(t, "(a[m])*").size(), 3u);
  EXPECT_EQ(EvalQ(t, "(a[m])*/a[b]").size(), 1u);
}

TEST(NaiveEvalTest, EmptyQuerySelectsNothing) {
  xml::Tree t = Doc("<r><a/></r>");
  EXPECT_EQ(EvalQ(t, ".[not(.)]").size(), 0u);
}

TEST(NaiveEvalTest, EvalAtNonRootContext) {
  xml::Tree t = Doc("<r><a><b/></a><b/></r>");
  NaiveEvaluator eval(t);
  auto q = xpath::ParseQuery("b");
  ASSERT_TRUE(q.ok());
  xml::NodeId a = t.first_child(t.root());
  NodeSet from_a = eval.Eval(q.value(), a);
  ASSERT_EQ(from_a.size(), 1u);
  EXPECT_EQ(t.parent(from_a[0]), a);
}

TEST(NaiveEvalTest, EvalSetDeduplicatesAcrossContexts) {
  xml::Tree t = Doc("<r><a><c/></a><a><c/></a></r>");
  NaiveEvaluator eval(t);
  auto q = xpath::ParseQuery("c");
  ASSERT_TRUE(q.ok());
  NodeSet contexts = eval.Eval(xpath::ParseQuery("a").value(), t.root());
  ASSERT_EQ(contexts.size(), 2u);
  EXPECT_EQ(eval.EvalSet(q.value(), contexts).size(), 2u);
}

// ---- The paper's worked examples ----

TEST(NaiveEvalTest, Example41OnFig4Tree) {
  gen::Fig4Tree fig = gen::MakeFig4Tree();
  auto q = xpath::ParseQuery(gen::kQueryExample41);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  NodeSet answers = NaiveEvaluator(fig.tree).Eval(q.value(), fig.tree.root());
  // Section 6 / Fig. 7: "nodes 9 and 11 ... are in the answer".
  NodeSet expected = {fig.ids[9], fig.ids[11]};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(answers, expected);
}

TEST(NaiveEvalTest, Example41FilterRejectsNode2) {
  // AFA0 at node 2 evaluates to false (its diagnoses are lung/brain disease).
  gen::Fig4Tree fig = gen::MakeFig4Tree();
  auto f = xpath::ParseFilterExpr(
      "(parent/patient)*/record/diagnosis[text() = 'heart disease']");
  ASSERT_TRUE(f.ok());
  NaiveEvaluator eval(fig.tree);
  EXPECT_FALSE(eval.EvalFilter(f.value(), fig.ids[2]));
  EXPECT_TRUE(eval.EvalFilter(f.value(), fig.ids[9]));
  EXPECT_TRUE(eval.EvalFilter(f.value(), fig.ids[11]));
  EXPECT_FALSE(eval.EvalFilter(f.value(), fig.ids[4]));
}

TEST(NaiveEvalTest, Example21SkipsAGeneration) {
  // Build a source-like chain where the disease skips generations:
  // p0 (heart) -> parent p1 (no) -> parent p2 (heart) -> parent p3 (no) ->
  // parent p4 (heart). Query of Example 2.1 must select p0's pname.
  xml::Tree t = Doc(
      "<hospital><department><name>d</name>"
      "<address><street>s</street><city>c</city><zip>z</zip></address>"
      "<patient><pname>p0</pname>"
      "<address><street>s</street><city>c</city><zip>z</zip></address>"
      "<visit><date>x</date><treatment><medication><type>t</type>"
      "<diagnosis>heart disease</diagnosis></medication></treatment>"
      "<doctor><dname>n</dname><specialty>s</specialty></doctor></visit>"
      "<parent><patient><pname>p1</pname>"
      "<address><street>s</street><city>c</city><zip>z</zip></address>"
      "<visit><date>x</date><treatment><medication><type>t</type>"
      "<diagnosis>influenza</diagnosis></medication></treatment>"
      "<doctor><dname>n</dname><specialty>s</specialty></doctor></visit>"
      "<parent><patient><pname>p2</pname>"
      "<address><street>s</street><city>c</city><zip>z</zip></address>"
      "<visit><date>x</date><treatment><medication><type>t</type>"
      "<diagnosis>heart disease</diagnosis></medication></treatment>"
      "<doctor><dname>n</dname><specialty>s</specialty></doctor></visit>"
      "</patient></parent></patient></parent>"
      "</patient></department></hospital>");
  auto q = xpath::ParseQuery(gen::kQueryExample21);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  NodeSet answers = NaiveEvaluator(t).Eval(q.value(), t.root());
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(t.TextOf(answers[0]), "p0");
}

}  // namespace
}  // namespace smoqe::eval
