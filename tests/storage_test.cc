// The storage layer (PR 9): checksummed snapshots, the write-ahead delta
// log, and recovery.
//
// Property families:
//  * Wire forms round-trip BIT-EXACTLY: a decoded snapshot's tree is
//    id-for-id the encoded one (WAL deltas address NodeIds, so replay after
//    recovery depends on it), its plane SameAs the original, and a
//    serialized TreeDelta re-applies identically.
//  * Recovery: WAL replay from a snapshot reaches the last durable version;
//    torn/corrupt tails are truncated, not fatal; a corrupt newest snapshot
//    falls back to the previous one; Fsck predicts exactly what Recover
//    does, without mutating anything.
//  * The durable store keeps its invariants under injected failures: stale
//    deltas and failed publishes leave NO durable record for an unpublished
//    version; WAL-level failures wedge the store but never the disk;
//    compaction failures are survivable.
//  * Corruption fuzz: thousands of randomized bit flips / truncations over
//    snapshot files, WAL files, and delta payloads decode to a Status or a
//    value -- never a crash (the ASan CI job gives this teeth).
//  * The durable QueryService serves the recovered document and applies
//    writes through the WAL-before-publish path.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "exec/query_service.h"
#include "storage/crc32c.h"
#include "storage/durable_epoch.h"
#include "storage/fs.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "xml/doc_plane.h"
#include "xml/tree.h"
#include "xml/tree_delta.h"
#include "xml/writer.h"

namespace smoqe {
namespace {

using storage::DurableEpochStore;
using storage::StorageOptions;
using xml::Fragment;
using xml::NodeId;
using xml::Tree;
using xml::TreeDelta;

const char* const kLabels[] = {"a", "b", "c", "d", "e"};

// Reachable elements in document order (iterative; excludes tombstones).
std::vector<NodeId> ReachableElements(const Tree& tree) {
  std::vector<NodeId> out;
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    if (tree.is_element(n)) out.push_back(n);
    for (NodeId c = tree.first_child(n); c != xml::kNullNode;
         c = tree.next_sibling(c)) {
      stack.push_back(c);
    }
  }
  return out;
}

Tree RandomTree(int num_elements, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Tree tree;
  std::vector<NodeId> elements = {tree.AddRoot("a")};
  for (int i = 1; i < num_elements; ++i) {
    NodeId parent = elements[rng() % elements.size()];
    elements.push_back(tree.AddElement(parent, kLabels[rng() % 5]));
    if (coin(rng) < 0.2) {
      tree.AddText(elements.back(), coin(rng) < 0.5 ? "alpha" : "beta");
    }
  }
  return tree;
}

Fragment RandomFragment(std::mt19937_64& rng, int max_elements) {
  Tree scratch;
  std::vector<NodeId> elements = {scratch.AddRoot(kLabels[rng() % 5])};
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  const int n = 1 + static_cast<int>(rng() % max_elements);
  for (int i = 1; i < n; ++i) {
    NodeId parent = elements[rng() % elements.size()];
    elements.push_back(scratch.AddElement(parent, kLabels[rng() % 5]));
    if (coin(rng) < 0.3) scratch.AddText(elements.back(), "gamma");
  }
  return Fragment::Capture(scratch, scratch.root());
}

// A delta of `num_ops` random edits against `tree` at `version`, generated
// on a scratch copy so each op targets a node live at its point in the
// sequence (same discipline as the tree_delta suite).
TreeDelta RandomDelta(const Tree& tree, uint64_t version, int num_ops,
                      std::mt19937_64& rng) {
  Tree scratch = tree;
  TreeDelta delta(version);
  for (int i = 0; i < num_ops; ++i) {
    std::vector<NodeId> elements = ReachableElements(scratch);
    const int kind = static_cast<int>(rng() % 3);
    if (kind == 0 && elements.size() > 1) {
      NodeId victim = elements[1 + rng() % (elements.size() - 1)];
      delta.AddDelete(victim);
      TreeDelta step(0);
      step.AddDelete(victim);
      EXPECT_TRUE(step.ApplyTo(&scratch).ok()) << "scratch delete";
    } else if (kind == 1) {
      NodeId parent = elements[rng() % elements.size()];
      const int32_t slot = static_cast<int32_t>(rng() % 4);
      Fragment fragment = RandomFragment(rng, 6);
      delta.AddInsert(parent, slot, fragment);
      TreeDelta step(0);
      step.AddInsert(parent, slot, std::move(fragment));
      EXPECT_TRUE(step.ApplyTo(&scratch).ok()) << "scratch insert";
    } else {
      NodeId node = elements[rng() % elements.size()];
      const char* label = kLabels[rng() % 5];
      delta.AddRelabel(node, label);
      TreeDelta step(0);
      step.AddRelabel(node, label);
      EXPECT_TRUE(step.ApplyTo(&scratch).ok()) << "scratch relabel";
    }
  }
  return delta;
}

// A per-test scratch directory under the gtest temp root, emptied on entry
// so reruns start clean.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "smoqe_storage_" + name;
  EXPECT_TRUE(storage::EnsureDir(dir).ok());
  auto names = storage::ListDir(dir);
  if (names.ok()) {
    for (const std::string& f : names.value()) {
      (void)storage::RemoveFile(dir + "/" + f);
    }
  }
  return dir;
}

uint64_t FileSize(const std::string& path) {
  auto bytes = storage::ReadFile(path);
  return bytes.ok() ? bytes.value().size() : 0;
}

void FlipByte(const std::string& dir, const std::string& name, size_t pos) {
  auto bytes = storage::ReadFile(dir + "/" + name);
  ASSERT_TRUE(bytes.ok()) << bytes.status().message();
  std::string mutated = bytes.value();
  ASSERT_FALSE(mutated.empty());
  mutated[pos % mutated.size()] ^= 0x40;
  ASSERT_TRUE(storage::WriteFileAtomic(dir, name, mutated).ok());
}

void TruncateTo(const std::string& dir, const std::string& name, size_t len) {
  auto bytes = storage::ReadFile(dir + "/" + name);
  ASSERT_TRUE(bytes.ok()) << bytes.status().message();
  std::string mutated = bytes.value().substr(0, len);
  ASSERT_TRUE(storage::WriteFileAtomic(dir, name, mutated).ok());
}

// ------------------------------------------------------------- crc32c --

TEST(Crc32cTest, KnownVectorsAndIncrementalExtend) {
  // The canonical CRC-32C check value (RFC 3720 appendix B / "123456789").
  EXPECT_EQ(storage::Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(storage::Crc32c(""), 0u);
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = storage::Crc32cExtend(0, data.data(), split);
    crc = storage::Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, storage::Crc32c(data)) << "split " << split;
  }
}

// ---------------------------------------------------- delta wire form --

TEST(DeltaWireTest, SerializeDeserializeReappliesIdentically) {
  std::mt19937_64 rng(0xD417A);
  for (int round = 0; round < 40; ++round) {
    Tree tree = RandomTree(20 + round % 30, 1000 + round);
    TreeDelta delta = RandomDelta(tree, round, 1 + round % 4, rng);

    std::string wire;
    delta.Serialize(&wire);
    auto decoded = TreeDelta::Deserialize(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded.value().from_version(), delta.from_version());
    EXPECT_EQ(decoded.value().to_version(), delta.to_version());
    ASSERT_EQ(decoded.value().ops().size(), delta.ops().size());

    Tree a = tree;
    Tree b = tree;
    ASSERT_TRUE(delta.ApplyTo(&a).ok());
    ASSERT_TRUE(decoded.value().ApplyTo(&b).ok());
    EXPECT_EQ(xml::WriteXml(a), xml::WriteXml(b)) << "round " << round;
  }
}

TEST(DeltaWireTest, TruncationsAndGarbageYieldStatusNotCrash) {
  std::mt19937_64 rng(0xBAD);
  Tree tree = RandomTree(30, 7);
  TreeDelta delta = RandomDelta(tree, 3, 4, rng);
  std::string wire;
  delta.Serialize(&wire);
  for (size_t len = 0; len < wire.size(); ++len) {
    auto decoded = TreeDelta::Deserialize(std::string_view(wire).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
  }
  // Trailing garbage is rejected too: a record's length frame is exact.
  auto padded = TreeDelta::Deserialize(wire + std::string(3, '\0'));
  EXPECT_FALSE(padded.ok());
}

// ----------------------------------------------------------- snapshot --

TEST(SnapshotTest, RoundTripIsIdForIdExact) {
  std::mt19937_64 rng(0x5A9);
  for (int round = 0; round < 10; ++round) {
    Tree tree = RandomTree(40, 2000 + round);
    // Edit first so the arena holds tombstones: the codec must preserve
    // detached slots, not just the reachable shape.
    TreeDelta edits = RandomDelta(tree, 0, 3, rng);
    ASSERT_TRUE(edits.ApplyTo(&tree).ok());
    xml::DocPlane plane = xml::DocPlane::Build(tree);
    const uint64_t version = 17 + round;

    const std::string bytes = storage::EncodeSnapshotFile(tree, plane, version);
    auto decoded = storage::DecodeSnapshotFile(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded.value().version, version);
    EXPECT_EQ(decoded.value().tree.size(), tree.size());
    EXPECT_EQ(xml::WriteXml(decoded.value().tree), xml::WriteXml(tree));
    EXPECT_TRUE(decoded.value().plane.SameAs(plane));

    // The id-for-id property the WAL depends on: one more delta, recorded
    // against the original, applies to the decoded tree with an identical
    // outcome (targets are NodeIds; fresh inserts allocate at the arena
    // end, so any arena divergence would surface here).
    TreeDelta probe = RandomDelta(tree, 1, 2, rng);
    Tree original_after = tree;
    ASSERT_TRUE(probe.ApplyTo(&original_after).ok());
    ASSERT_TRUE(probe.ApplyTo(&decoded.value().tree).ok());
    EXPECT_EQ(xml::WriteXml(decoded.value().tree),
              xml::WriteXml(original_after));
  }
}

TEST(SnapshotTest, ManifestTracksNewestAndListSortsNewestFirst) {
  const std::string dir = FreshDir("manifest");
  Tree tree = RandomTree(15, 3);
  xml::DocPlane plane = xml::DocPlane::Build(tree);
  for (uint64_t v : {5u, 1u, 9u}) {
    ASSERT_TRUE(storage::WriteSnapshot(dir, tree, plane, v).ok());
  }
  auto manifest = storage::ReadManifest(dir);
  ASSERT_TRUE(manifest.ok()) << manifest.status().message();
  EXPECT_EQ(manifest.value().version, 9u);
  EXPECT_EQ(manifest.value().snapshot_file, storage::SnapshotFileName(9));

  auto list = storage::ListSnapshots(dir);
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list.value().size(), 3u);
  EXPECT_EQ(list.value()[0].first, 9u);
  EXPECT_EQ(list.value()[1].first, 5u);
  EXPECT_EQ(list.value()[2].first, 1u);
}

// ---------------------------------------------------------------- wal --

TEST(WalTest, AppendScanRoundTripAndTornTail) {
  const std::string dir = FreshDir("wal");
  const std::string path = dir + "/" + storage::kWalName;
  std::mt19937_64 rng(11);
  Tree tree = RandomTree(25, 11);

  std::vector<TreeDelta> deltas;
  {
    auto wal = storage::WalWriter::Open(path, 0);
    ASSERT_TRUE(wal.ok()) << wal.status().message();
    Tree current = tree;
    for (uint64_t v = 0; v < 3; ++v) {
      TreeDelta delta = RandomDelta(current, v, 2, rng);
      ASSERT_TRUE(wal.value()->Append(delta).ok());
      ASSERT_TRUE(wal.value()->Sync().ok());
      ASSERT_TRUE(delta.ApplyTo(&current).ok());
      deltas.push_back(std::move(delta));
    }
  }

  auto scan = storage::ScanWal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.value().records.size(), 3u);
  EXPECT_FALSE(scan.value().tail_corrupt());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(scan.value().records[i].from_version, i);
    auto decoded = TreeDelta::Deserialize(scan.value().records[i].payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().to_version(), deltas[i].to_version());
  }

  // Tear the last record: the scan keeps the intact prefix and reports the
  // tail, and a writer re-opened at valid_end drops the tear.
  const uint64_t full = scan.value().file_size;
  TruncateTo(dir, storage::kWalName, full - 5);
  auto torn = storage::ScanWal(path);
  ASSERT_TRUE(torn.ok());
  EXPECT_EQ(torn.value().records.size(), 2u);
  EXPECT_TRUE(torn.value().tail_corrupt());
  EXPECT_FALSE(torn.value().tail_reason.empty());

  // A flipped bit mid-record fails the CRC, same containment.
  TruncateTo(dir, storage::kWalName, full - 5);
  FlipByte(dir, storage::kWalName, static_cast<size_t>(
                                       torn.value().records[1].offset + 20));
  auto flipped = storage::ScanWal(path);
  ASSERT_TRUE(flipped.ok());
  EXPECT_EQ(flipped.value().records.size(), 1u);
  EXPECT_TRUE(flipped.value().tail_corrupt());
}

// ----------------------------------------------------------- recovery --

// A directory with snapshot v0 and a 3-record WAL, the last record torn.
// Returns the tree as of version 2 (the last intact record's outcome).
Tree BuildTornDir(const std::string& dir, uint64_t seed) {
  Tree tree = RandomTree(30, seed);
  xml::DocPlane plane = xml::DocPlane::Build(tree);
  EXPECT_TRUE(storage::WriteSnapshot(dir, tree, plane, 0).ok());
  const std::string path = dir + "/" + storage::kWalName;
  std::mt19937_64 rng(seed);
  auto wal = storage::WalWriter::Open(path, 0);
  EXPECT_TRUE(wal.ok());
  Tree current = tree;
  Tree after_two;
  for (uint64_t v = 0; v < 3; ++v) {
    TreeDelta delta = RandomDelta(current, v, 2, rng);
    EXPECT_TRUE(wal.value()->Append(delta).ok());
    EXPECT_TRUE(delta.ApplyTo(&current).ok());
    if (v == 1) after_two = current;
  }
  wal.value()->Sync();
  wal.value().reset();
  auto scan = storage::ScanWal(path);
  EXPECT_TRUE(scan.ok());
  // Drop the last 7 bytes: the third record is torn mid-payload.
  std::string bytes = storage::ReadFile(path).value();
  EXPECT_TRUE(storage::WriteFileAtomic(dir, storage::kWalName,
                                       bytes.substr(0, bytes.size() - 7))
                  .ok());
  return after_two;
}

TEST(RecoveryTest, ReplaysWalTruncatesTornTailAndFsckAgrees) {
  const std::string dir = FreshDir("recover_torn");
  Tree expected = BuildTornDir(dir, 42);
  const uint64_t pre_size = FileSize(dir + "/" + storage::kWalName);

  // Fsck first: it must predict the recovery WITHOUT changing the disk.
  storage::FsckReport fsck = storage::Fsck(dir);
  EXPECT_TRUE(fsck.ok);
  EXPECT_EQ(FileSize(dir + "/" + storage::kWalName), pre_size);
  EXPECT_FALSE(fsck.notes.empty());

  storage::RecoveryReport report;
  auto epoch = storage::Recover(dir, &report);
  ASSERT_TRUE(epoch.ok()) << epoch.status().message();
  EXPECT_EQ(report.recovered_version, 2u);
  EXPECT_EQ(report.snapshot_version, 0u);
  EXPECT_EQ(report.records_replayed, 2);
  EXPECT_GT(report.bytes_truncated, 0);
  EXPECT_EQ(report.snapshots_skipped, 0);

  // smoqe_fsck agreement: field for field.
  EXPECT_EQ(fsck.report.recovered_version, report.recovered_version);
  EXPECT_EQ(fsck.report.snapshot_version, report.snapshot_version);
  EXPECT_EQ(fsck.report.records_replayed, report.records_replayed);
  EXPECT_EQ(fsck.report.bytes_truncated, report.bytes_truncated);
  EXPECT_EQ(fsck.report.snapshots_skipped, report.snapshots_skipped);

  EXPECT_EQ(epoch.value().version, 2u);
  EXPECT_EQ(xml::WriteXml(*epoch.value().tree), xml::WriteXml(expected));
  EXPECT_TRUE(
      epoch.value().plane->SameAs(xml::DocPlane::Build(*epoch.value().tree)));

  // Recover repaired the tail: the log shrank and a second walk is clean.
  EXPECT_LT(FileSize(dir + "/" + storage::kWalName), pre_size);
  storage::FsckReport clean = storage::Fsck(dir);
  EXPECT_TRUE(clean.ok);
  EXPECT_EQ(clean.report.bytes_truncated, 0);
}

TEST(RecoveryTest, CorruptNewestSnapshotFallsBackToPrevious) {
  const std::string dir = FreshDir("recover_fallback");
  Tree tree = RandomTree(30, 9);
  xml::DocPlane plane = xml::DocPlane::Build(tree);
  ASSERT_TRUE(storage::WriteSnapshot(dir, tree, plane, 0).ok());

  // Advance to version 2 with the WAL intact, snapshot at 2, then corrupt
  // that newest snapshot: recovery must fall back to v0 and REPLAY the WAL
  // past it (the trim discipline keeps those records around).
  std::mt19937_64 rng(9);
  auto wal = storage::WalWriter::Open(dir + "/" + storage::kWalName, 0);
  ASSERT_TRUE(wal.ok());
  Tree current = tree;
  for (uint64_t v = 0; v < 2; ++v) {
    TreeDelta delta = RandomDelta(current, v, 2, rng);
    ASSERT_TRUE(wal.value()->Append(delta).ok());
    ASSERT_TRUE(wal.value()->Sync().ok());
    ASSERT_TRUE(delta.ApplyTo(&current).ok());
  }
  ASSERT_TRUE(
      storage::WriteSnapshot(dir, current, xml::DocPlane::Build(current), 2)
          .ok());
  FlipByte(dir, storage::SnapshotFileName(2), 100);

  storage::RecoveryReport report;
  auto epoch = storage::Recover(dir, &report);
  ASSERT_TRUE(epoch.ok()) << epoch.status().message();
  EXPECT_EQ(report.snapshots_skipped, 1);
  EXPECT_EQ(report.snapshot_version, 0u);
  EXPECT_EQ(report.records_replayed, 2);
  EXPECT_EQ(report.recovered_version, 2u);
  EXPECT_EQ(xml::WriteXml(*epoch.value().tree), xml::WriteXml(current));

  // With EVERY snapshot corrupt there is nothing to recover from.
  FlipByte(dir, storage::SnapshotFileName(0), 50);
  storage::FsckReport fsck = storage::Fsck(dir);
  EXPECT_FALSE(fsck.ok);
  auto dead = storage::Recover(dir);
  EXPECT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------ durable store --

TEST(DurableStoreTest, ReopenRecoversTheExactPublishedState) {
  const std::string dir = FreshDir("store_roundtrip");
  std::mt19937_64 rng(77);
  Tree expected = RandomTree(40, 77);

  {
    auto store =
        DurableEpochStore::Open(dir, StorageOptions{.snapshot_every = 1000},
                                Tree(expected));
    ASSERT_TRUE(store.ok()) << store.status().message();
    for (int k = 0; k < 12; ++k) {
      TreeDelta delta =
          RandomDelta(expected, store.value()->version(), 1 + k % 3, rng);
      ASSERT_TRUE(store.value()->Apply(delta).ok()) << "delta " << k;
      ASSERT_TRUE(delta.ApplyTo(&expected).ok());
    }
    EXPECT_EQ(store.value()->version(), 12u);
    EXPECT_EQ(store.value()->stats().wal_appends, 12);
  }

  auto reopened =
      DurableEpochStore::Open(dir, StorageOptions{}, RandomTree(5, 1));
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(reopened.value()->version(), 12u);
  EXPECT_EQ(reopened.value()->recovery_report().records_replayed, 12);
  xml::PlaneEpoch epoch = reopened.value()->Snapshot();
  EXPECT_EQ(xml::WriteXml(*epoch.tree), xml::WriteXml(expected));
  EXPECT_TRUE(epoch.plane->SameAs(xml::DocPlane::Build(*epoch.tree)));
}

TEST(DurableStoreTest, CompactionPrunesSnapshotsTrimsWalAndStaysRecoverable) {
  const std::string dir = FreshDir("store_compact");
  std::mt19937_64 rng(123);
  Tree expected = RandomTree(30, 123);

  StorageOptions options;
  options.snapshot_every = 4;
  options.snapshots_kept = 2;
  {
    auto store = DurableEpochStore::Open(dir, options, Tree(expected));
    ASSERT_TRUE(store.ok()) << store.status().message();
    for (int k = 0; k < 20; ++k) {
      TreeDelta delta = RandomDelta(expected, store.value()->version(), 1, rng);
      ASSERT_TRUE(store.value()->Apply(delta).ok()) << "delta " << k;
      ASSERT_TRUE(delta.ApplyTo(&expected).ok());
    }
    const DurableEpochStore::Stats stats = store.value()->stats();
    EXPECT_GE(stats.snapshots_written, 5);  // initial + every 4 deltas
    EXPECT_GT(stats.wal_bytes_trimmed, 0);
  }

  auto snapshots = storage::ListSnapshots(dir);
  ASSERT_TRUE(snapshots.ok());
  EXPECT_EQ(snapshots.value().size(), 2u);  // pruned to snapshots_kept

  {
    auto reopened = DurableEpochStore::Open(dir, options, RandomTree(5, 1));
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.value()->version(), 20u);
    EXPECT_EQ(xml::WriteXml(*reopened.value()->Snapshot().tree),
              xml::WriteXml(expected));
  }

  // The fallback discipline: corrupt the NEWEST snapshot; the WAL was
  // trimmed only to the OLDEST kept snapshot's version, so the previous
  // snapshot still replays to the present.
  FlipByte(dir, snapshots.value()[0].second, 200);
  storage::RecoveryReport report;
  auto epoch = storage::Recover(dir, &report);
  ASSERT_TRUE(epoch.ok()) << epoch.status().message();
  EXPECT_EQ(report.snapshots_skipped, 1);
  EXPECT_EQ(report.recovered_version, 20u);
  EXPECT_EQ(xml::WriteXml(*epoch.value().tree), xml::WriteXml(expected));
}

TEST(DurableStoreTest, StaleDeltaLeavesNoDurableRecord) {
  const std::string dir = FreshDir("store_stale");
  std::mt19937_64 rng(5);
  Tree tree = RandomTree(20, 5);
  auto store = DurableEpochStore::Open(dir, StorageOptions{}, Tree(tree));
  ASSERT_TRUE(store.ok());

  const uint64_t wal_before = FileSize(dir + "/" + storage::kWalName);
  TreeDelta stale = RandomDelta(tree, 7, 1, rng);  // version 7 != 0
  Status s = store.value()->Apply(stale);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(FileSize(dir + "/" + storage::kWalName), wal_before);
  EXPECT_EQ(store.value()->stats().wal_appends, 0);

  // The store is NOT wedged by a stale delta: a correct one still applies.
  TreeDelta good = RandomDelta(tree, 0, 1, rng);
  EXPECT_TRUE(store.value()->Apply(good).ok());
}

#ifdef SMOQE_FAULT_INJECTION

TEST(DurableStoreTest, FailedPublishRollsTheWalRecordBack) {
  const std::string dir = FreshDir("store_rollback");
  std::mt19937_64 rng(31);
  Tree tree = RandomTree(25, 31);
  auto store = DurableEpochStore::Open(dir, StorageOptions{}, Tree(tree));
  ASSERT_TRUE(store.ok());
  const uint64_t wal_before = FileSize(dir + "/" + storage::kWalName);

  auto& fi = FaultInjector::Global();
  fi.Arm(0xF00);
  fi.SetPlan(FaultSite::kEpochApply,
             {FaultKind::kTransientError, 1, {}, /*window_first=*/0,
              /*window_count=*/1});
  TreeDelta delta = RandomDelta(tree, 0, 2, rng);
  Status s = store.value()->Apply(delta);
  fi.Disarm();

  // The publish failed AFTER the record was fsync'd; the store must have
  // rolled the record back -- no durable record for an unpublished version.
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(store.value()->version(), 0u);
  EXPECT_EQ(FileSize(dir + "/" + storage::kWalName), wal_before);
  EXPECT_EQ(store.value()->stats().wal_rollbacks, 1);

  // Not wedged: the same delta applies cleanly now, and a reopen agrees.
  ASSERT_TRUE(store.value()->Apply(delta).ok());
  store.value().reset();
  auto reopened = DurableEpochStore::Open(dir, StorageOptions{}, Tree(tree));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->version(), 1u);
}

TEST(DurableStoreTest, TornWalAppendWedgesTheStoreNotTheDisk) {
  const std::string dir = FreshDir("store_torn_append");
  std::mt19937_64 rng(47);
  Tree tree = RandomTree(25, 47);
  Tree expected = tree;
  auto store = DurableEpochStore::Open(dir, StorageOptions{}, Tree(tree));
  ASSERT_TRUE(store.ok());
  TreeDelta first = RandomDelta(expected, 0, 1, rng);
  ASSERT_TRUE(store.value()->Apply(first).ok());
  ASSERT_TRUE(first.ApplyTo(&expected).ok());

  auto& fi = FaultInjector::Global();
  fi.Arm(0xDEAD);
  fi.SetPlan(FaultSite::kWalAppend,
             {FaultKind::kTornWrite, 1, {}, /*window_first=*/0,
              /*window_count=*/1});
  TreeDelta second = RandomDelta(expected, 1, 1, rng);
  Status s = store.value()->Apply(second);
  fi.Disarm();
  EXPECT_FALSE(s.ok());

  // Wedged: the log is torn on disk, so every further Apply refuses.
  TreeDelta third = RandomDelta(expected, 1, 1, rng);
  EXPECT_EQ(store.value()->Apply(third).code(),
            StatusCode::kFailedPrecondition);

  // But recovery from disk lands exactly on the last PUBLISHED version,
  // truncating whatever prefix of the torn record persisted.
  store.value().reset();
  auto reopened = DurableEpochStore::Open(dir, StorageOptions{}, Tree(tree));
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(reopened.value()->version(), 1u);
  EXPECT_EQ(xml::WriteXml(*reopened.value()->Snapshot().tree),
            xml::WriteXml(expected));
}

TEST(DurableStoreTest, CompactionFailureIsSurvivable) {
  const std::string dir = FreshDir("store_compact_fail");
  std::mt19937_64 rng(88);
  Tree expected = RandomTree(25, 88);
  StorageOptions options;
  options.snapshot_every = 1;  // compact after every delta
  auto store = DurableEpochStore::Open(dir, options, Tree(expected));
  ASSERT_TRUE(store.ok());

  auto& fi = FaultInjector::Global();
  fi.Arm(0xC0);
  fi.SetPlan(FaultSite::kSnapshotWrite,
             {FaultKind::kTransientError, 1, {}, /*window_first=*/0,
              /*window_count=*/1});
  TreeDelta delta = RandomDelta(expected, 0, 1, rng);
  // The delta itself succeeds -- only the post-publish compaction failed.
  EXPECT_TRUE(store.value()->Apply(delta).ok());
  ASSERT_TRUE(delta.ApplyTo(&expected).ok());
  fi.Disarm();
  EXPECT_EQ(store.value()->stats().compactions_failed, 1);
  EXPECT_EQ(store.value()->version(), 1u);

  // The next interval retries and succeeds; reopen agrees throughout.
  TreeDelta next = RandomDelta(expected, 1, 1, rng);
  EXPECT_TRUE(store.value()->Apply(next).ok());
  ASSERT_TRUE(next.ApplyTo(&expected).ok());
  EXPECT_GE(store.value()->stats().snapshots_written, 2);
  store.value().reset();
  auto reopened = DurableEpochStore::Open(dir, StorageOptions{}, Tree());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->version(), 2u);
  EXPECT_EQ(xml::WriteXml(*reopened.value()->Snapshot().tree),
            xml::WriteXml(expected));
}

#endif  // SMOQE_FAULT_INJECTION

// ---------------------------------------------------- corruption fuzz --

TEST(CorruptionFuzzTest, NoMutatedInputEverCrashesADecoder) {
  // 3000 randomized corruptions across the three decoders. The assertion is
  // the weakest possible -- "returned" -- because the property under test is
  // memory safety: every iteration must yield a value or a Status, and the
  // ASan job turns any overread into a failure.
  std::mt19937_64 rng(0xF022);
  Tree tree = RandomTree(35, 0xF022);
  TreeDelta edits = RandomDelta(tree, 0, 3, rng);
  EXPECT_TRUE(edits.ApplyTo(&tree).ok());
  xml::DocPlane plane = xml::DocPlane::Build(tree);
  const std::string snapshot_bytes =
      storage::EncodeSnapshotFile(tree, plane, 42);

  std::string delta_bytes;
  RandomDelta(tree, 42, 4, rng).Serialize(&delta_bytes);

  const std::string dir = FreshDir("fuzz");
  const std::string wal_path = dir + "/" + storage::kWalName;
  std::string wal_bytes;
  {
    auto wal = storage::WalWriter::Open(wal_path, 0);
    ASSERT_TRUE(wal.ok());
    Tree current = tree;
    for (uint64_t v = 42; v < 45; ++v) {
      TreeDelta delta = RandomDelta(current, v, 2, rng);
      ASSERT_TRUE(wal.value()->Append(delta).ok());
      ASSERT_TRUE(delta.ApplyTo(&current).ok());
    }
    wal_bytes = storage::ReadFile(wal_path).value();
  }

  auto mutate = [&rng](const std::string& original) {
    std::string m = original;
    switch (rng() % 4) {
      case 0:  // bit flip(s)
        for (uint64_t flips = 1 + rng() % 4; flips > 0 && !m.empty(); --flips) {
          m[rng() % m.size()] ^=
              static_cast<char>(1u << (rng() % 8));
        }
        break;
      case 1:  // truncate
        m.resize(m.empty() ? 0 : rng() % m.size());
        break;
      case 2:  // truncate AND flip (torn + damaged tail)
        m.resize(m.empty() ? 0 : rng() % m.size());
        if (!m.empty()) m[rng() % m.size()] ^= 0x10;
        break;
      default: {  // unstructured garbage of a similar size
        const size_t n = rng() % (original.size() + 16);
        m.assign(n, '\0');
        for (char& c : m) c = static_cast<char>(rng());
        break;
      }
    }
    return m;
  };

  int decoded_fine = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    switch (iter % 3) {
      case 0: {
        auto r = storage::DecodeSnapshotFile(mutate(snapshot_bytes));
        decoded_fine += r.ok() ? 1 : 0;
        break;
      }
      case 1: {
        auto r = TreeDelta::Deserialize(mutate(delta_bytes));
        decoded_fine += r.ok() ? 1 : 0;
        break;
      }
      default: {
        ASSERT_TRUE(storage::WriteFileAtomic(dir, storage::kWalName,
                                             mutate(wal_bytes))
                        .ok());
        auto scan = storage::ScanWal(wal_path);
        ASSERT_TRUE(scan.ok());
        // Whatever records survived the mutation must still decode safely.
        for (const storage::WalRecord& record : scan.value().records) {
          auto r = TreeDelta::Deserialize(record.payload);
          decoded_fine += r.ok() ? 1 : 0;
        }
        break;
      }
    }
  }
  // Sanity: the harness is actually exercising both outcomes (some inputs
  // survive mutation -- e.g. WAL prefixes ahead of a truncation point).
  EXPECT_GT(decoded_fine, 0);
}

// ------------------------------------------- durable query service --

TEST(DurableQueryServiceTest, ServesAppliesAndRecoversAcrossReopen) {
  const std::string dir = FreshDir("service");
  Tree initial;
  {
    NodeId root = initial.AddRoot("db");
    NodeId a = initial.AddElement(root, "item");
    initial.AddText(initial.AddElement(a, "name"), "first");
    NodeId b = initial.AddElement(root, "item");
    initial.AddText(initial.AddElement(b, "name"), "second");
  }

  exec::QueryServiceOptions options;
  options.storage_dir = dir;
  options.num_threads = 2;
  {
    auto service = exec::QueryService::Open(Tree(initial), options);
    ASSERT_TRUE(service.ok()) << service.status().message();
    auto before = service.value()->Query("//name");
    ASSERT_TRUE(before.ok()) << before.status().message();
    EXPECT_EQ(before.value().size(), 2u);
    EXPECT_EQ(service.value()->document_version(), 0u);

    // A write: one more <item><name/></item> under the root.
    Tree frag;
    NodeId froot = frag.AddRoot("item");
    frag.AddText(frag.AddElement(froot, "name"), "third");
    TreeDelta delta(0);
    delta.AddInsert(initial.root(), 0, Fragment::Capture(frag, frag.root()));
    ASSERT_TRUE(service.value()->Apply(delta).ok());
    EXPECT_EQ(service.value()->document_version(), 1u);
    EXPECT_EQ(service.value()->stats().writes_applied, 1);

    auto after = service.value()->Query("//name");
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after.value().size(), 3u);

    // Stale write: rejected, version unchanged.
    TreeDelta stale(0);
    stale.AddRelabel(initial.root(), "nope");
    EXPECT_EQ(service.value()->Apply(stale).code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(service.value()->document_version(), 1u);
  }

  // Reopen: the applied write was durable; `initial` is ignored.
  auto reopened = exec::QueryService::Open(Tree(initial), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(reopened.value()->document_version(), 1u);
  auto answer = reopened.value()->Query("//name");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value().size(), 3u);
  ASSERT_NE(reopened.value()->storage(), nullptr);
  EXPECT_EQ(reopened.value()->storage()->recovery_report().records_replayed,
            1);
}

TEST(DurableQueryServiceTest, OpenRejectsExternalDocumentReferences) {
  Tree tree = RandomTree(10, 2);
  xml::DocPlane plane = xml::DocPlane::Build(tree);

  exec::QueryServiceOptions no_dir;
  auto missing = exec::QueryService::Open(Tree(tree), no_dir);
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);

  exec::QueryServiceOptions with_plane;
  with_plane.storage_dir = FreshDir("service_reject");
  with_plane.plane = &plane;
  auto rejected = exec::QueryService::Open(Tree(tree), with_plane);
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  // And the inverse: Apply on an in-memory service is a precondition error.
  exec::QueryService in_memory(tree);
  TreeDelta delta(0);
  delta.AddRelabel(tree.root(), "x");
  EXPECT_EQ(in_memory.Apply(std::move(delta)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(in_memory.document_version(), 0u);
}

}  // namespace
}  // namespace smoqe
