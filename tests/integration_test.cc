// End-to-end SMOQE pipeline: parse everything from text (DTDs, view spec,
// documents, queries), rewrite, evaluate, compare against materialization --
// the full workflow a deployment would run, including multiple user groups
// with different views of one source (the paper's access-control scenario).

#include <gtest/gtest.h>

#include "dtd/validator.h"
#include "eval/naive_evaluator.h"
#include "gen/fixtures.h"
#include "gen/hospital_generator.h"
#include "hype/hype.h"
#include "hype/index.h"
#include "rewrite/rewriter.h"
#include "view/materializer.h"
#include "view/view_parser.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xpath/parser.h"

namespace smoqe {
namespace {

TEST(IntegrationTest, FullPipelineFromText) {
  // 1. Source document: generate, serialize, re-parse (exercises the XML
  //    layer end to end), validate against the DTD.
  gen::HospitalParams params;
  params.patients = 30;
  params.seed = 42;
  params.heart_disease_prob = 0.3;
  xml::Tree generated = gen::GenerateHospital(params);
  std::string xml_text = xml::WriteXml(generated);
  auto source = xml::ParseXml(xml_text);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  ASSERT_TRUE(dtd::ValidateDocument(gen::HospitalDtd(), source.value()).ok());

  // 2. View definition from text.
  auto def = view::ParseView(gen::kHospitalViewSpecText);
  ASSERT_TRUE(def.ok()) << def.status().ToString();

  // 3. Query on the view, rewritten and evaluated on the source.
  auto query = xpath::ParseQuery(gen::kQueryExample11);
  ASSERT_TRUE(query.ok());
  auto mfa = rewrite::RewriteToMfa(query.value(), def.value());
  ASSERT_TRUE(mfa.ok()) << mfa.status().ToString();
  hype::HypeEvaluator eval(source.value(), mfa.value());
  auto answers = eval.Eval(source.value().root());

  // 4. Reference: materialize and evaluate on the view.
  auto mat = view::Materialize(def.value(), source.value());
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  eval::NodeSet on_view = eval::NaiveEvaluator(mat.value().tree)
                              .Eval(query.value(), mat.value().tree.root());
  EXPECT_EQ(answers, view::MapToSource(mat.value(), on_view));

  // 5. Every answer is a patient element with heart disease somewhere in its
  //    ancestor chain -- a semantic sanity check independent of the oracle.
  for (xml::NodeId n : answers) {
    EXPECT_EQ(source.value().label_name(n), "patient");
  }
}

// Two user groups: the research institute (heart-disease view) and a billing
// department that may only see visit dates. Same source, different views,
// both served by rewriting without materialization.
TEST(IntegrationTest, MultipleUserGroups) {
  gen::HospitalParams params;
  params.patients = 25;
  params.seed = 50;
  xml::Tree source = gen::GenerateHospital(params);

  view::ViewDef research = gen::HospitalView();

  const char* billing_spec = R"(
view billing {
  source dtd hospital {
    hospital   -> department* ;
    department -> name, address, patient* ;
    name       -> #text ;
    address    -> street, city, zip ;
    street     -> #text ;
    city       -> #text ;
    zip        -> #text ;
    patient    -> pname, address, visit*, parent*, sibling* ;
    pname      -> #text ;
    visit      -> date, treatment, doctor ;
    date       -> #text ;
    treatment  -> test + medication ;
    test       -> type ;
    medication -> type, diagnosis ;
    type       -> #text ;
    diagnosis  -> #text ;
    doctor     -> dname, specialty ;
    dname      -> #text ;
    specialty  -> #text ;
    parent     -> patient ;
    sibling    -> patient ;
  }
  view dtd bills {
    bills   -> account* ;
    account -> pname, charge* ;
    pname   -> #text ;
    charge  -> date ;
    date    -> #text ;
  }
  sigma {
    bills.account  = "department/patient" ;
    account.pname  = "pname" ;
    account.charge = "visit" ;
    charge.date    = "date" ;
  }
}
)";
  auto billing = view::ParseView(billing_spec);
  ASSERT_TRUE(billing.ok()) << billing.status().ToString();

  // Research group: ancestors with heart disease.
  auto rq = xpath::ParseQuery("patient[parent/patient/record/diagnosis]");
  ASSERT_TRUE(rq.ok());
  auto rmfa = rewrite::RewriteToMfa(rq.value(), research);
  ASSERT_TRUE(rmfa.ok());
  hype::HypeEvaluator reval(source, rmfa.value());
  auto ranswers = reval.Eval(source.root());
  for (xml::NodeId n : ranswers) {
    EXPECT_EQ(source.label_name(n), "patient");
  }

  // Billing group: accounts with some charge.
  auto bq = xpath::ParseQuery("account[charge]/pname");
  ASSERT_TRUE(bq.ok());
  auto bmfa = rewrite::RewriteToMfa(bq.value(), billing.value());
  ASSERT_TRUE(bmfa.ok());
  hype::HypeEvaluator beval(source, bmfa.value());
  auto banswers = beval.Eval(source.root());
  EXPECT_FALSE(banswers.empty());
  for (xml::NodeId n : banswers) {
    EXPECT_EQ(source.label_name(n), "pname");
  }

  // Cross-check both against materialization.
  for (auto* pair : {&research}) {
    auto mat = view::Materialize(*pair, source);
    ASSERT_TRUE(mat.ok());
    eval::NodeSet on_view = eval::NaiveEvaluator(mat.value().tree)
                                .Eval(rq.value(), mat.value().tree.root());
    EXPECT_EQ(ranswers, view::MapToSource(mat.value(), on_view));
  }
  auto bmat = view::Materialize(billing.value(), source);
  ASSERT_TRUE(bmat.ok()) << bmat.status().ToString();
  eval::NodeSet on_bview = eval::NaiveEvaluator(bmat.value().tree)
                               .Eval(bq.value(), bmat.value().tree.root());
  EXPECT_EQ(banswers, view::MapToSource(bmat.value(), on_bview));
}

TEST(IntegrationTest, RewriteOnceEvaluateMany) {
  // The deployment pattern: one rewritten MFA reused across documents.
  view::ViewDef def = gen::HospitalView();
  auto query = xpath::ParseQuery(gen::kQueryExample41);
  ASSERT_TRUE(query.ok());
  auto mfa = rewrite::RewriteToMfa(query.value(), def);
  ASSERT_TRUE(mfa.ok());
  for (uint64_t seed : {1u, 9u, 27u}) {
    gen::HospitalParams params;
    params.patients = 15;
    params.seed = seed;
    params.heart_disease_prob = 0.4;
    xml::Tree source = gen::GenerateHospital(params);
    hype::HypeEvaluator eval(source, mfa.value());
    auto answers = eval.Eval(source.root());
    auto mat = view::Materialize(def, source);
    ASSERT_TRUE(mat.ok());
    eval::NodeSet on_view = eval::NaiveEvaluator(mat.value().tree)
                                .Eval(query.value(), mat.value().tree.root());
    EXPECT_EQ(answers, view::MapToSource(mat.value(), on_view)) << seed;
  }
}

TEST(IntegrationTest, IndexedEvaluationEndToEnd) {
  view::ViewDef def = gen::HospitalView();
  gen::HospitalParams params;
  params.patients = 60;
  params.seed = 31;
  xml::Tree source = gen::GenerateHospital(params);
  auto query = xpath::ParseQuery(gen::kQueryExample11);
  ASSERT_TRUE(query.ok());
  auto mfa = rewrite::RewriteToMfa(query.value(), def);
  ASSERT_TRUE(mfa.ok());

  hype::SubtreeLabelIndex index = hype::SubtreeLabelIndex::Build(
      source, hype::SubtreeLabelIndex::Mode::kFull);
  hype::HypeOptions options;
  options.index = &index;
  hype::HypeEvaluator opt(source, mfa.value(), options);
  hype::HypeEvaluator plain(source, mfa.value());
  EXPECT_EQ(opt.Eval(source.root()), plain.Eval(source.root()));
  EXPECT_LE(opt.stats().elements_visited, plain.stats().elements_visited);
}

}  // namespace
}  // namespace smoqe
