// Round-trip coverage for the two serializers that previously had no tests:
//   xml::WriteXml     (xml/writer.cc)  — write -> re-parse equals the tree
//   xpath::ToString   (xpath/printer.cc) — print -> re-parse equals the AST

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gen/fixtures.h"
#include "gen/hospital_generator.h"
#include "xml/parser.h"
#include "xml/tree.h"
#include "xml/writer.h"
#include "xpath/ast.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace smoqe {
namespace {

// Structural equality of trees: same shape, labels, and text in document
// order. Walks child lists in parallel from the roots — NodeIds need not
// match (generators may append out of DFS order, the parser never does).
void ExpectSameSubtree(const xml::Tree& a, xml::NodeId an, const xml::Tree& b,
                       xml::NodeId bn) {
  ASSERT_EQ(a.kind(an), b.kind(bn));
  if (a.is_element(an)) {
    ASSERT_EQ(a.label_name(an), b.label_name(bn));
  } else {
    ASSERT_EQ(a.text_value(an), b.text_value(bn));
    return;
  }
  xml::NodeId ac = a.first_child(an);
  xml::NodeId bc = b.first_child(bn);
  while (ac != xml::kNullNode && bc != xml::kNullNode) {
    ExpectSameSubtree(a, ac, b, bc);
    ac = a.next_sibling(ac);
    bc = b.next_sibling(bc);
  }
  ASSERT_EQ(ac, xml::kNullNode) << "extra child under " << a.label_name(an);
  ASSERT_EQ(bc, xml::kNullNode) << "missing child under " << a.label_name(an);
}

void ExpectSameTree(const xml::Tree& a, const xml::Tree& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.CountElements(), b.CountElements());
  ExpectSameSubtree(a, a.root(), b, b.root());
}

TEST(XmlWriterRoundTripTest, HandBuiltTree) {
  xml::Tree t;
  xml::NodeId root = t.AddRoot("a");
  xml::NodeId b = t.AddElement(root, "b");
  t.AddText(b, "hello");
  xml::NodeId c = t.AddElement(root, "c");
  t.AddElement(c, "d");
  t.AddText(c, "world");
  auto reparsed = xml::ParseXml(xml::WriteXml(t));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ExpectSameTree(t, reparsed.value());
}

TEST(XmlWriterRoundTripTest, EscapesSpecialCharacters) {
  xml::Tree t;
  xml::NodeId root = t.AddRoot("q");
  t.AddText(root, "a < b && 'c' > \"d\"");
  std::string text = xml::WriteXml(t);
  auto reparsed = xml::ParseXml(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  ExpectSameTree(t, reparsed.value());
}

TEST(XmlWriterRoundTripTest, EmptyElementsSurvive) {
  auto parsed = xml::ParseXml("<a><b/><c></c><b/></a>");
  ASSERT_TRUE(parsed.ok());
  auto reparsed = xml::ParseXml(xml::WriteXml(parsed.value()));
  ASSERT_TRUE(reparsed.ok());
  ExpectSameTree(parsed.value(), reparsed.value());
}

TEST(XmlWriterRoundTripTest, IndentedOutputParsesBackEqual) {
  // Pretty-printing inserts whitespace-only text, which the parser drops;
  // the reparse must equal the original tree, not gain nodes.
  gen::HospitalParams params;
  params.patients = 8;
  params.seed = 7;
  xml::Tree t = gen::GenerateHospital(params);
  xml::WriteOptions indent;
  indent.indent = true;
  auto reparsed = xml::ParseXml(xml::WriteXml(t, indent));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ExpectSameTree(t, reparsed.value());
}

TEST(XmlWriterRoundTripTest, GeneratedHospitalDocument) {
  gen::HospitalParams params;
  params.patients = 25;
  params.seed = 3;
  params.heart_disease_prob = 0.4;
  xml::Tree t = gen::GenerateHospital(params);
  auto reparsed = xml::ParseXml(xml::WriteXml(t));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ExpectSameTree(t, reparsed.value());
  // Write is deterministic: a second trip produces identical text.
  EXPECT_EQ(xml::WriteXml(t), xml::WriteXml(reparsed.value()));
}

TEST(XmlWriterRoundTripTest, SubtreeSerialization) {
  auto parsed = xml::ParseXml("<a><b><c>x</c></b><d/></a>");
  ASSERT_TRUE(parsed.ok());
  const xml::Tree& t = parsed.value();
  xml::NodeId b = t.first_child(t.root());
  EXPECT_EQ(xml::WriteXml(t, b), "<b><c>x</c></b>");
}

class PrinterRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PrinterRoundTripTest, PrintReparseEqualsOriginalAst) {
  auto q = xpath::ParseQuery(GetParam());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::string printed = xpath::ToString(q.value());
  auto reparsed = xpath::ParseQuery(printed);
  ASSERT_TRUE(reparsed.ok())
      << "printed form does not re-parse: " << printed << "\n"
      << reparsed.status().ToString();
  EXPECT_TRUE(xpath::Equals(q.value(), reparsed.value()))
      << GetParam() << "\n -> " << printed << "\n -> "
      << xpath::ToString(reparsed.value());
  // Printing is a fixpoint after one trip (canonical form).
  EXPECT_EQ(printed, xpath::ToString(reparsed.value()));
}

INSTANTIATE_TEST_SUITE_P(
    Queries, PrinterRoundTripTest,
    ::testing::Values(
        ".", "*", "patient", "a/b/c", "a//b", "//a", "a | b | c",
        "(a/b)*", "(a | b)*/c", "a[b]", "a[not(b)]",
        "a[b and c or not(d)]", "a[text() = 'x']",
        "a[b/text() = \"it's\"]", "a[position() = 3]",
        "a[b][c]/d[e/f]", "(a/(b | c)*/d)[e]",
        "patient[*//record/diagnosis/text() = 'heart disease']",
        "(patient/parent)*/patient[(parent/patient)*/record/diagnosis[text() = 'heart disease']]",
        "department/patient[visit/treatment/medication/diagnosis/text() = 'heart disease']"));

TEST(PrinterRoundTripTest, FixtureQueriesRoundTrip) {
  for (const char* q : {gen::kQueryExample11, gen::kQueryExample21,
                        gen::kQueryExample41, gen::kQueryExample31Rewritten}) {
    auto parsed = xpath::ParseQuery(q);
    ASSERT_TRUE(parsed.ok()) << q;
    auto reparsed = xpath::ParseQuery(xpath::ToString(parsed.value()));
    ASSERT_TRUE(reparsed.ok()) << xpath::ToString(parsed.value());
    EXPECT_TRUE(xpath::Equals(parsed.value(), reparsed.value())) << q;
  }
}

TEST(PrinterRoundTripTest, FilterPrinting)
{
  auto f = xpath::ParseFilterExpr("a/b and not(c or text() = 'v')");
  ASSERT_TRUE(f.ok());
  auto reparsed = xpath::ParseFilterExpr(xpath::ToString(f.value()));
  ASSERT_TRUE(reparsed.ok()) << xpath::ToString(f.value());
  EXPECT_TRUE(xpath::Equals(f.value(), reparsed.value()));
}

}  // namespace
}  // namespace smoqe
