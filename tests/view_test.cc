#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "dtd/validator.h"
#include "eval/naive_evaluator.h"
#include "gen/fixtures.h"
#include "gen/hospital_generator.h"
#include "view/materializer.h"
#include "view/view_parser.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xpath/parser.h"

namespace smoqe::view {
namespace {

TEST(ViewParserTest, ParsesHospitalSpec) {
  auto v = ParseView(gen::kHospitalViewSpecText);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const ViewDef& def = v.value();
  EXPECT_TRUE(def.IsRecursive());
  EXPECT_TRUE(def.Validate().ok());
  EXPECT_GT(def.SizeMeasure(), 0);
  dtd::TypeId patient = def.view_dtd().FindType("patient");
  dtd::TypeId parent = def.view_dtd().FindType("parent");
  ASSERT_NE(def.annotation(patient, parent), nullptr);
}

TEST(ViewParserTest, MissingAnnotationFailsValidation) {
  const char* spec = R"(
view bad {
  source dtd s { s -> a* ; a -> #text ; }
  view dtd v { v -> w* ; w -> #text ; }
  sigma { }
}
)";
  auto v = ParseView(spec);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("no annotation"), std::string::npos);
}

TEST(ViewParserTest, AnnotationOnNonEdgeRejected) {
  const char* spec = R"(
view bad {
  source dtd s { s -> a* ; a -> #text ; }
  view dtd v { v -> w* ; w -> #text ; }
  sigma { w.v = "a" ; }
}
)";
  EXPECT_FALSE(ParseView(spec).ok());
}

TEST(ViewDefTest, PositionInAnnotationRejected) {
  dtd::Dtd source = dtd::ParseDtd("dtd s { s -> a* ; a -> #text ; }").take();
  dtd::Dtd viewd = dtd::ParseDtd("dtd v { v -> w* ; w -> #text ; }").take();
  ViewDef def(std::move(source), std::move(viewd));
  ASSERT_TRUE(def.SetAnnotation("v", "w",
                                xpath::ParseQuery("a[position() = 1]").value())
                  .ok());
  Status s = def.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnimplemented);
}

// A small source document with two heart-disease patients, one of which has
// a parent with a diagnosis, plus a sibling that must NOT appear in the view.
xml::Tree SmallHospital() {
  auto t = xml::ParseXml(
      "<hospital><department><name>d</name>"
      "<address><street>s</street><city>c</city><zip>z</zip></address>"
      // patient 1: heart disease, parent with test record, sibling (hidden)
      "<patient><pname>p1</pname>"
      "<address><street>s</street><city>c</city><zip>z</zip></address>"
      "<visit><date>1</date><treatment><medication><type>m</type>"
      "<diagnosis>heart disease</diagnosis></medication></treatment>"
      "<doctor><dname>n</dname><specialty>x</specialty></doctor></visit>"
      "<parent><patient><pname>gp1</pname>"
      "<address><street>s</street><city>c</city><zip>z</zip></address>"
      "<visit><date>2</date><treatment><test><type>t</type></test></treatment>"
      "<doctor><dname>n</dname><specialty>x</specialty></doctor></visit>"
      "</patient></parent>"
      "<sibling><patient><pname>sib1</pname>"
      "<address><street>s</street><city>c</city><zip>z</zip></address>"
      "<visit><date>3</date><treatment><medication><type>m</type>"
      "<diagnosis>heart disease</diagnosis></medication></treatment>"
      "<doctor><dname>n</dname><specialty>x</specialty></doctor></visit>"
      "</patient></sibling>"
      "</patient>"
      // patient 2: influenza only -- excluded from the view
      "<patient><pname>p2</pname>"
      "<address><street>s</street><city>c</city><zip>z</zip></address>"
      "<visit><date>4</date><treatment><medication><type>m</type>"
      "<diagnosis>influenza</diagnosis></medication></treatment>"
      "<doctor><dname>n</dname><specialty>x</specialty></doctor></visit>"
      "</patient>"
      "</department></hospital>");
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return t.take();
}

TEST(MaterializerTest, HospitalViewShape) {
  ViewDef def = gen::HospitalView();
  xml::Tree source = SmallHospital();
  auto mat = Materialize(def, source);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  const xml::Tree& vt = mat.value().tree;

  // View conforms to the view DTD.
  EXPECT_TRUE(dtd::ValidateDocument(def.view_dtd(), vt).ok())
      << dtd::ValidateDocument(def.view_dtd(), vt).ToString();

  eval::NaiveEvaluator eval(vt);
  // Only the heart-disease patient is exposed at the top level.
  EXPECT_EQ(eval.Eval(xpath::ParseQuery("patient").value(), vt.root()).size(),
            1u);
  // Its parent hierarchy is present, with a record whose branch is 'empty'
  // (the grandparent had a test, not a medication).
  EXPECT_EQ(
      eval.Eval(xpath::ParseQuery("patient/parent/patient/record/empty").value(),
                vt.root())
          .size(),
      1u);
  // The patient's own record carries the diagnosis text.
  auto diags = eval.Eval(
      xpath::ParseQuery("patient/record/diagnosis[text() = 'heart disease']")
          .value(),
      vt.root());
  EXPECT_EQ(diags.size(), 1u);
}

TEST(MaterializerTest, SiblingsAreHidden) {
  ViewDef def = gen::HospitalView();
  xml::Tree source = SmallHospital();
  auto mat = Materialize(def, source);
  ASSERT_TRUE(mat.ok());
  // No node of the view binds to any source node inside a <sibling>.
  const xml::Tree& vt = mat.value().tree;
  for (xml::NodeId v = 0; v < vt.size(); ++v) {
    xml::NodeId src = mat.value().binding[v];
    for (xml::NodeId n = src; n != xml::kNullNode; n = source.parent(n)) {
      EXPECT_NE(source.is_element(n) ? source.label_name(n) : "",
                "sibling")
          << "view node " << v << " leaks sibling data";
    }
  }
}

TEST(MaterializerTest, BindingPointsToSourceCopies) {
  ViewDef def = gen::HospitalView();
  xml::Tree source = SmallHospital();
  auto mat = Materialize(def, source);
  ASSERT_TRUE(mat.ok());
  const MaterializedView& mv = mat.value();
  ASSERT_EQ(static_cast<int32_t>(mv.binding.size()), mv.tree.size());
  EXPECT_EQ(mv.binding[mv.tree.root()], source.root());
  // Every element's bound source node exists and diagnosis texts match.
  for (xml::NodeId v = 0; v < mv.tree.size(); ++v) {
    if (!mv.tree.is_element(v)) continue;
    ASSERT_NE(mv.binding[v], xml::kNullNode);
    if (mv.tree.label_name(v) == "diagnosis") {
      EXPECT_EQ(mv.tree.TextOf(v), source.TextOf(mv.binding[v]));
    }
  }
}

TEST(MaterializerTest, GeneratedHospitalMaterializes) {
  gen::HospitalParams params;
  params.patients = 40;
  params.heart_disease_prob = 0.25;
  params.seed = 5;
  xml::Tree source = gen::GenerateHospital(params);
  ViewDef def = gen::HospitalView();
  auto mat = Materialize(def, source);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  EXPECT_TRUE(dtd::ValidateDocument(def.view_dtd(), mat.value().tree).ok());
  EXPECT_LT(mat.value().tree.size(), source.size());
}

TEST(MaterializerTest, NonTerminatingViewDetected) {
  // sigma(v, w) = '.', sigma(w, v) = '.': the view recursion never descends
  // in the source.
  const char* spec = R"(
view loop {
  source dtd s { s -> #text ; }
  view dtd v { v -> w* ; w -> v* ; }
  sigma { v.w = "." ; w.v = "." ; }
}
)";
  auto v = ParseView(spec);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  auto t = xml::ParseXml("<s>x</s>");
  ASSERT_TRUE(t.ok());
  auto mat = Materialize(v.value(), t.value());
  ASSERT_FALSE(mat.ok());
  EXPECT_NE(mat.status().message().find("not terminate"), std::string::npos);
}

TEST(MaterializerTest, UnstarredMultiplicityViolation) {
  // view w is unstarred but sigma selects two source nodes.
  const char* spec = R"(
view bad {
  source dtd s { s -> a* ; a -> #text ; }
  view dtd v { v -> w ; w -> #text ; }
  sigma { v.w = "a" ; }
}
)";
  auto v = ParseView(spec);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  auto two = xml::ParseXml("<s><a>1</a><a>2</a></s>");
  auto one = xml::ParseXml("<s><a>1</a></s>");
  EXPECT_FALSE(Materialize(v.value(), two.value()).ok());
  EXPECT_TRUE(Materialize(v.value(), one.value()).ok());
}

TEST(MaterializerTest, AmbiguousDisjunctionRejected) {
  const char* spec = R"(
view bad {
  source dtd s { s -> a*, b* ; a -> #text ; b -> #text ; }
  view dtd v { v -> w + u ; w -> #text ; u -> #text ; }
  sigma { v.w = "a" ; v.u = "b" ; }
}
)";
  auto v = ParseView(spec);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  auto both = xml::ParseXml("<s><a>1</a><b>2</b></s>");
  auto mat = Materialize(v.value(), both.value());
  ASSERT_FALSE(mat.ok());
  EXPECT_NE(mat.status().message().find("ambiguous"), std::string::npos);
  auto only_a = xml::ParseXml("<s><a>1</a></s>");
  EXPECT_TRUE(Materialize(v.value(), only_a.value()).ok());
}

TEST(MaterializerTest, MapToSourceDeduplicates) {
  ViewDef def = gen::HospitalView();
  xml::Tree source = SmallHospital();
  auto mat = Materialize(def, source);
  ASSERT_TRUE(mat.ok());
  std::vector<xml::NodeId> all;
  for (xml::NodeId v = 0; v < mat.value().tree.size(); ++v) {
    if (mat.value().tree.is_element(v)) all.push_back(v);
  }
  auto mapped = MapToSource(mat.value(), all);
  EXPECT_TRUE(std::is_sorted(mapped.begin(), mapped.end()));
  EXPECT_TRUE(std::adjacent_find(mapped.begin(), mapped.end()) == mapped.end());
}

}  // namespace
}  // namespace smoqe::view
