// The randomized chaos suite: seeded fault injection at every site while
// concurrent clients hammer the QueryService (90% reads) and a writer
// drives an EpochPublisher + StandingQueryEvaluator through deltas (10%
// writes). Invariants, per round and across all rounds:
//
//   - no crash, no deadlock, TSan-clean (the `chaos`/`concurrency` labels
//     run this under the sanitizer CI jobs);
//   - every submitted future resolves with exactly one terminal status out
//     of {kOk, kDeadlineExceeded, kCancelled, kResourceExhausted,
//     kUnavailable};
//   - every kOk answer is bit-identical to a cold solo evaluation;
//   - a failed EpochPublisher::Apply never publishes a torn snapshot: the
//     version is unchanged, the tree/plane pair stays consistent, and the
//     final document equals the clean replay of exactly the successful
//     deltas;
//   - the service's counters account every query exactly once.
//
// Rounds reproduce from their logged seed: injection decisions are a pure
// function of (seed, site, per-site hit counter).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "automata/compiler.h"
#include "automata/mfa.h"
#include "common/fault_injection.h"
#include "exec/query_service.h"
#include "exec/standing_query.h"
#include "gen/hospital_generator.h"
#include "hype/batch_hype.h"
#include "hype/hype.h"
#include "xml/plane_epoch.h"
#include "xml/tree.h"
#include "xml/tree_delta.h"
#include "xml/writer.h"
#include "xpath/parser.h"

namespace smoqe {
namespace {

using exec::QueryService;
using NodeVec = std::vector<xml::NodeId>;

xml::Tree Hospital(int patients, uint64_t seed) {
  gen::HospitalParams params;
  params.patients = patients;
  params.seed = seed;
  params.heart_disease_prob = 0.3;
  return gen::GenerateHospital(params);
}

automata::Mfa Compile(const std::string& query) {
  auto parsed = xpath::ParseQuery(query);
  EXPECT_TRUE(parsed.ok()) << query;
  return automata::CompileQuery(parsed.value());
}

std::vector<std::string> Workload() {
  return {
      "department/patient/pname",
      "department/patient[visit]/pname",
      "//diagnosis",
      "//patient[visit/treatment/medication]",
      "department/patient[not(visit/treatment/test)]",
      "department/*/visit",
      "//doctor/specialty",
      "department/patient/visit/treatment/(medication | test)/type",
  };
}

// ------------------------------------------------ injector determinism --

#ifdef SMOQE_FAULT_INJECTION

TEST(FaultInjectorTest, DecisionsAreAPureFunctionOfSeedSiteAndHit) {
  auto& fi = FaultInjector::Global();
  auto pattern = [&](uint64_t seed) {
    fi.Arm(seed);
    fi.SetPlan(FaultSite::kShardUnit,
               {FaultKind::kTransientError, /*one_in=*/3});
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!fi.Hit(FaultSite::kShardUnit).ok());
    }
    fi.Disarm();
    return fired;
  };
  const std::vector<bool> a = pattern(42);
  EXPECT_EQ(a, pattern(42));                           // reproducible
  EXPECT_NE(a, pattern(43));                           // seed-sensitive
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);  // actually fires
  EXPECT_LT(std::count(a.begin(), a.end(), true), 64);
}

TEST(FaultInjectorTest, KindsMapToTheDocumentedCodes) {
  auto& fi = FaultInjector::Global();
  fi.Arm(7);
  fi.SetPlan(FaultSite::kShardUnit, {FaultKind::kTransientError, 1});
  fi.SetPlan(FaultSite::kServiceAdmit, {FaultKind::kAllocFailure, 1});
  EXPECT_EQ(fi.Hit(FaultSite::kShardUnit).code(), StatusCode::kUnavailable);
  EXPECT_EQ(fi.Hit(FaultSite::kServiceAdmit).code(),
            StatusCode::kResourceExhausted);
  // An unplanned site never fires (and its hit is not even counted).
  EXPECT_TRUE(fi.Hit(FaultSite::kEpochApply).ok());
  EXPECT_EQ(fi.fired(FaultSite::kEpochApply), 0);
  fi.Disarm();
  // Disarmed, the macros skip Hit entirely; a direct call still reports the
  // plan but the chaos workload below never takes this path.
  EXPECT_FALSE(FaultInjector::armed());
}

#endif  // SMOQE_FAULT_INJECTION

// --------------------------------------------------------- chaos rounds --

struct RoundTally {
  int64_t ok = 0;
  int64_t deadline = 0;
  int64_t cancelled = 0;
  int64_t shed = 0;
  int64_t unavailable = 0;
  int64_t bad_code = 0;
  int64_t wrong_answer = 0;
};

TEST(ChaosTest, SeededFaultStormPreservesEveryInvariant) {
#ifndef SMOQE_FAULT_INJECTION
  GTEST_SKIP() << "built with SMOQE_FAULT_INJECTION=OFF; no sites compiled in";
#else
  constexpr int kRounds = 8;
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 27;  // + 12 writes ~= a 90/10 mix
  constexpr int kWrites = 12;

  auto& fi = FaultInjector::Global();
  RoundTally total;
  int64_t apply_failures_total = 0;

  for (int round = 0; round < kRounds; ++round) {
    const uint64_t seed = 0xC0FFEE00ULL + static_cast<uint64_t>(round);
    SCOPED_TRACE("chaos seed " + std::to_string(seed));

    xml::Tree tree = Hospital(12, seed);
    const std::vector<std::string> queries = Workload();
    // Oracle answers computed BEFORE arming: injection must never be able
    // to perturb the reference.
    std::map<std::string, NodeVec> oracle;
    for (const std::string& q : queries) {
      automata::Mfa mfa = Compile(q);
      hype::HypeEvaluator solo(tree, mfa);
      oracle[q] = solo.Eval(tree.root());
    }
    std::vector<automata::Mfa> standing_mfas;
    standing_mfas.push_back(Compile("//diagnosis"));
    standing_mfas.push_back(Compile("department/patient/pname"));
    std::vector<const automata::Mfa*> standing_ptrs;
    for (const automata::Mfa& m : standing_mfas) standing_ptrs.push_back(&m);

    fi.Arm(seed);
    fi.SetPlan(FaultSite::kShardUnit,
               {FaultKind::kTransientError, /*one_in=*/5});
    fi.SetPlan(FaultSite::kEpochApply,
               {FaultKind::kTransientError, /*one_in=*/2});
    fi.SetPlan(FaultSite::kPlaneIntern,
               {FaultKind::kDelay, /*one_in=*/64,
                std::chrono::microseconds(20)});
    fi.SetPlan(FaultSite::kServiceAdmit,
               {FaultKind::kAllocFailure, /*one_in=*/6});
    fi.SetPlan(FaultSite::kServiceDispatch,
               {FaultKind::kDelay, /*one_in=*/3,
                std::chrono::microseconds(200)});

    exec::QueryServiceOptions options;
    options.num_threads = 3;
    options.max_batch = 8;
    options.max_delay = std::chrono::microseconds(300);
    options.max_queue = 256;
    options.max_queue_age = std::chrono::milliseconds(50);
    options.checkpoint_interval = 64;
    QueryService service(tree, options);

    RoundTally tally;
    std::mutex tally_mu;
    auto account = [&](const std::string& text,
                       const QueryService::Answer& answer) {
      std::lock_guard<std::mutex> lock(tally_mu);
      if (answer.ok()) {
        ++tally.ok;
        if (answer.value() != oracle[text]) ++tally.wrong_answer;
        return;
      }
      switch (answer.status().code()) {
        case StatusCode::kDeadlineExceeded: ++tally.deadline; break;
        case StatusCode::kCancelled: ++tally.cancelled; break;
        case StatusCode::kResourceExhausted: ++tally.shed; break;
        case StatusCode::kUnavailable: ++tally.unavailable; break;
        default: ++tally.bad_code; break;
      }
    };

    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::mt19937_64 rng(seed * 977 + static_cast<uint64_t>(c));
        // Client-owned cancel tokens; a deque keeps addresses stable until
        // the matching future has resolved.
        std::deque<CancelToken> tokens;
        std::vector<std::pair<std::string,
                              std::future<QueryService::Answer>>> inflight;
        for (int i = 0; i < kQueriesPerClient; ++i) {
          const std::string& q = queries[rng() % queries.size()];
          exec::SubmitOptions submit;
          const uint64_t mode = rng() % 10;
          if (mode < 2) {
            // Generous deadline: gates the evaluation (so shard faults can
            // surface) but virtually never expires.
            submit.deadline = Deadline::After(std::chrono::seconds(5));
          } else if (mode < 4) {
            // Tight deadline: may expire in the queue or mid-evaluation.
            submit.deadline = Deadline::After(
                std::chrono::microseconds(rng() % 400));
          } else if (mode < 6) {
            tokens.emplace_back();
            submit.cancel = &tokens.back();
          }  // else: plain ungated submission
          auto future = service.Submit(q, submit);
          if (submit.cancel != nullptr && rng() % 2 == 0) {
            submit.cancel->Cancel();  // sometimes cancel immediately
          }
          inflight.emplace_back(q, std::move(future));
          if (inflight.size() >= 6) {
            // Cancel the stragglers' tokens mid-flight, then resolve all.
            for (CancelToken& t : tokens) t.Cancel();
            for (auto& [text, fut] : inflight) account(text, fut.get());
            inflight.clear();
            tokens.clear();
          }
        }
        for (CancelToken& t : tokens) t.Cancel();
        for (auto& [text, fut] : inflight) account(text, fut.get());
      });
    }

    // The single writer: publishes deltas (retrying injected Apply
    // failures) and keeps a standing evaluator current across the epochs.
    int64_t apply_failures = 0;
    std::string writer_error;
    std::thread writer([&] {
      std::mt19937_64 rng(seed * 31337);
      static const char* const kLabels[] = {"patient", "visit", "test",
                                            "medication", "treatment"};
      xml::EpochPublisher publisher(tree);
      exec::StandingQueryEvaluator standing(publisher.Snapshot(),
                                            standing_ptrs);
      xml::Tree replay = tree;  // clean replay of the successful deltas
      for (int w = 0; w < kWrites; ++w) {
        // Relabel a stable node within the existing label universe.
        const xml::PlaneEpoch before = publisher.Snapshot();
        xml::NodeId victim = before.tree->first_child(before.tree->root());
        for (uint64_t hops = rng() % 3; hops > 0 && victim != xml::kNullNode;
             --hops) {
          xml::NodeId down = before.tree->first_child(victim);
          if (down == xml::kNullNode || !before.tree->is_element(down)) break;
          victim = down;
        }
        const char* label = kLabels[rng() % 5];
        xml::TreeDelta delta(publisher.version());
        delta.AddRelabel(victim, label);
        Status applied = Status::OK();
        for (int attempt = 0; attempt < 64; ++attempt) {
          applied = publisher.Apply(delta);
          if (applied.ok()) break;
          ++apply_failures;
          // Torn-snapshot invariant: the failed Apply must not have
          // published anything -- version unchanged, tree/plane consistent.
          const xml::PlaneEpoch after = publisher.Snapshot();
          if (applied.code() != StatusCode::kUnavailable ||
              after.version != before.version ||
              after.plane->size() != after.tree->CountElements()) {
            writer_error = "torn snapshot after failed Apply: " +
                           applied.ToString();
            return;
          }
        }
        if (!applied.ok()) {
          writer_error = "Apply never succeeded: " + applied.ToString();
          return;
        }
        xml::TreeDelta replay_step(0);
        replay_step.AddRelabel(victim, label);
        if (!replay_step.ApplyTo(&replay).ok()) {
          writer_error = "replay step failed";
          return;
        }

        // Advance the standing answers, sometimes under a tight deadline;
        // an abort must leave the evaluator retryable at the old epoch.
        const xml::PlaneEpoch next = publisher.Snapshot();
        EvalControl control;
        if (rng() % 3 == 0) {
          control.deadline = Deadline::After(std::chrono::microseconds(50));
          control.checkpoint_interval = 32;
        }
        Status advanced = standing.Advance(next, delta, nullptr, control);
        if (!advanced.ok()) {
          if (advanced.code() != StatusCode::kDeadlineExceeded &&
              advanced.code() != StatusCode::kCancelled) {
            writer_error = "unexpected Advance failure: " +
                           advanced.ToString();
            return;
          }
          advanced = standing.Advance(next, delta);  // retry, ungated
          if (!advanced.ok()) {
            writer_error = "Advance retry failed: " + advanced.ToString();
            return;
          }
        }
      }
      // Final checks, still under injection: the published document equals
      // the clean replay of exactly the successful deltas, and the standing
      // answers match a cold evaluation of the final epoch.
      const xml::PlaneEpoch last = publisher.Snapshot();
      if (xml::WriteXml(*last.tree) != xml::WriteXml(replay)) {
        writer_error = "published document diverged from the delta replay";
        return;
      }
      hype::BatchHypeEvaluator cold(*last.tree, standing_ptrs);
      std::vector<NodeVec> expected = cold.EvalAll(last.tree->root());
      for (size_t q = 0; q < standing_ptrs.size(); ++q) {
        if (standing.answers(q) != expected[q]) {
          writer_error = "standing answers diverged on the final epoch";
          return;
        }
      }
    });

    for (std::thread& c : clients) c.join();
    writer.join();
    service.Shutdown();
    fi.Disarm();

    EXPECT_EQ(writer_error, "");
    EXPECT_EQ(tally.bad_code, 0) << "non-terminal status code observed";
    EXPECT_EQ(tally.wrong_answer, 0)
        << "a kOk answer diverged from the solo oracle";
    const int64_t resolved = tally.ok + tally.deadline + tally.cancelled +
                             tally.shed + tally.unavailable;
    EXPECT_EQ(resolved, kClients * kQueriesPerClient);
    // No per-round ok > 0 assert: on a badly oversubscribed machine a whole
    // round can legitimately age past max_queue_age and shed everything --
    // that is the overload protection working. The cross-round total.ok
    // check below still catches "nothing ever succeeds".

    // The service accounted every submission exactly once, and its new
    // counters agree with the client-observed codes.
    auto stats = service.stats();
    EXPECT_EQ(stats.queries_submitted, kClients * kQueriesPerClient);
    EXPECT_EQ(stats.queries_answered, stats.queries_submitted);
    EXPECT_EQ(stats.queries_timed_out, tally.deadline);
    EXPECT_EQ(stats.queries_shed, tally.shed);
    EXPECT_EQ(stats.queries_cancelled, tally.cancelled);
    EXPECT_EQ(stats.queries_failed, tally.unavailable);

    total.ok += tally.ok;
    total.deadline += tally.deadline;
    total.cancelled += tally.cancelled;
    total.shed += tally.shed;
    total.unavailable += tally.unavailable;
    apply_failures_total += apply_failures;
  }

  // Across all rounds the storm must actually have exercised the failure
  // machinery: injected Apply failures occurred (and were survived), and
  // client-side cancellation resolved futures with kCancelled.
  EXPECT_GT(apply_failures_total, 0);
  EXPECT_GT(total.cancelled, 0);
  EXPECT_GT(total.ok, 0);
#endif  // SMOQE_FAULT_INJECTION
}

}  // namespace
}  // namespace smoqe
