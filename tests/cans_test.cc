// Unit tests for the cans DAG itself, plus structural edge cases of the
// HyPE traversal that exercise it (deletion semantics, diamond reachability,
// empty graphs, wide fan-out).

#include <gtest/gtest.h>

#include "automata/compiler.h"
#include "eval/naive_evaluator.h"
#include "hype/cans.h"
#include "hype/hype.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace smoqe::hype {
namespace {

TEST(CansGraphTest, EmptyGraphNoAnswers) {
  CansGraph g;
  EXPECT_TRUE(g.CollectAnswers().empty());
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(CansGraphTest, SimpleChainCollects) {
  CansGraph g;
  auto a = g.AddVertex(/*initial=*/true);
  auto b = g.AddVertex(false);
  auto c = g.AddVertex(false);
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.SetAnswer(c, 42);
  EXPECT_EQ(g.CollectAnswers(), (std::vector<xml::NodeId>{42}));
}

TEST(CansGraphTest, DeletionDisconnects) {
  CansGraph g;
  auto a = g.AddVertex(true);
  auto b = g.AddVertex(false);
  auto c = g.AddVertex(false);
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.SetAnswer(c, 7);
  g.DeleteVertex(b);
  EXPECT_TRUE(g.CollectAnswers().empty());
}

TEST(CansGraphTest, DiamondSurvivesOneDeletedPath) {
  CansGraph g;
  auto a = g.AddVertex(true);
  auto left = g.AddVertex(false);
  auto right = g.AddVertex(false);
  auto d = g.AddVertex(false);
  g.AddEdge(a, left);
  g.AddEdge(a, right);
  g.AddEdge(left, d);
  g.AddEdge(right, d);
  g.SetAnswer(d, 9);
  g.DeleteVertex(left);
  EXPECT_EQ(g.CollectAnswers(), (std::vector<xml::NodeId>{9}));
  g.DeleteVertex(right);
  EXPECT_TRUE(g.CollectAnswers().empty());
}

TEST(CansGraphTest, DeletedInitialDoesNotSeed) {
  CansGraph g;
  auto a = g.AddVertex(true);
  g.SetAnswer(a, 1);
  g.DeleteVertex(a);
  EXPECT_TRUE(g.CollectAnswers().empty());
}

TEST(CansGraphTest, AnswersAreSortedAndDeduped) {
  CansGraph g;
  auto a = g.AddVertex(true);
  auto b = g.AddVertex(true);
  g.SetAnswer(a, 5);
  g.SetAnswer(b, 5);
  auto c = g.AddVertex(true);
  g.SetAnswer(c, 2);
  EXPECT_EQ(g.CollectAnswers(), (std::vector<xml::NodeId>{2, 5}));
}

TEST(CansGraphTest, CyclesInGraphTerminate) {
  // ε-cycles in the NFA produce cycles among same-node vertices; phase two
  // must handle them.
  CansGraph g;
  auto a = g.AddVertex(true);
  auto b = g.AddVertex(false);
  g.AddEdge(a, b);
  g.AddEdge(b, a);
  g.SetAnswer(b, 3);
  EXPECT_EQ(g.CollectAnswers(), (std::vector<xml::NodeId>{3}));
}

// ---- HyPE traversal shapes that stress cans construction ----

std::vector<xml::NodeId> RunBoth(const xml::Tree& t, const char* q) {
  auto query = xpath::ParseQuery(q);
  EXPECT_TRUE(query.ok()) << q;
  automata::Mfa mfa = automata::CompileQuery(query.value());
  HypeEvaluator hype(t, mfa);
  auto got = hype.Eval(t.root());
  auto expected =
      eval::NaiveEvaluator(t).Eval(query.value(), t.root());
  EXPECT_EQ(got, expected) << q;
  return got;
}

TEST(CansHypeTest, WideFanOut) {
  xml::Tree t;
  xml::NodeId root = t.AddRoot("r");
  for (int i = 0; i < 500; ++i) {
    xml::NodeId a = t.AddElement(root, "a");
    if (i % 3 == 0) t.AddElement(a, "m");
    t.AddElement(a, "b");
  }
  EXPECT_EQ(RunBoth(t, "a[m]/b").size(), 167u);
  RunBoth(t, "a[not(m)]/b");
  RunBoth(t, "a[m or not(m)]");
}

TEST(CansHypeTest, GuardAtEveryLevel) {
  // Nested guards: each level's filter refers to a subtree resolved later.
  auto t = xml::ParseXml(
      "<r><a><ok/><a><ok/><a><b/></a></a></a>"
      "<a><a><ok/><a><ok/><b/></a></a></a></r>");
  ASSERT_TRUE(t.ok());
  RunBoth(t.value(), "(a[ok])*");
  RunBoth(t.value(), "(a[ok])*/a[b]");
  RunBoth(t.value(), "a[a[a]]/a/a");
}

TEST(CansHypeTest, UnionOfGuardedAndUnguarded) {
  // One union branch is filter-free (no region), the other guarded (region):
  // both kinds of answer emission must coexist in one run.
  auto t = xml::ParseXml("<r><a><m/><b/></a><a><b/></a><c><b/></c></r>");
  ASSERT_TRUE(t.ok());
  RunBoth(t.value(), "c/b | a[m]/b");
  RunBoth(t.value(), "a/b | a[m]/b");
  RunBoth(t.value(), "(a | c)[b]/b");
}

TEST(CansHypeTest, FilterOnContextEpsilon) {
  auto t = xml::ParseXml("<r><m/><a><b/></a></r>");
  ASSERT_TRUE(t.ok());
  RunBoth(t.value(), ".[m]/a/b");
  RunBoth(t.value(), ".[x]/a/b");
  RunBoth(t.value(), ".[m]/a[b]");
}

TEST(CansHypeTest, TextOnlyTree) {
  auto t = xml::ParseXml("<r>just text<a>more</a>tail</r>");
  ASSERT_TRUE(t.ok());
  RunBoth(t.value(), "a[text() = 'more']");
  RunBoth(t.value(), ".[text() = 'just text']");
  RunBoth(t.value(), "a[text() = 'tail']");
}

}  // namespace
}  // namespace smoqe::hype
