// xml::DocPlane correctness and jump-mode equivalence.
//
// Two families of properties:
//  * Plane structure: on randomized trees (built in NON-preorder insertion
//    order, so NodeId order and preorder disagree), every position's extent
//    equals its element-descendant count, subtrees are contiguous position
//    intervals, posting lists are sorted and complete, and the incremental
//    Builder driven by view::Materialize emits exactly what DocPlane::Build
//    computes after the fact.
//  * Jump-driver equivalence: across label-sparse and label-dense generated
//    documents and randomized query workloads, the jump-mode drivers
//    (RunSharedPass via HypeEvaluator, and BatchHypeEvaluator's joint pass)
//    must produce bit-identical answers AND per-engine traversal statistics
//    to the full-DFS drivers and to solo no-jump HyPE, with the
//    NaiveEvaluator as the answer oracle -- while actually engaging
//    (positions_jumped > 0) on the sparse workloads, so a silent fallback
//    to full DFS cannot pass.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "automata/compiler.h"
#include "eval/naive_evaluator.h"
#include "gen/fixtures.h"
#include "gen/hospital_generator.h"
#include "gen/query_generator.h"
#include "hype/batch_hype.h"
#include "hype/hype.h"
#include "hype/index.h"
#include "view/materializer.h"
#include "xml/doc_plane.h"
#include "xml/tree.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace smoqe::xml {
namespace {

using NodeVec = std::vector<NodeId>;

// A random tree whose node ids deliberately do NOT follow preorder: each new
// element picks a random existing parent, so siblings' subtrees interleave
// in id space. `needle_prob` controls how often the rare labels appear --
// the label-sparse documents jump mode is built for.
Tree RandomTree(int num_elements, const std::vector<std::string>& common,
                const std::vector<std::string>& rare, double needle_prob,
                uint64_t seed) {
  std::mt19937_64 rng(seed);
  Tree tree;
  std::vector<NodeId> elements;
  elements.push_back(tree.AddRoot(common[0]));
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int i = 1; i < num_elements; ++i) {
    NodeId parent = elements[rng() % elements.size()];
    const std::string& label =
        coin(rng) < needle_prob && !rare.empty()
            ? rare[rng() % rare.size()]
            : common[rng() % common.size()];
    elements.push_back(tree.AddElement(parent, label));
    if (coin(rng) < 0.15) {
      tree.AddText(elements.back(), coin(rng) < 0.5 ? "alpha" : "beta");
    }
  }
  return tree;
}

// Brute-force element-descendant count through the Tree pointers.
int32_t CountElementDescendants(const Tree& tree, NodeId n) {
  int32_t count = 0;
  for (NodeId c = tree.first_child(n); c != kNullNode;
       c = tree.next_sibling(c)) {
    if (tree.is_element(c)) count += 1 + CountElementDescendants(tree, c);
  }
  return count;
}

bool HasTextChild(const Tree& tree, NodeId n) {
  for (NodeId c = tree.first_child(n); c != kNullNode;
       c = tree.next_sibling(c)) {
    if (tree.kind(c) == NodeKind::kText) return true;
  }
  return false;
}

void CheckPlaneProperties(const Tree& tree, const DocPlane& plane) {
  ASSERT_EQ(plane.size(), tree.CountElements());
  std::vector<int64_t> postings_seen(tree.labels().size(), 0);
  for (int32_t pos = 0; pos < plane.size(); ++pos) {
    const NodeId n = plane.node_at(pos);
    ASSERT_TRUE(tree.is_element(n));
    EXPECT_EQ(plane.pos_of(n), pos);
    EXPECT_EQ(plane.label(pos), tree.label(n));
    EXPECT_EQ(plane.has_text(pos), HasTextChild(tree, n)) << "pos " << pos;
    // Extent == subtree size; the subtree is the contiguous position
    // interval (pos, end_of(pos)) and every position in it descends from n.
    EXPECT_EQ(plane.extent(pos), CountElementDescendants(tree, n))
        << "pos " << pos;
    // Parent/depth arrays agree with the tree.
    if (tree.parent(n) == kNullNode) {
      EXPECT_EQ(plane.parent(pos), -1);
      EXPECT_EQ(plane.depth(pos), 0);
    } else {
      ASSERT_GE(plane.parent(pos), 0);
      EXPECT_EQ(plane.node_at(plane.parent(pos)), tree.parent(n));
      EXPECT_EQ(plane.depth(pos), plane.depth(plane.parent(pos)) + 1);
      // Children lie inside the parent's interval.
      EXPECT_GT(pos, plane.parent(pos));
      EXPECT_LT(pos, plane.end_of(plane.parent(pos)));
    }
    ++postings_seen[plane.label(pos)];
  }
  // Posting lists: sorted, duplicate-free, complete per label.
  int64_t total = 0;
  for (LabelId l = 0; l < tree.labels().size(); ++l) {
    auto p = plane.postings(l);
    EXPECT_EQ(static_cast<int64_t>(p.size()), postings_seen[l])
        << tree.labels().name(l);
    for (size_t i = 0; i < p.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(p[i - 1], p[i]);
      }
      EXPECT_EQ(plane.label(p[i]), l);
    }
    total += static_cast<int64_t>(p.size());
  }
  EXPECT_EQ(total, plane.size());
  // Out-of-range labels resolve to empty spans, not UB.
  EXPECT_TRUE(plane.postings(kNoLabel).empty());
  EXPECT_TRUE(plane.postings(tree.labels().size() + 7).empty());
}

TEST(DocPlaneTest, ExtentAndPostingPropertiesOnRandomTrees) {
  const std::vector<std::string> common = {"a", "b", "c", "d", "e"};
  const std::vector<std::string> rare = {"x", "y"};
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Tree tree = RandomTree(400, common, rare, 0.02, seed);
    CheckPlaneProperties(tree, DocPlane::Build(tree));
  }
  // Degenerate shapes: a single root, and a pure chain.
  Tree single;
  single.AddRoot("only");
  CheckPlaneProperties(single, DocPlane::Build(single));
  Tree chain;
  NodeId n = chain.AddRoot("c");
  for (int i = 0; i < 100; ++i) n = chain.AddElement(n, "c");
  DocPlane chain_plane = DocPlane::Build(chain);
  CheckPlaneProperties(chain, chain_plane);
  EXPECT_EQ(chain_plane.extent(0), 100);
  EXPECT_EQ(chain_plane.depth(100), 100);
}

TEST(DocPlaneTest, HospitalPlaneMatchesTree) {
  gen::HospitalParams params;
  params.patients = 25;
  params.seed = 11;
  Tree tree = gen::GenerateHospital(params);
  CheckPlaneProperties(tree, DocPlane::Build(tree));
}

TEST(DocPlaneTest, PostingPoolPacksAllLabels) {
  Tree tree;
  NodeId root = tree.AddRoot("r");
  for (int i = 0; i < 8; ++i) {
    NodeId w = tree.AddElement(root, "wrap");
    tree.AddElement(w, "leaf");
  }
  DocPlane plane = DocPlane::Build(tree);
  EXPECT_EQ(plane.postings(tree.labels().Lookup("wrap")).size(), 8u);
  EXPECT_EQ(plane.postings(tree.labels().Lookup("leaf")).size(), 8u);
  EXPECT_EQ(plane.postings(tree.labels().Lookup("r")).size(), 1u);
  EXPECT_GT(plane.MemoryBytes(), 0u);
}

// Builder misuse must surface in status() as a no-op, never as a corrupted
// plane: accepted-but-wrong text bits and extents would propagate through
// the Maintainer into every later epoch.
TEST(DocPlaneTest, BuilderMisuseIsRecordedNotAccepted) {
  {
    DocPlane::Builder builder;
    builder.MarkText();  // nothing open
    EXPECT_FALSE(builder.status().ok());
    EXPECT_EQ(builder.Finish(1, 1).size(), 0);
  }
  {
    DocPlane::Builder builder;
    builder.Exit();  // nothing open
    EXPECT_FALSE(builder.status().ok());
  }
  {
    DocPlane::Builder builder;
    builder.Enter(0, 0);
    builder.Exit();
    EXPECT_TRUE(builder.status().ok());
    builder.MarkText();  // root already closed: no open position
    EXPECT_FALSE(builder.status().ok());
  }
  {
    DocPlane::Builder builder;
    builder.Enter(0, 0);
    builder.Exit();
    EXPECT_EQ(builder.Enter(0, 1), -1);  // second root
    EXPECT_FALSE(builder.status().ok());
    EXPECT_EQ(builder.Finish(2, 1).size(), 0);
  }
  {
    DocPlane::Builder builder;
    builder.Enter(0, 0);
    builder.Enter(1, 1);
    builder.Exit();  // inner closed, root still open
    DocPlane plane = builder.Finish(2, 2);
    EXPECT_FALSE(builder.status().ok());  // unbalanced Finish
    EXPECT_EQ(plane.size(), 0);
  }
}

TEST(DocPlaneTest, BuilderCleanSequenceStaysOk) {
  Tree tree;
  NodeId root = tree.AddRoot("r");
  NodeId child = tree.AddElement(root, "c");
  tree.AddText(child, "t");

  DocPlane::Builder builder;
  builder.Enter(tree.label(root), root);
  builder.Enter(tree.label(child), child);
  builder.MarkText();
  builder.Exit();
  builder.Exit();
  EXPECT_TRUE(builder.status().ok());
  DocPlane plane = builder.Finish(tree.size(), tree.labels().size());
  EXPECT_TRUE(builder.status().ok());
  EXPECT_TRUE(plane.SameAs(DocPlane::Build(tree)));
}

TEST(DocPlaneTest, MaterializerEmitsPlaneMatchingBuild) {
  view::ViewDef view = gen::HospitalView();
  gen::HospitalParams params;
  params.patients = 12;
  params.seed = 5;
  Tree source = gen::GenerateHospital(params);
  auto mat = view::Materialize(view, source);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();

  const DocPlane& emitted = mat.value().plane;
  DocPlane rebuilt = DocPlane::Build(mat.value().tree);
  ASSERT_EQ(emitted.size(), rebuilt.size());
  for (int32_t pos = 0; pos < emitted.size(); ++pos) {
    EXPECT_EQ(emitted.label(pos), rebuilt.label(pos));
    EXPECT_EQ(emitted.parent(pos), rebuilt.parent(pos));
    EXPECT_EQ(emitted.depth(pos), rebuilt.depth(pos));
    EXPECT_EQ(emitted.extent(pos), rebuilt.extent(pos));
    EXPECT_EQ(emitted.has_text(pos), rebuilt.has_text(pos));
    EXPECT_EQ(emitted.node_at(pos), rebuilt.node_at(pos));
  }
  for (LabelId l = 0; l < mat.value().tree.labels().size(); ++l) {
    auto a = emitted.postings(l);
    auto b = rebuilt.postings(l);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  CheckPlaneProperties(mat.value().tree, emitted);
}

// ---- jump-mode equivalence ----

std::vector<automata::Mfa> CompileAll(const std::vector<std::string>& queries) {
  std::vector<automata::Mfa> mfas;
  mfas.reserve(queries.size());
  for (const std::string& q : queries) {
    auto parsed = xpath::ParseQuery(q);
    EXPECT_TRUE(parsed.ok()) << q << ": " << parsed.status().ToString();
    mfas.push_back(automata::CompileQuery(parsed.value()));
  }
  return mfas;
}

void ExpectStatsEqual(const hype::EvalStats& a, const hype::EvalStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.elements_visited, b.elements_visited) << what;
  EXPECT_EQ(a.cans_vertices, b.cans_vertices) << what;
  EXPECT_EQ(a.cans_edges, b.cans_edges) << what;
  EXPECT_EQ(a.afa_state_requests, b.afa_state_requests) << what;
}

// The oracle sandwich for one document/workload: naive answers == no-jump
// solo == jump solo == no-jump batch == jump batch, with traversal
// statistics bit-identical across all HyPE variants; returns the number of
// positions the jump drivers actually skipped (so callers can assert the
// mode engaged). `use_naive` = false drops the NaiveEvaluator leg (it is
// quadratic in depth; the deep-chain regression supplies its own expected
// answers) -- the no-jump solo pass then anchors the sandwich.
int64_t CheckJumpEquivalence(const Tree& tree,
                             const std::vector<std::string>& queries,
                             const hype::SubtreeLabelIndex* index,
                             bool use_naive = true) {
  std::vector<automata::Mfa> mfas = CompileAll(queries);
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& m : mfas) ptrs.push_back(&m);
  DocPlane plane = DocPlane::Build(tree);

  eval::NaiveEvaluator naive(tree);
  int64_t jumped = 0;

  std::vector<NodeVec> baseline;
  std::vector<hype::EvalStats> baseline_stats;
  for (size_t i = 0; i < mfas.size(); ++i) {
    hype::HypeOptions off;
    off.index = index;
    off.plane = &plane;
    off.enable_jump = false;
    hype::HypeEvaluator solo_off(tree, mfas[i], off);
    baseline.push_back(solo_off.Eval(tree.root()));
    baseline_stats.push_back(solo_off.stats());
    if (use_naive) {
      auto parsed = xpath::ParseQuery(queries[i]);
      EXPECT_TRUE(parsed.ok()) << queries[i];
      if (!parsed.ok()) return 0;
      EXPECT_EQ(baseline.back(), naive.Eval(parsed.value(), tree.root()))
          << "no-jump solo vs naive: " << queries[i];
    }

    hype::HypeOptions on = off;
    on.enable_jump = true;
    hype::HypeEvaluator solo_on(tree, mfas[i], on);
    EXPECT_EQ(solo_on.Eval(tree.root()), baseline.back())
        << "jump solo: " << queries[i];
    ExpectStatsEqual(solo_on.stats(), baseline_stats.back(),
                     "solo jump vs full-DFS stats: " + queries[i]);
    jumped += solo_on.pass_stats().positions_jumped;
  }

  for (bool jump : {false, true}) {
    hype::BatchHypeOptions options;
    options.index = index;
    options.plane = &plane;
    options.enable_jump = jump;
    hype::BatchHypeEvaluator batch(tree, ptrs, options);
    std::vector<NodeVec> answers = batch.EvalAll(tree.root());
    EXPECT_EQ(answers.size(), mfas.size());
    if (answers.size() != mfas.size()) return 0;
    for (size_t i = 0; i < mfas.size(); ++i) {
      EXPECT_EQ(answers[i], baseline[i])
          << "batch(jump=" << jump << ") vs solo: " << queries[i];
      ExpectStatsEqual(batch.stats(i), baseline_stats[i],
                       "batch(jump=" + std::to_string(jump) +
                           ") stats: " + queries[i]);
    }
    if (jump) jumped += batch.pass_stats().positions_jumped;
    // Repeat on warm joint tables: results must be stable.
    EXPECT_EQ(batch.EvalAll(tree.root()), answers);
  }
  return jumped;
}

TEST(JumpEquivalenceTest, LabelSparseRandomizedWorkloads) {
  const std::vector<std::string> common = {"filler0", "filler1", "filler2",
                                           "filler3", "filler4", "filler5"};
  const std::vector<std::string> rare = {"needle", "pin", "tack"};
  int64_t engaged = 0;
  for (uint64_t seed : {101u, 202u, 303u}) {
    Tree tree = RandomTree(600, common, rare, 0.01, seed);
    std::vector<std::string> queries = {
        "//needle",
        "//pin",
        "(*)*/tack",
        "//filler0/needle",
        "//needle/(*)*/pin",
        "//needle | //tack",
        "absent_label/needle",
    };
    engaged += CheckJumpEquivalence(tree, queries, nullptr);
  }
  // The whole point: jump mode must actually skip positions on label-sparse
  // documents, not silently fall back to the full DFS.
  EXPECT_GT(engaged, 0);
}

TEST(JumpEquivalenceTest, LabelDenseRandomizedWorkloads) {
  // Every label occurs everywhere: candidates are dense, transparency is
  // rare, and filters force framed engines -- the worst case must still be
  // exactly equivalent.
  const std::vector<std::string> common = {"a", "b"};
  for (uint64_t seed : {7u, 8u}) {
    Tree tree = RandomTree(300, common, {}, 0.0, seed);
    std::vector<std::string> queries = {
        "//a", "//b", "a/b", "//a[b]", "//a[not(b)]", "(a | b)*/a",
        "//a[b/text() = 'alpha']",
    };
    CheckJumpEquivalence(tree, queries, nullptr);
  }
}

TEST(JumpEquivalenceTest, RandomQueryGeneratorSweep) {
  const std::vector<std::string> common = {"filler0", "filler1", "filler2",
                                           "filler3"};
  const std::vector<std::string> rare = {"needle", "pin"};
  Tree tree = RandomTree(500, common, rare, 0.03, 99);

  gen::QueryGenParams qparams;
  qparams.labels = {"filler0", "filler1", "filler2", "filler3",
                    "needle",  "pin",     "absent"};
  qparams.text_values = {"alpha", "beta"};
  qparams.max_depth = 3;
  std::mt19937_64 rng(424242);
  std::vector<std::string> queries;
  for (int i = 0; i < 40; ++i) {
    queries.push_back(xpath::ToString(gen::RandomQuery(qparams, &rng)));
  }
  CheckJumpEquivalence(tree, queries, nullptr);
}

TEST(JumpEquivalenceTest, IndexModesDisableJumpButStayEquivalent) {
  const std::vector<std::string> common = {"filler0", "filler1", "filler2"};
  const std::vector<std::string> rare = {"needle"};
  Tree tree = RandomTree(400, common, rare, 0.02, 55);
  std::vector<std::string> queries = {"//needle", "//filler1[needle]",
                                      "filler0/(*)*/needle"};
  hype::SubtreeLabelIndex full =
      hype::SubtreeLabelIndex::Build(tree, hype::SubtreeLabelIndex::Mode::kFull);
  hype::SubtreeLabelIndex compressed = hype::SubtreeLabelIndex::Build(
      tree, hype::SubtreeLabelIndex::Mode::kCompressed, 8);
  // Jump requires label-set-independent transitions; with an index the
  // drivers must run the full columnar DFS and still match.
  EXPECT_EQ(CheckJumpEquivalence(tree, queries, &full), 0);
  EXPECT_EQ(CheckJumpEquivalence(tree, queries, &compressed), 0);
}

TEST(JumpEquivalenceTest, DeepChainReplayRegression) {
  // A 50k-deep transparent chain with one needle at the bottom: the jump
  // driver must replay the whole ancestor chain without recursing and keep
  // the counters exact. (No naive leg -- it is quadratic in depth -- so pin
  // the expected answers by hand against the no-jump solo baseline.)
  constexpr int kDepth = 50000;
  Tree tree;
  NodeId n = tree.AddRoot("chain");
  for (int i = 0; i < kDepth; ++i) n = tree.AddElement(n, "chain");
  NodeId needle = tree.AddElement(n, "needle");
  std::vector<std::string> queries = {"//needle", "(chain)*/needle",
                                      "//chain[needle]"};
  CheckJumpEquivalence(tree, queries, nullptr, /*use_naive=*/false);

  std::vector<automata::Mfa> needle_mfa = CompileAll({"//needle"});
  hype::HypeEvaluator solo(tree, needle_mfa[0]);
  EXPECT_EQ(solo.Eval(tree.root()), NodeVec{needle});
}

TEST(JumpEquivalenceTest, SubtreeContextsMatch) {
  // Jump must stay confined to the context's subtree when evaluation does
  // not start at the root.
  const std::vector<std::string> common = {"f0", "f1", "f2"};
  const std::vector<std::string> rare = {"needle"};
  Tree tree = RandomTree(300, common, rare, 0.03, 77);
  std::vector<automata::Mfa> mfas = CompileAll({"//needle", "f1/needle"});
  DocPlane plane = DocPlane::Build(tree);

  eval::NaiveEvaluator naive(tree);
  std::vector<NodeId> contexts;
  for (NodeId id = 0; id < tree.size(); id += 37) {
    if (tree.is_element(id)) contexts.push_back(id);
  }
  for (NodeId context : contexts) {
    for (size_t i = 0; i < mfas.size(); ++i) {
      hype::HypeOptions off;
      off.plane = &plane;
      off.enable_jump = false;
      hype::HypeEvaluator solo_off(tree, mfas[i], off);
      NodeVec expected = solo_off.Eval(context);

      hype::HypeOptions on = off;
      on.enable_jump = true;
      hype::HypeEvaluator solo_on(tree, mfas[i], on);
      EXPECT_EQ(solo_on.Eval(context), expected) << "context " << context;
      ExpectStatsEqual(solo_on.stats(), solo_off.stats(),
                       "context " + std::to_string(context));
    }
  }
}

}  // namespace
}  // namespace smoqe::xml
