// exec::QueryService: the concurrent front-end must answer every client
// exactly what a solo HypeEvaluator run of the same query would -- under
// randomized multi-threaded submission, admission batching at every
// threshold, duplicate coalescing, view-mode rewriting, and shutdown drain.
// Runs under the `concurrency` CTest label (ASan job runs the full suite,
// TSan job runs this label), per the service's CI gate.

#include "exec/query_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "automata/compiler.h"
#include "common/cancellation.h"
#include "common/fault_injection.h"
#include "gen/fixtures.h"
#include "gen/hospital_generator.h"
#include "hype/hype.h"
#include "hype/index.h"
#include "rewrite/rewriter.h"
#include "view/view_def.h"
#include "xpath/parser.h"

namespace smoqe::exec {
namespace {

using NodeVec = std::vector<xml::NodeId>;

xml::Tree Hospital(int patients, uint64_t seed) {
  gen::HospitalParams params;
  params.patients = patients;
  params.seed = seed;
  params.heart_disease_prob = 0.3;
  return gen::GenerateHospital(params);
}

// Solo-evaluator oracle for a plain (viewless) query over `tree`.
NodeVec SoloAnswer(const xml::Tree& tree, const std::string& query) {
  auto parsed = xpath::ParseQuery(query);
  EXPECT_TRUE(parsed.ok()) << query;
  automata::Mfa mfa = automata::CompileQuery(parsed.value());
  hype::HypeEvaluator eval(tree, mfa);
  return eval.Eval(tree.root());
}

std::vector<std::string> WorkloadQueries() {
  return {
      "department/patient/pname",
      "department/patient[visit]/pname",
      "//diagnosis",
      "//patient[visit/treatment/medication]",
      "department/patient[visit/treatment/test]/pname",
      "department/patient/(parent/patient)*"
      "[visit/treatment/medication/diagnosis/text() = 'heart disease']",
      "department/patient[not(visit/treatment/test)]",
      "(department/patient)*[pname/text() = 'P0']/visit",
      "department/*/visit",
      "//doctor/specialty",
      "department/patient[address/city/text() = 'Edinburgh']/pname",
      "department/patient/visit/treatment/(medication | test)/type",
  };
}

TEST(QueryServiceTest, AnswersMatchSoloEvaluation) {
  xml::Tree tree = Hospital(15, 3);
  QueryService service(tree, {.num_threads = 2});
  for (const std::string& q : WorkloadQueries()) {
    auto answer = service.Query(q);
    ASSERT_TRUE(answer.ok()) << q;
    EXPECT_EQ(answer.value(), SoloAnswer(tree, q)) << q;
  }
}

TEST(QueryServiceTest, MalformedQueriesFailTheirFutureOnly) {
  xml::Tree tree = Hospital(5, 9);
  QueryService service(tree, {.num_threads = 2, .max_batch = 4});
  auto bad = service.Submit("department/[");
  auto good = service.Submit("department/patient/pname");
  auto bad2 = service.Submit("((");
  auto answer = good.get();
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value(), SoloAnswer(tree, "department/patient/pname"));
  EXPECT_FALSE(bad.get().ok());
  EXPECT_FALSE(bad2.get().ok());

  auto stats = service.stats();
  EXPECT_EQ(stats.queries_failed, 2);
}

TEST(QueryServiceTest, ViewModeRewritesBeforeEvaluating) {
  // Queries posed against the view are rewritten to source MFAs and
  // evaluated over the source document (Section 5).
  xml::Tree tree = Hospital(10, 17);
  view::ViewDef def = gen::HospitalView();
  QueryService service(tree, {.view = &def, .num_threads = 2});

  const std::string query =
      "patient[(parent/patient)*/record/diagnosis/text() = 'heart disease']";
  auto answer = service.Query(query);
  ASSERT_TRUE(answer.ok());

  auto parsed = xpath::ParseQuery(query);
  ASSERT_TRUE(parsed.ok());
  auto rewritten = rewrite::RewriteToMfa(parsed.value(), def);
  ASSERT_TRUE(rewritten.ok());
  hype::HypeEvaluator solo(tree, rewritten.value());
  EXPECT_EQ(answer.value(), solo.Eval(tree.root()));
}

TEST(QueryServiceTest, IndexedServiceMatchesUnindexed) {
  xml::Tree tree = Hospital(12, 21);
  hype::SubtreeLabelIndex index =
      hype::SubtreeLabelIndex::Build(tree, hype::SubtreeLabelIndex::Mode::kFull);
  QueryService service(tree, {.index = &index, .num_threads = 2});
  for (const std::string& q : WorkloadQueries()) {
    auto answer = service.Query(q);
    ASSERT_TRUE(answer.ok()) << q;
    EXPECT_EQ(answer.value(), SoloAnswer(tree, q)) << q;
  }
}

// The headline stress test: many client threads, randomized query streams,
// duplicate texts, admission batching under contention -- every future must
// resolve to the solo answer. (The `concurrency` label runs this under both
// ASan and TSan in CI.)
TEST(QueryServiceTest, RandomizedMultiClientStress) {
  xml::Tree tree = Hospital(25, 31);
  const std::vector<std::string> queries = WorkloadQueries();
  std::map<std::string, NodeVec> expected;
  for (const std::string& q : queries) expected[q] = SoloAnswer(tree, q);

  QueryServiceOptions options;
  options.num_threads = 4;
  options.max_batch = 8;
  options.max_delay = std::chrono::microseconds(500);
  QueryService service(tree, options);

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 40;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(1000 + c);
      std::vector<std::pair<std::string, std::future<QueryService::Answer>>>
          inflight;
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const std::string& q = queries[rng() % queries.size()];
        inflight.emplace_back(q, service.Submit(q));
        // Wait in bursts so submissions from different clients interleave
        // into shared admission batches.
        if (inflight.size() >= 5) {
          for (auto& [text, fut] : inflight) {
            auto answer = fut.get();
            if (!answer.ok() || answer.value() != expected[text]) {
              ++failures[c];
            }
          }
          inflight.clear();
        }
      }
      for (auto& [text, fut] : inflight) {
        auto answer = fut.get();
        if (!answer.ok() || answer.value() != expected[text]) ++failures[c];
      }
    });
  }
  for (std::thread& c : clients) c.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }

  auto stats = service.stats();
  EXPECT_EQ(stats.queries_submitted, kClients * kQueriesPerClient);
  EXPECT_EQ(stats.queries_answered, kClients * kQueriesPerClient);
  EXPECT_EQ(stats.queries_failed, 0);
  EXPECT_GE(stats.batches, 1);
  EXPECT_LE(stats.max_batch_seen, 8);
  EXPECT_EQ(stats.cache.misses, static_cast<int64_t>(queries.size()));
}

TEST(QueryServiceTest, CoalescesDuplicateQueriesInABatch) {
  xml::Tree tree = Hospital(8, 41);
  QueryServiceOptions options;
  options.num_threads = 2;
  options.max_batch = 32;
  // Generous delay so one batch collects everything submitted below.
  options.max_delay = std::chrono::milliseconds(200);
  QueryService service(tree, options);

  const std::string q = "department/patient/pname";
  const NodeVec expected = SoloAnswer(tree, q);
  std::vector<std::future<QueryService::Answer>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(service.Submit(q));
  for (auto& f : futures) {
    auto answer = f.get();
    ASSERT_TRUE(answer.ok());
    EXPECT_EQ(answer.value(), expected);
  }
  auto stats = service.stats();
  // All 32 submissions carried the same text; whatever batching happened,
  // at least one batch held duplicates that were evaluated once.
  EXPECT_GT(stats.coalesced_duplicates, 0);
  EXPECT_EQ(stats.cache.misses, 1);
}

TEST(QueryServiceTest, ShutdownDrainsSubmittedQueries) {
  xml::Tree tree = Hospital(10, 53);
  const std::string q = "//diagnosis";
  const NodeVec expected = SoloAnswer(tree, q);
  std::vector<std::future<QueryService::Answer>> futures;
  {
    QueryServiceOptions options;
    options.num_threads = 2;
    options.max_batch = 4;
    options.max_delay = std::chrono::milliseconds(50);
    QueryService service(tree, options);
    for (int i = 0; i < 20; ++i) futures.push_back(service.Submit(q));
  }  // ~QueryService before most batches could have dispatched
  for (auto& f : futures) {
    auto answer = f.get();
    ASSERT_TRUE(answer.ok());
    EXPECT_EQ(answer.value(), expected);
  }
}

TEST(QueryServiceTest, ExplicitShutdownSemantics) {
  xml::Tree tree = Hospital(5, 57);
  const std::string q = "//diagnosis";
  const NodeVec expected = SoloAnswer(tree, q);
  QueryService service(tree, {.num_threads = 2});
  auto pre = service.Submit(q);
  service.Shutdown();
  // Everything submitted before Shutdown is answered (drain), Shutdown is
  // idempotent, and post-Shutdown submissions fail fast instead of hanging
  // on a future no dispatcher will ever fulfill.
  auto answer = pre.get();
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value(), expected);
  service.Shutdown();
  auto post = service.Submit(q);
  ASSERT_EQ(post.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  auto rejected = post.get();
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
}  // destructor after an explicit Shutdown must also be a clean no-op

// The regression this PR fixes: Submit's (and Shutdown's) cv_ notification
// used to happen after the mutex was released, so a submitter's notify
// could touch the condition variable after a racing teardown destroyed it.
// Race many submitters against one explicit Shutdown; under TSan (the
// `concurrency` CI job) the old code reports the lifetime race, and every
// future -- admitted into the drain or rejected -- must still resolve.
TEST(QueryServiceTest, SubmitRacingShutdownNeverHangs) {
  xml::Tree tree = Hospital(5, 59);
  const std::string q = "department/patient/pname";
  const NodeVec expected = SoloAnswer(tree, q);
  for (int round = 0; round < 8; ++round) {
    QueryService service(tree, {.num_threads = 2, .max_batch = 4});
    std::atomic<bool> go{false};
    std::vector<std::future<QueryService::Answer>> futures(16);
    std::vector<std::thread> submitters;
    std::atomic<int> next{0};
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < 4; ++i) {
          futures[next.fetch_add(1)] = service.Submit(q);
        }
      });
    }
    go.store(true, std::memory_order_release);
    service.Shutdown();
    for (auto& t : submitters) t.join();
    for (auto& f : futures) {
      ASSERT_TRUE(f.valid());
      auto answer = f.get();  // must resolve either way -- never hang
      if (answer.ok()) {
        EXPECT_EQ(answer.value(), expected);
      } else {
        EXPECT_EQ(answer.status().code(), StatusCode::kFailedPrecondition);
      }
    }
  }
}

// ----------------------------- deadlines, cancellation, admission --

TEST(QueryServiceTest, ExpiredDeadlineResolvesDeadlineExceeded) {
  xml::Tree tree = Hospital(5, 71);
  QueryService service(tree, {.num_threads = 2});
  SubmitOptions submit;
  submit.deadline = Deadline::After(std::chrono::microseconds(0));
  auto answer = service.Submit("//diagnosis", submit).get();
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded);
  auto stats = service.stats();
  EXPECT_EQ(stats.queries_timed_out, 1);
  EXPECT_EQ(stats.queries_answered, 1);
}

TEST(QueryServiceTest, GenerousDeadlineStillAnswersCorrectly) {
  xml::Tree tree = Hospital(8, 73);
  QueryService service(tree, {.num_threads = 2});
  const std::string q = "department/patient/pname";
  SubmitOptions submit;
  submit.deadline = Deadline::After(std::chrono::seconds(30));
  auto answer = service.Submit(q, submit).get();
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value(), SoloAnswer(tree, q));
  EXPECT_EQ(service.stats().queries_timed_out, 0);
}

TEST(QueryServiceTest, CancelledTokenResolvesCancelled) {
  xml::Tree tree = Hospital(5, 79);
  QueryServiceOptions options;
  options.num_threads = 2;
  options.max_batch = 64;
  options.max_delay = std::chrono::milliseconds(100);  // held in the queue
  QueryService service(tree, options);
  CancelToken token;
  SubmitOptions submit;
  submit.cancel = &token;
  auto future = service.Submit("//diagnosis", submit);
  token.Cancel();
  auto answer = future.get();
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(service.stats().queries_cancelled, 1);
}

TEST(QueryServiceTest, MixedBatchIsolatesPerQueryDeadlines) {
  // One coalesced admission batch holding an already-expired member and a
  // healthy one: the expired member resolves kDeadlineExceeded while the
  // healthy member still gets the full answer (the min-deadline retry).
  xml::Tree tree = Hospital(8, 83);
  QueryServiceOptions options;
  options.num_threads = 2;
  options.max_batch = 64;
  options.max_delay = std::chrono::milliseconds(20);
  QueryService service(tree, options);
  const std::string q = "department/patient/pname";
  SubmitOptions expired;
  expired.deadline = Deadline::After(std::chrono::microseconds(1));
  auto doomed = service.Submit("//diagnosis", expired);
  auto healthy = service.Submit(q);
  auto doomed_answer = doomed.get();
  ASSERT_FALSE(doomed_answer.ok());
  EXPECT_EQ(doomed_answer.status().code(), StatusCode::kDeadlineExceeded);
  auto healthy_answer = healthy.get();
  ASSERT_TRUE(healthy_answer.ok());
  EXPECT_EQ(healthy_answer.value(), SoloAnswer(tree, q));
}

TEST(QueryServiceTest, QueueDepthSheddingRejectsOverload) {
  xml::Tree tree = Hospital(5, 89);
  QueryServiceOptions options;
  options.num_threads = 1;
  options.max_batch = 1000;  // admission holds the queue open...
  options.max_delay = std::chrono::milliseconds(200);  // ...for 200ms
  options.max_queue = 2;
  QueryService service(tree, options);
  std::vector<std::future<QueryService::Answer>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(service.Submit("//diagnosis"));
  int ok = 0;
  int shed = 0;
  for (auto& f : futures) {
    auto answer = f.get();
    if (answer.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(answer.status().code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  // The queue admits at most 2 at a time; at least 6 - 2 - (one batch the
  // dispatcher may already have popped) must have been shed.
  EXPECT_GE(shed, 2);
  EXPECT_EQ(ok + shed, 6);
  auto stats = service.stats();
  EXPECT_EQ(stats.queries_shed, shed);
  EXPECT_EQ(stats.queries_answered, 6);
}

// The satellite regression of this PR: the dispatcher's batch-admission
// wait loop used to trust the condition variable's return alone, so a storm
// of Submit notifications could keep re-arming the wait and hold a batch
// open far past its age deadline. The fixed loop re-checks the clock after
// every wakeup. Under an injected dispatcher stall (which widens the
// window where submissions land mid-collection) and a continuous
// submission trickle, the first future must still resolve within a few age
// deadlines -- not when the trickle ends.
TEST(QueryServiceTest, AgedBatchClosesUnderSubmissionStorm) {
  xml::Tree tree = Hospital(5, 97);
#ifdef SMOQE_FAULT_INJECTION
  auto& fi = FaultInjector::Global();
  fi.Arm(12345);
  fi.SetPlan(FaultSite::kServiceDispatch,
             {FaultKind::kDelay, /*one_in=*/1, std::chrono::milliseconds(2)});
#endif
  {
    QueryServiceOptions options;
    options.num_threads = 2;
    options.max_batch = 100000;  // age is the only way a batch can close
    options.max_delay = std::chrono::milliseconds(2);
    QueryService service(tree, options);

    std::atomic<bool> stop{false};
    std::thread storm([&] {
      // Keep notifying the dispatcher; every Submit is a wakeup.
      while (!stop.load(std::memory_order_acquire)) {
        service.Submit("department/patient/pname");
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
    });
    const auto t0 = std::chrono::steady_clock::now();
    auto answer = service.Submit("//diagnosis").get();
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    stop.store(true, std::memory_order_release);
    storm.join();
    ASSERT_TRUE(answer.ok());
    EXPECT_EQ(answer.value(), SoloAnswer(tree, "//diagnosis"));
    // Generous bound (the age deadline is 2ms): resolution within 2s proves
    // the batch closed by age despite the storm, with slack for slow CI.
    EXPECT_LT(elapsed, std::chrono::seconds(2));
    EXPECT_GE(service.stats().batches_aged, 1);
  }
#ifdef SMOQE_FAULT_INJECTION
  fi.Disarm();
#endif
}

TEST(QueryServiceTest, BatchSizeOneServesImmediately) {
  xml::Tree tree = Hospital(5, 61);
  QueryService service(tree, {.num_threads = 1, .max_batch = 1});
  for (int i = 0; i < 5; ++i) {
    auto answer = service.Query("department/patient/pname");
    ASSERT_TRUE(answer.ok());
  }
  auto stats = service.stats();
  EXPECT_GE(stats.batches, 5);
  // Identical consecutive batches are served by one warm sharded evaluator.
  EXPECT_GE(stats.evaluator_reuses, 4);
}

TEST(QueryServiceTest, BatchSizeZeroIsClampedNotSpun) {
  xml::Tree tree = Hospital(5, 67);
  QueryService service(tree, {.num_threads = 1, .max_batch = 0});
  auto answer = service.Query("//diagnosis");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value(), SoloAnswer(tree, "//diagnosis"));
}

// The min-deadline retry loop is now BOUNDED (PR 9 satellite): a survivor
// of an aborted evaluation round burns one unit of its
// SubmitOptions::max_retries budget per re-evaluation, is counted in
// stats().queries_retried, and past the budget resolves kUnavailable
// ("safe to resubmit") instead of riding the dispatcher forever. The abort
// trigger here is a sibling's mid-evaluation cancellation, with an injected
// per-shard-unit delay stretching the evaluation so the cancel reliably
// lands mid-flight. Timing can still race on a loaded machine, so each
// attempt asserts only interleaving-proof invariants and the test loops
// until the retry path was provably taken.
TEST(QueryServiceTest, SurvivorOfAbortedRoundBurnsRetryBudget) {
#ifndef SMOQE_FAULT_INJECTION
  GTEST_SKIP() << "needs the injected shard-unit delay for a reliable "
                  "mid-evaluation abort";
#else
  xml::Tree tree = Hospital(12, 101);
  const std::string q = "department/patient/pname";
  const auto solo = SoloAnswer(tree, q);
  auto& fi = FaultInjector::Global();
  fi.Arm(0xB0DCE7);
  fi.SetPlan(FaultSite::kShardUnit,
             {FaultKind::kDelay, /*one_in=*/1, std::chrono::milliseconds(1)});
  bool saw_retry = false;
  for (int attempt = 0; attempt < 20 && !saw_retry; ++attempt) {
    QueryServiceOptions options;
    options.num_threads = 2;
    options.max_batch = 64;
    options.max_delay = std::chrono::milliseconds(5);  // coalesce the pair
    QueryService service(tree, options);
    CancelToken token;
    SubmitOptions doomed;
    doomed.cancel = &token;
    auto doomed_future = service.Submit("//diagnosis", doomed);
    auto healthy_future = service.Submit(q);
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
    token.Cancel();

    // Interleaving-proof: the healthy member always gets the right answer,
    // the cancelled member never gets a WRONG one.
    auto healthy = healthy_future.get();
    ASSERT_TRUE(healthy.ok()) << healthy.status().message();
    EXPECT_EQ(healthy.value(), solo);
    auto cancelled = doomed_future.get();
    if (!cancelled.ok()) {
      EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
    }
    auto stats = service.stats();
    if (stats.queries_retried >= 1) {
      saw_retry = true;  // the healthy member survived an aborted round
      EXPECT_EQ(stats.retries_exhausted, 0);  // default budget is 16
    }
  }
  fi.Disarm();
  EXPECT_TRUE(saw_retry)
      << "no attempt aborted mid-evaluation; retry path never exercised";
#endif
}

TEST(QueryServiceTest, ExhaustedRetryBudgetResolvesUnavailable) {
#ifndef SMOQE_FAULT_INJECTION
  GTEST_SKIP() << "needs the injected shard-unit delay for a reliable "
                  "mid-evaluation abort";
#else
  xml::Tree tree = Hospital(12, 103);
  const std::string q = "department/patient/pname";
  const auto solo = SoloAnswer(tree, q);
  auto& fi = FaultInjector::Global();
  fi.Arm(0xE4A057);
  fi.SetPlan(FaultSite::kShardUnit,
             {FaultKind::kDelay, /*one_in=*/1, std::chrono::milliseconds(1)});
  bool saw_exhaustion = false;
  for (int attempt = 0; attempt < 20 && !saw_exhaustion; ++attempt) {
    QueryServiceOptions options;
    options.num_threads = 2;
    options.max_batch = 64;
    options.max_delay = std::chrono::milliseconds(5);
    QueryService service(tree, options);
    CancelToken token;
    SubmitOptions doomed;
    doomed.cancel = &token;
    SubmitOptions no_budget;
    no_budget.max_retries = 0;  // any aborted round exhausts immediately
    auto doomed_future = service.Submit("//diagnosis", doomed);
    auto broke_future = service.Submit(q, no_budget);
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
    token.Cancel();

    // With a zero budget the healthy member either finished before any
    // abort (correct answer) or resolves kUnavailable -- never a wrong
    // answer, never a hang.
    auto broke = broke_future.get();
    if (broke.ok()) {
      EXPECT_EQ(broke.value(), solo);
    } else {
      ASSERT_EQ(broke.status().code(), StatusCode::kUnavailable);
      EXPECT_NE(broke.status().message().find("retry budget exhausted"),
                std::string::npos);
      saw_exhaustion = true;
      EXPECT_GE(service.stats().retries_exhausted, 1);
      EXPECT_EQ(service.stats().queries_retried, 0);  // budget 0: none survive
    }
    (void)doomed_future.get();
  }
  fi.Disarm();
  EXPECT_TRUE(saw_exhaustion)
      << "no attempt aborted mid-evaluation; exhaustion path never exercised";
#endif
}

// A negative max_retries is clamped to zero at Submit, not trusted.
TEST(QueryServiceTest, NegativeRetryBudgetClampsToZero) {
  xml::Tree tree = Hospital(5, 107);
  QueryService service(tree, {.num_threads = 1});
  SubmitOptions submit;
  submit.max_retries = -7;
  auto answer = service.Submit("//diagnosis", submit).get();
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value(), SoloAnswer(tree, "//diagnosis"));
  EXPECT_EQ(service.stats().retries_exhausted, 0);
}

}  // namespace
}  // namespace smoqe::exec
