// Randomized property tests: all engines agree on random documents x random
// queries; rewriting agrees with materialize-then-evaluate on random view
// queries. Seeds are fixed, so failures reproduce.

#include <gtest/gtest.h>

#include "automata/compiler.h"
#include "automata/conceptual_eval.h"
#include "dtd/dtd_parser.h"
#include "eval/galax_substitute.h"
#include "eval/naive_evaluator.h"
#include "eval/xpath_baseline.h"
#include "gen/fixtures.h"
#include "gen/generic_generator.h"
#include "gen/hospital_generator.h"
#include "gen/query_generator.h"
#include "hype/hype.h"
#include "hype/index.h"
#include "rewrite/direct_rewriter.h"
#include "rewrite/rewriter.h"
#include "view/materializer.h"
#include "xpath/printer.h"
#include "xpath/x_fragment.h"

namespace smoqe {
namespace {

dtd::Dtd TestDtd() {
  auto d = dtd::ParseDtd(
      "dtd r { r -> a*, b* ; a -> t, a* , b* ; b -> t, c* ; c -> a* ; "
      "t -> #text ; }");
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  return d.take();
}

// All engines on one (tree, query) pair; returns the naive answer.
void CheckAllEngines(const xml::Tree& tree, const xpath::PathPtr& query) {
  eval::NaiveEvaluator naive(tree);
  eval::NodeSet expected = naive.Eval(query, tree.root());

  automata::Mfa mfa = automata::CompileQuery(query);
  ASSERT_TRUE(automata::CheckWellFormed(mfa).empty())
      << xpath::ToString(query);
  EXPECT_TRUE(automata::HasSplitProperty(mfa)) << xpath::ToString(query);

  hype::HypeEvaluator hype_eval(tree, mfa);
  EXPECT_EQ(hype_eval.Eval(tree.root()), expected)
      << "HyPE disagrees on " << xpath::ToString(query);

  hype::SubtreeLabelIndex full =
      hype::SubtreeLabelIndex::Build(tree, hype::SubtreeLabelIndex::Mode::kFull);
  hype::HypeOptions opt;
  opt.index = &full;
  hype::HypeEvaluator opt_eval(tree, mfa, opt);
  EXPECT_EQ(opt_eval.Eval(tree.root()), expected)
      << "OptHyPE disagrees on " << xpath::ToString(query);

  hype::SubtreeLabelIndex compressed = hype::SubtreeLabelIndex::Build(
      tree, hype::SubtreeLabelIndex::Mode::kCompressed, 8);
  hype::HypeOptions optc;
  optc.index = &compressed;
  hype::HypeEvaluator optc_eval(tree, mfa, optc);
  EXPECT_EQ(optc_eval.Eval(tree.root()), expected)
      << "OptHyPE-C disagrees on " << xpath::ToString(query);

  automata::ConceptualEvaluator conceptual(tree, mfa);
  EXPECT_EQ(conceptual.Eval(tree.root()), expected)
      << "conceptual eval disagrees on " << xpath::ToString(query);

  eval::GalaxSubstitute galax(tree);
  EXPECT_EQ(galax.Eval(query, tree.root()), expected)
      << "galax substitute disagrees on " << xpath::ToString(query);

  if (xpath::IsInXFragment(query) && !xpath::UsesPosition(query)) {
    eval::XPathBaseline baseline(tree);
    auto r = baseline.Eval(query, tree.root());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), expected)
        << "xpath baseline disagrees on " << xpath::ToString(query);
  }
}

class EngineAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineAgreementTest, RandomTreesAndQueries) {
  const int round = GetParam();
  dtd::Dtd d = TestDtd();
  gen::GenericParams tree_params;
  tree_params.seed = 1000 + round;
  tree_params.star_max = 3;
  tree_params.soft_depth = 6;
  auto tree = gen::GenerateFromDtd(d, tree_params);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();

  gen::QueryGenParams qparams;
  qparams.labels = {"a", "b", "c", "t", "r"};
  qparams.text_values = {"alpha", "beta"};
  qparams.allow_position = true;
  std::mt19937_64 rng(5000 + round);
  for (int i = 0; i < 25; ++i) {
    xpath::PathPtr query = gen::RandomQuery(qparams, &rng);
    CheckAllEngines(tree.value(), query);
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, EngineAgreementTest, ::testing::Range(0, 8));

class RewritePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RewritePropertyTest, RewriteAgreesWithMaterialization) {
  const int round = GetParam();
  view::ViewDef def = gen::HospitalView();
  gen::HospitalParams hp;
  hp.patients = 12;
  hp.seed = 300 + round;
  hp.heart_disease_prob = 0.4;
  xml::Tree source = gen::GenerateHospital(hp);
  auto mat = view::Materialize(def, source);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();

  gen::QueryGenParams qparams;
  qparams.labels = {"patient", "parent", "record", "empty", "diagnosis",
                    "hospital"};
  qparams.text_values = {"heart disease", "lung disease"};
  qparams.allow_position = false;
  qparams.max_depth = 3;
  std::mt19937_64 rng(900 + round);

  eval::NaiveEvaluator on_view(mat.value().tree);
  for (int i = 0; i < 12; ++i) {
    xpath::PathPtr query = gen::RandomQuery(qparams, &rng);
    eval::NodeSet view_nodes =
        on_view.Eval(query, mat.value().tree.root());
    std::vector<xml::NodeId> expected =
        view::MapToSource(mat.value(), view_nodes);

    auto mfa = rewrite::RewriteToMfa(query, def);
    ASSERT_TRUE(mfa.ok()) << xpath::ToString(query) << ": "
                          << mfa.status().ToString();
    hype::HypeEvaluator hype_eval(source, mfa.value());
    EXPECT_EQ(hype_eval.Eval(source.root()), expected)
        << "MFA rewriting disagrees on " << xpath::ToString(query);
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, RewritePropertyTest, ::testing::Range(0, 6));

class DirectRewritePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DirectRewritePropertyTest, DirectRewriteAgreesToo) {
  const int round = GetParam();
  view::ViewDef def = gen::HospitalView();
  gen::HospitalParams hp;
  hp.patients = 8;
  hp.seed = 700 + round;
  hp.heart_disease_prob = 0.4;
  xml::Tree source = gen::GenerateHospital(hp);
  auto mat = view::Materialize(def, source);
  ASSERT_TRUE(mat.ok());

  gen::QueryGenParams qparams;
  qparams.labels = {"patient", "parent", "record", "diagnosis"};
  qparams.text_values = {"heart disease"};
  qparams.max_depth = 2;  // keep the explicit rewriting small
  std::mt19937_64 rng(1300 + round);

  eval::NaiveEvaluator on_view(mat.value().tree);
  eval::NaiveEvaluator on_source(source);
  for (int i = 0; i < 8; ++i) {
    xpath::PathPtr query = gen::RandomQuery(qparams, &rng);
    std::vector<xml::NodeId> expected = view::MapToSource(
        mat.value(), on_view.Eval(query, mat.value().tree.root()));
    auto direct = rewrite::DirectRewrite(query, def);
    ASSERT_TRUE(direct.ok()) << xpath::ToString(query);
    EXPECT_EQ(on_source.Eval(direct.value(), source.root()), expected)
        << "direct rewriting disagrees on " << xpath::ToString(query);
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, DirectRewritePropertyTest,
                         ::testing::Range(0, 4));

TEST(PropertyTest, EvalAtEveryContextNode) {
  // HyPE must agree with naive at arbitrary context nodes, not just the root.
  dtd::Dtd d = TestDtd();
  gen::GenericParams tree_params;
  tree_params.seed = 77;
  auto tree = gen::GenerateFromDtd(d, tree_params);
  ASSERT_TRUE(tree.ok());
  const xml::Tree& t = tree.value();
  gen::QueryGenParams qparams;
  qparams.labels = {"a", "b", "c"};
  std::mt19937_64 rng(88);
  eval::NaiveEvaluator naive(t);
  for (int i = 0; i < 10; ++i) {
    xpath::PathPtr query = gen::RandomQuery(qparams, &rng);
    automata::Mfa mfa = automata::CompileQuery(query);
    hype::HypeEvaluator hype_eval(t, mfa);
    for (xml::NodeId n = 0; n < t.size(); n += 7) {
      if (!t.is_element(n)) continue;
      EXPECT_EQ(hype_eval.Eval(n), naive.Eval(query, n))
          << xpath::ToString(query) << " at node " << n;
    }
  }
}

}  // namespace
}  // namespace smoqe
