// common::ThreadPool: future plumbing, concurrent submission, nested
// (worker-side) submission, work stealing, and drain-on-destruction. Runs
// under the `concurrency` CTest label, so the TSan CI job exercises every
// queue/wake path.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace smoqe::common {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  std::vector<std::future<int>> results;
  for (int i = 0; i < 100; ++i) {
    results.push_back(pool.SubmitWithResult([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(results[i].get(), i * i);
  }
  // The futures above were submitted after the plain tasks onto the same
  // deques, but ordering across deques is not guaranteed -- wait explicitly.
  while (count.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DefaultWidthIsHardware) {
  ThreadPool pool;
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareThreads());
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, TasksRunOnPoolThreadsNotTheCaller) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.OnPoolThread());
  auto on_pool = pool.SubmitWithResult([&pool] { return pool.OnPoolThread(); });
  EXPECT_TRUE(on_pool.get());
}

TEST(ThreadPoolTest, ManyConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  constexpr int kClients = 8;
  constexpr int kTasksPerClient = 500;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&pool, &sum] {
      for (int t = 0; t < kTasksPerClient; ++t) {
        pool.Submit([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (std::thread& c : clients) c.join();
  while (sum.load() < kClients * kTasksPerClient) std::this_thread::yield();
  EXPECT_EQ(sum.load(), kClients * kTasksPerClient);
}

TEST(ThreadPoolTest, NestedSubmissionFromWorkers) {
  ThreadPool pool(3);
  std::atomic<int> leaves{0};
  // Each root task fans out children from inside the pool; nested Submit
  // must not deadlock and every leaf must run.
  std::vector<std::future<void>> roots;
  for (int r = 0; r < 8; ++r) {
    roots.push_back(pool.SubmitWithResult([&pool, &leaves] {
      for (int k = 0; k < 16; ++k) {
        pool.Submit(
            [&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); });
      }
    }));
  }
  for (auto& r : roots) r.get();
  while (leaves.load() < 8 * 16) std::this_thread::yield();
  EXPECT_EQ(leaves.load(), 8 * 16);
}

TEST(ThreadPoolTest, StealingDrainsAnUnbalancedQueue) {
  ThreadPool pool(4);
  // One long task occupies its worker while the short tasks -- all
  // round-robined across the deques -- must still finish promptly because
  // idle workers steal them.
  std::atomic<bool> release{false};
  std::atomic<int> shorts{0};
  auto long_task = pool.SubmitWithResult([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  std::vector<std::future<void>> short_tasks;
  for (int i = 0; i < 64; ++i) {
    short_tasks.push_back(pool.SubmitWithResult(
        [&shorts] { shorts.fetch_add(1, std::memory_order_relaxed); }));
  }
  for (auto& t : short_tasks) t.get();  // completes while long_task blocks
  EXPECT_EQ(shorts.load(), 64);
  release.store(true);
  long_task.get();
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto failing = pool.SubmitWithResult(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
  // The worker survives the packaged_task exception.
  EXPECT_EQ(pool.SubmitWithResult([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // ~ThreadPool: every already-submitted task must have run
  EXPECT_EQ(ran.load(), 200);
}

// ------------------------------------------- shutdown under load --
// The destructor's contract while work is still arriving: a Submit accepted
// before teardown always runs; a Submit racing (or following) the
// destructor is dropped -- SubmitWithResult futures then report
// broken_promise -- and nothing crashes or deadlocks. These run under the
// `concurrency` label, so the TSan CI job checks the teardown paths.

TEST(ThreadPoolTest, DestructionRacingExternalSubmitters) {
  for (int round = 0; round < 10; ++round) {
    std::atomic<int64_t> ran{0};
    std::atomic<int64_t> accepted_or_broken{0};
    std::vector<std::thread> submitters;
    {
      ThreadPool pool(3);
      std::atomic<bool> go{false};
      for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&pool, &go, &ran, &accepted_or_broken] {
          while (!go.load(std::memory_order_acquire)) {
          }
          for (int i = 0; i < 64; ++i) {
            auto f = pool.SubmitWithResult(
                [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
            try {
              f.get();  // either the task ran...
              accepted_or_broken.fetch_add(1, std::memory_order_relaxed);
            } catch (const std::future_error&) {
              // ...or the pool was tearing down and dropped it cleanly.
              accepted_or_broken.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
      go.store(true, std::memory_order_release);
      // Fall out of scope immediately: the destructor races the submitters.
    }
    for (std::thread& t : submitters) t.join();
    // Every submission resolved one way or the other -- no hang, no loss
    // without a broken_promise signal.
    EXPECT_EQ(accepted_or_broken.load(), 4 * 64);
    EXPECT_LE(ran.load(), 4 * 64);
  }
}

TEST(ThreadPoolTest, DestructionRacingNestedWorkerSubmits) {
  // Workers that keep spawning children while the pool shuts down: each
  // chain stops growing the moment a nested Submit is rejected, the
  // destructor drains whatever was accepted, and the chain depth proves
  // nested work actually ran during the teardown window.
  std::atomic<int64_t> spawned{0};
  {
    // Declared before the pool: tasks drained by ~ThreadPool still invoke
    // `chain`, so it must outlive the destructor.
    std::function<void(int)> chain;
    ThreadPool pool(3);
    chain = [&pool, &spawned, &chain](int depth) {
      spawned.fetch_add(1, std::memory_order_relaxed);
      if (depth < 2000) {
        pool.Submit([&chain, depth] { chain(depth + 1); });
      }
    };
    for (int r = 0; r < 6; ++r) {
      pool.Submit([&chain] { chain(0); });
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }  // destructor races the self-perpetuating chains
  EXPECT_GT(spawned.load(), 0);
}

TEST(ThreadPoolTest, SubmitAfterDestructionWindowIsRejectedNotLost) {
  // A future obtained from a Submit that raced teardown must resolve
  // (value or broken_promise), never hang.
  std::future<int> late;
  {
    ThreadPool pool(2);
    late = pool.SubmitWithResult([] { return 11; });
  }
  // Accepted before teardown: the drain ran it.
  EXPECT_EQ(late.get(), 11);
}

}  // namespace
}  // namespace smoqe::common
