#include <gtest/gtest.h>

#include "eval/galax_substitute.h"
#include "eval/naive_evaluator.h"
#include "eval/xpath_baseline.h"
#include "gen/fixtures.h"
#include "gen/hospital_generator.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace smoqe::eval {
namespace {

xml::Tree Doc(const char* text) {
  auto t = xml::ParseXml(text);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return t.take();
}

TEST(XPathBaselineTest, MatchesNaiveOnXQueries) {
  xml::Tree t = Doc(
      "<r><a><x/><d>v</d></a><a><y/></a><b><a><x/></a></b><c>w</c></r>");
  XPathBaseline baseline(t);
  NaiveEvaluator naive(t);
  for (const char* q :
       {".", "a", "*", "a/x", "a | b", "//a", "//a[x]", "a[not(x)]",
        "a[x or y]", "a[d/text() = 'v']", "c[text() = 'w']", "//*",
        "a[position() = 2]", ".//a/x", "b//x"}) {
    auto query = xpath::ParseQuery(q);
    ASSERT_TRUE(query.ok()) << q;
    auto result = baseline.Eval(query.value(), t.root());
    ASSERT_TRUE(result.ok()) << q;
    EXPECT_EQ(result.value(), naive.Eval(query.value(), t.root())) << q;
  }
}

TEST(XPathBaselineTest, RejectsGeneralKleeneStar) {
  xml::Tree t = Doc("<r><a/></r>");
  XPathBaseline baseline(t);
  auto q = xpath::ParseQuery("(a/b)*");
  ASSERT_TRUE(q.ok());
  auto result = baseline.Eval(q.value(), t.root());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(XPathBaselineTest, AcceptsDescendantAxisStar) {
  xml::Tree t = Doc("<r><a><a/></a></r>");
  XPathBaseline baseline(t);
  auto q = xpath::ParseQuery("//a");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(baseline.Eval(q.value(), t.root()).ok());
}

TEST(GalaxSubstituteTest, MatchesNaiveIncludingStars) {
  xml::Tree t = Doc("<p><q><p><q><p><z/></p></q></p></q></p>");
  GalaxSubstitute galax(t);
  NaiveEvaluator naive(t);
  for (const char* q :
       {"(q/p)*", "q*", "(p | q)*", "(q/p)*/z", "//z", "q[p]",
        "(q/p)*[z | q]", "q/p[q[p[z]]]"}) {
    auto query = xpath::ParseQuery(q);
    ASSERT_TRUE(query.ok()) << q;
    EXPECT_EQ(galax.Eval(query.value(), t.root()),
              naive.Eval(query.value(), t.root()))
        << q;
  }
}

TEST(GalaxSubstituteTest, HospitalQueries) {
  gen::HospitalParams params;
  params.patients = 20;
  params.seed = 9;
  xml::Tree t = gen::GenerateHospital(params);
  GalaxSubstitute galax(t);
  NaiveEvaluator naive(t);
  for (const char* q :
       {"department/patient/(parent/patient)*",
        "department/patient[visit/treatment/medication/diagnosis/"
        "text() = 'heart disease']/pname"}) {
    auto query = xpath::ParseQuery(q);
    ASSERT_TRUE(query.ok());
    EXPECT_EQ(galax.Eval(query.value(), t.root()),
              naive.Eval(query.value(), t.root()))
        << q;
  }
}

}  // namespace
}  // namespace smoqe::eval
