// RewriteCache: normalized-text keying (hits across spellings), LRU
// eviction, error propagation, and the cached MFA answering exactly like a
// freshly rewritten/compiled one.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "automata/compiler.h"
#include "eval/naive_evaluator.h"
#include "gen/fixtures.h"
#include "gen/hospital_generator.h"
#include "hype/hype.h"
#include "rewrite/rewrite_cache.h"
#include "rewrite/rewriter.h"
#include "xpath/parser.h"

namespace smoqe::rewrite {
namespace {

xml::Tree Hospital(int patients) {
  gen::HospitalParams params;
  params.patients = patients;
  params.seed = 99;
  params.heart_disease_prob = 0.3;
  return gen::GenerateHospital(params);
}

TEST(RewriteCacheTest, NormalizationMergesSpellings) {
  RewriteCache cache(nullptr);
  // Whitespace, redundant parentheses, and the '//' sugar all normalize to
  // one key: first call misses, the rest hit the same entry.
  auto a = cache.Get("//diagnosis");
  auto b = cache.Get("  //  diagnosis ");
  auto c = cache.Get("(*)*/diagnosis");
  auto d = cache.Get("(((*)*/diagnosis))");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(a.value().mfa.get(), b.value().mfa.get());
  EXPECT_EQ(a.value().mfa.get(), c.value().mfa.get());
  EXPECT_EQ(a.value().mfa.get(), d.value().mfa.get());
  // A hit returns the warm compiled mirror, not just the automaton.
  ASSERT_NE(a.value().compiled, nullptr);
  EXPECT_EQ(a.value().compiled.get(), d.value().compiled.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 3);
}

TEST(RewriteCacheTest, CompiledMirrorMatchesMfa) {
  RewriteCache cache(nullptr);
  auto q = cache.Get("a/b[c]/d");
  ASSERT_TRUE(q.ok());
  const automata::Mfa& mfa = *q.value().mfa;
  const automata::CompiledMfa& cm = *q.value().compiled;
  ASSERT_EQ(cm.num_nfa_states(), mfa.num_nfa_states());
  ASSERT_EQ(cm.num_afa_states(), mfa.num_afa_states());
  EXPECT_EQ(cm.start, mfa.start);
  for (automata::StateId s = 0; s < mfa.num_nfa_states(); ++s) {
    EXPECT_EQ(cm.IsNfaFinal(s), mfa.nfa[s].is_final);
    EXPECT_EQ(cm.afa_entry[s], mfa.nfa[s].afa_entry);
    size_t labeled = 0, wild = 0;
    for (const automata::NfaTransition& t : mfa.nfa[s].trans) {
      (t.wildcard ? wild : labeled) += 1;
    }
    EXPECT_EQ(cm.TransOf(s).size(), labeled);
    EXPECT_EQ(cm.WildOf(s).size(), wild);
    EXPECT_EQ(cm.EpsOf(s).size(), mfa.nfa[s].eps.size());
    // The precomputed closure agrees with the reference EpsClosure.
    std::vector<automata::StateId> closure = {s};
    automata::EpsClosure(mfa, &closure);
    std::span<const automata::StateId> got = cm.ClosureOf(s);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), closure.begin(),
                           closure.end()));
  }
  // Stratified order: operands precede their operators unless they share a
  // strongly connected component (Kleene cycle).
  for (automata::StateId s = 0; s < mfa.num_afa_states(); ++s) {
    for (automata::StateId o : cm.OperandsOf(s)) {
      if (cm.afa_scc[o] != cm.afa_scc[s]) {
        EXPECT_LT(cm.afa_rank[o], cm.afa_rank[s]);
      }
    }
  }
}

TEST(RewriteCacheTest, NormalizeQueryIsCanonical) {
  auto k1 = RewriteCache::NormalizeQuery("a / b[c]");
  auto k2 = RewriteCache::NormalizeQuery("(a)/(b)[c]");
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(k2.ok());
  EXPECT_EQ(k1.value(), k2.value());
  EXPECT_FALSE(RewriteCache::NormalizeQuery("a[[").ok());
}

TEST(RewriteCacheTest, PlainModeAnswersMatchFreshCompilation) {
  xml::Tree tree = Hospital(10);
  RewriteCache cache(nullptr);
  const char* query = "department/patient[visit/treatment/test]/pname";
  auto cached = cache.Get(query);
  ASSERT_TRUE(cached.ok());
  // Second lookup returns the same MFA from the cache.
  auto again = cache.Get(query);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(cached.value().mfa.get(), again.value().mfa.get());

  hype::HypeEvaluator eval(tree, *cached.value().mfa);
  auto parsed = xpath::ParseQuery(query);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(eval.Eval(tree.root()),
            eval::NaiveEvaluator(tree).Eval(parsed.value(), tree.root()));
}

TEST(RewriteCacheTest, ViewModeAnswersMatchFreshRewrite) {
  view::ViewDef def = gen::HospitalView();
  xml::Tree source = Hospital(12);
  RewriteCache cache(&def);
  const char* query = "patient[record/diagnosis/text() = 'heart disease']";

  auto cached = cache.Get(query);
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(cache.Get(query).ok());
  EXPECT_EQ(cache.stats().hits, 1);

  auto parsed = xpath::ParseQuery(query);
  ASSERT_TRUE(parsed.ok());
  auto fresh = RewriteToMfa(parsed.value(), def);
  ASSERT_TRUE(fresh.ok());

  hype::HypeEvaluator cached_eval(source, *cached.value().mfa);
  hype::HypeEvaluator fresh_eval(source, fresh.value());
  EXPECT_EQ(cached_eval.Eval(source.root()), fresh_eval.Eval(source.root()));
}

TEST(RewriteCacheTest, LruEvictionAtCapacity) {
  RewriteCacheOptions options;
  options.capacity = 2;
  RewriteCache cache(nullptr, options);
  ASSERT_TRUE(cache.Get("a").ok());
  ASSERT_TRUE(cache.Get("b").ok());
  ASSERT_TRUE(cache.Get("a").ok());  // refresh 'a': 'b' is now oldest
  ASSERT_TRUE(cache.Get("c").ok());  // evicts 'b'
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  ASSERT_TRUE(cache.Get("a").ok());  // still cached
  EXPECT_EQ(cache.stats().hits, 2);
  ASSERT_TRUE(cache.Get("b").ok());  // evicted: a fresh miss
  EXPECT_EQ(cache.stats().misses, 4);
}

TEST(RewriteCacheTest, ErrorsPropagateAndAreNotCached) {
  RewriteCache cache(nullptr);
  EXPECT_FALSE(cache.Get("][").ok());
  EXPECT_EQ(cache.size(), 0u);

  // View mode: position() is not rewritable; the failure must not poison the
  // cache for later valid queries.
  view::ViewDef def = gen::HospitalView();
  RewriteCache view_cache(&def);
  EXPECT_FALSE(view_cache.Get("patient[position() = 2]").ok());
  EXPECT_EQ(view_cache.size(), 0u);
  EXPECT_TRUE(view_cache.Get("patient/record").ok());
}

TEST(RewriteCacheTest, ClearResetsEntriesButKeepsStats) {
  RewriteCache cache(nullptr);
  ASSERT_TRUE(cache.Get("a/b").ok());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  ASSERT_TRUE(cache.Get("a/b").ok());
  EXPECT_EQ(cache.stats().misses, 2);
}

}  // namespace
}  // namespace smoqe::rewrite
