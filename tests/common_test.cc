#include <gtest/gtest.h>

#include "common/name_table.h"
#include "common/status.h"

namespace smoqe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

StatusOr<int> Doubled(int x) {
  SMOQE_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOrTest, ValueAndErrorPaths) {
  StatusOr<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 21);

  StatusOr<int> bad = ParsePositive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(4).value(), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(StatusOrTest, TakeMovesValue) {
  StatusOr<std::string> s = std::string("hello");
  ASSERT_TRUE(s.ok());
  std::string v = s.take();
  EXPECT_EQ(v, "hello");
}

TEST(NameTableTest, InternIsIdempotent) {
  NameTable t;
  LabelId a = t.Intern("patient");
  LabelId b = t.Intern("doctor");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.Intern("patient"), a);
  EXPECT_EQ(t.size(), 2);
}

TEST(NameTableTest, LookupMissReturnsNoLabel) {
  NameTable t;
  EXPECT_EQ(t.Lookup("absent"), kNoLabel);
  t.Intern("present");
  EXPECT_EQ(t.Lookup("present"), 0);
  EXPECT_EQ(t.Lookup("absent"), kNoLabel);
}

TEST(NameTableTest, NameRoundTrips) {
  NameTable t;
  LabelId id = t.Intern("diagnosis");
  EXPECT_EQ(t.name(id), "diagnosis");
}

TEST(NameTableTest, ManyLabels) {
  NameTable t;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(t.Intern("label" + std::to_string(i)), i);
  }
  EXPECT_EQ(t.size(), 1000);
  EXPECT_EQ(t.Lookup("label999"), 999);
}

}  // namespace
}  // namespace smoqe
