#include <gtest/gtest.h>

#include <cstdlib>

#include "common/fault_injection.h"
#include "common/name_table.h"
#include "common/status.h"

namespace smoqe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

StatusOr<int> Doubled(int x) {
  SMOQE_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOrTest, ValueAndErrorPaths) {
  StatusOr<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 21);

  StatusOr<int> bad = ParsePositive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(4).value(), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(StatusOrTest, TakeMovesValue) {
  StatusOr<std::string> s = std::string("hello");
  ASSERT_TRUE(s.ok());
  std::string v = s.take();
  EXPECT_EQ(v, "hello");
}

TEST(NameTableTest, InternIsIdempotent) {
  NameTable t;
  LabelId a = t.Intern("patient");
  LabelId b = t.Intern("doctor");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.Intern("patient"), a);
  EXPECT_EQ(t.size(), 2);
}

TEST(NameTableTest, LookupMissReturnsNoLabel) {
  NameTable t;
  EXPECT_EQ(t.Lookup("absent"), kNoLabel);
  t.Intern("present");
  EXPECT_EQ(t.Lookup("present"), 0);
  EXPECT_EQ(t.Lookup("absent"), kNoLabel);
}

TEST(NameTableTest, NameRoundTrips) {
  NameTable t;
  LabelId id = t.Intern("diagnosis");
  EXPECT_EQ(t.name(id), "diagnosis");
}

// SMOQE_FAULT_PLAN spec parsing (PR 9). The parser itself is compiled
// unconditionally (only the call-site macros gate on SMOQE_FAULT_INJECTION),
// so these run in every configuration. Each test Arms (clearing plans and
// counters) and Disarms so it leaves no plan behind for later suites.

class FaultPlanSpecTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Arm(0x5EC5EC); }
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

TEST_F(FaultPlanSpecTest, InstallsDeterministicWindowsPerSite) {
  auto& fi = FaultInjector::Global();
  ASSERT_TRUE(
      fi.SetPlansFromSpec("wal_append:2:1,wal_fsync:0:2").ok());
  // wal_append fires on exactly hit #2.
  EXPECT_TRUE(fi.Hit(FaultSite::kWalAppend).ok());
  EXPECT_TRUE(fi.Hit(FaultSite::kWalAppend).ok());
  Status fired = fi.Hit(FaultSite::kWalAppend);
  EXPECT_EQ(fired.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(fi.Hit(FaultSite::kWalAppend).ok());
  EXPECT_EQ(fi.fired(FaultSite::kWalAppend), 1);
  // wal_fsync fires on hits #0 and #1, then never again.
  EXPECT_FALSE(fi.Hit(FaultSite::kWalFsync).ok());
  EXPECT_FALSE(fi.Hit(FaultSite::kWalFsync).ok());
  EXPECT_TRUE(fi.Hit(FaultSite::kWalFsync).ok());
  EXPECT_EQ(fi.fired(FaultSite::kWalFsync), 2);
  // Unnamed sites stay unplanned.
  EXPECT_TRUE(fi.Hit(FaultSite::kSnapshotWrite).ok());
}

TEST_F(FaultPlanSpecTest, FourthFieldSelectsTheKind) {
  auto& fi = FaultInjector::Global();
  ASSERT_TRUE(fi.SetPlansFromSpec(
                    "shard_unit:0:1:alloc,wal_append:0:1:torn,"
                    "wal_fsync:0:1:error")
                  .ok());
  EXPECT_EQ(fi.Hit(FaultSite::kShardUnit).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(fi.Hit(FaultSite::kWalFsync).code(), StatusCode::kUnavailable);
  // A torn plan on a write site yields a prefix strictly shorter than the
  // pending write; subsequent hits are clean and leave the prefix at 0.
  size_t keep = 999;
  EXPECT_FALSE(fi.HitWrite(FaultSite::kWalAppend, 64, &keep).ok());
  EXPECT_LT(keep, 64u);
  EXPECT_TRUE(fi.HitWrite(FaultSite::kWalAppend, 64, &keep).ok());
  EXPECT_EQ(keep, 0u);
}

TEST_F(FaultPlanSpecTest, ToleratesTrailingCommaAndEmptySpec) {
  auto& fi = FaultInjector::Global();
  EXPECT_TRUE(fi.SetPlansFromSpec("").ok());
  EXPECT_TRUE(fi.SetPlansFromSpec("snapshot_rename:1:1,").ok());
  EXPECT_TRUE(fi.Hit(FaultSite::kSnapshotRename).ok());
  EXPECT_FALSE(fi.Hit(FaultSite::kSnapshotRename).ok());
}

TEST_F(FaultPlanSpecTest, MalformedSpecsRejectAtomically) {
  auto& fi = FaultInjector::Global();
  EXPECT_EQ(fi.SetPlansFromSpec("bogus_site:0:1").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fi.SetPlansFromSpec("wal_append:0:1:explode").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fi.SetPlansFromSpec("wal_append:0:0").code(),
            StatusCode::kInvalidArgument);  // zero-width window
  EXPECT_EQ(fi.SetPlansFromSpec("wal_append:x:1").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fi.SetPlansFromSpec("wal_append:0").code(),
            StatusCode::kInvalidArgument);  // too few fields
  EXPECT_EQ(fi.SetPlansFromSpec("wal_append:0:1:torn:extra").code(),
            StatusCode::kInvalidArgument);  // too many fields
  EXPECT_EQ(fi.SetPlansFromSpec("wal_append:0:1,,wal_fsync:0:1").code(),
            StatusCode::kInvalidArgument);  // empty middle entry
  // A bad entry anywhere rejects the WHOLE spec: the valid first entry of
  // "wal_append:0:5,nonsense:0:1" must not have been installed.
  EXPECT_EQ(fi.SetPlansFromSpec("wal_append:0:5,nonsense:0:1").code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(fi.Hit(FaultSite::kWalAppend).ok());
  EXPECT_EQ(fi.fired(FaultSite::kWalAppend), 0);
}

TEST_F(FaultPlanSpecTest, EnvVariableDrivesThePlanSet) {
  auto& fi = FaultInjector::Global();
  ::unsetenv("SMOQE_FAULT_PLAN");
  EXPECT_TRUE(fi.SetPlansFromEnv().ok());  // unset -> no-op
  EXPECT_TRUE(fi.Hit(FaultSite::kEpochApply).ok());

  ::setenv("SMOQE_FAULT_PLAN", "epoch_apply:1:1", /*overwrite=*/1);
  EXPECT_TRUE(fi.SetPlansFromEnv().ok());
  // Unplanned traversals do not advance the hit counter, so the probe above
  // did not count: the next Hit is #0 (clean) and the window [1, 2) fires
  // on the one after.
  EXPECT_TRUE(fi.Hit(FaultSite::kEpochApply).ok());
  EXPECT_FALSE(fi.Hit(FaultSite::kEpochApply).ok());
  EXPECT_TRUE(fi.Hit(FaultSite::kEpochApply).ok());

  ::setenv("SMOQE_FAULT_PLAN", "not:a:plan:at:all", 1);
  EXPECT_EQ(fi.SetPlansFromEnv().code(), StatusCode::kInvalidArgument);
  ::unsetenv("SMOQE_FAULT_PLAN");
}

TEST(NameTableTest, ManyLabels) {
  NameTable t;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(t.Intern("label" + std::to_string(i)), i);
  }
  EXPECT_EQ(t.size(), 1000);
  EXPECT_EQ(t.Lookup("label999"), 999);
}

}  // namespace
}  // namespace smoqe
