// The kill-point recovery chaos suite (PR 9): the durability contract of
// storage::DurableEpochStore under simulated crashes at every storage fault
// site and every WAL record boundary.
//
// The oracle, per kill:
//
//   - recovery NEVER fails (Fsck reports recoverable, Open succeeds);
//   - the recovered version v is in [last_published, last_attempted]: a
//     fsync-point kill can leave one fully-written record that replays as
//     redo (durable state may run AHEAD of published state, never behind --
//     storage/wal.h design note), and nothing else is possible;
//   - the recovered tree is BIT-IDENTICAL (WriteXml) to the tree at version
//     v as recorded when that version was produced, and the recovered plane
//     is SameAs a from-scratch DocPlane::Build -- never a torn publish, at
//     worst a bounded rollback;
//   - Fsck, run non-mutatingly BEFORE the repairing recovery, predicts the
//     recovery's report field for field.
//
// Every decision in a round derives from its logged seed, so any failure
// reproduces exactly.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "storage/durable_epoch.h"
#include "storage/fs.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "xml/doc_plane.h"
#include "xml/tree.h"
#include "xml/tree_delta.h"
#include "xml/writer.h"

namespace smoqe {
namespace {

using storage::DurableEpochStore;
using storage::StorageOptions;
using xml::Fragment;
using xml::NodeId;
using xml::Tree;
using xml::TreeDelta;

const char* const kLabels[] = {"a", "b", "c", "d", "e"};

std::vector<NodeId> ReachableElements(const Tree& tree) {
  std::vector<NodeId> out;
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    if (tree.is_element(n)) out.push_back(n);
    for (NodeId c = tree.first_child(n); c != xml::kNullNode;
         c = tree.next_sibling(c)) {
      stack.push_back(c);
    }
  }
  return out;
}

Tree RandomTree(int num_elements, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Tree tree;
  std::vector<NodeId> elements = {tree.AddRoot("a")};
  for (int i = 1; i < num_elements; ++i) {
    NodeId parent = elements[rng() % elements.size()];
    elements.push_back(tree.AddElement(parent, kLabels[rng() % 5]));
    if (coin(rng) < 0.2) tree.AddText(elements.back(), "t");
  }
  return tree;
}

Fragment RandomFragment(std::mt19937_64& rng, int max_elements) {
  Tree scratch;
  std::vector<NodeId> elements = {scratch.AddRoot(kLabels[rng() % 5])};
  const int n = 1 + static_cast<int>(rng() % max_elements);
  for (int i = 1; i < n; ++i) {
    NodeId parent = elements[rng() % elements.size()];
    elements.push_back(scratch.AddElement(parent, kLabels[rng() % 5]));
  }
  return Fragment::Capture(scratch, scratch.root());
}

TreeDelta RandomDelta(const Tree& tree, uint64_t version, int num_ops,
                      std::mt19937_64& rng) {
  Tree scratch = tree;
  TreeDelta delta(version);
  for (int i = 0; i < num_ops; ++i) {
    std::vector<NodeId> elements = ReachableElements(scratch);
    const int kind = static_cast<int>(rng() % 3);
    if (kind == 0 && elements.size() > 1) {
      NodeId victim = elements[1 + rng() % (elements.size() - 1)];
      delta.AddDelete(victim);
      TreeDelta step(0);
      step.AddDelete(victim);
      EXPECT_TRUE(step.ApplyTo(&scratch).ok());
    } else if (kind == 1) {
      NodeId parent = elements[rng() % elements.size()];
      Fragment fragment = RandomFragment(rng, 5);
      delta.AddInsert(parent, static_cast<int32_t>(rng() % 3), fragment);
      TreeDelta step(0);
      step.AddInsert(parent, static_cast<int32_t>(rng() % 3),
                     std::move(fragment));
      EXPECT_TRUE(step.ApplyTo(&scratch).ok());
    } else {
      NodeId node = elements[rng() % elements.size()];
      delta.AddRelabel(node, kLabels[rng() % 5]);
      TreeDelta step(0);
      step.AddRelabel(node, kLabels[rng() % 5]);
      EXPECT_TRUE(step.ApplyTo(&scratch).ok());
    }
  }
  return delta;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "smoqe_recovery_" + name;
  EXPECT_TRUE(storage::EnsureDir(dir).ok());
  auto names = storage::ListDir(dir);
  if (names.ok()) {
    for (const std::string& f : names.value()) {
      (void)storage::RemoveFile(dir + "/" + f);
    }
  }
  return dir;
}

// Fsck (non-mutating) + Open (repairing recovery), with the agreement and
// bit-identity oracle. `xml_of_version` maps each produced version --
// published AND last-attempted -- to its serialized document.
std::unique_ptr<DurableEpochStore> RecoverAndCheck(
    const std::string& dir, const StorageOptions& options,
    uint64_t last_published, uint64_t last_attempted,
    const std::map<uint64_t, std::string>& xml_of_version,
    const std::string& trace) {
  storage::FsckReport fsck = storage::Fsck(dir);
  EXPECT_TRUE(fsck.ok) << trace;

  auto reopened = DurableEpochStore::Open(dir, options, Tree());
  EXPECT_TRUE(reopened.ok()) << trace << ": " << reopened.status().message();
  if (!reopened.ok()) return nullptr;
  std::unique_ptr<DurableEpochStore> store = std::move(reopened.value());

  const storage::RecoveryReport& report = store->recovery_report();
  EXPECT_EQ(fsck.report.recovered_version, report.recovered_version) << trace;
  EXPECT_EQ(fsck.report.snapshot_version, report.snapshot_version) << trace;
  EXPECT_EQ(fsck.report.records_replayed, report.records_replayed) << trace;
  EXPECT_EQ(fsck.report.bytes_truncated, report.bytes_truncated) << trace;
  EXPECT_EQ(fsck.report.snapshots_skipped, report.snapshots_skipped) << trace;

  const uint64_t v = store->version();
  EXPECT_GE(v, last_published) << trace << ": durable state fell BEHIND";
  EXPECT_LE(v, last_attempted) << trace << ": phantom version recovered";
  auto it = xml_of_version.find(v);
  EXPECT_TRUE(it != xml_of_version.end()) << trace << ": version " << v;
  if (it != xml_of_version.end()) {
    xml::PlaneEpoch epoch = store->Snapshot();
    EXPECT_EQ(xml::WriteXml(*epoch.tree), it->second)
        << trace << ": torn state at version " << v;
    EXPECT_TRUE(epoch.plane->SameAs(xml::DocPlane::Build(*epoch.tree)))
        << trace << ": plane diverged from Build at version " << v;
  }
  return store;
}

TEST(RecoveryChaosTest, KillAtEveryFaultSiteRecoversBitIdentically) {
#ifndef SMOQE_FAULT_INJECTION
  GTEST_SKIP() << "built with SMOQE_FAULT_INJECTION=OFF; no sites compiled in";
#else
  constexpr int kRounds = 8;
  // Every storage fault site, in both plain-error and (where the site is a
  // data write) torn-prefix shape.
  const std::vector<std::pair<FaultSite, FaultKind>> kKills = {
      {FaultSite::kWalAppend, FaultKind::kTransientError},
      {FaultSite::kWalAppend, FaultKind::kTornWrite},
      {FaultSite::kWalFsync, FaultKind::kTransientError},
      {FaultSite::kSnapshotWrite, FaultKind::kTransientError},
      {FaultSite::kSnapshotWrite, FaultKind::kTornWrite},
      {FaultSite::kSnapshotRename, FaultKind::kTransientError},
  };

  auto& fi = FaultInjector::Global();
  for (int round = 0; round < kRounds; ++round) {
    const uint64_t seed = 0x9E0C0DE0ULL + static_cast<uint64_t>(round);
    SCOPED_TRACE("recovery chaos seed " + std::to_string(seed));
    std::mt19937_64 rng(seed);

    const std::string dir = FreshDir("kill_" + std::to_string(round));
    StorageOptions options;
    options.snapshot_every = 2 + round % 4;  // compactions mid-stream
    options.snapshots_kept = 2;

    Tree expected = RandomTree(25 + round * 4, seed);
    std::map<uint64_t, std::string> xml_of_version;
    xml_of_version[0] = xml::WriteXml(expected);
    uint64_t published = 0;

    auto opened = DurableEpochStore::Open(dir, options, Tree(expected));
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    std::unique_ptr<DurableEpochStore> store = std::move(opened.value());

    for (const auto& [site, kind] : kKills) {
      const std::string trace =
          "seed " + std::to_string(seed) + " site " +
          std::to_string(static_cast<int>(site)) + " kind " +
          std::to_string(static_cast<int>(kind));
      // Vary which traversal of the site the kill lands on, so over the
      // rounds the kill point walks through first/later hits (e.g. the
      // snapshot write of the 1st vs a later compaction).
      const uint32_t kill_hit = static_cast<uint32_t>(rng() % 3);
      fi.Arm(seed ^ (static_cast<uint64_t>(site) << 8));
      fi.SetPlan(site, {kind, 1, {}, kill_hit, 1});

      uint64_t last_attempted = published;
      for (int step = 0; step < 10 && fi.fired(site) == 0; ++step) {
        TreeDelta delta = RandomDelta(expected, published, 1 + rng() % 2, rng);
        Tree next = expected;
        ASSERT_TRUE(delta.ApplyTo(&next).ok()) << trace;
        last_attempted = delta.to_version();
        xml_of_version[last_attempted] = xml::WriteXml(next);
        Status applied = store->Apply(delta);
        if (applied.ok()) {
          expected = std::move(next);
          published = delta.to_version();
        } else {
          break;  // crash point: the store is wedged or the write was lost
        }
      }
      fi.Disarm();

      // Simulated crash: drop the live store with NO cleanup -- the disk
      // stays exactly as the failure left it -- then recover cold.
      store.reset();
      store = RecoverAndCheck(dir, options, published, last_attempted,
                              xml_of_version, trace);
      ASSERT_NE(store, nullptr) << trace;

      // Resynchronize the model to the recovered state (a fsync-point kill
      // legitimately redoes one un-published record) and keep streaming:
      // the store must keep accepting writes after every recovery.
      published = store->version();
      expected = Tree(*store->Snapshot().tree);
      TreeDelta resume = RandomDelta(expected, published, 1, rng);
      ASSERT_TRUE(store->Apply(resume).ok())
          << trace << ": store did not resume after recovery";
      ASSERT_TRUE(resume.ApplyTo(&expected).ok());
      published = resume.to_version();
      xml_of_version[published] = xml::WriteXml(expected);
    }
  }
#endif  // SMOQE_FAULT_INJECTION
}

TEST(RecoveryChaosTest, TruncationAtEveryRecordBoundaryRecovers) {
  // No injection needed: build a healthy store (no compaction, so the WAL
  // holds the full version chain from snapshot 0), then cut the log at
  // EVERY record boundary and at probe offsets inside every record. Each
  // cut must recover to exactly the number of whole records before it.
  const uint64_t seed = 0x7C0FFEE;
  std::mt19937_64 rng(seed);
  const std::string dir = FreshDir("boundary");
  StorageOptions options;
  options.snapshot_every = 1000;  // never compact: keep all records

  Tree expected = RandomTree(30, seed);
  std::map<uint64_t, std::string> xml_of_version;
  xml_of_version[0] = xml::WriteXml(expected);

  constexpr int kDeltas = 6;
  {
    auto store = DurableEpochStore::Open(dir, options, Tree(expected));
    ASSERT_TRUE(store.ok()) << store.status().message();
    for (int k = 0; k < kDeltas; ++k) {
      TreeDelta delta =
          RandomDelta(expected, store.value()->version(), 1 + k % 3, rng);
      ASSERT_TRUE(store.value()->Apply(delta).ok()) << "delta " << k;
      ASSERT_TRUE(delta.ApplyTo(&expected).ok());
      xml_of_version[delta.to_version()] = xml::WriteXml(expected);
    }
  }

  const std::string wal_path = dir + "/" + storage::kWalName;
  auto healthy = storage::ReadFile(wal_path);
  ASSERT_TRUE(healthy.ok());
  auto scan = storage::ScanWal(wal_path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.value().records.size(), static_cast<size_t>(kDeltas));

  // Cut points: every record's start (clean boundary), plus offsets 1, 8,
  // and 17 bytes into it (torn header / torn header tail / torn payload),
  // plus the exact end of file.
  std::vector<std::pair<uint64_t, uint64_t>> cuts;  // (offset, whole records)
  for (size_t r = 0; r < scan.value().records.size(); ++r) {
    const uint64_t off = scan.value().records[r].offset;
    cuts.push_back({off, r});
    for (uint64_t probe : {1u, 8u, 17u}) {
      if (off + probe < scan.value().file_size) cuts.push_back({off + probe, r});
    }
  }
  cuts.push_back({scan.value().file_size, scan.value().records.size()});

  for (const auto& [cut, whole_records] : cuts) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    ASSERT_TRUE(storage::WriteFileAtomic(dir, storage::kWalName,
                                         healthy.value().substr(0, cut))
                    .ok());
    // Probes inside record r may land inside the PREVIOUS record's payload
    // frame only for r's own bytes, so the replayable prefix is exactly
    // `whole_records` -- except a probe that lands beyond r's start but
    // before its end never completes r.
    storage::FsckReport fsck = storage::Fsck(dir);
    EXPECT_TRUE(fsck.ok);
    storage::RecoveryReport report;
    auto epoch = storage::Recover(dir, &report);
    ASSERT_TRUE(epoch.ok()) << epoch.status().message();
    EXPECT_EQ(report.recovered_version, whole_records);
    EXPECT_EQ(report.records_replayed, static_cast<int64_t>(whole_records));
    EXPECT_EQ(fsck.report.recovered_version, report.recovered_version);
    EXPECT_EQ(fsck.report.bytes_truncated, report.bytes_truncated);
    EXPECT_EQ(xml::WriteXml(*epoch.value().tree),
              xml_of_version.at(report.recovered_version));
    EXPECT_TRUE(
        epoch.value().plane->SameAs(xml::DocPlane::Build(*epoch.value().tree)));
  }
}

}  // namespace
}  // namespace smoqe
