#include <gtest/gtest.h>

#include "dtd/dtd_parser.h"
#include "dtd/validator.h"
#include "gen/fixtures.h"
#include "gen/generic_generator.h"
#include "gen/hospital_generator.h"
#include "gen/query_generator.h"
#include "xpath/parser.h"
#include "xpath/printer.h"
#include "xpath/x_fragment.h"

namespace smoqe::gen {
namespace {

TEST(HospitalGeneratorTest, ConformsToPaperDtd) {
  HospitalParams params;
  params.patients = 60;
  params.seed = 2;
  xml::Tree t = GenerateHospital(params);
  Status s = dtd::ValidateDocument(HospitalDtd(), t);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(HospitalGeneratorTest, DeterministicForSeed) {
  HospitalParams params;
  params.patients = 10;
  params.seed = 4;
  xml::Tree a = GenerateHospital(params);
  xml::Tree b = GenerateHospital(params);
  EXPECT_EQ(a.size(), b.size());
  params.seed = 5;
  xml::Tree c = GenerateHospital(params);
  // Extremely likely to differ in size.
  EXPECT_TRUE(a.size() != c.size() || a.CountTexts() != c.CountTexts());
}

TEST(HospitalGeneratorTest, SizeScalesLinearlyInPatients) {
  HospitalParams params;
  params.seed = 6;
  params.patients = 100;
  int64_t size100 = GenerateHospital(params).size();
  params.patients = 200;
  int64_t size200 = GenerateHospital(params).size();
  double ratio = static_cast<double>(size200) / static_cast<double>(size100);
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

TEST(HospitalGeneratorTest, ShapeMatchesPaperProfile) {
  // The paper: ~2/3 element nodes, depth <= 13, ~30+ elements per patient.
  HospitalParams params;
  params.patients = 200;
  params.seed = 8;
  xml::Tree t = GenerateHospital(params);
  double elem_fraction = static_cast<double>(t.CountElements()) /
                         static_cast<double>(t.size());
  EXPECT_GT(elem_fraction, 0.5);
  EXPECT_LT(elem_fraction, 0.8);
  EXPECT_LE(t.Depth(), 24);
  EXPECT_GE(t.CountElements(), 200 * 15);
}

TEST(HospitalGeneratorTest, SelectivityKnobWorks) {
  HospitalParams params;
  params.patients = 300;
  params.seed = 10;
  params.heart_disease_prob = 0.0;
  xml::Tree none = GenerateHospital(params);
  params.heart_disease_prob = 1.0;
  params.medication_prob = 1.0;
  xml::Tree all = GenerateHospital(params);
  auto count_heart = [](const xml::Tree& t) {
    int count = 0;
    for (xml::NodeId id = 0; id < t.size(); ++id) {
      if (t.is_element(id) && t.label_name(id) == "diagnosis" &&
          t.HasText(id, "heart disease")) {
        ++count;
      }
    }
    return count;
  };
  EXPECT_EQ(count_heart(none), 0);
  EXPECT_GT(count_heart(all), 300);
}

TEST(GenericGeneratorTest, ConformsToArbitraryDtd) {
  auto dtd = dtd::ParseDtd(
      "dtd r { r -> a*, b ; a -> c + d* ; b -> #text ; c -> #text ; "
      "d -> r* ; }");
  ASSERT_TRUE(dtd.ok());
  GenericParams params;
  params.seed = 21;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    params.seed = seed;
    auto t = GenerateFromDtd(dtd.value(), params);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    Status s = dtd::ValidateDocument(dtd.value(), t.value());
    EXPECT_TRUE(s.ok()) << "seed " << seed << ": " << s.ToString();
  }
}

TEST(GenericGeneratorTest, InfinitelyDeepDtdFails) {
  auto dtd = dtd::ParseDtd("dtd a { a -> b ; b -> a ; }");
  ASSERT_TRUE(dtd.ok());
  GenericParams params;
  auto t = GenerateFromDtd(dtd.value(), params);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GenericGeneratorTest, HospitalDtdWorksToo) {
  GenericParams params;
  params.seed = 33;
  auto t = GenerateFromDtd(HospitalDtd(), params);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_TRUE(dtd::ValidateDocument(HospitalDtd(), t.value()).ok());
}

TEST(QueryGeneratorTest, ProducesParsableQueries) {
  QueryGenParams params;
  params.labels = {"a", "b", "c"};
  params.text_values = {"x", "y"};
  std::mt19937_64 rng(42);
  for (int i = 0; i < 200; ++i) {
    xpath::PathPtr q = RandomQuery(params, &rng);
    ASSERT_NE(q, nullptr);
    // Round-trips through the printer/parser.
    std::string printed = xpath::ToString(q);
    auto reparsed = xpath::ParseQuery(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_TRUE(xpath::Equals(q, reparsed.value())) << printed;
  }
}

TEST(QueryGeneratorTest, XFragmentModeAvoidsGeneralStars) {
  QueryGenParams params;
  params.labels = {"a", "b"};
  params.allow_star = false;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 100; ++i) {
    xpath::PathPtr q = RandomQuery(params, &rng);
    EXPECT_TRUE(xpath::IsInXFragment(q)) << xpath::ToString(q);
  }
}

TEST(QueryGeneratorTest, DeterministicForSeed) {
  QueryGenParams params;
  params.labels = {"a", "b"};
  std::mt19937_64 rng1(5), rng2(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(
        xpath::Equals(RandomQuery(params, &rng1), RandomQuery(params, &rng2)));
  }
}

TEST(FixturesTest, Fig4TreeShape) {
  Fig4Tree fig = MakeFig4Tree();
  EXPECT_EQ(fig.tree.CountElements(), 15);
  EXPECT_EQ(fig.tree.CountTexts(), 4);
  EXPECT_EQ(fig.tree.label_name(fig.ids[1]), "hospital");
  EXPECT_EQ(fig.tree.label_name(fig.ids[10]), "parent");
  EXPECT_TRUE(fig.tree.HasText(fig.ids[13], "heart disease"));
}

}  // namespace
}  // namespace smoqe::gen
