#include <gtest/gtest.h>

#include "automata/afa.h"
#include "automata/compiler.h"
#include "automata/conceptual_eval.h"
#include "automata/mfa.h"
#include "eval/naive_evaluator.h"
#include "gen/fixtures.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace smoqe::automata {
namespace {

xml::Tree Doc(const char* text) {
  auto t = xml::ParseXml(text);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return t.take();
}

Mfa Compile(std::string_view query) {
  auto q = xpath::ParseQuery(query);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return CompileQuery(q.value());
}

std::vector<xml::NodeId> RunConceptual(const xml::Tree& t, std::string_view q) {
  Mfa mfa = Compile(q);
  ConceptualEvaluator eval(t, mfa);
  return eval.Eval(t.root());
}

std::vector<xml::NodeId> RunNaive(const xml::Tree& t, std::string_view q) {
  auto query = xpath::ParseQuery(q);
  EXPECT_TRUE(query.ok());
  return eval::NaiveEvaluator(t).Eval(query.value(), t.root());
}

TEST(CompilerTest, SimpleQueryWellFormed) {
  Mfa mfa = Compile("a/b[c]/d");
  EXPECT_TRUE(CheckWellFormed(mfa).empty());
  EXPECT_GT(mfa.num_nfa_states(), 0);
  EXPECT_GT(mfa.num_afa_states(), 0);
  EXPECT_GE(mfa.SizeMeasure(), mfa.num_nfa_states());
}

TEST(CompilerTest, FilterFreeQueryHasNoAfa) {
  Mfa mfa = Compile("a/b/c | d*");
  EXPECT_TRUE(CheckWellFormed(mfa).empty());
  EXPECT_EQ(mfa.num_afa_states(), 0);
}

TEST(CompilerTest, SizeLinearInQuery) {
  // MFA size must grow linearly with query size (no blowup).
  std::string q = "a";
  Mfa small = Compile(q);
  for (int i = 0; i < 40; ++i) q += "/a[b]";
  Mfa big = Compile(q);
  EXPECT_LT(big.SizeMeasure(), small.SizeMeasure() + 40 * 12);
}

TEST(SplitPropertyTest, CompiledQueriesHaveIt) {
  for (const char* q :
       {"a", "a[b]", "a[not(b)]", "(a[b]/c)*", "a[(b/c)*/d]",
        "a[not((b)*) and c]", "a[b[c[d]]]",
        gen::kQueryExample41, gen::kQueryExample21}) {
    Mfa mfa = Compile(q);
    EXPECT_TRUE(HasSplitProperty(mfa)) << q;
    EXPECT_TRUE(CheckWellFormed(mfa).empty()) << q;
  }
}

TEST(SplitPropertyTest, DetectsNotOnCycle) {
  // Hand-build an AFA with NOT on a cycle: n0 = NOT(n1), n1 = OR(n0).
  Mfa mfa;
  MfaBuilder b(&mfa);
  StateId s = b.NewNfaState();
  mfa.start = s;
  StateId or_state = b.NewOr({});
  StateId not_state = b.NewNot(or_state);
  b.SetOrOperands(or_state, {not_state});
  EXPECT_FALSE(HasSplitProperty(mfa));
}

TEST(WellFormedTest, DetectsBrokenAutomata) {
  Mfa mfa;
  MfaBuilder b(&mfa);
  StateId s = b.NewNfaState();
  mfa.start = s;
  EXPECT_TRUE(CheckWellFormed(mfa).empty());
  mfa.nfa[s].eps.push_back(99);  // dangling
  EXPECT_FALSE(CheckWellFormed(mfa).empty());
}

TEST(AfaEvalTest, TextPredicate) {
  xml::Tree t = Doc("<r><d>x</d></r>");
  Mfa mfa = Compile("r[d/text() = 'x']");  // compile to get an AFA arena
  ASSERT_GT(mfa.num_afa_states(), 0);
  std::vector<LabelId> binding(mfa.labels.size());
  for (LabelId l = 0; l < mfa.labels.size(); ++l) {
    binding[l] = t.labels().Lookup(mfa.labels.name(l));
  }
  // The annotated state's AFA entry evaluates true at the root (d child with
  // text x) -- find the annotation.
  StateId entry = kNoState;
  for (const NfaState& st : mfa.nfa) {
    if (st.afa_entry != kNoState) entry = st.afa_entry;
  }
  ASSERT_NE(entry, kNoState);
  EXPECT_TRUE(EvalAfaNaive(mfa, binding, t, entry, t.root()));
}

TEST(ConceptualEvalTest, MatchesNaiveOnBasics) {
  xml::Tree t = Doc(
      "<r><a><x/><d>v</d></a><a><y/></a><b><a><x/></a></b><c>w</c></r>");
  for (const char* q :
       {".", "a", "*", "a/x", "a | b", "//a", "//a[x]", "a[x]", "a[not(x)]",
        "a[x or y]", "b/a[x]", "(a | b)*", "a[d/text() = 'v']",
        "c[text() = 'w']", "a[position() = 1]", ".[a]"}) {
    EXPECT_EQ(RunConceptual(t, q), RunNaive(t, q)) << q;
  }
}

TEST(ConceptualEvalTest, KleeneStarRecursion) {
  xml::Tree t = Doc("<p><q><p><q><p/></q></p></q></p>");
  for (const char* q : {"(q/p)*", "q*", "(p/q)*/p", "(q | p)*"}) {
    EXPECT_EQ(RunConceptual(t, q), RunNaive(t, q)) << q;
  }
}

TEST(ConceptualEvalTest, Fig4GoldenAnswer) {
  gen::Fig4Tree fig = gen::MakeFig4Tree();
  auto answers = RunConceptual(fig.tree, gen::kQueryExample41);
  std::vector<xml::NodeId> expected = {fig.ids[9], fig.ids[11]};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(answers, expected);
}

TEST(ConceptualEvalTest, CountsAfaPasses) {
  gen::Fig4Tree fig = gen::MakeFig4Tree();
  Mfa mfa = Compile(gen::kQueryExample41);
  ConceptualEvaluator eval(fig.tree, mfa);
  eval.Eval(fig.tree.root());
  // One pass per annotated-state activation: more than one, bounded by tree.
  EXPECT_GT(eval.afa_passes(), 1);
}

TEST(ConceptualEvalTest, FilterOnIntermediateStep) {
  // The filter guards an *intermediate* step; answers hang below it.
  xml::Tree t = Doc("<r><a><ok/><b><c/></b></a><a><b><c/></b></a></r>");
  EXPECT_EQ(RunConceptual(t, "a[ok]/b/c"), RunNaive(t, "a[ok]/b/c"));
}

TEST(MfaTest, ToDotProducesGraph) {
  Mfa mfa = Compile("a[b]/c");
  std::string dot = mfa.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("lambda"), std::string::npos);
}

TEST(MfaTest, EpsClosureAndMove) {
  Mfa mfa = Compile("a/b");
  std::vector<StateId> states = {mfa.start};
  EpsClosure(mfa, &states);
  EXPECT_FALSE(states.empty());
  // Move on label 'a' (bind MFA labels to a tiny tree's labels).
  xml::Tree t = Doc("<a><b/></a>");
  std::vector<LabelId> binding(mfa.labels.size());
  for (LabelId l = 0; l < mfa.labels.size(); ++l) {
    binding[l] = t.labels().Lookup(mfa.labels.name(l));
  }
  auto moved = Move(mfa, states, binding, t.label(t.root()));
  EXPECT_FALSE(moved.empty());
}

}  // namespace
}  // namespace smoqe::automata
