// exec::ShardedBatchEvaluator: sharded parallel evaluation must be
// bit-identical to solo HypeEvaluator / BatchHypeEvaluator runs -- across
// pool widths, shard targets, index modes, contexts, and randomized query
// workloads (including non-shardable queries that exercise the whole-tree
// fallback, and dead queries). Runs under the `concurrency` CTest label, so
// the TSan CI job races real shard walks.

#include "exec/sharded_eval.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "automata/compiler.h"
#include "common/thread_pool.h"
#include "gen/hospital_generator.h"
#include "gen/query_generator.h"
#include "hype/batch_hype.h"
#include "hype/hype.h"
#include "hype/index.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace smoqe::exec {
namespace {

using NodeVec = std::vector<xml::NodeId>;

xml::Tree Hospital(int patients, uint64_t seed) {
  gen::HospitalParams params;
  params.patients = patients;
  params.seed = seed;
  params.heart_disease_prob = 0.3;
  return gen::GenerateHospital(params);
}

std::vector<automata::Mfa> CompileAll(const std::vector<std::string>& queries) {
  std::vector<automata::Mfa> mfas;
  mfas.reserve(queries.size());
  for (const std::string& q : queries) {
    auto parsed = xpath::ParseQuery(q);
    EXPECT_TRUE(parsed.ok()) << q << ": " << parsed.status().ToString();
    mfas.push_back(automata::CompileQuery(parsed.value()));
  }
  return mfas;
}

// The workload the fixed suites run: navigation, filters, recursion, a
// context-annotated query ((department/patient)* filtered at the very
// context, which must take the fallback path) and a dead query.
std::vector<std::string> FixedQueries() {
  return {
      "department/patient/pname",
      "department/patient[visit]/pname",
      "//diagnosis",
      "//patient[visit/treatment/medication]",
      "department/patient[visit/treatment/test]/pname",
      "department/patient/(parent/patient)*"
      "[visit/treatment/medication/diagnosis/text() = 'heart disease']",
      "department/patient[not(visit/treatment/test)]",
      "(department/patient)*[pname/text() = 'P0']/visit",
      "department/*/visit",
      "missing_label",
      ".",
      "(department)*/patient/sibling",
      "department/patient[address/city/text() = 'Edinburgh']/pname",
  };
}

// Checks ShardedBatchEvaluator == solo HypeEvaluator at `context` for every
// (index mode x pool width x shard target) combination.
void CheckEquivalence(const xml::Tree& tree,
                      const std::vector<std::string>& queries,
                      xml::NodeId context) {
  std::vector<automata::Mfa> mfas = CompileAll(queries);
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& mfa : mfas) ptrs.push_back(&mfa);

  hype::SubtreeLabelIndex full =
      hype::SubtreeLabelIndex::Build(tree, hype::SubtreeLabelIndex::Mode::kFull);
  hype::SubtreeLabelIndex compressed = hype::SubtreeLabelIndex::Build(
      tree, hype::SubtreeLabelIndex::Mode::kCompressed, 8);
  const hype::SubtreeLabelIndex* indexes[] = {nullptr, &full, &compressed};

  common::ThreadPool pool(4);
  struct PoolSetup {
    common::ThreadPool* pool;
    int num_shards;
  };
  const PoolSetup setups[] = {
      {nullptr, 0}, {nullptr, 3}, {&pool, 0}, {&pool, 1}, {&pool, 16},
  };

  for (const hype::SubtreeLabelIndex* index : indexes) {
    hype::HypeOptions solo_options;
    solo_options.index = index;
    std::vector<NodeVec> solo;
    std::vector<hype::EvalStats> solo_stats;
    for (size_t i = 0; i < mfas.size(); ++i) {
      hype::HypeEvaluator eval(tree, mfas[i], solo_options);
      solo.push_back(eval.Eval(context));
      solo_stats.push_back(eval.stats());
    }

    for (const PoolSetup& setup : setups) {
      ShardedOptions options;
      options.index = index;
      options.pool = setup.pool;
      options.num_shards = setup.num_shards;
      ShardedBatchEvaluator sharded(tree, ptrs, options);
      std::vector<NodeVec> answers = sharded.EvalAll(context);
      ASSERT_EQ(answers.size(), queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        ASSERT_EQ(answers[i], solo[i])
            << "sharded vs solo, query " << queries[i]
            << " index=" << (index != nullptr)
            << " pool=" << (setup.pool != nullptr ? pool.num_threads() : 0)
            << " shards=" << setup.num_shards;
        // Sharded traversal work must equal the solo pass: same elements
        // visited, same cans sizes -- the shards really did partition the
        // solo walk rather than approximate it.
        EXPECT_EQ(sharded.merged_stats(i).elements_visited,
                  solo_stats[i].elements_visited)
            << queries[i] << " shards=" << setup.num_shards;
        EXPECT_EQ(sharded.merged_stats(i).cans_vertices,
                  solo_stats[i].cans_vertices)
            << queries[i] << " shards=" << setup.num_shards;
      }
    }
  }
}

TEST(ShardedEvalTest, FixedWorkloadAtRoot) {
  xml::Tree tree = Hospital(20, 7);
  CheckEquivalence(tree, FixedQueries(), tree.root());
}

TEST(ShardedEvalTest, FixedWorkloadAtNonRootContext) {
  xml::Tree tree = Hospital(12, 11);
  // Second department: a context whose spine is not the document root.
  xml::NodeId dept = tree.first_child(tree.root());
  while (dept != xml::kNullNode && !tree.is_element(dept)) {
    dept = tree.next_sibling(dept);
  }
  ASSERT_NE(dept, xml::kNullNode);
  xml::NodeId second = tree.next_sibling(dept);
  while (second != xml::kNullNode && !tree.is_element(second)) {
    second = tree.next_sibling(second);
  }
  ASSERT_NE(second, xml::kNullNode);
  CheckEquivalence(tree,
                   {"patient/pname", "patient[visit]/pname", "//diagnosis",
                    "patient/(parent/patient)*/pname", "."},
                   second);
}

TEST(ShardedEvalTest, RandomizedEquivalence) {
  xml::Tree tree = Hospital(10, 23);
  gen::QueryGenParams qparams;
  qparams.labels = {"department", "patient",    "pname",   "visit",
                    "treatment",  "medication", "test",    "diagnosis",
                    "doctor",     "parent",     "sibling", "address",
                    "city",       "name"};
  qparams.text_values = {"heart disease", "diabetes", "Edinburgh"};
  qparams.max_depth = 3;

  std::mt19937_64 rng(20260731);
  std::vector<std::string> queries;
  for (int i = 0; i < 48; ++i) {
    queries.push_back(xpath::ToString(gen::RandomQuery(qparams, &rng)));
  }
  CheckEquivalence(tree, queries, tree.root());
}

TEST(ShardedEvalTest, RepeatedEvalAllIsStableAndWarm) {
  xml::Tree tree = Hospital(8, 5);
  std::vector<automata::Mfa> mfas =
      CompileAll({"//diagnosis", "department/patient[visit]/pname"});
  std::vector<const automata::Mfa*> ptrs = {&mfas[0], &mfas[1]};
  common::ThreadPool pool(2);
  ShardedOptions options;
  options.pool = &pool;
  ShardedBatchEvaluator sharded(tree, ptrs, options);
  auto first = sharded.EvalAll(tree.root());
  auto second = sharded.EvalAll(tree.root());
  EXPECT_EQ(first, second);
  EXPECT_GT(sharded.stats().num_units, 0);
  EXPECT_GT(sharded.stats().num_groups, 0);
  EXPECT_EQ(sharded.stats().num_sharded_queries, 2);
}

TEST(ShardedEvalTest, DeepNarrowDocumentDegeneratesGracefully) {
  // A chain document has a single unit at every level: sharding must not
  // split what cannot be split, and the explicit-stack walk must survive the
  // depth.
  constexpr int kDepth = 50000;
  xml::Tree tree;
  xml::NodeId n = tree.AddRoot("a");
  for (int i = 0; i < kDepth; ++i) n = tree.AddElement(n, "a");
  tree.AddElement(n, "b");

  std::vector<automata::Mfa> mfas = CompileAll({"a*/b", "//b", "a*[b]"});
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& m : mfas) ptrs.push_back(&m);
  common::ThreadPool pool(4);
  ShardedOptions options;
  options.pool = &pool;
  ShardedBatchEvaluator sharded(tree, ptrs, options);
  std::vector<NodeVec> answers = sharded.EvalAll(tree.root());
  for (size_t i = 0; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i].size(), 1u) << i;
  }
}

TEST(ShardedEvalTest, MatchesBatchEvaluatorOnWideFlatDocument) {
  // Many top-level subtrees, trivially shardable: compare against the
  // single-threaded batch evaluator directly.
  xml::Tree tree;
  xml::NodeId root = tree.AddRoot("r");
  for (int i = 0; i < 300; ++i) {
    xml::NodeId c = tree.AddElement(root, i % 3 == 0 ? "a" : "b");
    tree.AddElement(c, i % 2 == 0 ? "x" : "y");
  }
  std::vector<automata::Mfa> mfas = CompileAll({"a/x", "b/y", "//x", "."});
  std::vector<const automata::Mfa*> ptrs;
  for (const automata::Mfa& m : mfas) ptrs.push_back(&m);

  hype::BatchHypeEvaluator batch(tree, ptrs);
  std::vector<NodeVec> expected = batch.EvalAll(tree.root());

  common::ThreadPool pool(4);
  for (int shards : {1, 2, 7, 32}) {
    ShardedOptions options;
    options.pool = &pool;
    options.num_shards = shards;
    ShardedBatchEvaluator sharded(tree, ptrs, options);
    EXPECT_EQ(sharded.EvalAll(tree.root()), expected) << shards;
  }
}

}  // namespace
}  // namespace smoqe::exec
