// Memoization of the query -> MFA compilation pipeline.
//
// The Section-5 rewriting (parse, skeleton construction, product with the
// view DTD, AFA flattening) is the per-query setup cost of view-based query
// answering; a server seeing the same query text repeatedly pays it every
// time. RewriteCache memoizes NORMALIZED query text -> compiled query so a
// repeated query skips parsing, rewriting, and compilation entirely.
//
// A cache entry is the full reusable artifact of compilation, not just the
// automaton: the rewritten/compiled Mfa PLUS its automata::CompiledMfa CSR
// mirror (built once at miss time). A cache hit therefore returns WARM
// compiled state -- evaluator front-ends seed their hype::TransitionPlane
// from the mirror instead of re-flattening the automaton per engine, shard,
// or batch.
//
// Keying: the incoming text is parsed and re-printed through the canonical
// xpath printer, so all spellings of one query share an entry -- whitespace,
// redundant parentheses, and the '//' sugar (desugared to /(*)*/ at parse
// time) all normalize away. Lookups by normalized key still need one parse
// of the incoming text; that is the cheap prefix of the pipeline.
//
// Two modes:
//  * view mode  (view != nullptr): queries are rewritten over the view into
//    source MFAs (rewrite::RewriteToMfa), the reusable artifact of
//    view-based answering;
//  * plain mode (view == nullptr): queries compile directly
//    (automata::CompileQuery) for querying a document without a view.
//
// Entries hand out shared_ptrs: an evaluator can keep using an MFA and its
// mirror after the entry was evicted. Eviction is LRU at `capacity` entries.
// The cache is not thread-safe; shard or lock externally.

#ifndef SMOQE_REWRITE_REWRITE_CACHE_H_
#define SMOQE_REWRITE_REWRITE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "automata/compiled_mfa.h"
#include "automata/mfa.h"
#include "common/status.h"
#include "view/view_def.h"

namespace smoqe::rewrite {

struct RewriteCacheOptions {
  /// Maximum cached queries; least-recently-used entries are evicted beyond
  /// it. 0 means unbounded.
  size_t capacity = 1024;
};

struct RewriteCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
};

/// The reusable compilation artifact of one query: the (rewritten) MFA and
/// its dense CSR mirror, both immutable and shareable across threads.
struct CompiledQuery {
  std::shared_ptr<const automata::Mfa> mfa;
  std::shared_ptr<const automata::CompiledMfa> compiled;
};

class RewriteCache {
 public:
  /// `view` may be null (plain mode, see above); when set it must outlive
  /// the cache.
  explicit RewriteCache(const view::ViewDef* view,
                        RewriteCacheOptions options = {});

  /// The compiled (rewritten) query for `query_text`, from the cache when
  /// the normalized text was seen before. Parse/rewrite failures are
  /// returned and not cached.
  StatusOr<CompiledQuery> Get(std::string_view query_text);

  /// Canonical cache key for a query text (exposed for tests/diagnostics).
  static StatusOr<std::string> NormalizeQuery(std::string_view query_text);

  const RewriteCacheStats& stats() const { return stats_; }
  size_t size() const { return entries_.size(); }
  void Clear();

 private:
  struct Entry {
    std::string key;
    CompiledQuery query;
  };

  const view::ViewDef* view_;
  RewriteCacheOptions options_;
  RewriteCacheStats stats_;
  // LRU list, most-recent first; the map points into it.
  std::list<Entry> lru_;
  std::unordered_map<std::string_view, std::list<Entry>::iterator> entries_;
};

}  // namespace smoqe::rewrite

#endif  // SMOQE_REWRITE_REWRITE_CACHE_H_
