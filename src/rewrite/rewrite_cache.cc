#include "rewrite/rewrite_cache.h"

#include <utility>

#include "automata/compiler.h"
#include "rewrite/rewriter.h"
#include "xpath/parser.h"
#include "xpath/printer.h"

namespace smoqe::rewrite {

RewriteCache::RewriteCache(const view::ViewDef* view,
                           RewriteCacheOptions options)
    : view_(view), options_(options) {}

StatusOr<std::string> RewriteCache::NormalizeQuery(std::string_view query_text) {
  SMOQE_ASSIGN_OR_RETURN(xpath::PathPtr parsed, xpath::ParseQuery(query_text));
  return xpath::ToString(parsed);
}

StatusOr<CompiledQuery> RewriteCache::Get(std::string_view query_text) {
  SMOQE_ASSIGN_OR_RETURN(xpath::PathPtr parsed, xpath::ParseQuery(query_text));
  std::string key = xpath::ToString(parsed);

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // most-recent first
    return lru_.front().query;
  }
  ++stats_.misses;

  CompiledQuery query;
  if (view_ != nullptr) {
    SMOQE_ASSIGN_OR_RETURN(automata::Mfa rewritten,
                           RewriteToMfa(parsed, *view_));
    query.mfa = std::make_shared<const automata::Mfa>(std::move(rewritten));
  } else {
    query.mfa =
        std::make_shared<const automata::Mfa>(automata::CompileQuery(parsed));
  }
  // Flatten once at miss time: every hit hands out the warm CSR mirror.
  query.compiled = std::make_shared<const automata::CompiledMfa>(
      automata::CompiledMfa::Build(*query.mfa));

  lru_.push_front(Entry{std::move(key), query});
  entries_.emplace(std::string_view(lru_.front().key), lru_.begin());

  if (options_.capacity > 0 && entries_.size() > options_.capacity) {
    const Entry& oldest = lru_.back();
    entries_.erase(std::string_view(oldest.key));
    lru_.pop_back();
    ++stats_.evictions;
  }
  return query;
}

void RewriteCache::Clear() {
  entries_.clear();
  lru_.clear();
}

}  // namespace smoqe::rewrite
