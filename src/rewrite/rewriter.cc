#include "rewrite/rewriter.h"

#include <functional>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "automata/compiler.h"
#include "common/hashing.h"
#include "rewrite/skeleton.h"
#include "xpath/x_fragment.h"

namespace smoqe::rewrite {

namespace internal {

namespace {

struct SkelFrag {
  int entry;
  int exit;
};

class SkeletonBuilder {
 public:
  explicit SkeletonBuilder(SkeletonNfa* nfa) : nfa_(*nfa) {}

  SkelFrag Build(const xpath::PathPtr& p) {
    using xpath::PathKind;
    switch (p->kind) {
      case PathKind::kEmpty: {
        int s = New();
        return {s, s};
      }
      case PathKind::kLabel: {
        int entry = New(), exit = New();
        nfa_.states[entry].trans.push_back({p->label, false, exit});
        return {entry, exit};
      }
      case PathKind::kWildcard: {
        int entry = New(), exit = New();
        nfa_.states[entry].trans.push_back({"", true, exit});
        return {entry, exit};
      }
      case PathKind::kSeq: {
        SkelFrag f1 = Build(p->left);
        SkelFrag f2 = Build(p->right);
        nfa_.states[f1.exit].eps.push_back(f2.entry);
        return {f1.entry, f2.exit};
      }
      case PathKind::kUnion: {
        int entry = New(), exit = New();
        SkelFrag f1 = Build(p->left);
        SkelFrag f2 = Build(p->right);
        nfa_.states[entry].eps.push_back(f1.entry);
        nfa_.states[entry].eps.push_back(f2.entry);
        nfa_.states[f1.exit].eps.push_back(exit);
        nfa_.states[f2.exit].eps.push_back(exit);
        return {entry, exit};
      }
      case PathKind::kStar: {
        int entry = New(), exit = New();
        SkelFrag body = Build(p->left);
        nfa_.states[entry].eps.push_back(body.entry);
        nfa_.states[entry].eps.push_back(exit);
        nfa_.states[body.exit].eps.push_back(body.entry);
        nfa_.states[body.exit].eps.push_back(exit);
        return {entry, exit};
      }
      case PathKind::kFilter: {
        SkelFrag f = Build(p->left);
        int guard = New();
        nfa_.states[guard].filter = p->filter;
        nfa_.states[f.exit].eps.push_back(guard);
        return {f.entry, guard};
      }
    }
    return {-1, -1};
  }

 private:
  int New() {
    nfa_.states.emplace_back();
    return static_cast<int>(nfa_.states.size() - 1);
  }
  SkeletonNfa& nfa_;
};

}  // namespace

SkeletonNfa BuildSkeleton(const xpath::PathPtr& query) {
  SkeletonNfa nfa;
  SkeletonBuilder builder(&nfa);
  SkelFrag frag = builder.Build(query);
  nfa.start = frag.entry;
  nfa.states[frag.exit].is_final = true;
  return nfa;
}

}  // namespace internal

namespace {

using automata::kNoState;
using automata::Mfa;
using automata::MfaBuilder;
using automata::PredKind;
using automata::StateId;
using dtd::TypeId;
using internal::SkeletonNfa;

/// The product construction. One instance per RewriteToMfa call.
class Rewriter {
 public:
  Rewriter(const view::ViewDef& view, Mfa* mfa)
      : view_(view), vdtd_(view.view_dtd()), mfa_(*mfa), builder_(mfa) {}

  Status Run(const xpath::PathPtr& query) {
    skeleton_ = internal::BuildSkeleton(query);
    SMOQE_ASSIGN_OR_RETURN(StateId start,
                           ProductState(skeleton_.start, vdtd_.root()));
    mfa_.start = start;
    while (!worklist_.empty()) {
      auto [q, a] = worklist_.back();
      worklist_.pop_back();
      SMOQE_RETURN_IF_ERROR(Expand(q, a));
    }
    return Status::OK();
  }

 private:
  // ---- selecting-NFA product ----

  StatusOr<StateId> ProductState(int q, TypeId a) {
    auto it = product_.find({q, a});
    if (it != product_.end()) return it->second;
    StateId s = builder_.NewNfaState();
    product_.emplace(std::make_pair(q, a), s);
    worklist_.emplace_back(q, a);
    const internal::SkelState& sk = skeleton_.states[q];
    if (sk.is_final) builder_.MarkFinal(s);
    if (sk.filter != nullptr) {
      SMOQE_ASSIGN_OR_RETURN(StateId entry, RewriteFilter(sk.filter, a));
      builder_.Annotate(s, entry);
    }
    return s;
  }

  Status Expand(int q, TypeId a) {
    StateId self = product_.at({q, a});
    const internal::SkelState& sk = skeleton_.states[q];
    for (int e : sk.eps) {
      SMOQE_ASSIGN_OR_RETURN(StateId to, ProductState(e, a));
      builder_.AddEps(self, to);
    }
    for (const internal::SkelTransition& t : sk.trans) {
      for (TypeId b : vdtd_.ChildTypes(a)) {
        if (!t.wildcard && vdtd_.type_name(b) != t.label) continue;
        const xpath::PathPtr* sigma = view_.annotation(a, b);
        if (sigma == nullptr) {
          return Status::Internal("validated view lacks annotation (" +
                                  vdtd_.type_name(a) + ", " +
                                  vdtd_.type_name(b) + ")");
        }
        // Splice in a fresh copy of the selecting NFA of σ(A, B); its own
        // filters are source-level and compile directly.
        MfaBuilder::Frag frag = builder_.BuildSelecting(*sigma);
        SMOQE_ASSIGN_OR_RETURN(StateId to, ProductState(t.to, b));
        builder_.AddEps(self, frag.entry);
        builder_.AddEps(frag.exit, to);
      }
    }
    return Status::OK();
  }

  // ---- filter rewriting (view-level filter AST x view type -> AFA) ----

  // A continuation resolves the view type a path ends at to an AFA state
  // (kNoState = that ending is impossible / false).
  struct Cont {
    std::function<StatusOr<StateId>(TypeId)> resolve;
    int id;
  };

  Cont MakeCont(std::function<StatusOr<StateId>(TypeId)> fn) {
    return Cont{std::move(fn), next_cont_id_++};
  }

  StateId MakeFalse() { return builder_.NewOr({}); }

  StatusOr<StateId> RewriteFilter(const xpath::FilterPtr& f, TypeId a) {
    auto it = filter_memo_.find({f.get(), a});
    if (it != filter_memo_.end()) return it->second;
    SMOQE_ASSIGN_OR_RETURN(StateId s, RewriteFilterUncached(f, a));
    filter_memo_.emplace(std::make_pair(f.get(), a), s);
    return s;
  }

  StatusOr<StateId> RewriteFilterUncached(const xpath::FilterPtr& f, TypeId a) {
    using xpath::FilterKind;
    switch (f->kind) {
      case FilterKind::kPath: {
        StateId fin = builder_.NewFinal(PredKind::kNone);
        Cont cont = MakeCont([fin](TypeId) -> StatusOr<StateId> { return fin; });
        SMOQE_ASSIGN_OR_RETURN(StateId s, RewritePath(f->path, a, cont));
        return s == kNoState ? MakeFalse() : s;
      }
      case FilterKind::kTextEquals: {
        // A text test can only succeed at view types with str content; the
        // materializer copies the bound source node's text verbatim, so the
        // predicate transfers to the source node unchanged.
        StateId fin = builder_.NewFinal(PredKind::kTextEquals, f->text);
        Cont cont = MakeCont([this, fin](TypeId b) -> StatusOr<StateId> {
          if (vdtd_.production(b).kind == dtd::ContentKind::kText) return fin;
          return kNoState;
        });
        SMOQE_ASSIGN_OR_RETURN(StateId s, RewritePath(f->path, a, cont));
        return s == kNoState ? MakeFalse() : s;
      }
      case FilterKind::kPositionEquals:
        return Status::Unimplemented(
            "position() in a view query cannot be rewritten: view positions "
            "do not correspond to source positions");
      case FilterKind::kNot: {
        SMOQE_ASSIGN_OR_RETURN(StateId inner, RewriteFilter(f->left, a));
        return builder_.NewNot(inner);
      }
      case FilterKind::kAnd: {
        SMOQE_ASSIGN_OR_RETURN(StateId l, RewriteFilter(f->left, a));
        SMOQE_ASSIGN_OR_RETURN(StateId r, RewriteFilter(f->right, a));
        return builder_.NewAnd({l, r});
      }
      case FilterKind::kOr: {
        SMOQE_ASSIGN_OR_RETURN(StateId l, RewriteFilter(f->left, a));
        SMOQE_ASSIGN_OR_RETURN(StateId r, RewriteFilter(f->right, a));
        return builder_.NewOr({l, r});
      }
    }
    return Status::Internal("unreachable filter kind");
  }

  /// AFA states for "some view node reachable from a type-`a` node via `p`
  /// satisfies cont(ending type)", expressed over the source document.
  /// Returns kNoState when no ending can succeed.
  ///
  /// Memoized per (AST node, type, continuation): continuation ids are unique
  /// per closure, so equal keys mean the identical continuation. Without this
  /// memo, union branches ending at the same view type would duplicate their
  /// continuation and break the O(|Q|*|sigma|*|D_V|) bound of Theorem 5.1.
  StatusOr<StateId> RewritePath(const xpath::PathPtr& p, TypeId a,
                                const Cont& cont) {
    auto key = std::make_tuple(p.get(), a, cont.id);
    auto it = path_memo_.find(key);
    if (it != path_memo_.end()) return it->second;
    SMOQE_ASSIGN_OR_RETURN(StateId s, RewritePathUncached(p, a, cont));
    path_memo_.emplace(key, s);
    return s;
  }

  StatusOr<StateId> RewritePathUncached(const xpath::PathPtr& p, TypeId a,
                                        const Cont& cont) {
    using xpath::PathKind;
    switch (p->kind) {
      case PathKind::kEmpty:
        return cont.resolve(a);
      case PathKind::kLabel:
      case PathKind::kWildcard: {
        std::vector<StateId> branches;
        for (TypeId b : vdtd_.ChildTypes(a)) {
          if (p->kind == PathKind::kLabel && vdtd_.type_name(b) != p->label) {
            continue;
          }
          SMOQE_ASSIGN_OR_RETURN(StateId after, cont.resolve(b));
          if (after == kNoState) continue;
          const xpath::PathPtr* sigma = view_.annotation(a, b);
          if (sigma == nullptr) {
            return Status::Internal("validated view lacks annotation (" +
                                    vdtd_.type_name(a) + ", " +
                                    vdtd_.type_name(b) + ")");
          }
          branches.push_back(builder_.BuildAfaPath(*sigma, after));
        }
        if (branches.empty()) return kNoState;
        if (branches.size() == 1) return branches[0];
        return builder_.NewOr(std::move(branches));
      }
      case PathKind::kSeq: {
        // cont for the left path: continue with the right path per type.
        const xpath::PathPtr& right = p->right;
        Cont mid = MakeCont([this, right, &cont](TypeId b) -> StatusOr<StateId> {
          return RewritePath(right, b, cont);
        });
        return RewritePath(p->left, a, mid);
      }
      case PathKind::kUnion: {
        SMOQE_ASSIGN_OR_RETURN(StateId l, RewritePath(p->left, a, cont));
        SMOQE_ASSIGN_OR_RETURN(StateId r, RewritePath(p->right, a, cont));
        if (l == kNoState) return r;
        if (r == kNoState) return l;
        return builder_.NewOr({l, r});
      }
      case PathKind::kStar:
        return StarLoop(p, a, cont);
      case PathKind::kFilter: {
        // p[q]: the node reached by p must satisfy q AND the continuation.
        const xpath::FilterPtr filter = p->filter;
        Cont mid =
            MakeCont([this, filter, &cont](TypeId b) -> StatusOr<StateId> {
              SMOQE_ASSIGN_OR_RETURN(StateId after, cont.resolve(b));
              if (after == kNoState) return kNoState;
              SMOQE_ASSIGN_OR_RETURN(StateId guard, RewriteFilter(filter, b));
              return builder_.NewAnd({guard, after});
            });
        return RewritePath(p->left, a, mid);
      }
    }
    return Status::Internal("unreachable path kind");
  }

  StatusOr<StateId> StarLoop(const xpath::PathPtr& star, TypeId a,
                             const Cont& cont) {
    // One OR loop state per (star node, type, original continuation); the
    // loop either exits through cont or runs the body once more. Cycles pass
    // through the OR only, preserving the split property. The loop-back
    // continuation gets a *fresh* id (it is a different function from cont);
    // re-entry at another type still finds the loop state because it routes
    // through this memo, keyed by the original cont.id.
    auto key = std::make_tuple(star.get(), a, cont.id);
    auto it = star_memo_.find(key);
    if (it != star_memo_.end()) return it->second;
    StateId loop = builder_.NewOr({});
    star_memo_.emplace(key, loop);
    const xpath::PathPtr body = star->left;
    Cont back = MakeCont([this, star, &cont](TypeId b) -> StatusOr<StateId> {
      return StarLoop(star, b, cont);
    });
    SMOQE_ASSIGN_OR_RETURN(StateId body_entry, RewritePath(body, a, back));
    SMOQE_ASSIGN_OR_RETURN(StateId exit, cont.resolve(a));
    std::vector<StateId> ops;
    if (exit != kNoState) ops.push_back(exit);
    if (body_entry != kNoState) ops.push_back(body_entry);
    builder_.SetOrOperands(loop, std::move(ops));
    return loop;
  }

  const view::ViewDef& view_;
  const dtd::Dtd& vdtd_;
  Mfa& mfa_;
  MfaBuilder builder_;
  SkeletonNfa skeleton_;

  // Hash tables: the memo keys (state/type ids, AST pointers, continuation
  // ids) have no useful order, and the product/path memos sit on the hot
  // path of every rewrite.
  std::unordered_map<std::pair<int, TypeId>, StateId, PairHash> product_;
  std::vector<std::pair<int, TypeId>> worklist_;
  std::unordered_map<std::pair<const xpath::Filter*, TypeId>, StateId, PairHash>
      filter_memo_;
  std::unordered_map<std::tuple<const xpath::Path*, TypeId, int>, StateId,
                     TupleHash>
      star_memo_;
  std::unordered_map<std::tuple<const xpath::Path*, TypeId, int>, StateId,
                     TupleHash>
      path_memo_;
  int next_cont_id_ = 0;
};

}  // namespace

StatusOr<automata::Mfa> RewriteToMfa(const xpath::PathPtr& query,
                                     const view::ViewDef& view) {
  SMOQE_RETURN_IF_ERROR(view.Validate());
  if (xpath::UsesPosition(query)) {
    return Status::Unimplemented(
        "position() in a view query cannot be rewritten: view positions do "
        "not correspond to source positions");
  }
  automata::Mfa mfa;
  Rewriter rewriter(view, &mfa);
  SMOQE_RETURN_IF_ERROR(rewriter.Run(query));
  return mfa;
}

}  // namespace smoqe::rewrite
