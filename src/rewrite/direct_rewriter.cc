#include "rewrite/direct_rewriter.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hashing.h"
#include "rewrite/skeleton.h"
#include "xpath/x_fragment.h"

namespace smoqe::rewrite {

namespace {

using dtd::TypeId;
using internal::SkeletonNfa;
using xpath::FilterPtr;
using xpath::PathPtr;

FilterPtr FalseFilter() {
  static const FilterPtr f = xpath::FNot(xpath::FPath(xpath::Eps()));
  return f;
}

// (filter AST, view type) -> rewritten filter; keys are unordered, so hash.
using FilterMemo = std::unordered_map<std::pair<const xpath::Filter*, TypeId>,
                                      FilterPtr, PairHash>;

/// State elimination over the (skeleton x view DTD) product with Xreg-AST
/// edge weights. `accept` decides which view types may end the path.
class DirectProduct {
 public:
  DirectProduct(const view::ViewDef& view, FilterMemo* filter_memo)
      : view_(view), vdtd_(view.view_dtd()), filter_memo_(*filter_memo) {}

  /// Returns the rewritten path, or nullptr when no accepting run exists.
  StatusOr<PathPtr> Rewrite(const PathPtr& path, TypeId start_type,
                            const std::vector<bool>& accept_type);

  StatusOr<FilterPtr> RewriteFilter(const FilterPtr& f, TypeId a);

 private:
  static constexpr int kStartNode = 0;
  static constexpr int kEndNode = 1;

  // Dense weight matrix helpers over the per-call node set.
  void AddEdge(std::vector<std::vector<PathPtr>>* m, int i, int j, PathPtr w) {
    PathPtr& slot = (*m)[i][j];
    slot = slot == nullptr ? std::move(w) : xpath::UnionOf(slot, std::move(w));
  }

  const view::ViewDef& view_;
  const dtd::Dtd& vdtd_;
  FilterMemo& filter_memo_;
};

StatusOr<PathPtr> DirectProduct::Rewrite(const PathPtr& path, TypeId start_type,
                                         const std::vector<bool>& accept_type) {
  SkeletonNfa skel = internal::BuildSkeleton(path);

  // Discover product states reachable from (start, start_type).
  std::unordered_map<std::pair<int, TypeId>, int, PairHash> node_of;
  std::vector<std::pair<int, TypeId>> nodes;  // aligned with node index - 2
  std::vector<std::pair<int, TypeId>> work;
  auto node = [&](int q, TypeId a) {
    auto it = node_of.find({q, a});
    if (it != node_of.end()) return it->second;
    int id = static_cast<int>(nodes.size()) + 2;
    node_of.emplace(std::make_pair(q, a), id);
    nodes.emplace_back(q, a);
    work.emplace_back(q, a);
    return id;
  };
  node(skel.start, start_type);

  struct PendingEdge {
    int from;
    int to_q;
    TypeId to_a;
    PathPtr weight;
  };
  std::vector<PendingEdge> pending;
  std::vector<std::pair<int, int>> final_nodes;  // (node, q)

  while (!work.empty()) {
    auto [q, a] = work.back();
    work.pop_back();
    int self = node_of.at({q, a});
    const internal::SkelState& sk = skel.states[q];
    if (sk.is_final && accept_type[a]) final_nodes.emplace_back(self, q);
    for (int e : sk.eps) {
      pending.push_back({self, e, a, xpath::Eps()});
      node(e, a);
    }
    for (const internal::SkelTransition& t : sk.trans) {
      for (TypeId b : vdtd_.ChildTypes(a)) {
        if (!t.wildcard && vdtd_.type_name(b) != t.label) continue;
        const PathPtr* sigma = view_.annotation(a, b);
        if (sigma == nullptr) {
          return Status::Internal("validated view lacks annotation (" +
                                  vdtd_.type_name(a) + ", " +
                                  vdtd_.type_name(b) + ")");
        }
        pending.push_back({self, t.to, b, *sigma});
        node(t.to, b);
      }
    }
  }

  int n = static_cast<int>(nodes.size()) + 2;
  std::vector<std::vector<PathPtr>> m(n, std::vector<PathPtr>(n));

  // Entering a product state whose skeleton state carries a filter requires
  // the (rewritten) filter to hold at the node just reached: weight `.[q']`.
  auto into_weight = [&](PathPtr w, int q, TypeId a) -> StatusOr<PathPtr> {
    const FilterPtr& f = skel.states[q].filter;
    if (f == nullptr) return w;
    SMOQE_ASSIGN_OR_RETURN(FilterPtr rewritten, RewriteFilter(f, a));
    return xpath::Seq(std::move(w),
                      xpath::WithFilter(xpath::Eps(), std::move(rewritten)));
  };

  {
    SMOQE_ASSIGN_OR_RETURN(
        PathPtr w, into_weight(xpath::Eps(), skel.start, start_type));
    AddEdge(&m, kStartNode, node_of.at({skel.start, start_type}), std::move(w));
  }
  for (const PendingEdge& e : pending) {
    SMOQE_ASSIGN_OR_RETURN(PathPtr w, into_weight(e.weight, e.to_q, e.to_a));
    AddEdge(&m, e.from, node_of.at({e.to_q, e.to_a}), std::move(w));
  }
  for (auto [v, q] : final_nodes) {
    AddEdge(&m, v, kEndNode, xpath::Eps());
  }

  // Eliminate product nodes one by one.
  for (int v = 2; v < n; ++v) {
    PathPtr star;
    if (m[v][v] != nullptr && m[v][v]->kind != xpath::PathKind::kEmpty) {
      star = xpath::Star(m[v][v]);
    }
    m[v][v] = nullptr;
    for (int i = 0; i < n; ++i) {
      if (i == v || m[i][v] == nullptr) continue;
      for (int j = 0; j < n; ++j) {
        if (j == v || m[v][j] == nullptr) continue;
        PathPtr w = m[i][v];
        if (star != nullptr) w = xpath::Seq(w, star);
        w = xpath::Seq(std::move(w), m[v][j]);
        AddEdge(&m, i, j, std::move(w));
      }
    }
    for (int i = 0; i < n; ++i) {
      m[i][v] = nullptr;
      m[v][i] = nullptr;
    }
  }
  return m[kStartNode][kEndNode];  // may be nullptr
}

StatusOr<FilterPtr> DirectProduct::RewriteFilter(const FilterPtr& f, TypeId a) {
  auto it = filter_memo_.find({f.get(), a});
  if (it != filter_memo_.end()) return it->second;

  using xpath::FilterKind;
  FilterPtr result;
  switch (f->kind) {
    case FilterKind::kPath:
    case FilterKind::kTextEquals: {
      std::vector<bool> accept(vdtd_.num_types(), f->kind == FilterKind::kPath);
      if (f->kind == FilterKind::kTextEquals) {
        for (TypeId t = 0; t < vdtd_.num_types(); ++t) {
          accept[t] = vdtd_.production(t).kind == dtd::ContentKind::kText;
        }
      }
      SMOQE_ASSIGN_OR_RETURN(PathPtr p, Rewrite(f->path, a, accept));
      if (p == nullptr) {
        result = FalseFilter();
      } else if (f->kind == FilterKind::kPath) {
        result = xpath::FPath(std::move(p));
      } else {
        result = xpath::FTextEquals(std::move(p), f->text);
      }
      break;
    }
    case FilterKind::kPositionEquals:
      return Status::Unimplemented(
          "position() in a view query cannot be rewritten: view positions do "
          "not correspond to source positions");
    case FilterKind::kNot: {
      SMOQE_ASSIGN_OR_RETURN(FilterPtr inner, RewriteFilter(f->left, a));
      result = xpath::FNot(std::move(inner));
      break;
    }
    case FilterKind::kAnd:
    case FilterKind::kOr: {
      SMOQE_ASSIGN_OR_RETURN(FilterPtr l, RewriteFilter(f->left, a));
      SMOQE_ASSIGN_OR_RETURN(FilterPtr r, RewriteFilter(f->right, a));
      result = f->kind == FilterKind::kAnd ? xpath::FAnd(std::move(l), std::move(r))
                                           : xpath::FOr(std::move(l), std::move(r));
      break;
    }
  }
  filter_memo_.emplace(std::make_pair(f.get(), a), result);
  return result;
}

}  // namespace

xpath::PathPtr EmptyQuery() {
  static const PathPtr empty = xpath::WithFilter(xpath::Eps(), FalseFilter());
  return empty;
}

StatusOr<xpath::PathPtr> DirectRewrite(const xpath::PathPtr& query,
                                       const view::ViewDef& view) {
  SMOQE_RETURN_IF_ERROR(view.Validate());
  if (xpath::UsesPosition(query)) {
    return Status::Unimplemented(
        "position() in a view query cannot be rewritten: view positions do "
        "not correspond to source positions");
  }
  FilterMemo filter_memo;
  DirectProduct product(view, &filter_memo);
  std::vector<bool> accept(view.view_dtd().num_types(), true);
  SMOQE_ASSIGN_OR_RETURN(
      PathPtr result, product.Rewrite(query, view.view_dtd().root(), accept));
  if (result == nullptr) return EmptyQuery();
  return result;
}

}  // namespace smoqe::rewrite
