// Internal: a Thompson NFA of a query over the *view* alphabet, with filters
// kept as unrewritten ASTs on guard states. Both the MFA rewriter and the
// direct (Xreg-to-Xreg) rewriter build their product construction on top of
// this skeleton.

#ifndef SMOQE_REWRITE_SKELETON_H_
#define SMOQE_REWRITE_SKELETON_H_

#include <string>
#include <vector>

#include "xpath/ast.h"

namespace smoqe::rewrite::internal {

struct SkelTransition {
  std::string label;  // view label; empty + wildcard for '*'
  bool wildcard = false;
  int to = -1;
};

struct SkelState {
  std::vector<SkelTransition> trans;
  std::vector<int> eps;
  bool is_final = false;
  xpath::FilterPtr filter;  // view-level filter guarding this state, or null
};

struct SkeletonNfa {
  std::vector<SkelState> states;
  int start = -1;
};

/// Thompson construction over the view alphabet. Filters are attached to
/// fresh guard states (one filter per state).
SkeletonNfa BuildSkeleton(const xpath::PathPtr& query);

}  // namespace smoqe::rewrite::internal

#endif  // SMOQE_REWRITE_SKELETON_H_
