// Algorithm rewrite (Section 5): given an Xreg query Q over the view DTD D_V
// and a view definition σ : D -> D_V, produce an MFA M over the source DTD D
// such that for every document T of D,  root[[M]](T) = Q(σ(T)) (view answers
// compared through the materializer's provenance binding).
//
// Construction: the Thompson NFA of Q (over view labels) is put in product
// with the view DTD graph -- states are (q, A) pairs -- and every label move
// q -B-> q' at view type A is replaced by a fresh instantiation of the
// selecting NFA of σ(A, B), spliced in with ε-transitions. View-level filters
// annotate product states with AFAs rewritten by the same product idea, with
// nested filters flattened into a single AFA (Example 5.1 / 5.2). The result
// has size O(|Q| * |σ| * |D_V|) (Theorem 5.1) -- in contrast to the
// EXPTIME-complete explicit rewriting (Corollary 3.3, see direct_rewriter.h).

#ifndef SMOQE_REWRITE_REWRITER_H_
#define SMOQE_REWRITE_REWRITER_H_

#include "automata/mfa.h"
#include "common/status.h"
#include "view/view_def.h"
#include "xpath/ast.h"

namespace smoqe::rewrite {

/// Rewrites `query` (over the view) into an equivalent MFA over the source.
/// Fails when the view is invalid or the query uses position() (view
/// positions are not translatable to source positions).
StatusOr<automata::Mfa> RewriteToMfa(const xpath::PathPtr& query,
                                     const view::ViewDef& view);

}  // namespace smoqe::rewrite

#endif  // SMOQE_REWRITE_REWRITER_H_
