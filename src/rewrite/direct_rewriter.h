// Direct query rewriting: Q over the view -> an *explicit* Xreg query Q' over
// the source with Q(σ(T)) = Q'(T) (Theorem 3.2: Xreg is closed under
// rewriting for arbitrary views).
//
// The construction runs state elimination over the product of Q's NFA with
// the view DTD graph, with Xreg ASTs as edge weights (each view edge (A, B)
// contributes σ(A,B) verbatim; view filters are rewritten recursively and
// attached as `.[q']` steps). The output can be exponential in |Q| and |D_V|
// -- Corollary 3.3 shows this is unavoidable for explicit rewritings, even
// for non-recursive views -- which is precisely why SMOQE rewrites to MFAs
// instead (rewriter.h). bench_blowup measures the gap.

#ifndef SMOQE_REWRITE_DIRECT_REWRITER_H_
#define SMOQE_REWRITE_DIRECT_REWRITER_H_

#include "common/status.h"
#include "view/view_def.h"
#include "xpath/ast.h"

namespace smoqe::rewrite {

/// Rewrites `query` into an equivalent explicit Xreg query on the source.
/// ASTs share subtrees internally, so the in-memory footprint stays
/// polynomial; xpath::ExpandedSize() reports the explicit size the paper's
/// lower bound speaks about.
StatusOr<xpath::PathPtr> DirectRewrite(const xpath::PathPtr& query,
                                       const view::ViewDef& view);

/// An Xreg query that selects nothing (used when no run can succeed; the
/// grammar has no empty-set constant, so this is `.[not(.)]`).
xpath::PathPtr EmptyQuery();

}  // namespace smoqe::rewrite

#endif  // SMOQE_REWRITE_DIRECT_REWRITER_H_
