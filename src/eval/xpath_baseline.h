// "JAXP substitute": a conventional interpretive XPath engine, standing in
// for JAXP RI (Xerces + Xalan) in the Fig. 8 experiments (see DESIGN.md,
// substitutions).
//
// It evaluates queries of the XPath fragment X the way interpretive engines
// do: one step at a time over materialized context lists (sorted and
// deduplicated per step), '//' by collecting whole subtrees, and every filter
// re-evaluated from scratch at every candidate node. No automata, no
// pruning, no sharing across filter evaluations.

#ifndef SMOQE_EVAL_XPATH_BASELINE_H_
#define SMOQE_EVAL_XPATH_BASELINE_H_

#include "common/status.h"
#include "eval/naive_evaluator.h"
#include "xml/tree.h"
#include "xpath/ast.h"

namespace smoqe::eval {

class XPathBaseline {
 public:
  explicit XPathBaseline(const xml::Tree& tree) : tree_(tree) {}

  /// Evaluates an X query (general Kleene stars are rejected with
  /// InvalidArgument -- Xalan cannot run regular XPath either, which is the
  /// point of Fig. 9 using HyPE variants only).
  StatusOr<NodeSet> Eval(const xpath::PathPtr& query, xml::NodeId context) const;

 private:
  NodeSet Step(const xpath::PathPtr& query, const NodeSet& contexts) const;
  bool Filter(const xpath::FilterPtr& filter, xml::NodeId node) const;

  const xml::Tree& tree_;
};

}  // namespace smoqe::eval

#endif  // SMOQE_EVAL_XPATH_BASELINE_H_
