#include "eval/xpath_baseline.h"

#include <algorithm>

#include "xpath/x_fragment.h"

namespace smoqe::eval {

namespace {

void SortDedup(NodeSet* s) {
  std::sort(s->begin(), s->end());
  s->erase(std::unique(s->begin(), s->end()), s->end());
}

}  // namespace

StatusOr<NodeSet> XPathBaseline::Eval(const xpath::PathPtr& query,
                                      xml::NodeId context) const {
  if (!xpath::IsInXFragment(query)) {
    return Status::InvalidArgument(
        "XPathBaseline evaluates the XPath fragment X only; general Kleene "
        "stars require a regular XPath engine (HyPE)");
  }
  return Step(query, NodeSet{context});
}

NodeSet XPathBaseline::Step(const xpath::PathPtr& query,
                            const NodeSet& contexts) const {
  using xpath::PathKind;
  NodeSet out;
  switch (query->kind) {
    case PathKind::kEmpty:
      out = contexts;
      break;
    case PathKind::kLabel: {
      for (xml::NodeId v : contexts) {
        for (xml::NodeId c = tree_.first_child(v); c != xml::kNullNode;
             c = tree_.next_sibling(c)) {
          // Interpretive engines compare tag names; so do we.
          if (tree_.is_element(c) && tree_.label_name(c) == query->label) {
            out.push_back(c);
          }
        }
      }
      break;
    }
    case PathKind::kWildcard: {
      for (xml::NodeId v : contexts) {
        for (xml::NodeId c = tree_.first_child(v); c != xml::kNullNode;
             c = tree_.next_sibling(c)) {
          if (tree_.is_element(c)) out.push_back(c);
        }
      }
      break;
    }
    case PathKind::kSeq:
      out = Step(query->right, Step(query->left, contexts));
      break;
    case PathKind::kUnion: {
      out = Step(query->left, contexts);
      NodeSet rhs = Step(query->right, contexts);
      out.insert(out.end(), rhs.begin(), rhs.end());
      break;
    }
    case PathKind::kStar: {
      // In X this is always (*)*: descendant-or-self, one full subtree walk
      // per context node.
      for (xml::NodeId v : contexts) {
        std::vector<xml::NodeId> stack = {v};
        while (!stack.empty()) {
          xml::NodeId n = stack.back();
          stack.pop_back();
          out.push_back(n);
          for (xml::NodeId c = tree_.first_child(n); c != xml::kNullNode;
               c = tree_.next_sibling(c)) {
            if (tree_.is_element(c)) stack.push_back(c);
          }
        }
      }
      break;
    }
    case PathKind::kFilter: {
      NodeSet base = Step(query->left, contexts);
      for (xml::NodeId v : base) {
        if (Filter(query->filter, v)) out.push_back(v);
      }
      break;
    }
  }
  SortDedup(&out);
  return out;
}

bool XPathBaseline::Filter(const xpath::FilterPtr& filter,
                           xml::NodeId node) const {
  using xpath::FilterKind;
  switch (filter->kind) {
    case FilterKind::kPath:
      return !Step(filter->path, NodeSet{node}).empty();
    case FilterKind::kTextEquals: {
      for (xml::NodeId v : Step(filter->path, NodeSet{node})) {
        if (tree_.HasText(v, filter->text)) return true;
      }
      return false;
    }
    case FilterKind::kPositionEquals:
      return tree_.child_index(node) == filter->position;
    case FilterKind::kNot:
      return !Filter(filter->left, node);
    case FilterKind::kAnd:
      return Filter(filter->left, node) && Filter(filter->right, node);
    case FilterKind::kOr:
      return Filter(filter->left, node) || Filter(filter->right, node);
  }
  return false;
}

}  // namespace smoqe::eval
