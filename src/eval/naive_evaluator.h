// Reference evaluator: the direct set semantics of Xreg (Section 2.1).
//
//   v[[eps]]    = {v}
//   v[[A]]      = children of v labeled A
//   v[[*]]      = element children of v
//   v[[Q1/Q2]]  = union over u in v[[Q1]] of u[[Q2]]
//   v[[Q1 U Q2]]= v[[Q1]] union v[[Q2]]
//   v[[Q*]]     = reflexive-transitive closure of [[Q]] from v
//   v[[Q[q]]]   = {u in v[[Q]] : q holds at u}
//
// This is the correctness oracle for every other evaluator in the repository.
// It makes no effort to be fast (no pruning, no sharing across filters).

#ifndef SMOQE_EVAL_NAIVE_EVALUATOR_H_
#define SMOQE_EVAL_NAIVE_EVALUATOR_H_

#include <vector>

#include "xml/tree.h"
#include "xpath/ast.h"

namespace smoqe::eval {

/// Sorted, duplicate-free node ids (document order, since builders append in
/// DFS order).
using NodeSet = std::vector<xml::NodeId>;

class NaiveEvaluator {
 public:
  explicit NaiveEvaluator(const xml::Tree& tree) : tree_(tree) {}

  /// Evaluates `query` at `context`, returning v[[Q]].
  NodeSet Eval(const xpath::PathPtr& query, xml::NodeId context) const;

  /// Evaluates `query` at every node of `contexts` (set-at-a-time).
  NodeSet EvalSet(const xpath::PathPtr& query, const NodeSet& contexts) const;

  /// Truth of a filter at a node.
  bool EvalFilter(const xpath::FilterPtr& filter, xml::NodeId node) const;

 private:
  const xml::Tree& tree_;
};

}  // namespace smoqe::eval

#endif  // SMOQE_EVAL_NAIVE_EVALUATOR_H_
