// "GALAX substitute": evaluates regular XPath the way an XQuery engine runs
// the standard translation of Xreg into recursive XQuery functions (the
// comparison SMOQE's Section 7 ran against GALAX; see DESIGN.md).
//
// The translation turns Q* into a recursive function F(S) = S union
// F(body(S)) evaluated over fully materialized sequences: every round
// re-applies the body to the *entire* accumulated set (no delta/frontier
// optimization -- engines executing the translation have no idea it computes
// a closure), and filters are re-evaluated per candidate with no sharing.
// That cost profile, not a flaw in GALAX, is why the paper reports the
// translation "required considerably more time".

#ifndef SMOQE_EVAL_GALAX_SUBSTITUTE_H_
#define SMOQE_EVAL_GALAX_SUBSTITUTE_H_

#include "eval/naive_evaluator.h"
#include "xml/tree.h"
#include "xpath/ast.h"

namespace smoqe::eval {

class GalaxSubstitute {
 public:
  explicit GalaxSubstitute(const xml::Tree& tree) : tree_(tree) {}

  /// Evaluates any Xreg query (this engine's one advantage over XPath-only
  /// baselines -- matching GALAX, which could run the translation).
  NodeSet Eval(const xpath::PathPtr& query, xml::NodeId context) const;

 private:
  NodeSet Apply(const xpath::PathPtr& query, const NodeSet& contexts) const;
  bool Filter(const xpath::FilterPtr& filter, xml::NodeId node) const;

  const xml::Tree& tree_;
};

}  // namespace smoqe::eval

#endif  // SMOQE_EVAL_GALAX_SUBSTITUTE_H_
