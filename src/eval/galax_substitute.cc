#include "eval/galax_substitute.h"

#include <algorithm>

namespace smoqe::eval {

namespace {

void SortDedup(NodeSet* s) {
  std::sort(s->begin(), s->end());
  s->erase(std::unique(s->begin(), s->end()), s->end());
}

}  // namespace

NodeSet GalaxSubstitute::Eval(const xpath::PathPtr& query,
                              xml::NodeId context) const {
  return Apply(query, NodeSet{context});
}

NodeSet GalaxSubstitute::Apply(const xpath::PathPtr& query,
                               const NodeSet& contexts) const {
  using xpath::PathKind;
  NodeSet out;
  switch (query->kind) {
    case PathKind::kEmpty:
      out = contexts;
      break;
    case PathKind::kLabel:
      for (xml::NodeId v : contexts) {
        for (xml::NodeId c = tree_.first_child(v); c != xml::kNullNode;
             c = tree_.next_sibling(c)) {
          if (tree_.is_element(c) && tree_.label_name(c) == query->label) {
            out.push_back(c);
          }
        }
      }
      break;
    case PathKind::kWildcard:
      for (xml::NodeId v : contexts) {
        for (xml::NodeId c = tree_.first_child(v); c != xml::kNullNode;
             c = tree_.next_sibling(c)) {
          if (tree_.is_element(c)) out.push_back(c);
        }
      }
      break;
    case PathKind::kSeq:
      out = Apply(query->right, Apply(query->left, contexts));
      break;
    case PathKind::kUnion: {
      out = Apply(query->left, contexts);
      NodeSet rhs = Apply(query->right, contexts);
      out.insert(out.end(), rhs.begin(), rhs.end());
      break;
    }
    case PathKind::kStar: {
      // The recursive-function translation: keep re-applying the body to the
      // whole accumulated sequence until it stops growing.
      out = contexts;
      SortDedup(&out);
      for (;;) {
        NodeSet image = Apply(query->left, out);
        NodeSet merged = out;
        merged.insert(merged.end(), image.begin(), image.end());
        SortDedup(&merged);
        if (merged.size() == out.size()) break;
        out = std::move(merged);
      }
      break;
    }
    case PathKind::kFilter: {
      NodeSet base = Apply(query->left, contexts);
      for (xml::NodeId v : base) {
        if (Filter(query->filter, v)) out.push_back(v);
      }
      break;
    }
  }
  SortDedup(&out);
  return out;
}

bool GalaxSubstitute::Filter(const xpath::FilterPtr& filter,
                             xml::NodeId node) const {
  using xpath::FilterKind;
  switch (filter->kind) {
    case FilterKind::kPath:
      return !Apply(filter->path, NodeSet{node}).empty();
    case FilterKind::kTextEquals:
      for (xml::NodeId v : Apply(filter->path, NodeSet{node})) {
        if (tree_.HasText(v, filter->text)) return true;
      }
      return false;
    case FilterKind::kPositionEquals:
      return tree_.child_index(node) == filter->position;
    case FilterKind::kNot:
      return !Filter(filter->left, node);
    case FilterKind::kAnd:
      return Filter(filter->left, node) && Filter(filter->right, node);
    case FilterKind::kOr:
      return Filter(filter->left, node) || Filter(filter->right, node);
  }
  return false;
}

}  // namespace smoqe::eval
