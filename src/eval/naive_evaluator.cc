#include "eval/naive_evaluator.h"

#include <algorithm>

namespace smoqe::eval {

namespace {

void SortUnique(NodeSet* s) {
  std::sort(s->begin(), s->end());
  s->erase(std::unique(s->begin(), s->end()), s->end());
}

NodeSet MergeSets(const NodeSet& a, const NodeSet& b) {
  NodeSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace

NodeSet NaiveEvaluator::Eval(const xpath::PathPtr& query, xml::NodeId context) const {
  return EvalSet(query, NodeSet{context});
}

NodeSet NaiveEvaluator::EvalSet(const xpath::PathPtr& query,
                                const NodeSet& contexts) const {
  using xpath::PathKind;
  switch (query->kind) {
    case PathKind::kEmpty:
      return contexts;
    case PathKind::kLabel: {
      LabelId want = tree_.labels().Lookup(query->label);
      NodeSet out;
      if (want == kNoLabel) return out;
      for (xml::NodeId v : contexts) {
        for (xml::NodeId c = tree_.first_child(v); c != xml::kNullNode;
             c = tree_.next_sibling(c)) {
          if (tree_.is_element(c) && tree_.label(c) == want) out.push_back(c);
        }
      }
      SortUnique(&out);
      return out;
    }
    case PathKind::kWildcard: {
      NodeSet out;
      for (xml::NodeId v : contexts) {
        for (xml::NodeId c = tree_.first_child(v); c != xml::kNullNode;
             c = tree_.next_sibling(c)) {
          if (tree_.is_element(c)) out.push_back(c);
        }
      }
      SortUnique(&out);
      return out;
    }
    case PathKind::kSeq:
      return EvalSet(query->right, EvalSet(query->left, contexts));
    case PathKind::kUnion:
      return MergeSets(EvalSet(query->left, contexts),
                       EvalSet(query->right, contexts));
    case PathKind::kStar: {
      // Reflexive-transitive closure via a worklist.
      NodeSet closure = contexts;
      NodeSet frontier = contexts;
      while (!frontier.empty()) {
        NodeSet next = EvalSet(query->left, frontier);
        NodeSet fresh;
        std::set_difference(next.begin(), next.end(), closure.begin(),
                            closure.end(), std::back_inserter(fresh));
        if (fresh.empty()) break;
        closure = MergeSets(closure, fresh);
        frontier = std::move(fresh);
      }
      return closure;
    }
    case PathKind::kFilter: {
      NodeSet base = EvalSet(query->left, contexts);
      NodeSet out;
      for (xml::NodeId v : base) {
        if (EvalFilter(query->filter, v)) out.push_back(v);
      }
      return out;
    }
  }
  return {};
}

bool NaiveEvaluator::EvalFilter(const xpath::FilterPtr& filter,
                                xml::NodeId node) const {
  using xpath::FilterKind;
  switch (filter->kind) {
    case FilterKind::kPath:
      return !Eval(filter->path, node).empty();
    case FilterKind::kTextEquals: {
      for (xml::NodeId v : Eval(filter->path, node)) {
        if (tree_.HasText(v, filter->text)) return true;
      }
      return false;
    }
    case FilterKind::kPositionEquals:
      return tree_.child_index(node) == filter->position;
    case FilterKind::kNot:
      return !EvalFilter(filter->left, node);
    case FilterKind::kAnd:
      return EvalFilter(filter->left, node) && EvalFilter(filter->right, node);
    case FilterKind::kOr:
      return EvalFilter(filter->left, node) || EvalFilter(filter->right, node);
  }
  return false;
}

}  // namespace smoqe::eval
