#include "policy/role_compiler.h"

#include <utility>
#include <vector>

#include "xpath/ast.h"

namespace smoqe::policy {

namespace {

// One surviving child occurrence of a view production, pre-collapse.
struct VisibleChild {
  dtd::TypeId type;
  bool starred;
  Annotation ann;
};

// Applies the collapse rule: repeated types merge into one starred spec,
// order of first occurrence. `force_star` stars every survivor (used when a
// disjunction lost branches).
std::vector<dtd::ChildSpec> Collapse(std::vector<VisibleChild>* children,
                                     bool force_star) {
  std::vector<dtd::ChildSpec> out;
  for (const VisibleChild& c : *children) {
    bool merged = false;
    for (dtd::ChildSpec& spec : out) {
      if (spec.type == c.type) {
        spec.starred = true;  // repeated type: collapse to starred
        merged = true;
        break;
      }
    }
    if (merged) continue;
    bool star = force_star || c.starred || c.ann.kind == AccessKind::kCond;
    out.push_back({c.type, star});
  }
  return out;
}

}  // namespace

StatusOr<CompiledRole> CompileRole(const Policy& policy, RoleId role) {
  if (role < 0 || role >= policy.num_roles()) {
    return Status::InvalidArgument("unknown role id " + std::to_string(role));
  }
  SMOQE_RETURN_IF_ERROR(policy.Validate());

  CompiledRole out;
  out.role = role;
  if (!policy.RootVisible(role)) {
    out.root_hidden = true;
    return out;
  }

  const dtd::Dtd& src = policy.source_dtd();

  // Visible region: BFS from the root over non-denied edges. Deny is final
  // (see policy.h), so a type is visible iff some all-visible path from the
  // root reaches it.
  std::vector<char> visible(src.num_types(), 0);
  std::vector<dtd::TypeId> frontier = {src.root()};
  visible[src.root()] = 1;
  while (!frontier.empty()) {
    dtd::TypeId a = frontier.back();
    frontier.pop_back();
    for (dtd::TypeId b : src.ChildTypes(a)) {
      if (visible[b]) continue;
      if (policy.Effective(role, a, b).kind == AccessKind::kDeny) continue;
      visible[b] = 1;
      frontier.push_back(b);
    }
  }

  // The view DTD reuses the source type names; declaring every visible type
  // up front (in source-id order) keeps the mapping trivial.
  dtd::Dtd view_dtd;
  std::vector<dtd::TypeId> view_id(src.num_types(), dtd::kNoType);
  for (dtd::TypeId t = 0; t < src.num_types(); ++t) {
    if (visible[t]) {
      view_id[t] = view_dtd.DeclareType(src.type_name(t));
      ++out.visible_types;
    }
  }
  view_dtd.SetRoot(view_id[src.root()]);

  // Per visible type: the restricted production, collecting the edge
  // annotations the sigma pass below will attach.
  struct Edge {
    dtd::TypeId a, b;  // source ids
    Annotation ann;
  };
  std::vector<Edge> edges;
  for (dtd::TypeId a = 0; a < src.num_types(); ++a) {
    if (!visible[a]) continue;
    const dtd::Production& prod = src.production(a);
    dtd::Production view_prod;
    switch (prod.kind) {
      case dtd::ContentKind::kText:
      case dtd::ContentKind::kEmpty:
        view_prod.kind = prod.kind;
        break;
      case dtd::ContentKind::kSequence:
      case dtd::ContentKind::kChoice: {
        std::vector<VisibleChild> survivors;
        std::vector<dtd::TypeId> seen_types;
        for (const dtd::ChildSpec& spec : prod.children) {
          Annotation ann = policy.Effective(role, a, spec.type);
          if (ann.kind == AccessKind::kDeny) continue;
          survivors.push_back({spec.type, spec.starred, ann});
          bool seen = false;
          for (dtd::TypeId t : seen_types) seen |= t == spec.type;
          if (!seen) {
            seen_types.push_back(spec.type);
            edges.push_back({a, spec.type, std::move(ann)});
          }
        }
        const bool lost_branch =
            prod.kind == dtd::ContentKind::kChoice &&
            survivors.size() < prod.children.size();
        std::vector<dtd::ChildSpec> specs = Collapse(&survivors, lost_branch);
        for (dtd::ChildSpec& s : specs) s.type = view_id[s.type];
        if (specs.empty()) {
          view_prod.kind = dtd::ContentKind::kEmpty;
        } else if (prod.kind == dtd::ContentKind::kChoice &&
                   specs.size() >= 2) {
          view_prod.kind = dtd::ContentKind::kChoice;
          view_prod.children = std::move(specs);
        } else {
          // Sequences, and disjunctions reduced to a single branch.
          view_prod.kind = dtd::ContentKind::kSequence;
          view_prod.children = std::move(specs);
        }
        break;
      }
    }
    Status set = view_dtd.SetProduction(view_id[a], std::move(view_prod));
    if (!set.ok()) {
      return Status::Internal("role '" + policy.role_name(role) +
                              "': " + set.message());
    }
  }

  auto view = std::make_shared<view::ViewDef>(src, std::move(view_dtd));
  for (const Edge& e : edges) {
    xpath::PathPtr q = xpath::Label(src.type_name(e.b));
    if (e.ann.kind == AccessKind::kCond) {
      q = xpath::WithFilter(std::move(q), e.ann.cond);
    }
    Status set = view->SetAnnotation(src.type_name(e.a), src.type_name(e.b),
                                     std::move(q));
    if (!set.ok()) {
      return Status::Internal("role '" + policy.role_name(role) +
                              "': " + set.message());
    }
  }
  SMOQE_RETURN_IF_ERROR(view->Validate());
  out.view = std::move(view);
  return out;
}

}  // namespace smoqe::policy
