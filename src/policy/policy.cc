#include "policy/policy.h"

#include <algorithm>

#include "xpath/parser.h"
#include "xpath/printer.h"
#include "xpath/x_fragment.h"

namespace smoqe::policy {

StatusOr<Annotation> Annotation::If(std::string_view cond_text) {
  // The xpath parser exposes queries, not bare qualifiers; `*[q]` embeds the
  // qualifier in a query so any legal predicate syntax (paths, text()='c',
  // not/and/or) parses without a second grammar.
  auto wrapped = xpath::ParseQuery("*[" + std::string(cond_text) + "]");
  if (!wrapped.ok()) {
    return Status::ParseError("policy condition '" + std::string(cond_text) +
                              "': " + wrapped.status().message());
  }
  const xpath::PathPtr& p = wrapped.value();
  if (p->kind != xpath::PathKind::kFilter || p->filter == nullptr) {
    return Status::ParseError("policy condition '" + std::string(cond_text) +
                              "' did not parse as a qualifier");
  }
  if (xpath::UsesPosition(p->filter)) {
    return Status::Unimplemented(
        "policy condition '" + std::string(cond_text) +
        "' uses position(), which has no source-stable meaning through "
        "views");
  }
  Annotation ann;
  ann.kind = AccessKind::kCond;
  ann.cond = p->filter;
  ann.cond_text = xpath::ToString(p->filter);
  return ann;
}

Policy::Policy(dtd::Dtd source_dtd) : source_dtd_(std::move(source_dtd)) {}

StatusOr<RoleId> Policy::AddRole(std::string_view name,
                                 const std::vector<std::string>& parents) {
  if (name.empty()) return Status::InvalidArgument("empty role name");
  if (by_name_.find(name) != by_name_.end()) {
    return Status::InvalidArgument("duplicate role '" + std::string(name) +
                                   "'");
  }
  Role role;
  role.name = std::string(name);
  for (const std::string& p : parents) {
    RoleId pid = FindRole(p);
    if (pid == kNoRole) {
      return Status::NotFound("role '" + std::string(name) +
                              "' extends undeclared role '" + p +
                              "' (parents must be declared first)");
    }
    if (std::find(role.parents.begin(), role.parents.end(), pid) ==
        role.parents.end()) {
      role.parents.push_back(pid);
    }
  }
  RoleId id = static_cast<RoleId>(roles_.size());
  by_name_.emplace(role.name, id);
  roles_.push_back(std::move(role));
  return id;
}

RoleId Policy::FindRole(std::string_view name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoRole : it->second;
}

Status Policy::Annotate(RoleId r, std::string_view a, std::string_view b,
                        Annotation ann) {
  if (r < 0 || r >= num_roles()) {
    return Status::InvalidArgument("unknown role id");
  }
  dtd::TypeId ta = source_dtd_.FindType(a);
  dtd::TypeId tb = source_dtd_.FindType(b);
  if (ta == dtd::kNoType || tb == dtd::kNoType) {
    return Status::NotFound("type '" +
                            std::string(ta == dtd::kNoType ? a : b) +
                            "' is not declared in the source DTD");
  }
  if (!source_dtd_.HasEdge(ta, tb)) {
    return Status::InvalidArgument("(" + std::string(a) + ", " +
                                   std::string(b) +
                                   ") is not an edge of the source DTD");
  }
  auto [it, inserted] = roles_[r].local.emplace(std::make_pair(ta, tb),
                                                std::move(ann));
  if (!inserted) {
    return Status::InvalidArgument("role '" + roles_[r].name +
                                   "' annotates (" + std::string(a) + ", " +
                                   std::string(b) + ") twice");
  }
  return Status::OK();
}

Status Policy::AnnotateRoot(RoleId r, Annotation ann) {
  if (r < 0 || r >= num_roles()) {
    return Status::InvalidArgument("unknown role id");
  }
  if (ann.kind == AccessKind::kCond) {
    return Status::Unimplemented(
        "a conditional root is not expressible as a security view; annotate "
        "the root's child edges instead");
  }
  if (roles_[r].root_annotated) {
    return Status::InvalidArgument("role '" + roles_[r].name +
                                   "' annotates the root twice");
  }
  roles_[r].root = std::move(ann);
  roles_[r].root_annotated = true;
  return Status::OK();
}

const Annotation* Policy::Local(RoleId r, dtd::TypeId a, dtd::TypeId b) const {
  const auto& local = roles_[r].local;
  auto it = local.find({a, b});
  return it == local.end() ? nullptr : &it->second;
}

Annotation Policy::Effective(RoleId r, dtd::TypeId a, dtd::TypeId b) const {
  if (const Annotation* local = Local(r, a, b)) return *local;
  // Inherited: deny-overrides, then condition conjunction, then allow. The
  // role DAG is acyclic by construction, so plain recursion terminates; the
  // graphs are tiny (human-authored), so no memo is needed.
  std::vector<Annotation> conds;
  for (RoleId p : roles_[r].parents) {
    Annotation inherited = Effective(p, a, b);
    switch (inherited.kind) {
      case AccessKind::kDeny:
        return Annotation::Deny();
      case AccessKind::kCond: {
        // Dedup by normalized text so a diamond does not square its
        // condition; first-parent order pins the conjunction shape.
        bool seen = false;
        for (const Annotation& c : conds) {
          seen |= c.cond_text == inherited.cond_text;
        }
        if (!seen) conds.push_back(std::move(inherited));
        break;
      }
      case AccessKind::kAllow:
        break;
    }
  }
  if (conds.empty()) return Annotation::Allow();
  Annotation out = std::move(conds.front());
  for (size_t i = 1; i < conds.size(); ++i) {
    out.cond = xpath::FAnd(out.cond, conds[i].cond);
    out.cond_text += " and " + conds[i].cond_text;
  }
  return out;
}

bool Policy::RootVisible(RoleId r) const {
  const Role& role = roles_[r];
  if (role.root_annotated) return role.root.kind != AccessKind::kDeny;
  for (RoleId p : role.parents) {
    if (!RootVisible(p)) return false;  // deny-overrides
  }
  return true;
}

Status Policy::Validate() const {
  SMOQE_RETURN_IF_ERROR(source_dtd_.Validate());
  if (roles_.empty()) {
    return Status::FailedPrecondition("policy declares no roles");
  }
  return Status::OK();
}

}  // namespace smoqe::policy
