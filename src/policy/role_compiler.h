// Compiles one role of a Policy into a servable view::ViewDef -- the
// Mahfoud-Imine move of precomputing the view (automaton) per policy, done
// once per role and cached by policy::RoleCatalog.
//
// The derived view DTD is the source DTD restricted to the role's VISIBLE
// region: the types reachable from the root through edges whose effective
// annotation is not deny. Productions are rewritten per these rules:
//
//  * text/empty productions copy through;
//  * denied children are dropped from sequences; denied branches from
//    disjunctions (a disjunction left with one branch becomes a sequence,
//    one left with none becomes epsilon);
//  * a child whose annotation is CONDITIONAL becomes starred (zero matches
//    must be a legal view instance), as does every surviving branch of a
//    disjunction that lost a branch (the source instance may have chosen
//    the hidden one);
//  * a child type occurring several times in one production collapses into
//    a single starred occurrence (annotations are per (A, B) edge, so the
//    occurrences are indistinguishable to the policy).
//
// Each surviving view edge (A, B) is annotated sigma(A, B) = `B` for allow
// or `B[q]` for cond q -- the child step filtered by the policy qualifier --
// so view::Materialize(compiled.view, T) IS sigma_R(T), and the standard
// rewriting pipeline (rewrite::RewriteToMfa, rewrite::RewriteCache in view
// mode) serves the role without materializing anything. A role whose root
// is denied compiles to `root_hidden`: no view exists and every query must
// answer empty (the serving layer short-circuits it).

#ifndef SMOQE_POLICY_ROLE_COMPILER_H_
#define SMOQE_POLICY_ROLE_COMPILER_H_

#include <memory>

#include "common/status.h"
#include "policy/policy.h"
#include "view/view_def.h"

namespace smoqe::policy {

struct CompiledRole {
  RoleId role = kNoRole;
  /// True: the role sees nothing; `view` is null and every query over the
  /// role answers the empty node set.
  bool root_hidden = false;
  /// The role's security view sigma_R (validated), null iff root_hidden.
  std::shared_ptr<const view::ViewDef> view;
  /// Types of the source DTD visible to the role (diagnostics / bench).
  int visible_types = 0;
};

StatusOr<CompiledRole> CompileRole(const Policy& policy, RoleId role);

}  // namespace smoqe::policy

#endif  // SMOQE_POLICY_ROLE_COMPILER_H_
