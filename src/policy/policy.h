// Annotation-based access control over a source DTD (the paper's security-
// view scenario, Section 1, grown into a multi-tenant policy plane).
//
// A Policy attaches to ONE source DTD and declares a set of ROLES. A role
// carries security annotations ann_R(A, B) on the productions of the source
// DTD -- one of
//   allow        the B-children of an A-element are visible,
//   deny         the B-children (and their whole subtrees) are hidden,
//   cond [q]     a B-child is visible iff the qualifier q holds at it
//                (q is an Xreg predicate over the SOURCE document)
// -- plus an optional root annotation (deny hides the entire document from
// the role). This is the annotation model of Fan et al. and of Mahfoud &
// Imine ("Secure Querying of Recursive XML Views"): commercial systems
// specify security views the same way (see view/view_def.h).
//
// ROLE INHERITANCE. Roles form a DAG: a role may extend any number of
// already-declared parents (declaration order makes cycles impossible by
// construction, so diamonds are the interesting case). The EFFECTIVE
// annotation of (A, B) under role R is resolved deterministically:
//
//   1. a local annotation of R wins outright;
//   2. otherwise the parents' effective annotations are combined with
//      DENY-OVERRIDES: any deny makes the edge denied; otherwise every
//      distinct inherited condition must hold (their conjunction, in parent
//      declaration order -- multi-label resolution is associative and
//      commutative up to filter order, and the order is pinned so compiled
//      views are reproducible); otherwise an inherited allow allows;
//   3. an edge no ancestor role mentions is ALLOWED (the open default of the
//      annotation model: visibility flows downward from the root, and deny
//      is the explicit act). A closed policy is expressed by denying at the
//      top role.
//
// DENY IS FINAL: hiding (A, B) hides the whole subtree of every B-child --
// a descendant annotation cannot resurrect nodes below a denied edge. (The
// Mahfoud-Imine model can reconnect visible descendants over hidden
// regions; that relaxation is deliberately out of scope here because it
// weakens the upward-closure reasoning the conformance suite relies on.)
//
// Compilation of a role into a servable ViewDef lives in
// policy/role_compiler.h; the multi-tenant serving registry (per-role
// rewrite caches and transition-plane partitions) in policy/role_catalog.h.

#ifndef SMOQE_POLICY_POLICY_H_
#define SMOQE_POLICY_POLICY_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dtd/dtd.h"
#include "xpath/ast.h"

namespace smoqe::policy {

using RoleId = int32_t;
inline constexpr RoleId kNoRole = -1;

enum class AccessKind : uint8_t { kAllow, kDeny, kCond };

/// One security annotation. Conditions are Xreg qualifiers over the source
/// document, evaluated at the candidate child node (so `ann patient.visit
/// cond "not(treatment/medication)"` hides medicated visits).
struct Annotation {
  AccessKind kind = AccessKind::kAllow;
  xpath::FilterPtr cond;   // kCond only
  std::string cond_text;   // normalized spelling, for messages and dedup

  static Annotation Allow() { return {}; }
  static Annotation Deny() { return {AccessKind::kDeny, nullptr, {}}; }
  /// Parses `cond_text` as a qualifier (anything legal inside `[...]`).
  /// position() is rejected: it has no source-stable meaning through views.
  static StatusOr<Annotation> If(std::string_view cond_text);
};

class Policy {
 public:
  /// The policy owns its copy of the source DTD; every annotation refers to
  /// its productions.
  explicit Policy(dtd::Dtd source_dtd);

  /// Declares a role. Parents must already be declared (which keeps the
  /// role graph acyclic by construction); duplicates are an error.
  StatusOr<RoleId> AddRole(std::string_view name,
                           const std::vector<std::string>& parents = {});

  RoleId FindRole(std::string_view name) const;
  const std::string& role_name(RoleId r) const { return roles_[r].name; }
  int num_roles() const { return static_cast<int>(roles_.size()); }
  const std::vector<RoleId>& parents(RoleId r) const {
    return roles_[r].parents;
  }

  /// Sets ann_R(A, B). (A, B) must be an edge of the source DTD; a role may
  /// annotate each edge at most once (re-annotation is a policy-authoring
  /// bug, not a runtime state change).
  Status Annotate(RoleId r, std::string_view a, std::string_view b,
                  Annotation ann);

  /// Root visibility for the role (kCond is rejected: a conditional root is
  /// not expressible as a view). Default: visible, subject to inheritance.
  Status AnnotateRoot(RoleId r, Annotation ann);

  /// The deterministic effective annotation of the edge (see the resolution
  /// rules in the file comment). `r` must be a declared role.
  Annotation Effective(RoleId r, dtd::TypeId a, dtd::TypeId b) const;

  /// Effective root visibility under deny-overrides inheritance.
  bool RootVisible(RoleId r) const;

  /// Structural check: the source DTD validates and at least one role is
  /// declared. (Edge existence and condition well-formedness are enforced
  /// eagerly by Annotate/If.)
  Status Validate() const;

  const dtd::Dtd& source_dtd() const { return source_dtd_; }

 private:
  struct Role {
    std::string name;
    std::vector<RoleId> parents;
    std::map<std::pair<dtd::TypeId, dtd::TypeId>, Annotation> local;
    Annotation root;  // kAllow unless AnnotateRoot was called
    bool root_annotated = false;
  };

  const Annotation* Local(RoleId r, dtd::TypeId a, dtd::TypeId b) const;

  dtd::Dtd source_dtd_;
  std::vector<Role> roles_;
  std::map<std::string, RoleId, std::less<>> by_name_;
};

}  // namespace smoqe::policy

#endif  // SMOQE_POLICY_POLICY_H_
