// RoleCatalog: the multi-tenant serving registry of compiled roles.
//
// One catalog binds a Policy to one served document and hands out per-role
// serving PARTITIONS. A partition owns everything query execution derives
// from the role, so thousands of roles share one process without sharing any
// compiled state:
//
//  * the compiled security view (role_compiler.h), built once per role;
//  * a role-private rewrite::RewriteCache in view mode -- the (role, query)
//    keyed rewriting the tentpole asks for: the same query text submitted
//    under two roles compiles into two different source MFAs, and neither
//    role can ever be handed the other's automaton;
//  * a role-private hype::TransitionPlaneStore -- the interning universes of
//    a role's queries are pinned to its partition, so concurrent roles never
//    cross-contaminate configuration stores (and evicting a cold role frees
//    ALL of its compiled evaluation state at once).
//
// Acquire() compiles on first use and LRU-touches on every call. Beyond
// `role_capacity` resident entries, the least recently used entries nobody
// references are dropped (counted in stats().planes_evicted -- the gated
// counter). Entries are handed out as shared_ptrs: an evaluator holding one
// keeps a just-evicted role's planes alive until it lets go, the same
// discipline TransitionPlaneStore applies to individual planes.
//
// Thread-safety: the catalog itself is thread-safe. Entry::Compile locks the
// entry's private mutex (RewriteCache is not thread-safe); Entry::planes()
// is safe to share. exec::QueryService drives everything from its single
// dispatcher thread, but tests and benches hit catalogs from many threads.

#ifndef SMOQE_POLICY_ROLE_CATALOG_H_
#define SMOQE_POLICY_ROLE_CATALOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "hype/index.h"
#include "hype/transition_plane.h"
#include "policy/policy.h"
#include "policy/role_compiler.h"
#include "rewrite/rewrite_cache.h"
#include "xml/tree.h"

namespace smoqe::policy {

struct RoleCatalogOptions {
  /// Soft cap on resident role partitions; 0 = unbounded. In-use entries
  /// are never dropped.
  size_t role_capacity = 0;

  /// Per-role RewriteCache capacity (compiled (role, query) rewritings).
  size_t cache_capacity = 256;

  /// Per-role TransitionPlaneStore capacity (0 = unbounded).
  size_t plane_capacity = 0;
};

struct RoleCatalogStats {
  int64_t compiles = 0;        // cold Acquires (role + partition built)
  int64_t hits = 0;            // warm Acquires
  int64_t planes_evicted = 0;  // cold-role partitions dropped by the LRU cap
  int64_t resident = 0;        // partitions currently held by the catalog
};

class RoleCatalog {
 public:
  /// One role's serving partition. Create only via RoleCatalog::Acquire.
  class Entry {
   public:
    RoleId role() const { return compiled_.role; }
    bool root_hidden() const { return compiled_.root_hidden; }
    /// Null iff root_hidden().
    const view::ViewDef* view() const { return compiled_.view.get(); }
    const CompiledRole& compiled() const { return compiled_; }

    /// The (role, query)-keyed rewriting, through the role's private cache.
    /// Thread-safe (internally locked). Must not be called on a
    /// root-hidden entry.
    StatusOr<rewrite::CompiledQuery> Compile(std::string_view query_text);

    /// The role's private interning universe registry. Thread-safe.
    hype::TransitionPlaneStore& planes() { return planes_; }

    rewrite::RewriteCacheStats cache_stats() const;

   private:
    friend class RoleCatalog;
    Entry(CompiledRole compiled, const xml::Tree& tree,
          const hype::SubtreeLabelIndex* index,
          const RoleCatalogOptions& options);

    CompiledRole compiled_;
    mutable std::mutex cache_mu_;
    rewrite::RewriteCache cache_;
    hype::TransitionPlaneStore planes_;
    int64_t last_used_ = 0;
  };

  /// `policy`, `tree` and `index` (may be null) must outlive the catalog
  /// and every Entry it hands out.
  RoleCatalog(const Policy& policy, const xml::Tree& tree,
              const hype::SubtreeLabelIndex* index,
              RoleCatalogOptions options = {});

  /// The role's partition, compiled on first use. Compile failures are
  /// returned (and not cached: a broken role stays cold).
  StatusOr<std::shared_ptr<Entry>> Acquire(RoleId role);

  /// Name-based convenience for front ends that carry role names.
  StatusOr<std::shared_ptr<Entry>> Acquire(std::string_view role_name);

  const Policy& policy() const { return policy_; }
  RoleCatalogStats stats() const;

  /// Aggregate transition-plane footprint across resident partitions
  /// (planes, configurations, approximate bytes) -- the bench's
  /// memory-vs-role-count axis.
  hype::PlaneStoreStats plane_stats() const;

 private:
  const Policy& policy_;
  const xml::Tree& tree_;
  const hype::SubtreeLabelIndex* index_;
  RoleCatalogOptions options_;

  mutable std::mutex mu_;
  int64_t clock_ = 0;
  RoleCatalogStats stats_;
  std::unordered_map<RoleId, std::shared_ptr<Entry>> entries_;
};

}  // namespace smoqe::policy

#endif  // SMOQE_POLICY_ROLE_CATALOG_H_
