#include "policy/policy_parser.h"

#include <cctype>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dtd/dtd_parser.h"

namespace smoqe::policy {

namespace {

// Same hand-rolled tokenizer shape as view::ViewParser: names, punctuation,
// quoted strings, '//' comments.
class PolicyParser {
 public:
  explicit PolicyParser(std::string_view in) : in_(in) {}

  StatusOr<Policy> Parse() {
    SMOQE_RETURN_IF_ERROR(Expect("policy"));
    SMOQE_ASSIGN_OR_RETURN(std::string name, Name());
    (void)name;
    SMOQE_RETURN_IF_ERROR(Expect("{"));

    SMOQE_RETURN_IF_ERROR(Expect("source"));
    SMOQE_ASSIGN_OR_RETURN(std::string_view source_text, BracedBlock("dtd"));
    SMOQE_ASSIGN_OR_RETURN(dtd::Dtd source_dtd, dtd::ParseDtd(source_text));
    Policy policy(std::move(source_dtd));

    while (AtToken("role")) {
      SMOQE_RETURN_IF_ERROR(ParseRole(&policy));
    }
    SMOQE_RETURN_IF_ERROR(Expect("}"));
    Skip();
    if (pos_ != in_.size()) return Err("trailing input after policy spec");
    SMOQE_RETURN_IF_ERROR(policy.Validate());
    return policy;
  }

 private:
  Status ParseRole(Policy* policy) {
    SMOQE_RETURN_IF_ERROR(Expect("role"));
    SMOQE_ASSIGN_OR_RETURN(std::string role_name, Name());
    std::vector<std::string> parents;
    if (AtToken("extends")) {
      SMOQE_RETURN_IF_ERROR(Expect("extends"));
      for (;;) {
        SMOQE_ASSIGN_OR_RETURN(std::string parent, Name());
        parents.push_back(std::move(parent));
        if (!AtToken(",")) break;
        SMOQE_RETURN_IF_ERROR(Expect(","));
      }
    }
    auto role = policy->AddRole(role_name, parents);
    if (!role.ok()) return Err(role.status().message());
    SMOQE_RETURN_IF_ERROR(Expect("{"));
    while (!AtToken("}")) {
      SMOQE_ASSIGN_OR_RETURN(std::string verb, Name());
      if (verb == "root") {
        SMOQE_ASSIGN_OR_RETURN(std::string which, Name());
        Annotation ann;
        if (which == "deny") {
          ann = Annotation::Deny();
        } else if (which != "allow") {
          return Err("expected 'root allow ;' or 'root deny ;'");
        }
        Status set = policy->AnnotateRoot(role.value(), std::move(ann));
        if (!set.ok()) return Err(set.message());
        SMOQE_RETURN_IF_ERROR(Expect(";"));
        continue;
      }
      if (verb != "allow" && verb != "deny") {
        return Err("expected 'allow', 'deny' or 'root', got '" + verb + "'");
      }
      SMOQE_ASSIGN_OR_RETURN(std::string a, Name());
      SMOQE_RETURN_IF_ERROR(Expect("."));
      SMOQE_ASSIGN_OR_RETURN(std::string b, Name());
      Annotation ann =
          verb == "deny" ? Annotation::Deny() : Annotation::Allow();
      if (AtToken("when")) {
        if (verb == "deny") return Err("'deny ... when' is not a thing; "
                                       "negate the condition on an allow");
        SMOQE_RETURN_IF_ERROR(Expect("when"));
        SMOQE_ASSIGN_OR_RETURN(std::string cond, QuotedString());
        auto parsed = Annotation::If(cond);
        if (!parsed.ok()) return Err(parsed.status().message());
        ann = parsed.take();
      }
      Status set = policy->Annotate(role.value(), a, b, std::move(ann));
      if (!set.ok()) return Err(set.message());
      SMOQE_RETURN_IF_ERROR(Expect(";"));
    }
    return Expect("}");
  }

  void Skip() {
    for (;;) {
      while (pos_ < in_.size() &&
             std::isspace(static_cast<unsigned char>(in_[pos_]))) {
        if (in_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < in_.size() && in_[pos_] == '/' && in_[pos_ + 1] == '/') {
        while (pos_ < in_.size() && in_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  bool AtToken(std::string_view tok) {
    Skip();
    if (in_.substr(pos_, tok.size()) != tok) return false;
    // Keywords must not swallow the head of a longer name ("rooter").
    if (std::isalnum(static_cast<unsigned char>(tok.back()))) {
      size_t after = pos_ + tok.size();
      if (after < in_.size() &&
          (std::isalnum(static_cast<unsigned char>(in_[after])) ||
           in_[after] == '_' || in_[after] == '-')) {
        return false;
      }
    }
    return true;
  }

  Status Expect(std::string_view tok) {
    if (!AtToken(tok)) return Err("expected '" + std::string(tok) + "'");
    pos_ += tok.size();
    return Status::OK();
  }

  Status Err(std::string what) const {
    return Status::ParseError("policy: " + what + " (line " +
                              std::to_string(line_) + ")");
  }

  StatusOr<std::string> Name() {
    Skip();
    size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '_' || in_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected a name");
    return std::string(in_.substr(start, pos_ - start));
  }

  StatusOr<std::string_view> BracedBlock(std::string_view keyword) {
    if (!AtToken(keyword)) {
      return Err("expected '" + std::string(keyword) + "'");
    }
    size_t start = pos_;
    while (pos_ < in_.size() && in_[pos_] != '{') {
      if (in_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ >= in_.size()) return Err("expected '{'");
    int depth = 0;
    do {
      if (in_[pos_] == '{') ++depth;
      if (in_[pos_] == '}') --depth;
      if (in_[pos_] == '\n') ++line_;
      ++pos_;
    } while (pos_ < in_.size() && depth > 0);
    if (depth != 0) return Err("unbalanced braces");
    return in_.substr(start, pos_ - start);
  }

  StatusOr<std::string> QuotedString() {
    Skip();
    if (pos_ >= in_.size() || (in_[pos_] != '"' && in_[pos_] != '\'')) {
      return Err("expected a quoted condition");
    }
    char quote = in_[pos_++];
    size_t start = pos_;
    while (pos_ < in_.size() && in_[pos_] != quote) ++pos_;
    if (pos_ >= in_.size()) return Err("unterminated quoted condition");
    std::string s(in_.substr(start, pos_ - start));
    ++pos_;
    return s;
  }

  std::string_view in_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

StatusOr<Policy> ParsePolicy(std::string_view spec) {
  return PolicyParser(spec).Parse();
}

}  // namespace smoqe::policy
