#include "policy/role_catalog.h"

#include <string>
#include <utility>

namespace smoqe::policy {

RoleCatalog::Entry::Entry(CompiledRole compiled, const xml::Tree& tree,
                          const hype::SubtreeLabelIndex* index,
                          const RoleCatalogOptions& options)
    // Members initialize in declaration order, so compiled_ is live before
    // the caches bind to its view. A root-hidden entry has a null view; its
    // cache is never consulted (Compile's precondition).
    : compiled_(std::move(compiled)),
      cache_(compiled_.view.get(),
             rewrite::RewriteCacheOptions{options.cache_capacity}),
      planes_(tree, index,
              hype::TransitionPlaneStore::Options{options.plane_capacity}) {}

StatusOr<rewrite::CompiledQuery> RoleCatalog::Entry::Compile(
    std::string_view query_text) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.Get(query_text);
}

rewrite::RewriteCacheStats RoleCatalog::Entry::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.stats();
}

RoleCatalog::RoleCatalog(const Policy& policy, const xml::Tree& tree,
                         const hype::SubtreeLabelIndex* index,
                         RoleCatalogOptions options)
    : policy_(policy), tree_(tree), index_(index), options_(options) {}

StatusOr<std::shared_ptr<RoleCatalog::Entry>> RoleCatalog::Acquire(
    RoleId role) {
  // Cold compiles run under the catalog lock: role compilation is a
  // milliseconds-scale DTD pass, and serializing it keeps "compile each role
  // exactly once" trivially true under concurrent first touches.
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<Entry> entry;
  auto it = entries_.find(role);
  if (it != entries_.end()) {
    ++stats_.hits;
    entry = it->second;
  } else {
    SMOQE_ASSIGN_OR_RETURN(CompiledRole compiled, CompileRole(policy_, role));
    entry.reset(new Entry(std::move(compiled), tree_, index_, options_));
    ++stats_.compiles;
    entries_[role] = entry;
  }
  entry->last_used_ = ++clock_;

  // Soft-evict beyond capacity: coldest partitions nobody references (map
  // ref only; in-use entries are never dropped, so the cap bounds retained
  // memory, not correctness -- residency can exceed the cap while clients
  // pin entries, and converges back on any later Acquire). Same discipline
  // as TransitionPlaneStore.
  while (options_.role_capacity > 0 &&
         entries_.size() > options_.role_capacity) {
    auto victim = entries_.end();
    for (auto jt = entries_.begin(); jt != entries_.end(); ++jt) {
      if (jt->first == role || jt->second.use_count() != 1) continue;
      if (victim == entries_.end() ||
          jt->second->last_used_ < victim->second->last_used_) {
        victim = jt;
      }
    }
    if (victim == entries_.end()) break;  // everything is in use
    entries_.erase(victim);
    ++stats_.planes_evicted;
  }
  return entry;
}

StatusOr<std::shared_ptr<RoleCatalog::Entry>> RoleCatalog::Acquire(
    std::string_view role_name) {
  RoleId role = policy_.FindRole(role_name);
  if (role == kNoRole) {
    return Status::InvalidArgument("unknown role '" + std::string(role_name) +
                                   "'");
  }
  return Acquire(role);
}

RoleCatalogStats RoleCatalog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RoleCatalogStats out = stats_;
  out.resident = static_cast<int64_t>(entries_.size());
  return out;
}

hype::PlaneStoreStats RoleCatalog::plane_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  hype::PlaneStoreStats out;
  for (const auto& [role, entry] : entries_) {
    hype::PlaneStoreStats s = entry->planes_.stats();
    out.planes += s.planes;
    out.evictions += s.evictions;
    out.configs_interned += s.configs_interned;
    out.approx_bytes += s.approx_bytes;
  }
  return out;
}

}  // namespace smoqe::policy
