// Textual policy format (the policy-file counterpart of view_parser.h):
//
//   policy hospital_acl {
//     source dtd hospital { ... }              // dtd_parser format
//     role staff { }
//     role research extends staff {
//       deny  patient.sibling ;
//       allow patient.parent ;
//       allow visit.treatment when "medication/diagnosis" ;
//     }
//     role intern extends research, billing {  // diamonds are fine
//       root deny ;                            // sees nothing at all
//     }
//   }
//
// Rules inside a role block:
//   allow A.B ;               ann_R(A, B) = allow
//   deny  A.B ;               ann_R(A, B) = deny (hides the whole subtree)
//   allow A.B when "q" ;      ann_R(A, B) = cond q (Xreg qualifier at B)
//   root allow|deny ;         root visibility (deny => empty view)
// Unannotated edges resolve through role inheritance with deny-overrides;
// see policy.h for the exact rules. Parents must be declared before the
// roles that extend them, which keeps the role graph acyclic.

#ifndef SMOQE_POLICY_POLICY_PARSER_H_
#define SMOQE_POLICY_POLICY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "policy/policy.h"

namespace smoqe::policy {

StatusOr<Policy> ParsePolicy(std::string_view spec);

}  // namespace smoqe::policy

#endif  // SMOQE_POLICY_POLICY_PARSER_H_
