// Standing queries: answer sets kept current across document epochs by
// delta re-evaluation.
//
// A view server's query population is long-lived while the document churns
// (the security-view scenario: per-policy rewritten queries answered
// continuously as the source updates). Re-running every query per write is
// the naive O(|doc|) path; this evaluator instead re-enters only the
// subtree a TreeDelta actually touched.
//
// Per Advance(next, delta) it computes each op's REGION ROOT (the parent
// whose child list changed -- every edited node is strictly below it),
// folds multi-op deltas to their LCA T on the pre-edit tree (T provably
// survives the delta: a deleted subtree's region is its parent, which
// pulls the LCA above the deletion), then probes each query's
// configuration chain root -> T on the NEW tree with the warm shared
// hype::TransitionPlane -- labels strictly above T are unchanged, so the
// chain is the memoized one and a warm advance interns ZERO configurations
// (counter-gated in CI, like the PR-5 reuse gates):
//
//   dead on the chain      the query never reached the edited region;
//                          answers unchanged (skip);
//   non-simple above T     filter truth or cans connectivity crosses the
//                          subtree boundary (BatchHypeEvaluator::EvalSubtree
//                          contract); the query re-evaluates in full;
//   otherwise              SPLICE: old answers whose pre-edit position lay
//                          outside T's pre-edit extent are kept (edits
//                          never move a surviving node across T's
//                          boundary), and EvalSubtree(root, T) on the new
//                          epoch supplies the inside -- the two sets are
//                          disjoint by construction.
//
// Engines and planes are label-bound to the epoch the evaluator was built
// against (pinned via its PlaneEpoch); a delta that GROWS the label
// universe invalidates that binding, so the evaluator rebinds -- a fresh
// TransitionPlaneStore against the new epoch -- and re-evaluates
// everything. No-index mode only (an index is itself a frozen-tree
// artifact; rebuilding it per epoch would dominate the delta path).

#ifndef SMOQE_EXEC_STANDING_QUERY_H_
#define SMOQE_EXEC_STANDING_QUERY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "automata/mfa.h"
#include "common/cancellation.h"
#include "common/status.h"
#include "hype/transition_plane.h"
#include "xml/plane_epoch.h"
#include "xml/tree_delta.h"

namespace smoqe::exec {

struct StandingQueryOptions {
  /// Label-skipping jump mode for the full and subtree passes.
  bool enable_jump = true;
};

struct AdvanceStats {
  int64_t queries_skipped = 0;   // dead on the chain: answers carried over
  int64_t queries_spliced = 0;   // subtree re-eval + splice
  int64_t queries_full = 0;      // full re-evaluation
  int64_t configs_interned = 0;  // plane insertions this advance (0 warm)
  bool rebound = false;          // label growth forced a store rebind
};

class StandingQueryEvaluator {
 public:
  /// Evaluates every MFA once over `base` (the cold pass that warms the
  /// shared planes). The MFAs must outlive the evaluator.
  StandingQueryEvaluator(xml::PlaneEpoch base,
                         std::vector<const automata::Mfa*> mfas,
                         StandingQueryOptions options = {});

  /// Rolls the answer sets forward to `next`, which must be the epoch
  /// `delta` produced (versions are checked). `delta` is inspected, not
  /// re-applied.
  ///
  /// `control` makes the advance abortable: its gate is polled at the
  /// documented checkpoint interval during the re-evaluation passes, and an
  /// abort returns kCancelled / kDeadlineExceeded with the evaluator still
  /// at the PREVIOUS epoch -- answer updates are staged and committed only
  /// when every pass finishes, so an aborted Advance is simply retried.
  Status Advance(const xml::PlaneEpoch& next, const xml::TreeDelta& delta,
                 AdvanceStats* stats = nullptr,
                 const EvalControl& control = {});

  /// Sorted answer set of mfas()[q] on the current epoch -- bit-identical
  /// to a cold full evaluation there (the randomized suite and the
  /// bench_mutation gate enforce this).
  const std::vector<xml::NodeId>& answers(size_t q) const {
    return answers_[q];
  }
  size_t batch_size() const { return mfas_.size(); }
  uint64_t version() const { return epoch_.version; }
  const xml::PlaneEpoch& epoch() const { return epoch_; }

 private:
  /// Full re-evaluation of `queries` on `epoch`; adds interned counts to
  /// `interned`. Results go to `staged` when non-null (commit-on-success),
  /// directly into answers_ otherwise. Returns false iff `gate` tripped
  /// mid-pass (nothing is staged then).
  bool FullEval(const xml::PlaneEpoch& epoch,
                const std::vector<uint32_t>& queries, int64_t* interned,
                EvalGate* gate,
                std::vector<std::pair<uint32_t, std::vector<xml::NodeId>>>*
                    staged);

  /// Points the shared store at `epoch`'s tree (cold: planes rebuild).
  void Rebind(const xml::PlaneEpoch& epoch);

  std::vector<const automata::Mfa*> mfas_;
  StandingQueryOptions options_;
  xml::PlaneEpoch binding_;  // the epoch store_'s label binding came from
  std::unique_ptr<hype::TransitionPlaneStore> store_;
  xml::PlaneEpoch epoch_;  // answers_ are current here
  std::vector<std::vector<xml::NodeId>> answers_;
};

}  // namespace smoqe::exec

#endif  // SMOQE_EXEC_STANDING_QUERY_H_
