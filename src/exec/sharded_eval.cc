#include "exec/sharded_eval.h"

#include <algorithm>
#include <cassert>
#include <future>
#include <utility>

#include "common/fault_injection.h"

namespace smoqe::exec {

namespace {

// Sums the per-run traversal counters of `add` into `into` (configs_interned
// is cumulative per engine, so callers overwrite it instead).
void AccumulateRun(hype::EvalStats* into, const hype::EvalStats& add) {
  into->elements_visited += add.elements_visited;
  into->cans_vertices += add.cans_vertices;
  into->cans_edges += add.cans_edges;
  into->afa_state_requests += add.afa_state_requests;
}

}  // namespace

ShardedBatchEvaluator::ShardedBatchEvaluator(
    const xml::Tree& tree, std::vector<const automata::Mfa*> mfas,
    ShardedOptions options)
    : tree_(tree),
      mfas_(std::move(mfas)),
      options_(options),
      plane_owned_(options.plane == nullptr ? xml::DocPlane::Build(tree)
                                            : xml::DocPlane{}),
      plane_(options.plane == nullptr ? &plane_owned_ : options.plane),
      store_owned_(options.plane_store == nullptr
                       ? std::make_unique<hype::TransitionPlaneStore>(
                             tree, options.index)
                       : nullptr),
      store_(options.plane_store == nullptr ? store_owned_.get()
                                            : options.plane_store) {
  hype::HypeOptions engine_options;
  engine_options.index = options_.index;
  probes_.reserve(mfas_.size());
  for (const automata::Mfa* mfa : mfas_) {
    engine_options.transition_plane = store_->For(mfa);
    probes_.push_back(
        std::make_unique<hype::HypeEngine>(tree_, *mfa, engine_options));
  }
}

ShardedBatchEvaluator::~ShardedBatchEvaluator() = default;

// Decomposes the subtree of `context` into units: starting from the element
// children, the heaviest unit is recursively replaced by its children (the
// replaced node joining the spine) until there are enough units to feed the
// shard groups. Units keep document order throughout; groups are contiguous
// unit ranges balanced by subtree element counts. All sizing comes from the
// plane's extents -- weighing a subtree is O(1) and enumerating element
// children is a cursor walk over the preorder arrays, so building a plan no
// longer pays an O(N) weight pre-pass per context.
void ShardedBatchEvaluator::BuildPlan(xml::NodeId context) {
  plan_ = Plan{};
  plan_.context = context;

  const int pool_width =
      options_.pool != nullptr ? options_.pool->num_threads() : 1;
  const int target = options_.num_shards > 0 ? options_.num_shards
                                             : std::max(1, 2 * pool_width);

  const xml::DocPlane& plane = *plane_;
  auto weight = [&](int32_t pos) {
    return static_cast<int64_t>(plane.extent(pos)) + 1;
  };
  // Appends the element children of `pos` as units (child positions are
  // pos + 1, then each sibling one extent past the previous).
  auto push_child_units = [&](int32_t pos, int spine_idx,
                              std::vector<Unit>* out) {
    const int32_t end = plane.end_of(pos);
    for (int32_t c = pos + 1; c < end; c = plane.end_of(c)) {
      out->push_back({plane.node_at(c), c, weight(c), spine_idx});
    }
  };
  auto element_children = [&](int32_t pos) {
    int count = 0;
    const int32_t end = plane.end_of(pos);
    for (int32_t c = pos + 1; c < end; c = plane.end_of(c)) ++count;
    return count;
  };

  const hype::SubtreeLabelIndex* index = options_.index;
  plan_.spine.push_back(
      {context, -1,
       index != nullptr ? index->SetForContext(tree_, context) : 0});
  push_child_units(plane.pos_of(context), 0, &plan_.units);

  while (static_cast<int>(plan_.units.size()) < target) {
    int best = -1;
    for (size_t i = 0; i < plan_.units.size(); ++i) {
      if (plan_.units[i].weight <= 1) continue;
      if (best >= 0 && plan_.units[i].weight <= plan_.units[best].weight) {
        continue;
      }
      if (element_children(plan_.units[i].pos) >= 2) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;  // nothing splittable: accept fewer units
    Unit split = plan_.units[best];
    int spine_idx = static_cast<int>(plan_.spine.size());
    plan_.spine.push_back(
        {split.root, split.spine,
         index != nullptr
             ? index->EffectiveSet(split.root, plan_.spine[split.spine].eff)
             : 0});
    std::vector<Unit> kids;
    push_child_units(split.pos, spine_idx, &kids);
    plan_.units.erase(plan_.units.begin() + best);
    plan_.units.insert(plan_.units.begin() + best, kids.begin(), kids.end());
  }

  // Contiguous greedy partition into at most `target` balanced groups.
  const int num_groups =
      std::min<int>(target, static_cast<int>(plan_.units.size()));
  int64_t remaining = 0;
  for (const Unit& u : plan_.units) remaining += u.weight;
  size_t i = 0;
  for (int g = 0; g < num_groups; ++g) {
    const size_t begin = i;
    // Leave at least one unit for each group still to come.
    const size_t max_end =
        plan_.units.size() - static_cast<size_t>(num_groups - g - 1);
    const int64_t goal = remaining / (num_groups - g);
    int64_t acc = 0;
    while (i < max_end && (acc == 0 || acc + plan_.units[i].weight <= goal)) {
      acc += plan_.units[i].weight;
      ++i;
    }
    if (g == num_groups - 1) i = plan_.units.size();
    plan_.groups.push_back(
        {static_cast<int>(begin), static_cast<int>(i)});
    remaining -= acc;
  }
}

// Classifies every query for plan_.context: dead at the context (answered
// empty), shardable (every live spine configuration is simple), or fallback
// (some spine configuration carries AFA state or annotations, i.e. filter
// truth would have to cross a unit boundary). Also collects the answers AT
// spine nodes for shardable queries -- the one part of the document no unit
// walk covers.
void ShardedBatchEvaluator::ProbeQueries(xml::NodeId context) {
  const size_t n = mfas_.size();
  sharded_queries_.clear();
  fallback_queries_.clear();
  spine_answers_.assign(n, {});
  spine_visits_.assign(n, 0);
  stats_.num_dead_queries = 0;

  std::vector<int32_t> spine_cfg;
  for (size_t q = 0; q < n; ++q) {
    hype::HypeEngine& probe = *probes_[q];
    spine_cfg.assign(plan_.spine.size(), -1);
    spine_cfg[0] = probe.PrepareRoot(context);
    if (spine_cfg[0] < 0) {
      ++stats_.num_dead_queries;
      continue;
    }
    bool shardable = true;
    for (size_t j = 0; j < plan_.spine.size(); ++j) {
      if (j > 0) {
        // Spine parents precede their children (appended at split time), so
        // the parent configuration is already resolved.
        int32_t parent_cfg = spine_cfg[plan_.spine[j].parent];
        if (parent_cfg < 0) continue;  // pruned above: subtree untouched
        hype::HypeEngine::SuccRef succ = probe.PeekTransition(
            parent_cfg, tree_.label(plan_.spine[j].node), plan_.spine[j].eff);
        if (probe.ConfigDead(succ.config)) continue;
        spine_cfg[j] = succ.config;
      }
      ++spine_visits_[q];
      if (!probe.ConfigSimple(spine_cfg[j])) {
        shardable = false;
        break;
      }
      if (probe.ConfigHasFinal(spine_cfg[j])) {
        spine_answers_[q].push_back(plan_.spine[j].node);
      }
    }
    if (shardable) {
      sharded_queries_.push_back(static_cast<uint32_t>(q));
    } else {
      spine_answers_[q].clear();  // the whole-tree fallback emits these
      spine_visits_[q] = 0;
      fallback_queries_.push_back(static_cast<uint32_t>(q));
    }
  }
}

void ShardedBatchEvaluator::EnsureWorkers() {
  hype::BatchHypeOptions batch_options;
  batch_options.index = options_.index;
  batch_options.plane = plane_;  // shared read-only across all shard tasks
  batch_options.plane_store = store_;  // one interning universe per query
  batch_options.enable_jump = options_.enable_jump;

  const size_t num_groups =
      sharded_queries_.empty() ? 0 : plan_.groups.size();
  if (workers_.size() != num_groups) {
    workers_.clear();
    std::vector<const automata::Mfa*> sharded_mfas;
    sharded_mfas.reserve(sharded_queries_.size());
    for (uint32_t q : sharded_queries_) sharded_mfas.push_back(mfas_[q]);
    for (size_t g = 0; g < num_groups; ++g) {
      workers_.push_back(std::make_unique<hype::BatchHypeEvaluator>(
          tree_, sharded_mfas, batch_options));
    }
  }
  if (fallback_queries_.empty()) {
    fallback_.reset();
  } else if (fallback_ == nullptr) {
    std::vector<const automata::Mfa*> fallback_mfas;
    fallback_mfas.reserve(fallback_queries_.size());
    for (uint32_t q : fallback_queries_) fallback_mfas.push_back(mfas_[q]);
    fallback_ = std::make_unique<hype::BatchHypeEvaluator>(
        tree_, fallback_mfas, batch_options);
  }
}

std::vector<std::vector<xml::NodeId>> ShardedBatchEvaluator::EvalAll(
    xml::NodeId context) {
  return EvalAllImpl(context, nullptr);
}

std::vector<std::vector<xml::NodeId>> ShardedBatchEvaluator::EvalAll(
    xml::NodeId context, const EvalControl& control) {
  return EvalAllImpl(context, &control);
}

std::vector<std::vector<xml::NodeId>> ShardedBatchEvaluator::EvalAllImpl(
    xml::NodeId context, const EvalControl* control) {
  const size_t n = mfas_.size();
  std::vector<std::vector<xml::NodeId>> results(n);
  merged_stats_.assign(n, hype::EvalStats{});
  last_status_ = Status::OK();
  if (n == 0 || tree_.empty()) return results;

  // Local control for this run: same deadline/poll as the caller's, but
  // guaranteed to carry a token so a tripping shard can fan the failure out
  // to its siblings. The internal token is re-armed per run; a caller token
  // is left as-is (its cancellation must stay visible to the caller).
  EvalControl run_control;
  if (control != nullptr) run_control = *control;
  if (run_control.token == nullptr && run_control.enabled()) {
    internal_token_.Reset();
    run_control.token = &internal_token_;
  }
  const bool gated = run_control.enabled();
  {
    // Fail fast (and propagate nothing to workers) when the run is already
    // cancelled or past its deadline at admission.
    EvalGate entry_gate(&run_control);
    if (!entry_gate.Refresh()) {
      last_status_ = entry_gate.status();
      return results;
    }
  }

  if (plan_.context != context) {
    BuildPlan(context);
    ProbeQueries(context);
    workers_.clear();
    fallback_.reset();
  }
  EnsureWorkers();

  stats_.pass = hype::SharedPassStats{};
  stats_.num_units = static_cast<int>(plan_.units.size());
  stats_.num_groups = static_cast<int>(plan_.groups.size());
  stats_.num_sharded_queries = static_cast<int>(sharded_queries_.size());
  stats_.num_fallback_queries = static_cast<int>(fallback_queries_.size());

  // One task per shard group (plus one for the fallback pass); each task
  // touches only its own evaluator and output slot. The state shared across
  // threads is the immutable tree / MFAs / index / doc plane plus the
  // read-mostly per-query transition planes (concurrently readable by
  // design, see transition_plane.h).
  const size_t num_sharded = sharded_queries_.size();
  struct GroupOut {
    std::vector<std::vector<xml::NodeId>> per_query;
    std::vector<hype::EvalStats> stats;
    hype::SharedPassStats pass;
    Status status;
  };
  std::vector<GroupOut> outs(workers_.size());
  auto run_group = [&](size_t g) {
    hype::BatchHypeEvaluator& worker = *workers_[g];
    GroupOut& out = outs[g];
    out.per_query.assign(num_sharded, {});
    out.stats.assign(num_sharded, hype::EvalStats{});
    EvalGate gate(gated ? &run_control : nullptr);
    EvalGate* gp = gated ? &gate : nullptr;
    for (int u = plan_.groups[g].first; u < plan_.groups[g].second; ++u) {
      // Force a real check between units (a unit can be arbitrarily small,
      // so the countdown alone might span many of them), and give the chaos
      // suite its per-unit fault site. A trip here -- or inside the walk
      // below -- cancels the shared token, so sibling groups stop at their
      // next poll instead of finishing their own unit lists.
      if (gp != nullptr) {
        SMOQE_FAULT_HIT(FaultSite::kShardUnit,
                        [&](Status s) { gate.Trip(std::move(s)); });
        if (!gate.Refresh()) break;
      }
      std::vector<std::vector<xml::NodeId>> unit_answers =
          worker.EvalSubtree(context, plan_.units[u].root, gp);
      if (gp != nullptr && gate.tripped()) break;
      for (size_t s = 0; s < num_sharded; ++s) {
        out.per_query[s].insert(out.per_query[s].end(),
                                unit_answers[s].begin(),
                                unit_answers[s].end());
        AccumulateRun(&out.stats[s], worker.stats(s));
      }
      out.pass.nodes_walked += worker.pass_stats().nodes_walked;
      out.pass.subtrees_skipped += worker.pass_stats().subtrees_skipped;
      out.pass.positions_jumped += worker.pass_stats().positions_jumped;
    }
    out.status = gate.status();
    for (size_t s = 0; s < num_sharded; ++s) {
      out.stats[s].elements_total = worker.stats(s).elements_total;
      out.stats[s].configs_interned = worker.stats(s).configs_interned;
    }
  };
  std::vector<std::vector<xml::NodeId>> fallback_results;
  Status fallback_status;
  auto run_fallback = [&] {
    EvalGate gate(gated ? &run_control : nullptr);
    fallback_results = fallback_->EvalAll(context, gated ? &gate : nullptr);
    fallback_status = gate.status();
  };

  // Blocking on pool futures from one of the pool's own threads can
  // deadlock (the blocked worker may be the one the tasks need), so such a
  // caller runs the shards inline instead -- slower, never wrong. The
  // service always calls from its dispatcher thread and takes the pool
  // path.
  if (options_.pool != nullptr && !options_.pool->OnPoolThread()) {
    std::vector<std::future<void>> done;
    for (size_t g = 0; g < workers_.size(); ++g) {
      done.push_back(
          options_.pool->SubmitWithResult([&run_group, g] { run_group(g); }));
    }
    if (fallback_ != nullptr) {
      done.push_back(options_.pool->SubmitWithResult(run_fallback));
    }
    for (std::future<void>& d : done) d.get();
  } else {
    for (size_t g = 0; g < workers_.size(); ++g) run_group(g);
    if (fallback_ != nullptr) run_fallback();
  }

  // Any tripped task aborts the whole run (partial merges would break the
  // bit-identity contract). All tasks have joined, the evaluator's plan,
  // workers, and planes are intact, and every engine resets on its next
  // pass -- the run can simply be retried.
  if (gated) {
    last_status_ = fallback_status;
    for (const GroupOut& g : outs) {
      if (!g.status.ok()) {
        last_status_ = g.status;
        break;
      }
    }
    if (!last_status_.ok()) {
      merged_stats_.assign(n, hype::EvalStats{});
      return std::vector<std::vector<xml::NodeId>>(n);
    }
  }

  // Deterministic merge: spine answers, then every group's answers in unit
  // (document) order -- independent of which thread ran what, when.
  for (size_t s = 0; s < num_sharded; ++s) {
    const uint32_t q = sharded_queries_[s];
    std::vector<xml::NodeId>& out = results[q];
    out = spine_answers_[q];
    for (const GroupOut& g : outs) {
      out.insert(out.end(), g.per_query[s].begin(), g.per_query[s].end());
    }
    // Spine nodes and unit subtrees are pairwise disjoint, so the pieces
    // are duplicate-free; only the order needs repairing.
    if (!std::is_sorted(out.begin(), out.end())) {
      std::sort(out.begin(), out.end());
    }
    hype::EvalStats& merged = merged_stats_[q];
    merged.elements_total = tree_.CountElements();
    merged.elements_visited = spine_visits_[q];
    for (const GroupOut& g : outs) AccumulateRun(&merged, g.stats[s]);
    for (const GroupOut& g : outs) {
      merged.configs_interned += g.stats[s].configs_interned;
    }
  }
  for (size_t f = 0; f < fallback_queries_.size(); ++f) {
    const uint32_t q = fallback_queries_[f];
    results[q] = std::move(fallback_results[f]);
    merged_stats_[q] = fallback_->stats(f);
  }

  for (const GroupOut& g : outs) {
    stats_.pass.nodes_walked += g.pass.nodes_walked;
    stats_.pass.subtrees_skipped += g.pass.subtrees_skipped;
    stats_.pass.positions_jumped += g.pass.positions_jumped;
  }
  if (!sharded_queries_.empty()) {
    stats_.pass.nodes_walked += static_cast<int64_t>(plan_.spine.size());
  }
  if (fallback_ != nullptr) {
    stats_.pass.nodes_walked += fallback_->pass_stats().nodes_walked;
    stats_.pass.subtrees_skipped += fallback_->pass_stats().subtrees_skipped;
    stats_.pass.positions_jumped += fallback_->pass_stats().positions_jumped;
  }
  return results;
}

}  // namespace smoqe::exec
