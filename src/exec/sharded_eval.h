// Sharded multi-query evaluation: one logical shared pass, executed as
// independent subtree walks on thread-pool workers.
//
// HyPE's evaluation state is deliberately small and node-local (per-node
// configurations, a cans DAG confined to filter regions), so the document
// decomposes: partition the tree into subtree UNITS (top-level subtrees,
// recursively split while more parallelism is needed), give every shard its
// own HypeEngine per query -- cans graph, frames, and epoch scratch all
// shard-local -- and walk the units concurrently via
// BatchHypeEvaluator::EvalSubtree. The per-QUERY derived state (the
// hash-consed configuration store and memoized transition tables) is NOT
// per shard: all shard engines of one query read a single shared
// hype::TransitionPlane (concurrently-readable, see transition_plane.h), so
// each configuration is interned once per query instead of once per shard
// and repeated batches start warm.
// Per-shard answers are merged deterministically (units are kept in document
// order; the merge never depends on thread scheduling), so EvalAll returns
// bit-identical answers to a solo BatchHypeEvaluator / HypeEvaluator run.
//
// Soundness of the decomposition requires that no evaluation state cross a
// unit boundary: every configuration a query holds on the SPINE (the context
// node plus interior nodes whose children were split into units) must be
// "simple" -- no pending AFA truth values to fold upward, no cans region
// open. A probe pass checks exactly that per query; queries that fail (e.g.
// a filter predicated on the context itself) are routed to a whole-tree
// fallback BatchHypeEvaluator, which runs as one more pool task. Answers at
// spine nodes themselves are emitted centrally by the probe.
//
// The evaluator is reusable: repeated EvalAll calls on the same context keep
// every shard's transition tables warm (the QueryService builds one per
// admission batch; the throughput bench reuses one across iterations).

#ifndef SMOQE_EXEC_SHARDED_EVAL_H_
#define SMOQE_EXEC_SHARDED_EVAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "automata/mfa.h"
#include "common/cancellation.h"
#include "common/thread_pool.h"
#include "hype/batch_hype.h"
#include "hype/engine.h"
#include "hype/index.h"
#include "xml/doc_plane.h"
#include "xml/tree.h"

namespace smoqe::exec {

struct ShardedOptions {
  /// Index-based pruning for every query (shared, immutable, read
  /// concurrently by all shards). Must have been built for the same tree.
  const hype::SubtreeLabelIndex* index = nullptr;

  /// Columnar plane of the served tree (shared, immutable, read
  /// concurrently by all shards). Built and owned by the evaluator when
  /// null. The plan partitions on its extents (O(1) subtree sizing instead
  /// of an O(N) weight pre-pass) and every shard walks it.
  const xml::DocPlane* plane = nullptr;

  /// Pool the shard walks run on. Null runs every shard inline on the
  /// calling thread (useful as a zero-dependency fallback and in tests).
  /// An EvalAll called FROM a thread of this pool also runs inline --
  /// blocking that worker on shard futures could deadlock the pool, so the
  /// caller gets correct answers without parallelism instead.
  common::ThreadPool* pool = nullptr;

  /// Shared registry of per-query transition planes (see
  /// transition_plane.h), created for the same tree and index. The service
  /// passes its own so successive batches start warm; when null the
  /// evaluator creates one, so its probes, shard workers, and the fallback
  /// still intern each configuration once in total instead of once per
  /// shard.
  hype::TransitionPlaneStore* plane_store = nullptr;

  /// Shard-group target. 0 = twice the pool width (slack so the greedy
  /// contiguous partition and work stealing can smooth unit imbalance).
  int num_shards = 0;

  /// Label-skipping jump mode inside every shard walk (and the fallback);
  /// see hype/batch_hype.h. Off reproduces the pre-plane behavior.
  bool enable_jump = true;
};

struct ShardedStats {
  /// Shared-walk totals summed over all shard passes and the fallback.
  hype::SharedPassStats pass;
  int num_units = 0;    // subtree units in the current plan
  int num_groups = 0;   // shard groups (= concurrent walk tasks)
  int num_sharded_queries = 0;   // queries served by the sharded path
  int num_fallback_queries = 0;  // non-shardable, whole-tree pass
  int num_dead_queries = 0;      // dead at the context: answered empty
};

class ShardedBatchEvaluator {
 public:
  /// The MFAs must outlive the evaluator; so must `tree`, the index and the
  /// pool.
  ShardedBatchEvaluator(const xml::Tree& tree,
                        std::vector<const automata::Mfa*> mfas,
                        ShardedOptions options = {});
  ~ShardedBatchEvaluator();

  /// Evaluates every MFA at `context`; result i is the sorted answer set of
  /// mfas[i], bit-identical to BatchHypeEvaluator::EvalAll (and hence to
  /// solo HypeEvaluator::Eval).
  std::vector<std::vector<xml::NodeId>> EvalAll(xml::NodeId context);

  /// Abortable EvalAll. Every shard task polls `control` through its own
  /// EvalGate; the FIRST failure (caller cancellation, expired deadline, or
  /// an injected shard fault) cancels the shared token, so sibling shards
  /// abort within one checkpoint interval instead of finishing their units.
  /// On abort the call returns all-empty answers, `last_status()` holds the
  /// first failure, and the evaluator (workers, plan, planes) stays fully
  /// reusable -- the next EvalAll starts clean and warm.
  std::vector<std::vector<xml::NodeId>> EvalAll(xml::NodeId context,
                                                const EvalControl& control);

  /// kOk after a completed EvalAll; the first shard failure after an abort.
  const Status& last_status() const { return last_status_; }

  size_t batch_size() const { return mfas_.size(); }
  const ShardedStats& stats() const { return stats_; }

  /// Merged per-query run statistics of the last EvalAll: traversal-work
  /// counters (elements visited, cans sizes, AFA requests) are summed over
  /// the query's shard engines and spine visits and match the solo totals;
  /// configs_interned sums the shared-plane insertions attributed to the
  /// query's worker engines -- each configuration is interned once in the
  /// query's shared TransitionPlane, not once per shard, and a warm start
  /// interns nothing.
  const hype::EvalStats& merged_stats(size_t i) const {
    return merged_stats_[i];
  }

 private:
  // The decomposition for one context: spine nodes (context + split
  // interiors) and subtree units in document order, grouped contiguously.
  struct SpineNode {
    xml::NodeId node;
    int parent;   // index into spine; -1 for the context
    int32_t eff;  // effective label set (0 without an index)
  };
  struct Unit {
    xml::NodeId root;
    int32_t pos;     // plane position of `root`
    int64_t weight;  // element count of the subtree (plane extent + 1)
    int spine;       // index of the nearest spine ancestor
  };
  struct Plan {
    xml::NodeId context = xml::kNullNode;
    std::vector<SpineNode> spine;
    std::vector<Unit> units;
    std::vector<std::pair<int, int>> groups;  // [begin, end) into units
  };

  void BuildPlan(xml::NodeId context);
  void ProbeQueries(xml::NodeId context);
  void EnsureWorkers();
  std::vector<std::vector<xml::NodeId>> EvalAllImpl(xml::NodeId context,
                                                    const EvalControl* control);

  const xml::Tree& tree_;
  std::vector<const automata::Mfa*> mfas_;
  ShardedOptions options_;
  xml::DocPlane plane_owned_;  // empty when options.plane was provided
  const xml::DocPlane* plane_;
  // Null when options.plane_store was provided.
  std::unique_ptr<hype::TransitionPlaneStore> store_owned_;
  hype::TransitionPlaneStore* store_;

  // One probe engine per query: computes the spine configurations, decides
  // shardability, and emits spine-node answers. Probes run only on the
  // EvalAll caller thread.
  std::vector<std::unique_ptr<hype::HypeEngine>> probes_;

  Plan plan_;
  // Probe results for plan_.context (stable across calls, so workers and
  // the fallback evaluator are reused while the context stays the same).
  std::vector<uint32_t> sharded_queries_;
  std::vector<uint32_t> fallback_queries_;
  std::vector<std::vector<xml::NodeId>> spine_answers_;  // per query
  std::vector<int64_t> spine_visits_;  // live spine nodes, per query

  // One whole-tree evaluator per shard group over the shardable queries,
  // plus the fallback for the rest. Each is touched by exactly one task.
  std::vector<std::unique_ptr<hype::BatchHypeEvaluator>> workers_;
  std::unique_ptr<hype::BatchHypeEvaluator> fallback_;

  ShardedStats stats_;
  std::vector<hype::EvalStats> merged_stats_;
  Status last_status_;
  // First-failure fan-out when the caller's control carries no token of its
  // own: shard gates cancel this one so siblings still stop early.
  CancelToken internal_token_;
};

}  // namespace smoqe::exec

#endif  // SMOQE_EXEC_SHARDED_EVAL_H_
