// QueryService: the concurrent front-end of the serving spine.
//
// One service owns a loaded document, the query → MFA compilation cache
// (rewrite::RewriteCache -- view-rewriting or plain mode), the per-query
// transition-plane store (hype::TransitionPlaneStore -- compiled evaluation
// state shared across batches and shards), and the thread pool. Any number of client threads Submit query text and get a future;
// internally a dispatcher thread coalesces submissions into ADMISSION
// BATCHES -- a batch closes when it reaches `max_batch` queries or when its
// oldest entry has waited `max_delay` -- compiles the batch through the
// cache (duplicate texts in a batch are evaluated once and fanned out), and
// evaluates it as one sharded shared pass (exec::ShardedBatchEvaluator) over
// the pool. Answers are bit-identical to a solo HypeEvaluator run of each
// query, enforced by the randomized multi-client stress suite
// (tests/exec_service_test.cc).
//
// Multi-tenant mode (QueryServiceOptions::catalog): a Submit carrying a
// policy::RoleId compiles through the role's catalog partition and is
// evaluated only alongside same-role queries -- per-role rewrite caches and
// transition planes mean no role ever observes (or warms) another's compiled
// state. See policy/role_catalog.h.
//
// Threading model: clients touch only the pending queue (one mutex);
// the dispatcher alone touches the cache and the evaluators, so neither
// needs locking; shard walks fan out over the pool with shard-local engine
// state. Shutdown drains: every query submitted before the destructor runs
// is answered.

#ifndef SMOQE_EXEC_QUERY_SERVICE_H_
#define SMOQE_EXEC_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "hype/index.h"
#include "hype/transition_plane.h"
#include "policy/role_catalog.h"
#include "rewrite/rewrite_cache.h"
#include "storage/durable_epoch.h"
#include "view/view_def.h"
#include "xml/doc_plane.h"
#include "xml/plane_epoch.h"
#include "xml/tree.h"
#include "xml/tree_delta.h"

namespace smoqe::exec {

struct QueryServiceOptions {
  /// Non-null: queries are posed against the view and rewritten to source
  /// MFAs (Section 5); null: queries compile directly against the document.
  const view::ViewDef* view = nullptr;

  /// Optional subtree-label index over the served document (OptHyPE
  /// pruning, shared read-only across all shards).
  const hype::SubtreeLabelIndex* index = nullptr;

  /// Multi-tenant mode: a role catalog over the served document. A Submit
  /// carrying a role is compiled through the role's catalog partition --
  /// the (role, query)-keyed rewriting and the role-private transition
  /// planes -- and evaluated only alongside same-role queries; a Submit
  /// without a role uses the service-level `view`/cache exactly as before.
  /// The catalog (and its policy/tree/index) must outlive the service, and
  /// must be built over the same tree and index the service serves.
  policy::RoleCatalog* catalog = nullptr;

  /// Optional columnar plane of the served document; the service builds and
  /// owns one when null (one O(N) pass at construction, shared by every
  /// evaluator it ever creates).
  const xml::DocPlane* plane = nullptr;

  /// Label-skipping jump mode in the evaluators (hype/batch_hype.h).
  bool enable_jump = true;

  /// Evaluation pool width; 0 = hardware concurrency.
  int num_threads = 0;

  /// Shard-group target per pass; 0 = twice the pool width.
  int num_shards = 0;

  /// A batch dispatches as soon as it holds this many queries (0 is
  /// clamped to 1)...
  size_t max_batch = 16;

  /// ...or as soon as its oldest query has waited this long.
  std::chrono::microseconds max_delay{200};

  /// RewriteCache capacity (compiled MFAs kept hot), 0 = unbounded.
  size_t cache_capacity = 1024;

  /// Admission control: Submit sheds with kResourceExhausted once this many
  /// queries are already pending (overload protection for the wire-protocol
  /// front end -- queueing unboundedly just converts overload into latency).
  /// 0 = unbounded (the pre-admission-control behavior).
  size_t max_queue = 4096;

  /// Age-based shedding: a query that waited in the pending queue longer
  /// than this by the time its batch is collected resolves with
  /// kResourceExhausted instead of being evaluated (stale work under
  /// overload). 0 = disabled.
  std::chrono::microseconds max_queue_age{0};

  /// Node entries between cancellation/deadline checks inside the
  /// evaluation drivers (see common/cancellation.h); bounds how late an
  /// abort can land.
  int32_t checkpoint_interval = 1024;

  /// Non-empty: the service is DURABLE -- construct it with
  /// QueryService::Open, which recovers (or initializes) a
  /// storage::DurableEpochStore in this directory and serves the recovered
  /// epoch. Apply() then WAL-logs and fsyncs every delta before it
  /// publishes (storage/wal.h design note). A durable service owns its
  /// document, so `index`, `catalog`, and `plane` -- references into an
  /// externally owned tree -- are rejected by Open.
  std::string storage_dir = {};

  /// Durable mode only: WAL records between snapshot compactions
  /// (storage::StorageOptions::snapshot_every).
  int snapshot_every = 64;
};

/// Per-query submission controls. Default-constructed = the old behavior
/// (no deadline, not cancellable).
struct SubmitOptions {
  /// The query resolves with kDeadlineExceeded once this expires --
  /// including mid-evaluation (the batch aborts and the survivors retry
  /// under their own deadlines).
  Deadline deadline;

  /// Client-owned cancellation token; Cancel() resolves the query with
  /// kCancelled at the service's next checkpoint. Must outlive the future's
  /// resolution.
  CancelToken* cancel = nullptr;

  /// The submitting tenant's role (requires QueryServiceOptions::catalog;
  /// rejected at admission otherwise). The query is answered over the
  /// role's security view; a role whose root is denied answers the empty
  /// node set (not an error) for every well-formed query.
  policy::RoleId role = policy::kNoRole;

  /// Bound on re-evaluation rounds for THIS query inside the batch's
  /// min-deadline retry loop: each time a sibling's deadline/cancellation
  /// aborts the shared pass, the survivors retry (with exponential backoff)
  /// and burn one retry each. Past the bound the query resolves
  /// kUnavailable instead of re-evaluating -- a pathological batch mix can
  /// no longer pin a query in the dispatcher indefinitely. The default
  /// covers the worst case of a default-sized batch (every sibling aborts
  /// once); 0 = never retry.
  int max_retries = 16;
};

/// Counter snapshot returned by QueryService::stats(): submission/answer
/// totals, admission-batch shape (how batches closed: full vs aged out),
/// evaluator-cache reuse, and the RewriteCache hit/miss/eviction counters.
/// bench_parallel prints one per smoke configuration.
struct QueryServiceStats {
  int64_t queries_submitted = 0;
  int64_t queries_answered = 0;  // includes failures
  int64_t queries_failed = 0;    // parse/rewrite errors
  int64_t batches = 0;
  int64_t batches_full = 0;  // admission closed by reaching max_batch
  int64_t batches_aged = 0;  // admission closed by max_delay (or shutdown)
  int64_t max_batch_seen = 0;
  int64_t coalesced_duplicates = 0;  // same-MFA queries evaluated once
  // Role-partition groups served by a warm sharded evaluator (one count
  // per group per batch; every batch is a single group in single-tenant
  // service use, preserving the old per-batch meaning).
  int64_t evaluator_reuses = 0;
  int64_t queries_timed_out = 0;  // resolved kDeadlineExceeded
  int64_t queries_shed = 0;       // resolved kResourceExhausted (admission)
  int64_t queries_cancelled = 0;  // resolved kCancelled (client token)
  int64_t role_queries = 0;       // submissions carrying a role
  int64_t role_groups = 0;        // per-role evaluation groups dispatched
  int64_t role_denied_empty = 0;  // root-hidden roles answered empty
  // Re-evaluation rounds summed over queries: a query that survives an
  // aborted shared pass and re-runs counts one per extra round. Zero in
  // steady state (no deadline/cancel churn inside batches) -- bench_parallel
  // smoke gates on zero growth.
  int64_t queries_retried = 0;
  int64_t retries_exhausted = 0;  // resolved kUnavailable at max_retries
  int64_t writes_applied = 0;     // durable deltas published via Apply()
  rewrite::RewriteCacheStats cache;
};

class QueryService {
 public:
  using Answer = StatusOr<std::vector<xml::NodeId>>;

  /// `tree` (and the view/index, when set) must outlive the service.
  explicit QueryService(const xml::Tree& tree,
                        QueryServiceOptions options = {});

  /// Durable construction (options.storage_dir must be set): opens -- and,
  /// when the directory holds state, RECOVERS -- a DurableEpochStore there
  /// and serves its epoch. `initial` seeds a fresh directory as version 0
  /// and is ignored when state already exists. The service owns the
  /// recovered document, so options carrying references into an external
  /// tree (`index`, `catalog`, `plane`) are rejected.
  static StatusOr<std::unique_ptr<QueryService>> Open(
      xml::Tree initial, QueryServiceOptions options);

  /// Drains and answers everything already submitted, then stops
  /// (delegates to Shutdown()).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Stops admission, drains, and joins the dispatcher. Idempotent and
  /// thread-safe: concurrent callers all block until the drain completes.
  /// A Submit racing Shutdown is either admitted into the drain (its
  /// future resolves to the query's answer) or fails fast with a status --
  /// it never hangs on a future no dispatcher will fulfill. Must not be
  /// called from a Submit callback or the dispatcher itself.
  void Shutdown();

  /// Thread-safe; callable from any number of client threads. The future
  /// resolves to the sorted answer-node ids, or to the parse/rewrite error.
  /// After Shutdown (or the destructor) has begun, resolves to an error
  /// immediately. Every future resolves with exactly one terminal status:
  /// kOk, the compile error, kDeadlineExceeded, kCancelled,
  /// kResourceExhausted (admission shed), or kUnavailable (transient
  /// evaluation failure; safe to retry).
  std::future<Answer> Submit(std::string query_text,
                             SubmitOptions submit_options = {});

  /// Submit + wait, for single-shot callers.
  Answer Query(std::string query_text);

  /// Durable write (Open-constructed services only): WAL-append + fsync the
  /// delta, publish it as the next epoch, and switch serving to the new
  /// document before returning OK -- queries admitted after Apply returns
  /// evaluate against the new epoch. Thread-safe; writes are serialized
  /// through the dispatcher ahead of query batches. kFailedPrecondition for
  /// stale deltas (delta.from_version() != document_version()), for
  /// non-durable services, and after a WAL failure wedged the store.
  Status Apply(xml::TreeDelta delta);

  /// The served document version: 0 for an in-memory service, the durable
  /// epoch's version otherwise. Thread-safe.
  uint64_t document_version() const;

  /// The underlying durable store (null for in-memory services) -- stats,
  /// recovery report, storage dir. The store's Apply must NOT be called
  /// directly while the service is live; use QueryService::Apply.
  const storage::DurableEpochStore* storage() const { return store_.get(); }

  /// Snapshot of the counters (thread-safe).
  QueryServiceStats stats() const;

  int num_threads() const { return pool_.num_threads(); }

 private:
  struct Pending {
    std::string text;
    std::promise<Answer> promise;
    std::chrono::steady_clock::time_point enqueued;
    Deadline deadline;
    CancelToken* cancel = nullptr;
    policy::RoleId role = policy::kNoRole;
    int max_retries = 16;
  };

  // A durable write waiting for the dispatcher. The promise resolves with
  // the store's verdict once the delta is fsync'd and published (or
  // rejected).
  struct PendingWrite {
    xml::TreeDelta delta;
    std::promise<Status> promise;
  };

  // A recently used sharded evaluator, keyed by its (pointer-sorted) MFA
  // set. Steady-state traffic repeats query mixes; reusing the evaluator
  // keeps every shard's transition tables warm and skips the per-batch
  // probe/plan work. The entry owns the shared_ptrs so cached MFAs outlive
  // any RewriteCache eviction. Dispatcher-thread only.
  struct CachedEvaluator;

  // Shared delegating constructor: exactly one of `tree` (borrowed,
  // in-memory mode) or `store` (owned, durable mode) is non-null.
  QueryService(const xml::Tree* tree,
               std::unique_ptr<storage::DurableEpochStore> store,
               QueryServiceOptions options);

  void DispatcherLoop();
  void ProcessBatch(std::vector<Pending> batch);
  // Dispatcher-thread only: publishes one durable delta and, on success,
  // swaps serving to the new epoch (tree/plane pointers, fresh plane store,
  // evaluator cache cleared -- their universes referenced the old tree).
  Status ApplyWrite(const xml::TreeDelta& delta);
  // `store` selects the plane universe (the service's own, or a role
  // partition's); `pin` keeps a role partition alive while its evaluator
  // is cached (null for service-level evaluators).
  CachedEvaluator& EvaluatorFor(
      std::vector<std::shared_ptr<const automata::Mfa>> sorted_mfas,
      hype::TransitionPlaneStore* store,
      std::shared_ptr<policy::RoleCatalog::Entry> pin, bool* reused);

  QueryServiceOptions options_;
  // Durable mode: the store plus the epoch currently served; `epoch_` pins
  // the tree/plane that `tree_`/`plane_` point into across Apply swaps
  // (in-flight readers hold their own PlaneEpoch-free shard state only
  // within ProcessBatch, which the dispatcher serializes against writes).
  std::unique_ptr<storage::DurableEpochStore> store_;
  xml::PlaneEpoch epoch_;
  const xml::Tree* tree_;      // the served document (mode-independent)
  xml::DocPlane plane_owned_;  // in-memory mode, when no options.plane
  const xml::DocPlane* plane_;
  // One interning universe per compiled query for every evaluator this
  // service ever creates: shard engines share planes within a batch, and
  // successive batches (and evaluator-cache rebuilds) start warm. Planes
  // are seeded from the RewriteCache's CompiledMfa mirrors. Rebuilt on
  // every durable epoch swap (planes intern against one tree).
  std::unique_ptr<hype::TransitionPlaneStore> plane_store_;
  common::ThreadPool pool_;
  rewrite::RewriteCache cache_;  // dispatcher-thread only
  std::vector<std::unique_ptr<CachedEvaluator>> evaluators_;  // LRU, small
  int64_t evaluator_clock_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> pending_;
  std::deque<PendingWrite> writes_;  // drained ahead of query batches
  QueryServiceStats stats_;
  bool stop_ = false;
  std::once_flag join_once_;  // exactly one Shutdown caller joins

  std::thread dispatcher_;  // constructed last, joined first
};

}  // namespace smoqe::exec

#endif  // SMOQE_EXEC_QUERY_SERVICE_H_
