#include "exec/standing_query.h"

#include <algorithm>
#include <utility>

#include "hype/batch_hype.h"
#include "hype/engine.h"

namespace smoqe::exec {

namespace {

using xml::kNullNode;
using xml::NodeId;
using xml::Tree;

bool IsReachableElement(const Tree& tree, NodeId id) {
  if (id < 0 || id >= tree.size() || !tree.is_element(id)) return false;
  NodeId n = id;
  while (tree.parent(n) != kNullNode) n = tree.parent(n);
  return n == tree.root();
}

int32_t DepthOf(const Tree& tree, NodeId id) {
  int32_t d = 0;
  for (NodeId n = id; tree.parent(n) != kNullNode; n = tree.parent(n)) ++d;
  return d;
}

NodeId Lca(const Tree& tree, NodeId a, NodeId b) {
  int32_t da = DepthOf(tree, a);
  int32_t db = DepthOf(tree, b);
  while (da > db) {
    a = tree.parent(a);
    --da;
  }
  while (db > da) {
    b = tree.parent(b);
    --db;
  }
  while (a != b) {
    a = tree.parent(a);
    b = tree.parent(b);
  }
  return a;
}

/// The op's region root, resolved against the PRE-edit tree. Ops that
/// address a node the pre-edit tree cannot see (a target created earlier in
/// the same delta) anchor at the root -- the splice then degenerates to a
/// full pass, trading speed for unconditional soundness.
NodeId AnchorOnOldTree(const Tree& old_tree, const xml::DeltaOp& op) {
  if (IsReachableElement(old_tree, op.target)) {
    if (op.kind == xml::DeltaOpKind::kInsert) return op.target;
    const NodeId p = old_tree.parent(op.target);
    return p == kNullNode ? op.target : p;
  }
  return old_tree.root();
}

}  // namespace

StandingQueryEvaluator::StandingQueryEvaluator(
    xml::PlaneEpoch base, std::vector<const automata::Mfa*> mfas,
    StandingQueryOptions options)
    : mfas_(std::move(mfas)),
      options_(options),
      binding_(base),
      epoch_(std::move(base)) {
  store_ = std::make_unique<hype::TransitionPlaneStore>(*binding_.tree,
                                                        nullptr);
  answers_.assign(mfas_.size(), {});
  std::vector<uint32_t> all(mfas_.size());
  for (uint32_t q = 0; q < mfas_.size(); ++q) all[q] = q;
  int64_t interned = 0;
  FullEval(epoch_, all, &interned, nullptr, nullptr);
}

bool StandingQueryEvaluator::FullEval(
    const xml::PlaneEpoch& epoch, const std::vector<uint32_t>& queries,
    int64_t* interned, EvalGate* gate,
    std::vector<std::pair<uint32_t, std::vector<NodeId>>>* staged) {
  if (queries.empty()) return true;
  std::vector<const automata::Mfa*> subset;
  subset.reserve(queries.size());
  for (uint32_t q : queries) subset.push_back(mfas_[q]);
  hype::BatchHypeOptions batch_options;
  batch_options.plane = epoch.plane.get();
  batch_options.plane_store = store_.get();
  batch_options.enable_jump = options_.enable_jump;
  hype::BatchHypeEvaluator eval(*epoch.tree, std::move(subset),
                                batch_options);
  std::vector<std::vector<NodeId>> results =
      eval.EvalAll(epoch.tree->root(), gate);
  if (gate != nullptr && gate->tripped()) return false;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (staged != nullptr) {
      staged->emplace_back(queries[i], std::move(results[i]));
    } else {
      answers_[queries[i]] = std::move(results[i]);
    }
    *interned += eval.stats(i).configs_interned;
  }
  return true;
}

void StandingQueryEvaluator::Rebind(const xml::PlaneEpoch& epoch) {
  binding_ = epoch;
  store_ = std::make_unique<hype::TransitionPlaneStore>(*binding_.tree,
                                                        nullptr);
}

Status StandingQueryEvaluator::Advance(const xml::PlaneEpoch& next,
                                       const xml::TreeDelta& delta,
                                       AdvanceStats* stats,
                                       const EvalControl& control) {
  AdvanceStats local;
  AdvanceStats* out = stats ? stats : &local;
  *out = AdvanceStats{};
  EvalGate gate(&control);
  EvalGate* gp = control.enabled() ? &gate : nullptr;
  if (gp != nullptr && !gate.Refresh()) return gate.status();
  // Answer updates are STAGED and committed only once every pass below has
  // finished: an aborted Advance leaves answers_ and epoch_ untouched at
  // the previous epoch, so the caller can simply retry it.
  std::vector<std::pair<uint32_t, std::vector<NodeId>>> staged;
  if (delta.from_version() != epoch_.version ||
      next.version != delta.to_version()) {
    return Status::FailedPrecondition(
        "Advance: delta [" + std::to_string(delta.from_version()) + " -> " +
        std::to_string(delta.to_version()) + ") does not connect epoch " +
        std::to_string(epoch_.version) + " to epoch " +
        std::to_string(next.version));
  }
  if (delta.empty()) {
    epoch_ = next;
    return Status::OK();
  }

  // Label growth invalidates the planes' label binding: rebind and pay one
  // cold pass for everything.
  if (next.tree->labels().size() != binding_.tree->labels().size()) {
    // An abort below leaves the store rebound to `next` but answers_ and
    // epoch_ at the previous epoch -- sound (the bigger label universe
    // covers both trees, transitions are label-driven either way), and the
    // retried Advance then takes the warm normal path.
    Rebind(next);
    std::vector<uint32_t> all(mfas_.size());
    for (uint32_t q = 0; q < mfas_.size(); ++q) all[q] = q;
    if (!FullEval(next, all, &out->configs_interned, gp, &staged)) {
      return gate.status();
    }
    for (auto& [q, ans] : staged) answers_[q] = std::move(ans);
    out->queries_full = static_cast<int64_t>(mfas_.size());
    out->rebound = true;
    epoch_ = next;
    return Status::OK();
  }

  // Fold the per-op regions to one subtree root T on the pre-edit tree
  // (see the design note for why T survives the delta).
  const Tree& old_tree = *epoch_.tree;
  NodeId region = kNullNode;
  for (const xml::DeltaOp& op : delta.ops()) {
    const NodeId anchor = AnchorOnOldTree(old_tree, op);
    region = region == kNullNode ? anchor : Lca(old_tree, region, anchor);
  }
  const int32_t old_pos = epoch_.plane->pos_of(region);
  const int32_t old_end = epoch_.plane->end_of(old_pos);

  // The root -> T chain on the NEW tree (labels there are unchanged, so
  // the memoized transitions replay warm).
  const Tree& new_tree = *next.tree;
  std::vector<NodeId> chain;
  for (NodeId n = region; n != kNullNode; n = new_tree.parent(n)) {
    chain.push_back(n);
  }
  std::reverse(chain.begin(), chain.end());

  // Classify every query by probing its configuration chain.
  std::vector<uint32_t> spliced;
  std::vector<uint32_t> full;
  for (uint32_t q = 0; q < mfas_.size(); ++q) {
    hype::HypeOptions probe_options;
    probe_options.transition_plane = store_->For(mfas_[q]);
    probe_options.enable_jump = options_.enable_jump;
    hype::HypeEngine probe(new_tree, *mfas_[q], probe_options);
    int32_t config = probe.PrepareRoot(new_tree.root());
    bool dead = config < 0;
    bool simple_above = true;
    for (size_t j = 1; !dead && j < chain.size(); ++j) {
      if (!probe.ConfigSimple(config)) {
        simple_above = false;
        break;
      }
      const hype::SuccRef succ =
          probe.PeekTransition(config, new_tree.label(chain[j]), 0);
      config = succ.config;
      dead = probe.ConfigDead(config);
    }
    out->configs_interned += probe.stats().configs_interned;
    if (dead) {
      // The query never reaches the edited subtree; with identical labels
      // along the chain its old pass died at the same node, so the answer
      // set cannot have changed.
      ++out->queries_skipped;
    } else if (!simple_above) {
      full.push_back(q);
      ++out->queries_full;
    } else {
      spliced.push_back(q);
      ++out->queries_spliced;
    }
  }

  if (!FullEval(next, full, &out->configs_interned, gp, &staged)) {
    return gate.status();
  }

  if (!spliced.empty()) {
    std::vector<const automata::Mfa*> subset;
    subset.reserve(spliced.size());
    for (uint32_t q : spliced) subset.push_back(mfas_[q]);
    hype::BatchHypeOptions batch_options;
    batch_options.plane = next.plane.get();
    batch_options.plane_store = store_.get();
    batch_options.enable_jump = options_.enable_jump;
    hype::BatchHypeEvaluator eval(new_tree, std::move(subset), batch_options);
    std::vector<std::vector<NodeId>> inside =
        eval.EvalSubtree(new_tree.root(), region, gp);
    if (gp != nullptr && gate.tripped()) return gate.status();
    for (size_t i = 0; i < spliced.size(); ++i) {
      const uint32_t q = spliced[i];
      out->configs_interned += eval.stats(i).configs_interned;
      // Outside survivors: answers whose pre-edit position lay outside T's
      // pre-edit extent. Surviving nodes never cross the boundary and the
      // chain configurations are unchanged, so this set is exact.
      std::vector<NodeId> merged;
      merged.reserve(answers_[q].size() + inside[i].size());
      for (NodeId id : answers_[q]) {
        const int32_t p = epoch_.plane->pos_of(id);
        if (p < old_pos || p >= old_end) merged.push_back(id);
      }
      // Both halves are sorted and disjoint (inside[i] lies in T's new
      // subtree; kept ids lie outside it in both epochs).
      std::vector<NodeId> result(merged.size() + inside[i].size());
      std::merge(merged.begin(), merged.end(), inside[i].begin(),
                 inside[i].end(), result.begin());
      staged.emplace_back(q, std::move(result));
    }
  }

  for (auto& [q, ans] : staged) answers_[q] = std::move(ans);
  epoch_ = next;
  return Status::OK();
}

}  // namespace smoqe::exec
