#include "exec/query_service.h"

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/fault_injection.h"
#include "exec/sharded_eval.h"

namespace smoqe::exec {

// See the header: one reusable ShardedBatchEvaluator per recent MFA set
// within one plane universe (the service's, or one role partition's).
struct QueryService::CachedEvaluator {
  std::vector<std::shared_ptr<const automata::Mfa>> mfas;  // pointer-sorted
  ShardedBatchEvaluator eval;
  int64_t last_used = 0;
  hype::TransitionPlaneStore* store = nullptr;  // cache-key component
  // Keeps the role partition (its planes, referenced by `eval`) alive while
  // this evaluator is cached, even across catalog eviction of a cold role.
  std::shared_ptr<policy::RoleCatalog::Entry> pin;

  CachedEvaluator(const xml::Tree& tree,
                  std::vector<std::shared_ptr<const automata::Mfa>> sorted,
                  const ShardedOptions& options)
      : mfas(std::move(sorted)),
        eval(tree,
             [this] {
               std::vector<const automata::Mfa*> ptrs;
               ptrs.reserve(mfas.size());
               for (const auto& mfa : mfas) ptrs.push_back(mfa.get());
               return ptrs;
             }(),
             options) {}
};

namespace {

// Normalized before the dispatcher thread (a later member) can observe it.
QueryServiceOptions Validated(QueryServiceOptions options) {
  if (options.max_batch == 0) options.max_batch = 1;
  return options;
}

}  // namespace

QueryService::QueryService(const xml::Tree& tree, QueryServiceOptions options)
    : QueryService(&tree, nullptr, std::move(options)) {}

QueryService::QueryService(const xml::Tree* tree,
                           std::unique_ptr<storage::DurableEpochStore> store,
                           QueryServiceOptions options)
    : options_(Validated(std::move(options))),
      store_(std::move(store)),
      epoch_(store_ != nullptr ? store_->Snapshot() : xml::PlaneEpoch{}),
      tree_(store_ != nullptr ? epoch_.tree.get() : tree),
      plane_owned_(store_ == nullptr && options_.plane == nullptr
                       ? xml::DocPlane::Build(*tree_)
                       : xml::DocPlane{}),
      plane_(store_ != nullptr
                 ? epoch_.plane.get()
                 : (options_.plane == nullptr ? &plane_owned_
                                              : options_.plane)),
      plane_store_(std::make_unique<hype::TransitionPlaneStore>(
          *tree_, options_.index,
          hype::TransitionPlaneStore::Options{
              .capacity = options_.cache_capacity})),
      pool_(options_.num_threads),
      cache_(options_.view, {.capacity = options_.cache_capacity}),
      dispatcher_([this] { DispatcherLoop(); }) {}

StatusOr<std::unique_ptr<QueryService>> QueryService::Open(
    xml::Tree initial, QueryServiceOptions options) {
  if (options.storage_dir.empty()) {
    return Status::InvalidArgument(
        "QueryService::Open requires options.storage_dir");
  }
  if (options.index != nullptr || options.catalog != nullptr ||
      options.plane != nullptr) {
    // All three reference an externally owned tree; a durable service owns
    // (and on recovery REPLACES) its document, so they cannot match it.
    return Status::InvalidArgument(
        "a durable service owns its document: index/catalog/plane options "
        "are incompatible with storage_dir");
  }
  storage::StorageOptions storage_options;
  storage_options.snapshot_every = options.snapshot_every;
  auto store = storage::DurableEpochStore::Open(
      options.storage_dir, storage_options, std::move(initial));
  if (!store.ok()) return store.status();
  return std::unique_ptr<QueryService>(new QueryService(
      nullptr, std::move(store.value()), std::move(options)));
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    // Notify UNDER the lock: an unlocked notify could touch the condition
    // variable after a racing destructor finished tearing it down.
    cv_.notify_all();
  }
  // First caller joins; concurrent callers block here until the join
  // completes, so Shutdown() never returns with the dispatcher live.
  std::call_once(join_once_, [this] { dispatcher_.join(); });
}

std::future<QueryService::Answer> QueryService::Submit(
    std::string query_text, SubmitOptions submit_options) {
  Pending p;
  p.text = std::move(query_text);
  p.enqueued = std::chrono::steady_clock::now();
  p.deadline = submit_options.deadline;
  p.cancel = submit_options.cancel;
  p.role = submit_options.role;
  p.max_retries = submit_options.max_retries < 0 ? 0
                                                 : submit_options.max_retries;
  std::future<Answer> result = p.promise.get_future();
  // Injected admission failure (chaos suite): resolves the future before the
  // query ever reaches the queue, like a real overload shed would.
  Status admit = Status::OK();
  if (p.role != policy::kNoRole && options_.catalog == nullptr) {
    admit = Status::InvalidArgument(
        "role-scoped Submit on a service with no role catalog");
  }
  SMOQE_FAULT_HIT(FaultSite::kServiceAdmit,
                  [&](Status s) { admit = std::move(s); });
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      p.promise.set_value(
          Status::FailedPrecondition("query service is shutting down"));
      return result;
    }
    ++stats_.queries_submitted;
    // Queue-depth admission control: past `max_queue` pending queries the
    // service is not keeping up, and queueing further only converts the
    // overload into unbounded latency -- shed instead, and let the client
    // retry with backoff.
    if (admit.ok() && options_.max_queue > 0 &&
        pending_.size() >= options_.max_queue) {
      admit = Status::ResourceExhausted(
          "admission queue full (" + std::to_string(pending_.size()) +
          " pending)");
    }
    if (!admit.ok()) {
      ++stats_.queries_answered;
      if (admit.code() == StatusCode::kResourceExhausted) {
        ++stats_.queries_shed;
      } else {
        ++stats_.queries_failed;
      }
      p.promise.set_value(std::move(admit));
      return result;
    }
    if (p.role != policy::kNoRole) ++stats_.role_queries;
    pending_.push_back(std::move(p));
    // Under the lock for the same lifetime reason as in Shutdown: after we
    // release mu_, a racing Shutdown/destructor may run to completion, and
    // cv_ must not be touched past that point.
    cv_.notify_all();
  }
  return result;
}

QueryService::Answer QueryService::Query(std::string query_text) {
  return Submit(std::move(query_text)).get();
}

Status QueryService::Apply(xml::TreeDelta delta) {
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "Apply on an in-memory service (construct with QueryService::Open)");
  }
  PendingWrite w;
  w.delta = std::move(delta);
  std::future<Status> result = w.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return Status::FailedPrecondition("query service is shutting down");
    }
    writes_.push_back(std::move(w));
    cv_.notify_all();
  }
  return result.get();
}

uint64_t QueryService::document_version() const {
  return store_ != nullptr ? store_->version() : 0;
}

Status QueryService::ApplyWrite(const xml::TreeDelta& delta) {
  Status s = store_->Apply(delta);
  if (!s.ok()) return s;
  // Swap serving to the just-published epoch. Everything whose universe was
  // the old tree goes with it: the evaluator cache (shard engines hold tree
  // and plane references) and the transition-plane store (interned against
  // the old tree). The RewriteCache survives -- compiled MFAs are
  // label-level, document-independent.
  epoch_ = store_->Snapshot();
  tree_ = epoch_.tree.get();
  plane_ = epoch_.plane.get();
  evaluators_.clear();
  plane_store_ = std::make_unique<hype::TransitionPlaneStore>(
      *tree_, options_.index,
      hype::TransitionPlaneStore::Options{.capacity = options_.cache_capacity});
  return Status::OK();
}

QueryServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void QueryService::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock,
             [this] { return stop_ || !pending_.empty() || !writes_.empty(); });
    // Durable writes drain ahead of query batches: a delta admitted before
    // a query was admitted publishes before that query evaluates, so
    // Apply-then-Submit from one client always sees its own write.
    while (!writes_.empty()) {
      PendingWrite write = std::move(writes_.front());
      writes_.pop_front();
      lock.unlock();
      Status applied = ApplyWrite(write.delta);
      lock.lock();
      if (applied.ok()) ++stats_.writes_applied;
      write.promise.set_value(std::move(applied));
    }
    if (pending_.empty()) {
      if (stop_) return;
      continue;
    }
#ifdef SMOQE_FAULT_INJECTION
    if (FaultInjector::armed()) {
      // Injected dispatcher stall (the aged-batch regression + chaos
      // suite): sleep OUTSIDE the lock so clients keep submitting while
      // the dispatcher is wedged -- exactly the storm of wakeups-past-
      // deadline the admission loop's age re-check below must survive.
      lock.unlock();
      SMOQE_FAULT_DELAY_POINT(FaultSite::kServiceDispatch);
      lock.lock();
    }
#endif
    // Admission: hold the batch open until it is full or its oldest entry
    // has aged out (stop closes it immediately -- drain fast). The age is
    // re-checked on EVERY wakeup: cv_ wakeups caused by further Submits
    // (or spuriously) land back here, and without the explicit now() check
    // an already-aged batch would re-enter wait_until instead of closing
    // -- each extra pass is one avoidable syscall, and the batch's age
    // bound silently stops being the code's loop invariant.
    const auto deadline = pending_.front().enqueued + options_.max_delay;
    while (!stop_ && pending_.size() < options_.max_batch &&
           std::chrono::steady_clock::now() < deadline) {
      cv_.wait_until(lock, deadline);
    }
    std::vector<Pending> batch;
    const size_t take = std::min(pending_.size(), options_.max_batch);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    ++stats_.batches;
    if (batch.size() >= options_.max_batch) {
      ++stats_.batches_full;
    } else {
      ++stats_.batches_aged;
    }
    stats_.max_batch_seen =
        std::max(stats_.max_batch_seen, static_cast<int64_t>(batch.size()));
    lock.unlock();
    ProcessBatch(std::move(batch));
    lock.lock();
  }
}

QueryService::CachedEvaluator& QueryService::EvaluatorFor(
    std::vector<std::shared_ptr<const automata::Mfa>> sorted_mfas,
    hype::TransitionPlaneStore* store,
    std::shared_ptr<policy::RoleCatalog::Entry> pin, bool* reused) {
  ++evaluator_clock_;
  *reused = false;
  for (auto& entry : evaluators_) {
    if (entry->store != store) continue;
    if (entry->mfas.size() != sorted_mfas.size()) continue;
    bool equal = true;
    for (size_t k = 0; k < sorted_mfas.size(); ++k) {
      if (entry->mfas[k].get() != sorted_mfas[k].get()) {
        equal = false;
        break;
      }
    }
    if (equal) {
      entry->last_used = evaluator_clock_;
      *reused = true;
      return *entry;
    }
  }
  // Miss: evict the least recently used beyond a small working set. The
  // evaluators hold per-shard engines, so the cap bounds memory, not
  // correctness.
  constexpr size_t kMaxCachedEvaluators = 4;
  if (evaluators_.size() >= kMaxCachedEvaluators) {
    size_t lru = 0;
    for (size_t e = 1; e < evaluators_.size(); ++e) {
      if (evaluators_[e]->last_used < evaluators_[lru]->last_used) lru = e;
    }
    evaluators_.erase(evaluators_.begin() + lru);
  }
  ShardedOptions sharded_options;
  sharded_options.index = options_.index;
  sharded_options.plane = plane_;
  sharded_options.plane_store = store;
  sharded_options.pool = &pool_;
  sharded_options.num_shards = options_.num_shards;
  sharded_options.enable_jump = options_.enable_jump;
  evaluators_.push_back(std::make_unique<CachedEvaluator>(
      *tree_, std::move(sorted_mfas), sharded_options));
  evaluators_.back()->last_used = evaluator_clock_;
  evaluators_.back()->store = store;
  evaluators_.back()->pin = std::move(pin);
  return *evaluators_.back();
}

void QueryService::ProcessBatch(std::vector<Pending> batch) {
  const auto now = std::chrono::steady_clock::now();

  // Every batch member ends up in `resolutions` with exactly one terminal
  // Answer; promises are set only after the whole batch is accounted, so a
  // client whose future has resolved always finds itself in the counters.
  std::vector<std::pair<size_t, Answer>> resolutions;
  std::vector<char> live(batch.size(), 1);
  std::vector<int> retries(batch.size(), 0);
  int64_t timed_out = 0;
  int64_t shed = 0;
  int64_t cancelled = 0;
  int64_t failed = 0;
  int64_t retried = 0;
  int64_t retries_exhausted = 0;
  auto resolve = [&](size_t i, Answer answer) {
    live[i] = 0;
    resolutions.emplace_back(i, std::move(answer));
  };

  // Pre-evaluation admission: queries already cancelled, past their
  // deadline, or stale (aged out in the queue under overload) resolve
  // without costing an evaluation.
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].cancel != nullptr && batch[i].cancel->cancelled()) {
      ++cancelled;
      resolve(i, Status::Cancelled("cancelled before evaluation"));
    } else if (batch[i].deadline.expired()) {
      ++timed_out;
      resolve(i, Status::DeadlineExceeded("deadline expired in queue"));
    } else if (options_.max_queue_age.count() > 0 &&
               now - batch[i].enqueued > options_.max_queue_age) {
      ++shed;
      resolve(i, Status::ResourceExhausted("query aged out in queue"));
    }
  }

  // Compile each member through its serving partition's cache -- the role's
  // catalog entry for role-scoped queries ((role, query)-keyed rewriting),
  // the service-level cache otherwise -- and group batch entries by compiled
  // MFA so duplicate queries (same normalized text, same role) are evaluated
  // once. Two roles never share an MFA object, so coalescing cannot cross
  // roles. The shared_ptrs keep evicted entries alive through the pass.
  std::vector<std::shared_ptr<const automata::Mfa>> mfas;
  std::vector<std::vector<size_t>> waiters;  // per MFA: batch indices
  // Per MFA slot: the role partition it compiled through (null = service).
  std::vector<std::shared_ptr<policy::RoleCatalog::Entry>> slot_entry;
  std::unordered_map<const automata::Mfa*, size_t> slot_of;
  int64_t coalesced = 0;
  int64_t role_denied_empty = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!live[i]) continue;
    std::shared_ptr<policy::RoleCatalog::Entry> entry;
    if (batch[i].role != policy::kNoRole) {
      auto acquired = options_.catalog->Acquire(batch[i].role);
      if (!acquired.ok()) {
        ++failed;
        resolve(i, acquired.status());
        continue;
      }
      entry = std::move(acquired.value());
      if (entry->root_hidden()) {
        // The role sees nothing. Still a parse boundary: garbage stays an
        // error; a well-formed query answers the empty node set (the view
        // is empty, not broken).
        auto normalized = rewrite::RewriteCache::NormalizeQuery(batch[i].text);
        if (!normalized.ok()) {
          ++failed;
          resolve(i, normalized.status());
        } else {
          ++role_denied_empty;
          resolve(i, std::vector<xml::NodeId>{});
        }
        continue;
      }
    }
    auto compiled = entry != nullptr ? entry->Compile(batch[i].text)
                                     : cache_.Get(batch[i].text);
    if (!compiled.ok()) {
      ++failed;
      resolve(i, compiled.status());
      continue;
    }
    std::shared_ptr<const automata::Mfa> mfa = std::move(compiled.value().mfa);
    auto [it, inserted] = slot_of.emplace(mfa.get(), mfas.size());
    if (inserted) {
      // Register the query's transition plane now -- in the partition that
      // compiled it, seeded with the cache's warm CSR mirror and pinning
      // the MFA to the entry: every evaluator this batch (or a later one)
      // creates for the MFA shares it.
      hype::TransitionPlaneStore& store =
          entry != nullptr ? entry->planes() : *plane_store_;
      store.For(mfa.get(), std::move(compiled.value().compiled), mfa);
      mfas.push_back(std::move(mfa));
      waiters.emplace_back();
      slot_entry.push_back(std::move(entry));
    } else {
      ++coalesced;
    }
    waiters[it->second].push_back(i);
  }

  // Partition the MFA slots by serving partition: one evaluation group per
  // role (plus one for service-level queries). Isolation is the point --
  // each group evaluates against its own plane universe, so a shared pass
  // never mixes two roles' interned state. Single-tenant batches collapse
  // to exactly one group, the pre-policy behavior.
  struct Group {
    std::shared_ptr<policy::RoleCatalog::Entry> entry;  // null = service
    std::vector<size_t> slots;
  };
  std::vector<Group> groups;
  for (size_t s = 0; s < mfas.size(); ++s) {
    policy::RoleCatalog::Entry* key = slot_entry[s].get();
    Group* group = nullptr;
    for (Group& g : groups) {
      if (g.entry.get() == key) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back({slot_entry[s], {}});
      group = &groups.back();
    }
    group->slots.push_back(s);
  }

  // Min-deadline retry loop, per group: each round evaluates the group's
  // still-live members under the EARLIEST of their deadlines (plus a poll
  // over their cancel tokens). A kDeadlineExceeded abort resolves every
  // expired member -- at least the min-deadline holder, so each retry
  // strictly shrinks the set and the loop terminates -- and re-runs the
  // remainder, giving per-query deadline isolation inside one coalesced
  // batch. A kCancelled abort likewise resolves the cancelled members and
  // retries. Any other failure (injected shard fault -> kUnavailable) is
  // terminal for the whole round's group.
  int64_t evaluator_reuses_batch = 0;
  int64_t role_groups = 0;
  for (Group& group : groups) {
  hype::TransitionPlaneStore* store =
      group.entry != nullptr ? &group.entry->planes() : plane_store_.get();
  if (group.entry != nullptr) ++role_groups;
  bool first_round = true;
  int backoff_round = 0;
  for (;;) {
    if (backoff_round > 0) {
      // A retry round: every survivor of the aborted pass burns one unit of
      // its SubmitOptions::max_retries budget (kUnavailable past it), and
      // the group backs off exponentially before re-evaluating -- a stream
      // of expiring/cancelling siblings can delay a query but can no longer
      // pin it in the dispatcher unboundedly.
      for (size_t s : group.slots) {
        for (size_t i : waiters[s]) {
          if (!live[i]) continue;
          ++retries[i];
          if (retries[i] > batch[i].max_retries) {
            ++failed;
            ++retries_exhausted;
            resolve(i, Status::Unavailable(
                           "retry budget exhausted after " +
                           std::to_string(batch[i].max_retries) +
                           " re-evaluation rounds; safe to resubmit"));
          } else {
            ++retried;
          }
        }
      }
      const int shift = backoff_round < 6 ? backoff_round - 1 : 5;
      std::this_thread::sleep_for(std::chrono::microseconds(50 << shift));
    }
    std::vector<size_t> slots;  // group MFA slots with >= 1 live waiter
    for (size_t s : group.slots) {
      for (size_t i : waiters[s]) {
        if (live[i]) {
          slots.push_back(s);
          break;
        }
      }
    }
    if (slots.empty()) break;

    Deadline min_deadline;  // Never
    bool any_token = false;
    for (size_t s : slots) {
      for (size_t i : waiters[s]) {
        if (!live[i]) continue;
        if (batch[i].deadline.has_deadline() &&
            (!min_deadline.has_deadline() ||
             batch[i].deadline.when() < min_deadline.when())) {
          min_deadline = batch[i].deadline;
        }
        any_token |= batch[i].cancel != nullptr;
      }
    }
    EvalControl control;
    control.deadline = min_deadline;
    control.checkpoint_interval = options_.checkpoint_interval;
    if (any_token) {
      control.extra_poll = [&]() {
        for (size_t s : slots) {
          for (size_t i : waiters[s]) {
            if (live[i] && batch[i].cancel != nullptr &&
                batch[i].cancel->cancelled()) {
              return StatusCode::kCancelled;
            }
          }
        }
        return StatusCode::kOk;
      };
    }

    // Canonicalize the round's MFA set by pointer order so repeated query
    // mixes -- whatever order clients submitted them in -- reuse one warm
    // evaluator; `order[k]` maps the k-th sorted position back to `slots`.
    std::vector<size_t> order(slots.size());
    for (size_t k = 0; k < order.size(); ++k) order[k] = k;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return mfas[slots[a]].get() < mfas[slots[b]].get();
    });
    std::vector<std::shared_ptr<const automata::Mfa>> sorted;
    sorted.reserve(slots.size());
    for (size_t k : order) sorted.push_back(mfas[slots[k]]);

    bool reused = false;
    CachedEvaluator& cached =
        EvaluatorFor(std::move(sorted), store, group.entry, &reused);
    if (first_round) {
      evaluator_reuses_batch += reused ? 1 : 0;
      first_round = false;
    }
    std::vector<std::vector<xml::NodeId>> sorted_answers =
        control.enabled() ? cached.eval.EvalAll(tree_->root(), control)
                          : cached.eval.EvalAll(tree_->root());
    const Status& st = cached.eval.last_status();

    if (st.ok()) {
      std::vector<std::vector<xml::NodeId>> answers(slots.size());
      for (size_t k = 0; k < order.size(); ++k) {
        answers[order[k]] = std::move(sorted_answers[k]);
      }
      for (size_t k = 0; k < slots.size(); ++k) {
        std::vector<size_t> targets;
        for (size_t i : waiters[slots[k]]) {
          if (live[i]) targets.push_back(i);
        }
        for (size_t t = 0; t < targets.size(); ++t) {
          if (t + 1 == targets.size()) {
            resolve(targets[t], std::move(answers[k]));
          } else {
            resolve(targets[t], answers[k]);
          }
        }
      }
      break;
    }

    bool progressed = false;
    if (st.code() == StatusCode::kDeadlineExceeded) {
      for (size_t s : slots) {
        for (size_t i : waiters[s]) {
          if (live[i] && batch[i].deadline.expired()) {
            ++timed_out;
            resolve(i, Status::DeadlineExceeded("deadline expired during "
                                                "evaluation"));
            progressed = true;
          }
        }
      }
    } else if (st.code() == StatusCode::kCancelled) {
      for (size_t s : slots) {
        for (size_t i : waiters[s]) {
          if (live[i] && batch[i].cancel != nullptr &&
              batch[i].cancel->cancelled()) {
            ++cancelled;
            resolve(i, Status::Cancelled("cancelled during evaluation"));
            progressed = true;
          }
        }
      }
    }
    if (progressed) ++backoff_round;
    if (!progressed) {
      // Transient shard failure (or, defensively, an abort whose trigger we
      // can no longer attribute): terminal for every remaining member. The
      // status code is one of the documented terminal set; clients retry.
      for (size_t s : slots) {
        for (size_t i : waiters[s]) {
          if (!live[i]) continue;
          switch (st.code()) {
            case StatusCode::kResourceExhausted: ++shed; break;
            case StatusCode::kDeadlineExceeded: ++timed_out; break;
            case StatusCode::kCancelled: ++cancelled; break;
            default: ++failed; break;
          }
          resolve(i, Status(st.code(), st.message()));
        }
      }
      break;
    }
  }
  }  // per-group evaluation

  // Account the batch BEFORE resolving any promise: a client whose future
  // has resolved always finds itself in the counters.
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.queries_answered += static_cast<int64_t>(batch.size());
    stats_.queries_failed += failed;
    stats_.queries_timed_out += timed_out;
    stats_.queries_shed += shed;
    stats_.queries_cancelled += cancelled;
    stats_.coalesced_duplicates += coalesced;
    stats_.evaluator_reuses += evaluator_reuses_batch;
    stats_.role_groups += role_groups;
    stats_.role_denied_empty += role_denied_empty;
    stats_.queries_retried += retried;
    stats_.retries_exhausted += retries_exhausted;
    stats_.cache = cache_.stats();
  }

  for (auto& [i, answer] : resolutions) {
    batch[i].promise.set_value(std::move(answer));
  }
}

}  // namespace smoqe::exec
