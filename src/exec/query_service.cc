#include "exec/query_service.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "exec/sharded_eval.h"

namespace smoqe::exec {

// See the header: one reusable ShardedBatchEvaluator per recent MFA set.
struct QueryService::CachedEvaluator {
  std::vector<std::shared_ptr<const automata::Mfa>> mfas;  // pointer-sorted
  ShardedBatchEvaluator eval;
  int64_t last_used = 0;

  CachedEvaluator(const xml::Tree& tree,
                  std::vector<std::shared_ptr<const automata::Mfa>> sorted,
                  const ShardedOptions& options)
      : mfas(std::move(sorted)),
        eval(tree,
             [this] {
               std::vector<const automata::Mfa*> ptrs;
               ptrs.reserve(mfas.size());
               for (const auto& mfa : mfas) ptrs.push_back(mfa.get());
               return ptrs;
             }(),
             options) {}
};

namespace {

// Normalized before the dispatcher thread (a later member) can observe it.
QueryServiceOptions Validated(QueryServiceOptions options) {
  if (options.max_batch == 0) options.max_batch = 1;
  return options;
}

}  // namespace

QueryService::QueryService(const xml::Tree& tree, QueryServiceOptions options)
    : tree_(tree),
      options_(Validated(options)),
      plane_owned_(options_.plane == nullptr ? xml::DocPlane::Build(tree)
                                             : xml::DocPlane{}),
      plane_(options_.plane == nullptr ? &plane_owned_ : options_.plane),
      plane_store_(tree, options_.index,
                   {.capacity = options_.cache_capacity}),
      pool_(options_.num_threads),
      cache_(options_.view, {.capacity = options_.cache_capacity}),
      dispatcher_([this] { DispatcherLoop(); }) {}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    // Notify UNDER the lock: an unlocked notify could touch the condition
    // variable after a racing destructor finished tearing it down.
    cv_.notify_all();
  }
  // First caller joins; concurrent callers block here until the join
  // completes, so Shutdown() never returns with the dispatcher live.
  std::call_once(join_once_, [this] { dispatcher_.join(); });
}

std::future<QueryService::Answer> QueryService::Submit(
    std::string query_text) {
  Pending p;
  p.text = std::move(query_text);
  p.enqueued = std::chrono::steady_clock::now();
  std::future<Answer> result = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      p.promise.set_value(
          Status::FailedPrecondition("query service is shutting down"));
      return result;
    }
    ++stats_.queries_submitted;
    pending_.push_back(std::move(p));
    // Under the lock for the same lifetime reason as in Shutdown: after we
    // release mu_, a racing Shutdown/destructor may run to completion, and
    // cv_ must not be touched past that point.
    cv_.notify_all();
  }
  return result;
}

QueryService::Answer QueryService::Query(std::string query_text) {
  return Submit(std::move(query_text)).get();
}

QueryServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void QueryService::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stop_) return;
      continue;
    }
    // Admission: hold the batch open until it is full or its oldest entry
    // has aged out (stop closes it immediately -- drain fast).
    const auto deadline = pending_.front().enqueued + options_.max_delay;
    while (!stop_ && pending_.size() < options_.max_batch) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    std::vector<Pending> batch;
    const size_t take = std::min(pending_.size(), options_.max_batch);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    ++stats_.batches;
    if (batch.size() >= options_.max_batch) {
      ++stats_.batches_full;
    } else {
      ++stats_.batches_aged;
    }
    stats_.max_batch_seen =
        std::max(stats_.max_batch_seen, static_cast<int64_t>(batch.size()));
    lock.unlock();
    ProcessBatch(std::move(batch));
    lock.lock();
  }
}

QueryService::CachedEvaluator& QueryService::EvaluatorFor(
    std::vector<std::shared_ptr<const automata::Mfa>> sorted_mfas,
    bool* reused) {
  ++evaluator_clock_;
  *reused = false;
  for (auto& entry : evaluators_) {
    if (entry->mfas.size() != sorted_mfas.size()) continue;
    bool equal = true;
    for (size_t k = 0; k < sorted_mfas.size(); ++k) {
      if (entry->mfas[k].get() != sorted_mfas[k].get()) {
        equal = false;
        break;
      }
    }
    if (equal) {
      entry->last_used = evaluator_clock_;
      *reused = true;
      return *entry;
    }
  }
  // Miss: evict the least recently used beyond a small working set. The
  // evaluators hold per-shard engines, so the cap bounds memory, not
  // correctness.
  constexpr size_t kMaxCachedEvaluators = 4;
  if (evaluators_.size() >= kMaxCachedEvaluators) {
    size_t lru = 0;
    for (size_t e = 1; e < evaluators_.size(); ++e) {
      if (evaluators_[e]->last_used < evaluators_[lru]->last_used) lru = e;
    }
    evaluators_.erase(evaluators_.begin() + lru);
  }
  ShardedOptions sharded_options;
  sharded_options.index = options_.index;
  sharded_options.plane = plane_;
  sharded_options.plane_store = &plane_store_;
  sharded_options.pool = &pool_;
  sharded_options.num_shards = options_.num_shards;
  sharded_options.enable_jump = options_.enable_jump;
  evaluators_.push_back(std::make_unique<CachedEvaluator>(
      tree_, std::move(sorted_mfas), sharded_options));
  evaluators_.back()->last_used = evaluator_clock_;
  return *evaluators_.back();
}

void QueryService::ProcessBatch(std::vector<Pending> batch) {
  // Compile through the cache; group batch entries by compiled MFA so
  // duplicate queries (same normalized text) are evaluated once. The
  // shared_ptrs keep evicted entries alive through the pass.
  std::vector<std::shared_ptr<const automata::Mfa>> mfas;
  std::vector<std::vector<size_t>> waiters;  // per MFA: batch indices
  std::unordered_map<const automata::Mfa*, size_t> slot_of;
  std::vector<std::pair<size_t, Status>> failures;
  int64_t coalesced = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    auto compiled = cache_.Get(batch[i].text);
    if (!compiled.ok()) {
      failures.emplace_back(i, compiled.status());
      continue;
    }
    std::shared_ptr<const automata::Mfa> mfa = std::move(compiled.value().mfa);
    auto [it, inserted] = slot_of.emplace(mfa.get(), mfas.size());
    if (inserted) {
      // Register the query's transition plane now, seeded with the cache's
      // warm CSR mirror and pinning the MFA to the entry: every evaluator
      // this batch (or a later one) creates for the MFA shares it.
      plane_store_.For(mfa.get(), std::move(compiled.value().compiled), mfa);
      mfas.push_back(std::move(mfa));
      waiters.emplace_back();
    } else {
      ++coalesced;
    }
    waiters[it->second].push_back(i);
  }

  std::vector<std::vector<xml::NodeId>> answers;
  bool evaluator_reused = false;
  if (!mfas.empty()) {
    // Canonicalize the batch's MFA set by pointer order so repeated query
    // mixes -- whatever order clients submitted them in -- reuse one warm
    // evaluator; `order[k]` maps the k-th sorted position back to its slot.
    std::vector<size_t> order(mfas.size());
    for (size_t k = 0; k < order.size(); ++k) order[k] = k;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return mfas[a].get() < mfas[b].get();
    });
    std::vector<std::shared_ptr<const automata::Mfa>> sorted;
    sorted.reserve(mfas.size());
    for (size_t k : order) sorted.push_back(mfas[k]);

    CachedEvaluator& cached = EvaluatorFor(std::move(sorted),
                                           &evaluator_reused);
    std::vector<std::vector<xml::NodeId>> sorted_answers =
        cached.eval.EvalAll(tree_.root());
    answers.resize(mfas.size());
    for (size_t k = 0; k < order.size(); ++k) {
      answers[order[k]] = std::move(sorted_answers[k]);
    }
  }

  // Account the batch BEFORE resolving any promise: a client whose future
  // has resolved always finds itself in the counters.
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.queries_answered += static_cast<int64_t>(batch.size());
    stats_.queries_failed += static_cast<int64_t>(failures.size());
    stats_.coalesced_duplicates += coalesced;
    stats_.evaluator_reuses += evaluator_reused ? 1 : 0;
    stats_.cache = cache_.stats();
  }

  for (auto& [i, status] : failures) {
    batch[i].promise.set_value(std::move(status));
  }
  for (size_t slot = 0; slot < waiters.size(); ++slot) {
    for (size_t k = 0; k < waiters[slot].size(); ++k) {
      Pending& p = batch[waiters[slot][k]];
      if (k + 1 == waiters[slot].size()) {
        p.promise.set_value(std::move(answers[slot]));
      } else {
        p.promise.set_value(answers[slot]);
      }
    }
  }
}

}  // namespace smoqe::exec
