#include "storage/snapshot.h"

#include <algorithm>
#include <cstdio>

#include "common/codec.h"
#include "common/fault_injection.h"
#include "storage/crc32c.h"
#include "storage/fs.h"

namespace smoqe::xml {

// Friend of Tree (see tree.h): encodes/decodes the RAW arena so a recovered
// tree is id-for-id identical to the one the WAL's deltas address --
// tombstoned slots, end-of-arena insert ids and all.
struct TreeCodec {
  static void Encode(const Tree& tree, std::string* out) {
    common::PutU32(out, static_cast<uint32_t>(tree.labels_.size()));
    for (int i = 0; i < tree.labels_.size(); ++i) {
      common::PutBytes(out, tree.labels_.name(i));
    }
    common::PutU32(out, static_cast<uint32_t>(tree.nodes_.size()));
    for (const Node& n : tree.nodes_) {
      common::PutU8(out, static_cast<uint8_t>(n.kind));
      common::PutI32(out, n.label);
      common::PutI32(out, n.text);
      common::PutI32(out, n.parent);
      common::PutI32(out, n.first_child);
      common::PutI32(out, n.last_child);
      common::PutI32(out, n.next_sibling);
      common::PutI32(out, n.child_index);
    }
    common::PutU32(out, static_cast<uint32_t>(tree.texts_.size()));
    for (const std::string& t : tree.texts_) common::PutBytes(out, t);
    common::PutI32(out, tree.root_);
    common::PutI32(out, tree.num_elements_);
    common::PutI32(out, tree.num_detached_);
  }

  static Status Decode(common::Cursor* cur, Tree* tree) {
    uint32_t label_count = 0;
    if (!cur->ReadU32(&label_count) ||
        label_count > cur->remaining() / 4) {  // each label >= 4 bytes
      return Status::ParseError("snapshot: bad label table");
    }
    for (uint32_t i = 0; i < label_count; ++i) {
      std::string name;
      if (!cur->ReadBytes(&name)) {
        return Status::ParseError("snapshot: truncated label");
      }
      // Interning in order reproduces the original ids 0..n-1; a duplicate
      // name would silently alias two ids, so reject it.
      if (tree->labels_.Intern(name) != static_cast<LabelId>(i)) {
        return Status::ParseError("snapshot: duplicate label");
      }
    }
    uint32_t node_count = 0;
    if (!cur->ReadU32(&node_count) ||
        node_count > cur->remaining() / 29) {  // 29 bytes per node
      return Status::ParseError("snapshot: bad node count");
    }
    const auto nc = static_cast<int32_t>(node_count);
    tree->nodes_.reserve(node_count);
    for (uint32_t i = 0; i < node_count; ++i) {
      Node n;
      uint8_t kind = 0;
      if (!cur->ReadU8(&kind) || !cur->ReadI32(&n.label) ||
          !cur->ReadI32(&n.text) || !cur->ReadI32(&n.parent) ||
          !cur->ReadI32(&n.first_child) || !cur->ReadI32(&n.last_child) ||
          !cur->ReadI32(&n.next_sibling) || !cur->ReadI32(&n.child_index)) {
        return Status::ParseError("snapshot: truncated node");
      }
      if (kind > static_cast<uint8_t>(NodeKind::kText) ||
          n.label < kNoLabel ||
          n.label >= static_cast<LabelId>(label_count) || n.parent < -1 ||
          n.parent >= nc || n.first_child < -1 || n.first_child >= nc ||
          n.last_child < -1 || n.last_child >= nc || n.next_sibling < -1 ||
          n.next_sibling >= nc) {
        return Status::ParseError("snapshot: node fields out of range");
      }
      n.kind = static_cast<NodeKind>(kind);
      tree->nodes_.push_back(n);
    }
    uint32_t text_count = 0;
    if (!cur->ReadU32(&text_count) || text_count > cur->remaining() / 4) {
      return Status::ParseError("snapshot: bad text pool");
    }
    tree->texts_.reserve(text_count);
    for (uint32_t i = 0; i < text_count; ++i) {
      std::string t;
      if (!cur->ReadBytes(&t)) {
        return Status::ParseError("snapshot: truncated text");
      }
      tree->texts_.push_back(std::move(t));
    }
    // Text indices could not be validated until the pool size was known.
    for (const Node& n : tree->nodes_) {
      if (n.text < -1 || n.text >= static_cast<int32_t>(text_count)) {
        return Status::ParseError("snapshot: text index out of range");
      }
    }
    if (!cur->ReadI32(&tree->root_) || !cur->ReadI32(&tree->num_elements_) ||
        !cur->ReadI32(&tree->num_detached_)) {
      return Status::ParseError("snapshot: truncated tree trailer");
    }
    if (tree->root_ < -1 || tree->root_ >= nc || tree->num_elements_ < 0 ||
        tree->num_elements_ > nc || tree->num_detached_ < 0 ||
        tree->num_detached_ > nc) {
      return Status::ParseError("snapshot: tree trailer out of range");
    }
    return Status::OK();
  }
};

// Friend of DocPlane (see doc_plane.h): the columns verbatim, so recovery
// skips the O(N) Build when no WAL replay follows the snapshot.
struct PlaneCodec {
  static void PutVec32(std::string* out, const std::vector<int32_t>& v) {
    common::PutU32(out, static_cast<uint32_t>(v.size()));
    for (int32_t x : v) common::PutI32(out, x);
  }

  static bool ReadVec32(common::Cursor* cur, std::vector<int32_t>* v) {
    uint32_t count = 0;
    if (!cur->ReadU32(&count) || count > cur->remaining() / 4) return false;
    v->reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      int32_t x = 0;
      if (!cur->ReadI32(&x)) return false;
      v->push_back(x);
    }
    return true;
  }

  static void Encode(const DocPlane& plane, std::string* out) {
    PutVec32(out, plane.labels_);
    PutVec32(out, plane.parent_);
    PutVec32(out, plane.depth_);
    PutVec32(out, plane.extent_);
    common::PutU32(out, static_cast<uint32_t>(plane.text_bits_.size()));
    for (uint64_t w : plane.text_bits_) common::PutU64(out, w);
    PutVec32(out, plane.node_of_);
    PutVec32(out, plane.pos_of_);
    PutVec32(out, plane.posting_pool_);
    common::PutU32(out, static_cast<uint32_t>(plane.posting_ref_.size()));
    for (const auto& [offset, count] : plane.posting_ref_) {
      common::PutI32(out, offset);
      common::PutI32(out, count);
    }
  }

  static Status Decode(common::Cursor* cur, const Tree& tree,
                       DocPlane* plane) {
    uint32_t word_count = 0;
    if (!ReadVec32(cur, &plane->labels_) || !ReadVec32(cur, &plane->parent_) ||
        !ReadVec32(cur, &plane->depth_) || !ReadVec32(cur, &plane->extent_) ||
        !cur->ReadU32(&word_count) || word_count > cur->remaining() / 8) {
      return Status::ParseError("snapshot: truncated plane columns");
    }
    plane->text_bits_.reserve(word_count);
    for (uint32_t i = 0; i < word_count; ++i) {
      uint64_t w = 0;
      if (!cur->ReadU64(&w)) {
        return Status::ParseError("snapshot: truncated text bits");
      }
      plane->text_bits_.push_back(w);
    }
    uint32_t ref_count = 0;
    if (!ReadVec32(cur, &plane->node_of_) ||
        !ReadVec32(cur, &plane->pos_of_) ||
        !ReadVec32(cur, &plane->posting_pool_) ||
        !cur->ReadU32(&ref_count) || ref_count > cur->remaining() / 8) {
      return Status::ParseError("snapshot: truncated plane postings");
    }
    plane->posting_ref_.reserve(ref_count);
    for (uint32_t i = 0; i < ref_count; ++i) {
      int32_t offset = 0, count = 0;
      if (!cur->ReadI32(&offset) || !cur->ReadI32(&count)) {
        return Status::ParseError("snapshot: truncated posting ref");
      }
      plane->posting_ref_.emplace_back(offset, count);
    }

    // Cross-field sanity: every accessor the evaluators use must be in
    // bounds. The CRC already rules out disk corruption; these checks rule
    // out a maliciously crafted file doing more than failing to load.
    const auto n = static_cast<int32_t>(plane->labels_.size());
    if (n != tree.CountElements() ||
        plane->parent_.size() != static_cast<size_t>(n) ||
        plane->depth_.size() != static_cast<size_t>(n) ||
        plane->extent_.size() != static_cast<size_t>(n) ||
        plane->node_of_.size() != static_cast<size_t>(n) ||
        plane->text_bits_.size() !=
            static_cast<size_t>(n + 63) / 64 ||
        plane->pos_of_.size() != static_cast<size_t>(tree.size())) {
      return Status::ParseError("snapshot: plane/tree size mismatch");
    }
    for (int32_t pos = 0; pos < n; ++pos) {
      if (plane->parent_[pos] < -1 || plane->parent_[pos] >= n ||
          plane->extent_[pos] < 0 || plane->extent_[pos] >= n - pos ||
          plane->node_of_[pos] < 0 || plane->node_of_[pos] >= tree.size()) {
        return Status::ParseError("snapshot: plane column out of range");
      }
    }
    for (int32_t p : plane->pos_of_) {
      if (p < -1 || p >= n) {
        return Status::ParseError("snapshot: pos_of out of range");
      }
    }
    const auto pool = static_cast<int64_t>(plane->posting_pool_.size());
    for (const auto& [offset, count] : plane->posting_ref_) {
      if (offset < 0 || count < 0 ||
          static_cast<int64_t>(offset) + count > pool) {
        return Status::ParseError("snapshot: posting ref out of range");
      }
    }
    return Status::OK();
  }
};

}  // namespace smoqe::xml

namespace smoqe::storage {

namespace {

constexpr uint32_t kSnapshotMagic = 0x53514d53;  // 'SMQS'
constexpr uint32_t kManifestMagic = 0x4d514d53;  // 'SMQM'
constexpr uint64_t kMaxPayload = 1ull << 40;

// Frames a payload as [magic][len u64][payload][crc32c(payload)].
std::string Frame(uint32_t magic, std::string payload) {
  std::string out;
  out.reserve(payload.size() + 16);
  common::PutU32(&out, magic);
  common::PutU64(&out, payload.size());
  const uint32_t crc = Crc32c(payload);
  out += payload;
  common::PutU32(&out, crc);
  return out;
}

// Verifies framing + CRC; returns the payload view into `bytes`.
StatusOr<std::string_view> Unframe(uint32_t magic, std::string_view bytes) {
  common::Cursor cur(bytes);
  uint32_t got_magic = 0;
  uint64_t len = 0;
  if (!cur.ReadU32(&got_magic) || !cur.ReadU64(&len)) {
    return Status::ParseError("file too short for header");
  }
  if (got_magic != magic) return Status::ParseError("bad magic");
  if (len > kMaxPayload || len + 16 != bytes.size()) {
    return Status::ParseError("length mismatch");
  }
  std::string_view payload = bytes.substr(12, len);
  common::Cursor tail(bytes.substr(12 + len));
  uint32_t crc = 0;
  if (!tail.ReadU32(&crc) || crc != Crc32c(payload)) {
    return Status::ParseError("checksum mismatch");
  }
  return payload;
}

}  // namespace

std::string SnapshotFileName(uint64_t version) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snapshot-%020llu.snap",
                static_cast<unsigned long long>(version));
  return buf;
}

std::string EncodeSnapshotFile(const xml::Tree& tree,
                               const xml::DocPlane& plane, uint64_t version) {
  std::string payload;
  common::PutU64(&payload, version);
  xml::TreeCodec::Encode(tree, &payload);
  xml::PlaneCodec::Encode(plane, &payload);
  return Frame(kSnapshotMagic, std::move(payload));
}

StatusOr<DecodedSnapshot> DecodeSnapshotFile(std::string_view bytes) {
  auto payload = Unframe(kSnapshotMagic, bytes);
  if (!payload.ok()) return payload.status();
  common::Cursor cur(payload.value());
  DecodedSnapshot snap;
  if (!cur.ReadU64(&snap.version)) {
    return Status::ParseError("snapshot: truncated version");
  }
  SMOQE_RETURN_IF_ERROR(xml::TreeCodec::Decode(&cur, &snap.tree));
  SMOQE_RETURN_IF_ERROR(xml::PlaneCodec::Decode(&cur, snap.tree, &snap.plane));
  if (cur.remaining() != 0) {
    return Status::ParseError("snapshot: trailing bytes");
  }
  return snap;
}

Status WriteSnapshot(const std::string& dir, const xml::Tree& tree,
                     const xml::DocPlane& plane, uint64_t version) {
  const std::string file = SnapshotFileName(version);
  SMOQE_RETURN_IF_ERROR(
      WriteFileAtomic(dir, file, EncodeSnapshotFile(tree, plane, version),
                      FaultSite::kSnapshotWrite, FaultSite::kSnapshotRename));
  return WriteManifest(dir, {version, file});
}

StatusOr<DecodedSnapshot> ReadSnapshotFile(const std::string& path) {
  auto bytes = ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return DecodeSnapshotFile(bytes.value());
}

Status WriteManifest(const std::string& dir, const Manifest& manifest) {
  std::string payload;
  common::PutU64(&payload, manifest.version);
  common::PutBytes(&payload, manifest.snapshot_file);
  return WriteFileAtomic(dir, kManifestName,
                         Frame(kManifestMagic, std::move(payload)),
                         FaultSite::kSnapshotWrite,
                         FaultSite::kSnapshotRename);
}

StatusOr<Manifest> ReadManifest(const std::string& dir) {
  auto bytes = ReadFile(dir + "/" + kManifestName);
  if (!bytes.ok()) return bytes.status();
  auto payload = Unframe(kManifestMagic, bytes.value());
  if (!payload.ok()) return payload.status();
  common::Cursor cur(payload.value());
  Manifest m;
  if (!cur.ReadU64(&m.version) || !cur.ReadBytes(&m.snapshot_file) ||
      cur.remaining() != 0) {
    return Status::ParseError("manifest: malformed payload");
  }
  return m;
}

StatusOr<std::vector<std::pair<uint64_t, std::string>>> ListSnapshots(
    const std::string& dir) {
  auto names = ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<std::pair<uint64_t, std::string>> out;
  for (const std::string& name : names.value()) {
    uint64_t version = 0;
    // Exactly "snapshot-<20 digits>.snap".
    if (name.size() != 9 + 20 + 5 || name.compare(0, 9, "snapshot-") != 0 ||
        name.compare(29, 5, ".snap") != 0) {
      continue;
    }
    bool digits = true;
    for (size_t i = 9; i < 29; ++i) {
      if (name[i] < '0' || name[i] > '9') {
        digits = false;
        break;
      }
      version = version * 10 + static_cast<uint64_t>(name[i] - '0');
    }
    if (digits) out.emplace_back(version, name);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

}  // namespace smoqe::storage
