// Recovery and the durable epoch store: crash-safe publishing built from
// the snapshot store (snapshot.h) and the write-ahead delta log (wal.h).
//
// On-disk layout of a storage directory:
//
//   MANIFEST                      newest durable snapshot (atomic pointer)
//   snapshot-<version>.snap       checksummed (Tree, DocPlane, version)
//   wal.log                       delta records from the oldest kept
//                                 snapshot's version onward
//   *.tmp                         in-flight writes a crash abandoned
//
// Recover(dir) = load the newest snapshot whose checksum verifies (fall
// back to an older one when the newest is corrupt), replay the WAL's valid
// prefix from that version, truncate any torn/corrupt tail instead of
// failing, and return the recovered epoch. Fsck is the same walk without
// the repairs -- what `smoqe_fsck` runs. DurableEpochStore wraps an
// EpochPublisher with the WAL-before-publish ordering (wal.h design note)
// and periodic snapshot compaction.

#ifndef SMOQE_STORAGE_DURABLE_EPOCH_H_
#define SMOQE_STORAGE_DURABLE_EPOCH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/wal.h"
#include "xml/plane_epoch.h"
#include "xml/tree.h"

namespace smoqe::storage {

struct StorageOptions {
  /// WAL records between snapshot compactions; 0 = only the initial
  /// snapshot (the WAL then grows without bound).
  int snapshot_every = 64;

  /// Snapshots retained after compaction. At least 2, so recovery can fall
  /// back one snapshot when the newest is corrupt (the WAL is trimmed only
  /// up to the OLDEST kept snapshot's version, keeping the fallback
  /// replayable to the present).
  int snapshots_kept = 2;
};

/// What a recovery (or fsck) walk found.
struct RecoveryReport {
  uint64_t recovered_version = 0;
  uint64_t snapshot_version = 0;  // snapshot the replay started from
  int64_t records_replayed = 0;
  int64_t bytes_truncated = 0;    // torn/corrupt WAL tail dropped
  int64_t snapshots_skipped = 0;  // newer snapshots that failed to verify
};

/// Rebuilds the newest recoverable epoch from `dir`, repairing as it goes:
/// a torn/corrupt WAL tail is truncated (bytes_truncated), corrupt
/// snapshots are skipped (snapshots_skipped). Fails only when no snapshot
/// verifies at all.
StatusOr<xml::PlaneEpoch> Recover(const std::string& dir,
                                  RecoveryReport* report = nullptr);

/// Non-mutating verification of a storage directory (the smoqe_fsck
/// binary). `report` holds what a Recover would do; `notes` name each
/// problem found. ok means a Recover would succeed.
struct FsckReport {
  bool ok = false;
  RecoveryReport report;
  std::vector<std::string> notes;
};
FsckReport Fsck(const std::string& dir);

/// An EpochPublisher whose Apply is durable. Single writer (like the
/// publisher it wraps); Snapshot/version are safe from any thread.
///
/// Failure semantics: a WAL-level failure (append/fsync) wedges the store
/// -- the process-alive analogue of a crash; the disk is left exactly as
/// the failure left it and every later Apply refuses with
/// kFailedPrecondition until someone re-Opens from disk. A PUBLISH failure
/// with the WAL healthy instead rolls the just-appended record back
/// (TruncateLastRecord), keeping the no-record-for-unpublished-versions
/// invariant. A compaction failure is neither: the WAL still holds
/// everything, so the store keeps serving and retries at the next interval.
class DurableEpochStore {
 public:
  /// Opens `dir` (created if missing). A directory with durable state
  /// recovers it and `initial` is ignored; a fresh directory persists
  /// `initial` as snapshot version 0 before returning, so an acknowledged
  /// Open is always durable.
  static StatusOr<std::unique_ptr<DurableEpochStore>> Open(
      const std::string& dir, StorageOptions options, xml::Tree initial);

  xml::PlaneEpoch Snapshot() const { return publisher_->Snapshot(); }
  uint64_t version() const { return publisher_->version(); }
  const xml::EpochPublisher& publisher() const { return *publisher_; }

  /// Durable apply: WAL append + fsync, THEN publish (wal.h design note).
  /// kFailedPrecondition for stale deltas (nothing written) and for a
  /// wedged store; the injected-fault paths follow the class comment.
  Status Apply(const xml::TreeDelta& delta);

  struct Stats {
    int64_t wal_appends = 0;            // records durably appended
    int64_t wal_rollbacks = 0;          // publish failures rolled back
    int64_t snapshots_written = 0;      // compactions (incl. the initial)
    int64_t compactions_failed = 0;     // snapshot write failures survived
    int64_t wal_bytes_trimmed = 0;      // dropped by compaction trims
  };
  Stats stats() const;

  /// What Open's recovery found (all zeros for a fresh directory).
  const RecoveryReport& recovery_report() const { return recovery_; }

  const std::string& dir() const { return dir_; }

 private:
  DurableEpochStore(std::string dir, StorageOptions options)
      : dir_(std::move(dir)), options_(options) {}

  /// Writes a snapshot of the current epoch, prunes old snapshots, trims
  /// the WAL up to the oldest kept snapshot's version.
  Status Compact();

  std::string dir_;
  StorageOptions options_;
  std::unique_ptr<xml::EpochPublisher> publisher_;
  std::unique_ptr<WalWriter> wal_;
  RecoveryReport recovery_;
  int deltas_since_snapshot_ = 0;
  bool wedged_ = false;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace smoqe::storage

#endif  // SMOQE_STORAGE_DURABLE_EPOCH_H_
