#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/codec.h"
#include "common/fault_injection.h"
#include "storage/crc32c.h"
#include "storage/fs.h"

namespace smoqe::storage {

namespace {

constexpr size_t kRecordHeader = 16;  // from_version u64, len u32, crc u32
constexpr uint32_t kMaxRecordPayload = 1u << 30;

Status Errno(const std::string& what, const std::string& path) {
  return Status::Unavailable(what + " " + path + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const char* data, size_t n, const char* what) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string(what) + ": " +
                                 std::strerror(errno));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                     uint64_t offset) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", path);
  // Drop any bytes past the validated end (an untrimmed torn tail) so the
  // next Append lands on the valid prefix instead of after garbage.
  if (::ftruncate(fd, static_cast<off_t>(offset)) != 0 ||
      ::lseek(fd, static_cast<off_t>(offset), SEEK_SET) < 0) {
    Status s = Errno("truncate", path);
    ::close(fd);
    return s;
  }
  return std::unique_ptr<WalWriter>(new WalWriter(fd, offset));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(const xml::TreeDelta& delta) {
  std::string record;
  common::PutU64(&record, delta.from_version());
  std::string payload;
  delta.Serialize(&payload);
  if (payload.size() > kMaxRecordPayload) {
    return Status::InvalidArgument("delta payload exceeds record limit");
  }
  common::PutU32(&record, static_cast<uint32_t>(payload.size()));
  // CRC over header-sans-crc + payload (see the design note): record[0..12)
  // is from_version + payload_len at this point.
  uint32_t crc = Crc32cExtend(0, record.data(), record.size());
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  common::PutU32(&record, crc);
  record += payload;

  has_last_record_ = false;
  size_t keep = 0;
  Status injected = FaultHitWrite(FaultSite::kWalAppend, record.size(), &keep);
  if (!injected.ok()) {
    // Simulated crash mid-append: exactly `keep` bytes of the record reach
    // the file (0 for a plain injected error). The writer is now positioned
    // inside a torn record -- the caller must wedge and recover from disk.
    (void)WriteAll(fd_, record.data(), keep, "wal write");
    offset_ += keep;
    return injected;
  }
  SMOQE_RETURN_IF_ERROR(WriteAll(fd_, record.data(), record.size(),
                                 "wal write"));
  last_record_offset_ = offset_;
  has_last_record_ = true;
  offset_ += record.size();
  return Status::OK();
}

Status WalWriter::Sync() {
  SMOQE_FAULT_RETURN_IF_INJECTED(FaultSite::kWalFsync);
  if (::fsync(fd_) != 0) {
    return Status::Unavailable(std::string("wal fsync: ") +
                               std::strerror(errno));
  }
  return Status::OK();
}

Status WalWriter::TruncateLastRecord() {
  if (!has_last_record_) {
    return Status::FailedPrecondition("no record to roll back");
  }
  if (::ftruncate(fd_, static_cast<off_t>(last_record_offset_)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(last_record_offset_), SEEK_SET) < 0 ||
      ::fsync(fd_) != 0) {
    return Status::Unavailable(std::string("wal rollback: ") +
                               std::strerror(errno));
  }
  offset_ = last_record_offset_;
  has_last_record_ = false;
  return Status::OK();
}

StatusOr<WalScan> ScanWal(const std::string& path) {
  WalScan scan;
  auto bytes_or = ReadFile(path);
  if (!bytes_or.ok()) {
    if (bytes_or.status().code() == StatusCode::kNotFound) {
      return scan;  // never-written log: empty and valid
    }
    return bytes_or.status();
  }
  const std::string& bytes = bytes_or.value();
  scan.file_size = bytes.size();
  size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordHeader) {
      scan.tail_reason = "torn record header";
      break;
    }
    common::Cursor cur(bytes.data() + pos, kRecordHeader);
    uint64_t from_version = 0;
    uint32_t payload_len = 0, crc = 0;
    cur.ReadU64(&from_version);
    cur.ReadU32(&payload_len);
    cur.ReadU32(&crc);
    if (payload_len > kMaxRecordPayload ||
        bytes.size() - pos - kRecordHeader < payload_len) {
      scan.tail_reason = "record length exceeds file";
      break;
    }
    uint32_t want = Crc32cExtend(0, bytes.data() + pos, 12);
    want = Crc32cExtend(want, bytes.data() + pos + kRecordHeader, payload_len);
    if (want != crc) {
      scan.tail_reason = "record checksum mismatch";
      break;
    }
    WalRecord record;
    record.from_version = from_version;
    record.offset = pos;
    record.payload.assign(bytes, pos + kRecordHeader, payload_len);
    scan.records.push_back(std::move(record));
    pos += kRecordHeader + payload_len;
  }
  scan.valid_end = pos;
  return scan;
}

Status TruncateWal(const std::string& path, uint64_t offset) {
  int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  Status s = Status::OK();
  if (::ftruncate(fd, static_cast<off_t>(offset)) != 0 ||
      ::fsync(fd) != 0) {
    s = Errno("truncate", path);
  }
  ::close(fd);
  return s;
}

}  // namespace smoqe::storage
