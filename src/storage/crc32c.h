// CRC32C (Castagnoli) checksums for the on-disk formats: snapshot files,
// WAL records, and the manifest all carry one. Software table
// implementation (slice-by-8), no hardware intrinsics -- portability over
// the last 2x, and the storage layer checksums kilobytes per write, not
// gigabytes.

#ifndef SMOQE_STORAGE_CRC32C_H_
#define SMOQE_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace smoqe::storage {

/// Extends a running CRC32C with `n` more bytes. Start from 0.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

inline uint32_t Crc32c(std::string_view s) {
  return Crc32cExtend(0, s.data(), s.size());
}

}  // namespace smoqe::storage

#endif  // SMOQE_STORAGE_CRC32C_H_
