#include "storage/durable_epoch.h"

#include <memory>
#include <utility>

#include "storage/fs.h"
#include "storage/snapshot.h"

namespace smoqe::storage {

namespace {

// The shared recovery walk. `repair` truncates the torn WAL tail and sweeps
// abandoned temp files (Recover); fsck runs it with repair=false and
// collects `notes` instead.
StatusOr<DecodedSnapshot> RecoverImpl(const std::string& dir, bool repair,
                                      RecoveryReport* report,
                                      std::vector<std::string>* notes) {
  auto note = [notes](std::string n) {
    if (notes != nullptr) notes->push_back(std::move(n));
  };

  auto manifest = ReadManifest(dir);
  if (!manifest.ok()) {
    note("manifest: " + manifest.status().message());
  }

  auto snapshots = ListSnapshots(dir);
  if (!snapshots.ok()) return snapshots.status();
  if (manifest.ok() && !snapshots.value().empty() &&
      manifest.value().version != snapshots.value().front().first) {
    // Normal crash shape: the snapshot renamed but the manifest did not
    // follow (or an older manifest survived a corrupt newest snapshot).
    note("manifest points at version " +
         std::to_string(manifest.value().version) + ", newest snapshot is " +
         std::to_string(snapshots.value().front().first));
  }

  // Newest verifying snapshot wins; corrupt ones are skipped, not fatal.
  DecodedSnapshot snap;
  bool loaded = false;
  for (const auto& [version, file] : snapshots.value()) {
    auto decoded = ReadSnapshotFile(dir + "/" + file);
    if (decoded.ok()) {
      snap = std::move(decoded.value());
      loaded = true;
      break;
    }
    ++report->snapshots_skipped;
    note(file + ": " + decoded.status().message());
  }
  if (!loaded) {
    return Status::NotFound("no verifiable snapshot in " + dir);
  }
  report->snapshot_version = snap.version;

  const std::string wal_path = dir + "/" + kWalName;
  auto scan_or = ScanWal(wal_path);
  if (!scan_or.ok()) return scan_or.status();
  const WalScan& scan = scan_or.value();

  // Replay the valid prefix from the snapshot's version. The first record
  // that does not chain (version gap), decode, or apply marks the cut
  // point: everything from there is treated as the torn tail.
  uint64_t version = snap.version;
  uint64_t cut = scan.valid_end;
  std::string cut_reason = scan.tail_reason;
  for (const WalRecord& record : scan.records) {
    if (record.from_version < version) continue;  // already in the snapshot
    if (record.from_version > version) {
      cut = record.offset;
      cut_reason = "version gap at record offset " +
                   std::to_string(record.offset);
      break;
    }
    auto delta = xml::TreeDelta::Deserialize(record.payload);
    if (!delta.ok()) {
      cut = record.offset;
      cut_reason = "undecodable record: " + delta.status().message();
      break;
    }
    Status applied = delta.value().ApplyTo(&snap.tree);
    if (!applied.ok()) {
      cut = record.offset;
      cut_reason = "unappliable record: " + applied.message();
      break;
    }
    version = delta.value().to_version();
    ++report->records_replayed;
  }
  report->recovered_version = version;
  report->bytes_truncated = static_cast<int64_t>(scan.file_size - cut);
  if (report->bytes_truncated > 0) {
    note("wal tail truncated at offset " + std::to_string(cut) + " (" +
         std::to_string(report->bytes_truncated) + " bytes: " + cut_reason +
         ")");
    if (repair) {
      SMOQE_RETURN_IF_ERROR(TruncateWal(wal_path, cut));
    }
  }

  // Abandoned in-flight writes (crash between temp write and rename).
  auto names = ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : names.value()) {
      if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
        note("abandoned temp file: " + name);
        if (repair) (void)RemoveFile(dir + "/" + name);
      }
    }
  }

  if (report->records_replayed > 0) {
    // The snapshot's plane mirrors the snapshot's tree; replay moved past
    // it. Build is the bit-identity oracle, so recovery lands on exactly
    // the plane the publisher would have served.
    snap.plane = xml::DocPlane::Build(snap.tree);
  }
  snap.version = version;
  return snap;
}

}  // namespace

StatusOr<xml::PlaneEpoch> Recover(const std::string& dir,
                                  RecoveryReport* report) {
  RecoveryReport local;
  if (report == nullptr) report = &local;
  *report = RecoveryReport{};
  auto decoded = RecoverImpl(dir, /*repair=*/true, report, nullptr);
  if (!decoded.ok()) return decoded.status();
  xml::PlaneEpoch epoch;
  epoch.version = decoded.value().version;
  epoch.tree = std::make_shared<const xml::Tree>(std::move(decoded.value().tree));
  epoch.plane =
      std::make_shared<const xml::DocPlane>(std::move(decoded.value().plane));
  return epoch;
}

FsckReport Fsck(const std::string& dir) {
  FsckReport fsck;
  auto decoded = RecoverImpl(dir, /*repair=*/false, &fsck.report, &fsck.notes);
  fsck.ok = decoded.ok();
  if (!decoded.ok()) {
    fsck.notes.push_back("unrecoverable: " + decoded.status().message());
  }
  return fsck;
}

StatusOr<std::unique_ptr<DurableEpochStore>> DurableEpochStore::Open(
    const std::string& dir, StorageOptions options, xml::Tree initial) {
  if (options.snapshots_kept < 2) options.snapshots_kept = 2;
  SMOQE_RETURN_IF_ERROR(EnsureDir(dir));
  std::unique_ptr<DurableEpochStore> store(
      new DurableEpochStore(dir, options));

  auto snapshots = ListSnapshots(dir);
  if (!snapshots.ok()) return snapshots.status();
  const bool fresh =
      snapshots.value().empty() && !FileExists(dir + "/" + kManifestName) &&
      !FileExists(dir + "/" + kWalName);

  if (fresh) {
    // Nothing durable yet: persist `initial` as version 0 BEFORE serving,
    // so an acknowledged Open can always be recovered.
    xml::DocPlane plane = xml::DocPlane::Build(initial);
    SMOQE_RETURN_IF_ERROR(WriteSnapshot(dir, initial, plane, 0));
    store->stats_.snapshots_written = 1;
    store->publisher_ = std::make_unique<xml::EpochPublisher>(
        std::move(initial), std::move(plane), 0);
  } else {
    auto decoded =
        RecoverImpl(dir, /*repair=*/true, &store->recovery_, nullptr);
    if (!decoded.ok()) return decoded.status();
    store->publisher_ = std::make_unique<xml::EpochPublisher>(
        std::move(decoded.value().tree), std::move(decoded.value().plane),
        decoded.value().version);
  }

  // The WAL resumes at its validated end (recovery just truncated any torn
  // tail, so that is the file size).
  auto scan = ScanWal(dir + "/" + kWalName);
  if (!scan.ok()) return scan.status();
  auto wal = WalWriter::Open(dir + "/" + kWalName, scan.value().valid_end);
  if (!wal.ok()) return wal.status();
  store->wal_ = std::move(wal.value());
  return store;
}

Status DurableEpochStore::Apply(const xml::TreeDelta& delta) {
  if (wedged_) {
    return Status::FailedPrecondition(
        "durable store wedged by an earlier log failure; recover from disk");
  }
  // Stale deltas are rejected BEFORE anything touches the log: no durable
  // record may exist for a version that never published.
  const uint64_t current = publisher_->version();
  if (delta.from_version() != current) {
    return Status::FailedPrecondition(
        "delta from_version " + std::to_string(delta.from_version()) +
        " does not admit against durable epoch " + std::to_string(current));
  }

  // WAL first, fsync second, publish third (wal.h design note). A log
  // failure is a simulated crash: wedge, leaving the disk exactly as the
  // failure left it.
  Status s = wal_->Append(delta);
  if (!s.ok()) {
    wedged_ = true;
    return s;
  }
  s = wal_->Sync();
  if (!s.ok()) {
    wedged_ = true;
    return s;
  }
  s = publisher_->Apply(delta);
  if (!s.ok()) {
    // Publish failed with the process (and the log) healthy: roll the
    // record back so durable state never holds an unpublished version.
    Status rollback = wal_->TruncateLastRecord();
    if (!rollback.ok()) {
      wedged_ = true;
    } else {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.wal_rollbacks;
    }
    return s;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.wal_appends;
  }
  ++deltas_since_snapshot_;
  if (options_.snapshot_every > 0 &&
      deltas_since_snapshot_ >= options_.snapshot_every) {
    // Compaction failures are survivable (the WAL still holds everything);
    // Compact() recorded the failure and the next interval retries.
    (void)Compact();
  }
  return Status::OK();
}

Status DurableEpochStore::Compact() {
  const xml::PlaneEpoch epoch = publisher_->Snapshot();
  Status s = WriteSnapshot(dir_, *epoch.tree, *epoch.plane, epoch.version);
  if (!s.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.compactions_failed;
    return s;
  }
  deltas_since_snapshot_ = 0;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.snapshots_written;
  }

  // Prune snapshots beyond the retention count, then trim WAL records that
  // predate the OLDEST kept snapshot (the fallback still replays to the
  // present -- see StorageOptions::snapshots_kept).
  auto snapshots = ListSnapshots(dir_);
  if (!snapshots.ok()) return Status::OK();  // pruning is best-effort
  uint64_t oldest_kept = epoch.version;
  for (size_t i = 0; i < snapshots.value().size(); ++i) {
    if (i < static_cast<size_t>(options_.snapshots_kept)) {
      oldest_kept = snapshots.value()[i].first;
    } else {
      (void)RemoveFile(dir_ + "/" + snapshots.value()[i].second);
    }
  }

  const std::string wal_path = dir_ + "/" + kWalName;
  auto scan = ScanWal(wal_path);
  if (!scan.ok()) return Status::OK();
  uint64_t cut = scan.value().valid_end;
  for (const WalRecord& record : scan.value().records) {
    if (record.from_version >= oldest_kept) {
      cut = record.offset;
      break;
    }
  }
  if (cut == 0) return Status::OK();

  // Rewrite the log as the surviving suffix, atomically, and re-seat the
  // writer on the new file (the old fd points at the renamed-away inode).
  auto bytes = ReadFile(wal_path);
  if (!bytes.ok()) return Status::OK();
  std::string suffix =
      bytes.value().substr(cut, scan.value().valid_end - cut);
  const uint64_t new_end = suffix.size();
  Status rewritten = WriteFileAtomic(dir_, kWalName, suffix);
  if (!rewritten.ok()) return Status::OK();
  auto reopened = WalWriter::Open(wal_path, new_end);
  if (!reopened.ok()) {
    wedged_ = true;  // the old fd is stale; appending would hit a dead inode
    return reopened.status();
  }
  wal_ = std::move(reopened.value());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.wal_bytes_trimmed += static_cast<int64_t>(cut);
  }
  return Status::OK();
}

DurableEpochStore::Stats DurableEpochStore::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace smoqe::storage
