#include "storage/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace smoqe::storage {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Unavailable(what + " " + path + ": " +
                             std::strerror(errno));
}

// Full write loop (handles short writes / EINTR).
Status WriteAll(int fd, const char* data, size_t n, const std::string& path) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::string> ReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Errno("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      Status s = Errno("read", path);
      ::close(fd);
      return s;
    }
    if (r == 0) break;
    out.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return out;
}

Status WriteFileAtomic(const std::string& dir, const std::string& name,
                       std::string_view contents, FaultSite write_site,
                       FaultSite rename_site) {
  const std::string tmp = dir + "/" + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return Errno("open", tmp);

  size_t keep = 0;
  Status injected =
      write_site == FaultSite::kNumSites
          ? Status::OK()
          : FaultHitWrite(write_site, contents.size(), &keep);
  if (!injected.ok()) {
    // Simulated crash mid-write: persist exactly the injected prefix of the
    // temp file, then fail without renaming. The target file is untouched;
    // recovery ignores (and fsck reports) orphaned temp files.
    (void)WriteAll(fd, contents.data(), keep, tmp);
    ::close(fd);
    return injected;
  }
  Status s = WriteAll(fd, contents.data(), contents.size(), tmp);
  if (s.ok() && ::fsync(fd) != 0) s = Errno("fsync", tmp);
  ::close(fd);
  if (!s.ok()) return s;

  if (rename_site != FaultSite::kNumSites) {
    SMOQE_FAULT_RETURN_IF_INJECTED(rename_site);
  }
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return Errno("rename", final_path);
  }
  return SyncDir(dir);
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open dir", dir);
  Status s = Status::OK();
  if (::fsync(fd) != 0) s = Errno("fsync dir", dir);
  ::close(fd);
  return s;
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Errno("mkdir", dir);
}

StatusOr<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* e = ::readdir(d)) {
    if (e->d_name[0] == '.') continue;
    names.emplace_back(e->d_name);
  }
  ::closedir(d);
  return names;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
  return Errno("unlink", path);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace smoqe::storage
