#include "storage/crc32c.h"

namespace smoqe::storage {

namespace {

// 8 slice tables for the Castagnoli polynomial (reflected 0x82F63B78),
// computed once at first use.
struct Tables {
  uint32_t t[8][256];
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (int s = 1; s < 8; ++s) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[s][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables* t = new Tables();
  return *t;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = tables();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n >= 8) {
    const uint32_t low = crc ^ (static_cast<uint32_t>(p[0]) |
                                (static_cast<uint32_t>(p[1]) << 8) |
                                (static_cast<uint32_t>(p[2]) << 16) |
                                (static_cast<uint32_t>(p[3]) << 24));
    crc = tb.t[7][low & 0xff] ^ tb.t[6][(low >> 8) & 0xff] ^
          tb.t[5][(low >> 16) & 0xff] ^ tb.t[4][low >> 24] ^
          tb.t[3][p[4]] ^ tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace smoqe::storage
