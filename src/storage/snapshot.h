// Snapshot store: versioned, checksummed serialization of one epoch --
// (Tree, DocPlane, version) -- plus the manifest that tracks the newest
// durable snapshot.
//
// File format (snapshot-<version 20 digits>.snap):
//
//   [magic u32 'SMQS'] [payload_len u64] [payload] [crc32c(payload) u32]
//
// The payload serializes the tree's RAW arena -- labels, every node slot
// including tombstoned (detached) ones, the text pool, root, counters --
// followed by the plane's columns verbatim and the epoch version. The raw
// arena matters: WAL deltas address nodes by NodeId, and fresh inserts take
// ids at the arena END, so replay after recovery is only correct if the
// loaded tree is id-for-id identical to the one the deltas were recorded
// against (see the determinism notes in tree.h / tree_delta.h).
//
// Snapshots are written via temp file + fsync + atomic rename (fs.h), so a
// crash mid-write leaves at most an orphaned *.tmp; the manifest (same
// framing, magic 'SMQM') is renamed into place only after its snapshot is
// durable. Readers verify length and CRC before decoding and the decoders
// bounds-check every field, so corrupt input of ANY shape yields a Status,
// never UB -- the corruption-fuzz suite drives these paths directly.

#ifndef SMOQE_STORAGE_SNAPSHOT_H_
#define SMOQE_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "xml/doc_plane.h"
#include "xml/tree.h"

namespace smoqe::storage {

inline constexpr char kManifestName[] = "MANIFEST";
inline constexpr char kWalName[] = "wal.log";

/// "snapshot-<zero-padded version>.snap" (lexicographic == numeric order).
std::string SnapshotFileName(uint64_t version);

/// A decoded snapshot: a mutable tree (recovery replays the WAL onto it)
/// with its plane and version.
struct DecodedSnapshot {
  xml::Tree tree;
  xml::DocPlane plane;
  uint64_t version = 0;
};

/// Serializes the epoch into the framed + checksummed file bytes.
std::string EncodeSnapshotFile(const xml::Tree& tree,
                               const xml::DocPlane& plane, uint64_t version);

/// Verifies framing + CRC and decodes. Safe on arbitrary bytes.
StatusOr<DecodedSnapshot> DecodeSnapshotFile(std::string_view bytes);

/// Writes the snapshot atomically into `dir` and re-points the manifest.
/// Instrumented with the kSnapshotWrite / kSnapshotRename fault sites.
Status WriteSnapshot(const std::string& dir, const xml::Tree& tree,
                     const xml::DocPlane& plane, uint64_t version);

StatusOr<DecodedSnapshot> ReadSnapshotFile(const std::string& path);

struct Manifest {
  uint64_t version = 0;
  std::string snapshot_file;
};

Status WriteManifest(const std::string& dir, const Manifest& manifest);
StatusOr<Manifest> ReadManifest(const std::string& dir);

/// (version, filename) of every well-named snapshot in `dir`, newest first.
StatusOr<std::vector<std::pair<uint64_t, std::string>>> ListSnapshots(
    const std::string& dir);

}  // namespace smoqe::storage

#endif  // SMOQE_STORAGE_SNAPSHOT_H_
