// Write-ahead delta log: the durability half of the epoch discipline.
//
// DESIGN NOTE (durable state is never behind published state)
// -----------------------------------------------------------
// xml::EpochPublisher keeps its version chain in memory; the WAL extends it
// to disk with the same Pacemaker-CIB patch discipline. Every record is one
// serialized xml::TreeDelta (tree_delta.h wire form) framed as
//
//   [from_version u64] [payload_len u32] [crc32c u32] [payload]
//
// where the CRC covers from_version, payload_len AND the payload, so a bit
// flip anywhere in the record -- header included -- is detected. Records
// are strictly append-only and form a version chain: each record's
// from_version equals the previous record's to_version, rooted at a
// snapshot (snapshot.h).
//
// The ordering contract (DurableEpochStore::Apply enforces it):
//
//   serialize -> Append -> Sync (fsync) -> EpochPublisher::Apply -> ack
//
// i.e. a delta is fsync'd BEFORE it publishes. A crash between fsync and
// publish leaves the log one record AHEAD of what readers ever saw --
// recovery replays it (redo), which is correct: durable state may run ahead
// of published state, never behind. The converse hole -- a record for a
// delta that FAILED to publish while the process lives on -- is closed by
// TruncateLastRecord: the store rolls the log back so no durable record
// exists for an unpublished version (asserted by the WAL/publisher
// interaction tests).
//
// Torn tails are the normal crash shape, not an error: ScanWal stops at the
// first record whose length or CRC does not verify and reports the byte
// offset of the valid prefix; storage::Recover truncates the file there and
// resumes appending. Fault sites kWalAppend (torn-write capable: a prefix
// of the record persists, then the store fails like a crashed process
// would) and kWalFsync make every one of these paths deterministically
// reachable in the chaos suite.

#ifndef SMOQE_STORAGE_WAL_H_
#define SMOQE_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/tree_delta.h"

namespace smoqe::storage {

/// Single-writer appender over one log file. Not thread-safe; the store
/// serializes writes exactly like the publisher serializes Apply.
class WalWriter {
 public:
  /// Opens (creating if missing) for appending at `offset` -- the validated
  /// end of the log, i.e. ScanWal().valid_end after recovery, 0 for a fresh
  /// log. Bytes past `offset` (a torn tail Recover has not trimmed yet) are
  /// dropped by an immediate truncate.
  static StatusOr<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                   uint64_t offset);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record (no fsync; see Sync). On an injected torn write a
  /// PREFIX of the record persists and the writer is left positioned at the
  /// tear -- callers must treat any Append failure as fatal for this writer
  /// (the store wedges; recovery re-opens from disk).
  Status Append(const xml::TreeDelta& delta);

  /// fsyncs everything appended so far (the pre-publish barrier).
  Status Sync();

  /// Rolls back the most recent successful Append (ftruncate + fsync):
  /// closes the failed-publish hole in the design note. Valid once per
  /// Append.
  Status TruncateLastRecord();

  uint64_t offset() const { return offset_; }

 private:
  WalWriter(int fd, uint64_t offset) : fd_(fd), offset_(offset) {}

  int fd_;
  uint64_t offset_;
  uint64_t last_record_offset_ = 0;  // valid when has_last_record_
  bool has_last_record_ = false;
};

struct WalRecord {
  uint64_t from_version = 0;
  uint64_t offset = 0;  // byte offset of the record header in the file
  std::string payload;  // serialized TreeDelta
};

/// One pass over the log: the records of the longest valid prefix, where
/// the prefix ends (valid_end), and why (tail_reason when a torn/corrupt
/// tail follows). A missing file scans as empty -- a store that never
/// appended is a valid store.
struct WalScan {
  std::vector<WalRecord> records;
  uint64_t valid_end = 0;
  uint64_t file_size = 0;
  std::string tail_reason;  // empty when the whole file verified
  bool tail_corrupt() const { return valid_end != file_size; }
};

StatusOr<WalScan> ScanWal(const std::string& path);

/// Truncates the log to `offset` and fsyncs (Recover's tail repair).
Status TruncateWal(const std::string& path, uint64_t offset);

}  // namespace smoqe::storage

#endif  // SMOQE_STORAGE_WAL_H_
