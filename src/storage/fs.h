// Small POSIX file helpers for the storage layer. Everything returns
// Status/StatusOr (the library is exception-free) and every durable write
// goes through the temp-file + fsync + atomic-rename + directory-fsync
// discipline in WriteFileAtomic.

#ifndef SMOQE_STORAGE_FS_H_
#define SMOQE_STORAGE_FS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/fault_injection.h"
#include "common/status.h"

namespace smoqe::storage {

/// Reads a whole file. kNotFound when it does not exist.
StatusOr<std::string> ReadFile(const std::string& path);

/// Writes `contents` to `dir/name` atomically: temp file in the same
/// directory, full write, fsync, rename over the target, directory fsync.
/// A crash at any point leaves either the old file or the new file, never a
/// mix. `write_site`/`rename_site` are consulted for injected failures
/// (torn-write aware: an injected tear persists a prefix of the temp file,
/// which the rename then never commits); pass FaultSite::kNumSites to run
/// a site uninstrumented.
Status WriteFileAtomic(const std::string& dir, const std::string& name,
                       std::string_view contents,
                       FaultSite write_site = FaultSite::kNumSites,
                       FaultSite rename_site = FaultSite::kNumSites);

/// fsyncs a directory (publishes renames/creates within it).
Status SyncDir(const std::string& dir);

/// Creates `dir` if missing (one level).
Status EnsureDir(const std::string& dir);

/// Names of regular files directly under `dir` (no recursion, no dotfiles).
StatusOr<std::vector<std::string>> ListDir(const std::string& dir);

/// Deletes a file if present; missing is OK.
Status RemoveFile(const std::string& path);

bool FileExists(const std::string& path);

}  // namespace smoqe::storage

#endif  // SMOQE_STORAGE_FS_H_
