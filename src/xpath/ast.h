// AST for regular XPath (Xreg) and its XPath fragment X (Section 2.1).
//
//   Q ::= eps | A | * | Q/Q | Q U Q | Q* | Q[q]
//   q ::= Q | Q/text()='c' | position()=k | not q | q and q | q or q
//
// X is the subfragment where every Kleene star is (*)* -- i.e. the
// descendant-or-self axis '//' (the parser desugars '//' to /(*)*/).
//
// Nodes are immutable and shared (shared_ptr DAG). Sharing keeps rewriting
// cheap in memory; ExpandedSize() reports the size of the *explicit*
// representation (shared subtrees counted once per occurrence), which is the
// measure in the paper's Corollary 3.3 lower bound.

#ifndef SMOQE_XPATH_AST_H_
#define SMOQE_XPATH_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace smoqe::xpath {

struct Path;
struct Filter;
using PathPtr = std::shared_ptr<const Path>;
using FilterPtr = std::shared_ptr<const Filter>;

enum class PathKind : uint8_t {
  kEmpty,     // eps (self)
  kLabel,     // A
  kWildcard,  // *
  kSeq,       // Q1/Q2
  kUnion,     // Q1 U Q2
  kStar,      // Q*
  kFilter,    // Q[q]
};

enum class FilterKind : uint8_t {
  kPath,            // Q            (some node reachable via Q)
  kTextEquals,      // Q/text()='c' (some node reachable via Q has text c)
  kPositionEquals,  // position()=k (this node is the k-th child)
  kNot,
  kAnd,
  kOr,
};

struct Path {
  PathKind kind = PathKind::kEmpty;
  std::string label;   // kLabel
  PathPtr left;        // kSeq/kUnion lhs; kStar/kFilter operand
  PathPtr right;       // kSeq/kUnion rhs
  FilterPtr filter;    // kFilter
};

struct Filter {
  FilterKind kind = FilterKind::kPath;
  PathPtr path;        // kPath / kTextEquals
  std::string text;    // kTextEquals
  int position = 0;    // kPositionEquals
  FilterPtr left;      // kNot operand; kAnd/kOr lhs
  FilterPtr right;     // kAnd/kOr rhs
};

// ---- Builders (the only way to create nodes; all immutable) ----
PathPtr Eps();
PathPtr Label(std::string name);
PathPtr Wildcard();
PathPtr Seq(PathPtr a, PathPtr b);
PathPtr UnionOf(PathPtr a, PathPtr b);
PathPtr Star(PathPtr a);
PathPtr WithFilter(PathPtr a, FilterPtr f);
/// Desugared descendant-or-self step: (*)*.
PathPtr DescendantOrSelf();

FilterPtr FPath(PathPtr p);
FilterPtr FTextEquals(PathPtr p, std::string text);
FilterPtr FPositionEquals(int k);
FilterPtr FNot(FilterPtr f);
FilterPtr FAnd(FilterPtr a, FilterPtr b);
FilterPtr FOr(FilterPtr a, FilterPtr b);

/// Size of the explicit (fully expanded) representation; saturates at
/// uint64 max. This is |Q| in the paper's bounds.
uint64_t ExpandedSize(const PathPtr& p);
uint64_t ExpandedSize(const FilterPtr& f);

/// Structural equality (labels, constants and shape).
bool Equals(const PathPtr& a, const PathPtr& b);
bool Equals(const FilterPtr& a, const FilterPtr& b);

/// All labels mentioned by the query (selection steps and filters).
std::vector<std::string> CollectLabels(const PathPtr& p);

}  // namespace smoqe::xpath

#endif  // SMOQE_XPATH_AST_H_
