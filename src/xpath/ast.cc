#include "xpath/ast.h"

#include <unordered_map>
#include <unordered_set>

namespace smoqe::xpath {

namespace {
PathPtr MakePath(Path p) { return std::make_shared<const Path>(std::move(p)); }
FilterPtr MakeFilter(Filter f) { return std::make_shared<const Filter>(std::move(f)); }
}  // namespace

PathPtr Eps() {
  static const PathPtr eps = MakePath(Path{});  // Path defaults to kEmpty
  return eps;
}

PathPtr Label(std::string name) {
  Path p;
  p.kind = PathKind::kLabel;
  p.label = std::move(name);
  return MakePath(std::move(p));
}

PathPtr Wildcard() {
  static const PathPtr wc = [] {
    Path p;
    p.kind = PathKind::kWildcard;
    return MakePath(std::move(p));
  }();
  return wc;
}

PathPtr Seq(PathPtr a, PathPtr b) {
  // eps is the unit of '/', fold it away so printed queries stay readable.
  if (a->kind == PathKind::kEmpty) return b;
  if (b->kind == PathKind::kEmpty) return a;
  Path p;
  p.kind = PathKind::kSeq;
  p.left = std::move(a);
  p.right = std::move(b);
  return MakePath(std::move(p));
}

PathPtr UnionOf(PathPtr a, PathPtr b) {
  Path p;
  p.kind = PathKind::kUnion;
  p.left = std::move(a);
  p.right = std::move(b);
  return MakePath(std::move(p));
}

PathPtr Star(PathPtr a) {
  Path p;
  p.kind = PathKind::kStar;
  p.left = std::move(a);
  return MakePath(std::move(p));
}

PathPtr WithFilter(PathPtr a, FilterPtr f) {
  Path p;
  p.kind = PathKind::kFilter;
  p.left = std::move(a);
  p.filter = std::move(f);
  return MakePath(std::move(p));
}

PathPtr DescendantOrSelf() {
  static const PathPtr ds = Star(Wildcard());
  return ds;
}

FilterPtr FPath(PathPtr p) {
  Filter f;
  f.kind = FilterKind::kPath;
  f.path = std::move(p);
  return MakeFilter(std::move(f));
}

FilterPtr FTextEquals(PathPtr p, std::string text) {
  Filter f;
  f.kind = FilterKind::kTextEquals;
  f.path = std::move(p);
  f.text = std::move(text);
  return MakeFilter(std::move(f));
}

FilterPtr FPositionEquals(int k) {
  Filter f;
  f.kind = FilterKind::kPositionEquals;
  f.position = k;
  return MakeFilter(std::move(f));
}

FilterPtr FNot(FilterPtr inner) {
  Filter f;
  f.kind = FilterKind::kNot;
  f.left = std::move(inner);
  return MakeFilter(std::move(f));
}

FilterPtr FAnd(FilterPtr a, FilterPtr b) {
  Filter f;
  f.kind = FilterKind::kAnd;
  f.left = std::move(a);
  f.right = std::move(b);
  return MakeFilter(std::move(f));
}

FilterPtr FOr(FilterPtr a, FilterPtr b) {
  Filter f;
  f.kind = FilterKind::kOr;
  f.left = std::move(a);
  f.right = std::move(b);
  return MakeFilter(std::move(f));
}

namespace {

constexpr uint64_t kSizeCap = ~uint64_t{0};

uint64_t SatAdd(uint64_t a, uint64_t b) {
  uint64_t s = a + b;
  return s < a ? kSizeCap : s;
}

struct SizeMemo {
  std::unordered_map<const Path*, uint64_t> paths;
  std::unordered_map<const Filter*, uint64_t> filters;
};

uint64_t SizeOf(const PathPtr& p, SizeMemo* memo);

uint64_t SizeOf(const FilterPtr& f, SizeMemo* memo) {
  if (f == nullptr) return 0;
  auto it = memo->filters.find(f.get());
  if (it != memo->filters.end()) return it->second;
  uint64_t size = 1;
  size = SatAdd(size, SizeOf(f->path, memo));
  size = SatAdd(size, SizeOf(f->left, memo));
  size = SatAdd(size, SizeOf(f->right, memo));
  memo->filters[f.get()] = size;
  return size;
}

uint64_t SizeOf(const PathPtr& p, SizeMemo* memo) {
  if (p == nullptr) return 0;
  auto it = memo->paths.find(p.get());
  if (it != memo->paths.end()) return it->second;
  uint64_t size = 1;
  size = SatAdd(size, SizeOf(p->left, memo));
  size = SatAdd(size, SizeOf(p->right, memo));
  size = SatAdd(size, SizeOf(p->filter, memo));
  memo->paths[p.get()] = size;
  return size;
}

}  // namespace

uint64_t ExpandedSize(const PathPtr& p) {
  SizeMemo memo;
  return SizeOf(p, &memo);
}

uint64_t ExpandedSize(const FilterPtr& f) {
  SizeMemo memo;
  return SizeOf(f, &memo);
}

bool Equals(const FilterPtr& a, const FilterPtr& b);

namespace {

// '/' and 'U' are associative; Equals compares their operand spines so that
// a/(b/c) and (a/b)/c (parser folds left, builders often fold right) compare
// equal.
void FlattenSpine(const PathPtr& p, PathKind kind, std::vector<const Path*>* out) {
  std::vector<const Path*> stack = {p.get()};
  while (!stack.empty()) {
    const Path* n = stack.back();
    stack.pop_back();
    if (n->kind == kind) {
      // Right child pushed first so the left spine comes out in order.
      stack.push_back(n->right.get());
      stack.push_back(n->left.get());
    } else {
      out->push_back(n);
    }
  }
}

bool EqualsRaw(const Path* a, const Path* b);

bool EqualsSpines(const PathPtr& a, const PathPtr& b, PathKind kind) {
  std::vector<const Path*> sa, sb;
  FlattenSpine(a, kind, &sa);
  FlattenSpine(b, kind, &sb);
  if (sa.size() != sb.size()) return false;
  for (size_t i = 0; i < sa.size(); ++i) {
    if (!EqualsRaw(sa[i], sb[i])) return false;
  }
  return true;
}

bool EqualsRaw(const Path* a, const Path* b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  if (a->kind == PathKind::kSeq || a->kind == PathKind::kUnion) {
    // Re-wrap to reuse the spine comparison (no ownership transfer needed;
    // aliasing shared_ptrs with no-op deleters keeps this cheap).
    PathPtr pa(std::shared_ptr<const Path>(), a);
    PathPtr pb(std::shared_ptr<const Path>(), b);
    return EqualsSpines(pa, pb, a->kind);
  }
  return a->label == b->label && EqualsRaw(a->left.get(), b->left.get()) &&
         EqualsRaw(a->right.get(), b->right.get()) &&
         Equals(a->filter, b->filter);
}

}  // namespace

bool Equals(const PathPtr& a, const PathPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  if (a->kind == PathKind::kSeq || a->kind == PathKind::kUnion) {
    return EqualsSpines(a, b, a->kind);
  }
  return EqualsRaw(a.get(), b.get());
}

namespace {

// 'and' / 'or' are associative too.
void FlattenFilterSpine(const Filter* f, FilterKind kind,
                        std::vector<const Filter*>* out) {
  std::vector<const Filter*> stack = {f};
  while (!stack.empty()) {
    const Filter* n = stack.back();
    stack.pop_back();
    if (n->kind == kind) {
      stack.push_back(n->right.get());
      stack.push_back(n->left.get());
    } else {
      out->push_back(n);
    }
  }
}

bool EqualsFilterRaw(const Filter* a, const Filter* b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  if (a->kind == FilterKind::kAnd || a->kind == FilterKind::kOr) {
    std::vector<const Filter*> sa, sb;
    FlattenFilterSpine(a, a->kind, &sa);
    FlattenFilterSpine(b, a->kind, &sb);
    if (sa.size() != sb.size()) return false;
    for (size_t i = 0; i < sa.size(); ++i) {
      if (!EqualsFilterRaw(sa[i], sb[i])) return false;
    }
    return true;
  }
  return a->text == b->text && a->position == b->position &&
         Equals(a->path, b->path) && EqualsFilterRaw(a->left.get(), b->left.get()) &&
         EqualsFilterRaw(a->right.get(), b->right.get());
}

}  // namespace

bool Equals(const FilterPtr& a, const FilterPtr& b) {
  return EqualsFilterRaw(a.get(), b.get());
}

namespace {

void Collect(const PathPtr& p, std::unordered_set<const Path*>* seen_p,
             std::unordered_set<const Filter*>* seen_f,
             std::vector<std::string>* out);

void Collect(const FilterPtr& f, std::unordered_set<const Path*>* seen_p,
             std::unordered_set<const Filter*>* seen_f,
             std::vector<std::string>* out) {
  if (f == nullptr || !seen_f->insert(f.get()).second) return;
  Collect(f->path, seen_p, seen_f, out);
  Collect(f->left, seen_p, seen_f, out);
  Collect(f->right, seen_p, seen_f, out);
}

void Collect(const PathPtr& p, std::unordered_set<const Path*>* seen_p,
             std::unordered_set<const Filter*>* seen_f,
             std::vector<std::string>* out) {
  if (p == nullptr || !seen_p->insert(p.get()).second) return;
  if (p->kind == PathKind::kLabel) out->push_back(p->label);
  Collect(p->left, seen_p, seen_f, out);
  Collect(p->right, seen_p, seen_f, out);
  Collect(p->filter, seen_p, seen_f, out);
}

}  // namespace

std::vector<std::string> CollectLabels(const PathPtr& p) {
  std::unordered_set<const Path*> seen_p;
  std::unordered_set<const Filter*> seen_f;
  std::vector<std::string> out;
  Collect(p, &seen_p, &seen_f, &out);
  return out;
}

}  // namespace smoqe::xpath
