#include "xpath/printer.h"

namespace smoqe::xpath {

namespace {

// Path precedence: union < seq < postfix (star, filter) < atom.
enum { kPrecUnion = 0, kPrecSeq = 1, kPrecPostfix = 2 };

void PrintPath(const PathPtr& p, int parent_prec, std::string* out);
void PrintFilter(const FilterPtr& f, int parent_prec, std::string* out);

void PrintString(const std::string& s, std::string* out) {
  char quote = s.find('\'') == std::string::npos ? '\'' : '"';
  *out += quote;
  *out += s;
  *out += quote;
}

void PrintPath(const PathPtr& p, int parent_prec, std::string* out) {
  switch (p->kind) {
    case PathKind::kEmpty:
      *out += '.';
      return;
    case PathKind::kLabel:
      *out += p->label;
      return;
    case PathKind::kWildcard:
      *out += '*';
      return;
    case PathKind::kSeq: {
      bool wrap = parent_prec > kPrecSeq;
      if (wrap) *out += '(';
      PrintPath(p->left, kPrecSeq, out);
      *out += '/';
      PrintPath(p->right, kPrecSeq, out);
      if (wrap) *out += ')';
      return;
    }
    case PathKind::kUnion: {
      bool wrap = parent_prec > kPrecUnion;
      if (wrap) *out += '(';
      PrintPath(p->left, kPrecUnion, out);
      *out += " | ";
      PrintPath(p->right, kPrecUnion, out);
      if (wrap) *out += ')';
      return;
    }
    case PathKind::kStar: {
      // Always parenthesize the body: "(parent/patient)*", "(*)*".
      const PathPtr& body = p->left;
      if (body->kind == PathKind::kLabel) {
        *out += body->label;
      } else {
        *out += '(';
        PrintPath(body, kPrecUnion, out);
        *out += ')';
      }
      *out += '*';
      return;
    }
    case PathKind::kFilter: {
      bool wrap = p->left->kind == PathKind::kSeq ||
                  p->left->kind == PathKind::kUnion;
      if (wrap) *out += '(';
      PrintPath(p->left, kPrecPostfix, out);
      if (wrap) *out += ')';
      *out += '[';
      PrintFilter(p->filter, 0, out);
      *out += ']';
      return;
    }
  }
}

// Filter precedence: or < and < not/atom.
void PrintFilter(const FilterPtr& f, int parent_prec, std::string* out) {
  switch (f->kind) {
    case FilterKind::kPath:
      PrintPath(f->path, kPrecUnion, out);
      return;
    case FilterKind::kTextEquals:
      if (f->path->kind != PathKind::kEmpty) {
        PrintPath(f->path, kPrecSeq, out);
        *out += '/';
      }
      *out += "text() = ";
      PrintString(f->text, out);
      return;
    case FilterKind::kPositionEquals:
      *out += "position() = " + std::to_string(f->position);
      return;
    case FilterKind::kNot:
      *out += "not(";
      PrintFilter(f->left, 0, out);
      *out += ')';
      return;
    case FilterKind::kAnd: {
      bool wrap = parent_prec > 1;
      if (wrap) *out += '(';
      PrintFilter(f->left, 1, out);
      *out += " and ";
      PrintFilter(f->right, 1, out);
      if (wrap) *out += ')';
      return;
    }
    case FilterKind::kOr: {
      bool wrap = parent_prec > 0;
      if (wrap) *out += '(';
      PrintFilter(f->left, 0, out);
      *out += " or ";
      PrintFilter(f->right, 0, out);
      if (wrap) *out += ')';
      return;
    }
  }
}

}  // namespace

std::string ToString(const PathPtr& p) {
  std::string out;
  PrintPath(p, kPrecUnion, &out);
  return out;
}

std::string ToString(const FilterPtr& f) {
  std::string out;
  PrintFilter(f, 0, &out);
  return out;
}

}  // namespace smoqe::xpath
