// Pretty-printer for Xreg ASTs. Output re-parses to a structurally equal AST
// (round-trip property, tested).

#ifndef SMOQE_XPATH_PRINTER_H_
#define SMOQE_XPATH_PRINTER_H_

#include <string>

#include "xpath/ast.h"

namespace smoqe::xpath {

std::string ToString(const PathPtr& p);
std::string ToString(const FilterPtr& f);

}  // namespace smoqe::xpath

#endif  // SMOQE_XPATH_PRINTER_H_
