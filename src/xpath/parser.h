// Parser for the concrete syntax of Xreg / X.
//
//   query  := union
//   union  := seq ('|' seq)*
//   seq    := ['//'] step (('/' | '//') step)*
//   step   := primary ('[' filter ']' | '*')*
//   primary:= '.' | name | '*' | '(' union ')'
//   filter := orf;  orf := andf ('or' andf)*;  andf := notf ('and' notf)*
//   notf   := 'not' '(' orf ')' | atom
//   atom   := 'text()' '=' string
//           | 'position()' '=' number
//           | path ['/text()' '=' string]       -- path existence / text test
//           | '(' orf ')'                        -- boolean grouping
//
// '//' is desugared to /(*)*/ at parse time (so X queries become Xreg with
// only wildcard stars). `and`, `or`, `not` are reserved words and cannot be
// element names in queries. Strings use single or double quotes.

#ifndef SMOQE_XPATH_PARSER_H_
#define SMOQE_XPATH_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xpath/ast.h"

namespace smoqe::xpath {

StatusOr<PathPtr> ParseQuery(std::string_view input);

/// Parses a bare filter expression (used by tests).
StatusOr<FilterPtr> ParseFilterExpr(std::string_view input);

}  // namespace smoqe::xpath

#endif  // SMOQE_XPATH_PARSER_H_
