#include "xpath/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace smoqe::xpath {

namespace {

enum class Tok : uint8_t {
  kName, kString, kNumber,
  kSlash, kDSlash, kPipe, kStar, kLParen, kRParen, kLBracket, kRBracket,
  kEq, kDot, kAnd, kOr, kNot, kTextFn, kPosFn, kEof,
};

struct Token {
  Tok kind;
  std::string text;  // kName/kString/kNumber payload
  size_t offset;
};

StatusOr<std::vector<Token>> Lex(std::string_view in) {
  std::vector<Token> toks;
  size_t i = 0;
  auto err = [&](std::string what) {
    return Status::ParseError("query: " + what + " (offset " + std::to_string(i) + ")");
  };
  while (i < in.size()) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < in.size() && (std::isalnum(static_cast<unsigned char>(in[j])) ||
                               in[j] == '_' || in[j] == '-')) {
        ++j;
      }
      std::string name(in.substr(i, j - i));
      i = j;
      if (name == "and") { toks.push_back({Tok::kAnd, "", start}); continue; }
      if (name == "or") { toks.push_back({Tok::kOr, "", start}); continue; }
      if (name == "not") { toks.push_back({Tok::kNot, "", start}); continue; }
      if (name == "text" || name == "position") {
        size_t j2 = i;
        while (j2 < in.size() && std::isspace(static_cast<unsigned char>(in[j2]))) ++j2;
        if (j2 + 1 < in.size() && in[j2] == '(' && in[j2 + 1] == ')') {
          i = j2 + 2;
          toks.push_back({name == "text" ? Tok::kTextFn : Tok::kPosFn, "", start});
          continue;
        }
      }
      toks.push_back({Tok::kName, std::move(name), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < in.size() && std::isdigit(static_cast<unsigned char>(in[j]))) ++j;
      toks.push_back({Tok::kNumber, std::string(in.substr(i, j - i)), start});
      i = j;
      continue;
    }
    if (c == '\'' || c == '"') {
      size_t j = i + 1;
      while (j < in.size() && in[j] != c) ++j;
      if (j >= in.size()) return err("unterminated string literal");
      toks.push_back({Tok::kString, std::string(in.substr(i + 1, j - i - 1)), start});
      i = j + 1;
      continue;
    }
    switch (c) {
      case '/':
        if (i + 1 < in.size() && in[i + 1] == '/') {
          toks.push_back({Tok::kDSlash, "", start});
          i += 2;
        } else {
          toks.push_back({Tok::kSlash, "", start});
          ++i;
        }
        continue;
      case '|': toks.push_back({Tok::kPipe, "", start}); ++i; continue;
      case '*': toks.push_back({Tok::kStar, "", start}); ++i; continue;
      case '(': toks.push_back({Tok::kLParen, "", start}); ++i; continue;
      case ')': toks.push_back({Tok::kRParen, "", start}); ++i; continue;
      case '[': toks.push_back({Tok::kLBracket, "", start}); ++i; continue;
      case ']': toks.push_back({Tok::kRBracket, "", start}); ++i; continue;
      case '=': toks.push_back({Tok::kEq, "", start}); ++i; continue;
      case '.': toks.push_back({Tok::kDot, "", start}); ++i; continue;
      default:
        return err(std::string("unexpected character '") + c + "'");
    }
  }
  toks.push_back({Tok::kEof, "", in.size()});
  return toks;
}

class QueryParser {
 public:
  explicit QueryParser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  StatusOr<PathPtr> ParseWholeQuery() {
    SMOQE_ASSIGN_OR_RETURN(PathPtr p, ParseUnion());
    if (Peek() != Tok::kEof) return Err("trailing input after query");
    return p;
  }

  StatusOr<FilterPtr> ParseWholeFilter() {
    SMOQE_ASSIGN_OR_RETURN(FilterPtr f, ParseOrF());
    if (Peek() != Tok::kEof) return Err("trailing input after filter");
    return f;
  }

 private:
  Tok Peek(size_t ahead = 0) const {
    size_t i = ti_ + ahead;
    return i < toks_.size() ? toks_[i].kind : Tok::kEof;
  }
  const Token& Cur() const { return toks_[ti_]; }
  void Advance() { ++ti_; }

  bool Consume(Tok t) {
    if (Peek() != t) return false;
    Advance();
    return true;
  }

  Status Err(std::string what) const {
    return Status::ParseError("query: " + what + " (offset " +
                              std::to_string(Cur().offset) + ")");
  }

  StatusOr<PathPtr> ParseUnion() {
    SMOQE_ASSIGN_OR_RETURN(PathPtr a, ParseSeq());
    while (Consume(Tok::kPipe)) {
      SMOQE_ASSIGN_OR_RETURN(PathPtr b, ParseSeq());
      a = UnionOf(a, b);
    }
    return a;
  }

  StatusOr<PathPtr> ParseSeq() {
    PathPtr a;
    if (Consume(Tok::kDSlash)) {
      SMOQE_ASSIGN_OR_RETURN(PathPtr first, ParseStep());
      a = Seq(DescendantOrSelf(), first);
    } else {
      SMOQE_ASSIGN_OR_RETURN(PathPtr first, ParseStep());
      a = first;
    }
    for (;;) {
      if (Peek() == Tok::kSlash && Peek(1) == Tok::kTextFn) {
        // Leave `/text() = 'c'` for the enclosing filter atom.
        break;
      }
      if (Consume(Tok::kSlash)) {
        SMOQE_ASSIGN_OR_RETURN(PathPtr b, ParseStep());
        a = Seq(a, b);
      } else if (Consume(Tok::kDSlash)) {
        SMOQE_ASSIGN_OR_RETURN(PathPtr b, ParseStep());
        a = Seq(Seq(a, DescendantOrSelf()), b);
      } else {
        break;
      }
    }
    return a;
  }

  StatusOr<PathPtr> ParseStep() {
    SMOQE_ASSIGN_OR_RETURN(PathPtr p, ParsePrimary());
    for (;;) {
      if (Consume(Tok::kLBracket)) {
        SMOQE_ASSIGN_OR_RETURN(FilterPtr f, ParseOrF());
        if (!Consume(Tok::kRBracket)) return Err("expected ']'");
        p = WithFilter(p, f);
      } else if (Consume(Tok::kStar)) {
        p = Star(p);
      } else {
        break;
      }
    }
    return p;
  }

  StatusOr<PathPtr> ParsePrimary() {
    switch (Peek()) {
      case Tok::kDot:
        Advance();
        return Eps();
      case Tok::kName: {
        PathPtr p = Label(Cur().text);
        Advance();
        return p;
      }
      case Tok::kStar:
        Advance();
        return Wildcard();
      case Tok::kLParen: {
        Advance();
        SMOQE_ASSIGN_OR_RETURN(PathPtr p, ParseUnion());
        if (!Consume(Tok::kRParen)) return Err("expected ')'");
        return p;
      }
      default:
        return Err("expected a path step");
    }
  }

  StatusOr<FilterPtr> ParseOrF() {
    SMOQE_ASSIGN_OR_RETURN(FilterPtr a, ParseAndF());
    while (Consume(Tok::kOr)) {
      SMOQE_ASSIGN_OR_RETURN(FilterPtr b, ParseAndF());
      a = FOr(a, b);
    }
    return a;
  }

  StatusOr<FilterPtr> ParseAndF() {
    SMOQE_ASSIGN_OR_RETURN(FilterPtr a, ParseNotF());
    while (Consume(Tok::kAnd)) {
      SMOQE_ASSIGN_OR_RETURN(FilterPtr b, ParseNotF());
      a = FAnd(a, b);
    }
    return a;
  }

  StatusOr<FilterPtr> ParseNotF() {
    if (Consume(Tok::kNot)) {
      if (!Consume(Tok::kLParen)) return Err("expected '(' after 'not'");
      SMOQE_ASSIGN_OR_RETURN(FilterPtr f, ParseOrF());
      if (!Consume(Tok::kRParen)) return Err("expected ')' after 'not(...'");
      return FNot(f);
    }
    return ParseAtomF();
  }

  StatusOr<FilterPtr> ParseAtomF() {
    if (Consume(Tok::kTextFn)) {
      if (!Consume(Tok::kEq)) return Err("expected '=' after text()");
      if (Peek() != Tok::kString) return Err("expected a string literal");
      std::string value = Cur().text;
      Advance();
      return FTextEquals(Eps(), std::move(value));
    }
    if (Consume(Tok::kPosFn)) {
      if (!Consume(Tok::kEq)) return Err("expected '=' after position()");
      if (Peek() != Tok::kNumber) return Err("expected a number");
      int k = std::atoi(Cur().text.c_str());
      Advance();
      return FPositionEquals(k);
    }
    // Try a path atom first; '(' may open either a path group or a boolean
    // group, and only paths can continue with '/', '*', '[' or '|'.
    size_t saved = ti_;
    StatusOr<PathPtr> path = ParseUnion();
    if (path.ok()) {
      PathPtr p = path.take();
      if (Peek() == Tok::kSlash && Peek(1) == Tok::kTextFn) {
        Advance();
        Advance();
        if (!Consume(Tok::kEq)) return Err("expected '=' after text()");
        if (Peek() != Tok::kString) return Err("expected a string literal");
        std::string value = Cur().text;
        Advance();
        return FTextEquals(p, std::move(value));
      }
      return FPath(p);
    }
    ti_ = saved;
    if (Consume(Tok::kLParen)) {
      SMOQE_ASSIGN_OR_RETURN(FilterPtr f, ParseOrF());
      if (!Consume(Tok::kRParen)) return Err("expected ')'");
      return f;
    }
    return path.status();
  }

  std::vector<Token> toks_;
  size_t ti_ = 0;
};

}  // namespace

StatusOr<PathPtr> ParseQuery(std::string_view input) {
  SMOQE_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(input));
  return QueryParser(std::move(toks)).ParseWholeQuery();
}

StatusOr<FilterPtr> ParseFilterExpr(std::string_view input) {
  SMOQE_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(input));
  return QueryParser(std::move(toks)).ParseWholeFilter();
}

}  // namespace smoqe::xpath
