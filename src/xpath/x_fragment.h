// The XPath fragment X (Section 2.1): Xreg where the only Kleene star is the
// desugared descendant-or-self axis (*)*.

#ifndef SMOQE_XPATH_X_FRAGMENT_H_
#define SMOQE_XPATH_X_FRAGMENT_H_

#include "xpath/ast.h"

namespace smoqe::xpath {

/// True iff every kStar node (in selection paths and filters) has a wildcard
/// body, i.e. the query is expressible with '//' alone.
bool IsInXFragment(const PathPtr& p);
bool IsInXFragment(const FilterPtr& f);

/// True iff the query uses a Kleene star anywhere (incl. '//').
bool UsesStar(const PathPtr& p);

/// True iff the query uses position() anywhere (rewriting rejects these).
bool UsesPosition(const PathPtr& p);
bool UsesPosition(const FilterPtr& f);

}  // namespace smoqe::xpath

#endif  // SMOQE_XPATH_X_FRAGMENT_H_
