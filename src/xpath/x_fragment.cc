#include "xpath/x_fragment.h"

namespace smoqe::xpath {

bool IsInXFragment(const FilterPtr& f);

bool IsInXFragment(const PathPtr& p) {
  if (p == nullptr) return true;
  if (p->kind == PathKind::kStar && p->left->kind != PathKind::kWildcard) {
    return false;
  }
  return IsInXFragment(p->left) && IsInXFragment(p->right) &&
         IsInXFragment(p->filter);
}

bool IsInXFragment(const FilterPtr& f) {
  if (f == nullptr) return true;
  return IsInXFragment(f->path) && IsInXFragment(f->left) &&
         IsInXFragment(f->right);
}

namespace {
bool UsesStarF(const FilterPtr& f);

bool UsesStarP(const PathPtr& p) {
  if (p == nullptr) return false;
  if (p->kind == PathKind::kStar) return true;
  return UsesStarP(p->left) || UsesStarP(p->right) || UsesStarF(p->filter);
}

bool UsesStarF(const FilterPtr& f) {
  if (f == nullptr) return false;
  return UsesStarP(f->path) || UsesStarF(f->left) || UsesStarF(f->right);
}
}  // namespace

bool UsesStar(const PathPtr& p) { return UsesStarP(p); }

bool UsesPosition(const FilterPtr& f) {
  if (f == nullptr) return false;
  if (f->kind == FilterKind::kPositionEquals) return true;
  return UsesPosition(f->path) || UsesPosition(f->left) || UsesPosition(f->right);
}

bool UsesPosition(const PathPtr& p) {
  if (p == nullptr) return false;
  return UsesPosition(p->left) || UsesPosition(p->right) || UsesPosition(p->filter);
}

}  // namespace smoqe::xpath
