// MFA optimizer: removes states that cannot contribute to any answer.
//
// The product construction of Algorithm rewrite (Section 5) systematically
// creates selecting states for (query position, view type) pairs that turn
// out to be dead ends -- e.g. a label step under a view type that cannot
// produce it -- and AFA fragments referenced only by such states. Trimming
// keeps the automaton small, which matters because every evaluator's
// per-node cost scales with the live state sets (Theorem 6.1's |M| factor).

#ifndef SMOQE_AUTOMATA_OPTIMIZER_H_
#define SMOQE_AUTOMATA_OPTIMIZER_H_

#include "automata/mfa.h"

namespace smoqe::automata {

struct TrimStats {
  int nfa_before = 0;
  int nfa_after = 0;
  int afa_before = 0;
  int afa_after = 0;
};

/// Returns an equivalent MFA containing only
///  - selecting states reachable from the start *and* able to reach a final
///    state (over-approximating annotations as satisfiable), and
///  - AFA states reachable from some surviving annotation entry.
/// Labels are re-interned, ids remapped. The result evaluates to the same
/// answer set on every tree (tested property).
Mfa TrimMfa(const Mfa& mfa, TrimStats* stats = nullptr);

}  // namespace smoqe::automata

#endif  // SMOQE_AUTOMATA_OPTIMIZER_H_
