// Reference AFA truth evaluation (used by the conceptual evaluator, tests
// and as the specification HyPE's synthesized evaluation must match).
//
// The truth X(n, s) of AFA state s at tree node n is the least fixpoint of
//   final:  predicate holds at n (no predicate = true)
//   trans:  some element child c of n with a matching label has X(c, target)
//   OR:     some operand true at n;  AND: all operands true at n
//   NOT:    operand false at n
// Cycles pass only through OR/transition states (split property), so the
// system is stratified and the fixpoint is well-defined.

#ifndef SMOQE_AUTOMATA_AFA_H_
#define SMOQE_AUTOMATA_AFA_H_

#include <vector>

#include "automata/mfa.h"
#include "xml/tree.h"

namespace smoqe::automata {

/// True iff the final-state predicate of `s` holds at `node`.
bool FinalPredHolds(const AfaState& s, const xml::Tree& tree, xml::NodeId node);

/// Evaluates X(node, entry) by collecting all requested (state, node) pairs
/// in the subtree and chaotically iterating to the stratified fixpoint.
/// Deliberately simple; one full (sub)tree pass per call, like the
/// "conceptual evaluation" of Section 4.
bool EvalAfaNaive(const Mfa& mfa, const std::vector<LabelId>& binding,
                  const xml::Tree& tree, StateId entry, xml::NodeId node);

}  // namespace smoqe::automata

#endif  // SMOQE_AUTOMATA_AFA_H_
