// The "conceptual evaluation" of MFAs from Section 4: a top-down run of the
// selecting NFA that, whenever an annotated state is reached, evaluates the
// AFA with a separate pass over the subtree (one pass per filter occurrence).
//
// This is the specification-level evaluator: correct, simple, and with the
// multi-pass cost profile HyPE (Section 6) was designed to avoid. It serves
// as an oracle in tests and as the ablation baseline bench_ablation_passes.

#ifndef SMOQE_AUTOMATA_CONCEPTUAL_EVAL_H_
#define SMOQE_AUTOMATA_CONCEPTUAL_EVAL_H_

#include <vector>

#include "automata/mfa.h"
#include "xml/tree.h"

namespace smoqe::automata {

class ConceptualEvaluator {
 public:
  ConceptualEvaluator(const xml::Tree& tree, const Mfa& mfa);

  /// n[[M]]: sorted node ids reachable at a final state through a run whose
  /// annotated states all have true AFAs.
  std::vector<xml::NodeId> Eval(xml::NodeId context);

  /// Number of AFA evaluations performed by the last Eval (each is a separate
  /// subtree pass -- the cost HyPE's single pass eliminates).
  int64_t afa_passes() const { return afa_passes_; }

 private:
  /// ε-closure keeping only states whose annotation holds at `node`.
  std::vector<StateId> ValidClosure(std::vector<StateId> states,
                                    xml::NodeId node);
  void Visit(xml::NodeId node, const std::vector<StateId>& states,
             std::vector<xml::NodeId>* out);

  const xml::Tree& tree_;
  const Mfa& mfa_;
  std::vector<LabelId> binding_;  // MFA label id -> tree label id
  int64_t afa_passes_ = 0;
};

}  // namespace smoqe::automata

#endif  // SMOQE_AUTOMATA_CONCEPTUAL_EVAL_H_
