// CompiledMfa: a dense, read-only mirror of an Mfa.
//
// The Mfa of mfa.h is built for construction: vectors-of-vectors that the
// compiler and rewriters grow freely. Every evaluator, however, only ever
// READS the automaton -- and reads it millions of times per pass, from many
// threads at once. CompiledMfa flattens the whole automaton into contiguous
// CSR arrays once, so the hot transition loops walk cache-line-friendly
// slices instead of chasing one heap vector per state:
//
//   * selecting-NFA transitions (labeled and wildcard moves in separate
//     slices), ε-edges, and the full per-state ε-CLOSURE (so NextNFAStates
//     replaces its BFS with precomputed sorted runs);
//   * final-state and final-AFA bitsets, per-state λ annotation entries;
//   * the AFA arena as struct-of-arrays (kind / label / target / operand
//     CSR), laid out with a STRATIFIED evaluation order: afa_rank is a
//     dependency-first order of the AFA graph's strongly connected
//     components, so an operator's operands precede it unless they share a
//     Kleene cycle (afa_scc equality) -- exactly the split-property
//     stratification Theorem 4.1 guarantees. Evaluators sweep operator
//     states in rank order and need fixpoint iteration only on genuine
//     cycles.
//
// One CompiledMfa is built per query -- by rewrite::RewriteCache at
// compile/rewrite time -- and shared (shared_ptr, immutable) by every
// hype::TransitionPlane, engine, shard, and service batch that evaluates the
// query. It carries no document-side state: label ids are the Mfa's own; the
// TransitionPlane binds them to a concrete tree's label table.

#ifndef SMOQE_AUTOMATA_COMPILED_MFA_H_
#define SMOQE_AUTOMATA_COMPILED_MFA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "automata/mfa.h"

namespace smoqe::automata {

struct CompiledMfa {
  /// A labeled (non-wildcard) selecting move. Wildcard moves live in the
  /// separate `wild` slices so the label-match loop never tests a flag.
  struct Edge {
    LabelId label;
    StateId to;
  };

  // ---- selecting NFA (all CSR, offset arrays sized num_nfa + 1) ----
  std::vector<int32_t> trans_begin;
  std::vector<Edge> trans;
  std::vector<int32_t> wild_begin;
  std::vector<StateId> wild;
  std::vector<int32_t> eps_begin;
  std::vector<StateId> eps;
  /// Full ε-closure of each state (the state itself included), sorted.
  std::vector<int32_t> closure_begin;
  std::vector<StateId> closure;
  std::vector<uint64_t> nfa_final;  // bitset over NFA states
  std::vector<StateId> afa_entry;   // λ annotation per NFA state (kNoState)

  // ---- AFA arena, struct-of-arrays ----
  std::vector<AfaKind> afa_kind;
  std::vector<LabelId> afa_label;   // kTrans move label (kNoLabel otherwise)
  std::vector<uint8_t> afa_wild;    // kTrans wildcard flag
  std::vector<StateId> afa_target;  // kTrans move target (kNoState otherwise)
  std::vector<int32_t> operand_begin;  // afa + 1
  std::vector<StateId> operands;
  std::vector<uint64_t> afa_final;  // bitset: kind == kFinal

  // ---- stratified (split-property) evaluation order ----
  /// Dependency-first order of the AFA graph: rank[operand] < rank[operator]
  /// whenever the two lie in different strongly connected components; ranks
  /// are unique per state.
  std::vector<int32_t> afa_rank;
  /// Strongly-connected-component id per AFA state; an operator sharing a
  /// component with an operand sits on a Kleene cycle (needs iteration).
  std::vector<int32_t> afa_scc;

  StateId start = kNoState;

  int num_nfa_states() const { return static_cast<int>(afa_entry.size()); }
  int num_afa_states() const { return static_cast<int>(afa_kind.size()); }

  bool IsNfaFinal(StateId s) const {
    return (nfa_final[s >> 6] >> (s & 63)) & 1;
  }
  bool IsAfaFinal(StateId s) const {
    return (afa_final[s >> 6] >> (s & 63)) & 1;
  }

  std::span<const Edge> TransOf(StateId s) const {
    return {trans.data() + trans_begin[s],
            trans.data() + trans_begin[s + 1]};
  }
  std::span<const StateId> WildOf(StateId s) const {
    return {wild.data() + wild_begin[s], wild.data() + wild_begin[s + 1]};
  }
  std::span<const StateId> EpsOf(StateId s) const {
    return {eps.data() + eps_begin[s], eps.data() + eps_begin[s + 1]};
  }
  std::span<const StateId> ClosureOf(StateId s) const {
    return {closure.data() + closure_begin[s],
            closure.data() + closure_begin[s + 1]};
  }
  std::span<const StateId> OperandsOf(StateId s) const {
    return {operands.data() + operand_begin[s],
            operands.data() + operand_begin[s + 1]};
  }

  /// Flattens `mfa`. The result references nothing in `mfa` and never
  /// changes afterwards; share it freely across threads.
  static CompiledMfa Build(const Mfa& mfa);
};

}  // namespace smoqe::automata

#endif  // SMOQE_AUTOMATA_COMPILED_MFA_H_
