#include "automata/compiler.h"

#include <cassert>
#include <utility>

namespace smoqe::automata {

StateId MfaBuilder::NewNfaState() {
  mfa_.nfa.emplace_back();
  return static_cast<StateId>(mfa_.nfa.size() - 1);
}

void MfaBuilder::AddEps(StateId from, StateId to) {
  mfa_.nfa[from].eps.push_back(to);
}

void MfaBuilder::AddTrans(StateId from, std::string_view label, bool wildcard,
                          StateId to) {
  NfaTransition t;
  t.wildcard = wildcard;
  t.label = wildcard ? kNoLabel : mfa_.labels.Intern(label);
  t.to = to;
  mfa_.nfa[from].trans.push_back(t);
}

void MfaBuilder::Annotate(StateId s, StateId afa_entry) {
  // A state can carry at most one annotation (the paper's lambda is a partial
  // map to a single X_i); callers needing a conjunction insert an eps step.
  assert(mfa_.nfa[s].afa_entry == kNoState);
  mfa_.nfa[s].afa_entry = afa_entry;
}

void MfaBuilder::MarkFinal(StateId s) { mfa_.nfa[s].is_final = true; }

StateId MfaBuilder::NewOr(std::vector<StateId> operands) {
  AfaState a;
  a.kind = AfaKind::kOr;
  a.operands = std::move(operands);
  mfa_.afa.push_back(std::move(a));
  return static_cast<StateId>(mfa_.afa.size() - 1);
}

StateId MfaBuilder::NewAnd(std::vector<StateId> operands) {
  AfaState a;
  a.kind = AfaKind::kAnd;
  a.operands = std::move(operands);
  mfa_.afa.push_back(std::move(a));
  return static_cast<StateId>(mfa_.afa.size() - 1);
}

StateId MfaBuilder::NewNot(StateId operand) {
  AfaState a;
  a.kind = AfaKind::kNot;
  a.operands = {operand};
  mfa_.afa.push_back(std::move(a));
  return static_cast<StateId>(mfa_.afa.size() - 1);
}

StateId MfaBuilder::NewAfaTrans(std::string_view label, bool wildcard,
                                StateId target) {
  AfaState a;
  a.kind = AfaKind::kTrans;
  a.wildcard = wildcard;
  a.label = wildcard ? kNoLabel : mfa_.labels.Intern(label);
  a.target = target;
  mfa_.afa.push_back(std::move(a));
  return static_cast<StateId>(mfa_.afa.size() - 1);
}

StateId MfaBuilder::NewFinal(PredKind pred, std::string text, int position) {
  AfaState a;
  a.kind = AfaKind::kFinal;
  a.pred = pred;
  a.text = std::move(text);
  a.position = position;
  mfa_.afa.push_back(std::move(a));
  return static_cast<StateId>(mfa_.afa.size() - 1);
}

void MfaBuilder::SetOrOperands(StateId or_state, std::vector<StateId> operands) {
  assert(mfa_.afa[or_state].kind == AfaKind::kOr);
  mfa_.afa[or_state].operands = std::move(operands);
}

MfaBuilder::Frag MfaBuilder::BuildSelecting(const xpath::PathPtr& p) {
  using xpath::PathKind;
  switch (p->kind) {
    case PathKind::kEmpty: {
      StateId s = NewNfaState();
      return {s, s};
    }
    case PathKind::kLabel: {
      StateId entry = NewNfaState();
      StateId exit = NewNfaState();
      AddTrans(entry, p->label, /*wildcard=*/false, exit);
      return {entry, exit};
    }
    case PathKind::kWildcard: {
      StateId entry = NewNfaState();
      StateId exit = NewNfaState();
      AddTrans(entry, "", /*wildcard=*/true, exit);
      return {entry, exit};
    }
    case PathKind::kSeq: {
      Frag f1 = BuildSelecting(p->left);
      Frag f2 = BuildSelecting(p->right);
      AddEps(f1.exit, f2.entry);
      return {f1.entry, f2.exit};
    }
    case PathKind::kUnion: {
      StateId entry = NewNfaState();
      StateId exit = NewNfaState();
      Frag f1 = BuildSelecting(p->left);
      Frag f2 = BuildSelecting(p->right);
      AddEps(entry, f1.entry);
      AddEps(entry, f2.entry);
      AddEps(f1.exit, exit);
      AddEps(f2.exit, exit);
      return {entry, exit};
    }
    case PathKind::kStar: {
      StateId entry = NewNfaState();
      StateId exit = NewNfaState();
      Frag body = BuildSelecting(p->left);
      AddEps(entry, body.entry);
      AddEps(entry, exit);
      AddEps(body.exit, body.entry);
      AddEps(body.exit, exit);
      return {entry, exit};
    }
    case PathKind::kFilter: {
      Frag f = BuildSelecting(p->left);
      StateId guard = NewNfaState();
      Annotate(guard, BuildFilterAfa(p->filter));
      AddEps(f.exit, guard);
      return {f.entry, guard};
    }
  }
  return {};
}

StateId MfaBuilder::BuildFilterAfa(const xpath::FilterPtr& f) {
  using xpath::FilterKind;
  switch (f->kind) {
    case FilterKind::kPath:
      return BuildAfaPath(f->path, NewFinal(PredKind::kNone));
    case FilterKind::kTextEquals:
      return BuildAfaPath(f->path, NewFinal(PredKind::kTextEquals, f->text));
    case FilterKind::kPositionEquals:
      return NewFinal(PredKind::kPositionEquals, "", f->position);
    case FilterKind::kNot:
      return NewNot(BuildFilterAfa(f->left));
    case FilterKind::kAnd:
      return NewAnd({BuildFilterAfa(f->left), BuildFilterAfa(f->right)});
    case FilterKind::kOr:
      return NewOr({BuildFilterAfa(f->left), BuildFilterAfa(f->right)});
  }
  return kNoState;
}

StateId MfaBuilder::BuildAfaPath(const xpath::PathPtr& p, StateId cont) {
  using xpath::PathKind;
  switch (p->kind) {
    case PathKind::kEmpty:
      return cont;
    case PathKind::kLabel:
      return NewAfaTrans(p->label, /*wildcard=*/false, cont);
    case PathKind::kWildcard:
      return NewAfaTrans("", /*wildcard=*/true, cont);
    case PathKind::kSeq:
      return BuildAfaPath(p->left, BuildAfaPath(p->right, cont));
    case PathKind::kUnion:
      return NewOr({BuildAfaPath(p->left, cont), BuildAfaPath(p->right, cont)});
    case PathKind::kStar: {
      StateId loop = NewOr({});
      StateId body = BuildAfaPath(p->left, loop);
      SetOrOperands(loop, {cont, body});
      return loop;
    }
    case PathKind::kFilter: {
      StateId inner = BuildFilterAfa(p->filter);
      StateId joint = NewAnd({inner, cont});
      return BuildAfaPath(p->left, joint);
    }
  }
  return kNoState;
}

Mfa CompileQuery(const xpath::PathPtr& q) {
  Mfa mfa;
  MfaBuilder builder(&mfa);
  MfaBuilder::Frag frag = builder.BuildSelecting(q);
  mfa.start = frag.entry;
  builder.MarkFinal(frag.exit);
  return mfa;
}

}  // namespace smoqe::automata
