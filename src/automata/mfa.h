// Mixed finite state automata (MFA), Section 4 of the paper.
//
// An MFA is a selecting NFA whose states may be annotated (the λ mapping)
// with alternating finite automata (AFA). The NFA captures the
// data-selecting paths of an Xreg query; each AFA captures one filter.
//
// AFA states follow the paper's normal form exactly:
//   - operator states   AND / OR / NOT : ε-moves to their operands only
//   - transition states : exactly one label (or wildcard) move to one state
//   - final states      : no moves; optionally a predicate text()='c' or
//                         position()=k
// All AFAs of an MFA live in one shared state arena (`afa`); a binding
// X_i = AFA_i is just an entry StateId. Nested filters are flattened into a
// single AFA by construction (Section 5), so entries never "call" other
// entries at the same tree node except through ordinary ε-operands.
//
// Split-property invariant (Theorem 4.1): no NOT state lies on a cycle of
// the AFA graph (cycles arise only from Kleene stars and pass through
// monotone OR/AND/transition states). This makes the per-node truth
// assignment the least fixpoint of a stratified monotone system, which every
// evaluator in this repository relies on. HasSplitProperty() checks it.

#ifndef SMOQE_AUTOMATA_MFA_H_
#define SMOQE_AUTOMATA_MFA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/name_table.h"

namespace smoqe::automata {

using StateId = int32_t;
inline constexpr StateId kNoState = -1;

// ---------- Selecting NFA ----------

struct NfaTransition {
  LabelId label = kNoLabel;  // interned in Mfa::labels
  bool wildcard = false;     // matches any element label
  StateId to = kNoState;
};

struct NfaState {
  std::vector<NfaTransition> trans;
  std::vector<StateId> eps;
  bool is_final = false;
  StateId afa_entry = kNoState;  // λ annotation, or kNoState
};

// ---------- AFA ----------

enum class AfaKind : uint8_t { kAnd, kOr, kNot, kTrans, kFinal };

enum class PredKind : uint8_t { kNone, kTextEquals, kPositionEquals };

struct AfaState {
  AfaKind kind = AfaKind::kOr;
  // kTrans:
  LabelId label = kNoLabel;
  bool wildcard = false;
  StateId target = kNoState;
  // kAnd / kOr operands; kNot has exactly one.
  std::vector<StateId> operands;
  // kFinal:
  PredKind pred = PredKind::kNone;
  std::string text;   // kTextEquals constant
  int position = 0;   // kPositionEquals constant
};

// ---------- MFA ----------

struct Mfa {
  std::vector<NfaState> nfa;
  StateId start = kNoState;
  std::vector<AfaState> afa;
  NameTable labels;  // label alphabet shared by NFA and AFA transitions

  int num_nfa_states() const { return static_cast<int>(nfa.size()); }
  int num_afa_states() const { return static_cast<int>(afa.size()); }

  /// |M|: states plus transitions/operand edges, the measure in Theorems 5.1
  /// and 6.1.
  int64_t SizeMeasure() const;

  /// Graphviz rendering (selecting NFA solid, AFAs dashed), for debugging and
  /// the documentation.
  std::string ToDot() const;
};

/// ε-closure of `states` (sorted ids in, sorted ids out).
void EpsClosure(const Mfa& mfa, std::vector<StateId>* states);

/// States reachable from `states` by a transition matching an element with
/// tree-side label `tree_label`, where `binding[mfa_label]` gives the
/// tree-side id of an MFA label (kNoLabel when the tree never saw it).
/// Returns the move set *without* ε-closure.
std::vector<StateId> Move(const Mfa& mfa, const std::vector<StateId>& states,
                          const std::vector<LabelId>& binding, LabelId tree_label);

/// Checks the split-property invariant: no AND / NOT state lies on a cycle of
/// the AFA graph (ε-operand edges and transition edges alike).
bool HasSplitProperty(const Mfa& mfa);

/// Verifies structural well-formedness: targets in range, operator arities,
/// final states without moves, NOT with exactly one operand. Returns a
/// human-readable problem list (empty = well-formed).
std::vector<std::string> CheckWellFormed(const Mfa& mfa);

}  // namespace smoqe::automata

#endif  // SMOQE_AUTOMATA_MFA_H_
