#include "automata/optimizer.h"

#include <vector>

namespace smoqe::automata {

namespace {

// Forward reachability over the selecting NFA from the start state.
std::vector<bool> ReachableFromStart(const Mfa& mfa) {
  std::vector<bool> seen(mfa.nfa.size(), false);
  if (mfa.start == kNoState) return seen;
  std::vector<StateId> work = {mfa.start};
  seen[mfa.start] = true;
  while (!work.empty()) {
    StateId s = work.back();
    work.pop_back();
    auto push = [&](StateId t) {
      if (!seen[t]) {
        seen[t] = true;
        work.push_back(t);
      }
    };
    for (const NfaTransition& t : mfa.nfa[s].trans) push(t.to);
    for (StateId e : mfa.nfa[s].eps) push(e);
  }
  return seen;
}

// Backward reachability: states from which some final state is reachable.
std::vector<bool> CanReachFinal(const Mfa& mfa) {
  int n = mfa.num_nfa_states();
  std::vector<std::vector<StateId>> rev(n);
  std::vector<StateId> work;
  std::vector<bool> seen(n, false);
  for (StateId s = 0; s < n; ++s) {
    for (const NfaTransition& t : mfa.nfa[s].trans) rev[t.to].push_back(s);
    for (StateId e : mfa.nfa[s].eps) rev[e].push_back(s);
    if (mfa.nfa[s].is_final) {
      seen[s] = true;
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    StateId s = work.back();
    work.pop_back();
    for (StateId p : rev[s]) {
      if (!seen[p]) {
        seen[p] = true;
        work.push_back(p);
      }
    }
  }
  return seen;
}

// AFA states reachable from the surviving annotation entries.
std::vector<bool> LiveAfaStates(const Mfa& mfa, const std::vector<bool>& keep_nfa) {
  std::vector<bool> seen(mfa.afa.size(), false);
  std::vector<StateId> work;
  for (StateId s = 0; s < mfa.num_nfa_states(); ++s) {
    if (!keep_nfa[s]) continue;
    StateId e = mfa.nfa[s].afa_entry;
    if (e != kNoState && !seen[e]) {
      seen[e] = true;
      work.push_back(e);
    }
  }
  while (!work.empty()) {
    StateId s = work.back();
    work.pop_back();
    auto push = [&](StateId t) {
      if (t != kNoState && !seen[t]) {
        seen[t] = true;
        work.push_back(t);
      }
    };
    for (StateId o : mfa.afa[s].operands) push(o);
    push(mfa.afa[s].target);
  }
  return seen;
}

}  // namespace

Mfa TrimMfa(const Mfa& mfa, TrimStats* stats) {
  std::vector<bool> fwd = ReachableFromStart(mfa);
  std::vector<bool> bwd = CanReachFinal(mfa);
  std::vector<bool> keep(mfa.nfa.size());
  for (size_t s = 0; s < mfa.nfa.size(); ++s) keep[s] = fwd[s] && bwd[s];
  // The start state must survive even when the language is empty, so the
  // result stays a well-formed MFA.
  if (mfa.start != kNoState) keep[mfa.start] = true;

  std::vector<bool> live_afa = LiveAfaStates(mfa, keep);

  Mfa out;
  std::vector<StateId> nfa_map(mfa.nfa.size(), kNoState);
  std::vector<StateId> afa_map(mfa.afa.size(), kNoState);
  for (StateId s = 0; s < mfa.num_nfa_states(); ++s) {
    if (!keep[s]) continue;
    nfa_map[s] = static_cast<StateId>(out.nfa.size());
    out.nfa.emplace_back();
  }
  for (StateId s = 0; s < mfa.num_afa_states(); ++s) {
    if (!live_afa[s]) continue;
    afa_map[s] = static_cast<StateId>(out.afa.size());
    out.afa.emplace_back();
  }

  auto map_label = [&](LabelId l, bool wildcard) {
    return wildcard || l == kNoLabel ? kNoLabel
                                     : out.labels.Intern(mfa.labels.name(l));
  };

  for (StateId s = 0; s < mfa.num_nfa_states(); ++s) {
    if (nfa_map[s] == kNoState) continue;
    const NfaState& src = mfa.nfa[s];
    NfaState& dst = out.nfa[nfa_map[s]];
    dst.is_final = src.is_final;
    dst.afa_entry =
        src.afa_entry == kNoState ? kNoState : afa_map[src.afa_entry];
    for (const NfaTransition& t : src.trans) {
      if (nfa_map[t.to] == kNoState) continue;
      dst.trans.push_back(
          {map_label(t.label, t.wildcard), t.wildcard, nfa_map[t.to]});
    }
    for (StateId e : src.eps) {
      if (nfa_map[e] != kNoState) dst.eps.push_back(nfa_map[e]);
    }
  }
  for (StateId s = 0; s < mfa.num_afa_states(); ++s) {
    if (afa_map[s] == kNoState) continue;
    const AfaState& src = mfa.afa[s];
    AfaState& dst = out.afa[afa_map[s]];
    dst.kind = src.kind;
    dst.wildcard = src.wildcard;
    dst.label = map_label(src.label, src.wildcard);
    dst.target = src.target == kNoState ? kNoState : afa_map[src.target];
    dst.pred = src.pred;
    dst.text = src.text;
    dst.position = src.position;
    for (StateId o : src.operands) dst.operands.push_back(afa_map[o]);
  }
  out.start = mfa.start == kNoState ? kNoState : nfa_map[mfa.start];

  if (stats != nullptr) {
    stats->nfa_before = mfa.num_nfa_states();
    stats->nfa_after = out.num_nfa_states();
    stats->afa_before = mfa.num_afa_states();
    stats->afa_after = out.num_afa_states();
  }
  return out;
}

}  // namespace smoqe::automata
