#include "automata/mfa.h"

#include <algorithm>

namespace smoqe::automata {

int64_t Mfa::SizeMeasure() const {
  int64_t size = 0;
  for (const NfaState& s : nfa) {
    size += 1 + static_cast<int64_t>(s.trans.size() + s.eps.size());
  }
  for (const AfaState& s : afa) {
    size += 1 + static_cast<int64_t>(s.operands.size()) +
            (s.kind == AfaKind::kTrans ? 1 : 0);
  }
  return size;
}

std::string Mfa::ToDot() const {
  std::string out = "digraph mfa {\n  rankdir=LR;\n";
  auto nfa_name = [](StateId s) { return "n" + std::to_string(s); };
  auto afa_name = [](StateId s) { return "a" + std::to_string(s); };
  for (StateId s = 0; s < num_nfa_states(); ++s) {
    out += "  " + nfa_name(s) + " [label=\"s" + std::to_string(s) + "\"";
    if (nfa[s].is_final) out += ", shape=doublecircle";
    out += "];\n";
    if (nfa[s].afa_entry != kNoState) {
      out += "  " + nfa_name(s) + " -> " + afa_name(nfa[s].afa_entry) +
             " [style=dotted, label=\"lambda\"];\n";
    }
    for (const NfaTransition& t : nfa[s].trans) {
      out += "  " + nfa_name(s) + " -> " + nfa_name(t.to) + " [label=\"" +
             (t.wildcard ? std::string("*") : labels.name(t.label)) + "\"];\n";
    }
    for (StateId e : nfa[s].eps) {
      out += "  " + nfa_name(s) + " -> " + nfa_name(e) + " [label=\"eps\"];\n";
    }
  }
  for (StateId s = 0; s < num_afa_states(); ++s) {
    const AfaState& a = afa[s];
    std::string label;
    switch (a.kind) {
      case AfaKind::kAnd: label = "AND"; break;
      case AfaKind::kOr: label = "OR"; break;
      case AfaKind::kNot: label = "NOT"; break;
      case AfaKind::kTrans: label = "trans"; break;
      case AfaKind::kFinal:
        label = "final";
        if (a.pred == PredKind::kTextEquals) label += " text=" + a.text;
        if (a.pred == PredKind::kPositionEquals) {
          label += " pos=" + std::to_string(a.position);
        }
        break;
    }
    out += "  " + afa_name(s) + " [shape=box, style=dashed, label=\"" + label +
           "\"];\n";
    if (a.kind == AfaKind::kTrans) {
      out += "  " + afa_name(s) + " -> " + afa_name(a.target) + " [label=\"" +
             (a.wildcard ? std::string("*") : labels.name(a.label)) + "\"];\n";
    }
    for (StateId o : a.operands) {
      out += "  " + afa_name(s) + " -> " + afa_name(o) + " [label=\"eps\"];\n";
    }
  }
  out += "}\n";
  return out;
}

void EpsClosure(const Mfa& mfa, std::vector<StateId>* states) {
  std::vector<StateId> work(*states);
  std::vector<bool> seen(mfa.nfa.size(), false);
  for (StateId s : work) seen[s] = true;
  while (!work.empty()) {
    StateId s = work.back();
    work.pop_back();
    for (StateId e : mfa.nfa[s].eps) {
      if (!seen[e]) {
        seen[e] = true;
        states->push_back(e);
        work.push_back(e);
      }
    }
  }
  std::sort(states->begin(), states->end());
}

std::vector<StateId> Move(const Mfa& mfa, const std::vector<StateId>& states,
                          const std::vector<LabelId>& binding,
                          LabelId tree_label) {
  std::vector<StateId> out;
  for (StateId s : states) {
    for (const NfaTransition& t : mfa.nfa[s].trans) {
      if (t.wildcard || (t.label != kNoLabel && binding[t.label] == tree_label)) {
        out.push_back(t.to);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool HasSplitProperty(const Mfa& mfa) {
  // Find every AFA state on a cycle (Tarjan SCCs of size > 1, or with a
  // self-loop) and require it to be monotone (not NOT). AND/OR/transition
  // states on cycles keep the truth system a monotone least fixpoint;
  // only negation must be stratified.
  int n = mfa.num_afa_states();
  std::vector<int> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<StateId> stack;
  int next_index = 0;
  auto edges = [&](StateId s) {
    std::vector<StateId> out = mfa.afa[s].operands;
    if (mfa.afa[s].kind == AfaKind::kTrans && mfa.afa[s].target != kNoState) {
      out.push_back(mfa.afa[s].target);
    }
    return out;
  };
  struct Frame {
    StateId state;
    size_t edge = 0;
    std::vector<StateId> succ;
  };
  for (StateId root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames;
    frames.push_back({root, 0, edges(root)});
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < f.succ.size()) {
        StateId w = f.succ[f.edge++];
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0, edges(w)});
        } else if (on_stack[w]) {
          low[f.state] = std::min(low[f.state], index[w]);
        }
      } else {
        StateId v = f.state;
        if (low[v] == index[v]) {
          std::vector<StateId> scc;
          for (;;) {
            StateId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == v) break;
          }
          bool cyclic = scc.size() > 1;
          if (!cyclic) {
            for (StateId w : edges(v)) {
              if (w == v) cyclic = true;
            }
          }
          if (cyclic) {
            for (StateId w : scc) {
              if (mfa.afa[w].kind == AfaKind::kNot) return false;
            }
          }
        }
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().state] = std::min(low[frames.back().state], low[v]);
        }
      }
    }
  }
  return true;
}

std::vector<std::string> CheckWellFormed(const Mfa& mfa) {
  std::vector<std::string> problems;
  auto bad = [&](std::string m) { problems.push_back(std::move(m)); };
  if (mfa.start < 0 || mfa.start >= mfa.num_nfa_states()) {
    bad("start state out of range");
  }
  for (StateId s = 0; s < mfa.num_nfa_states(); ++s) {
    for (const NfaTransition& t : mfa.nfa[s].trans) {
      if (t.to < 0 || t.to >= mfa.num_nfa_states()) {
        bad("NFA transition target out of range");
      }
      if (!t.wildcard && t.label == kNoLabel) bad("NFA transition without label");
    }
    for (StateId e : mfa.nfa[s].eps) {
      if (e < 0 || e >= mfa.num_nfa_states()) bad("NFA eps target out of range");
    }
    StateId a = mfa.nfa[s].afa_entry;
    if (a != kNoState && (a < 0 || a >= mfa.num_afa_states())) {
      bad("lambda annotation out of range");
    }
  }
  for (StateId s = 0; s < mfa.num_afa_states(); ++s) {
    const AfaState& a = mfa.afa[s];
    for (StateId o : a.operands) {
      if (o < 0 || o >= mfa.num_afa_states()) bad("AFA operand out of range");
    }
    switch (a.kind) {
      case AfaKind::kNot:
        if (a.operands.size() != 1) bad("NOT state must have one operand");
        break;
      case AfaKind::kAnd:
      case AfaKind::kOr:
        break;
      case AfaKind::kTrans:
        if (!a.operands.empty()) bad("transition state with eps operands");
        if (a.target < 0 || a.target >= mfa.num_afa_states()) {
          bad("AFA transition target out of range");
        }
        if (!a.wildcard && a.label == kNoLabel) bad("AFA transition without label");
        break;
      case AfaKind::kFinal:
        if (!a.operands.empty() || a.target != kNoState) {
          bad("final state must have no moves");
        }
        break;
    }
  }
  return problems;
}

}  // namespace smoqe::automata
