// Compilation of Xreg queries into MFAs (the document-level construction
// underlying both standalone evaluation and Algorithm rewrite).
//
// Selecting paths follow a Thompson-style construction; each filter becomes
// an AFA fragment in the MFA's shared arena. Filters nested in paths attach
// through an AND joint (the "concatenate, don't nest" rule of Section 5), so
// one query yields one flat AFA arena regardless of nesting depth.

#ifndef SMOQE_AUTOMATA_COMPILER_H_
#define SMOQE_AUTOMATA_COMPILER_H_

#include <string_view>
#include <vector>

#include "automata/mfa.h"
#include "xpath/ast.h"

namespace smoqe::automata {

/// Incremental MFA construction. The rewriter drives this same builder when
/// it instantiates source-level fragments for view annotations.
class MfaBuilder {
 public:
  explicit MfaBuilder(Mfa* mfa) : mfa_(*mfa) {}

  struct Frag {
    StateId entry = kNoState;
    StateId exit = kNoState;
  };

  // -- low-level selecting-NFA construction --
  StateId NewNfaState();
  void AddEps(StateId from, StateId to);
  void AddTrans(StateId from, std::string_view label, bool wildcard, StateId to);
  void Annotate(StateId s, StateId afa_entry);
  void MarkFinal(StateId s);

  // -- low-level AFA construction --
  StateId NewOr(std::vector<StateId> operands);
  StateId NewAnd(std::vector<StateId> operands);
  StateId NewNot(StateId operand);
  StateId NewAfaTrans(std::string_view label, bool wildcard, StateId target);
  StateId NewFinal(PredKind pred, std::string text = "", int position = 0);
  void SetOrOperands(StateId or_state, std::vector<StateId> operands);

  // -- structural construction from ASTs --

  /// Thompson fragment for a selecting path (filters become AFAs).
  Frag BuildSelecting(const xpath::PathPtr& p);

  /// AFA entry for a filter, evaluated at the node the filter guards.
  StateId BuildFilterAfa(const xpath::FilterPtr& f);

  /// AFA entry for "some node reachable via `p` satisfies `cont`".
  StateId BuildAfaPath(const xpath::PathPtr& p, StateId cont);

 private:
  Mfa& mfa_;
};

/// Compiles a whole query: start state, final exit, all filters.
Mfa CompileQuery(const xpath::PathPtr& q);

}  // namespace smoqe::automata

#endif  // SMOQE_AUTOMATA_COMPILER_H_
