#include "automata/conceptual_eval.h"

#include <algorithm>

#include "automata/afa.h"

namespace smoqe::automata {

ConceptualEvaluator::ConceptualEvaluator(const xml::Tree& tree, const Mfa& mfa)
    : tree_(tree), mfa_(mfa) {
  binding_.resize(mfa_.labels.size());
  for (LabelId l = 0; l < mfa_.labels.size(); ++l) {
    binding_[l] = tree_.labels().Lookup(mfa_.labels.name(l));
  }
}

std::vector<StateId> ConceptualEvaluator::ValidClosure(
    std::vector<StateId> states, xml::NodeId node) {
  // Expand ε-edges, but only through states whose annotation evaluates true
  // at `node`: a run may occupy a state only if its filter holds there.
  std::vector<bool> seen(mfa_.nfa.size(), false);
  std::vector<StateId> valid;
  std::vector<StateId> work;
  auto admit = [&](StateId s) {
    if (seen[s]) return;
    seen[s] = true;
    StateId entry = mfa_.nfa[s].afa_entry;
    if (entry != kNoState) {
      ++afa_passes_;
      if (!EvalAfaNaive(mfa_, binding_, tree_, entry, node)) return;
    }
    valid.push_back(s);
    work.push_back(s);
  };
  for (StateId s : states) admit(s);
  while (!work.empty()) {
    StateId s = work.back();
    work.pop_back();
    for (StateId e : mfa_.nfa[s].eps) admit(e);
  }
  std::sort(valid.begin(), valid.end());
  return valid;
}

void ConceptualEvaluator::Visit(xml::NodeId node,
                                const std::vector<StateId>& states,
                                std::vector<xml::NodeId>* out) {
  for (StateId s : states) {
    if (mfa_.nfa[s].is_final) {
      out->push_back(node);
      break;
    }
  }
  for (xml::NodeId c = tree_.first_child(node); c != xml::kNullNode;
       c = tree_.next_sibling(c)) {
    if (!tree_.is_element(c)) continue;
    std::vector<StateId> moved = Move(mfa_, states, binding_, tree_.label(c));
    if (moved.empty()) continue;
    std::vector<StateId> next = ValidClosure(std::move(moved), c);
    if (!next.empty()) Visit(c, next, out);
  }
}

std::vector<xml::NodeId> ConceptualEvaluator::Eval(xml::NodeId context) {
  afa_passes_ = 0;
  std::vector<xml::NodeId> out;
  std::vector<StateId> start = ValidClosure({mfa_.start}, context);
  if (!start.empty()) Visit(context, start, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace smoqe::automata
