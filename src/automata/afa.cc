#include "automata/afa.h"

#include <cassert>
#include <unordered_map>
#include <utility>
#include <vector>

namespace smoqe::automata {

bool FinalPredHolds(const AfaState& s, const xml::Tree& tree, xml::NodeId node) {
  switch (s.pred) {
    case PredKind::kNone:
      return true;
    case PredKind::kTextEquals:
      return tree.HasText(node, s.text);
    case PredKind::kPositionEquals:
      return tree.child_index(node) == s.position;
  }
  return false;
}

namespace {

struct PairHash {
  size_t operator()(const std::pair<StateId, xml::NodeId>& p) const {
    return std::hash<int64_t>()((static_cast<int64_t>(p.first) << 32) ^
                                static_cast<uint32_t>(p.second));
  }
};

}  // namespace

bool EvalAfaNaive(const Mfa& mfa, const std::vector<LabelId>& binding,
                  const xml::Tree& tree, StateId entry, xml::NodeId node) {
  using Key = std::pair<StateId, xml::NodeId>;
  std::unordered_map<Key, bool, PairHash> value;

  // Phase 1: collect all requested (state, node) pairs.
  std::vector<Key> work = {{entry, node}};
  value[{entry, node}] = false;
  std::vector<Key> requested;
  while (!work.empty()) {
    auto [s, n] = work.back();
    work.pop_back();
    requested.push_back({s, n});
    const AfaState& st = mfa.afa[s];
    auto request = [&](StateId s2, xml::NodeId n2) {
      Key k{s2, n2};
      if (value.emplace(k, false).second) work.push_back(k);
    };
    switch (st.kind) {
      case AfaKind::kAnd:
      case AfaKind::kOr:
      case AfaKind::kNot:
        for (StateId o : st.operands) request(o, n);
        break;
      case AfaKind::kTrans:
        for (xml::NodeId c = tree.first_child(n); c != xml::kNullNode;
             c = tree.next_sibling(c)) {
          if (!tree.is_element(c)) continue;
          if (st.wildcard || binding[st.label] == tree.label(c)) {
            request(st.target, c);
          }
        }
        break;
      case AfaKind::kFinal:
        break;
    }
  }

  // Phase 2: chaotic iteration to the stratified fixpoint. Monotone parts
  // converge in <= |requested| rounds; each NOT flips at most once after its
  // operand stabilizes, so (#NOT strata + 1) * |requested| rounds suffice.
  bool changed = true;
  size_t rounds = 0;
  const size_t cap = (requested.size() + 2) * (requested.size() + 2);
  while (changed) {
    changed = false;
    assert(++rounds <= cap && "AFA fixpoint failed to converge");
    (void)rounds;
    (void)cap;
    for (const Key& k : requested) {
      auto [s, n] = k;
      const AfaState& st = mfa.afa[s];
      bool v = false;
      switch (st.kind) {
        case AfaKind::kFinal:
          v = FinalPredHolds(st, tree, n);
          break;
        case AfaKind::kTrans:
          for (xml::NodeId c = tree.first_child(n);
               c != xml::kNullNode && !v; c = tree.next_sibling(c)) {
            if (!tree.is_element(c)) continue;
            if (st.wildcard || binding[st.label] == tree.label(c)) {
              v = value[{st.target, c}];
            }
          }
          break;
        case AfaKind::kOr:
          for (StateId o : st.operands) v = v || value[{o, n}];
          break;
        case AfaKind::kAnd:
          v = true;
          for (StateId o : st.operands) v = v && value[{o, n}];
          break;
        case AfaKind::kNot:
          v = !value[{st.operands[0], n}];
          break;
      }
      bool& slot = value[k];
      if (slot != v) {
        slot = v;
        changed = true;
      }
    }
  }
  return value[{entry, node}];
}

}  // namespace smoqe::automata
