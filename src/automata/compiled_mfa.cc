#include "automata/compiled_mfa.h"

#include <algorithm>

namespace smoqe::automata {

namespace {

// Iterative Tarjan over the AFA dependency graph (operator -> operands,
// transition -> target). Components are emitted dependencies-first -- every
// component an operator depends on is numbered before the operator's own --
// which is exactly the stratified evaluation order the split property
// promises. Iterative so pathological filter nesting cannot overflow the C++
// stack.
struct AfaScc {
  std::vector<int32_t> scc;   // component id per state, emission order
  std::vector<int32_t> rank;  // unique per state, component-major
};

AfaScc ComputeAfaScc(const CompiledMfa& cm) {
  const int n = cm.num_afa_states();
  AfaScc out;
  out.scc.assign(n, -1);
  out.rank.assign(n, 0);
  std::vector<int32_t> low(n, 0), disc(n, -1);
  std::vector<char> on_stack(n, 0);
  std::vector<StateId> stack;
  int32_t timer = 0;
  int32_t num_scc = 0;
  int32_t next_rank = 0;

  auto successors = [&](StateId s) -> std::span<const StateId> {
    if (cm.afa_kind[s] == AfaKind::kTrans) {
      return {&cm.afa_target[s], cm.afa_target[s] == kNoState ? size_t{0}
                                                              : size_t{1}};
    }
    return cm.OperandsOf(s);
  };

  struct Frame {
    StateId s;
    size_t next_child;
  };
  std::vector<Frame> dfs;
  for (StateId root = 0; root < n; ++root) {
    if (disc[root] >= 0) continue;
    dfs.push_back({root, 0});
    disc[root] = low[root] = timer++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      std::span<const StateId> succ = successors(f.s);
      if (f.next_child < succ.size()) {
        StateId t = succ[f.next_child++];
        if (disc[t] < 0) {
          disc[t] = low[t] = timer++;
          stack.push_back(t);
          on_stack[t] = 1;
          dfs.push_back({t, 0});
        } else if (on_stack[t]) {
          low[f.s] = std::min(low[f.s], disc[t]);
        }
        continue;
      }
      // All children done: close the component if f.s is its root, then
      // fold low into the parent.
      if (low[f.s] == disc[f.s]) {
        int32_t id = num_scc++;
        StateId v;
        do {
          v = stack.back();
          stack.pop_back();
          on_stack[v] = 0;
          out.scc[v] = id;
          out.rank[v] = next_rank++;
        } while (v != f.s);
      }
      StateId done = f.s;
      dfs.pop_back();
      if (!dfs.empty()) {
        low[dfs.back().s] = std::min(low[dfs.back().s], low[done]);
      }
    }
  }
  return out;
}

}  // namespace

CompiledMfa CompiledMfa::Build(const Mfa& mfa) {
  CompiledMfa cm;
  const int n = mfa.num_nfa_states();
  const int m = mfa.num_afa_states();
  cm.start = mfa.start;

  // ---- selecting NFA ----
  cm.trans_begin.assign(n + 1, 0);
  cm.wild_begin.assign(n + 1, 0);
  cm.eps_begin.assign(n + 1, 0);
  cm.closure_begin.assign(n + 1, 0);
  cm.nfa_final.assign((n + 63) / 64 + 1, 0);
  cm.afa_entry.assign(n, kNoState);
  for (StateId s = 0; s < n; ++s) {
    const NfaState& st = mfa.nfa[s];
    cm.afa_entry[s] = st.afa_entry;
    if (st.is_final) cm.nfa_final[s >> 6] |= uint64_t{1} << (s & 63);
    cm.trans_begin[s + 1] = cm.trans_begin[s];
    cm.wild_begin[s + 1] = cm.wild_begin[s];
    for (const NfaTransition& t : st.trans) {
      if (t.wildcard) {
        cm.wild.push_back(t.to);
        ++cm.wild_begin[s + 1];
      } else {
        cm.trans.push_back({t.label, t.to});
        ++cm.trans_begin[s + 1];
      }
    }
    cm.eps_begin[s + 1] = cm.eps_begin[s] + static_cast<int32_t>(st.eps.size());
    cm.eps.insert(cm.eps.end(), st.eps.begin(), st.eps.end());
  }

  // Per-state ε-closure (self included, sorted): one DFS per state over the
  // CSR ε-edges. Quadratic in the worst case but the automata are
  // query-sized, and this runs once per compiled query.
  {
    std::vector<int32_t> mark(n, -1);
    std::vector<StateId> work;
    for (StateId s = 0; s < n; ++s) {
      work.assign(1, s);
      mark[s] = s;
      size_t begin = cm.closure.size();
      while (!work.empty()) {
        StateId v = work.back();
        work.pop_back();
        cm.closure.push_back(v);
        for (StateId e : cm.EpsOf(v)) {
          if (mark[e] != s) {
            mark[e] = s;
            work.push_back(e);
          }
        }
      }
      std::sort(cm.closure.begin() + begin, cm.closure.end());
      cm.closure_begin[s + 1] = static_cast<int32_t>(cm.closure.size());
    }
  }

  // ---- AFA arena ----
  cm.afa_kind.assign(m, AfaKind::kOr);
  cm.afa_label.assign(m, kNoLabel);
  cm.afa_wild.assign(m, 0);
  cm.afa_target.assign(m, kNoState);
  cm.operand_begin.assign(m + 1, 0);
  cm.afa_final.assign((m + 63) / 64 + 1, 0);
  for (StateId s = 0; s < m; ++s) {
    const AfaState& a = mfa.afa[s];
    cm.afa_kind[s] = a.kind;
    cm.afa_label[s] = a.label;
    cm.afa_wild[s] = a.wildcard ? 1 : 0;
    cm.afa_target[s] = a.target;
    if (a.kind == AfaKind::kFinal) {
      cm.afa_final[s >> 6] |= uint64_t{1} << (s & 63);
    }
    cm.operand_begin[s + 1] =
        cm.operand_begin[s] + static_cast<int32_t>(a.operands.size());
    cm.operands.insert(cm.operands.end(), a.operands.begin(), a.operands.end());
  }

  AfaScc scc = ComputeAfaScc(cm);
  cm.afa_scc = std::move(scc.scc);
  cm.afa_rank = std::move(scc.rank);
  return cm;
}

}  // namespace smoqe::automata
