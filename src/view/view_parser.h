// Textual view-specification format (the shape of Fig. 1(c) in the paper):
//
//   view research {
//     source dtd hospital { ... }
//     view dtd hospital { ... }
//     sigma {
//       hospital.patient = "department/patient[...=...]" ;
//       patient.parent   = "parent" ;
//     }
//   }
//
// The two embedded DTDs use the dtd_parser format; each sigma entry annotates
// the view-DTD edge (A, B) with an Xreg query over the source DTD.

#ifndef SMOQE_VIEW_VIEW_PARSER_H_
#define SMOQE_VIEW_VIEW_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "view/view_def.h"

namespace smoqe::view {

StatusOr<ViewDef> ParseView(std::string_view spec);

}  // namespace smoqe::view

#endif  // SMOQE_VIEW_VIEW_PARSER_H_
