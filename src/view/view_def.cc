#include "view/view_def.h"

#include "xpath/x_fragment.h"

namespace smoqe::view {

Status ViewDef::SetAnnotation(std::string_view a, std::string_view b,
                              xpath::PathPtr query) {
  dtd::TypeId ta = view_dtd_.FindType(a);
  dtd::TypeId tb = view_dtd_.FindType(b);
  if (ta == dtd::kNoType || tb == dtd::kNoType) {
    return Status::NotFound("view type '" + std::string(ta == dtd::kNoType ? a : b) +
                            "' is not declared in the view DTD");
  }
  if (!view_dtd_.HasEdge(ta, tb)) {
    return Status::InvalidArgument("(" + std::string(a) + ", " + std::string(b) +
                                   ") is not an edge of the view DTD");
  }
  sigma_[{ta, tb}] = std::move(query);
  return Status::OK();
}

const xpath::PathPtr* ViewDef::annotation(dtd::TypeId a, dtd::TypeId b) const {
  auto it = sigma_.find({a, b});
  return it == sigma_.end() ? nullptr : &it->second;
}

Status ViewDef::Validate() const {
  SMOQE_RETURN_IF_ERROR(source_dtd_.Validate());
  SMOQE_RETURN_IF_ERROR(view_dtd_.Validate());
  for (dtd::TypeId a = 0; a < view_dtd_.num_types(); ++a) {
    for (dtd::TypeId b : view_dtd_.ChildTypes(a)) {
      const xpath::PathPtr* q = annotation(a, b);
      if (q == nullptr) {
        return Status::FailedPrecondition(
            "view edge (" + view_dtd_.type_name(a) + ", " +
            view_dtd_.type_name(b) + ") has no annotation");
      }
      if (xpath::UsesPosition(*q)) {
        return Status::Unimplemented(
            "annotation for (" + view_dtd_.type_name(a) + ", " +
            view_dtd_.type_name(b) + ") uses position(), which SMOQE views do "
            "not support");
      }
    }
  }
  return Status::OK();
}

int64_t ViewDef::SizeMeasure() const {
  int64_t size = 0;
  for (const auto& [edge, q] : sigma_) {
    size += static_cast<int64_t>(xpath::ExpandedSize(q));
  }
  return size;
}

}  // namespace smoqe::view
