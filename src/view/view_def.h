// XML view definitions (Section 2.3): a mapping σ : D -> D_V given by
// annotating every edge (A, B) of the view DTD graph with an Xreg query over
// the source DTD D. Given a source document T, σ generates a view document
// top-down: an A-element of the view bound to source node s gets, for each
// child type B, one B-child per node of s[[σ(A,B)]] (see materializer.h).
//
// This mirrors how commercial systems specify XML views (Oracle AXSD, IBM
// DAD, SQL Server annotated schemas), as discussed in the paper.

#ifndef SMOQE_VIEW_VIEW_DEF_H_
#define SMOQE_VIEW_VIEW_DEF_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "dtd/dtd.h"
#include "xpath/ast.h"

namespace smoqe::view {

class ViewDef {
 public:
  ViewDef(dtd::Dtd source_dtd, dtd::Dtd view_dtd)
      : source_dtd_(std::move(source_dtd)), view_dtd_(std::move(view_dtd)) {}

  const dtd::Dtd& source_dtd() const { return source_dtd_; }
  const dtd::Dtd& view_dtd() const { return view_dtd_; }

  /// Sets σ(A, B). Fails when (A, B) is not an edge of the view DTD.
  Status SetAnnotation(std::string_view a, std::string_view b,
                       xpath::PathPtr query);

  /// σ(A, B), or nullptr when unset.
  const xpath::PathPtr* annotation(dtd::TypeId a, dtd::TypeId b) const;

  /// True iff the view DTD is recursive (recursively defined view).
  bool IsRecursive() const { return view_dtd_.IsRecursive(); }

  /// Checks that every view-DTD edge carries an annotation and that no
  /// annotation uses position() (untranslatable through views; the
  /// materializer could evaluate it, but rewriting requires source-stable
  /// predicates, so we reject it uniformly at definition time).
  Status Validate() const;

  /// |σ|: total expanded size of all annotation queries.
  int64_t SizeMeasure() const;

 private:
  dtd::Dtd source_dtd_;
  dtd::Dtd view_dtd_;
  std::map<std::pair<dtd::TypeId, dtd::TypeId>, xpath::PathPtr> sigma_;
};

}  // namespace smoqe::view

#endif  // SMOQE_VIEW_VIEW_DEF_H_
