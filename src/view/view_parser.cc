#include "view/view_parser.h"

#include <cctype>
#include <optional>
#include <string>

#include "dtd/dtd_parser.h"
#include "xpath/parser.h"

namespace smoqe::view {

namespace {

class ViewParser {
 public:
  explicit ViewParser(std::string_view in) : in_(in) {}

  StatusOr<ViewDef> Parse() {
    SMOQE_RETURN_IF_ERROR(Expect("view"));
    SMOQE_ASSIGN_OR_RETURN(std::string name, Name());
    (void)name;
    SMOQE_RETURN_IF_ERROR(Expect("{"));

    SMOQE_RETURN_IF_ERROR(Expect("source"));
    SMOQE_ASSIGN_OR_RETURN(std::string_view source_text, BracedBlock("dtd"));
    SMOQE_ASSIGN_OR_RETURN(dtd::Dtd source_dtd, dtd::ParseDtd(source_text));

    SMOQE_RETURN_IF_ERROR(Expect("view"));
    SMOQE_ASSIGN_OR_RETURN(std::string_view view_text, BracedBlock("dtd"));
    SMOQE_ASSIGN_OR_RETURN(dtd::Dtd view_dtd, dtd::ParseDtd(view_text));

    ViewDef def(std::move(source_dtd), std::move(view_dtd));

    SMOQE_RETURN_IF_ERROR(Expect("sigma"));
    SMOQE_RETURN_IF_ERROR(Expect("{"));
    while (!AtToken("}")) {
      SMOQE_ASSIGN_OR_RETURN(std::string a, Name());
      SMOQE_RETURN_IF_ERROR(Expect("."));
      SMOQE_ASSIGN_OR_RETURN(std::string b, Name());
      SMOQE_RETURN_IF_ERROR(Expect("="));
      SMOQE_ASSIGN_OR_RETURN(std::string query_text, QuotedString());
      SMOQE_RETURN_IF_ERROR(Expect(";"));
      SMOQE_ASSIGN_OR_RETURN(xpath::PathPtr q, xpath::ParseQuery(query_text));
      Status set = def.SetAnnotation(a, b, std::move(q));
      if (!set.ok()) return Err(set.message());
    }
    SMOQE_RETURN_IF_ERROR(Expect("}"));
    SMOQE_RETURN_IF_ERROR(Expect("}"));
    Skip();
    if (pos_ != in_.size()) return Err("trailing input after view spec");
    SMOQE_RETURN_IF_ERROR(def.Validate());
    return def;
  }

 private:
  void Skip() {
    for (;;) {
      while (pos_ < in_.size() &&
             std::isspace(static_cast<unsigned char>(in_[pos_]))) {
        if (in_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < in_.size() && in_[pos_] == '/' && in_[pos_ + 1] == '/') {
        while (pos_ < in_.size() && in_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  bool AtToken(std::string_view tok) {
    Skip();
    return in_.substr(pos_, tok.size()) == tok;
  }

  Status Expect(std::string_view tok) {
    if (!AtToken(tok)) return Err("expected '" + std::string(tok) + "'");
    pos_ += tok.size();
    return Status::OK();
  }

  Status Err(std::string what) const {
    return Status::ParseError("view: " + what + " (line " +
                              std::to_string(line_) + ")");
  }

  StatusOr<std::string> Name() {
    Skip();
    size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '_' || in_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected a name");
    return std::string(in_.substr(start, pos_ - start));
  }

  /// Consumes `keyword ... { ... }` and returns the whole span from the
  /// keyword through the matching close brace (for a nested parser).
  StatusOr<std::string_view> BracedBlock(std::string_view keyword) {
    if (!AtToken(keyword)) return Err("expected '" + std::string(keyword) + "'");
    size_t start = pos_;
    // Find the opening brace, then match nesting.
    while (pos_ < in_.size() && in_[pos_] != '{') {
      if (in_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ >= in_.size()) return Err("expected '{'");
    int depth = 0;
    do {
      if (in_[pos_] == '{') ++depth;
      if (in_[pos_] == '}') --depth;
      if (in_[pos_] == '\n') ++line_;
      ++pos_;
    } while (pos_ < in_.size() && depth > 0);
    if (depth != 0) return Err("unbalanced braces");
    return in_.substr(start, pos_ - start);
  }

  StatusOr<std::string> QuotedString() {
    Skip();
    if (pos_ >= in_.size() || (in_[pos_] != '"' && in_[pos_] != '\'')) {
      return Err("expected a quoted query");
    }
    char quote = in_[pos_++];
    size_t start = pos_;
    while (pos_ < in_.size() && in_[pos_] != quote) ++pos_;
    if (pos_ >= in_.size()) return Err("unterminated quoted query");
    std::string s(in_.substr(start, pos_ - start));
    ++pos_;
    return s;
  }

  std::string_view in_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

StatusOr<ViewDef> ParseView(std::string_view spec) {
  return ViewParser(spec).Parse();
}

}  // namespace smoqe::view
