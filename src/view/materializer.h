// View materialization: computes σ(T) and the provenance binding.
//
// Materialization proceeds top-down (Example 2.2): the view root is a copy of
// the source root; an A-element bound to source node s gets its children by
// evaluating σ(A, B) at s for every child type B of A's production, honoring
// the production's shape:
//   str       : the view element carries a copy of s's text
//   epsilon   : no children
//   sequence  : each starred child type contributes all matches in document
//               order, each unstarred type must match exactly one node
//   disjunct  : exactly one branch may contribute (an empty result matches a
//               starred branch); anything else is an invalid view instance
//
// Every view node is a copy of a source node; `binding` records which one.
// The paper's equivalence Q(σ(T)) = Q'(T) compares view answers through this
// binding.

#ifndef SMOQE_VIEW_MATERIALIZER_H_
#define SMOQE_VIEW_MATERIALIZER_H_

#include <vector>

#include "common/status.h"
#include "view/view_def.h"
#include "xml/doc_plane.h"
#include "xml/tree.h"

namespace smoqe::view {

struct MaterializeOptions {
  /// Abort (with FailedPrecondition) past this view depth; recursive views
  /// whose annotations do not descend in the source never terminate, and this
  /// guard turns that into an error. The (A-type, source-node) repetition
  /// check below catches the common cases before the guard trips.
  int max_depth = 4096;
};

struct MaterializedView {
  xml::Tree tree;                      // σ(T)
  std::vector<xml::NodeId> binding;    // view node -> source node (text: null)
  /// Columnar plane of `tree`, emitted by the materializer's own top-down
  /// recursion (xml::DocPlane::Builder) -- the view is born with its
  /// traversal structure, no second O(N) build pass. Pass it to the
  /// evaluators serving the view (HypeOptions/BatchHypeOptions/
  /// ShardedOptions/QueryServiceOptions `.plane`).
  xml::DocPlane plane;
};

StatusOr<MaterializedView> Materialize(const ViewDef& view,
                                       const xml::Tree& source,
                                       const MaterializeOptions& opts = {});

/// Maps a set of view nodes through the binding (sorted source ids, deduped).
std::vector<xml::NodeId> MapToSource(const MaterializedView& mat,
                                     const std::vector<xml::NodeId>& view_nodes);

}  // namespace smoqe::view

#endif  // SMOQE_VIEW_MATERIALIZER_H_
