#include "view/materializer.h"

#include <algorithm>
#include <unordered_set>

#include "eval/naive_evaluator.h"

namespace smoqe::view {

namespace {

class Builder {
 public:
  Builder(const ViewDef& view, const xml::Tree& source,
          const MaterializeOptions& opts)
      : view_(view), source_(source), opts_(opts), eval_(source) {}

  StatusOr<MaterializedView> Run() {
    dtd::TypeId root_type = view_.view_dtd().root();
    xml::NodeId view_root = out_.tree.AddRoot(view_.view_dtd().type_name(root_type));
    out_.binding.push_back(source_.root());
    plane_builder_.Enter(out_.tree.label(view_root), view_root);
    SMOQE_RETURN_IF_ERROR(Fill(root_type, source_.root(), view_root, 1));
    out_.plane = plane_builder_.Finish(out_.tree.size(),
                                       out_.tree.labels().size());
    return std::move(out_);
  }

 private:
  Status Err(dtd::TypeId type, xml::NodeId src, std::string what) {
    return Status::FailedPrecondition(
        "materialize: at view type '" + view_.view_dtd().type_name(type) +
        "' (source node " + std::to_string(src) + "): " + what);
  }

  xml::NodeId AddChild(xml::NodeId parent, dtd::TypeId type, xml::NodeId src) {
    xml::NodeId v = out_.tree.AddElement(parent, view_.view_dtd().type_name(type));
    out_.binding.push_back(src);
    plane_builder_.Enter(out_.tree.label(v), v);
    return v;
  }

  // The recursion IS the preorder emission: `self` was Enter()ed when it was
  // added, and exits once its whole subtree is filled -- the plane costs no
  // pass of its own. Error paths skip Exit; the half-built plane is
  // discarded with the rest of the failed materialization.
  Status Fill(dtd::TypeId type, xml::NodeId src, xml::NodeId self, int depth) {
    if (depth > opts_.max_depth) {
      return Err(type, src, "view depth limit exceeded (non-terminating view?)");
    }
    uint64_t key = (static_cast<uint64_t>(type) << 32) |
                   static_cast<uint32_t>(src);
    if (!on_path_.insert(key).second) {
      return Err(type, src,
                 "view definition revisits the same (type, source node) pair; "
                 "materialization would not terminate");
    }
    Status status = FillChildren(type, src, self, depth);
    on_path_.erase(key);
    if (status.ok()) plane_builder_.Exit();
    return status;
  }

  Status FillChildren(dtd::TypeId type, xml::NodeId src, xml::NodeId self,
                      int depth) {
    const dtd::Production& prod = view_.view_dtd().production(type);
    switch (prod.kind) {
      case dtd::ContentKind::kText: {
        std::string text = source_.TextOf(src);
        if (!text.empty()) {
          out_.tree.AddText(self, text);
          out_.binding.push_back(xml::kNullNode);
          plane_builder_.MarkText();
        }
        return Status::OK();
      }
      case dtd::ContentKind::kEmpty:
        return Status::OK();
      case dtd::ContentKind::kSequence: {
        for (const dtd::ChildSpec& spec : prod.children) {
          const xpath::PathPtr* q = view_.annotation(type, spec.type);
          if (q == nullptr) {
            return Err(type, src, "missing annotation for child '" +
                                      view_.view_dtd().type_name(spec.type) + "'");
          }
          eval::NodeSet matches = eval_.Eval(*q, src);
          if (!spec.starred && matches.size() != 1) {
            return Err(type, src,
                       "unstarred child '" +
                           view_.view_dtd().type_name(spec.type) + "' matched " +
                           std::to_string(matches.size()) + " source nodes");
          }
          for (xml::NodeId m : matches) {
            xml::NodeId child = AddChild(self, spec.type, m);
            SMOQE_RETURN_IF_ERROR(Fill(spec.type, m, child, depth + 1));
          }
        }
        return Status::OK();
      }
      case dtd::ContentKind::kChoice: {
        int chosen = -1;
        eval::NodeSet chosen_matches;
        bool has_starred = false;
        for (size_t i = 0; i < prod.children.size(); ++i) {
          const dtd::ChildSpec& spec = prod.children[i];
          has_starred = has_starred || spec.starred;
          const xpath::PathPtr* q = view_.annotation(type, spec.type);
          if (q == nullptr) {
            return Err(type, src, "missing annotation for child '" +
                                      view_.view_dtd().type_name(spec.type) + "'");
          }
          eval::NodeSet matches = eval_.Eval(*q, src);
          if (matches.empty()) continue;
          if (chosen != -1) {
            return Err(type, src, "ambiguous disjunction: branches '" +
                                      view_.view_dtd().type_name(
                                          prod.children[chosen].type) +
                                      "' and '" +
                                      view_.view_dtd().type_name(spec.type) +
                                      "' both matched");
          }
          if (!spec.starred && matches.size() != 1) {
            return Err(type, src,
                       "unstarred branch '" +
                           view_.view_dtd().type_name(spec.type) + "' matched " +
                           std::to_string(matches.size()) + " source nodes");
          }
          chosen = static_cast<int>(i);
          chosen_matches = std::move(matches);
        }
        if (chosen == -1) {
          if (has_starred) return Status::OK();  // empty starred branch
          return Err(type, src, "no branch of the disjunction matched");
        }
        const dtd::ChildSpec& spec = prod.children[chosen];
        for (xml::NodeId m : chosen_matches) {
          xml::NodeId child = AddChild(self, spec.type, m);
          SMOQE_RETURN_IF_ERROR(Fill(spec.type, m, child, depth + 1));
        }
        return Status::OK();
      }
    }
    return Status::Internal("unreachable production kind");
  }

  const ViewDef& view_;
  const xml::Tree& source_;
  const MaterializeOptions& opts_;
  eval::NaiveEvaluator eval_;
  MaterializedView out_;
  xml::DocPlane::Builder plane_builder_;
  std::unordered_set<uint64_t> on_path_;
};

}  // namespace

StatusOr<MaterializedView> Materialize(const ViewDef& view,
                                       const xml::Tree& source,
                                       const MaterializeOptions& opts) {
  SMOQE_RETURN_IF_ERROR(view.Validate());
  if (source.empty()) return Status::InvalidArgument("empty source document");
  return Builder(view, source, opts).Run();
}

std::vector<xml::NodeId> MapToSource(
    const MaterializedView& mat, const std::vector<xml::NodeId>& view_nodes) {
  std::vector<xml::NodeId> out;
  out.reserve(view_nodes.size());
  for (xml::NodeId v : view_nodes) {
    if (mat.binding[v] != xml::kNullNode) out.push_back(mat.binding[v]);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace smoqe::view
