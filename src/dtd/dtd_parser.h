// Textual DTD format used throughout SMOQE:
//
//   dtd hospital {
//     hospital   -> department* ;
//     department -> name, address, patient* ;
//     treatment  -> test + medication ;
//     name       -> #text ;
//     test       -> #empty ;
//   }
//
// The name after `dtd` is the root type. `B*` marks a starred child, `,`
// concatenation and `+` disjunction (they cannot be mixed in one production,
// matching the paper's normal form). `#text` is str, `#empty` is epsilon.
// Every referenced type must have a production.

#ifndef SMOQE_DTD_DTD_PARSER_H_
#define SMOQE_DTD_DTD_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "dtd/dtd.h"

namespace smoqe::dtd {

StatusOr<Dtd> ParseDtd(std::string_view input);

}  // namespace smoqe::dtd

#endif  // SMOQE_DTD_DTD_PARSER_H_
