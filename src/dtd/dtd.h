// DTD model, in the paper's normal form (Section 2.2).
//
// A DTD is (Ele, P, r): element types, productions and a root type. Each
// production P(A) is one of
//   str                      -- PCDATA content
//   epsilon                  -- empty content
//   B1, ..., Bn              -- concatenation, each Bi a type or a starred type
//   B1 + ... + Bn            -- disjunction (n > 1), each Bi a type or starred
// Any DTD can be normalized to this form by introducing element types, so no
// generality is lost (the paper makes the same observation).

#ifndef SMOQE_DTD_DTD_H_
#define SMOQE_DTD_DTD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/name_table.h"
#include "common/status.h"

namespace smoqe::dtd {

using TypeId = int32_t;
inline constexpr TypeId kNoType = -1;

enum class ContentKind : uint8_t {
  kText,      // str
  kEmpty,     // epsilon
  kSequence,  // B1, ..., Bn
  kChoice,    // B1 + ... + Bn
};

struct ChildSpec {
  TypeId type = kNoType;
  bool starred = false;
};

struct Production {
  ContentKind kind = ContentKind::kEmpty;
  std::vector<ChildSpec> children;  // for kSequence / kChoice
};

class Dtd {
 public:
  /// Declares (or finds) an element type by name.
  TypeId DeclareType(std::string_view name);

  /// Returns the type id for `name`, or kNoType.
  TypeId FindType(std::string_view name) const;

  void SetRoot(TypeId t) { root_ = t; }
  Status SetProduction(TypeId t, Production p);

  TypeId root() const { return root_; }
  int num_types() const { return static_cast<int>(prods_.size()); }
  const std::string& type_name(TypeId t) const { return types_.name(t); }
  const Production& production(TypeId t) const { return prods_[t]; }
  bool has_production(TypeId t) const { return defined_[t]; }

  /// The distinct child types of `t` (the edges (t, B) of the DTD graph).
  std::vector<TypeId> ChildTypes(TypeId t) const;

  /// True iff B is a child type of A.
  bool HasEdge(TypeId a, TypeId b) const;

  /// True iff the DTD graph has a cycle reachable from the root.
  bool IsRecursive() const;

  /// For each type t, the set (as a bool vector indexed by TypeId) of types
  /// occurring strictly below a t-element in some document of this DTD
  /// (graph reachability via one or more edges from t).
  std::vector<std::vector<bool>> DescendantTypes() const;

  /// Verifies every declared type has a production and all child references
  /// resolve. Call after building / parsing.
  Status Validate() const;

  /// Total number of child occurrences over all productions; the |D| used in
  /// the paper's complexity bounds.
  int SizeMeasure() const;

 private:
  NameTable types_;
  std::vector<Production> prods_;
  std::vector<bool> defined_;
  TypeId root_ = kNoType;
};

}  // namespace smoqe::dtd

#endif  // SMOQE_DTD_DTD_H_
