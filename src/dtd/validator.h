// Checks that an XML tree conforms to a DTD in the paper's normal form.

#ifndef SMOQE_DTD_VALIDATOR_H_
#define SMOQE_DTD_VALIDATOR_H_

#include "common/status.h"
#include "dtd/dtd.h"
#include "xml/tree.h"

namespace smoqe::dtd {

/// Returns OK iff `tree` is a document of `dtd`: the root carries the root
/// type, every element's children match its production (sequence order and
/// multiplicities included; a disjunction is satisfied by exactly one branch),
/// kText elements contain only text, and kEmpty elements nothing.
Status ValidateDocument(const Dtd& dtd, const xml::Tree& tree);

}  // namespace smoqe::dtd

#endif  // SMOQE_DTD_VALIDATOR_H_
