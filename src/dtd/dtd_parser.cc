#include "dtd/dtd_parser.h"

#include <cctype>
#include <string>

namespace smoqe::dtd {

namespace {

class DtdParser {
 public:
  explicit DtdParser(std::string_view in) : in_(in) {}

  StatusOr<Dtd> Parse() {
    Dtd dtd;
    SMOQE_RETURN_IF_ERROR(Expect("dtd"));
    SMOQE_ASSIGN_OR_RETURN(std::string root, Name());
    dtd.SetRoot(dtd.DeclareType(root));
    SMOQE_RETURN_IF_ERROR(Expect("{"));
    while (!AtToken("}")) {
      SMOQE_RETURN_IF_ERROR(ParseProduction(&dtd));
    }
    SMOQE_RETURN_IF_ERROR(Expect("}"));
    Skip();
    if (pos_ != in_.size()) return Err("trailing input after '}'");
    SMOQE_RETURN_IF_ERROR(dtd.Validate());
    return dtd;
  }

 private:
  void Skip() {
    for (;;) {
      while (pos_ < in_.size() &&
             std::isspace(static_cast<unsigned char>(in_[pos_]))) {
        if (in_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < in_.size() && in_[pos_] == '/' && in_[pos_ + 1] == '/') {
        while (pos_ < in_.size() && in_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  bool AtToken(std::string_view tok) {
    Skip();
    return in_.substr(pos_, tok.size()) == tok;
  }

  Status Expect(std::string_view tok) {
    Skip();
    if (in_.substr(pos_, tok.size()) != tok) {
      return Err("expected '" + std::string(tok) + "'");
    }
    pos_ += tok.size();
    return Status::OK();
  }

  Status Err(std::string what) const {
    return Status::ParseError("DTD: " + what + " (line " + std::to_string(line_) + ")");
  }

  StatusOr<std::string> Name() {
    Skip();
    size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '_' || in_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected a type name");
    return std::string(in_.substr(start, pos_ - start));
  }

  StatusOr<ChildSpec> ParseChild(Dtd* dtd) {
    SMOQE_ASSIGN_OR_RETURN(std::string name, Name());
    ChildSpec spec;
    spec.type = dtd->DeclareType(name);
    Skip();
    if (pos_ < in_.size() && in_[pos_] == '*') {
      ++pos_;
      spec.starred = true;
    }
    return spec;
  }

  Status ParseProduction(Dtd* dtd) {
    SMOQE_ASSIGN_OR_RETURN(std::string lhs, Name());
    TypeId t = dtd->DeclareType(lhs);
    SMOQE_RETURN_IF_ERROR(Expect("->"));
    Production p;
    if (AtToken("#text")) {
      SMOQE_RETURN_IF_ERROR(Expect("#text"));
      p.kind = ContentKind::kText;
    } else if (AtToken("#empty")) {
      SMOQE_RETURN_IF_ERROR(Expect("#empty"));
      p.kind = ContentKind::kEmpty;
    } else {
      SMOQE_ASSIGN_OR_RETURN(ChildSpec first, ParseChild(dtd));
      p.children.push_back(first);
      Skip();
      if (AtToken("+")) {
        p.kind = ContentKind::kChoice;
        while (AtToken("+")) {
          SMOQE_RETURN_IF_ERROR(Expect("+"));
          SMOQE_ASSIGN_OR_RETURN(ChildSpec c, ParseChild(dtd));
          p.children.push_back(c);
        }
      } else {
        p.kind = ContentKind::kSequence;
        while (AtToken(",")) {
          SMOQE_RETURN_IF_ERROR(Expect(","));
          SMOQE_ASSIGN_OR_RETURN(ChildSpec c, ParseChild(dtd));
          p.children.push_back(c);
        }
        if (AtToken("+")) return Err("cannot mix ',' and '+' in a production");
      }
    }
    SMOQE_RETURN_IF_ERROR(Expect(";"));
    Status set = dtd->SetProduction(t, std::move(p));
    if (!set.ok()) return Err(set.message());
    return Status::OK();
  }

  std::string_view in_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

StatusOr<Dtd> ParseDtd(std::string_view input) { return DtdParser(input).Parse(); }

}  // namespace smoqe::dtd
