#include "dtd/dtd.h"

#include <algorithm>

namespace smoqe::dtd {

TypeId Dtd::DeclareType(std::string_view name) {
  TypeId id = types_.Intern(name);
  if (id >= static_cast<TypeId>(prods_.size())) {
    prods_.resize(id + 1);
    defined_.resize(id + 1, false);
  }
  return id;
}

TypeId Dtd::FindType(std::string_view name) const { return types_.Lookup(name); }

Status Dtd::SetProduction(TypeId t, Production p) {
  if (t < 0 || t >= num_types()) {
    return Status::InvalidArgument("SetProduction: unknown type id");
  }
  if (defined_[t]) {
    return Status::InvalidArgument("duplicate production for type '" +
                                   type_name(t) + "'");
  }
  if (p.kind == ContentKind::kChoice && p.children.size() < 2) {
    return Status::InvalidArgument("disjunction for type '" + type_name(t) +
                                   "' needs at least two branches");
  }
  prods_[t] = std::move(p);
  defined_[t] = true;
  return Status::OK();
}

std::vector<TypeId> Dtd::ChildTypes(TypeId t) const {
  std::vector<TypeId> out;
  for (const ChildSpec& c : prods_[t].children) {
    if (std::find(out.begin(), out.end(), c.type) == out.end()) {
      out.push_back(c.type);
    }
  }
  return out;
}

bool Dtd::HasEdge(TypeId a, TypeId b) const {
  for (const ChildSpec& c : prods_[a].children) {
    if (c.type == b) return true;
  }
  return false;
}

bool Dtd::IsRecursive() const {
  if (root_ == kNoType) return false;
  enum { kWhite, kGrey, kBlack };
  std::vector<int> color(num_types(), kWhite);
  // Iterative DFS with explicit post-processing marker.
  std::vector<std::pair<TypeId, bool>> stack = {{root_, false}};
  while (!stack.empty()) {
    auto [t, post] = stack.back();
    stack.pop_back();
    if (post) {
      color[t] = kBlack;
      continue;
    }
    if (color[t] == kGrey) continue;
    color[t] = kGrey;
    stack.emplace_back(t, true);
    for (TypeId c : ChildTypes(t)) {
      if (color[c] == kGrey) return true;
      if (color[c] == kWhite) stack.emplace_back(c, false);
    }
  }
  return false;
}

std::vector<std::vector<bool>> Dtd::DescendantTypes() const {
  int n = num_types();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (TypeId t = 0; t < n; ++t) {
    for (TypeId c : ChildTypes(t)) reach[t][c] = true;
  }
  // Floyd-Warshall style closure; DTDs are small so O(n^3) bits is fine.
  for (TypeId k = 0; k < n; ++k) {
    for (TypeId i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (TypeId j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = true;
      }
    }
  }
  return reach;
}

Status Dtd::Validate() const {
  if (root_ == kNoType) return Status::FailedPrecondition("DTD has no root type");
  for (TypeId t = 0; t < num_types(); ++t) {
    if (!defined_[t]) {
      return Status::FailedPrecondition("type '" + type_name(t) +
                                        "' is referenced but has no production");
    }
    for (const ChildSpec& c : prods_[t].children) {
      if (c.type < 0 || c.type >= num_types()) {
        return Status::Internal("dangling child reference in production of '" +
                                type_name(t) + "'");
      }
    }
  }
  return Status::OK();
}

int Dtd::SizeMeasure() const {
  int size = 0;
  for (TypeId t = 0; t < num_types(); ++t) {
    size += 1 + static_cast<int>(prods_[t].children.size());
  }
  return size;
}

}  // namespace smoqe::dtd
