#include "dtd/validator.h"

#include <string>
#include <vector>

namespace smoqe::dtd {

namespace {

std::string NodePath(const xml::Tree& tree, xml::NodeId id) {
  std::vector<std::string> parts;
  for (xml::NodeId n = id; n != xml::kNullNode; n = tree.parent(n)) {
    parts.push_back(tree.is_element(n) ? tree.label_name(n) : "#text");
  }
  std::string path;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) path += "/" + *it;
  return path;
}

Status ElementError(const xml::Tree& tree, xml::NodeId id, std::string what) {
  return Status::FailedPrecondition("at " + NodePath(tree, id) + ": " + what);
}

// Collects the element children; any text child makes has_text true.
void SplitChildren(const xml::Tree& tree, xml::NodeId id,
                   std::vector<xml::NodeId>* elems, bool* has_text) {
  for (xml::NodeId c = tree.first_child(id); c != xml::kNullNode;
       c = tree.next_sibling(c)) {
    if (tree.is_element(c)) {
      elems->push_back(c);
    } else {
      *has_text = true;
    }
  }
}

Status CheckSequence(const Dtd& dtd, const xml::Tree& tree, xml::NodeId id,
                     const Production& prod,
                     const std::vector<xml::NodeId>& elems) {
  size_t i = 0;  // cursor over elems
  for (const ChildSpec& spec : prod.children) {
    const std::string& want = dtd.type_name(spec.type);
    if (spec.starred) {
      while (i < elems.size() && tree.label_name(elems[i]) == want) ++i;
    } else {
      if (i >= elems.size() || tree.label_name(elems[i]) != want) {
        return ElementError(tree, id, "expected child '" + want + "'");
      }
      ++i;
    }
  }
  if (i != elems.size()) {
    return ElementError(tree, id,
                        "unexpected child '" + tree.label_name(elems[i]) + "'");
  }
  return Status::OK();
}

Status CheckChoice(const Dtd& dtd, const xml::Tree& tree, xml::NodeId id,
                   const Production& prod,
                   const std::vector<xml::NodeId>& elems) {
  // All children must carry the same label, matching exactly one branch.
  for (const ChildSpec& spec : prod.children) {
    const std::string& want = dtd.type_name(spec.type);
    bool all = true;
    for (xml::NodeId e : elems) {
      if (tree.label_name(e) != want) {
        all = false;
        break;
      }
    }
    if (!all) continue;
    if (!spec.starred && elems.size() != 1) continue;
    if (spec.starred || elems.size() == 1) return Status::OK();
  }
  // An empty child list satisfies a starred branch.
  if (elems.empty()) {
    for (const ChildSpec& spec : prod.children) {
      if (spec.starred) return Status::OK();
    }
  }
  return ElementError(tree, id, "children match no branch of the disjunction");
}

}  // namespace

Status ValidateDocument(const Dtd& dtd, const xml::Tree& tree) {
  SMOQE_RETURN_IF_ERROR(dtd.Validate());
  if (tree.empty()) return Status::FailedPrecondition("empty document");
  if (tree.label_name(tree.root()) != dtd.type_name(dtd.root())) {
    return Status::FailedPrecondition(
        "root is '" + tree.label_name(tree.root()) + "', DTD root is '" +
        dtd.type_name(dtd.root()) + "'");
  }
  for (xml::NodeId id = 0; id < tree.size(); ++id) {
    if (!tree.is_element(id)) continue;
    TypeId t = dtd.FindType(tree.label_name(id));
    if (t == kNoType) {
      return ElementError(tree, id, "label not declared in the DTD");
    }
    const Production& prod = dtd.production(t);
    std::vector<xml::NodeId> elems;
    bool has_text = false;
    SplitChildren(tree, id, &elems, &has_text);
    switch (prod.kind) {
      case ContentKind::kText:
        if (!elems.empty()) {
          return ElementError(tree, id, "PCDATA element has element children");
        }
        break;
      case ContentKind::kEmpty:
        if (!elems.empty() || has_text) {
          return ElementError(tree, id, "empty element has children");
        }
        break;
      case ContentKind::kSequence:
        if (has_text) return ElementError(tree, id, "unexpected text content");
        SMOQE_RETURN_IF_ERROR(CheckSequence(dtd, tree, id, prod, elems));
        break;
      case ContentKind::kChoice:
        if (has_text) return ElementError(tree, id, "unexpected text content");
        SMOQE_RETURN_IF_ERROR(CheckChoice(dtd, tree, id, prod, elems));
        break;
    }
  }
  return Status::OK();
}

}  // namespace smoqe::dtd
