#include "gen/query_generator.h"

namespace smoqe::gen {

namespace {

class QueryGen {
 public:
  QueryGen(const QueryGenParams& p, std::mt19937_64* rng) : p_(p), rng_(*rng) {}

  xpath::PathPtr Path(int depth) {
    // Leaves when the budget runs out.
    if (depth <= 0) return Leaf();
    switch (Range(0, 9)) {
      case 0:
      case 1:
        return Leaf();
      case 2:
      case 3:
      case 4:
        return xpath::Seq(Path(depth - 1), Path(depth - 1));
      case 5:
        return xpath::UnionOf(Path(depth - 1), Path(depth - 1));
      case 6:
        if (p_.allow_star) return xpath::Star(Path(depth - 1));
        return xpath::Seq(xpath::DescendantOrSelf(), Leaf());
      case 7:
        if (p_.allow_filters) {
          return xpath::WithFilter(Path(depth - 1), Filter(depth - 1));
        }
        return Leaf();
      default:
        return xpath::Seq(Leaf(), Path(depth - 1));
    }
  }

  xpath::FilterPtr Filter(int depth) {
    if (depth <= 0) return FilterLeaf();
    switch (Range(0, 5)) {
      case 0:
        return FilterLeaf();
      case 1:
        if (p_.allow_negation) return xpath::FNot(Filter(depth - 1));
        return FilterLeaf();
      case 2:
        return xpath::FAnd(Filter(depth - 1), Filter(depth - 1));
      case 3:
        return xpath::FOr(Filter(depth - 1), Filter(depth - 1));
      default:
        return xpath::FPath(Path(depth - 1));
    }
  }

 private:
  int Range(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }

  xpath::PathPtr Leaf() {
    switch (Range(0, 5)) {
      case 0:
        return xpath::Eps();
      case 1:
        return xpath::Wildcard();
      default:
        return xpath::Label(p_.labels[Range(0, static_cast<int>(p_.labels.size()) - 1)]);
    }
  }

  xpath::FilterPtr FilterLeaf() {
    if (p_.allow_position && Range(0, 5) == 0) {
      return xpath::FPositionEquals(Range(1, 3));
    }
    if (!p_.text_values.empty() && Range(0, 2) == 0) {
      return xpath::FTextEquals(
          Leaf(), p_.text_values[Range(0, static_cast<int>(p_.text_values.size()) - 1)]);
    }
    return xpath::FPath(Leaf());
  }

  const QueryGenParams& p_;
  std::mt19937_64& rng_;
};

}  // namespace

xpath::PathPtr RandomQuery(const QueryGenParams& params, std::mt19937_64* rng) {
  QueryGen gen(params, rng);
  return gen.Path(params.max_depth);
}

}  // namespace smoqe::gen
