// The paper's running example as reusable fixtures: the hospital document
// DTD of Fig. 1(a), the view DTD of Fig. 1(b), the view specification σ0 of
// Fig. 1(c), the 15-node tree of Fig. 4, and the queries of Examples 1.1,
// 2.1 and 4.1 (plus the hand-rewritten Q' of Example 3.1).

#ifndef SMOQE_GEN_FIXTURES_H_
#define SMOQE_GEN_FIXTURES_H_

#include <string>

#include "dtd/dtd.h"
#include "view/view_def.h"
#include "xml/tree.h"

namespace smoqe::gen {

/// Fig. 1(a): the hospital document DTD, in dtd_parser syntax.
extern const char* const kHospitalDtdText;

/// Fig. 1(b): the research-institute view DTD.
extern const char* const kHospitalViewDtdText;

/// The full view specification (both DTDs + σ0 of Fig. 1(c)), in view_parser
/// syntax.
extern const char* const kHospitalViewSpecText;

dtd::Dtd HospitalDtd();
dtd::Dtd HospitalViewDtd();
view::ViewDef HospitalView();  // σ0

/// Fig. 4: the example instance of the *view* DTD used to walk through MFA
/// evaluation. Node numbering follows the paper (index 0 unused; paper node
/// k is ids()[k]).
struct Fig4Tree {
  xml::Tree tree;
  // ids[k] = NodeId of the paper's node k (1..15), ids[0] = kNullNode.
  std::vector<xml::NodeId> ids;
};
Fig4Tree MakeFig4Tree();

/// Example 1.1: patients (on the view) whose ancestors also had heart
/// disease; the query that is NOT rewritable within the XPath fragment X.
extern const char* const kQueryExample11;

/// Example 2.1: the regular XPath query on the *source* (skipping a
/// generation) that is not expressible in X.
extern const char* const kQueryExample21;

/// Example 4.1: Q0 on the view; its MFA is Fig. 3.
extern const char* const kQueryExample41;

/// Example 3.1: the hand-computed source rewriting Q' of kQueryExample11.
extern const char* const kQueryExample31Rewritten;

}  // namespace smoqe::gen

#endif  // SMOQE_GEN_FIXTURES_H_
