#include "gen/fixtures.h"

#include <cassert>

#include "dtd/dtd_parser.h"
#include "view/view_parser.h"

namespace smoqe::gen {

const char* const kHospitalDtdText = R"(
dtd hospital {
  hospital   -> department* ;
  department -> name, address, patient* ;
  name       -> #text ;
  address    -> street, city, zip ;
  street     -> #text ;
  city       -> #text ;
  zip        -> #text ;
  patient    -> pname, address, visit*, parent*, sibling* ;
  pname      -> #text ;
  visit      -> date, treatment, doctor ;
  date       -> #text ;
  treatment  -> test + medication ;
  test       -> type ;
  medication -> type, diagnosis ;
  type       -> #text ;
  diagnosis  -> #text ;
  doctor     -> dname, specialty ;
  dname      -> #text ;
  specialty  -> #text ;
  parent     -> patient ;
  sibling    -> patient ;
}
)";

const char* const kHospitalViewDtdText = R"(
dtd hospital {
  hospital  -> patient* ;
  patient   -> parent*, record* ;
  parent    -> patient ;
  record    -> empty + diagnosis ;
  empty     -> #empty ;
  diagnosis -> #text ;
}
)";

// Fig. 1(c): σ0. Q1..Q6 in the paper's numbering.
const char* const kHospitalViewSpecText = R"(
view research {
  source dtd hospital {
    hospital   -> department* ;
    department -> name, address, patient* ;
    name       -> #text ;
    address    -> street, city, zip ;
    street     -> #text ;
    city       -> #text ;
    zip        -> #text ;
    patient    -> pname, address, visit*, parent*, sibling* ;
    pname      -> #text ;
    visit      -> date, treatment, doctor ;
    date       -> #text ;
    treatment  -> test + medication ;
    test       -> type ;
    medication -> type, diagnosis ;
    type       -> #text ;
    diagnosis  -> #text ;
    doctor     -> dname, specialty ;
    dname      -> #text ;
    specialty  -> #text ;
    parent     -> patient ;
    sibling    -> patient ;
  }
  view dtd hospital {
    hospital  -> patient* ;
    patient   -> parent*, record* ;
    parent    -> patient ;
    record    -> empty + diagnosis ;
    empty     -> #empty ;
    diagnosis -> #text ;
  }
  sigma {
    hospital.patient = "department/patient[visit/treatment/medication/diagnosis/text() = 'heart disease']" ;  // Q1
    patient.parent   = "parent" ;                                 // Q2
    patient.record   = "visit" ;                                  // Q3
    parent.patient   = "patient" ;                                // Q4
    record.empty     = "treatment/test" ;                         // Q5
    record.diagnosis = "treatment/medication/diagnosis" ;         // Q6
  }
}
)";

dtd::Dtd HospitalDtd() {
  auto dtd = dtd::ParseDtd(kHospitalDtdText);
  assert(dtd.ok());
  return dtd.take();
}

dtd::Dtd HospitalViewDtd() {
  auto dtd = dtd::ParseDtd(kHospitalViewDtdText);
  assert(dtd.ok());
  return dtd.take();
}

view::ViewDef HospitalView() {
  auto view = view::ParseView(kHospitalViewSpecText);
  assert(view.ok());
  return view.take();
}

Fig4Tree MakeFig4Tree() {
  Fig4Tree out;
  xml::Tree& t = out.tree;
  std::vector<xml::NodeId>& ids = out.ids;
  ids.assign(16, xml::kNullNode);
  ids[1] = t.AddRoot("hospital");
  ids[2] = t.AddElement(ids[1], "patient");
  ids[3] = t.AddElement(ids[2], "parent");
  ids[4] = t.AddElement(ids[3], "patient");
  ids[5] = t.AddElement(ids[4], "record");
  ids[6] = t.AddElement(ids[5], "diagnosis");
  t.AddText(ids[6], "lung disease");
  ids[7] = t.AddElement(ids[2], "record");
  ids[8] = t.AddElement(ids[7], "diagnosis");
  t.AddText(ids[8], "brain disease");
  ids[9] = t.AddElement(ids[1], "patient");
  ids[10] = t.AddElement(ids[9], "parent");
  ids[11] = t.AddElement(ids[10], "patient");
  ids[12] = t.AddElement(ids[11], "record");
  ids[13] = t.AddElement(ids[12], "diagnosis");
  t.AddText(ids[13], "heart disease");
  ids[14] = t.AddElement(ids[9], "record");
  ids[15] = t.AddElement(ids[14], "diagnosis");
  t.AddText(ids[15], "lung disease");
  return out;
}

const char* const kQueryExample11 =
    "patient[*//record/diagnosis/text() = 'heart disease']";

const char* const kQueryExample21 =
    "department/patient["
    "visit/treatment/medication/diagnosis/text() = 'heart disease'"
    " and "
    "parent/patient[not(visit/treatment/medication/diagnosis/text() = "
    "'heart disease')]/parent/patient[visit/treatment/medication/diagnosis/"
    "text() = 'heart disease']/"
    "(parent/patient[not(visit/treatment/medication/diagnosis/text() = "
    "'heart disease')]/parent/patient[visit/treatment/medication/diagnosis/"
    "text() = 'heart disease'])*"
    "]/pname";

const char* const kQueryExample41 =
    "(patient/parent)*/patient[(parent/patient)*/record/diagnosis[text() = "
    "'heart disease']]";

const char* const kQueryExample31Rewritten =
    "department/patient[visit/treatment/medication/diagnosis/text() = "
    "'heart disease'][parent/patient/(parent/patient)*/visit/treatment/"
    "medication/diagnosis/text() = 'heart disease']";

}  // namespace smoqe::gen
