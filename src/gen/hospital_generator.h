// ToXGene substitute: synthesizes hospital documents conforming to the
// paper's Fig. 1(a) DTD (see gen/fixtures.h for the DTD itself).
//
// The paper's datasets ranged from 7MB to 70MB in 7MB steps, each step adding
// the medical history of ~10,000 patients, tree depth <= 13, with element
// nodes dominating (303,714 elements / 151,187 texts at 7MB). This generator
// reproduces those shape characteristics: document size scales linearly in
// `patients`, every patient carries visits (each a test or a medication with
// a diagnosis), a recursive ancestor chain (parent/patient), and optional
// sibling histories; `heart_disease_prob` controls filter selectivity.

#ifndef SMOQE_GEN_HOSPITAL_GENERATOR_H_
#define SMOQE_GEN_HOSPITAL_GENERATOR_H_

#include <cstdint>

#include "xml/tree.h"

namespace smoqe::gen {

struct HospitalParams {
  int patients = 1000;         // in-patients (each adds ~30-45 element nodes)
  int departments = 5;         // patients are distributed round-robin
  int max_ancestor_depth = 3;  // longest parent/patient chain
  double parent_prob = 0.7;    // chance a (remaining-depth) ancestor exists
  double sibling_prob = 0.25;  // chance of one sibling history per patient
  int visits_min = 1;
  int visits_max = 3;
  double medication_prob = 0.7;    // visit treatment: medication vs test
  double heart_disease_prob = 0.1; // P(diagnosis text == "heart disease")
  uint64_t seed = 42;
};

/// Deterministic for a fixed parameter set (including seed).
xml::Tree GenerateHospital(const HospitalParams& params);

}  // namespace smoqe::gen

#endif  // SMOQE_GEN_HOSPITAL_GENERATOR_H_
