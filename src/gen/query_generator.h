// Random Xreg / X query generator for property-based tests.

#ifndef SMOQE_GEN_QUERY_GENERATOR_H_
#define SMOQE_GEN_QUERY_GENERATOR_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "xpath/ast.h"

namespace smoqe::gen {

struct QueryGenParams {
  std::vector<std::string> labels;       // step alphabet (required)
  std::vector<std::string> text_values;  // for text()='c' filters
  int max_depth = 4;                     // AST nesting budget
  bool allow_star = true;                // false => X fragment only ('//')
  bool allow_filters = true;
  bool allow_negation = true;
  bool allow_position = false;
};

/// Draws a random query. Deterministic given the RNG state.
xpath::PathPtr RandomQuery(const QueryGenParams& params, std::mt19937_64* rng);

}  // namespace smoqe::gen

#endif  // SMOQE_GEN_QUERY_GENERATOR_H_
