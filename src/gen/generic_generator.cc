#include "gen/generic_generator.h"

#include <random>

namespace smoqe::gen {

namespace {

class GenericGenerator {
 public:
  GenericGenerator(const dtd::Dtd& dtd, const GenericParams& p)
      : dtd_(dtd), p_(p), rng_(p.seed) {}

  StatusOr<xml::Tree> Run() {
    xml::NodeId root = tree_.AddRoot(dtd_.type_name(dtd_.root()));
    SMOQE_RETURN_IF_ERROR(Fill(dtd_.root(), root, 1));
    return std::move(tree_);
  }

 private:
  int Range(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }

  Status Fill(dtd::TypeId type, xml::NodeId self, int depth) {
    if (depth > p_.hard_depth) {
      return Status::FailedPrecondition(
          "hard depth exceeded: DTD requires unboundedly deep documents");
    }
    const dtd::Production& prod = dtd_.production(type);
    switch (prod.kind) {
      case dtd::ContentKind::kText: {
        int i = Range(0, static_cast<int>(p_.text_values.size()) - 1);
        tree_.AddText(self, p_.text_values[i]);
        return Status::OK();
      }
      case dtd::ContentKind::kEmpty:
        return Status::OK();
      case dtd::ContentKind::kSequence: {
        for (const dtd::ChildSpec& spec : prod.children) {
          int count = 1;
          if (spec.starred) {
            count = depth > p_.soft_depth ? 0 : Range(p_.star_min, p_.star_max);
          }
          for (int i = 0; i < count; ++i) {
            xml::NodeId c = tree_.AddElement(self, dtd_.type_name(spec.type));
            SMOQE_RETURN_IF_ERROR(Fill(spec.type, c, depth + 1));
          }
        }
        return Status::OK();
      }
      case dtd::ContentKind::kChoice: {
        // Past soft depth, prefer a starred branch (expandable to zero).
        int pick = -1;
        if (depth > p_.soft_depth) {
          for (size_t i = 0; i < prod.children.size(); ++i) {
            if (prod.children[i].starred) {
              pick = static_cast<int>(i);
              break;
            }
          }
        }
        if (pick == -1) {
          pick = Range(0, static_cast<int>(prod.children.size()) - 1);
        }
        const dtd::ChildSpec& spec = prod.children[pick];
        int count = 1;
        if (spec.starred) {
          count = depth > p_.soft_depth ? 0 : Range(p_.star_min, p_.star_max);
        }
        for (int i = 0; i < count; ++i) {
          xml::NodeId c = tree_.AddElement(self, dtd_.type_name(spec.type));
          SMOQE_RETURN_IF_ERROR(Fill(spec.type, c, depth + 1));
        }
        return Status::OK();
      }
    }
    return Status::Internal("unreachable production kind");
  }

  const dtd::Dtd& dtd_;
  const GenericParams& p_;
  xml::Tree tree_;
  std::mt19937_64 rng_;
};

}  // namespace

StatusOr<xml::Tree> GenerateFromDtd(const dtd::Dtd& dtd,
                                    const GenericParams& params) {
  SMOQE_RETURN_IF_ERROR(dtd.Validate());
  return GenericGenerator(dtd, params).Run();
}

}  // namespace smoqe::gen
