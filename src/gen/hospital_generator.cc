#include "gen/hospital_generator.h"

#include <random>
#include <string>

namespace smoqe::gen {

namespace {

const char* const kDiseases[] = {
    "heart disease", "lung disease", "brain disease", "diabetes",
    "influenza",     "asthma",       "arthritis",     "migraine",
};
const char* const kSpecialties[] = {"cardiology", "neurology", "oncology",
                                    "pediatrics"};
const char* const kCities[] = {"Edinburgh", "Istanbul", "Antwerp", "Madison"};

class Generator {
 public:
  explicit Generator(const HospitalParams& p) : p_(p), rng_(p.seed) {}

  xml::Tree Run() {
    xml::NodeId hospital = tree_.AddRoot("hospital");
    int departments = p_.departments < 1 ? 1 : p_.departments;
    std::vector<xml::NodeId> depts;
    for (int d = 0; d < departments; ++d) {
      xml::NodeId dept = tree_.AddElement(hospital, "department");
      AddTextChild(dept, "name", "dept-" + std::to_string(d));
      AddAddress(dept);
      depts.push_back(dept);
    }
    for (int i = 0; i < p_.patients; ++i) {
      AddPatient(depts[i % departments], i, p_.max_ancestor_depth,
                 /*allow_sibling=*/true);
    }
    return std::move(tree_);
  }

 private:
  bool Flip(double prob) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < prob;
  }
  int Range(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }

  void AddTextChild(xml::NodeId parent, const char* label,
                    const std::string& text) {
    tree_.AddText(tree_.AddElement(parent, label), text);
  }

  void AddAddress(xml::NodeId parent) {
    xml::NodeId address = tree_.AddElement(parent, "address");
    AddTextChild(address, "street", std::to_string(Range(1, 200)) + " Main St");
    AddTextChild(address, "city", kCities[Range(0, 3)]);
    AddTextChild(address, "zip", std::to_string(Range(10000, 99999)));
  }

  void AddVisit(xml::NodeId patient) {
    xml::NodeId visit = tree_.AddElement(patient, "visit");
    AddTextChild(visit, "date",
                 "2006-" + std::to_string(Range(1, 12)) + "-" +
                     std::to_string(Range(1, 28)));
    xml::NodeId treatment = tree_.AddElement(visit, "treatment");
    if (Flip(p_.medication_prob)) {
      xml::NodeId medication = tree_.AddElement(treatment, "medication");
      AddTextChild(medication, "type", "med-" + std::to_string(Range(1, 50)));
      const char* disease = Flip(p_.heart_disease_prob)
                                ? "heart disease"
                                : kDiseases[Range(1, 7)];
      AddTextChild(medication, "diagnosis", disease);
    } else {
      xml::NodeId test = tree_.AddElement(treatment, "test");
      AddTextChild(test, "type", "test-" + std::to_string(Range(1, 50)));
    }
    xml::NodeId doctor = tree_.AddElement(visit, "doctor");
    AddTextChild(doctor, "dname", "dr-" + std::to_string(Range(1, 500)));
    AddTextChild(doctor, "specialty", kSpecialties[Range(0, 3)]);
  }

  // A patient subtree: pname, address, visits, then the recursive family
  // history (ancestors share the patient description, as in the paper).
  void AddPatient(xml::NodeId parent, int serial, int ancestor_budget,
                  bool allow_sibling) {
    xml::NodeId patient = tree_.AddElement(parent, "patient");
    AddTextChild(patient, "pname", "p-" + std::to_string(serial));
    AddAddress(patient);
    int visits = Range(p_.visits_min, p_.visits_max);
    for (int v = 0; v < visits; ++v) AddVisit(patient);
    if (ancestor_budget > 0 && Flip(p_.parent_prob)) {
      xml::NodeId par = tree_.AddElement(patient, "parent");
      AddPatient(par, serial * 101 + 1, ancestor_budget - 1,
                 /*allow_sibling=*/false);
    }
    if (allow_sibling && Flip(p_.sibling_prob)) {
      xml::NodeId sib = tree_.AddElement(patient, "sibling");
      AddPatient(sib, serial * 103 + 2, 0, /*allow_sibling=*/false);
    }
  }

  const HospitalParams& p_;
  xml::Tree tree_;
  std::mt19937_64 rng_;
};

}  // namespace

xml::Tree GenerateHospital(const HospitalParams& params) {
  return Generator(params).Run();
}

}  // namespace smoqe::gen
