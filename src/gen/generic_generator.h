// DTD-driven random document generator (for property tests): produces a
// random document conforming to an arbitrary DTD in the paper's normal form.

#ifndef SMOQE_GEN_GENERIC_GENERATOR_H_
#define SMOQE_GEN_GENERIC_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dtd/dtd.h"
#include "xml/tree.h"

namespace smoqe::gen {

struct GenericParams {
  /// Expansion count for starred child types (chosen uniformly, but forced to
  /// 0 once `soft_depth` is exceeded so recursive DTDs terminate).
  int star_min = 0;
  int star_max = 2;
  int soft_depth = 8;
  /// Unstarred/chosen branches keep expanding below soft_depth; generation
  /// fails if a required expansion would exceed hard_depth (a DTD like
  /// a -> b; b -> a; admits no finite documents).
  int hard_depth = 64;
  std::vector<std::string> text_values = {"alpha", "beta", "gamma", "delta"};
  uint64_t seed = 7;
};

StatusOr<xml::Tree> GenerateFromDtd(const dtd::Dtd& dtd,
                                    const GenericParams& params);

}  // namespace smoqe::gen

#endif  // SMOQE_GEN_GENERIC_GENERATOR_H_
