// NameTable: string interning for element labels.
//
// Trees, DTDs and automata each intern their label strings once; hot loops
// then compare int32 LabelIds instead of strings. Different tables assign
// unrelated ids, so components translate ids through label strings when they
// meet (see e.g. hype::LabelBinding).

#ifndef SMOQE_COMMON_NAME_TABLE_H_
#define SMOQE_COMMON_NAME_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace smoqe {

using LabelId = int32_t;
inline constexpr LabelId kNoLabel = -1;

class NameTable {
 public:
  /// Returns the id for `name`, interning it if new.
  LabelId Intern(std::string_view name);

  /// Returns the id for `name` or kNoLabel when never interned.
  LabelId Lookup(std::string_view name) const;

  const std::string& name(LabelId id) const { return names_[id]; }
  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> index_;
};

}  // namespace smoqe

#endif  // SMOQE_COMMON_NAME_TABLE_H_
