// A work-stealing thread pool: the execution substrate of the parallel
// query service (exec/).
//
// Each worker owns a deque; its owner pushes and pops at the back (LIFO, so
// freshly spawned subtasks run hot in cache), while idle workers steal from
// the front of other workers' deques (FIFO, so thieves take the oldest --
// typically largest -- pending task). External submissions are distributed
// round-robin. The design follows the classic owner-LIFO / thief-FIFO
// discipline; deques are mutex-guarded (per-deque, so contention is between
// one owner and occasional thieves, not across the pool), which keeps the
// pool simple to reason about and clean under ThreadSanitizer.
//
// Shutdown semantics: the destructor stops accepting new work, DRAINS every
// queued task, then joins. A task Submit accepted always runs; a Submit
// racing (or following) the destructor is rejected -- the task is dropped
// and a SubmitWithResult future reports broken_promise.
//
// Blocking caveat: a task must not block on the completion of other pool
// tasks unless the pool is known to have idle workers (classic pool
// deadlock). The sharded evaluator obeys this by waiting only on the
// SUBMITTING (non-pool) thread.

#ifndef SMOQE_COMMON_THREAD_POOL_H_
#define SMOQE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace smoqe::common {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means the hardware concurrency (at
  /// least 1).
  explicit ThreadPool(int num_threads = 0);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. From a pool thread, the task lands on that worker's
  /// own deque (depth-first execution of nested work); from outside,
  /// round-robin. The task must not throw.
  void Submit(std::function<void()> task);

  /// Submit returning a future for the callable's result (exceptions
  /// propagate through the future).
  template <typename F>
  auto SubmitWithResult(F f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> result = task->get_future();
    Submit([task] { (*task)(); });
    return result;
  }

  /// True when called from one of this pool's worker threads (the condition
  /// under which waiting on pool futures can deadlock).
  bool OnPoolThread() const;

  /// std::thread::hardware_concurrency clamped to >= 1.
  static int HardwareThreads();

 private:
  // One owner-LIFO / thief-FIFO deque per worker.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int self);
  bool TryDequeue(int self, std::function<void()>* task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<uint32_t> next_queue_{0};

  // Sleep/wake state. `pending_` counts tasks sitting in deques (decremented
  // when a worker dequeues, before running), so `stop_ && pending_ == 0` is
  // the drain-complete exit condition.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  int64_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace smoqe::common

#endif  // SMOQE_COMMON_THREAD_POOL_H_
