#include "common/fault_injection.h"

#include <thread>

namespace smoqe {

std::atomic<bool> FaultInjector::armed_flag_{false};

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(uint64_t seed) {
  seed_ = seed;
  for (Site& s : sites_) {
    s.plan = FaultPlan{};
    s.hits.store(0, std::memory_order_relaxed);
    s.fired.store(0, std::memory_order_relaxed);
  }
  armed_flag_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  armed_flag_.store(false, std::memory_order_release);
}

void FaultInjector::SetPlan(FaultSite site, FaultPlan plan) {
  if (plan.one_in == 0) plan.one_in = 1;
  sites_[static_cast<int>(site)].plan = plan;
}

namespace {
// splitmix64: decisions depend only on (seed, site, hit#), never on timing.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

Status FaultInjector::Hit(FaultSite site) {
  Site& s = sites_[static_cast<int>(site)];
  if (s.plan.kind == FaultKind::kNone) return Status::OK();
  uint64_t n = s.hits.fetch_add(1, std::memory_order_relaxed);
  uint64_t roll =
      Mix(seed_ ^ Mix(static_cast<uint64_t>(site) + 1) ^ Mix(n + 0x5151ULL));
  if (roll % s.plan.one_in != 0) return Status::OK();
  s.fired.fetch_add(1, std::memory_order_relaxed);
  switch (s.plan.kind) {
    case FaultKind::kTransientError:
      return Status::Unavailable("injected transient fault");
    case FaultKind::kAllocFailure:
      return Status::ResourceExhausted("injected allocation failure");
    case FaultKind::kDelay:
      std::this_thread::sleep_for(s.plan.delay);
      return Status::OK();
    case FaultKind::kNone:
      break;
  }
  return Status::OK();
}

int64_t FaultInjector::hits(FaultSite site) const {
  return static_cast<int64_t>(
      sites_[static_cast<int>(site)].hits.load(std::memory_order_relaxed));
}

int64_t FaultInjector::fired(FaultSite site) const {
  return static_cast<int64_t>(
      sites_[static_cast<int>(site)].fired.load(std::memory_order_relaxed));
}

}  // namespace smoqe
