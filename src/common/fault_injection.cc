#include "common/fault_injection.h"

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace smoqe {

std::atomic<bool> FaultInjector::armed_flag_{false};

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(uint64_t seed) {
  seed_ = seed;
  for (Site& s : sites_) {
    s.plan = FaultPlan{};
    s.hits.store(0, std::memory_order_relaxed);
    s.fired.store(0, std::memory_order_relaxed);
  }
  armed_flag_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  armed_flag_.store(false, std::memory_order_release);
}

void FaultInjector::SetPlan(FaultSite site, FaultPlan plan) {
  if (plan.one_in == 0) plan.one_in = 1;
  sites_[static_cast<int>(site)].plan = plan;
}

namespace {
// splitmix64: decisions depend only on (seed, site, hit#), never on timing.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

Status FaultInjector::Hit(FaultSite site) {
  size_t unused = 0;
  return HitWrite(site, 0, &unused);
}

Status FaultInjector::HitWrite(FaultSite site, size_t len,
                               size_t* keep_prefix) {
  *keep_prefix = 0;
  Site& s = sites_[static_cast<int>(site)];
  if (s.plan.kind == FaultKind::kNone) return Status::OK();
  uint64_t n = s.hits.fetch_add(1, std::memory_order_relaxed);
  uint64_t roll =
      Mix(seed_ ^ Mix(static_cast<uint64_t>(site) + 1) ^ Mix(n + 0x5151ULL));
  if (s.plan.window_count > 0) {
    // Deterministic window (env specs, kill-point tests): fire on exactly
    // the hits in [window_first, window_first + window_count).
    if (n < s.plan.window_first ||
        n >= static_cast<uint64_t>(s.plan.window_first) + s.plan.window_count) {
      return Status::OK();
    }
  } else if (roll % s.plan.one_in != 0) {
    return Status::OK();
  }
  s.fired.fetch_add(1, std::memory_order_relaxed);
  switch (s.plan.kind) {
    case FaultKind::kTransientError:
      return Status::Unavailable("injected transient fault");
    case FaultKind::kAllocFailure:
      return Status::ResourceExhausted("injected allocation failure");
    case FaultKind::kDelay:
      std::this_thread::sleep_for(s.plan.delay);
      return Status::OK();
    case FaultKind::kTornWrite:
      // The prefix length is a pure function of (seed, site, hit#) like the
      // firing decision, so a chaos round's torn writes replay exactly.
      if (len > 0) *keep_prefix = static_cast<size_t>(Mix(roll) % len);
      return Status::Unavailable("injected torn write");
    case FaultKind::kNone:
      break;
  }
  return Status::OK();
}

namespace {

struct SiteName {
  const char* name;
  FaultSite site;
};

constexpr SiteName kSiteNames[] = {
    {"shard_unit", FaultSite::kShardUnit},
    {"epoch_apply", FaultSite::kEpochApply},
    {"plane_intern", FaultSite::kPlaneIntern},
    {"service_admit", FaultSite::kServiceAdmit},
    {"service_dispatch", FaultSite::kServiceDispatch},
    {"wal_append", FaultSite::kWalAppend},
    {"wal_fsync", FaultSite::kWalFsync},
    {"snapshot_write", FaultSite::kSnapshotWrite},
    {"snapshot_rename", FaultSite::kSnapshotRename},
};

bool ParseU32(std::string_view s, uint32_t* out) {
  if (s.empty() || s.size() > 9) return false;
  uint32_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint32_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

Status FaultInjector::SetPlansFromSpec(std::string_view spec) {
  // Parse the whole spec before installing anything: a malformed entry must
  // not leave a half-applied plan set behind.
  struct Parsed {
    FaultSite site = FaultSite::kShardUnit;
    FaultPlan plan;
  };
  std::vector<Parsed> parsed;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      if (pos > spec.size()) break;  // trailing empty segment
      return Status::InvalidArgument("SMOQE_FAULT_PLAN: empty entry");
    }
    // site:first_hit:count[:kind]
    std::string_view fields[4];
    int nfields = 0;
    size_t fpos = 0;
    while (nfields < 4 && fpos <= entry.size()) {
      size_t colon = entry.find(':', fpos);
      if (colon == std::string_view::npos) colon = entry.size();
      fields[nfields++] = entry.substr(fpos, colon - fpos);
      fpos = colon + 1;
      if (colon == entry.size()) break;
    }
    if (nfields < 3 || (nfields == 4 && fpos <= entry.size())) {
      return Status::InvalidArgument(
          "SMOQE_FAULT_PLAN: entry '" + std::string(entry) +
          "' is not site:first_hit:count[:kind]");
    }
    Parsed p;
    bool known = false;
    for (const SiteName& sn : kSiteNames) {
      if (fields[0] == sn.name) {
        p.site = sn.site;
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("SMOQE_FAULT_PLAN: unknown site '" +
                                     std::string(fields[0]) + "'");
    }
    p.plan.kind = FaultKind::kTransientError;
    if (!ParseU32(fields[1], &p.plan.window_first) ||
        !ParseU32(fields[2], &p.plan.window_count) ||
        p.plan.window_count == 0) {
      return Status::InvalidArgument(
          "SMOQE_FAULT_PLAN: bad window in '" + std::string(entry) +
          "' (first_hit and a positive count required)");
    }
    if (nfields == 4) {
      if (fields[3] == "error") {
        p.plan.kind = FaultKind::kTransientError;
      } else if (fields[3] == "alloc") {
        p.plan.kind = FaultKind::kAllocFailure;
      } else if (fields[3] == "torn") {
        p.plan.kind = FaultKind::kTornWrite;
      } else {
        return Status::InvalidArgument("SMOQE_FAULT_PLAN: unknown kind '" +
                                       std::string(fields[3]) + "'");
      }
    }
    parsed.push_back(p);
    if (comma == spec.size()) break;
  }
  for (const Parsed& p : parsed) SetPlan(p.site, p.plan);
  return Status::OK();
}

Status FaultInjector::SetPlansFromEnv() {
  const char* spec = std::getenv("SMOQE_FAULT_PLAN");
  if (spec == nullptr || *spec == '\0') return Status::OK();
  return SetPlansFromSpec(spec);
}

int64_t FaultInjector::hits(FaultSite site) const {
  return static_cast<int64_t>(
      sites_[static_cast<int>(site)].hits.load(std::memory_order_relaxed));
}

int64_t FaultInjector::fired(FaultSite site) const {
  return static_cast<int64_t>(
      sites_[static_cast<int>(site)].fired.load(std::memory_order_relaxed));
}

}  // namespace smoqe
