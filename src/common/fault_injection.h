// Deterministic, site-registered fault injection for the chaos suite.
//
// A FaultInjector is a process-global registry of named fault sites compiled
// into cold paths of the engine (shard-unit dispatch, epoch publish, plane
// interning, service admission, dispatcher wakeup). Each site can be armed
// with a plan: fail 1-in-N hits with a transient error / simulated alloc
// failure, or sleep an injected delay. Decisions are a pure function of
// (seed, site, per-site hit counter), so a chaos round reproduces exactly
// from its logged seed regardless of thread interleaving *per site*.
//
// Cost model: sites are compiled in only when the build sets
// -DSMOQE_FAULT_INJECTION=ON (the default; see CMakeLists.txt). When
// compiled in but disarmed, a site is one relaxed atomic load. When compiled
// out, the macros expand to nothing.
//
// Usage at a site:
//
//   SMOQE_FAULT_RETURN_IF_INJECTED(FaultSite::kEpochApply);   // returns Status
//   SMOQE_FAULT_HIT(FaultSite::kShardUnit, [&](Status s) {    // custom sink
//     gate->Trip(std::move(s));
//   });
//
// Arming (tests only; arm before spawning threads, disarm after joining):
//
//   auto& fi = FaultInjector::Global();
//   fi.Arm(seed);
//   fi.SetPlan(FaultSite::kShardUnit,
//              {FaultKind::kTransientError, /*one_in=*/7});
//   ... run workload ...
//   fi.Disarm();

#ifndef SMOQE_COMMON_FAULT_INJECTION_H_
#define SMOQE_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace smoqe {

enum class FaultSite : int {
  kShardUnit = 0,    // ShardedBatchEvaluator, before evaluating one unit
  kEpochApply,       // EpochPublisher::Apply, after replica build, pre-publish
  kPlaneIntern,      // TransitionPlane write path (delay only: exercises the
                     // shared_mutex under contention; errors here would poison
                     // the shared per-query plane)
  kServiceAdmit,     // QueryService::Submit admission decision
  kServiceDispatch,  // dispatcher thread, start of batch collection (delay:
                     // widens the spurious-wakeup window of the wait loop)
  kWalAppend,        // storage::WalWriter::Append, before the record write
                     // (torn-write capable: a prefix of the record persists)
  kWalFsync,         // storage::WalWriter::Sync, before the fsync
  kSnapshotWrite,    // snapshot temp-file write (torn-write capable)
  kSnapshotRename,   // snapshot/manifest atomic rename, before the rename
  kNumSites,
};

enum class FaultKind : int {
  kNone = 0,
  kTransientError,  // injects Status::Unavailable
  kAllocFailure,    // injects Status::ResourceExhausted (simulated bad_alloc
                    // at a boundary that must stay exception-free)
  kDelay,           // sleeps `delay`, then proceeds (kOk)
  kTornWrite,       // write sites only: persist a deterministic prefix of
                    // the pending write, then fail (simulated crash mid-write)
};

struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  // Fire on hits where Mix(seed, site, hit#) % one_in == 0; 1 = every hit.
  uint32_t one_in = 1;
  std::chrono::microseconds delay{0};
  // Deterministic window (used by SMOQE_FAULT_PLAN env specs and kill-point
  // tests): when window_count > 0 the site fires on exactly the hits in
  // [window_first, window_first + window_count), ignoring one_in.
  uint32_t window_first = 0;
  uint32_t window_count = 0;
};

class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Fast armed check for the macros; a single relaxed load.
  static bool armed() {
    return armed_flag_.load(std::memory_order_relaxed);
  }

  /// Enables injection with a deterministic seed and clears all plans and
  /// counters. Call from a quiescent process (no evaluations in flight).
  void Arm(uint64_t seed);

  /// Disables injection; plans stay readable for post-round assertions.
  void Disarm();

  void SetPlan(FaultSite site, FaultPlan plan);

  /// Parses a `SMOQE_FAULT_PLAN`-style spec -- comma-separated
  /// `site:first_hit:count` entries, e.g. `"wal_append:3:1,wal_fsync:0:2"`
  /// -- and installs a kTransientError plan with that deterministic window
  /// per named site. Call between Arm() and the workload (plans are written
  /// only while quiescent). Site names are the enumerators in snake_case
  /// without the `k` (`shard_unit`, `epoch_apply`, `plane_intern`,
  /// `service_admit`, `service_dispatch`, `wal_append`, `wal_fsync`,
  /// `snapshot_write`, `snapshot_rename`); an optional fourth field names
  /// the kind (`error`, `alloc`, `torn`). Malformed specs reject the whole
  /// string and install nothing.
  Status SetPlansFromSpec(std::string_view spec);

  /// SetPlansFromSpec over the SMOQE_FAULT_PLAN environment variable; a
  /// no-op Status::OK() when the variable is unset or empty. Lets CI chaos
  /// jobs vary scenarios per run without recompiling.
  Status SetPlansFromEnv();

  /// Called by a compiled-in site. Returns the injected Status (kOk when the
  /// site is unplanned or this hit does not fire). kDelay sleeps here;
  /// kTornWrite surfaces as a plain Unavailable (write sites use HitWrite).
  Status Hit(FaultSite site);

  /// Write-site variant: like Hit, but a firing kTornWrite plan sets
  /// *keep_prefix to a deterministic prefix length in [0, len) that the
  /// caller must persist before failing; every other outcome leaves
  /// *keep_prefix = 0.
  Status HitWrite(FaultSite site, size_t len, size_t* keep_prefix);

  /// Counters for test assertions: total traversals of the site / faults fired.
  int64_t hits(FaultSite site) const;
  int64_t fired(FaultSite site) const;

 private:
  FaultInjector() = default;

  struct Site {
    FaultPlan plan;  // written only while disarmed
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> fired{0};
  };

  static std::atomic<bool> armed_flag_;

  uint64_t seed_ = 0;
  Site sites_[static_cast<int>(FaultSite::kNumSites)];
};

/// Armed-checked wrapper for write sites (the storage layer calls this
/// instead of a macro because it needs the prefix length as a value). When
/// injection is compiled out or disarmed this is a single branch.
inline Status FaultHitWrite(FaultSite site, size_t len, size_t* keep_prefix) {
  *keep_prefix = 0;
#ifdef SMOQE_FAULT_INJECTION
  if (FaultInjector::armed()) {
    return FaultInjector::Global().HitWrite(site, len, keep_prefix);
  }
#else
  (void)site;
  (void)len;
#endif
  return Status::OK();
}

}  // namespace smoqe

#ifdef SMOQE_FAULT_INJECTION

/// Runs `sink` (any callable taking Status&&) if this hit injects a fault.
#define SMOQE_FAULT_HIT(site, sink)                                     \
  do {                                                                  \
    if (::smoqe::FaultInjector::armed()) {                              \
      ::smoqe::Status _smoqe_fault =                                    \
          ::smoqe::FaultInjector::Global().Hit(site);                   \
      if (!_smoqe_fault.ok()) sink(std::move(_smoqe_fault));            \
    }                                                                   \
  } while (0)

/// Early-returns the injected Status from a Status-returning function.
#define SMOQE_FAULT_RETURN_IF_INJECTED(site)                            \
  do {                                                                  \
    if (::smoqe::FaultInjector::armed()) {                              \
      ::smoqe::Status _smoqe_fault =                                    \
          ::smoqe::FaultInjector::Global().Hit(site);                   \
      if (!_smoqe_fault.ok()) return _smoqe_fault;                      \
    }                                                                   \
  } while (0)

/// Delay-only site: injected delays apply, injected error Statuses are
/// dropped (used where a failure cannot be surfaced without poisoning shared
/// state, e.g. the transition plane's interning path).
#define SMOQE_FAULT_DELAY_POINT(site)                                   \
  do {                                                                  \
    if (::smoqe::FaultInjector::armed()) {                              \
      (void)::smoqe::FaultInjector::Global().Hit(site);                 \
    }                                                                   \
  } while (0)

#else  // !SMOQE_FAULT_INJECTION

#define SMOQE_FAULT_HIT(site, sink) \
  do {                              \
  } while (0)
#define SMOQE_FAULT_RETURN_IF_INJECTED(site) \
  do {                                       \
  } while (0)
#define SMOQE_FAULT_DELAY_POINT(site) \
  do {                                \
  } while (0)

#endif  // SMOQE_FAULT_INJECTION

#endif  // SMOQE_COMMON_FAULT_INJECTION_H_
