// Status / StatusOr: exception-free error handling for the SMOQE library.
//
// The library never throws; fallible operations return Status or StatusOr<T>
// (the RocksDB/Abseil idiom). Use SMOQE_RETURN_IF_ERROR / SMOQE_ASSIGN_OR_RETURN
// to propagate errors.

#ifndef SMOQE_COMMON_STATUS_H_
#define SMOQE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace smoqe {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something structurally wrong
  kParseError,        // malformed XML / DTD / query / view text
  kNotFound,          // missing label, production, or annotation
  kFailedPrecondition,// input violates a documented invariant (e.g. invalid view)
  kUnimplemented,     // feature intentionally not supported (documented)
  kInternal,          // invariant broken inside the library (a bug)
  kCancelled,         // caller cancelled the operation via a CancelToken
  kDeadlineExceeded,  // the operation's deadline expired before completion
  kResourceExhausted, // admission control shed the request (queue full/aged)
  kUnavailable,       // transient failure; safe to retry (fault injection,
                      // publish aborted, shard worker unavailable)
};

/// A success-or-error result. Cheap to copy on the success path (no message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>", for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of T or an error Status. `value()` asserts ok().
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T&& take() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

#define SMOQE_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::smoqe::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (0)

#define SMOQE_CONCAT_INNER_(a, b) a##b
#define SMOQE_CONCAT_(a, b) SMOQE_CONCAT_INNER_(a, b)

#define SMOQE_ASSIGN_OR_RETURN(lhs, expr)                       \
  SMOQE_ASSIGN_OR_RETURN_IMPL_(SMOQE_CONCAT_(_sor_, __LINE__), lhs, expr)

#define SMOQE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = tmp.take();

}  // namespace smoqe

#endif  // SMOQE_COMMON_STATUS_H_
