#include "common/name_table.h"

namespace smoqe {

LabelId NameTable::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

LabelId NameTable::Lookup(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kNoLabel : it->second;
}

}  // namespace smoqe
