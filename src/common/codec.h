// Little-endian binary encode/decode helpers shared by the on-disk formats:
// TreeDelta's wire form (xml/tree_delta.h) and the storage layer's snapshot,
// WAL, and manifest files (src/storage/).
//
// Writers append fixed-width integers and length-prefixed byte strings to a
// std::string. Readers go through a bounds-checked Cursor: every Read*
// validates against the remaining input and fails sticky instead of running
// past the end, so decoders built on it are memory-safe on ANY input --
// truncated, bit-flipped, or adversarial. (The corruption-fuzz suites rely
// on exactly that: corrupt bytes must surface as a Status, never as UB.)

#ifndef SMOQE_COMMON_CODEC_H_
#define SMOQE_COMMON_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace smoqe::common {

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(buf, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffULL));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

inline void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

/// Length-prefixed (u32) byte string.
inline void PutBytes(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Bounds-checked sequential reader. Any out-of-range read fails the cursor
/// permanently (ok() goes false) and leaves the output untouched; callers
/// check ok() once per decoded unit instead of per field.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : p_(data), end_(data + size) {}
  explicit Cursor(std::string_view s) : Cursor(s.data(), s.size()) {}

  bool ok() const { return !failed_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  bool ReadU8(uint8_t* v) {
    if (failed_ || remaining() < 1) return Fail();
    *v = static_cast<uint8_t>(*p_++);
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (failed_ || remaining() < 4) return Fail();
    const auto* b = reinterpret_cast<const unsigned char*>(p_);
    const uint32_t r = static_cast<uint32_t>(b[0]) |
                       (static_cast<uint32_t>(b[1]) << 8) |
                       (static_cast<uint32_t>(b[2]) << 16) |
                       (static_cast<uint32_t>(b[3]) << 24);
    p_ += 4;
    *v = r;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }

  bool ReadI32(int32_t* v) {
    uint32_t u = 0;
    if (!ReadU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  /// Length-prefixed byte string; the length is validated against the
  /// remaining input BEFORE allocating, so a corrupt length cannot trigger
  /// a huge allocation.
  bool ReadBytes(std::string* out) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (remaining() < len) return Fail();
    out->assign(p_, len);
    p_ += len;
    return true;
  }

  bool Skip(size_t n) {
    if (failed_ || remaining() < n) return Fail();
    p_ += n;
    return true;
  }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }

  const char* p_;
  const char* end_;
  bool failed_ = false;
};

}  // namespace smoqe::common

#endif  // SMOQE_COMMON_CODEC_H_
