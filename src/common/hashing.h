// Shared hashing helpers for the unordered_map memo tables used across the
// rewriters, the HyPE configuration store, and the rewrite cache.
//
// Standard containers keyed by pairs/tuples need an explicit hasher; these
// fold the element-wise std::hash values with the Fibonacci/golden-ratio
// mixing step (the same combiner the HyPE config interner always used).

#ifndef SMOQE_COMMON_HASHING_H_
#define SMOQE_COMMON_HASHING_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <tuple>
#include <utility>

namespace smoqe {

inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    uint64_t h = std::hash<A>{}(p.first);
    return static_cast<size_t>(HashCombine(h, std::hash<B>{}(p.second)));
  }
};

struct TupleHash {
  template <typename... Ts>
  size_t operator()(const std::tuple<Ts...>& t) const {
    uint64_t h = 0x517cc1b727220a95ULL;
    std::apply(
        [&h](const Ts&... vs) {
          ((h = HashCombine(h, std::hash<Ts>{}(vs))), ...);
        },
        t);
    return static_cast<size_t>(h);
  }
};

}  // namespace smoqe

#endif  // SMOQE_COMMON_HASHING_H_
