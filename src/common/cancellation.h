// Cooperative cancellation and deadlines for the evaluation drivers.
//
// The unit of work in SMOQE is a document traversal that can visit millions
// of nodes; a pathological rewriting (the exponential blowup the paper warns
// about) can pin a shard worker for seconds. Every driver therefore accepts
// an EvalControl and polls an EvalGate at a bounded node interval:
//
//   CancelToken   shared first-cancel-wins flag (caller or sibling shard
//                 trips it; relaxed atomics, safe to poll from any thread)
//   Deadline      absolute steady_clock point; Never() by default
//   EvalControl   the caller-facing bundle: token + deadline + checkpoint
//                 interval + an optional extra poll hook (the query service
//                 uses it to observe per-member tokens inside one batch)
//   EvalGate      per-thread polling state. Poll() is a plain decrement on
//                 the hot path; every `checkpoint_interval` nodes it reads
//                 the clock/token once (Refresh). Once tripped the gate
//                 latches a terminal Status and cancels the shared token so
//                 sibling gates observe the failure at their next refresh.
//
// Aborting a traversal through the gate leaves engines reusable: drivers
// unwind their explicit stacks normally and the next PrepareRoot/Start
// resets all per-run state.

#ifndef SMOQE_COMMON_CANCELLATION_H_
#define SMOQE_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>

#include "common/status.h"

namespace smoqe {

/// Shared cancellation flag. First Cancel() wins; later calls are no-ops.
/// All loads are relaxed: cancellation is advisory and drivers only need to
/// observe it eventually (within one checkpoint interval).
class CancelToken {
 public:
  CancelToken() : reason_(0) {}

  /// Requests cancellation with `code` (kCancelled, kDeadlineExceeded, ...).
  /// Returns true if this call was the first to cancel.
  bool Cancel(StatusCode code = StatusCode::kCancelled) {
    int expected = 0;
    return reason_.compare_exchange_strong(expected, static_cast<int>(code),
                                           std::memory_order_relaxed,
                                           std::memory_order_relaxed);
  }

  bool cancelled() const {
    return reason_.load(std::memory_order_relaxed) != 0;
  }

  /// kOk while live; the cancelling code once tripped.
  StatusCode reason() const {
    return static_cast<StatusCode>(reason_.load(std::memory_order_relaxed));
  }

  /// Re-arms a token for reuse across rounds (test/bench convenience; do not
  /// call while an evaluation holding this token is in flight).
  void Reset() { reason_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int> reason_;
};

/// An absolute deadline on the steady clock. Default-constructed = never.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() : when_(Clock::time_point::max()) {}
  explicit Deadline(Clock::time_point when) : when_(when) {}

  static Deadline Never() { return Deadline(); }
  static Deadline After(std::chrono::microseconds d) {
    return Deadline(Clock::now() + d);
  }

  bool has_deadline() const { return when_ != Clock::time_point::max(); }
  bool expired() const { return has_deadline() && Clock::now() >= when_; }
  Clock::time_point when() const { return when_; }

 private:
  Clock::time_point when_;
};

/// Caller-facing control bundle passed into evaluation entry points.
/// Default-constructed EvalControl never cancels and costs one branch per
/// checkpoint interval.
struct EvalControl {
  /// Shared cancellation flag, or nullptr. Drivers that fail also Cancel()
  /// this token so concurrent siblings (shard workers) stop early.
  CancelToken* token = nullptr;

  Deadline deadline;  // Never() by default

  /// Nodes visited between gate refreshes. This bounds cancellation latency:
  /// a traversal observes cancellation/deadline after at most this many
  /// additional node entries (documented in BUILDING.md, asserted in test).
  int32_t checkpoint_interval = 1024;

  /// Optional extra poll, called at each refresh. Returning anything other
  /// than kOk aborts with that code. The query service uses this to watch
  /// per-member cancel tokens while evaluating a coalesced batch.
  std::function<StatusCode()> extra_poll;

  bool enabled() const {
    return token != nullptr || deadline.has_deadline() ||
           static_cast<bool>(extra_poll);
  }
};

/// Per-thread polling state for one traversal. Not thread-safe; each worker
/// builds its own gate over the shared EvalControl.
class EvalGate {
 public:
  EvalGate() : control_(nullptr) { Disarm(); }
  explicit EvalGate(const EvalControl* control) { Arm(control); }

  /// (Re)binds the gate. Passing nullptr (or a control with nothing to
  /// watch) disarms it: Poll() stays true forever on a countdown that never
  /// refreshes.
  void Arm(const EvalControl* control) {
    control_ = (control != nullptr && control->enabled()) ? control : nullptr;
    status_ = Status::OK();
    if (control_ == nullptr) {
      Disarm();
    } else {
      interval_ = control_->checkpoint_interval > 0
                      ? control_->checkpoint_interval
                      : 1;
      countdown_ = interval_;
    }
  }

  /// Hot-path check, called once per node entered. Returns false once the
  /// traversal must abort; `status()` then holds the terminal reason.
  bool Poll() {
    if (--countdown_ > 0) return true;
    return Refresh();
  }

  /// True once the gate has latched a failure (Poll() returned false or
  /// Trip() was called).
  bool tripped() const { return !status_.ok(); }

  /// kOk while live; the abort reason once tripped.
  const Status& status() const { return status_; }

  /// Latches `status` (first trip wins) and cancels the shared token so
  /// sibling gates abort too. Used by fault-injection sites and by drivers
  /// that fail outside the polling loop.
  void Trip(Status status) {
    if (tripped() || status.ok()) return;
    status_ = std::move(status);
    countdown_ = 0;  // make the next Poll() observe the latch immediately
    if (control_ != nullptr && control_->token != nullptr) {
      control_->token->Cancel(status_.code());
    }
  }

  /// The full (non-countdown) check: token, deadline, extra hook. Public so
  /// coarse-grained loops (per shard unit, per delta region) can force a
  /// real check regardless of the countdown.
  bool Refresh() {
    if (tripped()) return false;
    if (control_ == nullptr) {
      Disarm();
      return true;
    }
    if (control_->token != nullptr && control_->token->cancelled()) {
      status_ = MakeStatus(control_->token->reason());
      return false;
    }
    if (control_->deadline.expired()) {
      Trip(Status::DeadlineExceeded("evaluation deadline expired"));
      return false;
    }
    if (control_->extra_poll) {
      StatusCode code = control_->extra_poll();
      if (code != StatusCode::kOk) {
        Trip(MakeStatus(code));
        return false;
      }
    }
    countdown_ = interval_;
    return true;
  }

 private:
  void Disarm() {
    // ~53 years of node visits at 1ns/node before the countdown hits zero;
    // a disarmed gate still self-heals through Refresh() if it ever does.
    interval_ = INT64_MAX;
    countdown_ = INT64_MAX;
  }

  static Status MakeStatus(StatusCode code) {
    switch (code) {
      case StatusCode::kDeadlineExceeded:
        return Status::DeadlineExceeded("evaluation deadline expired");
      case StatusCode::kResourceExhausted:
        return Status::ResourceExhausted("evaluation shed by admission control");
      case StatusCode::kUnavailable:
        return Status::Unavailable("evaluation aborted: transient failure");
      default:
        return Status::Cancelled("evaluation cancelled");
    }
  }

  const EvalControl* control_;
  int64_t interval_;
  int64_t countdown_;
  Status status_;
};

}  // namespace smoqe

#endif  // SMOQE_COMMON_CANCELLATION_H_
