#include "common/thread_pool.h"

namespace smoqe::common {

namespace {

// Which pool (if any) the current thread belongs to, and its worker index.
// Lets Submit route nested submissions to the submitting worker's own deque
// and lets OnPoolThread warn against blocking waits inside tasks.
struct PoolAffinity {
  const ThreadPool* pool = nullptr;
  int index = -1;
};
thread_local PoolAffinity tls_affinity;

}  // namespace

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  int n = num_threads > 0 ? num_threads : HardwareThreads();
  queues_.reserve(n);
  for (int i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::OnPoolThread() const { return tls_affinity.pool == this; }

void ThreadPool::Submit(std::function<void()> task) {
  int target;
  if (tls_affinity.pool == this) {
    target = tls_affinity.index;  // nested work stays with its spawner
  } else {
    target = static_cast<int>(next_queue_.fetch_add(
                 1, std::memory_order_relaxed) %
             queues_.size());
  }
  {
    // Claim the slot BEFORE publishing the task: workers cannot observe the
    // drained exit condition (stop_ && pending_ == 0) between the push and
    // the count, so a task accepted here always runs. A Submit that races
    // the destructor is rejected instead (dropped; a SubmitWithResult
    // future then reports broken_promise).
    std::lock_guard<std::mutex> lock(wake_mu_);
    if (stop_) return;
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::TryDequeue(int self, std::function<void()>* task) {
  {
    // Own deque: pop the back (most recently pushed -- cache-hot subtasks).
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // Steal: scan the ring from the next worker, taking the FRONT (oldest)
  // task, which in divide-and-conquer workloads is the biggest chunk.
  const int n = static_cast<int>(queues_.size());
  for (int d = 1; d < n; ++d) {
    WorkerQueue& victim = *queues_[(self + d) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int self) {
  tls_affinity = {this, self};
  std::function<void()> task;
  for (;;) {
    if (TryDequeue(self, &task)) {
      {
        std::lock_guard<std::mutex> lock(wake_mu_);
        --pending_;
      }
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    // pending_ > 0 with an empty scan can only happen in the short window
    // between another worker's dequeue and its decrement; waking and
    // re-scanning is harmless.
    wake_cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
    if (stop_ && pending_ == 0) return;
  }
}

}  // namespace smoqe::common
