#include "xml/doc_plane.h"

#include <cassert>

namespace smoqe::xml {

int32_t DocPlane::Builder::Enter(LabelId label, NodeId node) {
  const int32_t pos = static_cast<int32_t>(plane_.labels_.size());
  plane_.labels_.push_back(label);
  plane_.parent_.push_back(open_.empty() ? -1 : open_.back());
  plane_.depth_.push_back(static_cast<int32_t>(open_.size()));
  plane_.extent_.push_back(0);  // fixed up at Exit
  plane_.node_of_.push_back(node);
  if ((pos & 63) == 0) plane_.text_bits_.push_back(0);
  if (label >= static_cast<LabelId>(postings_.size())) {
    postings_.resize(label + 1);
  }
  postings_[label].push_back(pos);
  open_.push_back(pos);
  return pos;
}

void DocPlane::Builder::MarkText() {
  assert(!open_.empty());
  const int32_t pos = open_.back();
  plane_.text_bits_[pos >> 6] |= uint64_t{1} << (pos & 63);
}

void DocPlane::Builder::Exit() {
  assert(!open_.empty());
  const int32_t pos = open_.back();
  open_.pop_back();
  plane_.extent_[pos] =
      static_cast<int32_t>(plane_.labels_.size()) - pos - 1;
}

DocPlane DocPlane::Builder::Finish(int32_t tree_size, int32_t num_labels) {
  assert(open_.empty() && "Finish before every Enter was Exited");
  plane_.pos_of_.assign(tree_size, -1);
  for (int32_t pos = 0; pos < plane_.size(); ++pos) {
    plane_.pos_of_[plane_.node_of_[pos]] = pos;
  }

  // Pack the per-label lists into one contiguous pool. Every position
  // carries exactly one label, so the lists are pairwise disjoint --
  // content-interning across labels would never fire; the pool's value is
  // consolidation (one allocation, dense spans) alone.
  if (num_labels > static_cast<int32_t>(postings_.size())) {
    postings_.resize(num_labels);
  }
  plane_.posting_ref_.assign(postings_.size(), {0, 0});
  plane_.posting_pool_.reserve(plane_.labels_.size());
  for (size_t l = 0; l < postings_.size(); ++l) {
    const std::vector<int32_t>& list = postings_[l];
    if (list.empty()) continue;
    const int32_t offset = static_cast<int32_t>(plane_.posting_pool_.size());
    plane_.posting_pool_.insert(plane_.posting_pool_.end(), list.begin(),
                                list.end());
    plane_.posting_ref_[l] = {offset, static_cast<int32_t>(list.size())};
  }
  postings_.clear();
  return std::move(plane_);
}

DocPlane DocPlane::Build(const Tree& tree) {
  Builder builder;
  if (tree.empty()) return builder.Finish(0, tree.labels().size());

  // Explicit-stack preorder DFS over elements; node insertion order is
  // irrelevant (generators may interleave subtree construction).
  std::vector<NodeId> stack;  // elements entered, awaiting exit
  stack.push_back(tree.root());
  builder.Enter(tree.label(tree.root()), tree.root());
  std::vector<NodeId> cursor;  // next child to consider per open element
  cursor.push_back(tree.first_child(tree.root()));
  while (!stack.empty()) {
    NodeId c = cursor.back();
    while (c != kNullNode && !tree.is_element(c)) {
      if (tree.kind(c) == NodeKind::kText) builder.MarkText();
      c = tree.next_sibling(c);
    }
    if (c == kNullNode) {
      builder.Exit();
      stack.pop_back();
      cursor.pop_back();
      continue;
    }
    cursor.back() = tree.next_sibling(c);
    builder.Enter(tree.label(c), c);
    stack.push_back(c);
    cursor.push_back(tree.first_child(c));
  }
  return builder.Finish(tree.size(), tree.labels().size());
}

size_t DocPlane::MemoryBytes() const {
  return labels_.size() * sizeof(LabelId) +
         parent_.size() * sizeof(int32_t) + depth_.size() * sizeof(int32_t) +
         extent_.size() * sizeof(int32_t) +
         text_bits_.size() * sizeof(uint64_t) +
         node_of_.size() * sizeof(NodeId) + pos_of_.size() * sizeof(int32_t) +
         posting_pool_.size() * sizeof(int32_t) +
         posting_ref_.size() * sizeof(std::pair<int32_t, int32_t>);
}

}  // namespace smoqe::xml
