#include "xml/doc_plane.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace smoqe::xml {

void DocPlane::Builder::Fail(const char* what) {
  if (status_.ok()) {
    status_ = Status::FailedPrecondition(std::string("DocPlane::Builder: ") +
                                         what);
  }
}

int32_t DocPlane::Builder::Enter(LabelId label, NodeId node) {
  if (open_.empty() && !plane_.labels_.empty()) {
    // The root already closed: this would emit a second root whose rows the
    // extent arithmetic silently misattributes.
    Fail("Enter after the root position closed");
    return -1;
  }
  const int32_t pos = static_cast<int32_t>(plane_.labels_.size());
  plane_.labels_.push_back(label);
  plane_.parent_.push_back(open_.empty() ? -1 : open_.back());
  plane_.depth_.push_back(static_cast<int32_t>(open_.size()));
  plane_.extent_.push_back(0);  // fixed up at Exit
  plane_.node_of_.push_back(node);
  if ((pos & 63) == 0) plane_.text_bits_.push_back(0);
  if (label >= static_cast<LabelId>(postings_.size())) {
    postings_.resize(label + 1);
  }
  postings_[label].push_back(pos);
  open_.push_back(pos);
  return pos;
}

void DocPlane::Builder::MarkText() {
  if (open_.empty()) {
    // Used to flip a stale bit (whatever position happened to close last),
    // corrupting the text() prefilter for an unrelated element.
    Fail("MarkText with no open position");
    return;
  }
  const int32_t pos = open_.back();
  plane_.text_bits_[pos >> 6] |= uint64_t{1} << (pos & 63);
}

void DocPlane::Builder::Exit() {
  if (open_.empty()) {
    Fail("Exit with no open position");
    return;
  }
  const int32_t pos = open_.back();
  open_.pop_back();
  plane_.extent_[pos] =
      static_cast<int32_t>(plane_.labels_.size()) - pos - 1;
}

DocPlane DocPlane::Builder::Finish(int32_t tree_size, int32_t num_labels) {
  if (!open_.empty()) {
    Fail("Finish with positions still open (unbalanced Enter/Exit)");
  }
  if (!status_.ok()) return DocPlane();
  plane_.pos_of_.assign(tree_size, -1);
  for (int32_t pos = 0; pos < plane_.size(); ++pos) {
    plane_.pos_of_[plane_.node_of_[pos]] = pos;
  }

  // Pack the per-label lists into one contiguous pool. Every position
  // carries exactly one label, so the lists are pairwise disjoint --
  // content-interning across labels would never fire; the pool's value is
  // consolidation (one allocation, dense spans) alone.
  if (num_labels > static_cast<int32_t>(postings_.size())) {
    postings_.resize(num_labels);
  }
  plane_.posting_ref_.assign(postings_.size(), {0, 0});
  plane_.posting_pool_.reserve(plane_.labels_.size());
  for (size_t l = 0; l < postings_.size(); ++l) {
    const std::vector<int32_t>& list = postings_[l];
    if (list.empty()) continue;
    const int32_t offset = static_cast<int32_t>(plane_.posting_pool_.size());
    plane_.posting_pool_.insert(plane_.posting_pool_.end(), list.begin(),
                                list.end());
    plane_.posting_ref_[l] = {offset, static_cast<int32_t>(list.size())};
  }
  postings_.clear();
  return std::move(plane_);
}

DocPlane DocPlane::Build(const Tree& tree) {
  Builder builder;
  if (tree.empty()) return builder.Finish(0, tree.labels().size());

  // Explicit-stack preorder DFS over elements; node insertion order is
  // irrelevant (generators may interleave subtree construction).
  std::vector<NodeId> stack;  // elements entered, awaiting exit
  stack.push_back(tree.root());
  builder.Enter(tree.label(tree.root()), tree.root());
  std::vector<NodeId> cursor;  // next child to consider per open element
  cursor.push_back(tree.first_child(tree.root()));
  while (!stack.empty()) {
    NodeId c = cursor.back();
    while (c != kNullNode && !tree.is_element(c)) {
      if (tree.kind(c) == NodeKind::kText) builder.MarkText();
      c = tree.next_sibling(c);
    }
    if (c == kNullNode) {
      builder.Exit();
      stack.pop_back();
      cursor.pop_back();
      continue;
    }
    cursor.back() = tree.next_sibling(c);
    builder.Enter(tree.label(c), c);
    stack.push_back(c);
    cursor.push_back(tree.first_child(c));
  }
  return builder.Finish(tree.size(), tree.labels().size());
}

bool DocPlane::SameAs(const DocPlane& other) const {
  return labels_ == other.labels_ && parent_ == other.parent_ &&
         depth_ == other.depth_ && extent_ == other.extent_ &&
         text_bits_ == other.text_bits_ && node_of_ == other.node_of_ &&
         pos_of_ == other.pos_of_ && posting_pool_ == other.posting_pool_ &&
         posting_ref_ == other.posting_ref_;
}

DocPlane::Maintainer::Maintainer(const DocPlane& base)
    : labels_(base.labels_),
      parent_(base.parent_),
      depth_(base.depth_),
      extent_(base.extent_),
      node_of_(base.node_of_),
      pos_of_(base.pos_of_) {
  // Unpack the bit-packed and pooled forms into splice-friendly working
  // arrays (the only O(plane) cost until Take repacks).
  const int32_t n = base.size();
  text_.resize(n);
  for (int32_t pos = 0; pos < n; ++pos) {
    text_[pos] = base.has_text(pos) ? 1 : 0;
  }
  postings_.resize(base.posting_ref_.size());
  for (size_t l = 0; l < base.posting_ref_.size(); ++l) {
    const auto span = base.postings(static_cast<LabelId>(l));
    postings_[l].assign(span.begin(), span.end());
  }
}

void DocPlane::Maintainer::RefreshPosOf(int32_t from_pos) {
  for (int32_t pos = from_pos; pos < static_cast<int32_t>(node_of_.size());
       ++pos) {
    pos_of_[node_of_[pos]] = pos;
  }
}

void DocPlane::Maintainer::ApplyRelabel(const Tree& tree, NodeId node) {
  const int32_t pos = pos_of_[node];
  const LabelId from = labels_[pos];
  const LabelId to = tree.label(node);
  if (from == to) return;
  labels_[pos] = to;
  auto& old_list = postings_[from];
  old_list.erase(std::lower_bound(old_list.begin(), old_list.end(), pos));
  if (to >= static_cast<LabelId>(postings_.size())) postings_.resize(to + 1);
  auto& new_list = postings_[to];
  new_list.insert(std::lower_bound(new_list.begin(), new_list.end(), pos),
                  pos);
}

void DocPlane::Maintainer::ApplyDelete(NodeId victim) {
  const int32_t pos = pos_of_[victim];
  const int32_t end = pos + extent_[pos] + 1;
  const int32_t k = end - pos;
  // Ancestors lose k descendants; they all sit before `pos`, so their
  // positions are untouched by the splice below.
  for (int32_t a = parent_[pos]; a != -1; a = parent_[a]) extent_[a] -= k;
  for (int32_t q = pos; q < end; ++q) pos_of_[node_of_[q]] = -1;
  // Tail parents at/after the erased range slide down with it; parents
  // inside (pos, end) are impossible for tail rows (subtrees are
  // contiguous), and parents before `pos` do not move.
  for (int32_t q = end; q < static_cast<int32_t>(parent_.size()); ++q) {
    if (parent_[q] >= end) parent_[q] -= k;
  }
  labels_.erase(labels_.begin() + pos, labels_.begin() + end);
  parent_.erase(parent_.begin() + pos, parent_.begin() + end);
  depth_.erase(depth_.begin() + pos, depth_.begin() + end);
  extent_.erase(extent_.begin() + pos, extent_.begin() + end);
  text_.erase(text_.begin() + pos, text_.begin() + end);
  node_of_.erase(node_of_.begin() + pos, node_of_.begin() + end);
  for (auto& list : postings_) {
    const auto lo = std::lower_bound(list.begin(), list.end(), pos);
    const auto hi = std::lower_bound(lo, list.end(), end);
    const auto tail = list.erase(lo, hi);
    for (auto it = tail; it != list.end(); ++it) *it -= k;
  }
  RefreshPosOf(pos);
}

void DocPlane::Maintainer::ApplyInsert(const Tree& tree,
                                       NodeId fragment_root) {
  // The fragment slots in immediately before its preorder successor
  // OUTSIDE the fragment: the next element sibling, walking up when a node
  // is the last element child.
  int32_t at = static_cast<int32_t>(labels_.size());
  for (NodeId n = fragment_root; tree.parent(n) != kNullNode;
       n = tree.parent(n)) {
    NodeId s = tree.next_sibling(n);
    while (s != kNullNode && !tree.is_element(s)) s = tree.next_sibling(s);
    if (s != kNullNode) {
      at = pos_of_[s];
      break;
    }
  }
  const int32_t parent_pos = pos_of_[tree.parent(fragment_root)];

  // Emit the fragment's rows with a builder-style DFS (depths and parents
  // relative to the splice point).
  std::vector<LabelId> f_labels;
  std::vector<int32_t> f_parent, f_depth, f_extent;
  std::vector<uint8_t> f_text;
  std::vector<NodeId> f_node;
  std::vector<int32_t> open;
  std::vector<NodeId> stack = {fragment_root};
  std::vector<NodeId> cursor = {tree.first_child(fragment_root)};
  auto enter = [&](NodeId n) {
    const int32_t rel = static_cast<int32_t>(f_labels.size());
    f_labels.push_back(tree.label(n));
    f_parent.push_back(open.empty() ? parent_pos : at + open.back());
    f_depth.push_back(depth_[parent_pos] + 1 +
                      static_cast<int32_t>(open.size()));
    f_extent.push_back(0);
    f_text.push_back(0);
    f_node.push_back(n);
    open.push_back(rel);
  };
  enter(fragment_root);
  while (!stack.empty()) {
    NodeId c = cursor.back();
    while (c != kNullNode && !tree.is_element(c)) {
      if (tree.kind(c) == NodeKind::kText) f_text[open.back()] = 1;
      c = tree.next_sibling(c);
    }
    if (c == kNullNode) {
      const int32_t rel = open.back();
      open.pop_back();
      f_extent[rel] = static_cast<int32_t>(f_labels.size()) - rel - 1;
      stack.pop_back();
      cursor.pop_back();
      continue;
    }
    cursor.back() = tree.next_sibling(c);
    enter(c);
    stack.push_back(c);
    cursor.push_back(tree.first_child(c));
  }
  const int32_t k = static_cast<int32_t>(f_labels.size());

  // Ancestors gain k descendants; tail rows and their at/after-`at`
  // parents slide up.
  for (int32_t a = parent_pos; a != -1; a = parent_[a]) extent_[a] += k;
  for (int32_t q = at; q < static_cast<int32_t>(parent_.size()); ++q) {
    if (parent_[q] >= at) parent_[q] += k;
  }
  for (auto& list : postings_) {
    for (auto it = std::lower_bound(list.begin(), list.end(), at);
         it != list.end(); ++it) {
      *it += k;
    }
  }
  labels_.insert(labels_.begin() + at, f_labels.begin(), f_labels.end());
  parent_.insert(parent_.begin() + at, f_parent.begin(), f_parent.end());
  depth_.insert(depth_.begin() + at, f_depth.begin(), f_depth.end());
  extent_.insert(extent_.begin() + at, f_extent.begin(), f_extent.end());
  text_.insert(text_.begin() + at, f_text.begin(), f_text.end());
  node_of_.insert(node_of_.begin() + at, f_node.begin(), f_node.end());
  for (int32_t rel = 0; rel < k; ++rel) {
    const LabelId l = f_labels[rel];
    if (l >= static_cast<LabelId>(postings_.size())) postings_.resize(l + 1);
    auto& list = postings_[l];
    list.insert(std::lower_bound(list.begin(), list.end(), at + rel),
                at + rel);
  }
  if (static_cast<int32_t>(pos_of_.size()) < tree.size()) {
    pos_of_.resize(tree.size(), -1);
  }
  RefreshPosOf(at);
}

DocPlane DocPlane::Maintainer::Take(const Tree& tree) {
  DocPlane plane;
  plane.labels_ = std::move(labels_);
  plane.parent_ = std::move(parent_);
  plane.depth_ = std::move(depth_);
  plane.extent_ = std::move(extent_);
  plane.node_of_ = std::move(node_of_);
  const int32_t n = plane.size();
  plane.text_bits_.assign((n + 63) / 64, 0);
  for (int32_t pos = 0; pos < n; ++pos) {
    if (text_[pos]) plane.text_bits_[pos >> 6] |= uint64_t{1} << (pos & 63);
  }
  // Rebuild pos_of_ from scratch so slots of detached nodes read -1,
  // exactly as a from-scratch Build would report them.
  plane.pos_of_.assign(tree.size(), -1);
  for (int32_t pos = 0; pos < n; ++pos) {
    plane.pos_of_[plane.node_of_[pos]] = pos;
  }
  // Pack postings identically to Builder::Finish (label order, empties
  // skipped) so SameAs against a fresh Build can hold bit-for-bit.
  if (tree.labels().size() > static_cast<int32_t>(postings_.size())) {
    postings_.resize(tree.labels().size());
  }
  plane.posting_ref_.assign(postings_.size(), {0, 0});
  plane.posting_pool_.reserve(plane.labels_.size());
  for (size_t l = 0; l < postings_.size(); ++l) {
    const std::vector<int32_t>& list = postings_[l];
    if (list.empty()) continue;
    const int32_t offset = static_cast<int32_t>(plane.posting_pool_.size());
    plane.posting_pool_.insert(plane.posting_pool_.end(), list.begin(),
                               list.end());
    plane.posting_ref_[l] = {offset, static_cast<int32_t>(list.size())};
  }
  postings_.clear();
  return plane;
}

size_t DocPlane::MemoryBytes() const {
  return labels_.size() * sizeof(LabelId) +
         parent_.size() * sizeof(int32_t) + depth_.size() * sizeof(int32_t) +
         extent_.size() * sizeof(int32_t) +
         text_bits_.size() * sizeof(uint64_t) +
         node_of_.size() * sizeof(NodeId) + pos_of_.size() * sizeof(int32_t) +
         posting_pool_.size() * sizeof(int32_t) +
         posting_ref_.size() * sizeof(std::pair<int32_t, int32_t>);
}

}  // namespace smoqe::xml
