#include "xml/plane_epoch.h"

#include <utility>

#include "common/fault_injection.h"

namespace smoqe::xml {

EpochPublisher::EpochPublisher(Tree initial) {
  live_ = std::make_shared<Tree>(std::move(initial));
  epoch_.tree = live_;
  epoch_.plane = std::make_shared<DocPlane>(DocPlane::Build(*live_));
  epoch_.version = 0;
}

EpochPublisher::EpochPublisher(Tree initial, DocPlane plane,
                               uint64_t version) {
  live_ = std::make_shared<Tree>(std::move(initial));
  epoch_.tree = live_;
  epoch_.plane = std::make_shared<DocPlane>(std::move(plane));
  epoch_.version = version;
}

PlaneEpoch EpochPublisher::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

uint64_t EpochPublisher::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_.version;
}

std::shared_ptr<Tree> EpochPublisher::AcquireWritable(const PlaneEpoch& current,
                                                      bool* recycled) {
  std::shared_ptr<Tree> candidate;
  uint64_t candidate_version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t log_front =
        log_.empty() ? current.version : log_.front().from_version();
    for (auto it = pool_.begin(); it != pool_.end(); ++it) {
      // use_count()==1 means the pool holds the only reference: every
      // snapshot of that epoch has been released, so mutation is private.
      // The log must reach back to the replica's version to roll it
      // forward.
      if (it->tree.use_count() == 1 && it->version >= log_front &&
          it->version <= current.version) {
        candidate = std::move(it->tree);
        candidate_version = it->version;
        pool_.erase(it);
        break;
      }
    }
  }
  if (candidate) {
    // use_count()==1 above is a relaxed read: it proves the pool held the
    // last reference but establishes no happens-before edge with the final
    // reader's release of its copy. Bounce the count once -- copy and
    // destroy are acq_rel RMWs on the same counter -- to synchronize with
    // that release before mutating the tree.
    { std::shared_ptr<Tree> sync = candidate; }
    // Replay is deterministic (see tree_delta.h): the rolled-forward
    // replica is id-for-id identical to the published tree. The log is a
    // version chain (admission guarantees each delta starts where the
    // previous ended), so walk it from the replica's version. Reading log_
    // without the lock is safe: Apply is the only mutator and we are
    // inside Apply (single-writer).
    bool ok = true;
    uint64_t v = candidate_version;
    for (const TreeDelta& step : log_) {
      if (v == current.version) break;
      if (step.to_version() <= v) continue;
      if (step.from_version() != v ||
          !step.ApplyTo(candidate.get()).ok()) {
        ok = false;  // gap or replay failure: fall back to a clone
        break;
      }
      v = step.to_version();
    }
    if (ok && v == current.version) {
      *recycled = true;
      return candidate;
    }
  }
  *recycled = false;
  return std::make_shared<Tree>(*current.tree);
}

Status EpochPublisher::Apply(const TreeDelta& delta) {
  const PlaneEpoch current = Snapshot();
  if (delta.from_version() != current.version) {
    return Status::FailedPrecondition(
        "delta from_version " + std::to_string(delta.from_version()) +
        " does not admit against epoch " + std::to_string(current.version));
  }

  // Patch-vs-rebuild heuristic: estimate how many element rows the delta
  // moves; past a quarter of the document, splicing loses to one DFS.
  int64_t touched = 0;
  for (const DeltaOp& op : delta.ops()) {
    switch (op.kind) {
      case DeltaOpKind::kInsert:
        touched += op.fragment.CountElements();
        break;
      case DeltaOpKind::kDelete:
        if (op.target >= 0 && op.target < current.tree->size() &&
            current.tree->is_element(op.target)) {
          touched += current.tree->CountSubtreeElements(op.target);
        }
        break;
      case DeltaOpKind::kRelabel:
        touched += 1;
        break;
    }
  }
  const bool patch = touched * 4 <= current.tree->CountElements();

  bool recycled = false;
  std::shared_ptr<Tree> next = AcquireWritable(current, &recycled);

  std::shared_ptr<const DocPlane> next_plane;
  if (patch) {
    DocPlane::Maintainer maintainer(*current.plane);
    SMOQE_RETURN_IF_ERROR(delta.ApplyTo(next.get(), &maintainer));
    next_plane = std::make_shared<DocPlane>(maintainer.Take(*next));
  } else {
    SMOQE_RETURN_IF_ERROR(delta.ApplyTo(next.get()));
    next_plane = std::make_shared<DocPlane>(DocPlane::Build(*next));
  }

  // Fault site: a failure after the replica is fully built but BEFORE the
  // publish lock. Returning here drops `next` and `next_plane` wholesale --
  // live_/epoch_/log_ are untouched, so readers can never observe a torn
  // snapshot and the writer retries the same delta (the pool merely lost
  // one recycle candidate). The chaos suite asserts exactly this.
  SMOQE_FAULT_RETURN_IF_INJECTED(FaultSite::kEpochApply);

  std::lock_guard<std::mutex> lock(mu_);
  pool_.push_back({std::move(live_), epoch_.version});
  if (pool_.size() > kMaxPool) pool_.erase(pool_.begin());
  log_.push_back(delta);
  while (log_.size() > kMaxLog) log_.pop_front();
  live_ = std::move(next);
  epoch_.tree = live_;
  epoch_.plane = std::move(next_plane);
  epoch_.version = delta.to_version();
  ++stats_.epochs_published;
  if (recycled) {
    ++stats_.replicas_recycled;
  } else {
    ++stats_.replicas_cloned;
  }
  if (patch) {
    ++stats_.planes_patched;
  } else {
    ++stats_.planes_rebuilt;
  }
  return Status::OK();
}

EpochPublisher::Stats EpochPublisher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace smoqe::xml
