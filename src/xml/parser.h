// A small, dependency-free XML parser for the paper's data model.
//
// Supported: elements, PCDATA text, the five predefined entities, comments,
// processing instructions and an XML declaration (both skipped), and
// whitespace-only text (dropped). Not supported (by design, the paper's
// model has neither): attributes, namespaces, CDATA sections, DOCTYPE.
// Unsupported constructs yield a ParseError with line/column.
//
// Robustness contract: ANY input -- truncated, corrupted, adversarially
// deep -- yields either a Tree or a ParseError, never a crash. Element
// nesting is tracked on an explicit heap stack, so depth is bounded by
// memory rather than the thread's call stack.

#ifndef SMOQE_XML_PARSER_H_
#define SMOQE_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/tree.h"

namespace smoqe::xml {

/// Parses `input` into a Tree. On error the returned status message contains
/// "line L, column C".
StatusOr<Tree> ParseXml(std::string_view input);

}  // namespace smoqe::xml

#endif  // SMOQE_XML_PARSER_H_
