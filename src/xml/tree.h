// The XML document tree: the data model every evaluator in SMOQE runs on.
//
// A Tree is an arena of nodes addressed by int32 NodeId. Nodes are either
// elements (with an interned label) or text nodes (with a string value),
// matching the paper's model (Section 2): no attributes, no namespaces.
//
// Parents are always created before their children, so ids increase along
// every root-to-leaf path; builders that append in depth-first order (the
// XML parser, the materializer) additionally make NodeId order coincide with
// document order. Answer sets are reported as sorted id vectors.
//
// MUTATION. A tree is mutable by a SINGLE writer: Relabel, DetachSubtree and
// InsertElementBefore/InsertTextBefore edit the sibling links in place.
// NodeIds are stable across edits -- a detached subtree's arena slots are
// simply unreachable from the root (traversals never see them again; the
// slots are not compacted), and inserted nodes take fresh ids at the end of
// the arena, so "parents precede children" keeps holding while sibling id
// order stops implying document order (xml::DocPlane::Build handles any
// order). Mutating a tree that concurrent readers are traversing is a data
// race; xml::EpochPublisher (plane_epoch.h) provides the copy-on-write
// snapshot discipline that lets readers and one writer coexist, and
// xml::TreeDelta (tree_delta.h) is the composable/invertible edit unit the
// publisher applies.

#ifndef SMOQE_XML_TREE_H_
#define SMOQE_XML_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/name_table.h"

namespace smoqe::xml {

using NodeId = int32_t;
inline constexpr NodeId kNullNode = -1;

enum class NodeKind : uint8_t { kElement, kText };

struct Node {
  NodeKind kind = NodeKind::kElement;
  LabelId label = kNoLabel;      // element label; kNoLabel for text nodes
  int32_t text = -1;             // index into the text pool; -1 for elements
  NodeId parent = kNullNode;
  NodeId first_child = kNullNode;
  NodeId last_child = kNullNode;
  NodeId next_sibling = kNullNode;
  int32_t child_index = 0;       // 1-based position among siblings (position())
};

class Tree {
 public:
  /// Creates the root element. Must be called exactly once, first.
  NodeId AddRoot(std::string_view label);

  /// Appends an element child to `parent` (in document order).
  NodeId AddElement(NodeId parent, std::string_view label);

  /// Appends a text child to `parent`.
  NodeId AddText(NodeId parent, std::string_view text);

  // ---- mutation (single writer; see the header note) ----

  /// Changes the label of an element node (interning `label` if new).
  void Relabel(NodeId id, std::string_view label);

  /// Unlinks the subtree rooted at `id` (any node but the root) from the
  /// document. The slots keep their ids but become unreachable; following
  /// siblings are renumbered (child_index). O(subtree + later siblings).
  void DetachSubtree(NodeId id);

  /// Inserts a new element child of `parent` immediately before `before`
  /// (which must be a child of `parent`), or as the last child when `before`
  /// is kNullNode. The new node gets a fresh id at the end of the arena;
  /// following siblings are renumbered.
  NodeId InsertElementBefore(NodeId parent, NodeId before,
                             std::string_view label);

  /// Text-node counterpart of InsertElementBefore.
  NodeId InsertTextBefore(NodeId parent, NodeId before, std::string_view text);

  /// Element nodes in the subtree rooted at `id` (including `id` when it is
  /// an element). Iterative; O(subtree).
  int32_t CountSubtreeElements(NodeId id) const;

  NodeId root() const { return root_; }
  bool empty() const { return nodes_.empty(); }
  int32_t size() const { return static_cast<int32_t>(nodes_.size()); }

  const Node& node(NodeId id) const { return nodes_[id]; }
  NodeKind kind(NodeId id) const { return nodes_[id].kind; }
  bool is_element(NodeId id) const { return nodes_[id].kind == NodeKind::kElement; }
  LabelId label(NodeId id) const { return nodes_[id].label; }
  const std::string& label_name(NodeId id) const { return labels_.name(nodes_[id].label); }
  NodeId parent(NodeId id) const { return nodes_[id].parent; }
  NodeId first_child(NodeId id) const { return nodes_[id].first_child; }
  NodeId next_sibling(NodeId id) const { return nodes_[id].next_sibling; }
  int32_t child_index(NodeId id) const { return nodes_[id].child_index; }

  /// Value of a text node.
  const std::string& text_value(NodeId id) const { return texts_[nodes_[id].text]; }

  /// Concatenation of the values of `id`'s direct text children (the string
  /// the paper's `text() = 'c'` predicate compares against).
  std::string TextOf(NodeId id) const;

  /// True iff some direct text child of `id` equals `value` exactly, or the
  /// concatenated text equals it (both conventions coincide for DTDs in the
  /// paper's normal form, where PCDATA elements have one text child).
  bool HasText(NodeId id, std::string_view value) const;

  const NameTable& labels() const { return labels_; }
  NameTable* mutable_labels() { return &labels_; }

  /// Number of REACHABLE element (resp. text) nodes -- detached subtrees are
  /// excluded, though their arena slots still count toward size(). O(1).
  int32_t CountElements() const { return num_elements_; }
  int32_t CountTexts() const { return size() - num_elements_ - num_detached_; }

  /// Arena slots unreachable after DetachSubtree calls (compaction is left
  /// to a future epoch-rebuild pass). O(1).
  int32_t CountDetached() const { return num_detached_; }

  /// Length of the longest root-to-leaf path (root alone = 1). 0 if empty.
  int32_t Depth() const;

  /// Rough serialized size in bytes (for reporting dataset scale).
  int64_t ApproxByteSize() const;

 private:
  NodeId Append(NodeId parent, Node node);
  NodeId InsertBefore(NodeId parent, NodeId before, Node node);

  // Storage-layer snapshot codec (storage/snapshot.cc). It needs bit-exact
  // access to the raw arena -- detached slots included -- because WAL
  // deltas address nodes by NodeId: a recovered tree must reproduce the
  // arena layout exactly for replay to target the same slots.
  friend struct TreeCodec;

  NameTable labels_;
  std::vector<Node> nodes_;
  std::vector<std::string> texts_;
  NodeId root_ = kNullNode;
  int32_t num_elements_ = 0;
  int32_t num_detached_ = 0;
};

}  // namespace smoqe::xml

#endif  // SMOQE_XML_TREE_H_
