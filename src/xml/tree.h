// The XML document tree: the data model every evaluator in SMOQE runs on.
//
// A Tree is an arena of nodes addressed by int32 NodeId. Nodes are either
// elements (with an interned label) or text nodes (with a string value),
// matching the paper's model (Section 2): no attributes, no namespaces.
//
// Parents are always created before their children, so ids increase along
// every root-to-leaf path; builders that append in depth-first order (the
// XML parser, the materializer) additionally make NodeId order coincide with
// document order. Answer sets are reported as sorted id vectors.

#ifndef SMOQE_XML_TREE_H_
#define SMOQE_XML_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/name_table.h"

namespace smoqe::xml {

using NodeId = int32_t;
inline constexpr NodeId kNullNode = -1;

enum class NodeKind : uint8_t { kElement, kText };

struct Node {
  NodeKind kind = NodeKind::kElement;
  LabelId label = kNoLabel;      // element label; kNoLabel for text nodes
  int32_t text = -1;             // index into the text pool; -1 for elements
  NodeId parent = kNullNode;
  NodeId first_child = kNullNode;
  NodeId last_child = kNullNode;
  NodeId next_sibling = kNullNode;
  int32_t child_index = 0;       // 1-based position among siblings (position())
};

class Tree {
 public:
  /// Creates the root element. Must be called exactly once, first.
  NodeId AddRoot(std::string_view label);

  /// Appends an element child to `parent` (in document order).
  NodeId AddElement(NodeId parent, std::string_view label);

  /// Appends a text child to `parent`.
  NodeId AddText(NodeId parent, std::string_view text);

  NodeId root() const { return root_; }
  bool empty() const { return nodes_.empty(); }
  int32_t size() const { return static_cast<int32_t>(nodes_.size()); }

  const Node& node(NodeId id) const { return nodes_[id]; }
  NodeKind kind(NodeId id) const { return nodes_[id].kind; }
  bool is_element(NodeId id) const { return nodes_[id].kind == NodeKind::kElement; }
  LabelId label(NodeId id) const { return nodes_[id].label; }
  const std::string& label_name(NodeId id) const { return labels_.name(nodes_[id].label); }
  NodeId parent(NodeId id) const { return nodes_[id].parent; }
  NodeId first_child(NodeId id) const { return nodes_[id].first_child; }
  NodeId next_sibling(NodeId id) const { return nodes_[id].next_sibling; }
  int32_t child_index(NodeId id) const { return nodes_[id].child_index; }

  /// Value of a text node.
  const std::string& text_value(NodeId id) const { return texts_[nodes_[id].text]; }

  /// Concatenation of the values of `id`'s direct text children (the string
  /// the paper's `text() = 'c'` predicate compares against).
  std::string TextOf(NodeId id) const;

  /// True iff some direct text child of `id` equals `value` exactly, or the
  /// concatenated text equals it (both conventions coincide for DTDs in the
  /// paper's normal form, where PCDATA elements have one text child).
  bool HasText(NodeId id, std::string_view value) const;

  const NameTable& labels() const { return labels_; }
  NameTable* mutable_labels() { return &labels_; }

  /// Number of element (resp. text) nodes. O(1).
  int32_t CountElements() const { return num_elements_; }
  int32_t CountTexts() const { return size() - num_elements_; }

  /// Length of the longest root-to-leaf path (root alone = 1). 0 if empty.
  int32_t Depth() const;

  /// Rough serialized size in bytes (for reporting dataset scale).
  int64_t ApproxByteSize() const;

 private:
  NodeId Append(NodeId parent, Node node);

  NameTable labels_;
  std::vector<Node> nodes_;
  std::vector<std::string> texts_;
  NodeId root_ = kNullNode;
  int32_t num_elements_ = 0;
};

}  // namespace smoqe::xml

#endif  // SMOQE_XML_TREE_H_
