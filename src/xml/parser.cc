#include "xml/parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>
#include <vector>

namespace smoqe::xml {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  StatusOr<Tree> Parse() {
    SkipMisc();
    if (Eof()) return Err("document has no root element");
    Tree tree;
    SMOQE_RETURN_IF_ERROR(ParseElementTree(&tree));
    SkipMisc();
    if (!Eof()) return Err("content after root element");
    return tree;
  }

 private:
  // An element whose closing tag has not been seen yet. The parser keeps
  // these on an explicit heap-allocated stack, so document depth is bounded
  // by memory, not by the thread's call stack: a pathological
  // <a><a><a>... input returns a ParseError or a tree, never a stack
  // overflow.
  struct Open {
    NodeId id;
    std::string name;
  };

  bool Eof() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < in_.size() ? in_[pos_ + off] : '\0';
  }

  void Advance() {
    if (in_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  bool Consume(char c) {
    if (Eof() || Peek() != c) return false;
    Advance();
    return true;
  }

  bool ConsumeSeq(std::string_view s) {
    if (in_.substr(pos_, s.size()) != s) return false;
    for (size_t i = 0; i < s.size(); ++i) Advance();
    return true;
  }

  Status Err(std::string what) const {
    return Status::ParseError("XML: " + what + " (line " +
                              std::to_string(line_) + ", column " +
                              std::to_string(col_) + ")");
  }

  void SkipWhitespace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) Advance();
  }

  // Skips whitespace, comments, PIs and the XML declaration.
  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (ConsumeSeq("<!--")) {
        while (!Eof() && !ConsumeSeq("-->")) Advance();
      } else if (PeekAt(0) == '<' && PeekAt(1) == '?') {
        while (!Eof() && !ConsumeSeq("?>")) Advance();
      } else {
        return;
      }
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  StatusOr<std::string> ParseName() {
    if (Eof() || !IsNameStart(Peek())) return Err("expected a name");
    std::string name;
    while (!Eof() && IsNameChar(Peek())) {
      name += Peek();
      Advance();
    }
    return name;
  }

  Status ParseEntity(std::string* out) {
    // Called on '&'. Entity names are short by definition; the length cap
    // keeps a stray '&' with no terminating ';' from scanning (and echoing
    // back) the rest of the document.
    Advance();
    std::string ent;
    while (!Eof() && Peek() != ';') {
      if (ent.size() >= 32) return Err("entity reference too long");
      ent += Peek();
      Advance();
    }
    if (!Consume(';')) return Err("unterminated entity reference");
    if (ent == "lt") *out += '<';
    else if (ent == "gt") *out += '>';
    else if (ent == "amp") *out += '&';
    else if (ent == "quot") *out += '"';
    else if (ent == "apos") *out += '\'';
    else if (!ent.empty() && ent[0] == '#') {
      // strtol, not atoi: atoi has undefined behavior on out-of-range input
      // (&#99999999999999999999;) and silently accepts trailing garbage.
      const bool hex = ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X');
      const char* digits = ent.c_str() + (hex ? 2 : 1);
      char* end = nullptr;
      errno = 0;
      const long code = std::strtol(digits, &end, hex ? 16 : 10);
      if (end == digits || *end != '\0' || errno == ERANGE || code <= 0 ||
          code > 127) {
        return Err("unsupported character reference &" + ent + ";");
      }
      *out += static_cast<char>(code);
    } else {
      return Err("unknown entity &" + ent + ";");
    }
    return Status::OK();
  }

  /// Consumes "<name>" or "<name/>" at the current position, adds the
  /// element under the innermost open element (or as the root), and pushes
  /// it onto `open` unless self-closing.
  Status OpenElement(Tree* tree, std::vector<Open>* open) {
    if (!Consume('<')) return Err("expected '<'");
    SMOQE_ASSIGN_OR_RETURN(std::string name, ParseName());
    SkipWhitespace();
    if (!Eof() && IsNameStart(Peek())) {
      return Err("attributes are not supported by the SMOQE data model");
    }
    const NodeId parent = open->empty() ? kNullNode : open->back().id;
    const NodeId self = parent == kNullNode ? tree->AddRoot(name)
                                            : tree->AddElement(parent, name);
    if (ConsumeSeq("/>")) return Status::OK();
    if (!Consume('>')) return Err("expected '>' after element name");
    open->push_back({self, std::move(name)});
    return Status::OK();
  }

  /// Parses one element and its entire subtree iteratively.
  Status ParseElementTree(Tree* tree) {
    std::vector<Open> open;
    std::string text;
    // `text` is always flushed (to the innermost open element) before a
    // child opens or a closing tag pops, so one shared buffer suffices.
    auto flush_text = [&]() {
      if (!open.empty() &&
          text.find_first_not_of(" \t\r\n") != std::string::npos) {
        tree->AddText(open.back().id, text);
      }
      text.clear();
    };
    SMOQE_RETURN_IF_ERROR(OpenElement(tree, &open));
    while (!open.empty()) {
      if (Eof()) {
        return Err("unexpected end of input inside <" + open.back().name +
                   ">");
      }
      const char c = Peek();
      if (c == '<') {
        if (ConsumeSeq("<!--")) {
          while (!Eof() && !ConsumeSeq("-->")) Advance();
          continue;
        }
        if (PeekAt(1) == '?') {
          while (!Eof() && !ConsumeSeq("?>")) Advance();
          continue;
        }
        if (PeekAt(1) == '!') {
          return Err("CDATA/DOCTYPE sections are not supported");
        }
        if (PeekAt(1) == '/') {
          flush_text();
          Advance();  // <
          Advance();  // /
          SMOQE_ASSIGN_OR_RETURN(std::string close, ParseName());
          SkipWhitespace();
          if (!Consume('>')) return Err("expected '>' in closing tag");
          if (close != open.back().name) {
            return Err("mismatched closing tag </" + close + "> for <" +
                       open.back().name + ">");
          }
          open.pop_back();
          continue;
        }
        flush_text();
        SMOQE_RETURN_IF_ERROR(OpenElement(tree, &open));
        continue;
      }
      if (c == '&') {
        SMOQE_RETURN_IF_ERROR(ParseEntity(&text));
        continue;
      }
      text += c;
      Advance();
    }
    return Status::OK();
  }

  std::string_view in_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

StatusOr<Tree> ParseXml(std::string_view input) { return Parser(input).Parse(); }

}  // namespace smoqe::xml
