#include "xml/tree.h"

#include <cassert>

namespace smoqe::xml {

NodeId Tree::AddRoot(std::string_view label) {
  assert(nodes_.empty());
  Node n;
  n.kind = NodeKind::kElement;
  n.label = labels_.Intern(label);
  root_ = Append(kNullNode, n);
  return root_;
}

NodeId Tree::AddElement(NodeId parent, std::string_view label) {
  assert(parent >= 0 && parent < size() && is_element(parent));
  Node n;
  n.kind = NodeKind::kElement;
  n.label = labels_.Intern(label);
  return Append(parent, n);
}

NodeId Tree::AddText(NodeId parent, std::string_view text) {
  assert(parent >= 0 && parent < size() && is_element(parent));
  Node n;
  n.kind = NodeKind::kText;
  n.text = static_cast<int32_t>(texts_.size());
  texts_.emplace_back(text);
  return Append(parent, n);
}

void Tree::Relabel(NodeId id, std::string_view label) {
  assert(id >= 0 && id < size() && is_element(id));
  nodes_[id].label = labels_.Intern(label);
}

void Tree::DetachSubtree(NodeId id) {
  assert(id >= 0 && id < size() && id != root_);
  const NodeId parent = nodes_[id].parent;
  assert(parent != kNullNode && "cannot detach the root");
  Node& p = nodes_[parent];
  // Unlink from the sibling chain (prev is found by a forward walk; child
  // lists are singly linked).
  if (p.first_child == id) {
    p.first_child = nodes_[id].next_sibling;
  } else {
    NodeId prev = p.first_child;
    while (nodes_[prev].next_sibling != id) prev = nodes_[prev].next_sibling;
    nodes_[prev].next_sibling = nodes_[id].next_sibling;
  }
  if (p.last_child == id) {
    NodeId last = p.first_child;
    if (last == kNullNode) {
      p.last_child = kNullNode;
    } else {
      while (nodes_[last].next_sibling != kNullNode) {
        last = nodes_[last].next_sibling;
      }
      p.last_child = last;
    }
  }
  for (NodeId s = nodes_[id].next_sibling; s != kNullNode;
       s = nodes_[s].next_sibling) {
    --nodes_[s].child_index;
  }
  nodes_[id].parent = kNullNode;
  nodes_[id].next_sibling = kNullNode;
  // One walk counts both kinds so CountElements/CountTexts keep reporting
  // REACHABLE nodes only.
  std::vector<NodeId> stack = {id};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    ++num_detached_;
    if (is_element(n)) --num_elements_;
    for (NodeId c = first_child(n); c != kNullNode; c = next_sibling(c)) {
      stack.push_back(c);
    }
  }
}

NodeId Tree::InsertElementBefore(NodeId parent, NodeId before,
                                 std::string_view label) {
  assert(parent >= 0 && parent < size() && is_element(parent));
  Node n;
  n.kind = NodeKind::kElement;
  n.label = labels_.Intern(label);
  return InsertBefore(parent, before, n);
}

NodeId Tree::InsertTextBefore(NodeId parent, NodeId before,
                              std::string_view text) {
  assert(parent >= 0 && parent < size() && is_element(parent));
  Node n;
  n.kind = NodeKind::kText;
  n.text = static_cast<int32_t>(texts_.size());
  texts_.emplace_back(text);
  return InsertBefore(parent, before, n);
}

NodeId Tree::InsertBefore(NodeId parent, NodeId before, Node node) {
  if (before == kNullNode) return Append(parent, node);
  assert(nodes_[before].parent == parent && "`before` must be a child");
  NodeId id = static_cast<NodeId>(nodes_.size());
  if (node.kind == NodeKind::kElement) ++num_elements_;
  node.parent = parent;
  node.next_sibling = before;
  node.child_index = nodes_[before].child_index;
  Node& p = nodes_[parent];
  if (p.first_child == before) {
    p.first_child = id;
  } else {
    NodeId prev = p.first_child;
    while (nodes_[prev].next_sibling != before) {
      prev = nodes_[prev].next_sibling;
    }
    nodes_[prev].next_sibling = id;
  }
  for (NodeId s = before; s != kNullNode; s = nodes_[s].next_sibling) {
    ++nodes_[s].child_index;
  }
  nodes_.push_back(node);
  return id;
}

int32_t Tree::CountSubtreeElements(NodeId id) const {
  int32_t count = 0;
  // Iterative DFS confined to the subtree (safe at any depth).
  std::vector<NodeId> stack = {id};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    if (is_element(n)) ++count;
    for (NodeId c = first_child(n); c != kNullNode; c = next_sibling(c)) {
      stack.push_back(c);
    }
  }
  return count;
}

NodeId Tree::Append(NodeId parent, Node node) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  if (node.kind == NodeKind::kElement) ++num_elements_;
  node.parent = parent;
  if (parent != kNullNode) {
    Node& p = nodes_[parent];
    if (p.last_child == kNullNode) {
      p.first_child = id;
      node.child_index = 1;
    } else {
      nodes_[p.last_child].next_sibling = id;
      node.child_index = nodes_[p.last_child].child_index + 1;
    }
    p.last_child = id;
  } else {
    node.child_index = 1;
  }
  nodes_.push_back(node);
  return id;
}

std::string Tree::TextOf(NodeId id) const {
  std::string out;
  for (NodeId c = first_child(id); c != kNullNode; c = next_sibling(c)) {
    if (kind(c) == NodeKind::kText) out += text_value(c);
  }
  return out;
}

bool Tree::HasText(NodeId id, std::string_view value) const {
  // Allocation-free: single text children (the only case for DTDs in the
  // paper's normal form) compare directly; concatenation is checked
  // piecewise against `value`.
  int text_children = 0;
  size_t total = 0;
  for (NodeId c = first_child(id); c != kNullNode; c = next_sibling(c)) {
    if (kind(c) == NodeKind::kText) {
      if (text_value(c) == value) return true;
      ++text_children;
      total += text_value(c).size();
    }
  }
  if (text_children < 2 || total != value.size() || value.empty()) return false;
  size_t off = 0;
  for (NodeId c = first_child(id); c != kNullNode; c = next_sibling(c)) {
    if (kind(c) == NodeKind::kText) {
      const std::string& t = text_value(c);
      if (value.compare(off, t.size(), t) != 0) return false;
      off += t.size();
    }
  }
  return true;
}

int32_t Tree::Depth() const {
  if (nodes_.empty()) return 0;
  std::vector<int32_t> depth(nodes_.size(), 1);
  int32_t max_depth = 1;
  // Parents precede children, so one forward scan suffices.
  for (NodeId id = 0; id < size(); ++id) {
    NodeId p = nodes_[id].parent;
    if (p != kNullNode) depth[id] = depth[p] + 1;
    if (depth[id] > max_depth) max_depth = depth[id];
  }
  return max_depth;
}

int64_t Tree::ApproxByteSize() const {
  int64_t bytes = 0;
  for (NodeId id = 0; id < size(); ++id) {
    if (is_element(id)) {
      bytes += 2 * static_cast<int64_t>(label_name(id).size()) + 5;  // <l></l>
    } else {
      bytes += static_cast<int64_t>(text_value(id).size());
    }
  }
  return bytes;
}

}  // namespace smoqe::xml
