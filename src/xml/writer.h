// Serializes a Tree back to XML text (inverse of ParseXml for trees whose
// text nodes are not whitespace-only).

#ifndef SMOQE_XML_WRITER_H_
#define SMOQE_XML_WRITER_H_

#include <string>

#include "xml/tree.h"

namespace smoqe::xml {

struct WriteOptions {
  bool indent = false;  // pretty-print with two-space indentation
};

/// Serializes the subtree rooted at `node`. Text is entity-escaped.
std::string WriteXml(const Tree& tree, NodeId node, const WriteOptions& opts = {});

/// Serializes the whole document.
std::string WriteXml(const Tree& tree, const WriteOptions& opts = {});

}  // namespace smoqe::xml

#endif  // SMOQE_XML_WRITER_H_
